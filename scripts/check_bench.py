#!/usr/bin/env python3
"""Bench regression gate: compare fresh bench runs against committed baselines.

Usage:
    scripts/check_bench.py [--threshold 0.25] BASELINE FRESH [BASELINE FRESH ...]

Each (BASELINE, FRESH) pair must be JSON emitted by the same bench binary
(`bench_train` -> "mars_epoch_threads", `bench_serve` -> "topk_serve"); the
"bench" field selects the comparison. A fresh single-thread timing more than
`threshold` (default 25%) slower than the committed baseline fails the gate.

Scaling checks (multi-thread speedup) are skipped unless BOTH runs saw more
than one CPU: a 1-core container serializes the Hogwild workers, so its
"speedup" numbers measure overhead, not scaling (see BENCH_train.json
host_cpus). Every such skip is listed again in an end-of-run summary so a
green run on a 1-core host states which gates never ran. The coalesced-batch
serving gate (check_serve_batch) is single-threaded by construction and
stays armed regardless of core count. The wire-to-wire gate
(check_serve_wire) splits the same way: section presence and the
natural-batching evidence are always enforced, while its QPS/latency diffs
join the host_cpus-guarded skips (loopback client and server time-slicing
one core measure the scheduler, not the code).

Wired into scripts/ci.sh as the opt-in `--bench` stage.
"""

import argparse
import json
import sys

FAILURES = []
CPU_SKIPS = []


def fail(msg):
    FAILURES.append(msg)
    print(f"FAIL: {msg}")


def ok(msg):
    print(f"  ok: {msg}")


def skip(msg):
    print(f"skip: {msg}")


def skip_cpu(msg):
    """A gate skipped because a 1-CPU host can't measure it (scaling needs
    real parallelism). Recorded so the end-of-run summary states explicitly
    which gates never ran — a green check on a 1-core container must not
    read as 'all gates passed'."""
    CPU_SKIPS.append(msg)
    skip(msg)


# Timings below this (1 µs) are a single hash lookup; their run-to-run and
# cross-machine jitter dwarfs any real regression, so the ratio check is
# skipped and only invariants (e.g. the >=5x cached speedup) apply.
NOISE_FLOOR_MS = 1e-3


def check_slower(name, base, fresh, threshold):
    """Fails when fresh > base * (1 + threshold). Returns the ratio."""
    if base <= 0:
        skip(f"{name}: baseline is {base}, nothing to compare")
        return None
    if base < NOISE_FLOOR_MS and fresh < NOISE_FLOOR_MS:
        skip(f"{name}: {fresh:.6f} vs {base:.6f}, both under the "
             f"{NOISE_FLOOR_MS} ms noise floor")
        return None
    ratio = fresh / base
    if ratio > 1.0 + threshold:
        fail(f"{name}: {fresh:.6f} vs baseline {base:.6f} "
             f"({(ratio - 1.0) * 100:+.1f}%, limit +{threshold * 100:.0f}%)")
    else:
        ok(f"{name}: {fresh:.6f} vs {base:.6f} ({(ratio - 1.0) * 100:+.1f}%)")
    return ratio


def check_train(base, fresh, threshold):
    base_by_t = {r["num_threads"]: r for r in base["results"]}
    fresh_by_t = {r["num_threads"]: r for r in fresh["results"]}
    if 1 not in base_by_t or 1 not in fresh_by_t:
        fail("mars_epoch_threads: missing num_threads=1 row")
        return
    check_slower("train seconds_per_epoch @1 thread",
                 base_by_t[1]["seconds_per_epoch"],
                 fresh_by_t[1]["seconds_per_epoch"], threshold)

    if base.get("host_cpus", 1) <= 1 or fresh.get("host_cpus", 1) <= 1:
        skip_cpu("train scaling: host_cpus == 1 on at least one side "
                 "(serialized workers measure overhead, not scaling)")
        return
    for t in sorted(set(base_by_t) & set(fresh_by_t)):
        if t == 1:
            continue
        base_s = base_by_t[t]["speedup_vs_serial"]
        fresh_s = fresh_by_t[t]["speedup_vs_serial"]
        if base_s > 0 and fresh_s < base_s * (1.0 - threshold):
            fail(f"train speedup @{t} threads: {fresh_s:.2f}x vs "
                 f"baseline {base_s:.2f}x")
        else:
            ok(f"train speedup @{t} threads: {fresh_s:.2f}x vs {base_s:.2f}x")


def check_serve(base, fresh, threshold):
    base_by_m = {r["num_items"]: r for r in base["results"]}
    fresh_by_m = {r["num_items"]: r for r in fresh["results"]}
    shared = sorted(set(base_by_m) & set(fresh_by_m))
    if not shared:
        fail("topk_serve: no shared catalog sizes between baseline and fresh")
        return
    for m in shared:
        check_slower(f"serve cold_ms_per_query @{m} items",
                     base_by_m[m]["cold_ms_per_query"],
                     fresh_by_m[m]["cold_ms_per_query"], threshold)
        check_slower(f"serve cached_ms_per_query @{m} items",
                     base_by_m[m]["cached_ms_per_query"],
                     fresh_by_m[m]["cached_ms_per_query"], threshold)
        # Roadmap acceptance invariant, not a diff: cached hot-user queries
        # must beat a cold full-catalog sweep by >= 5x at >= 10k items.
        if m >= 10000:
            speedup = fresh_by_m[m]["cached_speedup"]
            if speedup < 5.0:
                fail(f"serve cached_speedup @{m} items: {speedup:.1f}x < 5x")
            else:
                ok(f"serve cached_speedup @{m} items: {speedup:.1f}x >= 5x")
    check_serve_ann(base, fresh, threshold)
    check_serve_batch(base, fresh, threshold)
    check_serve_incremental(base, fresh, threshold)
    check_serve_mt(base, fresh, threshold)
    check_serve_wire(base, fresh, threshold)
    check_serve_scenarios(base, fresh, threshold)


def check_serve_batch(base, fresh, threshold):
    """Coalesced-batch serving: TopKBatch per-user cost vs solo sweeps.

    Regression diff on batch_ms_per_user per (num_items, batch_size) point,
    plus the batching acceptance invariants at B = 8: the *gate point* (the
    smallest catalog >= 50k items) must show the batched sweep >= 1.5x
    faster per user than solo sweeps, and every larger catalog must show
    batching at least not slower (>= 1.0x). The gate point is where the
    item-block reuse is robustly cache-backed; far larger working sets
    leave the ratio to the host's memory subsystem (measured 1.1-1.7x at
    200k on a shared 1-vCPU box, run to run), so they are tracked but not
    held to the 1.5x bar. The section is measured single-threaded
    (TopKBatch drives the same multi-user sweep the concurrent coalescer
    uses, with no thread choreography), so unlike the scaling checks these
    gates stay armed on 1-CPU hosts.
    """
    if "batch" not in fresh:
        fail("topk_serve: fresh run has no 'batch' section")
        return
    base_by_key = {(r["num_items"], r["batch_size"]): r
                   for r in base.get("batch", {}).get("results", [])}
    if not base_by_key:
        skip("serve batch diff: baseline has no 'batch' section "
             "(pre-batching baseline; invariants still checked)")
    eligible = [r["num_items"] for r in fresh["batch"]["results"]
                if r["num_items"] >= 50000 and r["batch_size"] == 8]
    gate_items = min(eligible) if eligible else None
    for r in fresh["batch"]["results"]:
        m, bsz = r["num_items"], r["batch_size"]
        b = base_by_key.get((m, bsz))
        if b is not None:
            check_slower(f"serve batch_ms_per_user @{m} items B={bsz}",
                         b["batch_ms_per_user"], r["batch_ms_per_user"],
                         threshold)
        if bsz != 8 or m < 50000:
            continue
        speedup = r["speedup_per_user"]
        if m == gate_items:
            if speedup < 1.5:
                fail(f"serve batch speedup_per_user @{m} items B=8: "
                     f"{speedup:.2f}x < 1.5x (gate point)")
            else:
                ok(f"serve batch speedup_per_user @{m} items B=8: "
                   f"{speedup:.2f}x >= 1.5x (gate point)")
        elif speedup < 1.0:
            fail(f"serve batch speedup_per_user @{m} items B=8: "
                 f"{speedup:.2f}x < 1.0x (batching must never lose)")
        else:
            ok(f"serve batch speedup_per_user @{m} items B=8: "
               f"{speedup:.2f}x >= 1.0x")
    if gate_items is None and not fresh.get("fast_mode"):
        fail("serve batch: no B=8 point at >= 50k items (full mode must "
             "measure the gate point)")


def check_serve_ann(base, fresh, threshold):
    """ANN probe-then-rerank: recall/latency at the committed default nprobe.

    Regression diff on ms_per_query per (num_items, nprobe) point, plus the
    retrieval-tier acceptance invariants: the default operating point must
    keep recall@10 >= 0.95, and must beat the cold exact sweep >= 3x at
    >= 50k items. Both invariants are full-mode only: fast mode shrinks the
    training set below what gives the embeddings ANN-friendly structure, so
    its recall measures the shrunken dataset, not the index.
    """
    if "ann" not in fresh:
        fail("topk_serve: fresh run has no 'ann' section")
        return
    invariants = not fresh.get("fast_mode")
    if not invariants:
        skip("serve ann invariants: fast mode (recall reflects the "
             "shrunken training set, not the index)")
    base_by_m = {r["num_items"]: r for r in base.get("ann", [])}
    if not base_by_m:
        skip("serve ann diff: baseline has no 'ann' section "
             "(pre-ANN baseline; invariants still checked)")
    for r in fresh["ann"]:
        m = r["num_items"]
        b = base_by_m.get(m)
        if b is not None:
            check_slower(f"serve ann default ms_per_query @{m} items",
                         b["default"]["ms_per_query"],
                         r["default"]["ms_per_query"], threshold)
            base_sweep = {p["nprobe"]: p for p in b.get("sweep", [])}
            for p in r.get("sweep", []):
                bp = base_sweep.get(p["nprobe"])
                if bp is not None:
                    check_slower(
                        f"serve ann ms_per_query @{m} items nprobe="
                        f"{p['nprobe']}", bp["ms_per_query"],
                        p["ms_per_query"], threshold)
        # Acceptance invariants (retrieval-tier roadmap): the committed
        # default nprobe must hold recall@10 >= 0.95, and at >= 50k items
        # the ANN miss path must beat the cold exact sweep >= 3x.
        if not invariants:
            continue
        recall = r["default"]["recall_at_10"]
        if recall < 0.95:
            fail(f"serve ann recall@10 @{m} items: {recall:.3f} < 0.95 "
                 f"(default nprobe={r['default']['nprobe']})")
        else:
            ok(f"serve ann recall@10 @{m} items: {recall:.3f} >= 0.95")
        if m >= 50000:
            speedup = r["default"]["speedup_vs_cold"]
            if speedup < 3.0:
                fail(f"serve ann speedup_vs_cold @{m} items: "
                     f"{speedup:.2f}x < 3x")
            else:
                ok(f"serve ann speedup_vs_cold @{m} items: "
                   f"{speedup:.2f}x >= 3x")
    check_serve_ann_restart(base, fresh, threshold)


def check_serve_ann_restart(base, fresh, threshold):
    """Persisted-index restart: mmap the MRSI file vs rebuild from scratch.

    Invariants at any core count (the section is single-threaded and its
    two sides run on the same host back to back): the mapped index must
    answer *identically* to the freshly built one — recall@10 at the
    default nprobe equal to the last recorded digit and every sampled
    response bit-identical — and at the million-item point the warm
    restart (mmap + validate + first query) must beat the cold restart
    (k-means + assignment + first query) by >= 5x. The speedup gate is
    full-mode only because fast mode shrinks the catalog to 100k; the
    identity gates hold at any size.
    """
    if "ann_restart" not in fresh:
        fail("topk_serve: fresh run has no 'ann_restart' section")
        return
    r = fresh["ann_restart"]
    m = r["num_items"]
    if r["recall_mapped"] != r["recall_built"]:
        fail(f"serve ann_restart @{m} items: mapped recall@10 "
             f"{r['recall_mapped']:.4f} != built {r['recall_built']:.4f} "
             f"(mapped probes must be bit-identical)")
    else:
        ok(f"serve ann_restart @{m} items: recall@10 {r['recall_mapped']:.4f}"
           f" identical built vs mapped")
    if r["responses_identical"] != r["responses_checked"] or \
            r["responses_checked"] <= 0:
        fail(f"serve ann_restart @{m} items: only {r['responses_identical']}"
             f"/{r['responses_checked']} responses identical built vs mapped")
    else:
        ok(f"serve ann_restart @{m} items: {r['responses_identical']}"
           f"/{r['responses_checked']} responses identical")
    if m >= 1000000:
        speedup = r["restart_speedup"]
        if speedup < 5.0:
            fail(f"serve ann_restart @{m} items: restart_speedup "
                 f"{speedup:.1f}x < 5x (mapped index must skip the rebuild)")
        else:
            ok(f"serve ann_restart @{m} items: restart_speedup "
               f"{speedup:.1f}x >= 5x")
    elif not fresh.get("fast_mode"):
        fail(f"serve ann_restart: full mode must measure the million-item "
             f"point (got {m} items)")
    b = base.get("ann_restart")
    if b is None:
        skip("serve ann_restart diff: baseline has no 'ann_restart' section "
             "(pre-persistence baseline; invariants still checked)")
    elif b["num_items"] == m:
        check_slower(f"serve ann_restart warm_restart_ms @{m} items",
                     b["warm_restart_ms"], r["warm_restart_ms"], threshold)


def check_serve_incremental(base, fresh, threshold):
    """AbsorbWrites incremental-refresh cost vs a cold sweep."""
    if "incremental" not in fresh:
        fail("topk_serve: fresh run has no 'incremental' section")
        return
    base_by_m = {r["num_items"]: r for r in base.get("incremental", [])}
    for r in fresh["incremental"]:
        m = r["num_items"]
        if m in base_by_m:
            check_slower(f"serve refresh_ms_per_entry @{m} items",
                         base_by_m[m]["refresh_ms_per_entry"],
                         r["refresh_ms_per_entry"], threshold)
        # Acceptance invariant (serving roadmap): with <= 1/8 of the item
        # shards dirty, refreshing a cached entry must cost <= 1/4 of a
        # cold full-catalog sweep at >= 10k items.
        if m >= 10000 and r["dirty_shards"] * 8 <= r["total_shards"]:
            ratio = r["refresh_vs_cold"]
            if ratio > 0.25:
                fail(f"serve refresh_vs_cold @{m} items: {ratio:.3f} > 0.25 "
                     f"({r['dirty_shards']}/{r['total_shards']} shards dirty)")
            else:
                ok(f"serve refresh_vs_cold @{m} items: {ratio:.3f} <= 0.25")


def check_serve_mt(base, fresh, threshold):
    """Multi-threaded QPS under a churning publisher."""
    if "mt" not in fresh:
        fail("topk_serve: fresh run has no 'mt' section")
        return
    fresh_rows = {r["threads"]: r for r in fresh["mt"]["results"]}
    for t, r in sorted(fresh_rows.items()):
        # Invariant at any core count: the concurrent read front actually
        # served every query (qps computes over the full count).
        if r["qps"] <= 0:
            fail(f"serve mt qps @{t} threads is {r['qps']}")
    # The mt section records the cores it actually saw; prefer that over
    # the run-level field (older baselines only have the latter).
    base_cpus = base.get("mt", {}).get("host_cpus",
                                       base.get("host_cpus", 1))
    fresh_cpus = fresh.get("mt", {}).get("host_cpus",
                                         fresh.get("host_cpus", 1))
    if base_cpus <= 1 or fresh_cpus <= 1:
        skip_cpu("serve mt scaling: host_cpus == 1 on at least one side "
                 "(serialized frontends measure overhead, not scaling)")
        return
    base_rows = {r["threads"]: r for r in base.get("mt", {}).get("results", [])}
    for t in sorted(set(base_rows) & set(fresh_rows)):
        if t == 1:
            continue
        base_s = base_rows[t]["speedup_vs_1"]
        fresh_s = fresh_rows[t]["speedup_vs_1"]
        if base_s > 0 and fresh_s < base_s * (1.0 - threshold):
            fail(f"serve mt speedup @{t} threads: {fresh_s:.2f}x vs "
                 f"baseline {base_s:.2f}x")
        else:
            ok(f"serve mt speedup @{t} threads: {fresh_s:.2f}x vs "
               f"{base_s:.2f}x")


def check_serve_wire(base, fresh, threshold):
    """Wire-to-wire serving: QPS and p50/p99 through the TCP front-end.

    Presence and the natural-batching evidence are invariants at any core
    count: the fresh run must have measured the wire, served every request,
    and — at pipeline depth >= 8 — demonstrably fed multi-request batches
    into TopKBatch (the wire_batches_multi / batch_sweeps counters the
    bench records). The regression diffs (QPS, p50/p99) are
    host_cpus-guarded like the other scaling gates: on a 1-core container
    the loopback client and the server time-slice one CPU, so wire latency
    measures the scheduler, not the code.
    """
    if "wire" not in fresh:
        fail("topk_serve: fresh run has no 'wire' section")
        return
    fresh_rows = {r["pipeline"]: r for r in fresh["wire"]["results"]}
    if not fresh_rows:
        fail("topk_serve: 'wire' section has no results")
        return
    for d, r in sorted(fresh_rows.items()):
        if r["served"] <= 0 or r["qps"] <= 0:
            fail(f"serve wire @B={d}: served={r['served']} qps={r['qps']}")
            continue
        if d >= 8:
            if r["wire_batches_multi"] <= 0 or r["batch_sweeps"] <= 0:
                fail(f"serve wire @B={d}: no multi-request TopKBatch "
                     f"evidence (wire_batches_multi="
                     f"{r['wire_batches_multi']}, batch_sweeps="
                     f"{r['batch_sweeps']})")
            else:
                ok(f"serve wire @B={d}: {r['wire_batches_multi']} "
                   f"multi-request batches, {r['batch_sweeps']} "
                   f"multi-user sweeps")
    base_cpus = base.get("wire", {}).get("host_cpus",
                                         base.get("host_cpus", 1))
    fresh_cpus = fresh.get("wire", {}).get("host_cpus",
                                           fresh.get("host_cpus", 1))
    if base_cpus <= 1 or fresh_cpus <= 1:
        skip_cpu("serve wire regression diff: host_cpus == 1 on at least "
                 "one side (loopback client and server time-slice one "
                 "core; wire latency measures the scheduler)")
        return
    base_rows = {r["pipeline"]: r
                 for r in base.get("wire", {}).get("results", [])}
    if not base_rows:
        skip("serve wire diff: baseline has no 'wire' section "
             "(pre-wire baseline; invariants still checked)")
        return
    for d in sorted(set(base_rows) & set(fresh_rows)):
        check_slower(f"serve wire p50_us @B={d}", base_rows[d]["p50_us"],
                     fresh_rows[d]["p50_us"], threshold)
        check_slower(f"serve wire p99_us @B={d}", base_rows[d]["p99_us"],
                     fresh_rows[d]["p99_us"], threshold)
        base_q, fresh_q = base_rows[d]["qps"], fresh_rows[d]["qps"]
        if base_q > 0 and fresh_q < base_q * (1.0 - threshold):
            fail(f"serve wire qps @B={d}: {fresh_q:.0f} vs baseline "
                 f"{base_q:.0f}")
        else:
            ok(f"serve wire qps @B={d}: {fresh_q:.0f} vs {base_q:.0f}")


def check_serve_scenarios(base, fresh, threshold):
    """Deterministic traffic scenarios: the live-system invariant suite.

    Correctness is an invariant at any core count: every shipped scenario
    must have run, answered traffic, and finished with zero invariant
    violations (snapshot membership, per-user epoch monotonicity, status
    soundness, unexpected closes, and — where enforced — the p99 bound);
    slow_reader must actually have tripped the backpressure cap and
    restart_mid_traffic must show the post-restart reconnects. Digests are
    diffed against the baseline when the same seed was used: a digest
    change means the generated traffic itself changed — a deliberate,
    baseline-updating event, never drift. Latency diffs (p50/p99) are
    host_cpus-guarded like every other scaling gate.
    """
    if "scenarios" not in fresh:
        fail("topk_serve: fresh run has no 'scenarios' section")
        return
    fresh_rows = {r["name"]: r for r in fresh["scenarios"]["results"]}
    expected = {"zipf_hot_users", "flash_crowd", "publish_storm",
                "restart_mid_traffic", "slow_reader"}
    missing = expected - set(fresh_rows)
    if missing:
        fail(f"serve scenarios: missing {sorted(missing)}")
    for name, r in sorted(fresh_rows.items()):
        if r["violations"] != 0:
            fail(f"serve scenario {name}: {r['violations']} invariant "
                 f"violations")
        elif r["responses"] <= 0:
            fail(f"serve scenario {name}: no responses served")
        else:
            ok(f"serve scenario {name}: {r['responses']} responses, "
               f"0 violations")
    if "slow_reader" in fresh_rows:
        bp = fresh_rows["slow_reader"]["backpressure_closes"]
        if bp < 1:
            fail(f"serve scenario slow_reader: backpressure never tripped "
                 f"(backpressure_closes={bp})")
        else:
            ok(f"serve scenario slow_reader: {bp} backpressure close(s)")
    if "restart_mid_traffic" in fresh_rows:
        rc = fresh_rows["restart_mid_traffic"]["reconnects"]
        if rc < 1:
            fail(f"serve scenario restart_mid_traffic: no reconnects "
                 f"across the restart boundary")
        else:
            ok(f"serve scenario restart_mid_traffic: {rc} reconnect(s) "
               f"across the persistence boundary")

    base_rows = {r["name"]: r
                 for r in base.get("scenarios", {}).get("results", [])}
    if base_rows:
        if base.get("scenarios", {}).get("seed") == \
                fresh["scenarios"].get("seed"):
            for name in sorted(set(base_rows) & set(fresh_rows)):
                if base_rows[name]["digest"] != fresh_rows[name]["digest"]:
                    fail(f"serve scenario {name}: trace digest changed "
                         f"({base_rows[name]['digest']} -> "
                         f"{fresh_rows[name]['digest']}) at the same seed "
                         f"— traffic generation changed; update baselines "
                         f"deliberately")
                else:
                    ok(f"serve scenario {name}: digest stable "
                       f"({fresh_rows[name]['digest']})")
        else:
            skip("serve scenario digests: baseline used a different seed")
    else:
        skip("serve scenario diff: baseline has no 'scenarios' section "
             "(pre-scenario baseline; invariants still checked)")

    base_cpus = base.get("scenarios", {}).get("host_cpus",
                                              base.get("host_cpus", 1))
    fresh_cpus = fresh["scenarios"].get("host_cpus",
                                        fresh.get("host_cpus", 1))
    if base_cpus <= 1 or fresh_cpus <= 1:
        skip_cpu("serve scenario latency diff: host_cpus == 1 on at least "
                 "one side (actors, reactor, and trainer time-slice one "
                 "core; the percentile measures the scheduler)")
        return
    for name in sorted(set(base_rows) & set(fresh_rows)):
        check_slower(f"serve scenario {name} p99_ms",
                     base_rows[name]["p99_ms"],
                     fresh_rows[name]["p99_ms"], threshold)


def check_load(base, fresh, threshold):
    base_by_m = {r["num_items"]: r for r in base["results"]}
    fresh_by_m = {r["num_items"]: r for r in fresh["results"]}
    shared = sorted(set(base_by_m) & set(fresh_by_m))
    if not shared:
        fail("mmap_load: no shared catalog sizes between baseline and fresh")
        return
    for m in shared:
        check_slower(f"load v2_total_ms @{m} items",
                     base_by_m[m]["v2_total_ms"],
                     fresh_by_m[m]["v2_total_ms"], threshold)
        check_slower(f"load v3_cold_total_ms @{m} items",
                     base_by_m[m]["v3_cold_total_ms"],
                     fresh_by_m[m]["v3_cold_total_ms"], threshold)
        check_slower(f"load v3_warm_total_ms @{m} items",
                     base_by_m[m]["v3_warm_total_ms"],
                     fresh_by_m[m]["v3_warm_total_ms"], threshold)
        # The retrieval-tier restart unit (mmap model + mapped ANN index +
        # sidecar -> first query) must have been measured; diffed when the
        # baseline has it.
        if "v3_index_warm_total_ms" not in fresh_by_m[m]:
            fail(f"load @{m} items: no v3_index_warm_total_ms (the mapped-"
                 f"index lifecycle must be measured)")
        elif "v3_index_warm_total_ms" in base_by_m[m]:
            check_slower(f"load v3_index_warm_total_ms @{m} items",
                         base_by_m[m]["v3_index_warm_total_ms"],
                         fresh_by_m[m]["v3_index_warm_total_ms"], threshold)
        else:
            skip(f"load v3_index_warm_total_ms @{m} items: baseline predates "
                 f"the mapped-index lifecycle (invariant still checked)")
        # Roadmap acceptance invariant, not a diff: the v3 restart lifecycle
        # (mmap + sidecar warm + first query) must reach its first served
        # query >= 5x faster than v2 copy-load at >= 10k items.
        if m >= 10000:
            speedup = fresh_by_m[m]["speedup_warm"]
            if speedup < 5.0:
                fail(f"load speedup_warm @{m} items: {speedup:.1f}x < 5x")
            else:
                ok(f"load speedup_warm @{m} items: {speedup:.1f}x >= 5x")


CHECKERS = {
    "mars_epoch_threads": check_train,
    "topk_serve": check_serve,
    "mmap_load": check_load,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed slowdown fraction (default 0.25)")
    parser.add_argument("files", nargs="+",
                        help="BASELINE FRESH pairs of bench JSON files")
    args = parser.parse_args()
    if len(args.files) % 2 != 0:
        parser.error("files must come in BASELINE FRESH pairs")

    for base_path, fresh_path in zip(args.files[::2], args.files[1::2]):
        with open(base_path) as f:
            base = json.load(f)
        with open(fresh_path) as f:
            fresh = json.load(f)
        name = base.get("bench", "?")
        print(f"== {name}: {fresh_path} vs baseline {base_path} ==")
        if fresh.get("bench") != name:
            fail(f"bench kind mismatch: {fresh.get('bench')} vs {name}")
            continue
        if base.get("fast_mode") != fresh.get("fast_mode"):
            fail(f"{name}: fast_mode mismatch between baseline and fresh "
                 "(rerun with matching MARS_BENCH_FAST)")
            continue
        checker = CHECKERS.get(name)
        if checker is None:
            skip(f"no checker for bench kind '{name}'")
            continue
        checker(base, fresh, args.threshold)

    if CPU_SKIPS:
        print(f"\n{len(CPU_SKIPS)} gate(s) skipped because host_cpus == 1 "
              "(never ran, not passed):")
        for msg in CPU_SKIPS:
            print(f"  - {msg}")
    if FAILURES:
        print(f"\n{len(FAILURES)} bench regression(s).")
        return 1
    print("\nbench check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
