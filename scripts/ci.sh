#!/usr/bin/env bash
# One-command gate for this repo: tier-1 verify (configure, build, ctest)
# plus a smoke run of examples/quickstart on a tiny synthetic dataset.
#
# Usage: scripts/ci.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release

echo "== build =="
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo "== quickstart smoke (tiny synthetic dataset) =="
# Items must exceed the eval protocol's 100 sampled negatives.
"$BUILD_DIR"/quickstart 120 200 3

echo "CI OK"
