#!/usr/bin/env bash
# One-command gate for this repo: tier-1 verify (configure, build, ctest)
# plus smoke runs of examples/quickstart — serial and with the
# num_threads=4 Hogwild trainer — so the parallel path is exercised on
# every build.
#
# Usage: scripts/ci.sh [--san[=thread|address]] [--bench] [build-dir]
#   (default build-dir: build; --san defaults to thread and uses
#    build-<sanitizer> unless a build-dir is given)
#
# Modes:
#   (none)    configure + build + ctest + quickstart smokes
#   --bench   additionally run bench_train/bench_serve/bench_load and gate
#             fresh timings against the committed BENCH_*.json via
#             scripts/check_bench.py (>25% single-thread regression fails)
#   --san     sanitizer build only: compile with -DMARS_SANITIZE=... and run
#             the concurrency-sensitive tests (ShardView concurrent-writer
#             stress, parallel trainer, write tracker / top-k server) under
#             the sanitizer. TSAN uses scripts/tsan.supp to suppress the
#             *tolerated* Hogwild races documented in ROADMAP.md
#             ("shard/ownership model"); anything else is a failure.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER=""
RUN_BENCH=0
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --san) SANITIZER="thread" ;;
    --san=*) SANITIZER="${arg#--san=}" ;;
    --bench) RUN_BENCH=1 ;;
    -*) echo "error: unknown flag '$arg'" >&2; exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

# Fail loudly on a stale build dir: a cache configured for another source
# tree produces confusing half-builds, so refuse to reuse it.
check_build_dir() {
  local dir="$1"
  if [ -f "$dir/CMakeCache.txt" ]; then
    local cache_home
    cache_home="$(sed -n 's/^CMAKE_HOME_DIRECTORY:INTERNAL=//p' "$dir/CMakeCache.txt")"
    if [ "$cache_home" != "$(pwd)" ]; then
      echo "error: stale build dir: $dir was configured for" >&2
      echo "  '$cache_home', not '$(pwd)'. Delete it and re-run:" >&2
      echo "  rm -rf $dir" >&2
      exit 1
    fi
  fi
}

# ---------------------------------------------------------------------------
# Sanitizer mode: build with -fsanitize and run the concurrency tests.
# ---------------------------------------------------------------------------
if [ -n "$SANITIZER" ]; then
  case "$SANITIZER" in thread|address) ;; *)
    echo "error: --san must be thread or address, got '$SANITIZER'" >&2
    exit 2 ;;
  esac
  BUILD_DIR="${BUILD_DIR:-build-$SANITIZER}"
  check_build_dir "$BUILD_DIR"

  echo "== configure ($SANITIZER sanitizer) =="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DMARS_SANITIZE="$SANITIZER" \
        -DMARS_BUILD_BENCHMARKS=OFF -DMARS_BUILD_EXAMPLES=OFF

  echo "== build =="
  cmake --build "$BUILD_DIR" -j"$(nproc)" --target mars_tests

  # The concurrency surface: shard stress, Hogwild trainer, snapshotting,
  # the serving cache (trackers are marked from concurrent workers), and
  # the concurrent read front — snapshot-handle epoch swaps, the striped
  # LRU, RunBatch — raced by the SnapshotHandle*/ThreadPool suites
  # (TopKServer*/SnapshotHandle* include the ANN probe-then-rerank path
  # and queries racing index swaps). The ANN index suites ride along:
  # parallel builds fan subtree/assignment work over RunBatch. The
  # serve-layer races have NO suppressions (tsan.supp is scoped to model
  # Fit lambdas); any report from these tests is a real bug.
  FILTER='ShardViewTest.*:ParallelTrainerTest.*:SnapshotFacetStoreTest.*'
  FILTER="$FILTER:WriteTrackerTest.*:TopKServer*:SnapshotHandle*"
  FILTER="$FILTER:ThreadPoolTest.*:SphericalIvfIndex*:VpTreeIndex*"
  # The wire front-end: reactor thread vs Stop(), per-connection state
  # machines, and the codec. The parameterized Net suites cover BOTH
  # reactor backends — epoll always runs (io_uring variants skip, not
  # pass, where the kernel refuses a ring), so the fallback path is
  # exercised in CI regardless of io_uring support. Zero suppressions.
  FILTER="$FILTER:Protocol*:Net*:*NetServerTest*:RequestApi*"
  # The scenario harness: whole-stack traffic scenarios (trainer thread
  # publishing epochs, actor threads over loopback TCP, restart
  # teardown) with every invariant checker armed — publish_storm and
  # flash_crowd are the densest publish-vs-serve races in the repo.
  # Suite names are prefixed Scenario; the leading * also catches the
  # parameterized instantiations (Catalog/..., Backends/...). Zero
  # suppressions, like the rest of the serve/net layers.
  FILTER="$FILTER:*Scenario*"
  if [ "$SANITIZER" = address ]; then
    # mmap'd serving is a classic lifetime-bug nest (views into unmapped
    # pages, keepalive ordering): run the persistence/mapped-store/sidecar
    # suites under ASAN as well, plus the ANN index-file suites — the
    # mapped index serves borrowed-buffer views, and the reject fixture
    # feeds the loader deliberately corrupt headers/payloads.
    FILTER="$FILTER:PersistenceFixture.*:MappedStoreFixture.*:SidecarFixture.*"
    FILTER="$FILTER:IndexIoFixture.*:IndexIoRejectFixture.*"
  fi
  echo "== $SANITIZER-sanitized tests ($FILTER) =="
  if [ "$SANITIZER" = thread ]; then
    TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp history_size=7 halt_on_error=0 exitcode=66" \
      "$BUILD_DIR"/mars_tests --gtest_filter="$FILTER"
  else
    ASAN_OPTIONS="detect_leaks=1" \
      "$BUILD_DIR"/mars_tests --gtest_filter="$FILTER"
  fi
  echo "CI ($SANITIZER) OK"
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build}"
check_build_dir "$BUILD_DIR"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release

echo "== build =="
cmake --build "$BUILD_DIR" -j"$(nproc)"

# A successful build must have produced the gate binaries. mars_tests is
# special-cased: CMake only warns (does not fail) when GTest is absent, so
# its absence usually means a missing dependency, not a stale dir.
if [ ! -x "$BUILD_DIR/mars_tests" ]; then
  echo "error: 'mars_tests' was not built. Most likely GTest is not" >&2
  echo "  installed (CMake warns and skips tests); install GTest, or if" >&2
  echo "  it is installed, the build dir may be stale: rm -rf $BUILD_DIR" >&2
  exit 1
fi
# The rest of the gate list is generated from the same globs CMake builds
# targets from, so a new bench/example binary can't silently skip the
# existence check. google-benchmark-based binaries are only expected when
# CMake found the library (mirrors the CMakeLists skip).
have_gbench=1
if grep -q '^benchmark_DIR:PATH=.*-NOTFOUND' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null; then
  have_gbench=0
fi
for src in examples/*.cpp bench/*.cpp bench/scenarios/*.cpp; do
  bin="$(basename "${src%.cpp}")"
  if [ "$have_gbench" = 0 ] && grep -q 'benchmark/benchmark\.h' "$src"; then
    continue
  fi
  if [ ! -x "$BUILD_DIR/$bin" ]; then
    echo "error: '$bin' (from $src) missing from $BUILD_DIR after build —" >&2
    echo "  stale or broken build dir. Delete it and re-run: rm -rf $BUILD_DIR" >&2
    exit 1
  fi
done

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo "== quickstart smoke (tiny synthetic dataset, serial) =="
# Items must exceed the eval protocol's 100 sampled negatives.
"$BUILD_DIR"/quickstart 120 200 3

echo "== quickstart smoke (num_threads=4 Hogwild + overlapped eval) =="
# 6 epochs so the default eval_every=5 actually fires one overlapped dev
# eval (snapshot + eval thread + join) before the final epoch.
"$BUILD_DIR"/quickstart 120 200 6 4

if [ "$RUN_BENCH" = 1 ]; then
  echo "== bench regression gate (fresh run vs committed BENCH_*.json) =="
  "$BUILD_DIR"/bench_train "$BUILD_DIR/fresh_train.json"
  "$BUILD_DIR"/bench_serve "$BUILD_DIR/fresh_serve.json"
  "$BUILD_DIR"/bench_load "$BUILD_DIR/fresh_load.json"
  python3 scripts/check_bench.py \
    BENCH_train.json "$BUILD_DIR/fresh_train.json" \
    BENCH_serve.json "$BUILD_DIR/fresh_serve.json" \
    BENCH_load.json "$BUILD_DIR/fresh_load.json"
fi

echo "CI OK"
