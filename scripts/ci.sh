#!/usr/bin/env bash
# One-command gate for this repo: tier-1 verify (configure, build, ctest)
# plus smoke runs of examples/quickstart — serial and with the
# num_threads=4 Hogwild trainer — so the parallel path is exercised on
# every build.
#
# Usage: scripts/ci.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# Fail loudly on a stale build dir: a cache configured for another source
# tree produces confusing half-builds, so refuse to reuse it.
if [ -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cache_home="$(sed -n 's/^CMAKE_HOME_DIRECTORY:INTERNAL=//p' "$BUILD_DIR/CMakeCache.txt")"
  if [ "$cache_home" != "$(pwd)" ]; then
    echo "error: stale build dir: $BUILD_DIR was configured for" >&2
    echo "  '$cache_home', not '$(pwd)'. Delete it and re-run:" >&2
    echo "  rm -rf $BUILD_DIR" >&2
    exit 1
  fi
fi

echo "== configure =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release

echo "== build =="
cmake --build "$BUILD_DIR" -j"$(nproc)"

# A successful build must have produced the gate binaries. mars_tests is
# special-cased: CMake only warns (does not fail) when GTest is absent, so
# its absence usually means a missing dependency, not a stale dir.
if [ ! -x "$BUILD_DIR/mars_tests" ]; then
  echo "error: 'mars_tests' was not built. Most likely GTest is not" >&2
  echo "  installed (CMake warns and skips tests); install GTest, or if" >&2
  echo "  it is installed, the build dir may be stale: rm -rf $BUILD_DIR" >&2
  exit 1
fi
for bin in quickstart bench_train; do
  if [ ! -x "$BUILD_DIR/$bin" ]; then
    echo "error: '$bin' missing from $BUILD_DIR after build — stale or" >&2
    echo "  broken build dir. Delete it and re-run: rm -rf $BUILD_DIR" >&2
    exit 1
  fi
done

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo "== quickstart smoke (tiny synthetic dataset, serial) =="
# Items must exceed the eval protocol's 100 sampled negatives.
"$BUILD_DIR"/quickstart 120 200 3

echo "== quickstart smoke (num_threads=4 Hogwild + overlapped eval) =="
# 6 epochs so the default eval_every=5 actually fires one overlapped dev
# eval (snapshot + eval thread + join) before the final epoch.
"$BUILD_DIR"/quickstart 120 200 6 4

echo "CI OK"
