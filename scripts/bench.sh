#!/usr/bin/env bash
# Builds (Release) and runs the perf benches, writing machine-readable
# results to BENCH_train.json / BENCH_serve.json / BENCH_load.json at the
# repo root so future PRs can diff perf against these baselines (compared
# by scripts/check_bench.py, wired into scripts/ci.sh --bench).
#
# Usage: scripts/bench.sh [build-dir]   (default: build)
#        MARS_BENCH_FAST=1 scripts/bench.sh   # shrunken smoke variant
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_train bench_serve bench_load

"$BUILD_DIR"/bench_train BENCH_train.json
echo
echo "== BENCH_train.json =="
cat BENCH_train.json

"$BUILD_DIR"/bench_serve BENCH_serve.json
echo
echo "== BENCH_serve.json =="
cat BENCH_serve.json

"$BUILD_DIR"/bench_load BENCH_load.json
echo
echo "== BENCH_load.json =="
cat BENCH_load.json
