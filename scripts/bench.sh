#!/usr/bin/env bash
# Builds (Release) and runs the perf benches, writing machine-readable
# results to BENCH_train.json / BENCH_serve.json / BENCH_load.json at the
# repo root so future PRs can diff perf against these baselines (compared
# by scripts/check_bench.py, wired into scripts/ci.sh --bench).
#
# Every BENCH_*.json gets a "provenance" object stamped in (git SHA +
# dirty flag, build type, CXX flags) so a committed baseline records what
# it actually measured — a baseline from a dirty tree or a non-Release
# build is visible in review instead of silently skewing future diffs.
#
# Usage: scripts/bench.sh [build-dir]   (default: build)
#        MARS_BENCH_FAST=1 scripts/bench.sh   # shrunken smoke variant
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_train bench_serve bench_load

# Rewrites $1 in place with a "provenance" object (git + build flags).
stamp() {
  local json="$1"
  GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)" \
  GIT_DIRTY="$([ -n "$(git status --porcelain 2>/dev/null)" ] && echo 1 || echo 0)" \
  BUILD_CACHE="$BUILD_DIR/CMakeCache.txt" \
  python3 - "$json" <<'PY'
import json, os, sys

path = sys.argv[1]
with open(path) as f:
    data = json.load(f)

cache = {}
try:
    with open(os.environ["BUILD_CACHE"]) as f:
        for line in f:
            line = line.strip()
            if "=" in line and ":" in line.split("=", 1)[0]:
                key, value = line.split("=", 1)
                cache[key.split(":", 1)[0]] = value
except OSError:
    pass

build_type = cache.get("CMAKE_BUILD_TYPE", "unknown")
flags = " ".join(part for part in (
    cache.get("CMAKE_CXX_FLAGS", ""),
    cache.get(f"CMAKE_CXX_FLAGS_{build_type.upper()}", ""),
) if part).strip() or "unknown"

data["provenance"] = {
    "git_sha": os.environ["GIT_SHA"],
    "git_dirty": os.environ["GIT_DIRTY"] == "1",
    "build_type": build_type,
    "cxx_flags": flags,
}
with open(path, "w") as f:
    json.dump(data, f, indent=2)
    f.write("\n")
PY
}

"$BUILD_DIR"/bench_train BENCH_train.json
stamp BENCH_train.json
echo
echo "== BENCH_train.json =="
cat BENCH_train.json

"$BUILD_DIR"/bench_serve BENCH_serve.json
stamp BENCH_serve.json
echo
echo "== BENCH_serve.json =="
cat BENCH_serve.json

"$BUILD_DIR"/bench_load BENCH_load.json
stamp BENCH_load.json
echo
echo "== BENCH_load.json =="
cat BENCH_load.json
