#!/usr/bin/env bash
# Builds (Release) and runs the training-throughput bench, writing
# machine-readable results to BENCH_train.json at the repo root so future
# PRs can diff training perf against this baseline.
#
# Usage: scripts/bench.sh [build-dir]   (default: build)
#        MARS_BENCH_FAST=1 scripts/bench.sh   # shrunken smoke variant
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_train

"$BUILD_DIR"/bench_train BENCH_train.json
echo
echo "== BENCH_train.json =="
cat BENCH_train.json
