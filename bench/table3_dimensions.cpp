// Reproduces Table III: performance under different embedding dimensions
// on the Ciao analogue.
//
// Single-space models (TransCF, SML) sweep d ∈ {128, 256, 512, 1024} with
// k = 1; MARS sweeps d ∈ {32, 64, 128, 256} with k = 4, so each MARS row
// matches the *total* dimension of the corresponding single-space row.
// The paper's claim: multiple spaces beat one space of the same total
// dimension, and the single-space models saturate (or overfit) as d grows
// while MARS keeps improving.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "data/benchmark_datasets.h"

namespace mars {
namespace {

void Run() {
  bench::Banner("Table III — embedding-dimension sweep (Ciao)");
  const bool fast = BenchFastMode();
  ThreadPool pool(DefaultThreadCount());

  ExperimentData data(MakeBenchmarkDataset(BenchmarkId::kCiao, fast), 13);

  TablePrinter table("Table III (Ciao analogue)");
  table.SetHeader(
      {"Model", "HR@10", "HR@20", "nDCG@10", "nDCG@20", "d", "k"});

  const std::vector<size_t> single_dims = fast
                                              ? std::vector<size_t>{64, 128}
                                              : std::vector<size_t>{128, 256,
                                                                    512, 1024};
  const std::vector<size_t> mars_dims =
      fast ? std::vector<size_t>{16, 32}
           : std::vector<size_t>{32, 64, 128, 256};

  for (ModelId id : {ModelId::kTransCf, ModelId::kSml}) {
    bool first = true;
    for (size_t d : single_dims) {
      ZooOverrides ov;
      ov.dim = d;
      const auto r = RunZooExperiment(id, &data, "Ciao", ov, fast, &pool);
      table.AddRow({first ? ModelName(id) : "", bench::Metric(r.test.hr10),
                    bench::Metric(r.test.hr20), bench::Metric(r.test.ndcg10),
                    bench::Metric(r.test.ndcg20), std::to_string(d), "1"});
      first = false;
    }
    table.AddSeparator();
  }
  bool first = true;
  for (size_t d : mars_dims) {
    ZooOverrides ov;
    ov.dim = d;
    ov.num_facets = 4;
    const auto r =
        RunZooExperiment(ModelId::kMars, &data, "Ciao", ov, fast, &pool);
    table.AddRow({first ? "MARS" : "", bench::Metric(r.test.hr10),
                  bench::Metric(r.test.hr20), bench::Metric(r.test.ndcg10),
                  bench::Metric(r.test.ndcg20), std::to_string(d), "4"});
    first = false;
  }
  table.Print();
  table.WriteCsv("table3_dimensions.csv");
}

}  // namespace
}  // namespace mars

int main() {
  mars::Run();
  return 0;
}
