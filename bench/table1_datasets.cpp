// Reproduces Table I: statistics of the benchmark datasets.
//
// Prints the same columns the paper reports (#User, #Item, #Interaction,
// Density) for the six scaled synthetic analogues, plus the degree/skew
// columns that characterize the generator output.
#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "data/benchmark_datasets.h"
#include "data/stats.h"

namespace mars {
namespace {

void Run() {
  bench::Banner("Table I — statistics of the benchmark datasets");
  const bool fast = BenchFastMode();

  TablePrinter table("Table I (scaled synthetic analogues)");
  table.SetHeader({"Dataset", "#User", "#Item", "#Interaction", "Density(%)",
                   "AvgDeg(user)", "AvgDeg(item)", "Gini(user)"});
  for (BenchmarkId id : AllBenchmarks()) {
    const auto ds = MakeBenchmarkDataset(id, fast);
    const DatasetStats s = ComputeStats(*ds);
    table.AddRow({
        BenchmarkName(id),
        std::to_string(s.num_users),
        std::to_string(s.num_items),
        std::to_string(s.num_interactions),
        FormatFixed(s.density * 100.0, 2),
        FormatFixed(s.avg_user_degree, 1),
        FormatFixed(s.avg_item_degree, 1),
        FormatFixed(s.user_activity_gini, 2),
    });
  }
  table.Print();
  std::printf(
      "\nPaper Table I (original corpora): Delicious 1K/1K/8K/0.61%%,"
      " Lastfm 2K/175K/92K/0.28%%, Ciao 7K/11K/147K/0.19%%,\n"
      "BookX 20K/40K/605K/0.08%%, ML-1M 6K/4K/1M/4.52%%,"
      " ML-20M 62K/27K/17M/1.02%%.\n"
      "The analogues preserve the density ordering and realistic per-user"
      " history sizes (see DESIGN.md).\n");
}

}  // namespace
}  // namespace mars

int main() {
  mars::Run();
  return 0;
}
