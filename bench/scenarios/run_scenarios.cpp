// Standalone scenario runner: replays one scenario (or the whole
// catalog) against the live stack and prints the report — the operator
// side of the deterministic traffic harness (docs/SCENARIOS.md).
//
//   run_scenarios                 # whole catalog, seed 42
//   run_scenarios <scenario>      # one scenario, seed 42
//   run_scenarios <scenario> <seed>
//   run_scenarios all <seed>
//
// Exit status: 0 when every run finished with zero invariant
// violations, 1 otherwise — usable directly as a CI gate or to bisect a
// failing (scenario, seed) pair reported by the test matrix. Unknown
// scenario names and malformed specs print the validation error and the
// catalog; they never abort.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "scenario/scenario_runner.h"

namespace {

int RunOne(const std::string& name, uint64_t seed) {
  using mars::ScenarioReport;
  const mars::ScenarioSpec spec = mars::CanonicalScenarioSpec(name, seed);
  std::printf("== %s (seed %llu) ==\n", name.c_str(),
              static_cast<unsigned long long>(seed));
  mars::ScenarioRunner runner(spec);
  const ScenarioReport rep = runner.Run();
  if (!rep.ran) {
    std::printf("  error: %s\n", rep.error.c_str());
    return 1;
  }
  std::printf("  trace digest        %016llx  (%zu events)\n",
              static_cast<unsigned long long>(rep.trace_digest),
              rep.events);
  std::printf("  responses           %zu  (published epochs: %zu)\n",
              rep.responses, rep.published_epochs);
  std::printf("  membership          %zu violations\n",
              rep.membership_violations);
  std::printf("  epoch monotonicity  %zu regressions\n",
              rep.epoch_regressions);
  std::printf("  status soundness    %zu violations\n",
              rep.status_violations);
  std::printf("  unexpected closes   %zu\n", rep.unexpected_closes);
  std::printf("  latency             p50 %.3f ms  p99 %.3f ms  (bound %.1f"
              " ms, %s)\n",
              rep.p50_ms, rep.p99_ms, spec.p99_bound_ms,
              rep.p99_enforced ? (rep.p99_ok ? "ok" : "EXCEEDED")
                               : "unenforced: 1 cpu");
  std::printf("  reconnects          %zu  (stream closes: %zu, "
              "backpressure closes: %llu)\n",
              rep.reconnects, rep.stream_closes,
              static_cast<unsigned long long>(rep.backpressure_closes));
  const size_t v = rep.violations();
  std::printf("  => %s (%zu violations)\n\n", v == 0 ? "CLEAN" : "FAILED",
              v);
  return v == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string which = argc > 1 ? argv[1] : "all";
  uint64_t seed = 42;
  if (argc > 2) {
    char* end = nullptr;
    seed = std::strtoull(argv[2], &end, 0);
    if (end == nullptr || *end != '\0') {
      std::fprintf(stderr, "bad seed '%s' (want an integer)\n", argv[2]);
      return 1;
    }
  }

  std::vector<std::string> names;
  if (which == "all") {
    names = mars::ScenarioNames();
  } else {
    names.push_back(which);
  }

  int failures = 0;
  for (const std::string& name : names) failures += RunOne(name, seed);
  if (failures > 0) {
    std::printf("%d scenario(s) failed\n", failures);
    return 1;
  }
  std::printf("all %zu scenario(s) clean\n", names.size());
  return 0;
}
