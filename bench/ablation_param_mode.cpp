// Parameterization ablation (DESIGN.md §2.2).
//
// Eq. 1-2 define facet embeddings through shared projection matrices over
// universal embeddings; Eq. 19 optimizes the facet embeddings directly.
// This bench compares, on Delicious and Ciao:
//  * MAR  kProjected — shared Φ/Ψ projections, norm-clipped forward,
//  * MAR  kFree      — free ball-constrained facet tables (default),
//  * MARS            — free spherical facet tables + calibrated RSGD.
#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/mar.h"
#include "core/mars.h"
#include "data/benchmark_datasets.h"

namespace mars {
namespace {

void Run() {
  bench::Banner("Ablation — facet parameterization (Eq. 1-2 vs Eq. 19)");
  const bool fast = BenchFastMode();
  ThreadPool pool(DefaultThreadCount());

  TablePrinter table("Facet parameterization");
  table.SetHeader({"Dataset", "Model", "HR@10", "nDCG@10", "Train s"});

  for (BenchmarkId ds_id : {BenchmarkId::kDelicious, BenchmarkId::kCiao}) {
    const std::string ds_name = BenchmarkName(ds_id);
    ExperimentData data(MakeBenchmarkDataset(ds_id, fast), 13);

    bool first = true;
    auto report = [&](Recommender* model, const std::string& label,
                      const TrainOptions& opts) {
      TrainOptions o = opts;
      const ExperimentResult r =
          RunExperiment(model, &data, o, ds_name, &pool);
      table.AddRow({first ? ds_name : "", label, bench::Metric(r.test.hr10),
                    bench::Metric(r.test.ndcg10),
                    FormatFixed(r.train_seconds, 2)});
      first = false;
    };

    Mar projected(HarnessFacetConfig(), FacetParam::kProjected);
    report(&projected, "MAR kProjected (Eq. 1-2)",
           HarnessTrainOptions(ModelId::kMar, fast));
    Mar free_mar(HarnessFacetConfig(), FacetParam::kFree);
    report(&free_mar, "MAR kFree (Eq. 19)",
           HarnessTrainOptions(ModelId::kMar, fast));
    Mars mars_model(HarnessFacetConfig());
    report(&mars_model, "MARS (Eq. 19 + sphere)",
           HarnessTrainOptions(ModelId::kMars, fast));
    table.AddSeparator();
  }
  table.Print();
  table.WriteCsv("ablation_param_mode.csv");
}

}  // namespace
}  // namespace mars

int main() {
  mars::Run();
  return 0;
}
