// Kernel microbenchmarks (google-benchmark): the hot primitives every
// training loop and the evaluator are built on.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/vec.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "data/split.h"
#include "opt/sphere.h"
#include "sampling/alias_table.h"
#include "sampling/negative_sampler.h"
#include "sampling/triplet_sampler.h"

namespace mars {
namespace {

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

void BM_Dot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(n, 1);
  const auto b = RandomVec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dot)->Arg(32)->Arg(128)->Arg(512);

void BM_SquaredDistance(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(n, 3);
  const auto b = RandomVec(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredDistance(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SquaredDistance)->Arg(32)->Arg(128)->Arg(512);

void BM_Softmax(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto logits = RandomVec(n, 5);
  std::vector<float> out(n);
  for (auto _ : state) {
    Softmax(logits.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(4)->Arg(8);

void BM_FacetProjection(benchmark::State& state) {
  // One Eq. 1 projection u^k = Φ_kᵀ u at embedding dim D.
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Matrix phi(d, d);
  phi.FillIdentityPlusNoise(&rng, 0.1f);
  const auto u = RandomVec(d, 7);
  std::vector<float> out(d);
  for (auto _ : state) {
    GemvTransposed(phi, u.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FacetProjection)->Arg(32)->Arg(64)->Arg(128);

void BM_CalibratedRsgdStep(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  auto x = RandomVec(d, 8);
  NormalizeInPlace(x.data(), d);
  const auto g = RandomVec(d, 9);
  std::vector<float> scratch(d);
  for (auto _ : state) {
    RiemannianSgdStep(x.data(), g.data(), 0.01f, d, scratch.data(), true);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_CalibratedRsgdStep)->Arg(32)->Arg(128);

void BM_PlainRsgdStep(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  auto x = RandomVec(d, 10);
  NormalizeInPlace(x.data(), d);
  const auto g = RandomVec(d, 11);
  std::vector<float> scratch(d);
  for (auto _ : state) {
    RiemannianSgdStep(x.data(), g.data(), 0.01f, d, scratch.data(), false);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_PlainRsgdStep)->Arg(32)->Arg(128);

std::shared_ptr<ImplicitDataset> BenchDataset() {
  static std::shared_ptr<ImplicitDataset> ds = [] {
    SyntheticConfig cfg;
    cfg.num_users = 1000;
    cfg.num_items = 2000;
    cfg.target_interactions = 20000;
    cfg.seed = 12;
    return GenerateSyntheticDataset(cfg);
  }();
  return ds;
}

void BM_AliasTableSample(benchmark::State& state) {
  Rng wgen(13);
  std::vector<double> weights(100000);
  for (auto& w : weights) w = wgen.Uniform(0.1, 10.0);
  AliasTable table(weights);
  Rng rng(14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(&rng));
  }
}
BENCHMARK(BM_AliasTableSample);

void BM_NegativeSample(benchmark::State& state) {
  const auto ds = BenchDataset();
  NegativeSampler sampler(*ds);
  Rng rng(15);
  ItemId out;
  UserId u = 0;
  for (auto _ : state) {
    sampler.Sample(u, &rng, &out);
    benchmark::DoNotOptimize(out);
    u = (u + 1) % ds->num_users();
  }
}
BENCHMARK(BM_NegativeSample);

void BM_TripletSampleBiased(benchmark::State& state) {
  const auto ds = BenchDataset();
  TripletSampler sampler(*ds, TripletUserMode::kFrequencyBiased, 0.8);
  Rng rng(16);
  Triplet t;
  for (auto _ : state) {
    sampler.Sample(&rng, &t);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TripletSampleBiased);

void BM_EvaluateUser(benchmark::State& state) {
  // Cost of ranking one user against 100 sampled negatives with a dot-
  // product scorer at D = 32.
  const auto ds = BenchDataset();
  const auto split = MakeLeaveOneOutSplit(*ds, 3);
  Evaluator eval(*split.train, split.test_item, EvalProtocol{});
  class DotScorer : public ItemScorer {
   public:
    DotScorer(size_t users, size_t items) : user_(users, 32), item_(items, 32) {
      Rng rng(17);
      user_.FillNormal(&rng, 0.0f, 0.2f);
      item_.FillNormal(&rng, 0.0f, 0.2f);
    }
    float Score(UserId u, ItemId v) const override {
      return Dot(user_.Row(u), item_.Row(v), 32);
    }
    Matrix user_, item_;
  } scorer(ds->num_users(), ds->num_items());

  UserId u = 0;
  for (auto _ : state) {
    while (split.test_item[u] < 0) u = (u + 1) % ds->num_users();
    benchmark::DoNotOptimize(eval.RankOf(scorer, u));
    u = (u + 1) % ds->num_users();
  }
}
BENCHMARK(BM_EvaluateUser);

}  // namespace
}  // namespace mars

BENCHMARK_MAIN();
