// Kernel microbenchmarks (google-benchmark): the hot primitives every
// training loop and the evaluator are built on.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/facet_store.h"
#include "common/kernels.h"
#include "common/kernels_detail.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/vec.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "data/split.h"
#include "opt/sphere.h"
#include "sampling/alias_table.h"
#include "sampling/negative_sampler.h"
#include "sampling/triplet_sampler.h"

namespace mars {
namespace {

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

void BM_Dot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(n, 1);
  const auto b = RandomVec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dot)->Arg(32)->Arg(128)->Arg(512);

void BM_SquaredDistance(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = RandomVec(n, 3);
  const auto b = RandomVec(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SquaredDistance(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SquaredDistance)->Arg(32)->Arg(128)->Arg(512);

void BM_Softmax(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto logits = RandomVec(n, 5);
  std::vector<float> out(n);
  for (auto _ : state) {
    Softmax(logits.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(4)->Arg(8);

void BM_FacetProjection(benchmark::State& state) {
  // One Eq. 1 projection u^k = Φ_kᵀ u at embedding dim D.
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Matrix phi(d, d);
  phi.FillIdentityPlusNoise(&rng, 0.1f);
  const auto u = RandomVec(d, 7);
  std::vector<float> out(d);
  for (auto _ : state) {
    GemvTransposed(phi, u.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FacetProjection)->Arg(32)->Arg(64)->Arg(128);

void BM_CalibratedRsgdStep(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  auto x = RandomVec(d, 8);
  NormalizeInPlace(x.data(), d);
  const auto g = RandomVec(d, 9);
  std::vector<float> scratch(d);
  for (auto _ : state) {
    RiemannianSgdStep(x.data(), g.data(), 0.01f, d, scratch.data(), true);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_CalibratedRsgdStep)->Arg(32)->Arg(128);

void BM_FusedRsgdStep(benchmark::State& state) {
  // Same update as BM_CalibratedRsgdStep via the fused single-pass kernel
  // (no scratch buffer, no intermediate stores) — compare the two.
  const size_t d = static_cast<size_t>(state.range(0));
  auto x = RandomVec(d, 8);
  NormalizeInPlace(x.data(), d);
  const auto g = RandomVec(d, 9);
  for (auto _ : state) {
    FusedRiemannianSgdStep(x.data(), g.data(), 0.01f, d, true);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_FusedRsgdStep)->Arg(32)->Arg(128);

// --- Scalar-vs-batched scoring kernels -------------------------------------
// One user row against a block of `rows` candidate rows at dim `d`,
// per-row calls vs the batched kernels of common/kernels.h.

constexpr size_t kBatchRows = 1024;

std::vector<float> RandomBlock(size_t rows, size_t d, uint64_t seed) {
  return RandomVec(rows * d, seed);
}

void BM_DotPerRow(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto u = RandomVec(d, 20);
  const auto block = RandomBlock(kBatchRows, d, 21);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    for (size_t r = 0; r < kBatchRows; ++r) {
      out[r] = Dot(u.data(), block.data() + r * d, d);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows * d);
}
BENCHMARK(BM_DotPerRow)->Arg(32)->Arg(128);

void BM_DotBatch(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto u = RandomVec(d, 20);
  const auto block = RandomBlock(kBatchRows, d, 21);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    DotBatch(u.data(), block.data(), kBatchRows, d, d, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows * d);
}
BENCHMARK(BM_DotBatch)->Arg(32)->Arg(128);

void BM_CosinePerRow(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto u = RandomVec(d, 22);
  const auto block = RandomBlock(kBatchRows, d, 23);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    for (size_t r = 0; r < kBatchRows; ++r) {
      out[r] = Cosine(u.data(), block.data() + r * d, d);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows * d);
}
BENCHMARK(BM_CosinePerRow)->Arg(32)->Arg(128);

void BM_CosineBatch(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto u = RandomVec(d, 22);
  const auto block = RandomBlock(kBatchRows, d, 23);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    CosineBatch(u.data(), block.data(), kBatchRows, d, d, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows * d);
}
BENCHMARK(BM_CosineBatch)->Arg(32)->Arg(128);

// --- Multi-user vs repeated single-user scoring ----------------------------
// The batched-serving question: B users against one item block — B calls
// of the single-user batch kernel (each streaming the block again) vs one
// multi-user kernel call (each item row loaded once for all B users).
// Args are (dim, B); per-user results are bit-identical by contract, so
// items_processed rates compare directly.

void BM_DotBatchRepeatedSingle(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t B = static_cast<size_t>(state.range(1));
  const auto us = RandomBlock(B, d, 30);
  const auto block = RandomBlock(kBatchRows, d, 31);
  std::vector<float> out(B * kBatchRows);
  for (auto _ : state) {
    for (size_t b = 0; b < B; ++b) {
      DotBatch(us.data() + b * d, block.data(), kBatchRows, d, d,
               out.data() + b * kBatchRows);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * B * kBatchRows * d);
}
BENCHMARK(BM_DotBatchRepeatedSingle)
    ->Args({32, 2})->Args({32, 4})->Args({32, 8});

void BM_DotBatchMulti(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t B = static_cast<size_t>(state.range(1));
  const auto us = RandomBlock(B, d, 30);
  const auto block = RandomBlock(kBatchRows, d, 31);
  std::vector<float> out(B * kBatchRows);
  std::vector<const float*> uptr(B);
  std::vector<float*> optr(B);
  for (size_t b = 0; b < B; ++b) {
    uptr[b] = us.data() + b * d;
    optr[b] = out.data() + b * kBatchRows;
  }
  for (auto _ : state) {
    DotBatchMulti(uptr.data(), B, block.data(), kBatchRows, d, d,
                  optr.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * B * kBatchRows * d);
}
BENCHMARK(BM_DotBatchMulti)->Args({32, 2})->Args({32, 4})->Args({32, 8});

void BM_SquaredDistanceBatchRepeatedSingle(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t B = static_cast<size_t>(state.range(1));
  const auto us = RandomBlock(B, d, 32);
  const auto block = RandomBlock(kBatchRows, d, 33);
  std::vector<float> out(B * kBatchRows);
  for (auto _ : state) {
    for (size_t b = 0; b < B; ++b) {
      NegatedSquaredDistanceBatch(us.data() + b * d, block.data(),
                                  kBatchRows, d, d,
                                  out.data() + b * kBatchRows);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * B * kBatchRows * d);
}
BENCHMARK(BM_SquaredDistanceBatchRepeatedSingle)
    ->Args({32, 2})->Args({32, 4})->Args({32, 8});

void BM_SquaredDistanceBatchMulti(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t B = static_cast<size_t>(state.range(1));
  const auto us = RandomBlock(B, d, 32);
  const auto block = RandomBlock(kBatchRows, d, 33);
  std::vector<float> out(B * kBatchRows);
  std::vector<const float*> uptr(B);
  std::vector<float*> optr(B);
  for (size_t b = 0; b < B; ++b) {
    uptr[b] = us.data() + b * d;
    optr[b] = out.data() + b * kBatchRows;
  }
  for (auto _ : state) {
    NegatedSquaredDistanceBatchMulti(uptr.data(), B, block.data(),
                                     kBatchRows, d, d, optr.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * B * kBatchRows * d);
}
BENCHMARK(BM_SquaredDistanceBatchMulti)
    ->Args({32, 2})->Args({32, 4})->Args({32, 8});

void BM_WeightedFacetDotBatchRepeatedSingle(benchmark::State& state) {
  constexpr size_t kf = 4;
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t B = static_cast<size_t>(state.range(1));
  const auto us = RandomBlock(B * kf, d, 34);
  const auto blocks = RandomBlock(kBatchRows * kf, d, 35);
  const auto ws = RandomBlock(B, kf, 36);
  std::vector<float> out(B * kBatchRows);
  for (auto _ : state) {
    for (size_t b = 0; b < B; ++b) {
      WeightedFacetDotBatch(us.data() + b * kf * d, d, blocks.data(),
                            kf * d, d, ws.data() + b * kf, kf, kBatchRows,
                            d, out.data() + b * kBatchRows);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * B * kBatchRows * kf * d);
}
BENCHMARK(BM_WeightedFacetDotBatchRepeatedSingle)
    ->Args({32, 2})->Args({32, 4})->Args({32, 8});

void BM_WeightedFacetDotBatchMulti(benchmark::State& state) {
  constexpr size_t kf = 4;
  const size_t d = static_cast<size_t>(state.range(0));
  const size_t B = static_cast<size_t>(state.range(1));
  const auto us = RandomBlock(B * kf, d, 34);
  const auto blocks = RandomBlock(kBatchRows * kf, d, 35);
  const auto ws = RandomBlock(B, kf, 36);
  std::vector<float> out(B * kBatchRows);
  std::vector<const float*> uptr(B), wptr(B);
  std::vector<float*> optr(B);
  for (size_t b = 0; b < B; ++b) {
    uptr[b] = us.data() + b * kf * d;
    wptr[b] = ws.data() + b * kf;
    optr[b] = out.data() + b * kBatchRows;
  }
  for (auto _ : state) {
    WeightedFacetDotBatchMulti(uptr.data(), d, wptr.data(), B,
                               blocks.data(), kf * d, d, kf, kBatchRows, d,
                               optr.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * B * kBatchRows * kf * d);
}
BENCHMARK(BM_WeightedFacetDotBatchMulti)
    ->Args({32, 2})->Args({32, 4})->Args({32, 8});

// --- Autovectorized vs AVX2-intrinsic row reductions -----------------------
// The ROADMAP "SIMD-explicit kernels" comparison: the generic 8-wide
// accumulator forms (vectorized at the build's baseline ISA — plain SSE2
// here, no -march flags) against the explicit AVX2+FMA twins in
// common/kernels_detail.h, over the serving batch shape. The public
// kernels dispatch at runtime, so these explicit pairs are what keeps the
// measurement honest after adoption.

void BM_DotBatchGeneric(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto u = RandomVec(d, 20);
  const auto block = RandomBlock(kBatchRows, d, 21);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    for (size_t r = 0; r < kBatchRows; ++r) {
      out[r] = kernels_detail::DotRowGeneric(u.data(), block.data() + r * d, d);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows * d);
}
BENCHMARK(BM_DotBatchGeneric)->Arg(32)->Arg(128);

void BM_SquaredDistanceBatchGeneric(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto u = RandomVec(d, 24);
  const auto block = RandomBlock(kBatchRows, d, 25);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    for (size_t r = 0; r < kBatchRows; ++r) {
      out[r] = kernels_detail::SquaredDistanceRowGeneric(
          u.data(), block.data() + r * d, d);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows * d);
}
BENCHMARK(BM_SquaredDistanceBatchGeneric)->Arg(32)->Arg(128);

void BM_WeightedFacetDotBatchGeneric(benchmark::State& state) {
  constexpr size_t kf = 4;
  const size_t d = static_cast<size_t>(state.range(0));
  const auto u = RandomBlock(kf, d, 26);
  const auto blocks = RandomBlock(kBatchRows * kf, d, 27);
  const std::vector<float> w = {0.1f, 0.4f, 0.2f, 0.3f};
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    for (size_t r = 0; r < kBatchRows; ++r) {
      float score = 0.0f;
      for (size_t k = 0; k < kf; ++k) {
        score += w[k] * kernels_detail::DotRowGeneric(
                            u.data() + k * d,
                            blocks.data() + (r * kf + k) * d, d);
      }
      out[r] = score;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows * kf * d);
}
BENCHMARK(BM_WeightedFacetDotBatchGeneric)->Arg(32);

#if MARS_KERNELS_HAVE_AVX2

MARS_AVX2_FN void DotBatchAvx2Loop(const float* u, const float* rows,
                                   size_t count, size_t stride, size_t n,
                                   float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = kernels_detail::DotRowAvx2(u, rows + r * stride, n);
  }
}

MARS_AVX2_FN void SquaredDistanceBatchAvx2Loop(const float* u,
                                               const float* rows,
                                               size_t count, size_t stride,
                                               size_t n, float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = kernels_detail::SquaredDistanceRowAvx2(u, rows + r * stride, n);
  }
}

MARS_AVX2_FN void WeightedFacetDotBatchAvx2Loop(const float* u,
                                                const float* blocks,
                                                size_t kf, size_t count,
                                                size_t n, const float* w,
                                                float* out) {
  for (size_t r = 0; r < count; ++r) {
    float score = 0.0f;
    for (size_t k = 0; k < kf; ++k) {
      score += w[k] * kernels_detail::DotRowAvx2(
                          u + k * n, blocks + (r * kf + k) * n, n);
    }
    out[r] = score;
  }
}

void BM_DotBatchAvx2(benchmark::State& state) {
  if (!kernels_detail::HasAvx2Fma()) {
    state.SkipWithError("host has no AVX2+FMA");
    return;
  }
  const size_t d = static_cast<size_t>(state.range(0));
  const auto u = RandomVec(d, 20);
  const auto block = RandomBlock(kBatchRows, d, 21);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    DotBatchAvx2Loop(u.data(), block.data(), kBatchRows, d, d, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows * d);
}
BENCHMARK(BM_DotBatchAvx2)->Arg(32)->Arg(128);

void BM_SquaredDistanceBatchAvx2(benchmark::State& state) {
  if (!kernels_detail::HasAvx2Fma()) {
    state.SkipWithError("host has no AVX2+FMA");
    return;
  }
  const size_t d = static_cast<size_t>(state.range(0));
  const auto u = RandomVec(d, 24);
  const auto block = RandomBlock(kBatchRows, d, 25);
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    SquaredDistanceBatchAvx2Loop(u.data(), block.data(), kBatchRows, d, d,
                                 out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows * d);
}
BENCHMARK(BM_SquaredDistanceBatchAvx2)->Arg(32)->Arg(128);

void BM_WeightedFacetDotBatchAvx2(benchmark::State& state) {
  if (!kernels_detail::HasAvx2Fma()) {
    state.SkipWithError("host has no AVX2+FMA");
    return;
  }
  constexpr size_t kf = 4;
  const size_t d = static_cast<size_t>(state.range(0));
  const auto u = RandomBlock(kf, d, 26);
  const auto blocks = RandomBlock(kBatchRows * kf, d, 27);
  const std::vector<float> w = {0.1f, 0.4f, 0.2f, 0.3f};
  std::vector<float> out(kBatchRows);
  for (auto _ : state) {
    WeightedFacetDotBatchAvx2Loop(u.data(), blocks.data(), kf, kBatchRows,
                                  d, w.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRows * kf * d);
}
BENCHMARK(BM_WeightedFacetDotBatchAvx2)->Arg(32);

#endif  // MARS_KERNELS_HAVE_AVX2

// --- Scattered-vs-contiguous multi-facet scoring ---------------------------
// The MARS score Σ_k θ_k <u_k, v_k> over K=4 facets at D=32: K separate
// Matrix tables (seed layout) vs one FacetStore entity block (this PR).

void BM_FacetScoreScattered(benchmark::State& state) {
  constexpr size_t kf = 4, d = 32, n = 4096;
  Rng rng(24);
  std::vector<Matrix> user(kf, Matrix(n, d)), item(kf, Matrix(n, d));
  for (size_t k = 0; k < kf; ++k) {
    user[k].FillNormal(&rng, 0.0f, 0.2f);
    item[k].FillNormal(&rng, 0.0f, 0.2f);
  }
  const std::vector<float> w = {0.1f, 0.4f, 0.2f, 0.3f};
  size_t v = 0;
  for (auto _ : state) {
    float score = 0.0f;
    for (size_t k = 0; k < kf; ++k) {
      score += w[k] * Dot(user[k].Row(0), item[k].Row(v), d);
    }
    benchmark::DoNotOptimize(score);
    v = (v + 997) % n;
  }
  state.SetItemsProcessed(state.iterations() * kf * d);
}
BENCHMARK(BM_FacetScoreScattered);

void BM_FacetScoreContiguous(benchmark::State& state) {
  constexpr size_t kf = 4, d = 32, n = 4096;
  Rng rng(24);
  FacetStore user(n, kf, d), item(n, kf, d);
  for (size_t e = 0; e < n; ++e) {
    for (size_t k = 0; k < kf; ++k) {
      for (size_t i = 0; i < d; ++i) {
        user.Row(e, k)[i] = static_cast<float>(rng.Normal(0.0, 0.2));
        item.Row(e, k)[i] = static_cast<float>(rng.Normal(0.0, 0.2));
      }
    }
  }
  const std::vector<float> w = {0.1f, 0.4f, 0.2f, 0.3f};
  size_t v = 0;
  for (auto _ : state) {
    const float score =
        WeightedFacetDot(user.EntityBlock(0), user.row_stride(),
                         item.EntityBlock(v), item.row_stride(), w.data(),
                         kf, d);
    benchmark::DoNotOptimize(score);
    v = (v + 997) % n;
  }
  state.SetItemsProcessed(state.iterations() * kf * d);
}
BENCHMARK(BM_FacetScoreContiguous);

void BM_PlainRsgdStep(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  auto x = RandomVec(d, 10);
  NormalizeInPlace(x.data(), d);
  const auto g = RandomVec(d, 11);
  std::vector<float> scratch(d);
  for (auto _ : state) {
    RiemannianSgdStep(x.data(), g.data(), 0.01f, d, scratch.data(), false);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_PlainRsgdStep)->Arg(32)->Arg(128);

std::shared_ptr<ImplicitDataset> BenchDataset() {
  static std::shared_ptr<ImplicitDataset> ds = [] {
    SyntheticConfig cfg;
    cfg.num_users = 1000;
    cfg.num_items = 2000;
    cfg.target_interactions = 20000;
    cfg.seed = 12;
    return GenerateSyntheticDataset(cfg);
  }();
  return ds;
}

void BM_AliasTableSample(benchmark::State& state) {
  Rng wgen(13);
  std::vector<double> weights(100000);
  for (auto& w : weights) w = wgen.Uniform(0.1, 10.0);
  AliasTable table(weights);
  Rng rng(14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(&rng));
  }
}
BENCHMARK(BM_AliasTableSample);

void BM_NegativeSample(benchmark::State& state) {
  const auto ds = BenchDataset();
  NegativeSampler sampler(*ds);
  Rng rng(15);
  ItemId out;
  UserId u = 0;
  for (auto _ : state) {
    sampler.Sample(u, &rng, &out);
    benchmark::DoNotOptimize(out);
    u = (u + 1) % ds->num_users();
  }
}
BENCHMARK(BM_NegativeSample);

void BM_TripletSampleBiased(benchmark::State& state) {
  const auto ds = BenchDataset();
  TripletSampler sampler(*ds, TripletUserMode::kFrequencyBiased, 0.8);
  Rng rng(16);
  Triplet t;
  for (auto _ : state) {
    sampler.Sample(&rng, &t);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TripletSampleBiased);

void BM_EvaluateUser(benchmark::State& state) {
  // Cost of ranking one user against 100 sampled negatives with a dot-
  // product scorer at D = 32.
  const auto ds = BenchDataset();
  const auto split = MakeLeaveOneOutSplit(*ds, 3);
  Evaluator eval(*split.train, split.test_item, EvalProtocol{});
  class DotScorer : public ItemScorer {
   public:
    DotScorer(size_t users, size_t items) : user_(users, 32), item_(items, 32) {
      Rng rng(17);
      user_.FillNormal(&rng, 0.0f, 0.2f);
      item_.FillNormal(&rng, 0.0f, 0.2f);
    }
    float Score(UserId u, ItemId v) const override {
      return Dot(user_.Row(u), item_.Row(v), 32);
    }
    Matrix user_, item_;
  } scorer(ds->num_users(), ds->num_items());

  UserId u = 0;
  for (auto _ : state) {
    while (split.test_item[u] < 0) u = (u + 1) % ds->num_users();
    benchmark::DoNotOptimize(eval.RankOf(scorer, u));
    u = (u + 1) % ds->num_users();
  }
}
BENCHMARK(BM_EvaluateUser);

}  // namespace
}  // namespace mars

BENCHMARK_MAIN();
