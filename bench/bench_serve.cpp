// Serving-throughput bench: cold full-catalog sweeps vs cached hot-user
// queries through the TopKServer, at several catalog sizes, plus the ANN
// probe-then-rerank curve and the two concurrency measurements the
// serving roadmap gates on:
//
//  * ANN recall/latency — one spherical IVF build per catalog >= 10k,
//    swept over nprobe fractions via cheap clones; the committed default
//    point must keep recall@10 >= 0.95 while beating the cold exact
//    sweep >= 3x at >= 50k items (scripts/check_bench.py enforces both);
//
//  * restart at retrieval scale — one million-item point comparing a
//    from-scratch index rebuild (k-means + assignment) against mmapping
//    the persisted MRSI index file (ann/index_io.h) to the first served
//    query; the committed bar is >= 5x warm-vs-cold restart with
//    recall@10 *equal* between built and mapped (the probes are
//    bit-identical, so any daylight is a bug);
//
//  * multi-threaded QPS — 1/2/4/8 frontend threads hammering one server
//    with a 90/10 hot/cold mix while a background maintenance thread
//    keeps publishing epochs (ReplaceModel + incremental AbsorbWrites),
//    i.e. the striped-cache read path under realistic churn;
//  * incremental re-sweep cost — with 1/8 of the item shards dirty, the
//    per-entry refresh done by AbsorbWrites must cost ≤ 1/4 of a cold
//    full-catalog sweep (the mostly-clean-epoch warm-cache bar);
//
//  * wire-to-wire QPS and p50/p99 — a loopback TCP client driving the
//    NetServer front-end with pipelined bursts of B ∈ {1, 8, 32}
//    requests, so the numbers include framing, checksums, syscalls, and
//    the reactor hop; the multi-request-batch counters recorded
//    alongside prove the front-end fed the bursts into TopKBatch
//    (scripts/check_bench.py:check_serve_wire gates presence and the
//    batching evidence; latency diffs are host_cpus-guarded);
//
//  * coalesced-batch serving — TopKBatch over B ∈ {2, 4, 8} cold users
//    (one multi-user block sweep: each item block streamed once and
//    scored for all B users) vs B solo cold sweeps, per-user. Measured
//    single-threaded on a dim-64 BPR, where the shared item-block loads
//    dominate the per-row cost; the committed bar is ≥ 1.5x per user at
//    B = 8 at the 50k-item gate point and never-slower at larger
//    catalogs, armed even on 1-CPU hosts because nothing here needs a
//    second core (scripts/check_bench.py:check_serve_batch).
//
// Emits machine-readable JSON (BENCH_serve.json via scripts/bench.sh or
// the ci.sh --bench stage) so serving perf regressions are diffable;
// scripts/check_bench.py enforces the invariants and skips the
// multi-thread *scaling* comparison when host_cpus == 1 (a 1-core
// container serializes the frontends, so MT numbers measure overhead).
//
// The model is BPR (DotBatch sweep — the cheapest per-item kernel, which
// makes the *server* overhead the subject rather than the model), trained
// just enough to have non-degenerate embeddings. "Cold" queries distinct
// never-cached users, so every query pays the full sweep + heap merge;
// "cached" re-queries the same users, so every query is an LRU hit. The
// acceptance bar from the serving roadmap: cached ≥ 5x cold at ≥ 10k
// items. Single-thread sections stay single-threaded on purpose: they are
// the only timings comparable on a 1-core CI container.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/stat.h>

#include "ann/index_io.h"
#include "ann/ivf_index.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/vec.h"
#include "common/snapshot_handle.h"
#include "common/timer.h"
#include "data/synthetic.h"
#include "models/bpr.h"
#include "net/client.h"
#include "net/server.h"
#include "scenario/scenario.h"
#include "scenario/scenario_runner.h"
#include "serve/top_k_server.h"
#include "serve/write_tracker.h"

namespace {

struct ServeResult {
  size_t num_items = 0;
  double cold_ms = 0.0;    // per query, full-catalog sweep
  double cached_ms = 0.0;  // per query, LRU hit
  double speedup = 0.0;
};

struct MtResult {
  size_t threads = 0;
  double qps = 0.0;
  double speedup_vs_1 = 0.0;
  unsigned long long served = 0;
};

/// One nprobe operating point of the ANN recall/latency curve.
struct AnnPoint {
  size_t nprobe = 0;
  double ms_per_query = 0.0;     // miss-path latency through the server
  double recall_at_10 = 0.0;     // vs the brute-force oracle
  double speedup_vs_cold = 0.0;  // cold exact sweep / ANN miss
};

struct AnnResult {
  size_t num_items = 0;
  size_t index_dim = 0;
  size_t num_centroids = 0;
  double build_ms = 0.0;
  AnnPoint def;                 // the committed default nprobe (the gate)
  std::vector<AnnPoint> sweep;  // fractions of num_centroids up to exact
};

/// The million-item restart point: rebuild-from-scratch vs mmap the
/// persisted index file (ann/index_io.h), to the first served query.
struct AnnRestartResult {
  size_t num_items = 0;
  size_t num_centroids = 0;
  unsigned long long index_bytes = 0;
  double build_ms = 0.0;  // k-means + assignment, the cold-restart cost
  double save_ms = 0.0;
  double load_ms = 0.0;   // mmap + header/CRC validation (best of repeats)
  double first_query_built_ms = 0.0;
  double first_query_mapped_ms = 0.0;
  double cold_restart_ms = 0.0;  // build + first query
  double warm_restart_ms = 0.0;  // load + first query
  double restart_speedup = 0.0;  // cold / warm (the >= 5x gate at 1M)
  double recall_built = 0.0;     // recall@10 at the default nprobe...
  double recall_mapped = 0.0;    // ...must be *equal* (bit-identity gate)
  size_t responses_checked = 0;
  size_t responses_identical = 0;  // built-server vs mapped-server TopK
};

/// One (catalog size, batch size) point of the coalesced-batch section.
struct BatchServeResult {
  size_t num_items = 0;
  size_t batch = 0;                // B users per TopKBatch call
  double solo_ms_per_user = 0.0;   // B separate cold TopK sweeps
  double batch_ms_per_user = 0.0;  // one TopKBatch(B) / B
  double speedup = 0.0;            // solo / batch, per user
};

struct IncrementalResult {
  size_t num_items = 0;
  size_t dirty_shards = 0;
  size_t total_shards = 0;
  size_t entries = 0;
  double refresh_ms_per_entry = 0.0;
  double cold_ms_per_query = 0.0;
  double refresh_vs_cold = 0.0;
};

/// One pipeline depth of the wire-to-wire section: QPS and latency
/// percentiles through the TCP front-end (loopback), plus the batching
/// evidence counters.
struct WireResult {
  size_t pipeline = 0;  // B requests per pipelined burst
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  unsigned long long served = 0;
  unsigned long long wire_batches_multi = 0;  // NetServer batches with >1 req
  unsigned long long batch_sweeps = 0;        // serve-layer multi-user sweeps
};

/// Dot-geometry scorer with random tables for the restart-at-scale
/// section. Restart cost is a property of the index persistence path
/// (k-means + assignment vs mmap + validation), not of embedding
/// quality, and the parity gate is built-vs-mapped *equality* — so a
/// random model measures exactly what the gate needs while skipping a
/// million-item training run the timing would never see.
class RestartScorer : public mars::ItemScorer {
 public:
  RestartScorer(size_t users, size_t items, size_t dim, uint64_t seed)
      : dim_(dim), user_(users * dim), item_(items * dim) {
    mars::Rng rng(seed);
    for (auto& x : user_) x = static_cast<float>(rng.Normal());
    for (auto& x : item_) x = static_cast<float>(rng.Normal());
  }

  float Score(mars::UserId u, mars::ItemId v) const override {
    return mars::Dot(user_.data() + u * dim_, item_.data() + v * dim_, dim_);
  }
  mars::IndexGeometry index_geometry() const override {
    return mars::IndexGeometry::kDot;
  }
  size_t index_dim() const override { return dim_; }
  void CopyIndexVectors(mars::ItemId begin, mars::ItemId end,
                        float* out) const override {
    mars::Copy(item_.data() + begin * dim_, out, (end - begin) * dim_);
  }
  void WriteIndexQuery(mars::UserId u, float* out) const override {
    mars::Copy(user_.data() + u * dim_, out, dim_);
  }

 private:
  size_t dim_;
  std::vector<float> user_, item_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mars;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const bool fast = BenchFastMode();

  const std::vector<size_t> catalog_sizes =
      fast ? std::vector<size_t>{1000, 10000}
           : std::vector<size_t>{2000, 10000, 50000, 200000};
  const size_t kUsers = fast ? 300 : 1000;
  const size_t kTopK = 10;

  bench::Banner(
      "bench_serve — TopKServer cold/cached, MT QPS, incremental refresh");
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("host cpus: %u  k=%zu  users=%zu\n\n", host_cpus, kTopK,
              kUsers);

  std::vector<ServeResult> results;
  std::vector<AnnResult> ann_results;
  std::vector<BatchServeResult> batch_results;
  std::vector<IncrementalResult> incremental;
  std::vector<MtResult> mt_results;
  size_t mt_items = 0;
  std::vector<WireResult> wire_results;
  size_t wire_items = 0;
  std::string wire_backend;

  for (const size_t num_items : catalog_sizes) {
    SyntheticConfig data_cfg;
    data_cfg.num_users = kUsers;
    data_cfg.num_items = num_items;
    // Interactions scale with the catalog so every item is trained:
    // items the training never touches keep their random init, and once
    // they are the majority (e.g. 20k interactions over a 200k catalog)
    // the measured ANN recall reflects that noise, not the index
    // (measured at 200k: recall@10 0.23 at the default nprobe with
    // kUsers*20 interactions vs 0.99 with 2 per item).
    data_cfg.target_interactions = std::max(kUsers * 20, num_items * 2);
    data_cfg.num_facets = 4;
    data_cfg.seed = 7;
    const auto dataset = GenerateSyntheticDataset(data_cfg);

    Bpr model(BprConfig{.dim = 32});
    TrainOptions train;
    // Trained to convergence on the small interaction set (tens of ms):
    // ANN recall is a property of how clustered the learned embeddings
    // are, and a near-random model makes the recall gate meaningless
    // (measured: recall@10 at the default nprobe is ~0.4 after a
    // 2000-step skim vs ~0.97 after 5 real epochs, same index).
    train.epochs = 5;
    train.learning_rate = 0.05;
    train.seed = 42;
    model.Fit(*dataset, train);

    TopKServerOptions opts;
    opts.k = kTopK;
    opts.cache.max_users = kUsers;
    TopKServer server(&model, kUsers, num_items, opts);

    // Cold: each query is a distinct user → guaranteed cache miss. Best
    // of several bursts (disjoint user ranges, so every query stays a
    // miss): on hosts with invisible neighbor contention a single burst
    // can read 2x slow, and the regression gate needs the code's cost,
    // not the host's mood. Same policy for the cached and incremental
    // sections below (and bench_load does the same).
    const size_t cold_queries = fast ? 50 : 200;
    const size_t kBursts = 3;
    double cold_ms = 0.0;
    for (size_t b = 0; b < kBursts; ++b) {
      Timer cold_timer;
      for (size_t q = 0; q < cold_queries; ++q) {
        server.TopK(static_cast<UserId>((b * cold_queries + q) % kUsers));
      }
      const double ms = cold_timer.ElapsedMillis() / cold_queries;
      cold_ms = b == 0 ? ms : std::min(cold_ms, ms);
    }

    // Cached: the same users again, repeatedly → every query an LRU hit.
    const size_t hot_queries = fast ? 5000 : 20000;
    double cached_ms = 0.0;
    for (size_t b = 0; b < kBursts; ++b) {
      Timer hot_timer;
      for (size_t q = 0; q < hot_queries; ++q) {
        server.TopK(static_cast<UserId>(q % cold_queries));
      }
      const double ms = hot_timer.ElapsedMillis() / hot_queries;
      cached_ms = b == 0 ? ms : std::min(cached_ms, ms);
    }

    const auto stats = server.stats();
    ServeResult r;
    r.num_items = num_items;
    r.cold_ms = cold_ms;
    r.cached_ms = cached_ms;
    r.speedup = cached_ms > 0.0 ? cold_ms / cached_ms : 0.0;
    results.push_back(r);
    std::printf(
        "items=%-6zu cold %8.4f ms/q (%9.0f qps)   cached %8.5f ms/q "
        "(%9.0f qps)   speedup %7.1fx   [hits=%llu misses=%llu]\n",
        num_items, cold_ms, 1e3 / cold_ms, cached_ms, 1e3 / cached_ms,
        r.speedup, static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses));

    // --- ANN probe-then-rerank: recall/latency curve over nprobe. -------
    // One spherical IVF build per size; every operating point is a cheap
    // nprobe clone injected into its own server, so the sweep measures
    // the serving miss path end to end (probe + exact re-rank + rank),
    // not the index in isolation. recall@10 is measured against the
    // brute-force oracle; the committed default point is what
    // scripts/check_bench.py gates (recall >= 0.95, >= 3x over the cold
    // sweep at >= 50k items).
    if (num_items >= 10000) {
      Timer build_timer;
      const auto base = SphericalIvfIndex::Build(model, num_items,
                                                 AnnIndexOptions{}, nullptr);
      AnnResult ar;
      ar.num_items = num_items;
      ar.index_dim = model.index_dim();
      ar.num_centroids = base->num_centroids();
      ar.build_ms = build_timer.ElapsedMillis();

      // Brute-force oracle top-k for the recall sample.
      const size_t recall_users = fast ? 50 : 100;
      std::vector<ItemId> all_ids(num_items);
      for (ItemId v = 0; v < num_items; ++v) all_ids[v] = v;
      std::vector<float> all_scores(num_items);
      std::vector<std::vector<ItemId>> oracle(recall_users);
      for (UserId u = 0; u < recall_users; ++u) {
        model.ScoreItems(u, all_ids, all_scores.data());
        std::vector<std::pair<float, ItemId>> ranked(num_items);
        for (size_t i = 0; i < num_items; ++i) {
          ranked[i] = {all_scores[i], all_ids[i]};
        }
        std::partial_sort(ranked.begin(), ranked.begin() + kTopK,
                          ranked.end(), [](const auto& a, const auto& b) {
                            return a.first > b.first ||
                                   (a.first == b.first && a.second < b.second);
                          });
        for (size_t i = 0; i < kTopK; ++i) {
          oracle[u].push_back(ranked[i].second);
        }
      }

      const size_t ann_queries = fast ? 50 : 200;
      const auto eval_point = [&](size_t nprobe) {
        AnnPoint p;
        TopKServerOptions aopts;
        aopts.k = kTopK;
        aopts.cache.max_users = kUsers;
        aopts.ann.prebuilt = base->CloneWithNprobe(nprobe);
        TopKServer aserver(&model, kUsers, num_items, aopts);
        p.nprobe = static_cast<const SphericalIvfIndex&>(*aopts.ann.prebuilt)
                       .nprobe();
        size_t hit = 0;
        for (UserId u = 0; u < recall_users; ++u) {
          const TopKResponse got = aserver.TopK(u);
          for (const ItemId v : got.items) {
            if (std::find(oracle[u].begin(), oracle[u].end(), v) !=
                oracle[u].end()) {
              ++hit;
            }
          }
        }
        p.recall_at_10 =
            static_cast<double>(hit) / (kTopK * recall_users);
        // Latency over never-cached users (disjoint from the recall
        // sample and across bursts → every query is an ANN miss);
        // best-of-bursts like the cold section.
        for (size_t b = 0; b < kBursts; ++b) {
          Timer t;
          for (size_t q = 0; q < ann_queries; ++q) {
            aserver.TopK(static_cast<UserId>(
                recall_users + (b * ann_queries + q) %
                                   (kUsers - recall_users)));
          }
          const double ms = t.ElapsedMillis() / ann_queries;
          p.ms_per_query = b == 0 ? ms : std::min(p.ms_per_query, ms);
        }
        p.speedup_vs_cold =
            p.ms_per_query > 0.0 ? cold_ms / p.ms_per_query : 0.0;
        return p;
      };

      ar.def = eval_point(base->nprobe());
      std::printf(
          "             ann default: ncent=%zu nprobe=%zu  build %7.1f ms  "
          "%8.4f ms/q  recall@%zu %.3f  %5.2fx vs cold\n",
          ar.num_centroids, ar.def.nprobe, ar.build_ms, ar.def.ms_per_query,
          kTopK, ar.def.recall_at_10, ar.def.speedup_vs_cold);
      // Brackets the auto default (ncent/32) on both sides, out to the
      // exact full-probe point (denom 1).
      for (const size_t denom : {64ul, 32ul, 16ul, 8ul, 1ul}) {
        const size_t nprobe =
            std::max<size_t>(1, ar.num_centroids / denom);
        if (!ar.sweep.empty() && ar.sweep.back().nprobe == nprobe) continue;
        ar.sweep.push_back(eval_point(nprobe));
        const AnnPoint& p = ar.sweep.back();
        std::printf(
            "             ann nprobe=%-4zu %8.4f ms/q  recall@%zu %.3f  "
            "%5.2fx vs cold\n",
            p.nprobe, p.ms_per_query, kTopK, p.recall_at_10,
            p.speedup_vs_cold);
      }
      ann_results.push_back(std::move(ar));
    }

    // --- Coalesced-batch serving: TopKBatch over B cold users vs B solo
    // cold sweeps. Dim 64, where one row's worth of loads feeds 64 FMAs
    // per user and sharing it across the batch pays for the extra live
    // accumulators (dim 32 hovers near the 1.5x bar on a noisy host, dim
    // 64 clears it with margin). The cache is disabled so every query is
    // a miss by construction, and TopKBatch is called directly — the
    // single-threaded deterministic entry into the same multi-user sweep
    // the concurrent coalescer uses, so the timing needs no thread
    // choreography and is comparable on a 1-core container. ---------------
    if (num_items >= 10000) {
      Bpr bmodel(BprConfig{.dim = 64});
      TrainOptions btrain;
      btrain.epochs = 5;
      btrain.learning_rate = 0.05;
      btrain.seed = 43;
      bmodel.Fit(*dataset, btrain);

      for (const size_t batch : {2ul, 4ul, 8ul}) {
        TopKServerOptions bopts;
        bopts.k = kTopK;
        bopts.cache.max_users = 0;  // every query a guaranteed miss
        bopts.batch.max_batch = batch;
        TopKServer solo_server(&bmodel, kUsers, num_items, bopts);
        TopKServer batch_server(&bmodel, kUsers, num_items, bopts);

        // Batch ≡ solo on the measured path: the per-model equivalence is
        // pinned by the tests; this guards the bench wiring itself.
        std::vector<UserId> sample(batch);
        for (size_t j = 0; j < batch; ++j) {
          sample[j] = static_cast<UserId>(j);
        }
        const std::vector<TopKResponse> sanity = batch_server.TopKBatch(sample);
        for (size_t j = 0; j < batch; ++j) {
          const TopKResponse want = solo_server.TopK(sample[j]);
          if (sanity[j].items != want.items ||
              sanity[j].scores != want.scores) {
            std::fprintf(stderr,
                         "batch/solo mismatch at items=%zu B=%zu user=%zu\n",
                         num_items, batch, static_cast<size_t>(sample[j]));
            return 1;
          }
        }

        const size_t groups = fast ? 8 : (num_items >= 200000 ? 8 : 25);
        std::vector<UserId> group_users(batch);
        double solo_ms = 0.0;
        double batch_ms = 0.0;
        for (size_t b = 0; b < kBursts; ++b) {
          Timer solo_timer;
          for (size_t g = 0; g < groups; ++g) {
            for (size_t j = 0; j < batch; ++j) {
              solo_server.TopK(static_cast<UserId>((g * batch + j) % kUsers));
            }
          }
          double ms = solo_timer.ElapsedMillis() / (groups * batch);
          solo_ms = b == 0 ? ms : std::min(solo_ms, ms);

          Timer batch_timer;
          for (size_t g = 0; g < groups; ++g) {
            for (size_t j = 0; j < batch; ++j) {
              group_users[j] =
                  static_cast<UserId>((g * batch + j) % kUsers);
            }
            batch_server.TopKBatch(group_users);
          }
          ms = batch_timer.ElapsedMillis() / (groups * batch);
          batch_ms = b == 0 ? ms : std::min(batch_ms, ms);
        }

        BatchServeResult br;
        br.num_items = num_items;
        br.batch = batch;
        br.solo_ms_per_user = solo_ms;
        br.batch_ms_per_user = batch_ms;
        br.speedup = batch_ms > 0.0 ? solo_ms / batch_ms : 0.0;
        batch_results.push_back(br);
        std::printf(
            "             coalesced batch B=%zu (dim 64): solo %8.4f "
            "ms/user   batched %8.4f ms/user   %5.2fx per user\n",
            batch, br.solo_ms_per_user, br.batch_ms_per_user, br.speedup);
      }
    }

    // --- Incremental re-sweep: AbsorbWrites with 1/8 of the item shards
    // dirty against a warm cache, measured per refreshed entry. ----------
    {
      TopKServer warm(&model, kUsers, num_items, opts);
      const size_t entries = fast ? 100 : 200;
      for (size_t u = 0; u < entries; ++u) {
        warm.TopK(static_cast<UserId>(u));
      }
      WriteTracker tracker(kUsers, num_items);
      const size_t total_shards = warm.num_item_shards();
      const size_t dirty_shards = (total_shards + 7) / 8;  // ≈ 1/8
      // Several publish rounds, best-of — a single round is one timed
      // call and too jitter-prone for the regression gate. Each round
      // re-marks the same shards; the model is unchanged, so every round
      // refreshes every entry through the exact-merge path.
      const size_t rounds = fast ? 3 : 7;
      double refresh_best = 0.0;
      for (size_t round = 0; round < rounds; ++round) {
        size_t marked = 0;
        for (ItemId v = 0; v < num_items && marked < dirty_shards; ++v) {
          if (tracker.ItemShardOf(v) == marked) {
            tracker.MarkItem(v);
            ++marked;
          }
        }
        Timer refresh_timer;
        warm.PublishEpoch(UnownedSnapshot<ItemScorer>(&model), &tracker);
        const double ms = refresh_timer.ElapsedMillis();
        refresh_best = round == 0 ? ms : std::min(refresh_best, ms);
      }
      const auto warm_stats = warm.stats();

      IncrementalResult inc;
      inc.num_items = num_items;
      inc.dirty_shards = dirty_shards;
      inc.total_shards = total_shards;
      inc.entries = entries;
      inc.refresh_ms_per_entry = refresh_best / entries;
      inc.cold_ms_per_query = cold_ms;
      inc.refresh_vs_cold =
          cold_ms > 0.0 ? inc.refresh_ms_per_entry / cold_ms : 0.0;
      incremental.push_back(inc);
      std::printf(
          "             incremental refresh: %zu/%zu shards dirty, "
          "%8.4f ms/entry (%llu refreshed) = %.3fx of a cold sweep\n",
          dirty_shards, total_shards, inc.refresh_ms_per_entry,
          static_cast<unsigned long long>(warm_stats.refreshed),
          inc.refresh_vs_cold);
    }

    // --- Multi-threaded QPS at the 10k catalog: hot/cold mix, racing a
    // background publisher that keeps absorbing a 1/8-dirty tracker. ----
    if (num_items == 10000) {
      mt_items = num_items;
      const size_t kHotSet = 64;
      for (const size_t threads : {1u, 2u, 4u, 8u}) {
        TopKServerOptions mt_opts;
        mt_opts.k = kTopK;
        mt_opts.cache.max_users = 256;  // cold tail evicts constantly
        TopKServer mt_server(&model, kUsers, num_items, mt_opts);
        for (UserId u = 0; u < kHotSet; ++u) mt_server.TopK(u);  // pre-warm

        std::atomic<bool> stop{false};
        std::thread publisher([&] {
          WriteTracker tracker(kUsers, num_items);
          while (!stop.load(std::memory_order_acquire)) {
            size_t marked = 0;
            const size_t total_shards = mt_server.num_item_shards();
            const size_t dirty = (total_shards + 7) / 8;
            for (ItemId v = 0; v < num_items && marked < dirty; ++v) {
              if (tracker.ItemShardOf(v) == marked) {
                tracker.MarkItem(v);
                ++marked;
              }
            }
            mt_server.PublishEpoch(UnownedSnapshot<ItemScorer>(&model),
                                   &tracker);
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        });

        const size_t queries_per_thread = fast ? 20000 : 50000;
        std::vector<std::thread> frontends;
        Timer mt_timer;
        for (size_t t = 0; t < threads; ++t) {
          frontends.emplace_back([&, t] {
            for (size_t q = 0; q < queries_per_thread; ++q) {
              // 90% hot working set (hits), 10% cold tail (miss+evict).
              const UserId u =
                  q % 10 != 0
                      ? static_cast<UserId>((q * 7 + t * 13) % kHotSet)
                      : static_cast<UserId>(
                            kHotSet + (q * 11 + t * 17) %
                                          (kUsers - kHotSet));
              mt_server.TopK(u);
            }
          });
        }
        for (auto& th : frontends) th.join();
        const double elapsed_ms = mt_timer.ElapsedMillis();
        stop.store(true, std::memory_order_release);
        publisher.join();

        MtResult mr;
        mr.threads = threads;
        mr.served = static_cast<unsigned long long>(threads) *
                    queries_per_thread;
        mr.qps = elapsed_ms > 0.0 ? mr.served / (elapsed_ms / 1e3) : 0.0;
        mr.speedup_vs_1 =
            mt_results.empty() ? 1.0 : mr.qps / mt_results.front().qps;
        mt_results.push_back(mr);
        std::printf(
            "             mt qps @%zu threads: %10.0f q/s (%.2fx vs 1 "
            "thread, %llu served, publisher churning)\n",
            threads, mr.qps, mr.speedup_vs_1, mr.served);
      }
    }

    // --- Wire-to-wire at the 10k catalog: loopback TCP through
    // NetServer, pipelined bursts of B requests ("macrobenchmarking is
    // vital" — the wire adds framing, checksums, syscalls, and a
    // reactor hop the in-process numbers never see). Depth B keeps B
    // requests in flight: the whole burst is one send(), so the
    // server's reactor wakes with all B frames buffered and feeds them
    // to one TopKBatch — the natural-batching path under load. Each
    // request's recorded latency is its burst's full round-trip (what a
    // caller awaiting the burst observes); at B = 1 that is the exact
    // per-request RTT. The 90/10 hot/cold user mix matches the mt
    // section. On a 1-CPU host client and server time-slice one core,
    // so the committed numbers are provenance, not scaling —
    // check_bench.py diffs them only when both runs saw > 1 CPU. ------
    if (num_items == 10000) {
      wire_items = num_items;
      TopKServerOptions wopts;
      wopts.k = kTopK;
      wopts.cache.max_users = 256;

      // Each burst depth gets a *fresh* TopKServer + NetServer: stat
      // attribution is per-B by construction (a lingering connection or
      // an in-flight flush from the previous depth can't bleed into the
      // next depth's wire_batches_multi/batch_sweeps counters the way a
      // shared server's before/after deltas could), and every depth
      // starts from the identical pre-warmed cache state.
      const size_t kHotSet = 64;
      for (const size_t depth : {1ul, 8ul, 32ul}) {
        TopKServer wire_topk(&model, kUsers, num_items, wopts);
        NetServerOptions nopts;
        NetServer net(&wire_topk, nopts);
        if (!net.Start()) {
          std::fprintf(stderr, "wire: NetServer failed to start\n");
          return 1;
        }
        wire_backend = net.backend_name();

        // Wire ≡ in-process on the measured path (the acceptance
        // bit-identity is pinned by tests/net; this guards the bench
        // wiring itself).
        {
          TopKServer solo(&model, kUsers, num_items, wopts);
          NetClient probe;
          WireResponse got;
          if (!probe.Connect("127.0.0.1", net.port()) ||
              !probe.TopK(TopKRequest{.user = 0}, &got) ||
              got.response.items != solo.TopK(0).items ||
              got.response.scores != solo.TopK(0).scores) {
            std::fprintf(stderr, "wire/in-process mismatch at items=%zu\n",
                         num_items);
            return 1;
          }
        }
        for (UserId u = 0; u < kHotSet; ++u) wire_topk.TopK(u);  // pre-warm

        NetClient client;
        if (!client.Connect("127.0.0.1", net.port())) {
          std::fprintf(stderr, "wire: connect failed\n");
          return 1;
        }
        const auto before_net = net.stats();
        const auto before_topk = wire_topk.stats();
        const size_t total = fast ? 2000 : 10000;
        const size_t bursts = total / depth;
        std::vector<double> lat_us;
        lat_us.reserve(bursts * depth);
        std::vector<TopKRequest> burst(depth);
        std::vector<WireResponse> responses;
        size_t q = 0;
        Timer run_timer;
        for (size_t g = 0; g < bursts; ++g) {
          for (size_t j = 0; j < depth; ++j, ++q) {
            const UserId u =
                q % 10 != 0
                    ? static_cast<UserId>((q * 7) % kHotSet)
                    : static_cast<UserId>(kHotSet +
                                          (q * 11) % (kUsers - kHotSet));
            burst[j] = TopKRequest{.user = u};
          }
          Timer burst_timer;
          if (!client.TopKPipelined(burst, &responses)) {
            std::fprintf(stderr, "wire: pipelined burst failed\n");
            return 1;
          }
          const double us = burst_timer.ElapsedMillis() * 1e3;
          for (size_t j = 0; j < depth; ++j) lat_us.push_back(us);
        }
        const double elapsed_ms = run_timer.ElapsedMillis();

        std::sort(lat_us.begin(), lat_us.end());
        WireResult wr;
        wr.pipeline = depth;
        wr.served = static_cast<unsigned long long>(lat_us.size());
        wr.qps = elapsed_ms > 0.0 ? lat_us.size() / (elapsed_ms / 1e3)
                                  : 0.0;
        wr.p50_us = lat_us[lat_us.size() / 2];
        wr.p99_us = lat_us[std::min(lat_us.size() - 1,
                                    lat_us.size() * 99 / 100)];
        const auto after_net = net.stats();
        const auto after_topk = wire_topk.stats();
        wr.wire_batches_multi =
            after_net.wire_batches_multi - before_net.wire_batches_multi;
        wr.batch_sweeps =
            after_topk.batch_sweeps - before_topk.batch_sweeps;
        wire_results.push_back(wr);
        std::printf(
            "             wire (%s) B=%-3zu %10.0f q/s   p50 %8.1f us   "
            "p99 %8.1f us   (%llu served, %llu multi-req batches)\n",
            wire_backend.c_str(), depth, wr.qps, wr.p50_us, wr.p99_us,
            wr.served, wr.wire_batches_multi);
        net.Stop();
      }
    }
  }

  // --- Restart at retrieval scale: the persisted index file vs a
  // from-scratch rebuild, to the first served query. The cold restart
  // pays k-means + full assignment over the catalog; the warm restart
  // mmaps the MRSI file (header/CRC validation included) and serves off
  // the borrowed arrays. The committed gate (scripts/check_bench.py
  // check_serve_ann): >= 5x at the million-item point, and recall@10 at
  // the default nprobe *equal* between built and mapped — the probes are
  // bit-identical, so any daylight between the two is a bug. -----------
  AnnRestartResult restart;
  {
    restart.num_items = fast ? 100000 : 1000000;
    const size_t kRestartUsers = 128;
    const UserId kProbeUser = 127;  // outside the recall sample
    RestartScorer rmodel(kRestartUsers, restart.num_items, 32, 11);

    Timer build_timer;
    auto built = SphericalIvfIndex::Build(rmodel, restart.num_items,
                                          AnnIndexOptions{}, nullptr);
    restart.build_ms = build_timer.ElapsedMillis();
    restart.num_centroids = built->num_centroids();

    const std::string index_path = "bench_serve_restart.annidx";
    Timer save_timer;
    if (!SaveCandidateIndex(*built, index_path)) {
      std::fprintf(stderr, "restart: cannot write %s\n", index_path.c_str());
      return 1;
    }
    restart.save_ms = save_timer.ElapsedMillis();
    struct stat st {};
    if (::stat(index_path.c_str(), &st) == 0) {
      restart.index_bytes = static_cast<unsigned long long>(st.st_size);
    }

    // Load repeatedly, best-of (page-cache-warm mmap + validation is the
    // steady-state restart cost, same min-over-repeats policy as
    // bench_load); the last mapping is the one served below.
    std::shared_ptr<const CandidateIndex> mapped;
    for (size_t rep = 0; rep < 3; ++rep) {
      Timer load_timer;
      mapped = LoadCandidateIndexMapped(index_path, rmodel,
                                        restart.num_items);
      const double ms = load_timer.ElapsedMillis();
      if (mapped == nullptr) {
        std::fprintf(stderr, "restart: cannot map %s\n", index_path.c_str());
        return 1;
      }
      restart.load_ms =
          rep == 0 ? ms : std::min(restart.load_ms, ms);
    }

    TopKServerOptions ropts;
    ropts.k = kTopK;
    ropts.cache.max_users = kRestartUsers;
    ropts.ann.prebuilt = std::move(built);
    TopKServerOptions mopts = ropts;
    mopts.ann.prebuilt = mapped;
    TopKServer built_server(&rmodel, kRestartUsers, restart.num_items,
                            ropts);
    TopKServer mapped_server(&rmodel, kRestartUsers, restart.num_items,
                             mopts);
    Timer fq_built;
    built_server.TopK(kProbeUser);
    restart.first_query_built_ms = fq_built.ElapsedMillis();
    Timer fq_mapped;
    mapped_server.TopK(kProbeUser);
    restart.first_query_mapped_ms = fq_mapped.ElapsedMillis();
    restart.cold_restart_ms =
        restart.build_ms + restart.first_query_built_ms;
    restart.warm_restart_ms =
        restart.load_ms + restart.first_query_mapped_ms;
    restart.restart_speedup =
        restart.warm_restart_ms > 0.0
            ? restart.cold_restart_ms / restart.warm_restart_ms
            : 0.0;

    // Recall at the default nprobe against the brute-force oracle, for
    // both servers over the same sample — plus full response identity.
    const size_t recall_users = 32;
    std::vector<ItemId> all_ids(restart.num_items);
    for (ItemId v = 0; v < restart.num_items; ++v) all_ids[v] = v;
    std::vector<float> all_scores(restart.num_items);
    size_t hit_built = 0, hit_mapped = 0;
    for (UserId u = 0; u < recall_users; ++u) {
      rmodel.ScoreItems(u, all_ids, all_scores.data());
      std::vector<std::pair<float, ItemId>> ranked(restart.num_items);
      for (size_t i = 0; i < restart.num_items; ++i) {
        ranked[i] = {all_scores[i], all_ids[i]};
      }
      std::partial_sort(ranked.begin(), ranked.begin() + kTopK, ranked.end(),
                        [](const auto& a, const auto& b) {
                          return a.first > b.first ||
                                 (a.first == b.first && a.second < b.second);
                        });
      const TopKResponse from_built = built_server.TopK(u);
      const TopKResponse from_mapped = mapped_server.TopK(u);
      for (size_t i = 0; i < kTopK; ++i) {
        const ItemId v = ranked[i].second;
        if (std::find(from_built.items.begin(), from_built.items.end(), v) !=
            from_built.items.end()) {
          ++hit_built;
        }
        if (std::find(from_mapped.items.begin(), from_mapped.items.end(),
                      v) != from_mapped.items.end()) {
          ++hit_mapped;
        }
      }
      ++restart.responses_checked;
      if (from_built.items == from_mapped.items &&
          from_built.scores == from_mapped.scores) {
        ++restart.responses_identical;
      }
    }
    restart.recall_built =
        static_cast<double>(hit_built) / (kTopK * recall_users);
    restart.recall_mapped =
        static_cast<double>(hit_mapped) / (kTopK * recall_users);
    std::remove(index_path.c_str());

    std::printf(
        "\n  ann restart @%zu items (ncent=%zu, %.1f MiB file):\n"
        "    cold  build %9.1f ms + query %7.2f ms = %9.1f ms\n"
        "    warm  mmap  %9.3f ms + query %7.2f ms = %9.3f ms   "
        "(save %.1f ms)\n"
        "    speedup %.0fx   recall@%zu built %.4f mapped %.4f   "
        "%zu/%zu responses identical\n",
        restart.num_items, restart.num_centroids,
        restart.index_bytes / (1024.0 * 1024.0), restart.build_ms,
        restart.first_query_built_ms, restart.cold_restart_ms,
        restart.load_ms, restart.first_query_mapped_ms,
        restart.warm_restart_ms, restart.save_ms, restart.restart_speedup,
        kTopK, restart.recall_built, restart.recall_mapped,
        restart.responses_identical, restart.responses_checked);
  }

  // --- Scenario sweep: the whole catalog of deterministic traffic
  // scenarios (src/scenario) runs against the live stack — trainer
  // publishing epochs, full-probe ANN serving, NetServer over loopback —
  // with every invariant checker armed. The digests pin the exact
  // traffic (replayable from name + seed); violations must be zero on
  // any host; the latencies are provenance, diffed only when both runs
  // saw > 1 CPU (scripts/check_bench.py check_serve_scenarios). --------
  constexpr uint64_t kScenarioSeed = 42;
  std::vector<std::pair<std::string, ScenarioReport>> scenario_results;
  std::printf("\n  scenarios (seed %llu):\n",
              static_cast<unsigned long long>(kScenarioSeed));
  for (const std::string& name : ScenarioNames()) {
    ScenarioRunner runner(CanonicalScenarioSpec(name, kScenarioSeed));
    ScenarioReport rep = runner.Run();
    if (!rep.ran) {
      std::fprintf(stderr, "scenario %s failed: %s\n", name.c_str(),
                   rep.error.c_str());
      return 1;
    }
    std::printf(
        "    %-20s digest %016llx  %5zu responses  %zu violations  "
        "p50 %6.3f ms  p99 %6.3f ms%s\n",
        name.c_str(), static_cast<unsigned long long>(rep.trace_digest),
        rep.responses, rep.violations(), rep.p50_ms, rep.p99_ms,
        rep.p99_enforced ? "" : "  (p99 unenforced: 1 cpu)");
    scenario_results.emplace_back(name, std::move(rep));
  }

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"topk_serve\",\n");
  std::fprintf(out, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(out, "  \"fast_mode\": %s,\n", fast ? "true" : "false");
  std::fprintf(out, "  \"model\": {\"type\": \"BPR\", \"dim\": 32},\n");
  std::fprintf(out, "  \"k\": %zu,\n", kTopK);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ServeResult& r = results[i];
    std::fprintf(out,
                 "    {\"num_items\": %zu, \"cold_ms_per_query\": %.6f, "
                 "\"cached_ms_per_query\": %.6f, \"cached_speedup\": %.2f}%s\n",
                 r.num_items, r.cold_ms, r.cached_ms, r.speedup,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"ann\": [\n");
  for (size_t i = 0; i < ann_results.size(); ++i) {
    const AnnResult& r = ann_results[i];
    const auto point = [&](const AnnPoint& p) {
      std::fprintf(out,
                   "{\"nprobe\": %zu, \"ms_per_query\": %.6f, "
                   "\"recall_at_10\": %.4f, \"speedup_vs_cold\": %.2f}",
                   p.nprobe, p.ms_per_query, p.recall_at_10,
                   p.speedup_vs_cold);
    };
    std::fprintf(out,
                 "    {\"num_items\": %zu, \"index\": \"spherical_ivf\", "
                 "\"index_dim\": %zu, \"num_centroids\": %zu, "
                 "\"build_ms\": %.3f,\n     \"default\": ",
                 r.num_items, r.index_dim, r.num_centroids, r.build_ms);
    point(r.def);
    std::fprintf(out, ",\n     \"sweep\": [\n");
    for (size_t j = 0; j < r.sweep.size(); ++j) {
      std::fprintf(out, "      ");
      point(r.sweep[j]);
      std::fprintf(out, "%s\n", j + 1 < r.sweep.size() ? "," : "");
    }
    std::fprintf(out, "     ]}%s\n", i + 1 < ann_results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(
      out,
      "  \"ann_restart\": {\"num_items\": %zu, \"num_centroids\": %zu, "
      "\"index_bytes\": %llu,\n"
      "    \"build_ms\": %.3f, \"save_ms\": %.3f, \"load_ms\": %.3f,\n"
      "    \"first_query_built_ms\": %.3f, \"first_query_mapped_ms\": %.3f,\n"
      "    \"cold_restart_ms\": %.3f, \"warm_restart_ms\": %.3f, "
      "\"restart_speedup\": %.2f,\n"
      "    \"recall_built\": %.4f, \"recall_mapped\": %.4f, "
      "\"responses_checked\": %zu, \"responses_identical\": %zu},\n",
      restart.num_items, restart.num_centroids, restart.index_bytes,
      restart.build_ms, restart.save_ms, restart.load_ms,
      restart.first_query_built_ms, restart.first_query_mapped_ms,
      restart.cold_restart_ms, restart.warm_restart_ms,
      restart.restart_speedup, restart.recall_built, restart.recall_mapped,
      restart.responses_checked, restart.responses_identical);
  // Per-section host_cpus: the batch section is single-threaded by design
  // (its gate is armed even on 1-CPU hosts), but recording the cores the
  // section actually saw keeps every section's provenance self-contained.
  std::fprintf(out,
               "  \"batch\": {\"host_cpus\": %u, \"model\": "
               "{\"type\": \"BPR\", \"dim\": 64}, \"results\": [\n",
               host_cpus);
  for (size_t i = 0; i < batch_results.size(); ++i) {
    const BatchServeResult& r = batch_results[i];
    std::fprintf(out,
                 "    {\"num_items\": %zu, \"batch_size\": %zu, "
                 "\"solo_ms_per_user\": %.6f, \"batch_ms_per_user\": %.6f, "
                 "\"speedup_per_user\": %.3f}%s\n",
                 r.num_items, r.batch, r.solo_ms_per_user,
                 r.batch_ms_per_user, r.speedup,
                 i + 1 < batch_results.size() ? "," : "");
  }
  std::fprintf(out, "  ]},\n");
  std::fprintf(out, "  \"incremental\": [\n");
  for (size_t i = 0; i < incremental.size(); ++i) {
    const IncrementalResult& r = incremental[i];
    std::fprintf(
        out,
        "    {\"num_items\": %zu, \"dirty_shards\": %zu, "
        "\"total_shards\": %zu, \"entries\": %zu, "
        "\"refresh_ms_per_entry\": %.6f, \"cold_ms_per_query\": %.6f, "
        "\"refresh_vs_cold\": %.4f}%s\n",
        r.num_items, r.dirty_shards, r.total_shards, r.entries,
        r.refresh_ms_per_entry, r.cold_ms_per_query, r.refresh_vs_cold,
        i + 1 < incremental.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"mt\": {\"num_items\": %zu, \"host_cpus\": %u, "
               "\"results\": [\n",
               mt_items, host_cpus);
  for (size_t i = 0; i < mt_results.size(); ++i) {
    const MtResult& r = mt_results[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"qps\": %.1f, "
                 "\"speedup_vs_1\": %.3f, \"served\": %llu}%s\n",
                 r.threads, r.qps, r.speedup_vs_1, r.served,
                 i + 1 < mt_results.size() ? "," : "");
  }
  std::fprintf(out, "  ]},\n");
  std::fprintf(out,
               "  \"wire\": {\"num_items\": %zu, \"host_cpus\": %u, "
               "\"backend\": \"%s\", \"results\": [\n",
               wire_items, host_cpus, wire_backend.c_str());
  for (size_t i = 0; i < wire_results.size(); ++i) {
    const WireResult& r = wire_results[i];
    std::fprintf(out,
                 "    {\"pipeline\": %zu, \"qps\": %.1f, "
                 "\"p50_us\": %.2f, \"p99_us\": %.2f, \"served\": %llu, "
                 "\"wire_batches_multi\": %llu, \"batch_sweeps\": %llu}%s\n",
                 r.pipeline, r.qps, r.p50_us, r.p99_us, r.served,
                 r.wire_batches_multi, r.batch_sweeps,
                 i + 1 < wire_results.size() ? "," : "");
  }
  std::fprintf(out, "  ]},\n");
  std::fprintf(out,
               "  \"scenarios\": {\"host_cpus\": %u, \"seed\": %llu, "
               "\"results\": [\n",
               host_cpus, static_cast<unsigned long long>(kScenarioSeed));
  for (size_t i = 0; i < scenario_results.size(); ++i) {
    const ScenarioReport& r = scenario_results[i].second;
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"digest\": \"%016llx\", "
        "\"responses\": %zu, \"published_epochs\": %zu, "
        "\"violations\": %zu, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"p99_enforced\": %s, \"reconnects\": %zu, "
        "\"stream_closes\": %zu, \"backpressure_closes\": %llu}%s\n",
        scenario_results[i].first.c_str(),
        static_cast<unsigned long long>(r.trace_digest), r.responses,
        r.published_epochs, r.violations(), r.p50_ms, r.p99_ms,
        r.p99_enforced ? "true" : "false", r.reconnects, r.stream_closes,
        static_cast<unsigned long long>(r.backpressure_closes),
        i + 1 < scenario_results.size() ? "," : "");
  }
  std::fprintf(out, "  ]}\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
