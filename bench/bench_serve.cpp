// Serving-throughput bench: cold full-catalog sweeps vs cached hot-user
// queries through the TopKServer, at several catalog sizes. Emits
// machine-readable JSON (BENCH_serve.json via scripts/bench.sh or the
// ci.sh --bench stage) so serving perf regressions are diffable.
//
// The model is BPR (DotBatch sweep — the cheapest per-item kernel, which
// makes the *server* overhead the subject rather than the model), trained
// just enough to have non-degenerate embeddings. "Cold" queries distinct
// never-cached users, so every query pays the full sweep + heap merge;
// "cached" re-queries the same users, so every query is an LRU hit. The
// acceptance bar from the serving roadmap: cached ≥ 5x cold at ≥ 10k items.
//
// Single-threaded on purpose (no sweep pool): scripts/check_bench.py
// compares these numbers across machines/runs, and single-thread timings
// are the only ones comparable on a 1-core CI container (host_cpus is
// recorded for the same reason as bench_train).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "data/synthetic.h"
#include "models/bpr.h"
#include "serve/top_k_server.h"

namespace {

struct ServeResult {
  size_t num_items = 0;
  double cold_ms = 0.0;    // per query, full-catalog sweep
  double cached_ms = 0.0;  // per query, LRU hit
  double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mars;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const bool fast = BenchFastMode();

  const std::vector<size_t> catalog_sizes =
      fast ? std::vector<size_t>{1000, 10000}
           : std::vector<size_t>{2000, 10000, 50000};
  const size_t kUsers = fast ? 300 : 1000;
  const size_t kTopK = 10;

  bench::Banner("bench_serve — TopKServer cold sweep vs cached hot users");
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("host cpus: %u  k=%zu  users=%zu\n\n", host_cpus, kTopK,
              kUsers);

  std::vector<ServeResult> results;
  for (const size_t num_items : catalog_sizes) {
    SyntheticConfig data_cfg;
    data_cfg.num_users = kUsers;
    data_cfg.num_items = num_items;
    data_cfg.target_interactions = kUsers * 20;
    data_cfg.num_facets = 4;
    data_cfg.seed = 7;
    const auto dataset = GenerateSyntheticDataset(data_cfg);

    Bpr model(BprConfig{.dim = 32});
    TrainOptions train;
    train.epochs = 1;
    train.steps_per_epoch = 2000;  // embeddings only need to be non-trivial
    train.learning_rate = 0.05;
    train.seed = 42;
    model.Fit(*dataset, train);

    TopKServerOptions opts;
    opts.k = kTopK;
    opts.max_cached_users = kUsers;
    TopKServer server(&model, kUsers, num_items, opts);

    // Cold: each query is a distinct user → guaranteed cache miss.
    const size_t cold_queries = fast ? 50 : 200;
    Timer cold_timer;
    for (size_t q = 0; q < cold_queries; ++q) {
      server.TopK(static_cast<UserId>(q % kUsers));
    }
    const double cold_ms = cold_timer.ElapsedMillis() / cold_queries;

    // Cached: the same users again, repeatedly → every query an LRU hit.
    const size_t hot_queries = fast ? 5000 : 20000;
    Timer hot_timer;
    for (size_t q = 0; q < hot_queries; ++q) {
      server.TopK(static_cast<UserId>(q % cold_queries));
    }
    const double cached_ms = hot_timer.ElapsedMillis() / hot_queries;

    const auto stats = server.stats();
    ServeResult r;
    r.num_items = num_items;
    r.cold_ms = cold_ms;
    r.cached_ms = cached_ms;
    r.speedup = cached_ms > 0.0 ? cold_ms / cached_ms : 0.0;
    results.push_back(r);
    std::printf(
        "items=%-6zu cold %8.4f ms/q (%9.0f qps)   cached %8.5f ms/q "
        "(%9.0f qps)   speedup %7.1fx   [hits=%llu misses=%llu]\n",
        num_items, cold_ms, 1e3 / cold_ms, cached_ms, 1e3 / cached_ms,
        r.speedup, static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses));
  }

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"topk_serve\",\n");
  std::fprintf(out, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(out, "  \"fast_mode\": %s,\n", fast ? "true" : "false");
  std::fprintf(out, "  \"model\": {\"type\": \"BPR\", \"dim\": 32},\n");
  std::fprintf(out, "  \"k\": %zu,\n", kTopK);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ServeResult& r = results[i];
    std::fprintf(out,
                 "    {\"num_items\": %zu, \"cold_ms_per_query\": %.6f, "
                 "\"cached_ms_per_query\": %.6f, \"cached_speedup\": %.2f}%s\n",
                 r.num_items, r.cold_ms, r.cached_ms, r.speedup,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
