// Reproduces Table II: overall performance comparison.
//
// Trains all ten models (BPR, NMF, NeuMF, CML, MetricF, TransCF, LRML,
// SML, MAR, MARS) on each of the six benchmark analogues and prints
// HR@10/20 and nDCG@10/20 in the paper's layout, including the Imp1
// (MAR over best baseline) and Imp2 (MARS over best baseline) columns.
//
// Expected shape (not absolute values — see EXPERIMENTS.md):
//  * metric-learning models beat the MF family,
//  * MAR beats every single-space baseline,
//  * MARS beats MAR, with the largest margins on the sparser datasets.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "data/benchmark_datasets.h"

namespace mars {
namespace {

const std::vector<std::string>& Metrics() {
  static const std::vector<std::string>* const kMetrics =
      new std::vector<std::string>{"HR@10", "HR@20", "nDCG@10", "nDCG@20"};
  return *kMetrics;
}

void Run() {
  bench::Banner("Table II — overall comparison on six benchmark datasets");
  const bool fast = BenchFastMode();
  ThreadPool pool(DefaultThreadCount());
  Timer total;

  TablePrinter table("Table II (HR/nDCG, ten models, Imp1 = MAR vs best "
                     "baseline, Imp2 = MARS vs best baseline)");
  std::vector<std::string> header = {"Dataset", "Metric"};
  for (ModelId id : AllModels()) header.push_back(ModelName(id));
  header.push_back("Imp1.");
  header.push_back("Imp2.");
  table.SetHeader(header);

  for (BenchmarkId ds_id : AllBenchmarks()) {
    const std::string ds_name = BenchmarkName(ds_id);
    ExperimentData data(MakeBenchmarkDataset(ds_id, fast), 13);

    std::map<ModelId, RankingMetrics> results;
    for (ModelId model_id : AllModels()) {
      results[model_id] =
          RunTunedExperiment(model_id, ds_id, &data, fast, &pool).test;
    }

    bool first = true;
    for (const std::string& metric : Metrics()) {
      // Best baseline = best among the eight non-MAR/MARS models.
      double best_baseline = 0.0;
      for (ModelId id : AllModels()) {
        if (id == ModelId::kMar || id == ModelId::kMars) continue;
        best_baseline = std::max(best_baseline, results[id].Get(metric));
      }
      std::vector<std::string> row = {first ? ds_name : "", metric};
      for (ModelId id : AllModels()) {
        row.push_back(bench::Metric(results[id].Get(metric)));
      }
      row.push_back(bench::Improvement(results[ModelId::kMar].Get(metric),
                                       best_baseline));
      row.push_back(bench::Improvement(results[ModelId::kMars].Get(metric),
                                       best_baseline));
      table.AddRow(row);
      first = false;
    }
    table.AddSeparator();
  }
  table.Print();
  table.WriteCsv("table2_overall.csv");
  std::printf("\nTotal wall clock: %.1fs (results also in "
              "table2_overall.csv)\n", total.ElapsedSeconds());
}

}  // namespace
}  // namespace mars

int main() {
  mars::Run();
  return 0;
}
