// Reproduces Table VI: examples of user profiles modeled by MARS (Ciao
// analogue).
//
// For a few users with multi-modal activity, prints the learned facet
// weights θ_u^k together with the categories of the items they interacted
// with, attributed to the facet of highest user-item cosine similarity —
// the "Bob / Mary" stereotype-combination view of the paper.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/facet_analysis.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "core/mars.h"
#include "data/benchmark_datasets.h"
#include "data/split.h"

namespace mars {
namespace {

void Run() {
  bench::Banner("Table VI — example user profiles (Ciao)");
  const bool fast = BenchFastMode();

  const auto full = MakeBenchmarkDataset(BenchmarkId::kCiao, fast);
  const auto split = MakeLeaveOneOutSplit(*full, 13);

  Mars model(HarnessFacetConfig());
  model.Fit(*split.train, HarnessTrainOptions(ModelId::kMars, fast));
  const FacetView view = MakeFacetView(model);

  // Pick the three most active users (rich histories profile best).
  std::vector<UserId> candidates;
  for (UserId u = 0; u < split.train->num_users(); ++u) candidates.push_back(u);
  std::sort(candidates.begin(), candidates.end(), [&](UserId a, UserId b) {
    return split.train->UserDegree(a) > split.train->UserDegree(b);
  });

  TablePrinter table("Table VI (θ_u^k + interacted categories per facet)");
  table.SetHeader({"User", "k", "θ_u^k", "Interacted categories: count"});
  const char* fake_names[] = {"Bob", "Mary", "Alice"};
  for (int i = 0; i < 3 && i < static_cast<int>(candidates.size()); ++i) {
    const UserId u = candidates[i];
    const UserFacetProfile profile = ProfileUser(view, *split.train, u);
    for (size_t k = 0; k < profile.theta.size(); ++k) {
      std::string cats;
      size_t listed = 0;
      for (const auto& [name, count] : profile.facet_categories[k]) {
        if (listed++ >= 3) {
          cats += "...";
          break;
        }
        if (!cats.empty()) cats += "; ";
        cats += name + ": " + std::to_string(count);
      }
      if (cats.empty()) cats = "-";
      table.AddRow({k == 0 ? std::string(fake_names[i]) + " (u" +
                                 std::to_string(u) + ")"
                           : "",
                    "k=" + std::to_string(k + 1),
                    FormatFixed(profile.theta[k], 2), cats});
    }
    table.AddSeparator();
  }
  table.Print();
  table.WriteCsv("table6_profiles.csv");
}

}  // namespace
}  // namespace mars

int main() {
  mars::Run();
  return 0;
}
