// Component ablation of MARS (the design choices DESIGN.md calls out).
//
// Removes one ingredient at a time on Delicious and Ciao:
//  * adaptive margin γ_u → fixed margin 0.5           (Eq. 7-8)
//  * frequency-biased sampling → uniform              (Eq. 10)
//  * pulling loss λ_pull → 0                          (Eq. 9/16)
//  * facet-separating loss λ_facet → 0                (Eq. 6/12)
//  * calibrated Riemannian step → plain Riemannian    (Eq. 21 vs Eq. 20)
//  * NMF facet-weight init → uniform init
//  * facet-lr compensation → off
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/mars.h"
#include "data/benchmark_datasets.h"

namespace mars {
namespace {

struct Variant {
  std::string name;
  std::function<void(MultiFacetConfig*, MarsOptions*)> apply;
};

void Run() {
  bench::Banner("Ablation — MARS components (Delicious, Ciao)");
  const bool fast = BenchFastMode();
  ThreadPool pool(DefaultThreadCount());

  const std::vector<Variant> variants = {
      {"MARS (full)", [](MultiFacetConfig*, MarsOptions*) {}},
      {"- adaptive margin (fixed 0.5)",
       [](MultiFacetConfig* c, MarsOptions*) {
         c->adaptive_margin = false;
         c->fixed_margin = 0.5;
       }},
      {"- biased sampling (uniform)",
       [](MultiFacetConfig* c, MarsOptions*) { c->biased_sampling = false; }},
      {"- pull loss (lambda_pull=0)",
       [](MultiFacetConfig* c, MarsOptions*) { c->lambda_pull = 0.0; }},
      {"- facet loss (lambda_facet=0)",
       [](MultiFacetConfig* c, MarsOptions*) { c->lambda_facet = 0.0; }},
      {"- calibration (plain RSGD)",
       [](MultiFacetConfig*, MarsOptions* o) { o->calibrated = false; }},
      {"- NMF theta init (uniform)",
       [](MultiFacetConfig* c, MarsOptions*) { c->theta_init_nmf = false; }},
      {"- facet lr compensation",
       [](MultiFacetConfig* c, MarsOptions*) {
         c->scale_lr_by_facets = false;
       }},
  };

  TablePrinter table("MARS component ablation (test metrics)");
  table.SetHeader({"Dataset", "Variant", "HR@10", "nDCG@10", "ΔnDCG vs full"});

  for (BenchmarkId ds_id : {BenchmarkId::kDelicious, BenchmarkId::kCiao}) {
    const std::string ds_name = BenchmarkName(ds_id);
    ExperimentData data(MakeBenchmarkDataset(ds_id, fast), 13);

    double full_ndcg = 0.0;
    bool first = true;
    for (const Variant& variant : variants) {
      MultiFacetConfig cfg = HarnessFacetConfig();
      MarsOptions mopts;
      variant.apply(&cfg, &mopts);
      Mars model(cfg, mopts);
      const ExperimentResult r =
          RunExperiment(&model, &data,
                        HarnessTrainOptions(ModelId::kMars, fast), ds_name,
                        &pool);
      if (variant.name == "MARS (full)") full_ndcg = r.test.ndcg10;
      table.AddRow({first ? ds_name : "", variant.name,
                    bench::Metric(r.test.hr10), bench::Metric(r.test.ndcg10),
                    bench::Improvement(r.test.ndcg10, full_ndcg)});
      first = false;
    }
    table.AddSeparator();
  }
  table.Print();
  table.WriteCsv("ablation_components.csv");
}

}  // namespace
}  // namespace mars

int main() {
  mars::Run();
  return 0;
}
