// Snapshot-loading bench: time from a persisted MARS snapshot to the first
// served top-k query, for the two restart lifecycles:
//
//   v2 (status quo): LoadMars copy-deserializes into owned stores, the new
//       TopKServer starts cold, and the first query pays a full-catalog
//       sweep;
//   v3 (this roadmap item): LoadMarsMapped mmaps the aligned-stride file
//       (no copy), and the server is primed from the persisted top-k
//       sidecar (serve/top_k_sidecar.h), so the first hot-user query is a
//       cache hit instead of a sweep.
//
// A third lifecycle measures the *whole* restart unit of the retrieval
// tier: mmap the model, mmap the persisted ANN candidate index
// (ann/index_io.h — zero rebuild, no k-means), warm the cache from the
// sidecar, and serve the first query (`v3_index_warm_total_ms`). That is
// the restart path the quickstart and the restart_mid_traffic scenario
// exercise; bench_serve's ann_restart section gates its speedup at the
// million-item point.
//
// The headline `speedup_warm` compares those two end-to-end;
// `speedup_cold` isolates the load mechanism alone (v3 mmap but *cold*
// first sweep, which touches every page of the mapping — the honest
// zero-copy overhead) and is reported alongside. Acceptance bar from the
// roadmap: the v3 lifecycle reaches its first served query >= 5x faster
// than v2 copy-load at >= 10k items.
//
// Emits machine-readable JSON (BENCH_load.json via scripts/bench.sh or the
// ci.sh --bench stage). Single-threaded on purpose, like bench_serve:
// scripts/check_bench.py compares these numbers across machines/runs.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "ann/candidate_index.h"
#include "ann/index_io.h"
#include "bench_util.h"
#include "common/timer.h"
#include "core/mars.h"
#include "core/persistence.h"
#include "data/synthetic.h"
#include "serve/top_k_server.h"
#include "serve/top_k_sidecar.h"

namespace {

struct LoadResult {
  size_t num_items = 0;
  double v2_load_ms = 0.0;         // LoadMars (copy) alone
  double v2_first_query_ms = 0.0;  // cold TopK after the copy-load
  double v2_total_ms = 0.0;        // load + server + first query
  double v3_load_ms = 0.0;         // LoadMarsMapped (mmap) alone
  double v3_first_query_ms = 0.0;  // cold TopK over the mapping
  double v3_cold_total_ms = 0.0;   // mmap + server + cold first query
  double v3_warm_total_ms = 0.0;   // mmap + server + sidecar + hit query
  double index_load_ms = 0.0;      // LoadCandidateIndexMapped alone
  double v3_index_warm_total_ms = 0.0;  // + mapped ANN index in the unit
  double speedup_cold = 0.0;       // v2_total / v3_cold_total
  double speedup_warm = 0.0;       // v2_total / v3_warm_total (headline)
};

/// first ? store : running min — the repeat aggregation (see below).
void MinInto(double* slot, bool first, double value) {
  *slot = first ? value : std::min(*slot, value);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mars;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_load.json";
  const bool fast = BenchFastMode();

  const std::vector<size_t> catalog_sizes =
      fast ? std::vector<size_t>{1000, 10000}
           : std::vector<size_t>{2000, 10000, 50000};
  const size_t kUsers = fast ? 300 : 1000;
  const size_t kTopK = 10;
  // The sub-ms rows (small catalogs, and the µs-scale warm lifecycle) are
  // jitter-bound on shared hosts; enough repeats to keep identical-code
  // reruns inside the regression gate's 25% band.
  const size_t kRepeats = fast ? 3 : 11;
  const size_t kWarmInnerRepeats = 8;  // see the v3+sidecar block

  bench::Banner(
      "bench_load — v2 copy-load vs v3 mmap-load to first served query");
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("host cpus: %u  k=%zu  users=%zu  repeats=%zu\n\n", host_cpus,
              kTopK, kUsers, kRepeats);

  const std::string v2_path = "bench_load_model.v2";
  const std::string v3_path = "bench_load_model.v3";
  const std::string sidecar_path = "bench_load_topk.sidecar";
  const std::string index_path = "bench_load_index.annidx";
  // Scratch snapshots are removed on every exit path, early errors
  // included.
  struct Cleanup {
    const std::string &a, &b, &c, &d;
    ~Cleanup() {
      std::remove(a.c_str());
      std::remove(b.c_str());
      std::remove(c.c_str());
      std::remove(d.c_str());
    }
  } cleanup{v2_path, v3_path, sidecar_path, index_path};

  std::vector<LoadResult> results;
  for (const size_t num_items : catalog_sizes) {
    SyntheticConfig data_cfg;
    data_cfg.num_users = kUsers;
    data_cfg.num_items = num_items;
    data_cfg.target_interactions = kUsers * 20;
    data_cfg.num_facets = 4;
    data_cfg.seed = 7;
    const auto dataset = GenerateSyntheticDataset(data_cfg);

    // MARS itself (the serving payload whose FacetStore layout v3 mirrors),
    // trained just enough for non-degenerate embeddings.
    MultiFacetConfig model_cfg;
    model_cfg.dim = 32;
    model_cfg.num_facets = 4;
    Mars model(model_cfg);
    TrainOptions train;
    train.epochs = 1;
    train.steps_per_epoch = 2000;
    train.learning_rate = 0.2;
    train.seed = 42;
    model.Fit(*dataset, train);

    if (!SaveMars(model, v2_path) || !SaveMarsV3(model, v3_path)) {
      std::fprintf(stderr, "cannot write snapshots\n");
      return 1;
    }
    // Sidecar: the rankings a warm server would have had before restart.
    {
      TopKServerOptions opts;
      opts.k = kTopK;
      TopKServer warm_src(&model, kUsers, num_items, opts);
      for (UserId u = 0; u < 32; ++u) warm_src.TopK(u);
      if (!SaveTopKSidecar(warm_src, sidecar_path)) {
        std::fprintf(stderr, "cannot write sidecar\n");
        return 1;
      }
    }
    // ANN index: the third file of the restart unit, saved alongside the
    // snapshot + sidecar exactly as the quickstart does.
    {
      const auto index =
          BuildCandidateIndex(model, num_items, AnnIndexOptions{}, nullptr);
      if (index == nullptr || !SaveCandidateIndex(*index, index_path)) {
        std::fprintf(stderr, "cannot write candidate index\n");
        return 1;
      }
    }

    // Every metric is the *minimum* over repeats: these lifecycles are
    // dominated by syscalls and page faults, so their mean tracks the
    // machine's page-cache state (a CI run right after a large build can
    // read 2x an idle run of identical code). The min is the steady
    // warm-state cost — the stable code-regression signal the bench gate
    // needs; the v2-vs-v3 comparison is unchanged by the choice.
    LoadResult r;
    r.num_items = num_items;
    for (size_t rep = 0; rep < kRepeats; ++rep) {
      // v2: deserialize into owned stores, then sweep.
      {
        Timer load_timer;
        const auto loaded = LoadMars(v2_path);
        const double load_ms = load_timer.ElapsedMillis();
        if (loaded == nullptr) return 1;
        TopKServerOptions opts;
        opts.k = kTopK;
        TopKServer server(loaded.get(), kUsers, num_items, opts);
        Timer query_timer;
        server.TopK(0);
        const double query_ms = query_timer.ElapsedMillis();
        MinInto(&r.v2_load_ms, rep == 0, load_ms);
        MinInto(&r.v2_first_query_ms, rep == 0, query_ms);
        MinInto(&r.v2_total_ms, rep == 0, load_timer.ElapsedMillis());
      }
      // v3: mmap, then sweep straight over the mapping (page faults and
      // all — that is the honest first-query cost).
      {
        Timer load_timer;
        const auto mapped = LoadMarsMapped(v3_path);
        const double load_ms = load_timer.ElapsedMillis();
        if (mapped == nullptr) return 1;
        TopKServerOptions opts;
        opts.k = kTopK;
        TopKServer server(mapped.get(), kUsers, num_items, opts);
        Timer query_timer;
        server.TopK(0);
        const double query_ms = query_timer.ElapsedMillis();
        MinInto(&r.v3_load_ms, rep == 0, load_ms);
        MinInto(&r.v3_first_query_ms, rep == 0, query_ms);
        MinInto(&r.v3_cold_total_ms, rep == 0, load_timer.ElapsedMillis());
      }
      // v3 + sidecar: the full restart lifecycle — mmap, warm the cache
      // from the sidecar, answer the first hot-user query from cache.
      // This path is tens of microseconds end to end (syscall-dominated),
      // so it runs extra inner repeats: at kRepeats samples its
      // run-to-run jitter would exceed the regression gate's threshold.
      for (size_t w = 0; w < kWarmInnerRepeats; ++w) {
        Timer total_timer;
        const auto mapped = LoadMarsMapped(v3_path);
        if (mapped == nullptr) return 1;
        TopKServerOptions opts;
        opts.k = kTopK;
        TopKServer server(mapped.get(), kUsers, num_items, opts);
        if (WarmFromSidecar(&server, sidecar_path) == 0) return 1;
        server.TopK(0);
        MinInto(&r.v3_warm_total_ms, rep == 0 && w == 0,
                total_timer.ElapsedMillis());
      }
      // v3 + mapped index + sidecar: the whole retrieval-tier restart
      // unit — model mmap, MRSI index mmap (zero rebuild), sidecar warm,
      // first query. Same inner-repeat policy as the warm lifecycle: the
      // end-to-end cost is syscall-dominated at small catalogs.
      for (size_t w = 0; w < kWarmInnerRepeats; ++w) {
        Timer total_timer;
        const auto mapped = LoadMarsMapped(v3_path);
        if (mapped == nullptr) return 1;
        Timer index_timer;
        const auto index =
            LoadCandidateIndexMapped(index_path, *mapped, num_items);
        const double index_ms = index_timer.ElapsedMillis();
        if (index == nullptr) return 1;
        TopKServerOptions opts;
        opts.k = kTopK;
        opts.ann.prebuilt = index;
        TopKServer server(mapped.get(), kUsers, num_items, opts);
        if (WarmFromSidecar(&server, sidecar_path) == 0) return 1;
        server.TopK(0);
        MinInto(&r.index_load_ms, rep == 0 && w == 0, index_ms);
        MinInto(&r.v3_index_warm_total_ms, rep == 0 && w == 0,
                total_timer.ElapsedMillis());
      }
    }
    r.speedup_cold =
        r.v3_cold_total_ms > 0.0 ? r.v2_total_ms / r.v3_cold_total_ms : 0.0;
    r.speedup_warm =
        r.v3_warm_total_ms > 0.0 ? r.v2_total_ms / r.v3_warm_total_ms : 0.0;
    results.push_back(r);
    std::printf(
        "items=%-6zu v2 load %7.3f + query %6.3f = %7.3f ms   "
        "v3 mmap %6.3f cold %7.3f warm %7.3f ms   "
        "speedup cold %5.1fx warm %6.1fx   "
        "+index (%6.3f ms map) warm %7.3f ms\n",
        num_items, r.v2_load_ms, r.v2_first_query_ms, r.v2_total_ms,
        r.v3_load_ms, r.v3_cold_total_ms, r.v3_warm_total_ms,
        r.speedup_cold, r.speedup_warm, r.index_load_ms,
        r.v3_index_warm_total_ms);
  }
  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"mmap_load\",\n");
  std::fprintf(out, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(out, "  \"fast_mode\": %s,\n", fast ? "true" : "false");
  std::fprintf(out,
               "  \"model\": {\"type\": \"MARS\", \"dim\": 32, "
               "\"num_facets\": 4},\n");
  std::fprintf(out, "  \"k\": %zu,\n", kTopK);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const LoadResult& r = results[i];
    std::fprintf(
        out,
        "    {\"num_items\": %zu, \"v2_load_ms\": %.6f, "
        "\"v2_first_query_ms\": %.6f, \"v2_total_ms\": %.6f, "
        "\"v3_load_ms\": %.6f, \"v3_first_query_ms\": %.6f, "
        "\"v3_cold_total_ms\": %.6f, \"v3_warm_total_ms\": %.6f, "
        "\"index_load_ms\": %.6f, \"v3_index_warm_total_ms\": %.6f, "
        "\"speedup_cold\": %.2f, \"speedup_warm\": %.2f}%s\n",
        r.num_items, r.v2_load_ms, r.v2_first_query_ms, r.v2_total_ms,
        r.v3_load_ms, r.v3_first_query_ms, r.v3_cold_total_ms,
        r.v3_warm_total_ms, r.index_load_ms, r.v3_index_warm_total_ms,
        r.speedup_cold, r.speedup_warm,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
