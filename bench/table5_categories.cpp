// Reproduces Table V: top-5 categories with proportions in the different
// embedding spaces of MARS (Ciao analogue).
//
// The share of category c in facet k is the θ-weighted interaction mass
// (see analysis/facet_analysis.h). The paper's qualitative claim: facet
// spaces specialize — each is dominated by a different group of
// categories, interpretable as user stereotypes.
#include <cstdio>
#include <vector>

#include "analysis/facet_analysis.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "core/mars.h"
#include "data/benchmark_datasets.h"
#include "data/split.h"

namespace mars {
namespace {

void Run() {
  bench::Banner("Table V — top-5 categories per MARS facet space (Ciao)");
  const bool fast = BenchFastMode();

  const auto full = MakeBenchmarkDataset(BenchmarkId::kCiao, fast);
  const auto split = MakeLeaveOneOutSplit(*full, 13);

  Mars model(HarnessFacetConfig());
  model.Fit(*split.train, HarnessTrainOptions(ModelId::kMars, fast));

  const FacetView view = MakeFacetView(model);
  const auto shares = FacetCategoryShares(view, *split.train);

  TablePrinter table("Table V (category share of θ-weighted interaction "
                     "mass per facet)");
  table.SetHeader({"Facet", "Category", "Prop(%)"});
  for (size_t k = 0; k < shares.size(); ++k) {
    for (size_t rank = 0; rank < 5 && rank < shares[k].size(); ++rank) {
      const CategoryShare& cs = shares[k][rank];
      table.AddRow({rank == 0 ? "k=" + std::to_string(k + 1) : "", cs.name,
                    FormatFixed(cs.share * 100.0, 2)});
    }
    table.AddSeparator();
  }
  table.Print();
  table.WriteCsv("table5_categories.csv");

  // Specialization summary: how different are the facets' top categories?
  size_t distinct_tops = 0;
  std::vector<int> tops;
  for (const auto& facet : shares) {
    if (facet.empty()) continue;
    bool seen = false;
    for (int t : tops) {
      if (t == facet[0].category) seen = true;
    }
    if (!seen) {
      tops.push_back(facet[0].category);
      ++distinct_tops;
    }
  }
  std::printf("\nDistinct top categories across %zu facets: %zu\n",
              shares.size(), distinct_tops);
}

}  // namespace
}  // namespace mars

int main() {
  mars::Run();
  return 0;
}
