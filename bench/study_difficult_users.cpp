// Controlled study of "difficult" users (paper Sec. VI future work).
//
// The paper argues that weak norm constraints make models "lazy" exactly
// on difficult users — those with little or slightly contradictory
// training data — and that MARS's strict spherical constraint fixes this.
// The conclusion proposes studying it with users grouped by interaction
// count; this bench runs that experiment on Ciao and BookX:
// users are split into quartiles by training degree and CML / MAR / MARS
// are compared per quartile. Expected shape: MARS's relative gain over
// CML and MAR is largest in the low-degree (difficult) quartiles.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/mar.h"
#include "core/mars.h"
#include "data/benchmark_datasets.h"
#include "models/cml.h"

namespace mars {
namespace {

/// Assigns each user a quartile id (0 = least active) by training degree.
std::vector<int> DegreeQuartiles(const ImplicitDataset& train) {
  std::vector<UserId> order;
  for (UserId u = 0; u < train.num_users(); ++u) {
    if (train.UserDegree(u) > 0) order.push_back(u);
  }
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    return train.UserDegree(a) < train.UserDegree(b);
  });
  std::vector<int> group(train.num_users(), -1);
  for (size_t i = 0; i < order.size(); ++i) {
    group[order[i]] = static_cast<int>(i * 4 / order.size());
  }
  return group;
}

void Run() {
  bench::Banner(
      "Study — difficult users: per-degree-quartile comparison (Sec. VI)");
  const bool fast = BenchFastMode();
  ThreadPool pool(DefaultThreadCount());

  TablePrinter table(
      "HR@10 per user-activity quartile (Q1 = least active = hardest)");
  table.SetHeader({"Dataset", "Quartile", "Users", "CML", "MAR", "MARS",
                   "MARS vs CML"});

  for (BenchmarkId ds_id : {BenchmarkId::kCiao, BenchmarkId::kBookX}) {
    const std::string ds_name = BenchmarkName(ds_id);
    ExperimentData data(MakeBenchmarkDataset(ds_id, fast), 13);
    const std::vector<int> quartile = DegreeQuartiles(data.train());

    Cml cml(CmlConfig{.dim = 32});
    RunExperiment(&cml, &data, HarnessTrainOptions(ModelId::kCml, fast),
                  ds_name, &pool);
    Mar mar(HarnessFacetConfig());
    RunExperiment(&mar, &data, TunedTrainOptions(ModelId::kMar, ds_id, fast),
                  ds_name, &pool);
    MultiFacetConfig mars_cfg = HarnessFacetConfig();
    const ZooOverrides ov = TunedOverrides(ModelId::kMars, ds_id);
    if (ov.num_facets > 0) mars_cfg.num_facets = ov.num_facets;
    Mars mars_model(mars_cfg);
    RunExperiment(&mars_model, &data,
                  TunedTrainOptions(ModelId::kMars, ds_id, fast), ds_name,
                  &pool);

    const auto cml_g =
        data.test_evaluator().EvaluateGrouped(cml, quartile, 4, &pool);
    const auto mar_g =
        data.test_evaluator().EvaluateGrouped(mar, quartile, 4, &pool);
    const auto mars_g =
        data.test_evaluator().EvaluateGrouped(mars_model, quartile, 4, &pool);

    for (int q = 0; q < 4; ++q) {
      table.AddRow({q == 0 ? ds_name : "", "Q" + std::to_string(q + 1),
                    std::to_string(cml_g[q].users_evaluated),
                    bench::Metric(cml_g[q].hr10),
                    bench::Metric(mar_g[q].hr10),
                    bench::Metric(mars_g[q].hr10),
                    bench::Improvement(mars_g[q].hr10, cml_g[q].hr10)});
    }
    table.AddSeparator();
  }
  table.Print();
  table.WriteCsv("study_difficult_users.csv");
}

}  // namespace
}  // namespace mars

int main() {
  mars::Run();
  return 0;
}
