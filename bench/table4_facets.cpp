// Reproduces Table IV: nDCG@10 of CML, MAR and MARS over different numbers
// of facet-specific spaces K on Delicious, Lastfm, Ciao and BookX.
//
// Columns mirror the paper: Imp1 = MAR over CML, Imp2 = MARS over CML,
// Imp3 = MARS over MAR. Expected shape: gains rise with K up to an optimum
// around 2-4 and then flatten/dip; MARS improves over MAR everywhere, most
// on the sparser datasets.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "data/benchmark_datasets.h"

namespace mars {
namespace {

void Run() {
  bench::Banner("Table IV — nDCG@10 vs number of facet spaces K");
  const bool fast = BenchFastMode();
  ThreadPool pool(DefaultThreadCount());

  const size_t max_k = fast ? 3 : 6;

  TablePrinter table(
      "Table IV (Imp1 = MAR/CML, Imp2 = MARS/CML, Imp3 = MARS/MAR)");
  table.SetHeader({"Dataset", "K", "CML", "MAR", "MARS", "Imp1.", "Imp2.",
                   "Imp3."});

  for (BenchmarkId ds_id : AblationBenchmarks()) {
    const std::string ds_name = BenchmarkName(ds_id);
    ExperimentData data(MakeBenchmarkDataset(ds_id, fast), 13);

    const double cml =
        RunZooExperiment(ModelId::kCml, &data, ds_name, {}, fast, &pool)
            .test.ndcg10;

    for (size_t k = 1; k <= max_k; ++k) {
      ZooOverrides ov;
      ov.num_facets = k;
      if (k == 1) ov.lambda_facet = 0.0;  // no pairs to separate
      const double mar =
          RunZooExperiment(ModelId::kMar, &data, ds_name, ov, fast, &pool)
              .test.ndcg10;
      const double mars_v =
          RunZooExperiment(ModelId::kMars, &data, ds_name, ov, fast, &pool)
              .test.ndcg10;
      table.AddRow({k == 1 ? ds_name : "", "K=" + std::to_string(k),
                    bench::Metric(cml), bench::Metric(mar),
                    bench::Metric(mars_v), bench::Improvement(mar, cml),
                    bench::Improvement(mars_v, cml),
                    bench::Improvement(mars_v, mar)});
    }
    table.AddSeparator();
  }
  table.Print();
  table.WriteCsv("table4_facets.csv");
}

}  // namespace
}  // namespace mars

int main() {
  mars::Run();
  return 0;
}
