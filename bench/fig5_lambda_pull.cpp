// Reproduces Fig. 5: nDCG of MARS with varying weight λ_pull on the
// "pulling" regularizer, against the best single-space baseline, on
// Delicious, Lastfm, Ciao and BookX.
//
// Expected shape: performance peaks at a small positive λ_pull and MARS
// stays above the best baseline across the whole sweep.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/csv_writer.h"
#include "common/table_printer.h"
#include "data/benchmark_datasets.h"

namespace mars {
namespace {

void Run() {
  bench::Banner("Fig. 5 — nDCG@10 vs lambda_pull");
  const bool fast = BenchFastMode();
  ThreadPool pool(DefaultThreadCount());

  const std::vector<double> lambdas = {0.0, 0.001, 0.01, 0.1, 1.0};

  TablePrinter table("Fig. 5 series (nDCG@10)");
  std::vector<std::string> header = {"Dataset"};
  for (double l : lambdas) header.push_back("λ=" + FormatFixed(l, 3));
  header.push_back("BestBaseline");
  table.SetHeader(header);

  CsvWriter csv("fig5_lambda_pull.csv");
  csv.WriteRow({"dataset", "lambda_pull", "ndcg10", "best_baseline"});

  for (BenchmarkId ds_id : AblationBenchmarks()) {
    const std::string ds_name = BenchmarkName(ds_id);
    ExperimentData data(MakeBenchmarkDataset(ds_id, fast), 13);
    const double baseline =
        bench::BestBaselineMetric(&data, ds_name, "nDCG@10", fast, &pool);

    std::vector<std::string> row = {ds_name};
    for (double lambda : lambdas) {
      ZooOverrides ov;
      ov.lambda_pull = lambda;
      const double ndcg =
          RunZooExperiment(ModelId::kMars, &data, ds_name, ov, fast, &pool)
              .test.ndcg10;
      row.push_back(bench::Metric(ndcg));
      csv.WriteRow({ds_name, FormatFixed(lambda, 3), FormatFixed(ndcg, 6),
                    FormatFixed(baseline, 6)});
    }
    row.push_back(bench::Metric(baseline));
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nSeries written to fig5_lambda_pull.csv\n");
}

}  // namespace
}  // namespace mars

int main() {
  mars::Run();
  return 0;
}
