// Reproduces Fig. 6: nDCG of MARS with varying weight λ_facet on the
// facet-separating regularizer, against the best single-space baseline,
// on Delicious, Lastfm, Ciao and BookX.
//
// Expected shape: small positive λ_facet helps (the paper's rule of thumb
// is 0.01); pushing it too high hurts; MARS stays above the best baseline
// across the sweep.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/csv_writer.h"
#include "common/table_printer.h"
#include "data/benchmark_datasets.h"

namespace mars {
namespace {

void Run() {
  bench::Banner("Fig. 6 — nDCG@10 vs lambda_facet");
  const bool fast = BenchFastMode();
  ThreadPool pool(DefaultThreadCount());

  const std::vector<double> lambdas = {0.0, 0.001, 0.01, 0.1, 1.0};

  TablePrinter table("Fig. 6 series (nDCG@10)");
  std::vector<std::string> header = {"Dataset"};
  for (double l : lambdas) header.push_back("λ=" + FormatFixed(l, 3));
  header.push_back("BestBaseline");
  table.SetHeader(header);

  CsvWriter csv("fig6_lambda_facet.csv");
  csv.WriteRow({"dataset", "lambda_facet", "ndcg10", "best_baseline"});

  for (BenchmarkId ds_id : AblationBenchmarks()) {
    const std::string ds_name = BenchmarkName(ds_id);
    ExperimentData data(MakeBenchmarkDataset(ds_id, fast), 13);
    const double baseline =
        bench::BestBaselineMetric(&data, ds_name, "nDCG@10", fast, &pool);

    std::vector<std::string> row = {ds_name};
    for (double lambda : lambdas) {
      ZooOverrides ov;
      ov.lambda_facet = lambda;
      const double ndcg =
          RunZooExperiment(ModelId::kMars, &data, ds_name, ov, fast, &pool)
              .test.ndcg10;
      row.push_back(bench::Metric(ndcg));
      csv.WriteRow({ds_name, FormatFixed(lambda, 3), FormatFixed(ndcg, 6),
                    FormatFixed(baseline, 6)});
    }
    row.push_back(bench::Metric(baseline));
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nSeries written to fig6_lambda_facet.csv\n");
}

}  // namespace
}  // namespace mars

int main() {
  mars::Run();
  return 0;
}
