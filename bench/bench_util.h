// Shared helpers for the paper-table bench binaries.
#ifndef MARS_BENCH_BENCH_UTIL_H_
#define MARS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "exp/experiment.h"

namespace mars {
namespace bench {

/// Formats a metric the way the paper prints it (4 decimals).
inline std::string Metric(double value) { return FormatFixed(value, 4); }

/// Relative improvement string "a vs b" → "+12.34%".
inline std::string Improvement(double ours, double baseline) {
  if (baseline <= 0.0) return "n/a";
  return FormatPercent(ours / baseline - 1.0);
}

/// Trains the strongest single-space baselines and returns the best value
/// of `metric` among them — the "best baseline" reference line the paper
/// uses in Fig. 5/6 and the Imp columns.
inline double BestBaselineMetric(ExperimentData* data,
                                 const std::string& dataset_name,
                                 const std::string& metric, bool fast,
                                 ThreadPool* pool) {
  double best = 0.0;
  for (ModelId id : {ModelId::kCml, ModelId::kTransCf, ModelId::kSml}) {
    const ExperimentResult r =
        RunZooExperiment(id, data, dataset_name, {}, fast, pool);
    best = std::max(best, r.test.Get(metric));
  }
  return best;
}

/// Prints the standard bench banner with fast-mode notice.
inline void Banner(const std::string& title) {
  std::printf("=====================================================\n");
  std::printf("%s\n", title.c_str());
  if (BenchFastMode()) {
    std::printf("(MARS_BENCH_FAST=1: shrunken datasets / fewer epochs)\n");
  }
  std::printf("=====================================================\n\n");
}

}  // namespace bench
}  // namespace mars

#endif  // MARS_BENCH_BENCH_UTIL_H_
