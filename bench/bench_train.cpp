// Training-throughput bench: times one MARS epoch at 1/2/4/8 Hogwild
// workers and emits machine-readable JSON (BENCH_train.json via
// scripts/bench.sh) so every future PR has a perf baseline to diff against.
//
// Per thread count the bench fits two fresh models — one with zero epochs
// (init only) and one with `kEpochs` — and reports the difference per
// epoch, so initialization (facet projection, margins, sampler build) does
// not pollute the epoch time. No dev evaluator is configured: this isolates
// raw SGD throughput; overlapped evaluation is exercised by the test suite
// and the ci.sh smoke run.
//
// Speedup is relative to num_threads=1 *on the machine the bench ran on*;
// host_cpus is recorded so a 1-core container result is not mistaken for a
// scaling regression.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/mars.h"
#include "data/synthetic.h"

namespace {

struct ThreadResult {
  size_t num_threads = 0;
  double seconds_per_epoch = 0.0;
  double speedup_vs_serial = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mars;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_train.json";
  const bool fast = BenchFastMode();

  SyntheticConfig data_cfg;
  data_cfg.num_users = fast ? 300 : 1500;
  data_cfg.num_items = fast ? 250 : 900;
  data_cfg.target_interactions = data_cfg.num_users * 20;
  data_cfg.num_facets = 4;
  data_cfg.seed = 7;
  const auto dataset = GenerateSyntheticDataset(data_cfg);

  MultiFacetConfig model_cfg;
  model_cfg.dim = 32;
  model_cfg.num_facets = 4;
  model_cfg.theta_init_nmf = false;  // keep init cheap; SGD is the subject

  const size_t kEpochs = fast ? 2 : 3;
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  bench::Banner("bench_train — MARS epoch wall-clock vs Hogwild workers");
  std::printf("dataset: %zu users, %zu items, %zu interactions; d=%zu K=%zu\n",
              dataset->num_users(), dataset->num_items(),
              dataset->num_interactions(), model_cfg.dim,
              model_cfg.num_facets);
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("host cpus: %u\n\n", host_cpus);

  auto fit_seconds = [&](size_t num_threads, size_t epochs) {
    Mars model(model_cfg);
    TrainOptions options;
    options.epochs = epochs;
    options.learning_rate = 0.3;
    options.seed = 42;
    options.num_threads = num_threads;
    Timer timer;
    model.Fit(*dataset, options);
    return timer.ElapsedSeconds();
  };

  std::vector<ThreadResult> results;
  double serial_epoch = 0.0;
  for (size_t nt : thread_counts) {
    const double init_s = fit_seconds(nt, 0);
    const double total_s = fit_seconds(nt, kEpochs);
    ThreadResult r;
    r.num_threads = nt;
    r.seconds_per_epoch = (total_s - init_s) / static_cast<double>(kEpochs);
    if (nt == 1) serial_epoch = r.seconds_per_epoch;
    r.speedup_vs_serial =
        r.seconds_per_epoch > 0.0 ? serial_epoch / r.seconds_per_epoch : 0.0;
    results.push_back(r);
    std::printf("num_threads=%zu  %.4f s/epoch  speedup %.2fx\n", nt,
                r.seconds_per_epoch, r.speedup_vs_serial);
  }

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"mars_epoch_threads\",\n");
  std::fprintf(out, "  \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(out, "  \"fast_mode\": %s,\n", fast ? "true" : "false");
  std::fprintf(out,
               "  \"dataset\": {\"users\": %zu, \"items\": %zu, "
               "\"interactions\": %zu},\n",
               dataset->num_users(), dataset->num_items(),
               dataset->num_interactions());
  std::fprintf(out, "  \"model\": {\"dim\": %zu, \"num_facets\": %zu},\n",
               model_cfg.dim, model_cfg.num_facets);
  std::fprintf(out, "  \"epochs_timed\": %zu,\n", kEpochs);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ThreadResult& r = results[i];
    std::fprintf(out,
                 "    {\"num_threads\": %zu, \"seconds_per_epoch\": %.6f, "
                 "\"speedup_vs_serial\": %.4f}%s\n",
                 r.num_threads, r.seconds_per_epoch, r.speedup_vs_serial,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
