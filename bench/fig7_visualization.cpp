// Reproduces Fig. 7: visualization of item embeddings learned by CML
// (single space), MAR (multi-facet Euclidean) and MARS (multi-facet
// spherical) on the Ciao analogue.
//
// The paper shows 2-D scatter plots colored by ground-truth category; this
// binary (a) dumps the 2-D PCA projections per space to CSV for plotting,
// and (b) quantifies the visual claim with separation statistics:
// inter/intra category distance ratio and nearest-centroid purity.
// Expected shape: MAR's facet spaces separate categories better than
// CML's single space, and MARS separates them better still.
#include <cstdio>
#include <vector>

#include "analysis/facet_analysis.h"
#include "analysis/pca.h"
#include "bench_util.h"
#include "common/csv_writer.h"
#include "common/table_printer.h"
#include "core/mar.h"
#include "core/mars.h"
#include "data/benchmark_datasets.h"
#include "data/split.h"
#include "models/cml.h"

namespace mars {
namespace {

/// Dumps the 2-D PCA of one embedding space and returns its stats.
SeparationStats AnalyzeSpace(const Matrix& embeddings,
                             const std::vector<int>& categories,
                             const std::string& space_name, CsvWriter* csv) {
  const PcaResult pca = ComputePca(embeddings, 2);
  for (size_t i = 0; i < pca.projected.rows(); ++i) {
    csv->WriteRow({space_name, std::to_string(i),
                   std::to_string(categories[i]),
                   FormatFixed(pca.projected.At(i, 0), 5),
                   FormatFixed(pca.projected.At(i, 1), 5)});
  }
  return ComputeSeparation(embeddings, categories);
}

void Run() {
  bench::Banner("Fig. 7 — item-embedding visualization (Ciao)");
  const bool fast = BenchFastMode();
  ThreadPool pool(DefaultThreadCount());

  const auto full = MakeBenchmarkDataset(BenchmarkId::kCiao, fast);
  const auto split = MakeLeaveOneOutSplit(*full, 13);
  std::vector<int> categories(full->num_items());
  for (ItemId v = 0; v < full->num_items(); ++v) {
    categories[v] = full->ItemCategory(v);
  }

  // Train the three models with the harness defaults.
  Cml cml(CmlConfig{.dim = 32});
  cml.Fit(*split.train, HarnessTrainOptions(ModelId::kCml, fast));
  Mar mar(HarnessFacetConfig());
  mar.Fit(*split.train, HarnessTrainOptions(ModelId::kMar, fast));
  Mars mars_model(HarnessFacetConfig());
  mars_model.Fit(*split.train, HarnessTrainOptions(ModelId::kMars, fast));
  (void)pool;

  CsvWriter csv("fig7_item_embeddings_2d.csv");
  csv.WriteRow({"space", "item", "category", "pc1", "pc2"});

  TablePrinter table(
      "Fig. 7 separation statistics (higher ratio / purity = categories "
      "better separated)");
  table.SetHeader({"Space", "Inter/Intra ratio", "Centroid purity"});

  // CML: one space.
  {
    const FacetView view =
        MakeSingleSpaceView(cml.user_embeddings(), cml.item_embeddings());
    const Matrix emb = StackItemFacetEmbeddings(view, full->num_items(), 0);
    const SeparationStats s = AnalyzeSpace(emb, categories, "CML", &csv);
    table.AddRow({"CML (single space)", FormatFixed(s.separation_ratio, 3),
                  FormatFixed(s.centroid_purity, 3)});
  }
  table.AddSeparator();

  // MAR and MARS: best facet and average over facets.
  auto analyze_multifacet = [&](const FacetView& view,
                                const std::string& model_name) {
    double best_ratio = 0.0, best_purity = 0.0;
    double sum_ratio = 0.0, sum_purity = 0.0;
    for (size_t k = 0; k < view.num_facets; ++k) {
      const Matrix emb = StackItemFacetEmbeddings(view, full->num_items(), k);
      const SeparationStats s = AnalyzeSpace(
          emb, categories, model_name + "-k" + std::to_string(k), &csv);
      best_ratio = std::max(best_ratio, s.separation_ratio);
      best_purity = std::max(best_purity, s.centroid_purity);
      sum_ratio += s.separation_ratio;
      sum_purity += s.centroid_purity;
      table.AddRow({model_name + " facet k=" + std::to_string(k),
                    FormatFixed(s.separation_ratio, 3),
                    FormatFixed(s.centroid_purity, 3)});
    }
    table.AddRow({model_name + " (best facet)", FormatFixed(best_ratio, 3),
                  FormatFixed(best_purity, 3)});
    table.AddSeparator();
  };
  analyze_multifacet(MakeFacetView(mar), "MAR");
  analyze_multifacet(MakeFacetView(mars_model), "MARS");

  table.Print();
  std::printf("\n2-D projections written to fig7_item_embeddings_2d.csv "
              "(plot pc1/pc2 colored by category).\n");
}

}  // namespace
}  // namespace mars

int main() {
  mars::Run();
  return 0;
}
