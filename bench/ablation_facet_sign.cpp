// Facet-separating-loss sign ablation (DESIGN.md §2.1).
//
// Eq. 12 as printed, (1/α)·log(1+exp(−α·cos)), *rewards* facet
// similarity; the corrected form penalizes it. This bench shows the
// inversion empirically on the Ciao analogue: mean |cos| between facet
// embeddings of the same entity (collinearity) under both signs, next to
// ranking quality, at an emphasized λ_facet.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "common/vec.h"
#include "core/mars.h"
#include "data/benchmark_datasets.h"

namespace mars {
namespace {

double MeanFacetCollinearity(const Mars& model, size_t num_items) {
  const size_t kf = model.config().num_facets;
  double total = 0.0;
  size_t n = 0;
  for (ItemId v = 0; v < num_items; v += 3) {
    for (size_t i = 0; i < kf; ++i) {
      for (size_t j = i + 1; j < kf; ++j) {
        const auto a = model.ItemFacetEmbedding(v, i);
        const auto b = model.ItemFacetEmbedding(v, j);
        total += Dot(a.data(), b.data(), a.size());
        ++n;
      }
    }
  }
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

void Run() {
  bench::Banner("Ablation — Eq. 12 sign of the spherical facet loss (Ciao)");
  const bool fast = BenchFastMode();
  ThreadPool pool(DefaultThreadCount());

  ExperimentData data(MakeBenchmarkDataset(BenchmarkId::kCiao, fast), 13);

  TablePrinter table(
      "Facet-loss sign (lambda_facet = 0.1 to emphasize the term)");
  table.SetHeader({"Variant", "Mean facet cos (items)", "HR@10", "nDCG@10"});

  for (FacetLossSign sign :
       {FacetLossSign::kSeparate, FacetLossSign::kAsPrinted}) {
    MultiFacetConfig cfg = HarnessFacetConfig();
    cfg.lambda_facet = 0.1;
    MarsOptions mopts;
    mopts.facet_sign = sign;
    Mars model(cfg, mopts);
    const ExperimentResult r = RunExperiment(
        &model, &data, HarnessTrainOptions(ModelId::kMars, fast), "Ciao",
        &pool);
    const double collinearity =
        MeanFacetCollinearity(model, data.train().num_items());
    table.AddRow({sign == FacetLossSign::kSeparate
                      ? "corrected (+α·cos, separates)"
                      : "as printed (−α·cos, collapses)",
                  FormatFixed(collinearity, 4), bench::Metric(r.test.hr10),
                  bench::Metric(r.test.ndcg10)});
  }
  table.Print();
  table.WriteCsv("ablation_facet_sign.csv");
  std::printf(
      "\nLower mean facet cosine = more diverse facet spaces; the printed\n"
      "sign visibly collapses the facets toward each other.\n");
}

}  // namespace
}  // namespace mars

int main() {
  mars::Run();
  return 0;
}
