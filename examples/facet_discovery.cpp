// Facet discovery: the paper's case study (Sec. V-E) as a reusable recipe.
//
// Trains MARS on the Ciao analogue and then uses the analysis toolkit to
//  * name what each facet space "is about" (top categories per facet,
//    Table V style),
//  * profile individual users as mixtures of those facets (Table VI
//    style),
//  * quantify how much better the facet spaces organize the catalogue
//    than a single space (Fig. 7 style separation statistics).
#include <cstdio>

#include "analysis/facet_analysis.h"
#include "analysis/pca.h"
#include "core/mars.h"
#include "data/benchmark_datasets.h"
#include "data/split.h"
#include "models/cml.h"

int main() {
  using namespace mars;

  const auto ciao = MakeBenchmarkDataset(BenchmarkId::kCiao);
  const LeaveOneOutSplit split = MakeLeaveOneOutSplit(*ciao, 13);
  std::printf("Ciao analogue: %zu users, %zu items, %d categories\n",
              ciao->num_users(), ciao->num_items(), ciao->num_categories());

  MultiFacetConfig cfg;
  cfg.dim = 32;
  cfg.num_facets = 4;
  Mars model(cfg);
  TrainOptions opts;
  opts.epochs = 30;
  opts.learning_rate = 0.3;
  model.Fit(*split.train, opts);

  const FacetView view = MakeFacetView(model);

  // --- What is each facet about? -----------------------------------------
  std::printf("\n== Top-3 categories per facet (share of θ-weighted "
              "interaction mass) ==\n");
  const auto shares = FacetCategoryShares(view, *split.train);
  for (size_t k = 0; k < shares.size(); ++k) {
    std::printf("facet %zu:", k);
    for (size_t r = 0; r < 3 && r < shares[k].size(); ++r) {
      std::printf("  %s %.1f%%", shares[k][r].name.c_str(),
                  shares[k][r].share * 100.0);
    }
    std::printf("\n");
  }

  // --- Profile two users ---------------------------------------------------
  std::printf("\n== User profiles ==\n");
  for (UserId u : {UserId{5}, UserId{42}}) {
    const UserFacetProfile profile = ProfileUser(view, *split.train, u);
    std::printf("user %u: theta = [", u);
    for (float t : profile.theta) std::printf(" %.2f", t);
    std::printf(" ]\n");
    for (size_t k = 0; k < profile.facet_categories.size(); ++k) {
      if (profile.facet_categories[k].empty()) continue;
      std::printf("  facet %zu:", k);
      size_t listed = 0;
      for (const auto& [name, count] : profile.facet_categories[k]) {
        if (listed++ >= 3) break;
        std::printf(" %s:%zu", name.c_str(), count);
      }
      std::printf("\n");
    }
  }

  // --- How much better organized than a single space? ---------------------
  std::vector<int> categories(ciao->num_items());
  for (ItemId v = 0; v < ciao->num_items(); ++v) {
    categories[v] = ciao->ItemCategory(v);
  }

  Cml cml(CmlConfig{.dim = 32});
  TrainOptions cml_opts;
  cml_opts.epochs = 30;
  cml_opts.learning_rate = 0.05;
  cml.Fit(*split.train, cml_opts);
  const FacetView cml_view =
      MakeSingleSpaceView(cml.user_embeddings(), cml.item_embeddings());
  const SeparationStats cml_stats = ComputeSeparation(
      StackItemFacetEmbeddings(cml_view, ciao->num_items(), 0), categories);

  std::printf("\n== Category separation (inter/intra distance ratio; higher "
              "= cleaner) ==\n");
  std::printf("CML single space: ratio %.3f, purity %.3f\n",
              cml_stats.separation_ratio, cml_stats.centroid_purity);
  for (size_t k = 0; k < cfg.num_facets; ++k) {
    const SeparationStats s = ComputeSeparation(
        StackItemFacetEmbeddings(view, ciao->num_items(), k), categories);
    std::printf("MARS facet %zu:    ratio %.3f, purity %.3f\n", k,
                s.separation_ratio, s.centroid_purity);
  }
  return 0;
}
