// Quickstart: train MARS on implicit feedback and produce top-10
// recommendations for a user.
//
//   1. build an ImplicitDataset (here: generated; swap in
//      LoadInteractionsCsv("your.csv") for real data),
//   2. hold out dev/test items per user with MakeLeaveOneOutSplit,
//   3. configure and Fit a Mars model,
//   4. evaluate with the sampled-candidate protocol,
//   5. serve top-10 recommendations for one user through the TopKServer
//      (full-catalog batched sweep + per-user cache),
//   6. persist the whole restart unit — format-v3 model snapshot, ANN
//      candidate index, top-k sidecar — mmap all of it back zero-copy,
//      and serve from the mappings: the restart / model-swap path skips
//      both the cold sweeps *and* the k-means index build
//      (docs/FORMAT.md),
//   7. serve *concurrently while training*: a background run keeps
//      training and publishes a fresh snapshot at every epoch boundary
//      (TrainOptions::epoch_callback → TopKServer::PublishEpoch) while
//      several frontend threads query the same server — every response is
//      then verified to match one of the published snapshots exactly,
//   8. serve the same answers *over TCP*: a NetServer fronts the server
//      with the MRSN wire protocol (docs/PROTOCOL.md) on an io_uring or
//      epoll reactor, and a pipelined client burst — decoded in one
//      reactor wake-up, served as one TopKBatch — is verified
//      bit-identical to the in-process API.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "ann/index_io.h"
#include "core/mars.h"
#include "core/persistence.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/top_k_server.h"
#include "serve/top_k_sidecar.h"
#include "serve/write_tracker.h"

int main(int argc, char** argv) {
  using namespace mars;

  // Optional overrides (used by scripts/ci.sh for tiny smoke runs):
  //   quickstart [num_users] [num_items] [epochs] [num_threads]
  const size_t arg_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;
  const size_t arg_items = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 500;
  const size_t arg_epochs = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 30;
  const size_t arg_threads =
      argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 1;

  // 1. Data: 600 users × 500 items of multi-facet implicit feedback.
  SyntheticConfig data_cfg;
  data_cfg.num_users = arg_users;
  data_cfg.num_items = arg_items;
  data_cfg.target_interactions = arg_users * 20;
  data_cfg.num_facets = 4;
  data_cfg.seed = 7;
  const auto dataset = GenerateSyntheticDataset(data_cfg);
  std::printf("dataset: %zu users, %zu items, %zu interactions\n",
              dataset->num_users(), dataset->num_items(),
              dataset->num_interactions());

  // 2. Leave-one-out split (last item per user = test, one more = dev).
  const LeaveOneOutSplit split = MakeLeaveOneOutSplit(*dataset, /*seed=*/1);

  // 3. Model: 4 facet spaces of dimension 32, spherical optimization.
  MultiFacetConfig model_cfg;
  model_cfg.dim = 32;
  model_cfg.num_facets = 4;
  Mars model(model_cfg);

  TrainOptions train;
  train.epochs = arg_epochs;
  train.learning_rate = 0.3;
  train.seed = 42;
  // >1 shards each epoch across Hogwild workers and overlaps the dev
  // evaluation with the next epoch (see src/train/parallel_trainer.h).
  train.num_threads = arg_threads;
  // Early stopping against the dev split.
  Evaluator dev(*split.train, split.dev_item, EvalProtocol{.seed = 5});
  train.dev_evaluator = &dev;
  model.Fit(*split.train, train);
  if (arg_threads > 1) {
    std::printf("trained with %zu Hogwild workers (overlapped eval)\n",
                arg_threads);
  }

  // 4. Test-set quality under the paper's protocol (100 negatives/user).
  Evaluator test(*split.train, split.test_item, EvalProtocol{.seed = 6});
  const RankingMetrics metrics = test.Evaluate(model);
  std::printf("test: HR@10=%.4f nDCG@10=%.4f over %zu users\n", metrics.hr10,
              metrics.ndcg10, metrics.users_evaluated);

  // 5. Serving: top-10 recommendations through the TopKServer, which
  //    sweeps the full catalog with the batched kernels and caches the
  //    per-user heap (invalidation hooks: serve/write_tracker.h).
  const UserId user = 0;
  TopKServerOptions serve_opts;
  serve_opts.k = 10;
  serve_opts.exclude_interactions = split.train.get();
  // The ANN retrieval tier, at full probe: every miss goes probe →
  // exact re-rank through the candidate index, but probing every list
  // keeps the answers bit-identical to the exact sweep — so all the
  // equality checks below still hold while the index machinery (build,
  // per-epoch rebuild, persistence in step 6) is exercised end to end.
  serve_opts.ann.enable = true;
  serve_opts.ann.index.nprobe = 1u << 20;
  TopKServer server(&model, dataset->num_users(), dataset->num_items(),
                    serve_opts);
  const TopKResponse recs = server.TopK(user);  // cold full-catalog sweep
  std::printf("top-10 items for user %u:", user);
  for (size_t i = 0; i < recs.items.size(); ++i) {
    std::printf(" %u(%.3f)", recs.items[i], recs.scores[i]);
  }
  std::printf("\n");
  const TopKResponse again = server.TopK(user);  // LRU hit, no sweep
  std::printf("re-query served from cache: %s (hits=%llu misses=%llu)\n",
              again.from_cache ? "yes" : "no",
              static_cast<unsigned long long>(server.stats().hits),
              static_cast<unsigned long long>(server.stats().misses));

  // 6. Persistence: save the restart unit — aligned-stride v3 snapshot,
  //    the server's live ANN index, the top-k sidecar — then restart
  //    serving by mmap'ing the snapshot *and* the index (zero copy — the
  //    facet tensors and the inverted lists are read straight from the
  //    page cache; no k-means re-run) and warming the new server's cache
  //    from the sidecar. The three files pair with each other: regenerate
  //    them together.
  const char* model_path = "quickstart_model.v3";
  const char* index_path = "quickstart_ann.annidx";
  const char* sidecar_path = "quickstart_topk.sidecar";
  const std::shared_ptr<const CandidateIndex> live_index =
      server.AnnIndexSnapshot();
  const bool persisted = SaveMarsV3(model, model_path) &&
                         live_index != nullptr &&
                         SaveCandidateIndex(*live_index, index_path) &&
                         SaveTopKSidecar(server, sidecar_path);
  // The mappings keep serving after the unlink, so the files can be
  // consumed-and-removed immediately — no stray files on any exit path.
  const auto mapped = persisted ? LoadMarsMapped(model_path) : nullptr;
  const auto mapped_index =
      mapped != nullptr ? LoadCandidateIndexMapped(index_path, *mapped,
                                                   dataset->num_items())
                        : nullptr;
  std::remove(model_path);
  std::remove(index_path);
  if (mapped == nullptr || mapped_index == nullptr) {
    std::remove(sidecar_path);
    std::fprintf(stderr, "failed to persist or mmap the restart unit\n");
    return 1;
  }
  TopKServerOptions restart_opts = serve_opts;
  restart_opts.ann.prebuilt = mapped_index;  // zero-rebuild restart
  TopKServer restarted(mapped.get(), dataset->num_users(),
                       dataset->num_items(), restart_opts);
  const size_t warmed = WarmFromSidecar(&restarted, sidecar_path);
  std::remove(sidecar_path);
  const TopKResponse after_restart = restarted.TopK(user);
  std::printf(
      "mmap-served top-10 after restart (mapped %s index, %zu cache "
      "entries warmed, first query %s cache): ",
      mapped_index->kind(), warmed,
      after_restart.from_cache ? "from" : "missed");
  bool identical = after_restart.items.size() == recs.items.size();
  for (size_t i = 0; identical && i < recs.items.size(); ++i) {
    identical = after_restart.items[i] == recs.items[i];
  }
  std::printf("%s\n", identical ? "identical to pre-restart ranking"
                                : "MISMATCH vs pre-restart ranking");
  if (!identical || !after_restart.from_cache) return 1;

  // 7. Concurrent serving during live training. A second training run
  //    keeps improving the model in the background; its epoch_callback
  //    fires at each quiesced epoch boundary, takes an owned frozen copy
  //    (ServingSnapshot) and publishes it — swap first, then absorb the
  //    tracker's dirty shards (PublishEpoch does both in order). Frontend
  //    threads keep querying throughout: each query pins whichever
  //    snapshot is current and never blocks on the swap. Afterwards every
  //    recorded response must be bit-identical to one published epoch —
  //    a mid-swap query may serve the older or the newer model, never a
  //    blend of the two.
  WriteTracker tracker(dataset->num_users(), dataset->num_items());
  std::shared_ptr<const Mars> epoch0 = model.ServingSnapshot();
  // Only the training thread (the epoch_callback below) appends here,
  // and it is read after the frontends join — no locking needed.
  std::vector<std::shared_ptr<const ItemScorer>> published = {epoch0};
  TopKServer live(epoch0, dataset->num_users(), dataset->num_items(),
                  serve_opts);

  TrainOptions more = train;
  more.epochs = arg_epochs >= 3 ? 3 : arg_epochs;
  more.dev_evaluator = nullptr;  // keep the background run simple
  more.write_tracker = &tracker;
  more.epoch_callback = [&](size_t) {
    std::shared_ptr<const Mars> snap = model.ServingSnapshot();
    published.push_back(snap);
    live.PublishEpoch(snap, &tracker);
  };

  const size_t kQueryThreads = 3, kProbeUsers = 6;
  struct Response {
    UserId user;
    std::vector<ItemId> items;
    std::vector<float> scores;
  };
  std::vector<std::vector<Response>> responses(kQueryThreads);
  std::atomic<bool> training_done{false};
  std::vector<std::thread> frontends;
  for (size_t t = 0; t < kQueryThreads; ++t) {
    frontends.emplace_back([&, t] {
      size_t q = 0;
      // Query throughout the background training, and a fixed minimum in
      // case training finishes first. Only a bounded sample is kept for
      // verification — queries continue past it to keep the race hot.
      const size_t kKeep = 2000;
      while (!training_done.load(std::memory_order_acquire) || q < 30) {
        const UserId u = static_cast<UserId>((q * 3 + t) % kProbeUsers);
        TopKResponse r = live.TopK(u);
        if (responses[t].size() < kKeep) {
          responses[t].push_back(
              {u, std::move(r.items), std::move(r.scores)});
        }
        ++q;
      }
    });
  }
  model.Fit(*split.train, more);  // retrains + publishes per epoch
  training_done.store(true, std::memory_order_release);
  for (auto& th : frontends) th.join();

  // Verify: reference rankings per published epoch come from a fresh
  // cold-sweeping server over that snapshot (same kernels, bit-exact).
  size_t checked = 0, unmatched = 0;
  std::vector<std::vector<TopKResponse>> reference(published.size());
  for (size_t g = 0; g < published.size(); ++g) {
    TopKServer ref(published[g], dataset->num_users(), dataset->num_items(),
                   serve_opts);
    for (UserId u = 0; u < kProbeUsers; ++u) {
      reference[g].push_back(ref.TopK(u));
    }
  }
  for (const auto& thread_responses : responses) {
    for (const Response& r : thread_responses) {
      bool matched = false;
      for (size_t g = 0; g < published.size() && !matched; ++g) {
        matched = r.items == reference[g][r.user].items &&
                  r.scores == reference[g][r.user].scores;
      }
      ++checked;
      if (!matched) ++unmatched;
    }
  }
  std::printf(
      "live serving: %zu concurrent responses across %zu threads, "
      "%zu published epochs, %zu unmatched\n",
      checked, kQueryThreads, published.size(), unmatched);
  if (unmatched != 0) {
    std::fprintf(stderr,
                 "FATAL: a response matched no published snapshot\n");
    return 1;
  }

  // 8. The same answers over TCP. The NetServer wraps the live server
  //    (non-owning: in-process callers could keep querying alongside the
  //    wire); the client writes all probe requests as one burst, so the
  //    reactor decodes them in one wake-up and serves them as one
  //    TopKBatch — the wire feeds the coalesced multi-user kernels with
  //    no artificial delay. k = 0 asks for the server's configured depth.
  NetServerOptions net_opts;  // loopback, ephemeral port, auto backend
  NetServer net(&live, net_opts);
  if (!net.Start()) {
    std::fprintf(stderr, "failed to start the TCP front-end\n");
    return 1;
  }
  NetClient client;
  if (!client.Connect(net_opts.host, net.port())) {
    std::fprintf(stderr, "failed to connect to %s:%u\n",
                 net_opts.host.c_str(), net.port());
    return 1;
  }
  std::vector<TopKRequest> burst;
  for (UserId u = 0; u < kProbeUsers; ++u) burst.push_back({.user = u});
  std::vector<WireResponse> over_wire;
  bool wire_ok = client.TopKPipelined(burst, &over_wire) &&
                 over_wire.size() == burst.size();
  for (size_t i = 0; wire_ok && i < over_wire.size(); ++i) {
    const TopKResponse in_process = live.TopK(burst[i]);
    wire_ok = over_wire[i].status == WireStatus::kOk &&
              over_wire[i].response.items == in_process.items &&
              over_wire[i].response.scores == in_process.scores;
  }
  client.Close();
  net.Stop();
  std::printf("wire serving (%s reactor): %zu pipelined responses, %s\n",
              net.backend_name().c_str(), over_wire.size(),
              wire_ok ? "bit-identical to in-process TopK"
                      : "MISMATCH vs in-process TopK");
  if (!wire_ok) return 1;

  // Bonus: the user's learned facet mixture.
  std::printf("facet weights of user %u:", user);
  for (float t : model.FacetWeights(user)) std::printf(" %.2f", t);
  std::printf("\n");
  return 0;
}
