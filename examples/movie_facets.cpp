// The paper's Fig. 1 toy scenario, end to end.
//
// Five movies spanning five genres (Disaster, Romantic, Comedy, Science
// Fiction, Scary) and users whose tastes straddle genres — e.g. user C
// likes "Love Actually" for the humour while user B likes it for the
// romance. In a single metric space those preferences conflict: items 2
// and 4 must be both close (for C) and far apart (for A/B). This example
// builds a slightly enlarged version of that world, trains CML (single
// space) and MARS (multi-facet spheres), and shows MARS resolving the
// conflict.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/mars.h"
#include "data/dataset.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "models/cml.h"

namespace {

using namespace mars;

/// Builds a population of users mimicking Fig. 1: each user follows one of
/// three archetypes (A: disaster+scifi, B: romance, C: comedy) but — like
/// real people — with a secondary interest, so genres overlap on items.
std::shared_ptr<ImplicitDataset> BuildMovieWorld(size_t users_per_type,
                                                 size_t movies_per_genre,
                                                 uint64_t seed) {
  // Genres: 0 Disaster, 1 Romantic, 2 Comedy, 3 SciFi, 4 Scary.
  // "Love Actually"-style crossover movies belong to two genres; we model
  // that by giving some movies a secondary genre drawn at generation time.
  const int num_genres = 5;
  Rng rng(seed);
  const size_t num_movies = movies_per_genre * num_genres;
  std::vector<int> primary(num_movies), secondary(num_movies, -1);
  for (size_t m = 0; m < num_movies; ++m) {
    primary[m] = static_cast<int>(m / movies_per_genre);
    if (rng.Bernoulli(0.3)) {
      secondary[m] = static_cast<int>(rng.UniformInt(num_genres));
    }
  }

  // Archetypes: preferred genre sets.
  const std::vector<std::vector<int>> archetypes = {
      {0, 3},  // A: disaster + scifi
      {1},     // B: romance
      {2, 1},  // C: comedy (also watches rom-coms)
  };

  std::vector<Interaction> log;
  const size_t num_users = users_per_type * archetypes.size();
  for (UserId u = 0; u < num_users; ++u) {
    const auto& liked = archetypes[u % archetypes.size()];
    int64_t ts = 0;
    for (size_t m = 0; m < num_movies; ++m) {
      bool match = false;
      for (int g : liked) {
        if (primary[m] == g || secondary[m] == g) match = true;
      }
      const double p = match ? 0.45 : 0.02;
      if (rng.Bernoulli(p)) {
        log.push_back({u, static_cast<ItemId>(m), ts++});
      }
    }
    // Guarantee enough history for leave-one-out.
    while (ts < 3) {
      const ItemId m = static_cast<ItemId>(rng.UniformInt(num_movies));
      log.push_back({u, m, ts++});
    }
  }

  auto ds = std::make_shared<ImplicitDataset>(num_users, num_movies,
                                              std::move(log));
  ds->SetItemCategories(primary, {"Disaster", "Romantic", "Comedy", "SciFi",
                                  "Scary"});
  return ds;
}

}  // namespace

namespace {

/// Fraction of each user's top-10 unseen recommendations that fall in one
/// of their archetype's liked genres. With only five genres and heavily
/// overlapping positives, this is the informative metric for the toy world
/// (the sampled-candidate HR protocol saturates here because most matched
/// movies are already positives).
double GenrePrecisionAt10(const mars::ItemScorer& model,
                          const mars::ImplicitDataset& train,
                          size_t users_per_type) {
  using namespace mars;
  const std::vector<std::vector<int>> archetypes = {{0, 3}, {1}, {2, 1}};
  double matched = 0.0;
  size_t total = 0;
  for (UserId u = 0; u < train.num_users(); ++u) {
    const auto& liked = archetypes[u % archetypes.size()];
    std::vector<std::pair<float, ItemId>> scored;
    for (ItemId v = 0; v < train.num_items(); ++v) {
      if (train.HasInteraction(u, v)) continue;
      scored.emplace_back(model.Score(u, v), v);
    }
    const size_t top = std::min<size_t>(10, scored.size());
    std::partial_sort(
        scored.begin(), scored.begin() + top, scored.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    for (size_t i = 0; i < top; ++i) {
      const int genre = train.ItemCategory(scored[i].second);
      for (int g : liked) {
        if (genre == g) {
          matched += 1.0;
          break;
        }
      }
      ++total;
    }
  }
  (void)users_per_type;
  return total > 0 ? matched / static_cast<double>(total) : 0.0;
}

}  // namespace

int main() {
  using namespace mars;

  const auto movies = BuildMovieWorld(/*users_per_type=*/120,
                                      /*movies_per_genre=*/60, /*seed=*/3);
  std::printf("movie world: %zu users, %zu movies, %zu interactions\n",
              movies->num_users(), movies->num_items(),
              movies->num_interactions());

  const LeaveOneOutSplit split = MakeLeaveOneOutSplit(*movies, 1);

  // Single metric space.
  Cml cml(CmlConfig{.dim = 16});
  TrainOptions cml_opts;
  cml_opts.epochs = 25;
  cml_opts.learning_rate = 0.05;
  cml.Fit(*split.train, cml_opts);
  const double cml_p = GenrePrecisionAt10(cml, *split.train, 120);

  // Multi-facet spheres.
  MultiFacetConfig cfg;
  cfg.dim = 16;
  cfg.num_facets = 3;
  Mars mars_model(cfg);
  TrainOptions mars_opts;
  mars_opts.epochs = 25;
  mars_opts.learning_rate = 0.3;
  mars_model.Fit(*split.train, mars_opts);
  const double mars_p = GenrePrecisionAt10(mars_model, *split.train, 120);

  // Chance = expected liked-genre share of a random unseen movie (~2/5
  // for archetypes A and C, 1/5 for B).
  std::printf("\n                liked-genre precision@10\n");
  std::printf("random          ~0.33\n");
  std::printf("CML  (1 space)   %.3f\n", cml_p);
  std::printf("MARS (3 spaces)  %.3f\n", mars_p);

  // The Fig. 1 conflict, measured: take a rom-com (Romantic primary with
  // Comedy overlap users) and check how differently the facet spaces place
  // it relative to a pure Comedy movie.
  ItemId romcom = 0, pure_comedy = 0;
  for (ItemId v = 0; v < movies->num_items(); ++v) {
    if (movies->ItemCategory(v) == 1) romcom = v;
    if (movies->ItemCategory(v) == 2) pure_comedy = v;
  }
  std::printf("\nper-facet cosine similarity between movie %u (%s) and "
              "movie %u (%s):\n",
              romcom, movies->CategoryName(movies->ItemCategory(romcom)).c_str(),
              pure_comedy,
              movies->CategoryName(movies->ItemCategory(pure_comedy)).c_str());
  for (size_t k = 0; k < cfg.num_facets; ++k) {
    const auto a = mars_model.ItemFacetEmbedding(romcom, k);
    const auto b = mars_model.ItemFacetEmbedding(pure_comedy, k);
    float dot = 0.0f;
    for (size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
    std::printf("  facet %zu: cos = %+.3f\n", k, dot);
  }
  std::printf("(different facets can hold different verdicts — the single "
              "space must pick one)\n");
  return 0;
}
