// Model bake-off on your own data.
//
// Loads an interaction CSV (user,item,timestamp) if a path is given —
// otherwise generates a synthetic dataset — and compares a chosen subset
// of the model zoo under the standard leave-one-out protocol. This is the
// template for evaluating the library on real production logs.
//
// Usage:
//   compare_models [interactions.csv]
#include <cstdio>
#include <memory>

#include "common/thread_pool.h"
#include "data/io.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "exp/experiment.h"

int main(int argc, char** argv) {
  using namespace mars;

  std::shared_ptr<ImplicitDataset> dataset;
  if (argc > 1) {
    dataset = LoadInteractionsCsv(argv[1]);
    if (dataset == nullptr) {
      std::fprintf(stderr, "could not load %s\n", argv[1]);
      return 1;
    }
    if (dataset->num_items() <= 100) {
      std::fprintf(stderr,
                   "dataset must have > 100 items for the 100-negative "
                   "evaluation protocol\n");
      return 1;
    }
  } else {
    SyntheticConfig cfg;
    cfg.num_users = 500;
    cfg.num_items = 800;
    cfg.target_interactions = 9000;
    cfg.seed = 21;
    dataset = GenerateSyntheticDataset(cfg);
    std::printf("(no CSV given; using a generated multi-facet dataset — "
                "pass a user,item,timestamp CSV to use your own)\n");
  }
  std::printf("data: %s\n", StatsToString(ComputeStats(*dataset)).c_str());

  ExperimentData data(dataset, /*seed=*/17);
  ThreadPool pool(DefaultThreadCount());

  std::printf("\n%-9s %8s %8s %9s %9s %8s\n", "model", "HR@10", "HR@20",
              "nDCG@10", "nDCG@20", "train-s");
  for (ModelId id : {ModelId::kBpr, ModelId::kCml, ModelId::kTransCf,
                     ModelId::kSml, ModelId::kMar, ModelId::kMars}) {
    const ExperimentResult r =
        RunZooExperiment(id, &data, "custom", {}, /*fast=*/false, &pool);
    std::printf("%-9s %8.4f %8.4f %9.4f %9.4f %8.1f\n", r.model.c_str(),
                r.test.hr10, r.test.hr20, r.test.ndcg10, r.test.ndcg20,
                r.train_seconds);
  }
  std::printf("\nHint: chance HR@10 under this protocol is 10/101 ≈ 0.099.\n");
  return 0;
}
