#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"
#include "common/vec.h"

namespace mars {
namespace {

/// Draws a random unit vector of dimension `d`.
std::vector<float> RandomUnitVector(Rng* rng, size_t d) {
  std::vector<float> v(d);
  for (float& x : v) x = static_cast<float>(rng->Normal());
  if (!NormalizeInPlace(v.data(), d)) v[0] = 1.0f;
  return v;
}

/// Draws a unit vector near `mean` with the given isotropic noise; this is
/// a cheap stand-in for a vMF draw with concentration ~ 1/noise^2.
std::vector<float> NoisyUnitVector(Rng* rng, const std::vector<float>& mean,
                                   double noise) {
  std::vector<float> v(mean.size());
  for (size_t i = 0; i < mean.size(); ++i) {
    v[i] = mean[i] + static_cast<float>(rng->Normal(0.0, noise));
  }
  if (!NormalizeInPlace(v.data(), v.size())) v[0] = 1.0f;
  return v;
}

}  // namespace

const std::vector<std::string>& DefaultCategoryNames() {
  static const std::vector<std::string>* const kNames =
      new std::vector<std::string>{
          "DVDs",        "Beauty",   "Music",     "Books",
          "Games",       "Ciao Cafe", "Food & Drink", "Travel",
          "Internet",    "Entertainment", "Software", "House & Garden",
          "Fashion",     "Sports",   "Electronics",  "Family",
          "Cars",        "Finance",  "Education",    "Health",
      };
  return *kNames;
}

std::shared_ptr<ImplicitDataset> GenerateSyntheticDataset(
    const SyntheticConfig& config) {
  MARS_CHECK(config.num_users > 0);
  MARS_CHECK(config.num_items > 0);
  MARS_CHECK(config.num_facets >= 1);
  MARS_CHECK(config.num_categories >= config.num_facets);
  MARS_CHECK(config.latent_dim >= 2);
  MARS_CHECK(config.min_user_interactions >= 3);

  Rng rng(config.seed);
  const size_t n_users = config.num_users;
  const size_t n_items = config.num_items;
  const int n_facets = config.num_facets;
  const int n_cats = config.num_categories;
  const size_t d = config.latent_dim;

  // --- Category metadata ----------------------------------------------------
  std::vector<std::string> names = config.category_names;
  const auto& pool = DefaultCategoryNames();
  for (int c = static_cast<int>(names.size()); c < n_cats; ++c) {
    if (c < static_cast<int>(pool.size())) {
      names.push_back(pool[c]);
    } else {
      names.push_back("Category-" + std::to_string(c));
    }
  }
  names.resize(n_cats);

  // Primary facet of each category (round-robin anchoring).
  std::vector<int> category_facet(n_cats);
  for (int c = 0; c < n_cats; ++c) category_facet[c] = c % n_facets;
  // Categories grouped by their facet.
  std::vector<std::vector<int>> facet_categories(n_facets);
  for (int c = 0; c < n_cats; ++c)
    facet_categories[category_facet[c]].push_back(c);

  // Per (category, facet) prototype directions. A category is tight in its
  // anchor facet and diffuse elsewhere, which is what makes item-item
  // similarity facet-dependent.
  std::vector<std::vector<std::vector<float>>> proto(
      n_cats, std::vector<std::vector<float>>(n_facets));
  for (int c = 0; c < n_cats; ++c) {
    for (int k = 0; k < n_facets; ++k) {
      proto[c][k] = RandomUnitVector(&rng, d);
    }
  }

  // --- Items ----------------------------------------------------------------
  // Item categories: mildly skewed sizes (larger ids rarer) to mimic
  // real catalogues.
  std::vector<int> item_category(n_items);
  {
    std::vector<double> cat_weight(n_cats);
    for (int c = 0; c < n_cats; ++c)
      cat_weight[c] = 1.0 / std::sqrt(1.0 + c);
    double total = 0.0;
    for (double w : cat_weight) total += w;
    for (ItemId v = 0; v < n_items; ++v) {
      double r = rng.Uniform() * total;
      int chosen = n_cats - 1;
      for (int c = 0; c < n_cats; ++c) {
        if (r < cat_weight[c]) {
          chosen = c;
          break;
        }
        r -= cat_weight[c];
      }
      item_category[v] = chosen;
    }
  }
  // Per-facet item latents: tight around the prototype in the anchor facet,
  // looser in the others.
  std::vector<std::vector<std::vector<float>>> item_latent(
      n_items, std::vector<std::vector<float>>(n_facets));
  for (ItemId v = 0; v < n_items; ++v) {
    const int c = item_category[v];
    for (int k = 0; k < n_facets; ++k) {
      const double noise = (k == category_facet[c])
                               ? config.item_cluster_noise
                               : config.item_cluster_noise * 4.0;
      item_latent[v][k] = NoisyUnitVector(&rng, proto[c][k], noise);
    }
  }
  // Items grouped by category, with a Zipf-ish within-category popularity
  // order (index 0 = most popular).
  std::vector<std::vector<ItemId>> category_items(n_cats);
  for (ItemId v = 0; v < n_items; ++v)
    category_items[item_category[v]].push_back(v);
  for (auto& items : category_items) rng.Shuffle(&items);

  // --- Users ----------------------------------------------------------------
  std::vector<std::vector<double>> user_facet_mix(n_users);
  std::vector<std::vector<std::vector<double>>> user_cat_pref(n_users);
  std::vector<std::vector<std::vector<float>>> user_taste(n_users);
  const std::vector<double> facet_alpha(
      static_cast<size_t>(n_facets), config.facet_dirichlet);
  for (UserId u = 0; u < n_users; ++u) {
    user_facet_mix[u] = rng.Dirichlet(facet_alpha);
    user_cat_pref[u].resize(n_facets);
    user_taste[u].resize(n_facets);
    for (int k = 0; k < n_facets; ++k) {
      const auto& cats = facet_categories[k];
      const std::vector<double> cat_alpha(cats.size(),
                                          config.category_dirichlet);
      user_cat_pref[u][k] = rng.Dirichlet(cat_alpha);
      // Taste vector: preference-weighted blend of that facet's category
      // prototypes plus personal noise.
      std::vector<float> taste(d, 0.0f);
      for (size_t ci = 0; ci < cats.size(); ++ci) {
        Axpy(static_cast<float>(user_cat_pref[u][k][ci]),
             proto[cats[ci]][k].data(), taste.data(), d);
      }
      user_taste[u][k] = NoisyUnitVector(&rng, taste, 0.15);
    }
  }

  // --- Activity budget --------------------------------------------------
  // Power-law activity over a random user permutation, scaled to the target
  // interaction count with a per-user floor.
  std::vector<UserId> order(n_users);
  for (UserId u = 0; u < n_users; ++u) order[u] = u;
  rng.Shuffle(&order);
  std::vector<double> raw(n_users);
  double raw_total = 0.0;
  for (size_t r = 0; r < n_users; ++r) {
    raw[order[r]] = std::pow(static_cast<double>(r + 1),
                             -config.activity_skew);
    raw_total += raw[order[r]];
  }
  const double floor_total =
      static_cast<double>(config.min_user_interactions) *
      static_cast<double>(n_users);
  const double budget =
      std::max(0.0, static_cast<double>(config.target_interactions) -
                        floor_total);
  std::vector<size_t> quota(n_users);
  for (UserId u = 0; u < n_users; ++u) {
    quota[u] = config.min_user_interactions +
               static_cast<size_t>(budget * raw[u] / raw_total);
    // No user may want more items than exist.
    quota[u] = std::min(quota[u], n_items);
  }

  // --- Interaction generation ------------------------------------------
  std::vector<Interaction> log;
  log.reserve(config.target_interactions + n_users);
  std::unordered_set<uint64_t> seen;
  seen.reserve(config.target_interactions * 2);

  auto encode = [](UserId u, ItemId v) {
    return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
  };
  auto sample_discrete = [&rng](const std::vector<double>& p) {
    double r = rng.Uniform();
    for (size_t i = 0; i < p.size(); ++i) {
      if (r < p[i]) return i;
      r -= p[i];
    }
    return p.size() - 1;
  };

  // Softmax pick among candidate items scored against a reference latent.
  auto pick_by_affinity = [&](const std::vector<ItemId>& cand,
                              const std::vector<float>& reference, int facet) {
    std::vector<double> logits(cand.size());
    for (size_t i = 0; i < cand.size(); ++i) {
      logits[i] = config.affinity_sharpness *
                  Cosine(reference.data(), item_latent[cand[i]][facet].data(),
                         d);
    }
    double max_logit = logits[0];
    for (double l : logits) max_logit = std::max(max_logit, l);
    double total = 0.0;
    for (double& l : logits) {
      l = std::exp(l - max_logit);
      total += l;
    }
    double r = rng.Uniform() * total;
    size_t pick = cand.size() - 1;
    for (size_t i = 0; i < cand.size(); ++i) {
      if (r < logits[i]) {
        pick = i;
        break;
      }
      r -= logits[i];
    }
    return cand[pick];
  };

  for (UserId u = 0; u < n_users; ++u) {
    int64_t ts = 0;
    size_t failures = 0;
    std::vector<ItemId> consumed;
    while (static_cast<size_t>(ts) < quota[u] && failures < 50) {
      ItemId v = 0;
      if (!consumed.empty() && rng.Bernoulli(config.session_chain)) {
        // --- Session chaining: pick an item near a previously consumed
        // anchor in the anchor's facet, drawing candidates from both the
        // anchor's category and the whole catalogue (cross-category
        // neighbors included).
        const ItemId anchor = consumed[rng.UniformInt(consumed.size())];
        const int k = category_facet[item_category[anchor]];
        std::vector<ItemId> cand;
        cand.reserve(config.candidate_pool * 2);
        const auto& same_cat = category_items[item_category[anchor]];
        for (size_t i = 0; i < config.candidate_pool && i < same_cat.size();
             ++i) {
          cand.push_back(same_cat[rng.UniformInt(same_cat.size())]);
        }
        for (size_t i = 0; i < config.candidate_pool; ++i) {
          cand.push_back(static_cast<ItemId>(rng.UniformInt(n_items)));
        }
        v = pick_by_affinity(cand, item_latent[anchor][k], k);
      } else {
        // --- Taste-driven interaction: facet ~ user mixture, category ~
        // per-facet preference, item ~ affinity within the category.
        const int k = static_cast<int>(sample_discrete(user_facet_mix[u]));
        const auto& cats = facet_categories[k];
        const int c = cats[sample_discrete(user_cat_pref[u][k])];
        const auto& items = category_items[c];
        if (items.empty()) {
          ++failures;
          continue;
        }
        const size_t pool_n = std::min(config.candidate_pool, items.size());
        std::vector<ItemId> cand(pool_n);
        for (size_t i = 0; i < pool_n; ++i) {
          // Popularity-skewed index within the category.
          const double z = rng.Uniform();
          const size_t idx = static_cast<size_t>(
              std::pow(z, config.popularity_skew) *
              static_cast<double>(items.size()));
          cand[i] = items[std::min(idx, items.size() - 1)];
        }
        v = pick_by_affinity(cand, user_taste[u][k], k);
      }
      if (!seen.insert(encode(u, v)).second) {
        ++failures;
        continue;
      }
      log.push_back(Interaction{u, v, ts});
      consumed.push_back(v);
      ++ts;
      failures = 0;
    }
    // Fill any shortfall (dense users in small categories) with uniform
    // fresh items so every user meets the leave-one-out minimum.
    while (static_cast<size_t>(ts) < config.min_user_interactions) {
      const ItemId v = static_cast<ItemId>(rng.UniformInt(n_items));
      if (!seen.insert(encode(u, v)).second) continue;
      log.push_back(Interaction{u, v, ts});
      ++ts;
    }
  }

  auto dataset =
      std::make_shared<ImplicitDataset>(n_users, n_items, std::move(log));
  dataset->SetItemCategories(std::move(item_category), std::move(names));
  return dataset;
}

}  // namespace mars
