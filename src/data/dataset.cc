#include "data/dataset.h"

#include <algorithm>

#include "common/check.h"

namespace mars {

ImplicitDataset::ImplicitDataset(size_t num_users, size_t num_items,
                                 std::vector<Interaction> interactions)
    : num_users_(num_users), num_items_(num_items) {
  for (const Interaction& x : interactions) {
    MARS_CHECK_MSG(x.user < num_users, "interaction user id out of range");
    MARS_CHECK_MSG(x.item < num_items, "interaction item id out of range");
  }

  // Group by user, order by timestamp within each user, then dedupe
  // (user, item) keeping the earliest event.
  std::sort(interactions.begin(), interactions.end(),
            [](const Interaction& a, const Interaction& b) {
              if (a.user != b.user) return a.user < b.user;
              if (a.item != b.item) return a.item < b.item;
              return a.timestamp < b.timestamp;
            });
  interactions_.reserve(interactions.size());
  for (const Interaction& x : interactions) {
    if (!interactions_.empty() && interactions_.back().user == x.user &&
        interactions_.back().item == x.item) {
      continue;  // duplicate (u, v); keep first (earliest timestamp)
    }
    interactions_.push_back(x);
  }
  // Re-sort each user's block by timestamp (stable w.r.t. item for ties).
  std::sort(interactions_.begin(), interactions_.end(),
            [](const Interaction& a, const Interaction& b) {
              if (a.user != b.user) return a.user < b.user;
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.item < b.item;
            });

  // Build CSR in both directions.
  user_offsets_.assign(num_users_ + 1, 0);
  history_offsets_.assign(num_users_ + 1, 0);
  item_offsets_.assign(num_items_ + 1, 0);
  for (const Interaction& x : interactions_) {
    ++user_offsets_[x.user + 1];
    ++item_offsets_[x.item + 1];
  }
  for (size_t u = 0; u < num_users_; ++u)
    user_offsets_[u + 1] += user_offsets_[u];
  for (size_t v = 0; v < num_items_; ++v)
    item_offsets_[v + 1] += item_offsets_[v];
  history_offsets_ = user_offsets_;

  user_items_.resize(interactions_.size());
  item_users_.resize(interactions_.size());
  {
    std::vector<size_t> ucur(user_offsets_.begin(), user_offsets_.end() - 1);
    std::vector<size_t> icur(item_offsets_.begin(), item_offsets_.end() - 1);
    for (const Interaction& x : interactions_) {
      user_items_[ucur[x.user]++] = x.item;
      item_users_[icur[x.item]++] = x.user;
    }
  }
  // Sort adjacency lists by id for binary-search membership.
  for (size_t u = 0; u < num_users_; ++u) {
    std::sort(user_items_.begin() + user_offsets_[u],
              user_items_.begin() + user_offsets_[u + 1]);
  }
  for (size_t v = 0; v < num_items_; ++v) {
    std::sort(item_users_.begin() + item_offsets_[v],
              item_users_.begin() + item_offsets_[v + 1]);
  }
}

double ImplicitDataset::Density() const {
  if (num_users_ == 0 || num_items_ == 0) return 0.0;
  return static_cast<double>(interactions_.size()) /
         (static_cast<double>(num_users_) * static_cast<double>(num_items_));
}

std::span<const ItemId> ImplicitDataset::ItemsOf(UserId u) const {
  MARS_DCHECK(u < num_users_);
  return {user_items_.data() + user_offsets_[u],
          user_offsets_[u + 1] - user_offsets_[u]};
}

std::span<const UserId> ImplicitDataset::UsersOf(ItemId v) const {
  MARS_DCHECK(v < num_items_);
  return {item_users_.data() + item_offsets_[v],
          item_offsets_[v + 1] - item_offsets_[v]};
}

bool ImplicitDataset::HasInteraction(UserId u, ItemId v) const {
  const auto items = ItemsOf(u);
  return std::binary_search(items.begin(), items.end(), v);
}

size_t ImplicitDataset::UserDegree(UserId u) const {
  MARS_DCHECK(u < num_users_);
  return user_offsets_[u + 1] - user_offsets_[u];
}

size_t ImplicitDataset::ItemDegree(ItemId v) const {
  MARS_DCHECK(v < num_items_);
  return item_offsets_[v + 1] - item_offsets_[v];
}

std::span<const Interaction> ImplicitDataset::HistoryOf(UserId u) const {
  MARS_DCHECK(u < num_users_);
  return {interactions_.data() + history_offsets_[u],
          history_offsets_[u + 1] - history_offsets_[u]};
}

void ImplicitDataset::SetItemCategories(std::vector<int> categories,
                                        std::vector<std::string> names) {
  MARS_CHECK(categories.size() == num_items_);
  for (int c : categories) {
    MARS_CHECK_MSG(c >= 0 && c < static_cast<int>(names.size()),
                   "item category id out of range");
  }
  item_categories_ = std::move(categories);
  category_names_ = std::move(names);
}

int ImplicitDataset::ItemCategory(ItemId v) const {
  MARS_CHECK(has_categories());
  MARS_DCHECK(v < num_items_);
  return item_categories_[v];
}

const std::string& ImplicitDataset::CategoryName(int c) const {
  MARS_CHECK(c >= 0 && c < num_categories());
  return category_names_[c];
}

}  // namespace mars
