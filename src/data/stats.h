// Dataset summary statistics (Table I of the paper).
#ifndef MARS_DATA_STATS_H_
#define MARS_DATA_STATS_H_

#include <cstddef>
#include <string>

#include "data/dataset.h"

namespace mars {

/// Summary of one implicit-feedback dataset.
struct DatasetStats {
  size_t num_users = 0;
  size_t num_items = 0;
  size_t num_interactions = 0;
  double density = 0.0;  // fraction in [0, 1]
  double avg_user_degree = 0.0;
  double avg_item_degree = 0.0;
  size_t max_user_degree = 0;
  size_t max_item_degree = 0;
  size_t min_user_degree = 0;
  /// Gini coefficient of user activity (0 = uniform, 1 = concentrated);
  /// reported because Eq. 10's biased sampling targets skewed activity.
  double user_activity_gini = 0.0;
};

/// Computes statistics for `dataset`.
DatasetStats ComputeStats(const ImplicitDataset& dataset);

/// Renders stats as a one-line summary ("1000 users, 1000 items, ...").
std::string StatsToString(const DatasetStats& stats);

}  // namespace mars

#endif  // MARS_DATA_STATS_H_
