// Core value types for implicit-feedback data.
#ifndef MARS_DATA_INTERACTION_H_
#define MARS_DATA_INTERACTION_H_

#include <cstdint>

namespace mars {

using UserId = uint32_t;
using ItemId = uint32_t;

/// One observed implicit-feedback event (X_uv = 1 in the paper).
/// `timestamp` orders a user's history for leave-one-out splitting; datasets
/// without real timestamps use a per-user sequence counter.
struct Interaction {
  UserId user = 0;
  ItemId item = 0;
  int64_t timestamp = 0;

  friend bool operator==(const Interaction& a, const Interaction& b) {
    return a.user == b.user && a.item == b.item &&
           a.timestamp == b.timestamp;
  }
};

}  // namespace mars

#endif  // MARS_DATA_INTERACTION_H_
