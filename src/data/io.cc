#include "data/io.h"

#include <fstream>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace mars {

bool SaveInteractionsCsv(const ImplicitDataset& dataset,
                         const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) return false;
  f << "user,item,timestamp\n";
  for (const Interaction& x : dataset.interactions()) {
    f << x.user << "," << x.item << "," << x.timestamp << "\n";
  }
  return f.good();
}

std::shared_ptr<ImplicitDataset> LoadInteractionsCsv(
    const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) {
    MARS_LOG(ERROR) << "cannot open " << path;
    return nullptr;
  }
  std::string line;
  std::vector<Interaction> log;
  UserId max_user = 0;
  ItemId max_item = 0;
  bool first = true;
  while (std::getline(f, line)) {
    line = Trim(line);
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (StartsWith(line, "user")) continue;  // header
    }
    const auto fields = Split(line, ',');
    if (fields.size() < 2) {
      MARS_LOG(ERROR) << "bad CSV row: " << line;
      return nullptr;
    }
    Interaction x;
    char* end = nullptr;
    x.user = static_cast<UserId>(std::strtoul(fields[0].c_str(), &end, 10));
    if (end == fields[0].c_str()) return nullptr;
    x.item = static_cast<ItemId>(std::strtoul(fields[1].c_str(), &end, 10));
    if (end == fields[1].c_str()) return nullptr;
    x.timestamp =
        fields.size() > 2 ? std::strtoll(fields[2].c_str(), nullptr, 10) : 0;
    max_user = std::max(max_user, x.user);
    max_item = std::max(max_item, x.item);
    log.push_back(x);
  }
  if (log.empty()) {
    MARS_LOG(ERROR) << "empty CSV: " << path;
    return nullptr;
  }
  return std::make_shared<ImplicitDataset>(max_user + 1, max_item + 1,
                                           std::move(log));
}

}  // namespace mars
