#include "data/split.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace mars {

size_t LeaveOneOutSplit::NumEvalUsers() const {
  size_t n = 0;
  for (int64_t t : test_item) {
    if (t != kNoItem) ++n;
  }
  return n;
}

LeaveOneOutSplit MakeLeaveOneOutSplit(const ImplicitDataset& full,
                                      uint64_t seed, size_t min_history) {
  MARS_CHECK(min_history >= 3);
  Rng rng(seed);

  const size_t num_users = full.num_users();
  LeaveOneOutSplit split;
  split.test_item.assign(num_users, LeaveOneOutSplit::kNoItem);
  split.dev_item.assign(num_users, LeaveOneOutSplit::kNoItem);

  std::vector<Interaction> train_log;
  train_log.reserve(full.num_interactions());

  for (UserId u = 0; u < num_users; ++u) {
    const auto history = full.HistoryOf(u);  // timestamp-sorted
    if (history.size() < min_history) {
      train_log.insert(train_log.end(), history.begin(), history.end());
      continue;
    }
    // Last interaction (by timestamp) becomes the test item.
    const size_t test_idx = history.size() - 1;
    // Dev item: uniform among the remaining history entries.
    const size_t dev_idx = static_cast<size_t>(rng.UniformInt(test_idx));
    split.test_item[u] = history[test_idx].item;
    split.dev_item[u] = history[dev_idx].item;
    for (size_t i = 0; i < history.size(); ++i) {
      if (i == test_idx || i == dev_idx) continue;
      train_log.push_back(history[i]);
    }
  }

  split.train = std::make_shared<ImplicitDataset>(
      num_users, full.num_items(), std::move(train_log));
  if (full.has_categories()) {
    std::vector<int> cats(full.num_items());
    std::vector<std::string> names;
    names.reserve(full.num_categories());
    for (int c = 0; c < full.num_categories(); ++c)
      names.push_back(full.CategoryName(c));
    for (ItemId v = 0; v < full.num_items(); ++v)
      cats[v] = full.ItemCategory(v);
    split.train->SetItemCategories(std::move(cats), std::move(names));
  }
  return split;
}

}  // namespace mars
