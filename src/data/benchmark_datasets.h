// Scaled analogues of the paper's six benchmark datasets (Table I).
//
// The real datasets are unavailable offline; these specs configure the
// synthetic generator so that
//  * the density ordering of Table I is preserved
//    (ML-1M > ML-20M > Delicious > Lastfm > Ciao > BookX),
//  * interactions-per-user stay at realistic magnitudes (8-40) — the real
//    corpora have 8-270 per user, and per-user history volume (not raw
//    density) is what determines whether per-facet preferences are
//    learnable, so it must not be scaled away,
//  * sizes are scaled down so the entire Table II harness (10 models × 6
//    datasets) runs in minutes on a 2-core machine.
//
// Paper Table I (original):            This repo (scaled):
//   Delicious  1K  ×   1K,   8K, 0.61%    900 ×  1311,  7.2K, 0.61%
//   Lastfm     2K  × 175K,  92K, 0.28%   1000 ×  5714, 16.0K, 0.28%
//   Ciao       7K  ×  11K, 147K, 0.19%    900 ×  7368, 12.6K, 0.19%
//   BookX     20K  ×  40K, 605K, 0.08%   1800 ×  9000, 21.6K, 0.13%*
//   ML-1M      6K  ×   4K,   1M, 4.52%    700 ×   885, 28.0K, 4.52%
//   ML-20M    62K  ×  27K,  17M, 1.02%   1200 ×  2353, 28.8K, 1.02%
//
// (*) BookX relaxes the absolute density (0.08% is unreachable at this
//     scale without starving the item side) but stays the sparsest set.
#ifndef MARS_DATA_BENCHMARK_DATASETS_H_
#define MARS_DATA_BENCHMARK_DATASETS_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"

namespace mars {

/// Identifiers of the six benchmark analogues.
enum class BenchmarkId {
  kDelicious,
  kLastfm,
  kCiao,
  kBookX,
  kMl1m,
  kMl20m,
};

/// All six ids in the paper's presentation order.
const std::vector<BenchmarkId>& AllBenchmarks();

/// The four datasets used for the ablation / hyperparameter studies
/// (Table IV, Fig. 5, Fig. 6): Delicious, Lastfm, Ciao, BookX.
const std::vector<BenchmarkId>& AblationBenchmarks();

/// Display name ("Delicious", "ML-1M", ...).
std::string BenchmarkName(BenchmarkId id);

/// Generator configuration for the scaled analogue. `fast` shrinks the
/// dataset further (for smoke tests and MARS_BENCH_FAST=1 runs).
SyntheticConfig BenchmarkConfig(BenchmarkId id, bool fast = false);

/// Generates the scaled analogue dataset.
std::shared_ptr<ImplicitDataset> MakeBenchmarkDataset(BenchmarkId id,
                                                      bool fast = false);

}  // namespace mars

#endif  // MARS_DATA_BENCHMARK_DATASETS_H_
