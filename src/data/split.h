// Leave-one-out train/dev/test splitting (paper Sec. V-A2).
//
// The test set is the last item of each user (by timestamp); one more item
// per user is held out as the development set for early stopping and
// hyperparameter selection. Users with fewer than `min_history`
// interactions contribute all their events to training and are skipped
// during evaluation, matching the standard protocol of [33].
#ifndef MARS_DATA_SPLIT_H_
#define MARS_DATA_SPLIT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"

namespace mars {

/// Holds the training dataset plus one held-out dev and test item per user.
struct LeaveOneOutSplit {
  /// Training interactions only.
  std::shared_ptr<ImplicitDataset> train;
  /// Per-user held-out test item, or kNoItem when the user is not evaluated.
  std::vector<int64_t> test_item;
  /// Per-user held-out dev item, or kNoItem.
  std::vector<int64_t> dev_item;

  static constexpr int64_t kNoItem = -1;

  /// Number of users with a test item.
  size_t NumEvalUsers() const;
};

/// Splits `full` into train/dev/test.
///
/// * test = chronologically last item of each user;
/// * dev  = one item sampled uniformly from the remaining history
///   (seeded by `seed`), mirroring the paper's "one item for each user is
///   also sampled to form the development set";
/// * users with fewer than `min_history` (default 3) interactions are left
///   un-split.
///
/// Item categories are propagated to the training dataset.
LeaveOneOutSplit MakeLeaveOneOutSplit(const ImplicitDataset& full,
                                      uint64_t seed,
                                      size_t min_history = 3);

}  // namespace mars

#endif  // MARS_DATA_SPLIT_H_
