#include "data/stats.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace mars {

DatasetStats ComputeStats(const ImplicitDataset& dataset) {
  DatasetStats s;
  s.num_users = dataset.num_users();
  s.num_items = dataset.num_items();
  s.num_interactions = dataset.num_interactions();
  s.density = dataset.Density();

  std::vector<size_t> user_deg(s.num_users);
  size_t total = 0;
  s.min_user_degree = s.num_users > 0 ? SIZE_MAX : 0;
  for (UserId u = 0; u < s.num_users; ++u) {
    user_deg[u] = dataset.UserDegree(u);
    total += user_deg[u];
    s.max_user_degree = std::max(s.max_user_degree, user_deg[u]);
    s.min_user_degree = std::min(s.min_user_degree, user_deg[u]);
  }
  if (s.num_users > 0)
    s.avg_user_degree = static_cast<double>(total) / s.num_users;

  size_t item_total = 0;
  for (ItemId v = 0; v < s.num_items; ++v) {
    const size_t deg = dataset.ItemDegree(v);
    item_total += deg;
    s.max_item_degree = std::max(s.max_item_degree, deg);
  }
  if (s.num_items > 0)
    s.avg_item_degree = static_cast<double>(item_total) / s.num_items;

  // Gini coefficient over user degrees.
  if (s.num_users > 1 && total > 0) {
    std::sort(user_deg.begin(), user_deg.end());
    double weighted = 0.0;
    for (size_t i = 0; i < user_deg.size(); ++i) {
      weighted += static_cast<double>(i + 1) * user_deg[i];
    }
    const double n = static_cast<double>(s.num_users);
    s.user_activity_gini =
        (2.0 * weighted) / (n * static_cast<double>(total)) - (n + 1.0) / n;
  }
  return s;
}

std::string StatsToString(const DatasetStats& stats) {
  return std::to_string(stats.num_users) + " users, " +
         std::to_string(stats.num_items) + " items, " +
         std::to_string(stats.num_interactions) + " interactions, density " +
         FormatFixed(stats.density * 100.0, 2) + "%, avg deg " +
         FormatFixed(stats.avg_user_degree, 1) + ", gini " +
         FormatFixed(stats.user_activity_gini, 2);
}

}  // namespace mars
