// CSV import/export of interaction logs.
//
// Format: one "user,item,timestamp" row per interaction, with a header
// line. Lets users bring their own implicit-feedback data into the library
// and lets experiments persist generated datasets.
#ifndef MARS_DATA_IO_H_
#define MARS_DATA_IO_H_

#include <memory>
#include <string>

#include "data/dataset.h"

namespace mars {

/// Writes `dataset` interactions to `path` as CSV. Returns false on I/O
/// error.
bool SaveInteractionsCsv(const ImplicitDataset& dataset,
                         const std::string& path);

/// Loads a dataset from CSV. User/item spaces are sized to (max id + 1).
/// Returns nullptr on I/O or parse error.
std::shared_ptr<ImplicitDataset> LoadInteractionsCsv(const std::string& path);

}  // namespace mars

#endif  // MARS_DATA_IO_H_
