#include "data/benchmark_datasets.h"

#include "common/check.h"

namespace mars {

const std::vector<BenchmarkId>& AllBenchmarks() {
  static const std::vector<BenchmarkId>* const kAll =
      new std::vector<BenchmarkId>{
          BenchmarkId::kDelicious, BenchmarkId::kLastfm, BenchmarkId::kCiao,
          BenchmarkId::kBookX,     BenchmarkId::kMl1m,   BenchmarkId::kMl20m,
      };
  return *kAll;
}

const std::vector<BenchmarkId>& AblationBenchmarks() {
  static const std::vector<BenchmarkId>* const kFour =
      new std::vector<BenchmarkId>{
          BenchmarkId::kDelicious,
          BenchmarkId::kLastfm,
          BenchmarkId::kCiao,
          BenchmarkId::kBookX,
      };
  return *kFour;
}

std::string BenchmarkName(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kDelicious:
      return "Delicious";
    case BenchmarkId::kLastfm:
      return "Lastfm";
    case BenchmarkId::kCiao:
      return "Ciao";
    case BenchmarkId::kBookX:
      return "BookX";
    case BenchmarkId::kMl1m:
      return "ML-1M";
    case BenchmarkId::kMl20m:
      return "ML-20M";
  }
  MARS_CHECK_MSG(false, "unknown benchmark id");
  return "";
}

// The scaled specs preserve two properties of the paper's Table I at once:
//  * the density ordering
//    (ML-1M 4.52% > ML-20M 1.02% > Delicious 0.61% > Lastfm 0.28%
//     > Ciao 0.19% > BookX 0.08%), using density = avg_degree / num_items;
//  * realistic interactions-per-user (the real corpora have 8-270
//    interactions per user; per-user history is what makes per-facet
//    learning feasible, so it must not be scaled away).
SyntheticConfig BenchmarkConfig(BenchmarkId id, bool fast) {
  SyntheticConfig cfg;
  cfg.num_facets = 4;
  cfg.num_categories = 12;
  switch (id) {
    case BenchmarkId::kDelicious:
      // deg 8 / 1311 items = 0.61% density.
      cfg.num_users = 900;
      cfg.num_items = 1311;
      cfg.target_interactions = 7200;
      cfg.seed = 1001;
      break;
    case BenchmarkId::kLastfm:
      // deg 16 / 5714 items = 0.28%; the item-heavy corpus.
      cfg.num_users = 1000;
      cfg.num_items = 5714;
      cfg.target_interactions = 16000;
      cfg.num_categories = 16;
      cfg.seed = 1002;
      break;
    case BenchmarkId::kCiao:
      // deg 14 / 7368 items = 0.19%; the paper's case-study dataset.
      cfg.num_users = 900;
      cfg.num_items = 7368;
      cfg.target_interactions = 12600;
      cfg.num_categories = 16;
      cfg.seed = 1003;
      break;
    case BenchmarkId::kBookX:
      // deg 12 / 9000 items = 0.13%; the sparsest corpus. The paper's
      // 0.08% is unreachable at this scale without starving the item side
      // (real BookX has ~15 interactions per item; 0.08% at 1800 users
      // would leave items with < 1), so the density is relaxed while the
      // ordering (BookX sparsest) is preserved.
      cfg.num_users = 1800;
      cfg.num_items = 9000;
      cfg.target_interactions = 21600;
      cfg.num_categories = 16;
      cfg.seed = 1004;
      break;
    case BenchmarkId::kMl1m:
      // deg 40 / 885 items = 4.52%; the densest corpus.
      cfg.num_users = 700;
      cfg.num_items = 885;
      cfg.target_interactions = 28000;
      cfg.seed = 1005;
      break;
    case BenchmarkId::kMl20m:
      // deg 24 / 2353 items = 1.02%.
      cfg.num_users = 1200;
      cfg.num_items = 2353;
      cfg.target_interactions = 28800;
      cfg.seed = 1006;
      break;
  }
  if (fast) {
    cfg.num_users /= 4;
    cfg.num_items /= 4;
    cfg.target_interactions /= 4;
  }
  return cfg;
}

std::shared_ptr<ImplicitDataset> MakeBenchmarkDataset(BenchmarkId id,
                                                      bool fast) {
  return GenerateSyntheticDataset(BenchmarkConfig(id, fast));
}

}  // namespace mars
