// Implicit-feedback dataset with bidirectional adjacency.
//
// This is the substrate every model trains on: a bipartite user-item graph
// stored in CSR form in both directions (user→items for positive sampling
// and pulling, item→users for the paper's two-hop adaptive margin, Eq. 7,
// and TransCF's neighborhood translations). Item-id lists are sorted so
// membership queries (needed by negative sampling and evaluation) are
// O(log deg).
//
// Items may carry category labels; the synthetic generator populates these
// so the case-study experiments (Fig. 7, Tables V/VI) can measure how well
// facet spaces separate ground-truth categories.
#ifndef MARS_DATA_DATASET_H_
#define MARS_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/interaction.h"

namespace mars {

/// Immutable implicit-feedback matrix X with CSR adjacency.
class ImplicitDataset {
 public:
  /// Builds the dataset from an interaction log. Duplicate (user,item)
  /// pairs are collapsed (keeping the earliest timestamp).
  ImplicitDataset(size_t num_users, size_t num_items,
                  std::vector<Interaction> interactions);

  size_t num_users() const { return num_users_; }
  size_t num_items() const { return num_items_; }
  size_t num_interactions() const { return interactions_.size(); }

  /// Density |X| / (N*M) in [0, 1].
  double Density() const;

  /// Items user `u` interacted with, sorted by item id (V_u in the paper).
  std::span<const ItemId> ItemsOf(UserId u) const;

  /// Users who interacted with item `v`, sorted by user id (U_v).
  std::span<const UserId> UsersOf(ItemId v) const;

  /// True when (u, v) is a positive pair. O(log deg(u)).
  bool HasInteraction(UserId u, ItemId v) const;

  /// Number of items user `u` interacted with (freq(u) in Eq. 10).
  size_t UserDegree(UserId u) const;

  /// Number of users who interacted with item `v`.
  size_t ItemDegree(ItemId v) const;

  /// The deduplicated interaction log (ordering: by user, then timestamp).
  const std::vector<Interaction>& interactions() const {
    return interactions_;
  }

  /// User `u`'s interactions ordered by timestamp (for sequence splits).
  std::span<const Interaction> HistoryOf(UserId u) const;

  // --- Optional item category metadata -------------------------------------

  /// Attaches per-item category ids and their display names.
  /// `categories` must have one entry per item in [0, names.size()).
  void SetItemCategories(std::vector<int> categories,
                         std::vector<std::string> names);

  bool has_categories() const { return !category_names_.empty(); }
  int num_categories() const {
    return static_cast<int>(category_names_.size());
  }
  /// Category of item `v`; requires has_categories().
  int ItemCategory(ItemId v) const;
  /// Display name of category `c`.
  const std::string& CategoryName(int c) const;

 private:
  size_t num_users_;
  size_t num_items_;
  std::vector<Interaction> interactions_;

  // CSR user -> items (sorted by item id).
  std::vector<size_t> user_offsets_;
  std::vector<ItemId> user_items_;
  // CSR user -> interactions (sorted by timestamp); indices into
  // interactions_ are not needed because interactions_ itself is grouped by
  // user and timestamp-sorted within each group.
  std::vector<size_t> history_offsets_;
  // CSR item -> users (sorted by user id).
  std::vector<size_t> item_offsets_;
  std::vector<UserId> item_users_;

  std::vector<int> item_categories_;
  std::vector<std::string> category_names_;
};

}  // namespace mars

#endif  // MARS_DATA_DATASET_H_
