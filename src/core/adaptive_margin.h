// Per-user adaptive margins from two-hop neighborhoods (paper Eq. 7).
//
//   γ_u = 1 − |∪_{v ∈ V_u} U_v| / N
//
// The more *distinct* two-hop neighbors a user has, the more diverse their
// taste, the higher their adoption level — and the smaller the margin the
// push loss demands for them. The distinct-union reading guarantees the
// γ_u ∈ [0, 1] range the paper asserts (a multiset count does not; see
// DESIGN.md §2.4).
#ifndef MARS_CORE_ADAPTIVE_MARGIN_H_
#define MARS_CORE_ADAPTIVE_MARGIN_H_

#include <vector>

#include "data/dataset.h"

namespace mars {

/// Computes γ_u for every user of `train`.
std::vector<float> ComputeAdaptiveMargins(const ImplicitDataset& train);

/// Single-user variant (used by tests and case studies).
float ComputeAdaptiveMargin(const ImplicitDataset& train, UserId u);

}  // namespace mars

#endif  // MARS_CORE_ADAPTIVE_MARGIN_H_
