#include "core/persistence.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/binary_io.h"
#include "common/logging.h"
#include "common/mapped_store.h"

namespace mars {
namespace {

constexpr uint32_t kMagic = 0x4D415253;  // "MARS"
// Byte layouts and compatibility matrix: docs/FORMAT.md.
// v1: facet-major tensors ([facet][entity][dim]), the std::vector<Matrix>
//     era. Still loadable.
// v2: entity-major tensors ([entity][facet][dim]) matching FacetStore;
//     padding is never written, so files are layout- and bit-compatible
//     with v1 up to the tensor ordering. SaveMars writes this.
// v3: entity-major tensors at the aligned in-memory row stride, regions on
//     64-byte file offsets — mmap-servable (SaveMarsV3 / LoadMarsMapped).
constexpr uint32_t kVersion = 2;
constexpr uint32_t kVersionV3 = 3;
constexpr uint32_t kOldestLoadableVersion = 1;

// Common header prefix shared by every version (48 bytes):
//   magic u32, version u32, num_facets u64, dim u64, n_users u64,
//   n_items u64, learn_radius u32, calibrated u32.
constexpr size_t kCommonHeaderBytes = 48;
// v3 appends: row_stride u64, user_offset u64, item_offset u64,
// tail_offset u64 (32 bytes, ending at 80), then zero padding up to the
// first 64-byte boundary past the header so the user tensor starts aligned.
constexpr size_t kV3HeaderBytes = 128;

/// Writes a FacetStore entity-major with the row padding stripped. When the
/// store is unpadded (dim is a cache-line multiple) the whole tensor is one
/// dense bulk write instead of entities×facets small ones.
void WriteFacetStore(std::ostream& out, const FacetStore& store) {
  if (store.row_stride() == store.dim()) {
    WriteFloats(out, store.EntityBlock(0),
                store.num_entities() * store.entity_stride());
    return;
  }
  for (size_t e = 0; e < store.num_entities(); ++e) {
    for (size_t k = 0; k < store.num_facets(); ++k) {
      WriteFloats(out, store.Row(e, k), store.dim());
    }
  }
}

/// Reads a tensor written entity-major (v2) into `store`.
bool ReadFacetStoreV2(std::istream& in, FacetStore* store) {
  if (store->row_stride() == store->dim()) {
    return ReadFloats(in, store->EntityBlock(0),
                      store->num_entities() * store->entity_stride());
  }
  for (size_t e = 0; e < store->num_entities(); ++e) {
    for (size_t k = 0; k < store->num_facets(); ++k) {
      if (!ReadFloats(in, store->Row(e, k), store->dim())) return false;
    }
  }
  return true;
}

/// Reads a tensor written facet-major (v1, K stacked N×D matrices),
/// transposing into the entity-major store.
bool ReadFacetStoreV1(std::istream& in, FacetStore* store) {
  for (size_t k = 0; k < store->num_facets(); ++k) {
    for (size_t e = 0; e < store->num_entities(); ++e) {
      if (!ReadFloats(in, store->Row(e, k), store->dim())) return false;
    }
  }
  return true;
}

/// Shape fields every version carries, decoded from the common header.
struct SnapshotShape {
  uint64_t kf = 0, d = 0, n_users = 0, n_items = 0;
  bool learn_radius = false;
  bool calibrated = true;
};

/// Plausibility bounds shared by the stream and mmap loaders: reject
/// corrupt/crafted headers before any size computation can wrap.
bool ShapePlausible(const SnapshotShape& s, const char* who) {
  constexpr uint64_t kMaxEntities = 1ull << 31;
  if (s.kf == 0 || s.kf > 64 || s.d < 2 || s.d > 65536 || s.n_users == 0 ||
      s.n_users > kMaxEntities || s.n_items == 0 ||
      s.n_items > kMaxEntities) {
    MARS_LOG(ERROR) << who << ": implausible header";
    return false;
  }
  return true;
}

std::unique_ptr<Mars> MakeModelForShape(const SnapshotShape& s) {
  MultiFacetConfig cfg;
  cfg.num_facets = s.kf;
  cfg.dim = s.d;
  MarsOptions mopts;
  mopts.learn_radius = s.learn_radius;
  mopts.calibrated = s.calibrated;
  return std::make_unique<Mars>(cfg, mopts);
}

/// v3 region offsets, after the common header.
struct V3Layout {
  uint64_t row_stride = 0;  // floats
  uint64_t user_offset = 0;  // bytes from file start
  uint64_t item_offset = 0;
  uint64_t tail_offset = 0;
};

/// Validates the v3 extension against the shape: the stride must be the
/// aligned in-memory stride and the three regions must tile the file
/// exactly (user tensor at the padded header boundary, item tensor and
/// tail immediately after the preceding region).
bool V3LayoutValid(const SnapshotShape& s, const V3Layout& l,
                   const char* who) {
  if (l.row_stride != FacetStore::RowStrideFor(s.d)) {
    MARS_LOG(ERROR) << who << ": v3 row stride " << l.row_stride
                    << " does not match the aligned stride "
                    << FacetStore::RowStrideFor(s.d) << " for dim " << s.d;
    return false;
  }
  const uint64_t user_bytes =
      s.n_users * s.kf * l.row_stride * sizeof(float);
  const uint64_t item_bytes =
      s.n_items * s.kf * l.row_stride * sizeof(float);
  if (l.user_offset != kV3HeaderBytes ||
      l.item_offset != l.user_offset + user_bytes ||
      l.tail_offset != l.item_offset + item_bytes ||
      l.user_offset % FacetStore::kRowAlignBytes != 0 ||
      l.item_offset % FacetStore::kRowAlignBytes != 0) {
    MARS_LOG(ERROR) << who << ": v3 region offsets are inconsistent or "
                    << "misaligned";
    return false;
  }
  return true;
}

}  // namespace

bool SaveMars(const Mars& model, const std::string& path) {
  if (model.user_facets_.empty()) {
    MARS_LOG(ERROR) << "SaveMars: model has not been fit";
    return false;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return false;

  const size_t kf = model.config_.num_facets;
  const size_t d = model.config_.dim;
  const size_t n_users = model.user_facets_.num_entities();
  const size_t n_items = model.item_facets_.num_entities();

  WriteU32(out, kMagic);
  WriteU32(out, kVersion);
  WriteU64(out, kf);
  WriteU64(out, d);
  WriteU64(out, n_users);
  WriteU64(out, n_items);
  WriteU32(out, model.mars_options_.learn_radius ? 1 : 0);
  WriteU32(out, model.mars_options_.calibrated ? 1 : 0);

  WriteFacetStore(out, model.user_facets_);
  WriteFacetStore(out, model.item_facets_);
  WriteFloats(out, model.theta_logits_.data(), model.theta_logits_.size());
  WriteFloats(out, model.radii_.data(), model.radii_.size());
  WriteU64(out, model.margins_.size());
  WriteFloats(out, model.margins_.data(), model.margins_.size());
  return out.good();
}

bool SaveMarsV3(const Mars& model, const std::string& path) {
  if (model.user_facets_.empty()) {
    MARS_LOG(ERROR) << "SaveMarsV3: model has not been fit";
    return false;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return false;

  const FacetStore& users = model.user_facets_;
  const FacetStore& items = model.item_facets_;
  const uint64_t kf = model.config_.num_facets;
  const uint64_t d = model.config_.dim;
  const uint64_t stride = users.row_stride();
  const uint64_t user_bytes =
      users.num_entities() * users.entity_stride() * sizeof(float);
  const uint64_t item_bytes =
      items.num_entities() * items.entity_stride() * sizeof(float);
  const uint64_t user_offset = kV3HeaderBytes;
  const uint64_t item_offset = user_offset + user_bytes;
  const uint64_t tail_offset = item_offset + item_bytes;

  WriteU32(out, kMagic);
  WriteU32(out, kVersionV3);
  WriteU64(out, kf);
  WriteU64(out, d);
  WriteU64(out, users.num_entities());
  WriteU64(out, items.num_entities());
  WriteU32(out, model.mars_options_.learn_radius ? 1 : 0);
  WriteU32(out, model.mars_options_.calibrated ? 1 : 0);
  WriteU64(out, stride);
  WriteU64(out, user_offset);
  WriteU64(out, item_offset);
  WriteU64(out, tail_offset);
  // Zero the reserved bytes up to the aligned payload boundary.
  const std::vector<char> zeros(kV3HeaderBytes - (kCommonHeaderBytes + 32),
                                0);
  out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));

  // The in-memory buffers are already padded to the aligned stride (the
  // padding floats are zero by construction), so each tensor is one bulk
  // write of the exact bytes a FacetStore holds.
  WriteFloats(out, users.EntityBlock(0),
              users.num_entities() * users.entity_stride());
  WriteFloats(out, items.EntityBlock(0),
              items.num_entities() * items.entity_stride());

  WriteFloats(out, model.theta_logits_.data(), model.theta_logits_.size());
  WriteFloats(out, model.radii_.data(), model.radii_.size());
  WriteU64(out, model.margins_.size());
  WriteFloats(out, model.margins_.data(), model.margins_.size());
  return out.good();
}

std::unique_ptr<Mars> LoadMars(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    MARS_LOG(ERROR) << "LoadMars: cannot open " << path;
    return nullptr;
  }
  uint32_t magic = 0, version = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    MARS_LOG(ERROR) << "LoadMars: bad magic in " << path;
    return nullptr;
  }
  if (!ReadU32(in, &version) || version < kOldestLoadableVersion ||
      version > kVersionV3) {
    MARS_LOG(ERROR) << "LoadMars: unsupported version";
    return nullptr;
  }
  SnapshotShape shape;
  uint32_t learn_radius = 0, calibrated = 1;
  if (!ReadU64(in, &shape.kf) || !ReadU64(in, &shape.d) ||
      !ReadU64(in, &shape.n_users) || !ReadU64(in, &shape.n_items) ||
      !ReadU32(in, &learn_radius) || !ReadU32(in, &calibrated)) {
    return nullptr;
  }
  shape.learn_radius = learn_radius != 0;
  shape.calibrated = calibrated != 0;
  // Bound every extent: the per-row facet readers below loop over
  // header-supplied extents, so a wrapped FacetStore size computation on a
  // corrupt/crafted header would otherwise let ReadFloats write past the
  // allocation (the old single bulk read failed cleanly by construction).
  if (!ShapePlausible(shape, "LoadMars")) return nullptr;

  V3Layout layout;
  if (version == 3) {
    if (!ReadU64(in, &layout.row_stride) || !ReadU64(in, &layout.user_offset) ||
        !ReadU64(in, &layout.item_offset) ||
        !ReadU64(in, &layout.tail_offset)) {
      return nullptr;
    }
    if (!V3LayoutValid(shape, layout, "LoadMars")) return nullptr;
  }

  // Require the file to actually hold the tensors the header promises
  // *before* sizing any allocation to header fields: a crafted 80-byte
  // file with a plausible-but-huge shape must fail cleanly here, not
  // throw bad_alloc out of the FacetStore constructor. (Shape bounds
  // above keep every product below within uint64.)
  {
    const uint64_t data_floats = version == 3
                                     ? (shape.n_users + shape.n_items) *
                                           shape.kf * layout.row_stride
                                     : (shape.n_users + shape.n_items) *
                                           shape.kf * shape.d;
    const uint64_t header_bytes =
        version == 3 ? kV3HeaderBytes : kCommonHeaderBytes;
    const uint64_t required = header_bytes +
                              (data_floats + shape.n_users * shape.kf +
                               shape.kf + shape.n_users) *
                                  sizeof(float) +
                              sizeof(uint64_t);
    const std::streampos here = in.tellg();
    in.seekg(0, std::ios::end);
    const uint64_t file_size = static_cast<uint64_t>(in.tellg());
    in.seekg(here);
    if (file_size < required) {
      MARS_LOG(ERROR) << "LoadMars: " << path << " holds " << file_size
                      << " bytes but the header implies >= " << required
                      << " — truncated or corrupt";
      return nullptr;
    }
  }

  auto model = MakeModelForShape(shape);
  model->user_facets_ = FacetStore(shape.n_users, shape.kf, shape.d);
  model->item_facets_ = FacetStore(shape.n_items, shape.kf, shape.d);
  if (version == 3) {
    // The file payload is the in-memory layout (stride validated above):
    // each tensor copy-loads as one bulk read, padding included.
    in.seekg(static_cast<std::streamoff>(layout.user_offset));
    FacetStore& users = model->user_facets_;
    FacetStore& items = model->item_facets_;
    if (!ReadFloats(in, users.EntityBlock(0),
                    users.num_entities() * users.entity_stride())) {
      return nullptr;
    }
    if (!ReadFloats(in, items.EntityBlock(0),
                    items.num_entities() * items.entity_stride())) {
      return nullptr;
    }
  } else if (version == 1) {
    if (!ReadFacetStoreV1(in, &model->user_facets_)) return nullptr;
    if (!ReadFacetStoreV1(in, &model->item_facets_)) return nullptr;
  } else {
    if (!ReadFacetStoreV2(in, &model->user_facets_)) return nullptr;
    if (!ReadFacetStoreV2(in, &model->item_facets_)) return nullptr;
  }
  model->theta_logits_ = Matrix(shape.n_users, shape.kf);
  if (!ReadFloats(in, model->theta_logits_.data(),
                  shape.n_users * shape.kf)) {
    return nullptr;
  }
  model->radii_.assign(shape.kf, 1.0f);
  if (!ReadFloats(in, model->radii_.data(), shape.kf)) return nullptr;
  uint64_t n_margins = 0;
  if (!ReadU64(in, &n_margins) || n_margins != shape.n_users) return nullptr;
  model->margins_.assign(n_margins, 0.0f);
  if (!ReadFloats(in, model->margins_.data(), n_margins)) return nullptr;
  return model;
}

std::unique_ptr<Mars> LoadMarsMapped(const std::string& path) {
  std::shared_ptr<MappedFile> file = MappedFile::Open(path);
  if (file == nullptr) return nullptr;
  if (file->size() < kV3HeaderBytes) {
    MARS_LOG(ERROR) << "LoadMarsMapped: " << path
                    << " is too small to hold a v3 header";
    return nullptr;
  }
  const uint8_t* bytes = file->data();
  auto read_u32 = [bytes](size_t off) {
    uint32_t v;
    std::memcpy(&v, bytes + off, sizeof(v));
    return v;
  };
  auto read_u64 = [bytes](size_t off) {
    uint64_t v;
    std::memcpy(&v, bytes + off, sizeof(v));
    return v;
  };
  if (read_u32(0) != kMagic) {
    MARS_LOG(ERROR) << "LoadMarsMapped: bad magic in " << path;
    return nullptr;
  }
  const uint32_t version = read_u32(4);
  if (version != kVersionV3) {
    MARS_LOG(ERROR) << "LoadMarsMapped: " << path << " is format v"
                    << version << "; only v3 files are mmap-servable "
                    << "(copy-load with LoadMars, or re-save with "
                    << "SaveMarsV3)";
    return nullptr;
  }
  SnapshotShape shape;
  shape.kf = read_u64(8);
  shape.d = read_u64(16);
  shape.n_users = read_u64(24);
  shape.n_items = read_u64(32);
  shape.learn_radius = read_u32(40) != 0;
  shape.calibrated = read_u32(44) != 0;
  if (!ShapePlausible(shape, "LoadMarsMapped")) return nullptr;
  V3Layout layout;
  layout.row_stride = read_u64(48);
  layout.user_offset = read_u64(56);
  layout.item_offset = read_u64(64);
  layout.tail_offset = read_u64(72);
  if (!V3LayoutValid(shape, layout, "LoadMarsMapped")) return nullptr;

  // The tensor regions: validated (alignment, stride, in-bounds) and
  // wrapped without copying.
  auto mapped_users = MappedFacetStore::Create(
      file, layout.user_offset, shape.n_users, shape.kf, shape.d,
      layout.row_stride);
  auto mapped_items = MappedFacetStore::Create(
      file, layout.item_offset, shape.n_items, shape.kf, shape.d,
      layout.row_stride);
  if (mapped_users == nullptr || mapped_items == nullptr) return nullptr;

  // The small tail (Θ logits, radii, margin vector) is materialized —
  // together a few KB against the MBs of facet tensors.
  const uint64_t theta_floats = shape.n_users * shape.kf;
  uint64_t off = layout.tail_offset;
  auto take = [&](void* dst, uint64_t n_bytes) {
    if (off > file->size() || n_bytes > file->size() - off) return false;
    std::memcpy(dst, bytes + off, n_bytes);
    off += n_bytes;
    return true;
  };
  auto model = MakeModelForShape(shape);
  model->theta_logits_ = Matrix(shape.n_users, shape.kf);
  model->radii_.assign(shape.kf, 1.0f);
  uint64_t n_margins = 0;
  if (!take(model->theta_logits_.data(), theta_floats * sizeof(float)) ||
      !take(model->radii_.data(), shape.kf * sizeof(float)) ||
      !take(&n_margins, sizeof(n_margins)) || n_margins != shape.n_users) {
    MARS_LOG(ERROR) << "LoadMarsMapped: truncated or corrupt tail in "
                    << path;
    return nullptr;
  }
  model->margins_.assign(n_margins, 0.0f);
  if (!take(model->margins_.data(), n_margins * sizeof(float))) {
    MARS_LOG(ERROR) << "LoadMarsMapped: truncated margin vector in " << path;
    return nullptr;
  }

  // Point the model's stores straight at the mapping; the shared MappedFile
  // keeps the pages alive for the model's lifetime.
  model->user_facets_ = mapped_users->store();
  model->item_facets_ = mapped_items->store();
  model->storage_keepalive_ = std::move(file);
  return model;
}

}  // namespace mars
