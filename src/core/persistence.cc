#include "core/persistence.h"

#include <cstdint>
#include <fstream>
#include <vector>

#include "common/logging.h"

namespace mars {
namespace {

constexpr uint32_t kMagic = 0x4D415253;  // "MARS"
// v1: facet-major tensors ([facet][entity][dim]), the std::vector<Matrix>
//     era. Still loadable.
// v2: entity-major tensors ([entity][facet][dim]) matching FacetStore;
//     padding is never written, so files are layout- and bit-compatible
//     with v1 up to the tensor ordering.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kOldestLoadableVersion = 1;

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteFloats(std::ostream& out, const float* data, size_t n) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(n * sizeof(float)));
}

bool ReadU32(std::istream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool ReadU64(std::istream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool ReadFloats(std::istream& in, float* data, size_t n) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(float)));
  return in.good();
}

/// Writes a FacetStore entity-major with the row padding stripped. When the
/// store is unpadded (dim is a cache-line multiple) the whole tensor is one
/// dense bulk write instead of entities×facets small ones.
void WriteFacetStore(std::ostream& out, const FacetStore& store) {
  if (store.row_stride() == store.dim()) {
    WriteFloats(out, store.EntityBlock(0),
                store.num_entities() * store.entity_stride());
    return;
  }
  for (size_t e = 0; e < store.num_entities(); ++e) {
    for (size_t k = 0; k < store.num_facets(); ++k) {
      WriteFloats(out, store.Row(e, k), store.dim());
    }
  }
}

/// Reads a tensor written entity-major (v2) into `store`.
bool ReadFacetStoreV2(std::istream& in, FacetStore* store) {
  if (store->row_stride() == store->dim()) {
    return ReadFloats(in, store->EntityBlock(0),
                      store->num_entities() * store->entity_stride());
  }
  for (size_t e = 0; e < store->num_entities(); ++e) {
    for (size_t k = 0; k < store->num_facets(); ++k) {
      if (!ReadFloats(in, store->Row(e, k), store->dim())) return false;
    }
  }
  return true;
}

/// Reads a tensor written facet-major (v1, K stacked N×D matrices),
/// transposing into the entity-major store.
bool ReadFacetStoreV1(std::istream& in, FacetStore* store) {
  for (size_t k = 0; k < store->num_facets(); ++k) {
    for (size_t e = 0; e < store->num_entities(); ++e) {
      if (!ReadFloats(in, store->Row(e, k), store->dim())) return false;
    }
  }
  return true;
}

}  // namespace

bool SaveMars(const Mars& model, const std::string& path) {
  if (model.user_facets_.empty()) {
    MARS_LOG(ERROR) << "SaveMars: model has not been fit";
    return false;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return false;

  const size_t kf = model.config_.num_facets;
  const size_t d = model.config_.dim;
  const size_t n_users = model.user_facets_.num_entities();
  const size_t n_items = model.item_facets_.num_entities();

  WriteU32(out, kMagic);
  WriteU32(out, kVersion);
  WriteU64(out, kf);
  WriteU64(out, d);
  WriteU64(out, n_users);
  WriteU64(out, n_items);
  WriteU32(out, model.mars_options_.learn_radius ? 1 : 0);
  WriteU32(out, model.mars_options_.calibrated ? 1 : 0);

  WriteFacetStore(out, model.user_facets_);
  WriteFacetStore(out, model.item_facets_);
  WriteFloats(out, model.theta_logits_.data(), model.theta_logits_.size());
  WriteFloats(out, model.radii_.data(), model.radii_.size());
  WriteU64(out, model.margins_.size());
  WriteFloats(out, model.margins_.data(), model.margins_.size());
  return out.good();
}

std::unique_ptr<Mars> LoadMars(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    MARS_LOG(ERROR) << "LoadMars: cannot open " << path;
    return nullptr;
  }
  uint32_t magic = 0, version = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    MARS_LOG(ERROR) << "LoadMars: bad magic in " << path;
    return nullptr;
  }
  if (!ReadU32(in, &version) || version < kOldestLoadableVersion ||
      version > kVersion) {
    MARS_LOG(ERROR) << "LoadMars: unsupported version";
    return nullptr;
  }
  uint64_t kf = 0, d = 0, n_users = 0, n_items = 0;
  uint32_t learn_radius = 0, calibrated = 1;
  if (!ReadU64(in, &kf) || !ReadU64(in, &d) || !ReadU64(in, &n_users) ||
      !ReadU64(in, &n_items) || !ReadU32(in, &learn_radius) ||
      !ReadU32(in, &calibrated)) {
    return nullptr;
  }
  if (kf == 0 || kf > 64 || d < 2 || d > 65536) {
    MARS_LOG(ERROR) << "LoadMars: implausible header";
    return nullptr;
  }
  // Bound the entity counts too: the per-row facet readers below loop over
  // header-supplied extents, so a wrapped FacetStore size computation on a
  // corrupt/crafted header would otherwise let ReadFloats write past the
  // allocation (the old single bulk read failed cleanly by construction).
  constexpr uint64_t kMaxEntities = 1ull << 31;
  if (n_users == 0 || n_users > kMaxEntities || n_items == 0 ||
      n_items > kMaxEntities) {
    MARS_LOG(ERROR) << "LoadMars: implausible header";
    return nullptr;
  }

  MultiFacetConfig cfg;
  cfg.num_facets = kf;
  cfg.dim = d;
  MarsOptions mopts;
  mopts.learn_radius = learn_radius != 0;
  mopts.calibrated = calibrated != 0;
  auto model = std::make_unique<Mars>(cfg, mopts);

  model->user_facets_ = FacetStore(n_users, kf, d);
  model->item_facets_ = FacetStore(n_items, kf, d);
  if (version == 1) {
    if (!ReadFacetStoreV1(in, &model->user_facets_)) return nullptr;
    if (!ReadFacetStoreV1(in, &model->item_facets_)) return nullptr;
  } else {
    if (!ReadFacetStoreV2(in, &model->user_facets_)) return nullptr;
    if (!ReadFacetStoreV2(in, &model->item_facets_)) return nullptr;
  }
  model->theta_logits_ = Matrix(n_users, kf);
  if (!ReadFloats(in, model->theta_logits_.data(), n_users * kf)) {
    return nullptr;
  }
  model->radii_.assign(kf, 1.0f);
  if (!ReadFloats(in, model->radii_.data(), kf)) return nullptr;
  uint64_t n_margins = 0;
  if (!ReadU64(in, &n_margins) || n_margins != n_users) return nullptr;
  model->margins_.assign(n_margins, 0.0f);
  if (!ReadFloats(in, model->margins_.data(), n_margins)) return nullptr;
  return model;
}

}  // namespace mars
