#include "core/persistence.h"

#include <cstdint>
#include <fstream>
#include <vector>

#include "common/logging.h"

namespace mars {
namespace {

constexpr uint32_t kMagic = 0x4D415253;  // "MARS"
constexpr uint32_t kVersion = 1;

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteFloats(std::ostream& out, const float* data, size_t n) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(n * sizeof(float)));
}

bool ReadU32(std::istream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool ReadU64(std::istream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool ReadFloats(std::istream& in, float* data, size_t n) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(float)));
  return in.good();
}

}  // namespace

bool SaveMars(const Mars& model, const std::string& path) {
  if (model.user_facets_.empty()) {
    MARS_LOG(ERROR) << "SaveMars: model has not been fit";
    return false;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return false;

  const size_t kf = model.config_.num_facets;
  const size_t d = model.config_.dim;
  const size_t n_users = model.user_facets_[0].rows();
  const size_t n_items = model.item_facets_[0].rows();

  WriteU32(out, kMagic);
  WriteU32(out, kVersion);
  WriteU64(out, kf);
  WriteU64(out, d);
  WriteU64(out, n_users);
  WriteU64(out, n_items);
  WriteU32(out, model.mars_options_.learn_radius ? 1 : 0);
  WriteU32(out, model.mars_options_.calibrated ? 1 : 0);

  for (size_t k = 0; k < kf; ++k) {
    WriteFloats(out, model.user_facets_[k].data(),
                model.user_facets_[k].size());
  }
  for (size_t k = 0; k < kf; ++k) {
    WriteFloats(out, model.item_facets_[k].data(),
                model.item_facets_[k].size());
  }
  WriteFloats(out, model.theta_logits_.data(), model.theta_logits_.size());
  WriteFloats(out, model.radii_.data(), model.radii_.size());
  WriteU64(out, model.margins_.size());
  WriteFloats(out, model.margins_.data(), model.margins_.size());
  return out.good();
}

std::unique_ptr<Mars> LoadMars(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    MARS_LOG(ERROR) << "LoadMars: cannot open " << path;
    return nullptr;
  }
  uint32_t magic = 0, version = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    MARS_LOG(ERROR) << "LoadMars: bad magic in " << path;
    return nullptr;
  }
  if (!ReadU32(in, &version) || version != kVersion) {
    MARS_LOG(ERROR) << "LoadMars: unsupported version";
    return nullptr;
  }
  uint64_t kf = 0, d = 0, n_users = 0, n_items = 0;
  uint32_t learn_radius = 0, calibrated = 1;
  if (!ReadU64(in, &kf) || !ReadU64(in, &d) || !ReadU64(in, &n_users) ||
      !ReadU64(in, &n_items) || !ReadU32(in, &learn_radius) ||
      !ReadU32(in, &calibrated)) {
    return nullptr;
  }
  if (kf == 0 || kf > 64 || d < 2 || d > 65536) {
    MARS_LOG(ERROR) << "LoadMars: implausible header";
    return nullptr;
  }

  MultiFacetConfig cfg;
  cfg.num_facets = kf;
  cfg.dim = d;
  MarsOptions mopts;
  mopts.learn_radius = learn_radius != 0;
  mopts.calibrated = calibrated != 0;
  auto model = std::make_unique<Mars>(cfg, mopts);

  model->user_facets_.assign(kf, Matrix(n_users, d));
  model->item_facets_.assign(kf, Matrix(n_items, d));
  for (size_t k = 0; k < kf; ++k) {
    if (!ReadFloats(in, model->user_facets_[k].data(), n_users * d)) {
      return nullptr;
    }
  }
  for (size_t k = 0; k < kf; ++k) {
    if (!ReadFloats(in, model->item_facets_[k].data(), n_items * d)) {
      return nullptr;
    }
  }
  model->theta_logits_ = Matrix(n_users, kf);
  if (!ReadFloats(in, model->theta_logits_.data(), n_users * kf)) {
    return nullptr;
  }
  model->radii_.assign(kf, 1.0f);
  if (!ReadFloats(in, model->radii_.data(), kf)) return nullptr;
  uint64_t n_margins = 0;
  if (!ReadU64(in, &n_margins) || n_margins != n_users) return nullptr;
  model->margins_.assign(n_margins, 0.0f);
  if (!ReadFloats(in, model->margins_.data(), n_margins)) return nullptr;
  return model;
}

}  // namespace mars
