// MARS — MAR with Spherical optimization (paper Sec. IV).
//
// All facet-specific user/item embeddings are constrained to lie exactly
// on the unit sphere (Eq. 17/19) and similarity becomes cosine (Eq. 13-14):
//
//   g_s(u, v) = Σ_k θ_u^k cos(u^k, v^k)
//
// with the spherical push/pull losses (Eq. 15-16), the spherical
// facet-separating loss (Eq. 12, sign corrected per DESIGN.md §2.1), and
// the *calibrated Riemannian SGD* update of Eq. 21:
//
//   x ← R_x( -η (1 + xᵀ∇f/||∇f||) (I - xxᵀ) ∇f )
//
// Parameterization: per Eq. 19 the optimization variables Ω are the facet
// embeddings themselves; they are free spherical parameters *initialized*
// from the universal-embedding × projection factorization of Eq. 1-2 (see
// DESIGN.md §2.2), with facet weights Θ seeded by K-factor NMF.
//
// Storage layout: all facet embeddings live in two contiguous FacetStore
// buffers ([entity][facet][dim] with cache-line-aligned rows, see
// common/facet_store.h). A sampled triplet (u, v⁺, v⁻) therefore touches
// exactly three contiguous blocks per step — forward pass, gradients, and
// the fused Riemannian updates (opt/sphere.h) all stream over them — and
// batch scoring goes through the block kernels in common/kernels.h.
#ifndef MARS_CORE_MARS_H_
#define MARS_CORE_MARS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/facet_store.h"
#include "common/matrix.h"
#include "core/facet_config.h"
#include "models/recommender.h"

namespace mars {

class Mars;

/// Binary persistence (core/persistence.h); friends of Mars.
bool SaveMars(const Mars& model, const std::string& path);
bool SaveMarsV3(const Mars& model, const std::string& path);
std::unique_ptr<Mars> LoadMars(const std::string& path);
std::unique_ptr<Mars> LoadMarsMapped(const std::string& path);

/// MARS-specific options on top of the shared multi-facet config.
struct MarsOptions {
  /// Use the calibration multiplier of Eq. 21; false = plain Riemannian
  /// SGD (Eq. 20 with retraction), the ablation baseline.
  bool calibrated = true;
  /// Sign convention of the spherical facet-separating loss.
  FacetLossSign facet_sign = FacetLossSign::kSeparate;
  /// Learn a per-facet sphere radius r_k (the paper's future-work item:
  /// "dynamically learn the radiuses of different facet-specific spherical
  /// embedding spaces"). Similarity becomes Σ_k θ_u^k · r_k · cos(u^k,v^k);
  /// embeddings stay on unit spheres and r_k ≥ kMinRadius scales each
  /// facet's contribution, letting the model modulate facet importance
  /// globally (on top of the per-user Θ).
  bool learn_radius = false;
};

/// MARS recommender.
class Mars : public Recommender {
 public:
  explicit Mars(MultiFacetConfig config, MarsOptions mars_options = {});

  void Fit(const ImplicitDataset& train, const TrainOptions& options) override;
  float Score(UserId u, ItemId v) const override;
  void ScoreItems(UserId u, std::span<const ItemId> items,
                  float* out) const override;
  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      float* out) const override;
  void ScoreItemRangeMulti(std::span<const UserId> users, ItemId begin,
                           ItemId end, float* const* out) const override;
  std::string name() const override { return "MARS"; }

  // ANN capability: concatenated-facet dot geometry. The item vector is
  // the K facet rows concatenated (K·dim floats, padding stripped); the
  // query concatenates θ_u^k·r_k·u^k, so the single dot recovers
  // Σ_k θ_u^k r_k <u^k, v^k> — the spherical score (cos == dot on unit
  // rows) up to floating-point reassociation.
  IndexGeometry index_geometry() const override { return IndexGeometry::kDot; }
  size_t index_dim() const override {
    return config_.num_facets * config_.dim;
  }
  void CopyIndexVectors(ItemId begin, ItemId end, float* out) const override;
  void WriteIndexQuery(UserId u, float* out) const override;

  const MultiFacetConfig& config() const { return config_; }
  const MarsOptions& mars_options() const { return mars_options_; }

  /// Facet-specific spherical embedding of user `u` in facet `k`.
  std::vector<float> UserFacetEmbedding(UserId u, size_t k) const;
  /// Facet-specific spherical embedding of item `v` in facet `k`.
  std::vector<float> ItemFacetEmbedding(ItemId v, size_t k) const;
  /// Softmax facet weights Θ_u.
  std::vector<float> FacetWeights(UserId u) const;
  /// Adaptive margin γ_u used during training.
  float MarginOf(UserId u) const;
  /// Learned facet-sphere radii (all 1 unless learn_radius is set).
  const std::vector<float>& FacetRadii() const { return radii_; }

  /// True when the facet tensors alias an immutable mmap'd snapshot
  /// (LoadMarsMapped): the model is a read-only serving view — attaching a
  /// trainer to it (Fit) aborts.
  bool mapped() const { return user_facets_.borrowed(); }

  /// Owned frozen copy of the current weights — the unit a serving epoch
  /// publishes (TopKServer::PublishEpoch / common/snapshot_handle.h).
  /// Call only while training is quiesced: between Fit calls, or from a
  /// TrainOptions::epoch_callback at an epoch boundary (the same contract
  /// as the overlapped-eval snapshot). With a non-null idle `pool` the
  /// facet stores are copied one shard per worker.
  std::unique_ptr<Mars> ServingSnapshot(ThreadPool* pool = nullptr) const;

 private:
  friend bool SaveMars(const Mars& model, const std::string& path);
  friend bool SaveMarsV3(const Mars& model, const std::string& path);
  friend std::unique_ptr<Mars> LoadMars(const std::string& path);
  friend std::unique_ptr<Mars> LoadMarsMapped(const std::string& path);

  MultiFacetConfig config_;
  MarsOptions mars_options_;

  FacetStore user_facets_;  // N×K×D, unit rows
  FacetStore item_facets_;  // M×K×D, unit rows
  Matrix theta_logits_;     // N×K
  std::vector<float> radii_;         // K sphere radii (learn_radius)
  std::vector<float> margins_;
  // Backing storage of mapped (borrowed) facet tensors — the MappedFile of
  // LoadMarsMapped. Null for ordinary owned models.
  std::shared_ptr<const void> storage_keepalive_;
};

}  // namespace mars

#endif  // MARS_CORE_MARS_H_
