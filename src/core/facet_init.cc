#include "core/facet_init.h"

#include <cmath>

#include "models/nmf.h"

namespace mars {

Matrix InitThetaLogitsFromNmf(const ImplicitDataset& train, size_t num_facets,
                              size_t iterations, uint64_t seed,
                              double blend) {
  const Matrix w = NmfUserFactors(train, num_facets, iterations, seed);
  Matrix logits(train.num_users(), num_facets);
  constexpr float kEps = 1e-6f;
  const float uniform = 1.0f / static_cast<float>(num_facets);
  const float rho = static_cast<float>(blend);
  for (UserId u = 0; u < train.num_users(); ++u) {
    const float* row = w.Row(u);
    float total = 0.0f;
    for (size_t k = 0; k < num_facets; ++k) total += row[k];
    float* out = logits.Row(u);
    if (total <= kEps) {
      for (size_t k = 0; k < num_facets; ++k) out[k] = 0.0f;
      continue;
    }
    for (size_t k = 0; k < num_facets; ++k) {
      const float mixed = (1.0f - rho) * (row[k] / total) + rho * uniform;
      out[k] = std::log(mixed + kEps);
    }
  }
  return logits;
}

Matrix InitThetaLogitsUniform(size_t num_users, size_t num_facets) {
  return Matrix(num_users, num_facets, 0.0f);
}

}  // namespace mars
