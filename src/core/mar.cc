#include "core/mar.h"

#include <cmath>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/kernels.h"
#include "common/rng.h"
#include "common/vec.h"
#include "core/adaptive_margin.h"
#include "core/facet_init.h"
#include "models/embedding.h"
#include "models/train_loop.h"
#include "opt/sgd.h"
#include "sampling/triplet_sampler.h"
#include "serve/write_tracker.h"
#include "train/parallel_trainer.h"
#include "train/snapshot.h"

namespace mars {

namespace {

/// Backward through the norm clip: given gradient `g` w.r.t. the clipped
/// output, writes the gradient w.r.t. the pre-clip vector into `out`.
/// `clipped` is the post-clip vector and `scale` the clip factor
/// (1 when the pre-clip norm was ≤ 1, else 1/norm).
void ClipBackward(const float* clipped, float scale, const float* g,
                  float* out, size_t d) {
  if (scale == 1.0f) {
    Copy(g, out, d);
    return;
  }
  // d(z/||z||)/dz = (I - ẑẑᵀ)/||z||, with ẑ = clipped (unit norm here).
  const float radial = Dot(clipped, g, d);
  for (size_t i = 0; i < d; ++i) {
    out[i] = scale * (g[i] - radial * clipped[i]);
  }
}

}  // namespace

Mar::Mar(MultiFacetConfig config, FacetParam param_mode)
    : config_(config), param_mode_(param_mode) {
  MARS_CHECK(config_.num_facets >= 1);
  MARS_CHECK(config_.dim >= 1);
}

float Mar::ProjectFacet(const Matrix& projection, const float* x,
                        float* clipped) const {
  GemvTransposed(projection, x, clipped);
  const float norm = Norm(clipped, config_.dim);
  if (norm <= 1.0f) return 1.0f;
  const float scale = 1.0f / norm;
  Scale(scale, clipped, config_.dim);
  return scale;
}

void Mar::Fit(const ImplicitDataset& train, const TrainOptions& options) {
  const size_t d = config_.dim;
  const size_t kf = config_.num_facets;
  Rng rng(options.seed);

  if (param_mode_ == FacetParam::kProjected) {
    user_universal_ = Matrix(train.num_users(), d);
    item_universal_ = Matrix(train.num_items(), d);
    InitEmbeddingInBall(&user_universal_, &rng);
    InitEmbeddingInBall(&item_universal_, &rng);
    phi_.assign(kf, Matrix(d, d));
    psi_.assign(kf, Matrix(d, d));
    for (size_t k = 0; k < kf; ++k) {
      phi_[k].FillIdentityPlusNoise(&rng, 0.1f);
      psi_[k].FillIdentityPlusNoise(&rng, 0.1f);
    }
  } else {
    user_facets_ = FacetStore(train.num_users(), kf, d);
    item_facets_ = FacetStore(train.num_items(), kf, d);
    InitFacetStoreInBall(&user_facets_, &rng);
    InitFacetStoreInBall(&item_facets_, &rng);
  }

  theta_logits_ =
      config_.theta_init_nmf
          ? InitThetaLogitsFromNmf(train, kf, config_.theta_nmf_iterations,
                                   options.seed + 17)
          : InitThetaLogitsUniform(train.num_users(), kf);

  margins_ = config_.adaptive_margin
                 ? ComputeAdaptiveMargins(train)
                 : std::vector<float>(train.num_users(),
                                      static_cast<float>(config_.fixed_margin));

  const TripletSampler sampler(train,
                               config_.biased_sampling
                                   ? TripletUserMode::kFrequencyBiased
                                   : TripletUserMode::kUniformInteraction,
                               config_.sampling_beta);
  const size_t steps = ResolveStepsPerEpoch(options, train);
  const float lambda_pull = static_cast<float>(config_.lambda_pull);
  const float lambda_facet = static_cast<float>(config_.lambda_facet);
  const float alpha = static_cast<float>(config_.alpha);
  const float clip = static_cast<float>(config_.grad_clip);

  const float lr_comp =
      config_.scale_lr_by_facets ? static_cast<float>(kf) : 1.0f;

  // Steps touch only the sampled rows (kFree) — Hogwild workers update the
  // shared tables lock-free with private scratch, and row collisions are
  // rare. kProjected is different: every step of every worker reads AND
  // writes all K global d×d projection matrices, so contention there is
  // per-step certain, not rare — a worker can read a matrix mid-update
  // (torn rows) and compute gradients from an inconsistent projection.
  // Training still proceeds as approximate SGD, but multi-thread quality
  // for kProjected is unvalidated; prefer num_threads=1 for that mode
  // (see ROADMAP "shard/ownership model").
  ParallelTrainer trainer(options, &rng);
  WriteTracker* const tracker = options.write_tracker;
  struct Scratch {
    std::vector<float> uf, vpf, vqf;
    std::vector<float> u_scale, vp_scale, vq_scale;
    std::vector<float> gu, gvp, gvq;
    std::vector<float> theta, coeff, b;
    std::vector<float> gz, du, dv;
  };
  std::vector<Scratch> scratch(trainer.num_workers());
  for (Scratch& sc : scratch) {
    sc.uf.resize(kf * d);
    sc.vpf.resize(kf * d);
    sc.vqf.resize(kf * d);
    sc.u_scale.resize(kf);
    sc.vp_scale.resize(kf);
    sc.vq_scale.resize(kf);
    sc.gu.resize(kf * d);
    sc.gvp.resize(kf * d);
    sc.gvq.resize(kf * d);
    sc.theta.resize(kf);
    sc.coeff.resize(kf);
    sc.b.resize(kf);
    sc.gz.resize(d);
    sc.du.resize(d);
    sc.dv.resize(d);
  }

  // Per-epoch learning rates, set before the steps fan out.
  float lr = 0.0f;
  float theta_lr = 0.0f;

  const auto step = [&](size_t worker, Rng& wrng) {
    Scratch& sc = scratch[worker];
    std::vector<float>& uf = sc.uf;
    std::vector<float>& vpf = sc.vpf;
    std::vector<float>& vqf = sc.vqf;
    std::vector<float>& u_scale = sc.u_scale;
    std::vector<float>& vp_scale = sc.vp_scale;
    std::vector<float>& vq_scale = sc.vq_scale;
    std::vector<float>& gu = sc.gu;
    std::vector<float>& gvp = sc.gvp;
    std::vector<float>& gvq = sc.gvq;
    std::vector<float>& theta = sc.theta;
    std::vector<float>& coeff = sc.coeff;
    std::vector<float>& b = sc.b;

    Triplet t;
    if (!sampler.Sample(&wrng, &t)) return;
    if (tracker != nullptr) {
      if (param_mode_ == FacetParam::kProjected) {
        // Every step writes the shared projection matrices, through which
        // every user and item is scored.
        tracker->MarkAllUsers();
        tracker->MarkAllItems();
      } else {
        tracker->MarkUser(t.user);
        tracker->MarkItem(t.positive);
        tracker->MarkItem(t.negative);
      }
    }

    // --- Forward: facet embeddings for u, vp, vq ----------------------
    if (param_mode_ == FacetParam::kProjected) {
      for (size_t k = 0; k < kf; ++k) {
        u_scale[k] = ProjectFacet(phi_[k], user_universal_.Row(t.user),
                                  &uf[k * d]);
        vp_scale[k] = ProjectFacet(psi_[k], item_universal_.Row(t.positive),
                                   &vpf[k * d]);
        vq_scale[k] = ProjectFacet(psi_[k], item_universal_.Row(t.negative),
                                   &vqf[k * d]);
      }
    } else {
      // Each entity's K facet rows are one contiguous block.
      user_facets_.CopyEntityTo(t.user, uf.data());
      item_facets_.CopyEntityTo(t.positive, vpf.data());
      item_facets_.CopyEntityTo(t.negative, vqf.data());
    }
    Softmax(theta_logits_.Row(t.user), theta.data(), kf);

    // Facet distances.
    float push_val = margins_[t.user];
    std::vector<float>& a = coeff;  // reuse: holds a_k, then coefficients
    for (size_t k = 0; k < kf; ++k) {
      a[k] = SquaredDistance(&uf[k * d], &vpf[k * d], d);
      b[k] = SquaredDistance(&uf[k * d], &vqf[k * d], d);
      push_val += theta[k] * (a[k] - b[k]);
    }
    const bool active = push_val > 0.0f;

    // --- Facet-space gradients ----------------------------------------
    Fill(0.0f, gu.data(), kf * d);
    Fill(0.0f, gvp.data(), kf * d);
    Fill(0.0f, gvq.data(), kf * d);
    for (size_t k = 0; k < kf; ++k) {
      const float* ufk = &uf[k * d];
      const float* vpk = &vpf[k * d];
      const float* vqk = &vqf[k * d];
      float* guk = &gu[k * d];
      float* gvpk = &gvp[k * d];
      float* gvqk = &gvq[k * d];
      const float w_pull = lambda_pull * theta[k];
      const float w_push = active ? theta[k] : 0.0f;
      for (size_t i = 0; i < d; ++i) {
        const float dp = ufk[i] - vpk[i];
        const float dq = ufk[i] - vqk[i];
        // push: θ(2dp - 2dq); pull: λθ·2dp
        guk[i] += 2.0f * (w_push * (dp - dq) + w_pull * dp);
        gvpk[i] += -2.0f * (w_push + w_pull) * dp;
        gvqk[i] += 2.0f * w_push * dq;
      }
    }
    // Facet-separating loss over facet pairs (user + positive item).
    if (lambda_facet > 0.0f && kf > 1) {
      for (size_t i = 0; i < kf; ++i) {
        for (size_t j = i + 1; j < kf; ++j) {
          const float s_ij =
              SquaredDistance(&uf[i * d], &uf[j * d], d) +
              SquaredDistance(&vpf[i * d], &vpf[j * d], d);
          // dL/ds = -σ(-α s); gradient increases the separation.
          const float w =
              -lambda_facet * static_cast<float>(Sigmoid(-alpha * s_ij));
          for (size_t x = 0; x < d; ++x) {
            const float du_x = 2.0f * (uf[i * d + x] - uf[j * d + x]);
            gu[i * d + x] += w * du_x;
            gu[j * d + x] -= w * du_x;
            const float dv_x = 2.0f * (vpf[i * d + x] - vpf[j * d + x]);
            gvp[i * d + x] += w * dv_x;
            gvp[j * d + x] -= w * dv_x;
          }
        }
      }
    }

    // --- Facet-weight (Θ) update ---------------------------------------
    // Coefficient of θ_k in the loss: push hinge + pull.
    float mean_c = 0.0f;
    for (size_t k = 0; k < kf; ++k) {
      coeff[k] = (active ? (a[k] - b[k]) : 0.0f) + lambda_pull * a[k];
      mean_c += theta[k] * coeff[k];
    }
    float* logits = theta_logits_.Row(t.user);
    for (size_t k = 0; k < kf; ++k) {
      logits[k] -= theta_lr * theta[k] * (coeff[k] - mean_c);
    }

    // --- Apply parameter updates ---------------------------------------
    if (param_mode_ == FacetParam::kFree) {
      for (size_t k = 0; k < kf; ++k) {
        if (clip > 0.0f) {
          ClipGradient(&gu[k * d], d, clip);
          ClipGradient(&gvp[k * d], d, clip);
          ClipGradient(&gvq[k * d], d, clip);
        }
        SgdStepBallProjected(user_facets_.Row(t.user, k), &gu[k * d], lr,
                             d);
        SgdStepBallProjected(item_facets_.Row(t.positive, k), &gvp[k * d],
                             lr, d);
        SgdStepBallProjected(item_facets_.Row(t.negative, k), &gvq[k * d],
                             lr, d);
      }
      return;
    }
    // kProjected: backprop through the clip into universal embeddings and
    // projection matrices.
    const float proj_lr =
        lr * static_cast<float>(config_.projection_lr_scale);
    auto backprop_entity = [&](Matrix& universal, std::vector<Matrix>& proj,
                               UserId row, const std::vector<float>& facets,
                               const std::vector<float>& scales,
                               std::vector<float>& grads) {
      Fill(0.0f, sc.du.data(), d);
      float* x = universal.Row(row);
      for (size_t k = 0; k < kf; ++k) {
        if (clip > 0.0f) ClipGradient(&grads[k * d], d, clip);
        ClipBackward(&facets[k * d], scales[k], &grads[k * d], sc.gz.data(),
                     d);
        // ∂L/∂x += Φ_k gz ; ∂L/∂Φ_k = x gzᵀ (applied directly as update).
        Gemv(proj[k], sc.gz.data(), sc.dv.data());
        Axpy(1.0f, sc.dv.data(), sc.du.data(), d);
        AddOuterProduct(-proj_lr, x, sc.gz.data(), &proj[k]);
      }
      SgdStep(x, sc.du.data(), lr, d);
    };
    backprop_entity(user_universal_, phi_, t.user, uf, u_scale, gu);
    backprop_entity(item_universal_, psi_, t.positive, vpf, vp_scale, gvp);
    backprop_entity(item_universal_, psi_, t.negative, vqf, vq_scale, gvq);
  };

  // Overlapped-eval snapshot (double-buffered; facet stores copied by
  // shard on the idle trainer pool).
  std::unique_ptr<Mar> snap;
  const auto snapshot = [&]() -> const ItemScorer* {
    if (snap == nullptr) {
      snap = std::make_unique<Mar>(config_, param_mode_);
    }
    if (param_mode_ == FacetParam::kFree) {
      SnapshotFacetStore(user_facets_, &snap->user_facets_, trainer.pool());
      SnapshotFacetStore(item_facets_, &snap->item_facets_, trainer.pool());
    } else {
      snap->user_universal_ = user_universal_;
      snap->item_universal_ = item_universal_;
      snap->phi_ = phi_;
      snap->psi_ = psi_;
    }
    snap->theta_logits_ = theta_logits_;
    return snap.get();
  };

  RunTrainingLoop(
      options, *this, name(),
      [&](size_t, double lr_d) {
        lr = static_cast<float>(lr_d) * lr_comp;
        theta_lr = static_cast<float>(lr_d) *
                   static_cast<float>(config_.theta_lr_scale);
        trainer.RunEpoch(steps, step);
      },
      snapshot);
}

float Mar::Score(UserId u, ItemId v) const {
  const size_t d = config_.dim;
  const size_t kf = config_.num_facets;
  std::vector<float> theta(kf);
  Softmax(theta_logits_.Row(u), theta.data(), kf);
  if (param_mode_ == FacetParam::kFree) {
    return -WeightedFacetSquaredDistance(
        user_facets_.EntityBlock(u), user_facets_.row_stride(),
        item_facets_.EntityBlock(v), item_facets_.row_stride(), theta.data(),
        kf, d);
  }
  std::vector<float> ue(d), ve(d);
  float score = 0.0f;
  for (size_t k = 0; k < kf; ++k) {
    ProjectFacet(phi_[k], user_universal_.Row(u), ue.data());
    ProjectFacet(psi_[k], item_universal_.Row(v), ve.data());
    score -= theta[k] * SquaredDistance(ue.data(), ve.data(), d);
  }
  return score;
}

void Mar::ScoreItems(UserId u, std::span<const ItemId> items,
                     float* out) const {
  const size_t d = config_.dim;
  const size_t kf = config_.num_facets;
  std::vector<float> theta(kf);
  Softmax(theta_logits_.Row(u), theta.data(), kf);
  if (param_mode_ == FacetParam::kFree) {
    // Batched path: one fused pass over both contiguous entity blocks per
    // candidate.
    const float* ublock = user_facets_.EntityBlock(u);
    const size_t us = user_facets_.row_stride();
    const size_t vs = item_facets_.row_stride();
    for (size_t idx = 0; idx < items.size(); ++idx) {
      out[idx] = -WeightedFacetSquaredDistance(
          ublock, us, item_facets_.EntityBlock(items[idx]), vs, theta.data(),
          kf, d);
    }
    return;
  }
  // Hoist user facet projections out of the item loop.
  std::vector<float> ufacets(kf * d);
  for (size_t k = 0; k < kf; ++k) {
    ProjectFacet(phi_[k], user_universal_.Row(u), &ufacets[k * d]);
  }
  std::vector<float> ve(d);
  for (size_t idx = 0; idx < items.size(); ++idx) {
    const ItemId v = items[idx];
    float score = 0.0f;
    for (size_t k = 0; k < kf; ++k) {
      ProjectFacet(psi_[k], item_universal_.Row(v), ve.data());
      score -= theta[k] * SquaredDistance(&ufacets[k * d], ve.data(), d);
    }
    out[idx] = score;
  }
}

void Mar::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                         float* out) const {
  if (begin >= end) return;
  const size_t d = config_.dim;
  const size_t kf = config_.num_facets;
  std::vector<float> theta(kf);
  Softmax(theta_logits_.Row(u), theta.data(), kf);
  const size_t count = end - begin;
  if (param_mode_ == FacetParam::kFree) {
    // The contiguous item store makes the sweep one sequential pass over
    // `count` consecutive entity blocks.
    WeightedFacetSquaredDistanceBatch(
        user_facets_.EntityBlock(u), user_facets_.row_stride(),
        item_facets_.EntityBlock(begin), item_facets_.entity_stride(),
        item_facets_.row_stride(), theta.data(), kf, count, d, out);
    for (size_t i = 0; i < count; ++i) out[i] = -out[i];
    return;
  }
  // Hoist user facet projections; items must be projected per candidate.
  std::vector<float> ufacets(kf * d);
  for (size_t k = 0; k < kf; ++k) {
    ProjectFacet(phi_[k], user_universal_.Row(u), &ufacets[k * d]);
  }
  std::vector<float> ve(d);
  for (ItemId v = begin; v < end; ++v) {
    float score = 0.0f;
    for (size_t k = 0; k < kf; ++k) {
      ProjectFacet(psi_[k], item_universal_.Row(v), ve.data());
      score -= theta[k] * SquaredDistance(&ufacets[k * d], ve.data(), d);
    }
    out[v - begin] = score;
  }
}

void Mar::ScoreItemRangeMulti(std::span<const UserId> users, ItemId begin,
                              ItemId end, float* const* out) const {
  if (begin >= end || users.empty()) return;
  if (param_mode_ != FacetParam::kFree) {
    // kProjected scores through per-candidate projections — no block
    // kernel exists, so the batch is just the per-user loop.
    for (size_t b = 0; b < users.size(); ++b) {
      ScoreItemRange(users[b], begin, end, out[b]);
    }
    return;
  }
  const size_t kf = config_.num_facets;
  const size_t count = end - begin;
  std::vector<float> thetas(users.size() * kf);
  std::vector<const float*> ublocks(users.size()), ws(users.size());
  for (size_t b = 0; b < users.size(); ++b) {
    float* theta = thetas.data() + b * kf;
    Softmax(theta_logits_.Row(users[b]), theta, kf);
    ublocks[b] = user_facets_.EntityBlock(users[b]);
    ws[b] = theta;
  }
  WeightedFacetSquaredDistanceBatchMulti(
      ublocks.data(), user_facets_.row_stride(), ws.data(), users.size(),
      item_facets_.EntityBlock(begin), item_facets_.entity_stride(),
      item_facets_.row_stride(), kf, count, config_.dim, out);
  for (size_t b = 0; b < users.size(); ++b) {
    for (size_t i = 0; i < count; ++i) out[b][i] = -out[b][i];
  }
}

std::vector<float> Mar::UserFacetEmbedding(UserId u, size_t k) const {
  MARS_CHECK(k < config_.num_facets);
  std::vector<float> out(config_.dim);
  if (param_mode_ == FacetParam::kProjected) {
    ProjectFacet(phi_[k], user_universal_.Row(u), out.data());
  } else {
    Copy(user_facets_.Row(u, k), out.data(), config_.dim);
  }
  return out;
}

std::vector<float> Mar::ItemFacetEmbedding(ItemId v, size_t k) const {
  MARS_CHECK(k < config_.num_facets);
  std::vector<float> out(config_.dim);
  if (param_mode_ == FacetParam::kProjected) {
    ProjectFacet(psi_[k], item_universal_.Row(v), out.data());
  } else {
    Copy(item_facets_.Row(v, k), out.data(), config_.dim);
  }
  return out;
}

std::vector<float> Mar::FacetWeights(UserId u) const {
  std::vector<float> theta(config_.num_facets);
  Softmax(theta_logits_.Row(u), theta.data(), config_.num_facets);
  return theta;
}

float Mar::MarginOf(UserId u) const {
  MARS_CHECK(u < margins_.size());
  return margins_[u];
}

}  // namespace mars
