// MAR — Multi-fAcet Recommender networks (paper Sec. III).
//
// Users and items carry universal embeddings u, v ∈ R^D that K shared
// projection matrices Φ_k, Ψ_k map into K facet-specific metric spaces
// (Eq. 1–2); similarity is the Θ_u-weighted sum of negative squared
// Euclidean distances across facets (Eq. 3–4). Training minimizes
//
//   L = L_push + λ_pull · L_pull + λ_facet · L_facet          (Eq. 11)
//
// with the per-user adaptive margin γ_u (Eq. 7–8), the absolute pulling
// term (Eq. 9), the facet-separating loss (Eq. 6), frequency-biased user
// sampling (Eq. 10), and the relaxed ball constraint ||u^k|| ≤ 1 enforced
// by a norm-clipped forward whose exact Jacobian the backward pass uses.
//
// The `FacetParam::kFree` mode replaces the shared-projection
// parameterization with free ball-constrained facet tables (the ablation
// of DESIGN.md §2.2).
#ifndef MARS_CORE_MAR_H_
#define MARS_CORE_MAR_H_

#include <vector>

#include "common/facet_store.h"
#include "common/matrix.h"
#include "core/facet_config.h"
#include "models/recommender.h"

namespace mars {

/// MAR recommender.
class Mar : public Recommender {
 public:
  /// `param_mode` defaults to kFree: per Eq. 19 the optimization variables
  /// Ω are the facet embeddings themselves, and empirically the free
  /// parameterization dominates the shared-projection one on sparse data
  /// (see DESIGN.md §2.2 and bench/ablation_param_mode).
  explicit Mar(MultiFacetConfig config,
               FacetParam param_mode = FacetParam::kFree);

  void Fit(const ImplicitDataset& train, const TrainOptions& options) override;
  float Score(UserId u, ItemId v) const override;
  void ScoreItems(UserId u, std::span<const ItemId> items,
                  float* out) const override;
  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      float* out) const override;
  void ScoreItemRangeMulti(std::span<const UserId> users, ItemId begin,
                           ItemId end, float* const* out) const override;
  std::string name() const override { return "MAR"; }

  const MultiFacetConfig& config() const { return config_; }
  FacetParam param_mode() const { return param_mode_; }

  /// Facet-specific (clipped) embedding of user `u` in facet `k`.
  std::vector<float> UserFacetEmbedding(UserId u, size_t k) const;
  /// Facet-specific (clipped) embedding of item `v` in facet `k`.
  std::vector<float> ItemFacetEmbedding(ItemId v, size_t k) const;
  /// Softmax facet weights Θ_u of user `u`.
  std::vector<float> FacetWeights(UserId u) const;
  /// Adaptive margin γ_u the trainer used for `u` (after Fit).
  float MarginOf(UserId u) const;

 private:
  /// Projects entity embedding `x` into facet `k` with clip; fills
  /// `clipped` (D floats) and returns the clip scale (1 when inside ball).
  float ProjectFacet(const Matrix& projection, const float* x,
                     float* clipped) const;

  MultiFacetConfig config_;
  FacetParam param_mode_;

  // kProjected parameters.
  Matrix user_universal_;             // N×D
  Matrix item_universal_;             // M×D
  std::vector<Matrix> phi_;           // K of D×D (user projections)
  std::vector<Matrix> psi_;           // K of D×D (item projections)
  // kFree parameters: contiguous [entity][facet][dim] tables (see
  // common/facet_store.h) — the same layout MARS trains on.
  FacetStore user_facets_;            // N×K×D
  FacetStore item_facets_;            // M×K×D

  Matrix theta_logits_;               // N×K
  std::vector<float> margins_;        // γ_u per user
};

}  // namespace mars

#endif  // MARS_CORE_MAR_H_
