#include "core/adaptive_margin.h"

#include <algorithm>

namespace mars {

namespace {

/// Counts distinct users reachable from `u` in two hops using an epoch-
/// stamped scratch array (avoids clearing a bitmap per user).
size_t DistinctTwoHop(const ImplicitDataset& train, UserId u,
                      std::vector<uint32_t>* stamp, uint32_t epoch) {
  size_t count = 0;
  for (ItemId v : train.ItemsOf(u)) {
    for (UserId w : train.UsersOf(v)) {
      if ((*stamp)[w] != epoch) {
        (*stamp)[w] = epoch;
        ++count;
      }
    }
  }
  return count;
}

}  // namespace

std::vector<float> ComputeAdaptiveMargins(const ImplicitDataset& train) {
  const size_t n = train.num_users();
  std::vector<float> gamma(n, 1.0f);
  if (n == 0) return gamma;
  std::vector<uint32_t> stamp(n, 0);
  for (UserId u = 0; u < n; ++u) {
    const size_t two_hop = DistinctTwoHop(train, u, &stamp, u + 1);
    const float frac =
        static_cast<float>(two_hop) / static_cast<float>(n);
    gamma[u] = std::clamp(1.0f - frac, 0.0f, 1.0f);
  }
  return gamma;
}

float ComputeAdaptiveMargin(const ImplicitDataset& train, UserId u) {
  std::vector<uint32_t> stamp(train.num_users(), 0);
  const size_t two_hop = DistinctTwoHop(train, u, &stamp, 1);
  const float frac = static_cast<float>(two_hop) /
                     static_cast<float>(train.num_users());
  return std::clamp(1.0f - frac, 0.0f, 1.0f);
}

}  // namespace mars
