// Shared configuration of the multi-facet recommenders (MAR and MARS).
#ifndef MARS_CORE_FACET_CONFIG_H_
#define MARS_CORE_FACET_CONFIG_H_

#include <cstddef>

namespace mars {

/// Sign convention of the spherical facet-separating loss (DESIGN.md §2.1).
enum class FacetLossSign {
  /// Corrected: (1/α) log(1+exp(+α cos)) — penalizes similar facets.
  kSeparate,
  /// As printed in Eq. 12: (1/α) log(1+exp(−α cos)) — included only so the
  /// ablation bench can demonstrate the inversion empirically.
  kAsPrinted,
};

/// How MAR parameterizes facet embeddings (DESIGN.md §2.2).
enum class FacetParam {
  /// Eq. 1–2: shared projection matrices over universal embeddings
  /// (norm-clipped forward with exact gradients through the clip).
  kProjected,
  /// Free per-facet embedding tables (ball-constrained); the
  /// parameterization MARS uses on the sphere, made available in MAR for
  /// the ablation.
  kFree,
};

/// Hyperparameters shared by MAR and MARS.
struct MultiFacetConfig {
  /// Per-facet embedding dimension D.
  size_t dim = 32;
  /// Number of facet spaces K (paper tunes in [1, 6], rule of thumb 3-4).
  size_t num_facets = 4;

  /// λ_pull — weight of the absolute pulling objective (Eq. 9/16).
  double lambda_pull = 0.1;
  /// λ_facet — weight of the facet-separating loss (Eq. 6/12).
  double lambda_facet = 0.01;
  /// α — scale inside the facet-separating loss (paper default 0.1).
  double alpha = 0.1;

  /// Use per-user adaptive margins γ_u (Eq. 7); when false, `fixed_margin`
  /// is used for every user (the ablation baseline).
  bool adaptive_margin = true;
  double fixed_margin = 0.5;

  /// Use the explorative frequency-biased user sampling of Eq. 10.
  bool biased_sampling = true;
  /// β — smoothing of the biased sampling (paper default 0.8).
  double sampling_beta = 0.8;

  /// Initialize per-user facet weights Θ_u from NMF with K factors (the
  /// paper's stated use of NMF); when false, weights start uniform.
  bool theta_init_nmf = true;
  /// NMF sweeps for the initialization.
  size_t theta_nmf_iterations = 15;
  /// Learning-rate multiplier for the facet-weight logits.
  double theta_lr_scale = 1.0;

  /// Compensate the θ-weighting of facet gradients by scaling the
  /// embedding learning rate by K. The cross-facet similarity weights every
  /// facet's gradient by θ_u^k (mean 1/K), so without compensation a
  /// K-facet model trains each space K× slower than a single-space model
  /// at the same learning rate; scaling by K restores per-facet training
  /// speed while preserving the *relative* θ weighting between facets.
  bool scale_lr_by_facets = true;

  /// Gradient-norm clip per facet vector (0 disables).
  double grad_clip = 5.0;

  /// Learning-rate multiplier for the shared projection matrices Φ/Ψ
  /// (MAR kProjected mode only). The projections are global parameters hit
  /// by every SGD step, so they need a much smaller step than the per-
  /// entity embeddings to stay stable; 1/K cancels the facet lr
  /// compensation for them.
  double projection_lr_scale = 0.25;
};

}  // namespace mars

#endif  // MARS_CORE_FACET_CONFIG_H_
