// Facet-weight initialization via NMF (paper Sec. V-A3: "we apply it
// [NMF] to initialize the multiple facets of users and items; the number
// of latent factors is set to the number of metric spaces").
#ifndef MARS_CORE_FACET_INIT_H_
#define MARS_CORE_FACET_INIT_H_

#include <cstdint>

#include "common/matrix.h"
#include "data/dataset.h"

namespace mars {

/// Returns an N×K matrix of facet-weight logits such that softmax(logits)
/// equals the user's normalized NMF loadings blended with the uniform
/// distribution: θ_init = (1-blend)·ŵ + blend/K. The blend keeps every
/// facet alive at initialization — a raw NMF mixture routinely zeroes out
/// factors, and a facet whose θ starts at ~0 receives ~0 gradient and
/// never recovers. Falls back to uniform for users with no training
/// interactions.
Matrix InitThetaLogitsFromNmf(const ImplicitDataset& train, size_t num_facets,
                              size_t iterations, uint64_t seed,
                              double blend = 0.5);

/// Uniform logits (all zeros), the ablation alternative.
Matrix InitThetaLogitsUniform(size_t num_users, size_t num_facets);

}  // namespace mars

#endif  // MARS_CORE_FACET_INIT_H_
