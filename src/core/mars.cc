#include "core/mars.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/kernels.h"
#include "common/rng.h"
#include "common/vec.h"
#include "core/adaptive_margin.h"
#include "core/facet_init.h"
#include "models/embedding.h"
#include "models/train_loop.h"
#include "opt/sgd.h"
#include "opt/sphere.h"
#include "sampling/triplet_sampler.h"
#include "serve/write_tracker.h"
#include "train/parallel_trainer.h"
#include "train/snapshot.h"

namespace mars {

Mars::Mars(MultiFacetConfig config, MarsOptions mars_options)
    : config_(config), mars_options_(mars_options) {
  MARS_CHECK(config_.num_facets >= 1);
  MARS_CHECK(config_.dim >= 2);
  radii_.assign(config_.num_facets, 1.0f);
}

void Mars::Fit(const ImplicitDataset& train, const TrainOptions& options) {
  // A mapped model is an immutable serving snapshot over PROT_READ pages;
  // training it is a caller bug, not a recoverable condition.
  MARS_CHECK_MSG(!mapped(),
                 "cannot Fit a mapped model (LoadMarsMapped serves an "
                 "immutable snapshot; copy-load with LoadMars to retrain)");
  const size_t d = config_.dim;
  const size_t kf = config_.num_facets;
  Rng rng(options.seed);

  // --- Initialization: Eq. 1-2 factorization feeds the spheres ------------
  // Universal embeddings + near-identity projections, then each facet
  // embedding is the normalized projection output.
  {
    Matrix user_universal(train.num_users(), d);
    Matrix item_universal(train.num_items(), d);
    InitEmbedding(&user_universal, &rng);
    InitEmbedding(&item_universal, &rng);
    user_facets_ = FacetStore(train.num_users(), kf, d);
    item_facets_ = FacetStore(train.num_items(), kf, d);
    Matrix phi(d, d), psi(d, d);
    std::vector<float> z(d);
    for (size_t k = 0; k < kf; ++k) {
      phi.FillIdentityPlusNoise(&rng, 0.25f);
      psi.FillIdentityPlusNoise(&rng, 0.25f);
      for (UserId u = 0; u < train.num_users(); ++u) {
        GemvTransposed(phi, user_universal.Row(u), z.data());
        if (!NormalizeInPlace(z.data(), d)) z[0] = 1.0f;
        Copy(z.data(), user_facets_.Row(u, k), d);
      }
      for (ItemId v = 0; v < train.num_items(); ++v) {
        GemvTransposed(psi, item_universal.Row(v), z.data());
        if (!NormalizeInPlace(z.data(), d)) z[0] = 1.0f;
        Copy(z.data(), item_facets_.Row(v, k), d);
      }
    }
  }

  theta_logits_ =
      config_.theta_init_nmf
          ? InitThetaLogitsFromNmf(train, kf, config_.theta_nmf_iterations,
                                   options.seed + 17)
          : InitThetaLogitsUniform(train.num_users(), kf);
  radii_.assign(kf, 1.0f);

  margins_ = config_.adaptive_margin
                 ? ComputeAdaptiveMargins(train)
                 : std::vector<float>(train.num_users(),
                                      static_cast<float>(config_.fixed_margin));

  const TripletSampler sampler(train,
                               config_.biased_sampling
                                   ? TripletUserMode::kFrequencyBiased
                                   : TripletUserMode::kUniformInteraction,
                               config_.sampling_beta);
  const size_t steps = ResolveStepsPerEpoch(options, train);
  const float lambda_pull = static_cast<float>(config_.lambda_pull);
  const float lambda_facet = static_cast<float>(config_.lambda_facet);
  const float alpha = static_cast<float>(config_.alpha);
  const float clip = static_cast<float>(config_.grad_clip);
  const bool calibrated = mars_options_.calibrated;
  // Corrected facet loss penalizes +cos (separate); the as-printed variant
  // penalizes −cos, which *pulls facets together* (kept for the ablation).
  const float facet_sign =
      mars_options_.facet_sign == FacetLossSign::kSeparate ? 1.0f : -1.0f;

  const size_t fs = user_facets_.row_stride();

  const float lr_comp =
      config_.scale_lr_by_facets ? static_cast<float>(kf) : 1.0f;

  // One SGD step touches only the triplet's rows, so workers update the
  // shared stores Hogwild-style; each worker owns its scratch buffers.
  ParallelTrainer trainer(options, &rng);
  struct Scratch {
    std::vector<float> gu, gvp, gvq, theta, coeff, sp, sq;
  };
  WriteTracker* const tracker = options.write_tracker;
  std::vector<Scratch> scratch(trainer.num_workers());
  for (Scratch& sc : scratch) {
    sc.gu.resize(kf * d);
    sc.gvp.resize(kf * d);
    sc.gvq.resize(kf * d);
    sc.theta.resize(kf);
    sc.coeff.resize(kf);
    sc.sp.resize(kf);
    sc.sq.resize(kf);
  }

  // Per-epoch learning rates, set before the steps fan out.
  float lr = 0.0f;
  float theta_lr = 0.0f;

  const auto step = [&](size_t worker, Rng& wrng) {
    Scratch& sc = scratch[worker];
    float* const gu = sc.gu.data();
    float* const gvp = sc.gvp.data();
    float* const gvq = sc.gvq.data();
    float* const theta = sc.theta.data();
    float* const coeff = sc.coeff.data();
    float* const sp = sc.sp.data();
    float* const sq = sc.sq.data();

    Triplet t;
    if (!sampler.Sample(&wrng, &t)) return;
    if (tracker != nullptr) {
      tracker->MarkUser(t.user);
      tracker->MarkItem(t.positive);
      tracker->MarkItem(t.negative);
      // Radii are K global floats entering every score.
      if (mars_options_.learn_radius) tracker->MarkAllItems();
    }

    // --- Forward: cosine similarities per facet ------------------------
    // The triplet's three entity blocks are each one contiguous read.
    const float* ublock = user_facets_.EntityBlock(t.user);
    const float* pblock = item_facets_.EntityBlock(t.positive);
    const float* qblock = item_facets_.EntityBlock(t.negative);
    for (size_t k = 0; k < kf; ++k) {
      sp[k] = Dot(ublock + k * fs, pblock + k * fs, d);
      sq[k] = Dot(ublock + k * fs, qblock + k * fs, d);
    }
    Softmax(theta_logits_.Row(t.user), theta, kf);
    float push_val = margins_[t.user];
    for (size_t k = 0; k < kf; ++k) {
      push_val += theta[k] * radii_[k] * (sq[k] - sp[k]);
    }
    const bool active = push_val > 0.0f;

    // --- Euclidean gradients in the ambient space -----------------------
    Fill(0.0f, gu, kf * d);
    Fill(0.0f, gvp, kf * d);
    Fill(0.0f, gvq, kf * d);
    for (size_t k = 0; k < kf; ++k) {
      const float* uk = ublock + k * fs;
      const float* vpk = pblock + k * fs;
      const float* vqk = qblock + k * fs;
      const float w_push = active ? theta[k] * radii_[k] : 0.0f;
      const float w_pull = lambda_pull * theta[k] * radii_[k];
      for (size_t i = 0; i < d; ++i) {
        // push: θ(∂(−s_p + s_q)) ; pull: −λθ ∂s_p
        gu[k * d + i] +=
            w_push * (vqk[i] - vpk[i]) - w_pull * vpk[i];
        gvp[k * d + i] += -(w_push + w_pull) * uk[i];
        gvq[k * d + i] += w_push * uk[i];
      }
    }
    // Spherical facet-separating loss over facet pairs (user + pos item).
    if (lambda_facet > 0.0f && kf > 1) {
      for (size_t i = 0; i < kf; ++i) {
        for (size_t j = i + 1; j < kf; ++j) {
          const float cu = Dot(ublock + i * fs, ublock + j * fs, d);
          const float cv = Dot(pblock + i * fs, pblock + j * fs, d);
          // L = (1/α) log(1+exp(sign·α·cos)) per entity;
          // dL/dcos = sign·σ(sign·α·cos).
          const float wu = lambda_facet * facet_sign *
                           static_cast<float>(Sigmoid(facet_sign * alpha * cu));
          const float wv = lambda_facet * facet_sign *
                           static_cast<float>(Sigmoid(facet_sign * alpha * cv));
          for (size_t x = 0; x < d; ++x) {
            gu[i * d + x] += wu * ublock[j * fs + x];
            gu[j * d + x] += wu * ublock[i * fs + x];
            gvp[i * d + x] += wv * pblock[j * fs + x];
            gvp[j * d + x] += wv * pblock[i * fs + x];
          }
        }
      }
    }

    // --- Θ update --------------------------------------------------------
    float mean_c = 0.0f;
    for (size_t k = 0; k < kf; ++k) {
      coeff[k] = radii_[k] * ((active ? (sq[k] - sp[k]) : 0.0f) -
                              static_cast<float>(lambda_pull) * sp[k]);
      mean_c += theta[k] * coeff[k];
    }
    float* logits = theta_logits_.Row(t.user);
    for (size_t k = 0; k < kf; ++k) {
      logits[k] -= theta_lr * theta[k] * (coeff[k] - mean_c);
    }

    // --- Facet-radius update (future-work extension) --------------------
    // radii_ is K global floats shared by every worker; concurrent updates
    // race Hogwild-style like the embedding rows.
    if (mars_options_.learn_radius) {
      constexpr float kMinRadius = 0.1f;
      constexpr float kMaxRadius = 10.0f;
      for (size_t k = 0; k < kf; ++k) {
        const float grad_r =
            theta[k] * ((active ? (sq[k] - sp[k]) : 0.0f) -
                        static_cast<float>(lambda_pull) * sp[k]);
        radii_[k] = std::clamp(radii_[k] - theta_lr * grad_r, kMinRadius,
                               kMaxRadius);
      }
    }

    // --- Calibrated Riemannian updates (Eq. 21), fused single-pass ------
    // Each entity's K rows sit contiguously, so the 3K fused steps stream
    // over three blocks with no scratch buffer.
    for (size_t k = 0; k < kf; ++k) {
      float* guk = &gu[k * d];
      float* gvpk = &gvp[k * d];
      float* gvqk = &gvq[k * d];
      if (clip > 0.0f) {
        ClipGradient(guk, d, clip);
        ClipGradient(gvpk, d, clip);
        ClipGradient(gvqk, d, clip);
      }
      if (SquaredNorm(guk, d) > 0.0f) {
        FusedRiemannianSgdStep(user_facets_.Row(t.user, k), guk, lr, d,
                               calibrated);
      }
      if (SquaredNorm(gvpk, d) > 0.0f) {
        FusedRiemannianSgdStep(item_facets_.Row(t.positive, k), gvpk, lr,
                               d, calibrated);
      }
      if (SquaredNorm(gvqk, d) > 0.0f) {
        FusedRiemannianSgdStep(item_facets_.Row(t.negative, k), gvqk, lr,
                               d, calibrated);
      }
    }
  };

  // Overlapped-eval snapshot: the big facet stores are copied shard-by-
  // shard on the (idle) trainer pool into a reusable buffer.
  std::unique_ptr<Mars> snap;
  const auto snapshot = [&]() -> const ItemScorer* {
    if (snap == nullptr) {
      snap = std::make_unique<Mars>(config_, mars_options_);
    }
    SnapshotFacetStore(user_facets_, &snap->user_facets_, trainer.pool());
    SnapshotFacetStore(item_facets_, &snap->item_facets_, trainer.pool());
    snap->theta_logits_ = theta_logits_;
    snap->radii_ = radii_;
    return snap.get();
  };

  RunTrainingLoop(
      options, *this, name(),
      [&](size_t, double lr_d) {
        lr = static_cast<float>(lr_d) * lr_comp;
        theta_lr = static_cast<float>(lr_d) *
                   static_cast<float>(config_.theta_lr_scale);
        trainer.RunEpoch(steps, step);
      },
      snapshot);
}

float Mars::Score(UserId u, ItemId v) const {
  const size_t kf = config_.num_facets;
  std::vector<float> theta(kf);
  Softmax(theta_logits_.Row(u), theta.data(), kf);
  for (size_t k = 0; k < kf; ++k) theta[k] *= radii_[k];
  return WeightedFacetDot(user_facets_.EntityBlock(u),
                          user_facets_.row_stride(),
                          item_facets_.EntityBlock(v),
                          item_facets_.row_stride(), theta.data(), kf,
                          config_.dim);
}

void Mars::ScoreItems(UserId u, std::span<const ItemId> items,
                      float* out) const {
  const size_t kf = config_.num_facets;
  std::vector<float> theta(kf);
  Softmax(theta_logits_.Row(u), theta.data(), kf);
  for (size_t k = 0; k < kf; ++k) theta[k] *= radii_[k];
  // Per candidate, both entity blocks are contiguous: one fused pass over
  // 2·K·D floats instead of K scattered row pairs.
  const float* ublock = user_facets_.EntityBlock(u);
  const size_t us = user_facets_.row_stride();
  const size_t vs = item_facets_.row_stride();
  for (size_t idx = 0; idx < items.size(); ++idx) {
    out[idx] = WeightedFacetDot(ublock, us,
                                item_facets_.EntityBlock(items[idx]), vs,
                                theta.data(), kf, config_.dim);
  }
}

void Mars::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                          float* out) const {
  if (begin >= end) return;
  const size_t kf = config_.num_facets;
  std::vector<float> theta(kf);
  Softmax(theta_logits_.Row(u), theta.data(), kf);
  for (size_t k = 0; k < kf; ++k) theta[k] *= radii_[k];
  const size_t count = end - begin;
  if (kf == 1) {
    // Single facet: rows sit on the unit sphere (the retraction normalizes
    // every update), so the weighted dot *is* θ·r·cosine — score through
    // CosineBatch, which amortizes ||u|| over the block and stays correct
    // even if a row drifts off-unit.
    CosineBatch(user_facets_.Row(u, 0), item_facets_.Row(begin, 0), count,
                item_facets_.entity_stride(), config_.dim, out);
    for (size_t i = 0; i < count; ++i) out[i] *= theta[0];
    return;
  }
  // The item store is contiguous: the sweep streams over `count`
  // consecutive entity blocks in one pass.
  WeightedFacetDotBatch(user_facets_.EntityBlock(u),
                        user_facets_.row_stride(),
                        item_facets_.EntityBlock(begin),
                        item_facets_.entity_stride(),
                        item_facets_.row_stride(), theta.data(), kf,
                        count, config_.dim, out);
}

void Mars::ScoreItemRangeMulti(std::span<const UserId> users, ItemId begin,
                               ItemId end, float* const* out) const {
  if (begin >= end || users.empty()) return;
  const size_t kf = config_.num_facets;
  if (kf == 1) {
    // The single-facet sweep goes through CosineBatch (per-block ||u||
    // hoisting); keep the per-user calls so the path — and the bits —
    // match the solo sweep exactly.
    for (size_t b = 0; b < users.size(); ++b) {
      ScoreItemRange(users[b], begin, end, out[b]);
    }
    return;
  }
  // Per-user θ·r weight vectors, then one fused multi-user pass over the
  // contiguous item store: each candidate facet row is loaded once per
  // user quad instead of once per user.
  std::vector<float> thetas(users.size() * kf);
  std::vector<const float*> ublocks(users.size()), ws(users.size());
  for (size_t b = 0; b < users.size(); ++b) {
    float* theta = thetas.data() + b * kf;
    Softmax(theta_logits_.Row(users[b]), theta, kf);
    for (size_t k = 0; k < kf; ++k) theta[k] *= radii_[k];
    ublocks[b] = user_facets_.EntityBlock(users[b]);
    ws[b] = theta;
  }
  WeightedFacetDotBatchMulti(ublocks.data(), user_facets_.row_stride(),
                             ws.data(), users.size(),
                             item_facets_.EntityBlock(begin),
                             item_facets_.entity_stride(),
                             item_facets_.row_stride(), kf, end - begin,
                             config_.dim, out);
}

void Mars::CopyIndexVectors(ItemId begin, ItemId end, float* out) const {
  const size_t kf = config_.num_facets;
  const size_t d = config_.dim;
  for (ItemId v = begin; v < end; ++v, out += kf * d) {
    item_facets_.CopyEntityTo(v, out);
  }
}

void Mars::WriteIndexQuery(UserId u, float* out) const {
  const size_t kf = config_.num_facets;
  const size_t d = config_.dim;
  std::vector<float> theta(kf);
  Softmax(theta_logits_.Row(u), theta.data(), kf);
  for (size_t k = 0; k < kf; ++k) theta[k] *= radii_[k];
  for (size_t k = 0; k < kf; ++k) {
    const float* row = user_facets_.Row(u, k);
    float* dst = out + k * d;
    for (size_t i = 0; i < d; ++i) dst[i] = theta[k] * row[i];
  }
}

std::vector<float> Mars::UserFacetEmbedding(UserId u, size_t k) const {
  MARS_CHECK(k < config_.num_facets);
  std::vector<float> out(config_.dim);
  Copy(user_facets_.Row(u, k), out.data(), config_.dim);
  return out;
}

std::vector<float> Mars::ItemFacetEmbedding(ItemId v, size_t k) const {
  MARS_CHECK(k < config_.num_facets);
  std::vector<float> out(config_.dim);
  Copy(item_facets_.Row(v, k), out.data(), config_.dim);
  return out;
}

std::vector<float> Mars::FacetWeights(UserId u) const {
  std::vector<float> theta(config_.num_facets);
  Softmax(theta_logits_.Row(u), theta.data(), config_.num_facets);
  return theta;
}

float Mars::MarginOf(UserId u) const {
  MARS_CHECK(u < margins_.size());
  return margins_[u];
}

std::unique_ptr<Mars> Mars::ServingSnapshot(ThreadPool* pool) const {
  auto snap = std::make_unique<Mars>(config_, mars_options_);
  SnapshotFacetStore(user_facets_, &snap->user_facets_, pool);
  SnapshotFacetStore(item_facets_, &snap->item_facets_, pool);
  snap->theta_logits_ = theta_logits_;
  snap->radii_ = radii_;
  snap->margins_ = margins_;
  return snap;
}

}  // namespace mars
