// Binary model persistence for the core recommenders.
//
// Format: a small header (magic, version, shape) followed by the flat
// parameter tensors in little-endian float32. Lets a trained MARS model be
// served without retraining — the missing piece for downstream adoption.
#ifndef MARS_CORE_PERSISTENCE_H_
#define MARS_CORE_PERSISTENCE_H_

#include <memory>
#include <string>

#include "core/mars.h"

namespace mars {

/// Writes a trained MARS model to `path`. Returns false on I/O error.
/// The model must have been Fit (facet tables populated).
bool SaveMars(const Mars& model, const std::string& path);

/// Reads a MARS model previously written by SaveMars. Returns nullptr on
/// I/O error, bad magic, version mismatch, or truncated payload. The
/// returned model scores immediately (no Fit required).
std::unique_ptr<Mars> LoadMars(const std::string& path);

}  // namespace mars

#endif  // MARS_CORE_PERSISTENCE_H_
