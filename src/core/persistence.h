// Binary model persistence for the core recommenders.
//
// Three on-disk formats share the magic/version/shape header; the byte
// layouts and the compatibility matrix are documented in docs/FORMAT.md:
//   v1  facet-major tensors (historical; load-only),
//   v2  entity-major tensors, padding stripped (the compact interchange
//       format SaveMars writes),
//   v3  entity-major tensors at the exact in-memory FacetStore stride with
//       64-byte-aligned regions (SaveMarsV3) — the payload of a v3 file IS
//       a valid FacetStore buffer, so LoadMarsMapped can mmap it and serve
//       with zero copy (common/mapped_store.h).
//
// LoadMars copy-loads any version; LoadMarsMapped requires v3.
#ifndef MARS_CORE_PERSISTENCE_H_
#define MARS_CORE_PERSISTENCE_H_

#include <memory>
#include <string>

#include "core/mars.h"

namespace mars {

/// Writes a trained MARS model to `path` in format v2 (entity-major,
/// unpadded — the compact interchange layout). Returns false on I/O error.
/// The model must have been Fit (facet tables populated).
bool SaveMars(const Mars& model, const std::string& path);

/// Writes a trained MARS model to `path` in format v3: the facet tensors
/// are written padded to the aligned FacetStore row stride, each region
/// starting on a 64-byte file offset, so the file can be served zero-copy
/// via LoadMarsMapped. ~row-padding bytes larger than v2 (zero when dim is
/// already a 16-float multiple). Returns false on I/O error.
bool SaveMarsV3(const Mars& model, const std::string& path);

/// Reads a MARS model previously written by SaveMars or SaveMarsV3 (any
/// format version) into freshly allocated, owned storage. Returns nullptr
/// on I/O error, bad magic, version mismatch, or truncated payload. The
/// returned model scores immediately (no Fit required).
std::unique_ptr<Mars> LoadMars(const std::string& path);

/// Maps a format-v3 file read-only and returns a serve-ready model whose
/// facet tensors alias the mapping directly — no load-time copy; only the
/// small Θ/radii/margin tails are materialized. The model keeps the mapping
/// alive, is immutable (Fit aborts; see Mars::mapped()), and its
/// Score/ScoreItems/ScoreItemRange run the same kernels as an owned store,
/// so it can be handed to TopKServer::ReplaceModel unchanged. Returns
/// nullptr (with an error log) on non-v3 input, bad alignment, wrong
/// stride, or truncation.
std::unique_ptr<Mars> LoadMarsMapped(const std::string& path);

}  // namespace mars

#endif  // MARS_CORE_PERSISTENCE_H_
