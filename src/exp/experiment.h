// Shared run-model-on-dataset harness used by every bench binary.
//
// Encapsulates the full protocol: leave-one-out split, dev/test evaluator
// construction with shared candidate sets, training with early stopping,
// test evaluation, and wall-clock accounting.
#ifndef MARS_EXP_EXPERIMENT_H_
#define MARS_EXP_EXPERIMENT_H_

#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "data/benchmark_datasets.h"
#include "data/dataset.h"
#include "data/split.h"
#include "eval/evaluator.h"
#include "exp/model_zoo.h"
#include "models/recommender.h"

namespace mars {

/// A dataset prepared for experiments: split plus dev/test evaluators that
/// share candidate sets across all models.
class ExperimentData {
 public:
  /// Splits `full` and builds evaluators. `seed` controls the split and
  /// candidate sampling.
  ExperimentData(std::shared_ptr<ImplicitDataset> full, uint64_t seed = 13);

  const ImplicitDataset& train() const { return *split_.train; }
  std::shared_ptr<ImplicitDataset> train_ptr() const { return split_.train; }
  const ImplicitDataset& full() const { return *full_; }
  const LeaveOneOutSplit& split() const { return split_; }
  const Evaluator& dev_evaluator() const { return *dev_eval_; }
  const Evaluator& test_evaluator() const { return *test_eval_; }

 private:
  std::shared_ptr<ImplicitDataset> full_;
  LeaveOneOutSplit split_;
  std::unique_ptr<Evaluator> dev_eval_;
  std::unique_ptr<Evaluator> test_eval_;
};

/// Outcome of one (model, dataset) run.
struct ExperimentResult {
  std::string model;
  std::string dataset;
  RankingMetrics test;
  double train_seconds = 0.0;
};

/// Trains `model` on `data` (with dev early stopping) and evaluates on the
/// test set. `pool` parallelizes evaluation when provided.
ExperimentResult RunExperiment(Recommender* model, ExperimentData* data,
                               TrainOptions options,
                               const std::string& dataset_name,
                               ThreadPool* pool = nullptr);

/// Convenience: build the model from the zoo and run it.
ExperimentResult RunZooExperiment(ModelId id, ExperimentData* data,
                                  const std::string& dataset_name,
                                  const ZooOverrides& overrides = {},
                                  bool fast = false,
                                  ThreadPool* pool = nullptr);

/// Table II protocol: run `id` on `dataset` with the per-dataset tuned
/// hyperparameters (TunedOverrides/TunedTrainOptions).
ExperimentResult RunTunedExperiment(ModelId id, BenchmarkId dataset,
                                    ExperimentData* data, bool fast = false,
                                    ThreadPool* pool = nullptr);

/// True when MARS_BENCH_FAST=1 (smoke-run mode for benches).
bool BenchFastMode();

}  // namespace mars

#endif  // MARS_EXP_EXPERIMENT_H_
