// Factory over every model in the paper's Table II comparison.
//
// Centralizes the per-model hyperparameter defaults used by the benchmark
// harness so that every table/figure binary trains identically-configured
// models.
#ifndef MARS_EXP_MODEL_ZOO_H_
#define MARS_EXP_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/facet_config.h"
#include "core/mars.h"
#include "data/benchmark_datasets.h"
#include "models/recommender.h"

namespace mars {

/// Identifiers of the ten compared models, in Table II column order.
enum class ModelId {
  kBpr,
  kNmf,
  kNeuMf,
  kCml,
  kMetricF,
  kTransCf,
  kLrml,
  kSml,
  kMar,
  kMars,
};

/// All ten in presentation order.
const std::vector<ModelId>& AllModels();

/// Display name ("BPR", ..., "MARS").
std::string ModelName(ModelId id);

/// Knobs the harness sweeps; everything else uses tuned defaults.
struct ZooOverrides {
  /// Per-space embedding dimension (0 = model default).
  size_t dim = 0;
  /// Facet count for MAR/MARS (0 = default 4). Ignored by single-space
  /// models (their "K" is always 1).
  size_t num_facets = 0;
  /// λ_pull override for MAR/MARS (< 0 = default).
  double lambda_pull = -1.0;
  /// λ_facet override for MAR/MARS (< 0 = default).
  double lambda_facet = -1.0;
};

/// Instantiates a model with harness defaults plus `overrides`.
std::unique_ptr<Recommender> MakeModel(ModelId id,
                                       const ZooOverrides& overrides = {});

/// Baseline training options used across the harness (epochs, lr, early
/// stopping cadence); `fast` shrinks epochs for smoke runs.
TrainOptions HarnessTrainOptions(ModelId id, bool fast = false);

/// Default multi-facet config shared by MAR/MARS harness runs.
MultiFacetConfig HarnessFacetConfig();

// --- Per-dataset tuning (Table II protocol) --------------------------------
// The paper grid-searches K, learning rate and the λ weights per dataset on
// the dev split (Sec. V-A4); these return the tuned settings used by the
// Table II harness. Models without an entry fall back to the defaults.

/// Tuned overrides of model hyperparameters for `id` on `dataset`.
ZooOverrides TunedOverrides(ModelId id, BenchmarkId dataset);

/// Tuned training options for `id` on `dataset`.
TrainOptions TunedTrainOptions(ModelId id, BenchmarkId dataset, bool fast);

}  // namespace mars

#endif  // MARS_EXP_MODEL_ZOO_H_
