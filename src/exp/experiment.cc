#include "exp/experiment.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace mars {

ExperimentData::ExperimentData(std::shared_ptr<ImplicitDataset> full,
                               uint64_t seed)
    : full_(std::move(full)) {
  split_ = MakeLeaveOneOutSplit(*full_, seed);
  EvalProtocol dev_protocol;
  dev_protocol.seed = seed * 2 + 1;
  EvalProtocol test_protocol;
  test_protocol.seed = seed * 2 + 2;
  // Dev candidates also exclude the test item and vice versa, so neither
  // held-out item can appear as a "negative" of the other evaluator.
  dev_eval_ = std::make_unique<Evaluator>(
      *split_.train, split_.dev_item, dev_protocol,
      std::vector<const std::vector<int64_t>*>{&split_.test_item});
  test_eval_ = std::make_unique<Evaluator>(
      *split_.train, split_.test_item, test_protocol,
      std::vector<const std::vector<int64_t>*>{&split_.dev_item});
}

ExperimentResult RunExperiment(Recommender* model, ExperimentData* data,
                               TrainOptions options,
                               const std::string& dataset_name,
                               ThreadPool* pool) {
  options.dev_evaluator = &data->dev_evaluator();
  options.eval_pool = pool;

  Timer timer;
  model->Fit(data->train(), options);
  ExperimentResult result;
  result.model = model->name();
  result.dataset = dataset_name;
  result.train_seconds = timer.ElapsedSeconds();
  result.test = data->test_evaluator().Evaluate(*model, pool);
  MARS_LOG(INFO) << result.model << " on " << dataset_name << ": HR@10="
                 << FormatFixed(result.test.hr10, 4)
                 << " nDCG@10=" << FormatFixed(result.test.ndcg10, 4)
                 << " (" << FormatFixed(result.train_seconds, 1) << "s)";
  return result;
}

ExperimentResult RunZooExperiment(ModelId id, ExperimentData* data,
                                  const std::string& dataset_name,
                                  const ZooOverrides& overrides, bool fast,
                                  ThreadPool* pool) {
  std::unique_ptr<Recommender> model = MakeModel(id, overrides);
  return RunExperiment(model.get(), data, HarnessTrainOptions(id, fast),
                       dataset_name, pool);
}

ExperimentResult RunTunedExperiment(ModelId id, BenchmarkId dataset,
                                    ExperimentData* data, bool fast,
                                    ThreadPool* pool) {
  std::unique_ptr<Recommender> model =
      MakeModel(id, TunedOverrides(id, dataset));
  return RunExperiment(model.get(), data,
                       TunedTrainOptions(id, dataset, fast),
                       BenchmarkName(dataset), pool);
}

bool BenchFastMode() { return EnvFlagSet("MARS_BENCH_FAST"); }

}  // namespace mars
