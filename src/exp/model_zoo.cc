#include "exp/model_zoo.h"

#include "common/check.h"
#include "core/mar.h"
#include "models/bpr.h"
#include "models/cml.h"
#include "models/lrml.h"
#include "models/metricf.h"
#include "models/neumf.h"
#include "models/nmf.h"
#include "models/sml.h"
#include "models/transcf.h"

namespace mars {

const std::vector<ModelId>& AllModels() {
  static const std::vector<ModelId>* const kAll = new std::vector<ModelId>{
      ModelId::kBpr,     ModelId::kNmf,  ModelId::kNeuMf, ModelId::kCml,
      ModelId::kMetricF, ModelId::kTransCf, ModelId::kLrml, ModelId::kSml,
      ModelId::kMar,     ModelId::kMars,
  };
  return *kAll;
}

std::string ModelName(ModelId id) {
  switch (id) {
    case ModelId::kBpr:
      return "BPR";
    case ModelId::kNmf:
      return "NMF";
    case ModelId::kNeuMf:
      return "NeuMF";
    case ModelId::kCml:
      return "CML";
    case ModelId::kMetricF:
      return "MetricF";
    case ModelId::kTransCf:
      return "TransCF";
    case ModelId::kLrml:
      return "LRML";
    case ModelId::kSml:
      return "SML";
    case ModelId::kMar:
      return "MAR";
    case ModelId::kMars:
      return "MARS";
  }
  MARS_CHECK_MSG(false, "unknown model id");
  return "";
}

MultiFacetConfig HarnessFacetConfig() {
  MultiFacetConfig cfg;
  cfg.dim = 32;
  cfg.num_facets = 4;
  cfg.lambda_pull = 0.1;
  cfg.lambda_facet = 0.01;
  return cfg;
}

std::unique_ptr<Recommender> MakeModel(ModelId id,
                                       const ZooOverrides& overrides) {
  const size_t dim = overrides.dim > 0 ? overrides.dim : 32;
  switch (id) {
    case ModelId::kBpr: {
      BprConfig cfg;
      cfg.dim = dim;
      return std::make_unique<Bpr>(cfg);
    }
    case ModelId::kNmf: {
      NmfConfig cfg;
      cfg.factors = dim;
      return std::make_unique<Nmf>(cfg);
    }
    case ModelId::kNeuMf: {
      NeuMfConfig cfg;
      cfg.gmf_dim = dim / 2;
      cfg.mlp_dim = dim / 2;
      cfg.hidden = {dim, dim / 2};
      return std::make_unique<NeuMf>(cfg);
    }
    case ModelId::kCml: {
      CmlConfig cfg;
      cfg.dim = dim;
      return std::make_unique<Cml>(cfg);
    }
    case ModelId::kMetricF: {
      MetricFConfig cfg;
      cfg.dim = dim;
      return std::make_unique<MetricF>(cfg);
    }
    case ModelId::kTransCf: {
      TransCfConfig cfg;
      cfg.dim = dim;
      return std::make_unique<TransCf>(cfg);
    }
    case ModelId::kLrml: {
      LrmlConfig cfg;
      cfg.dim = dim;
      return std::make_unique<Lrml>(cfg);
    }
    case ModelId::kSml: {
      SmlConfig cfg;
      cfg.dim = dim;
      return std::make_unique<Sml>(cfg);
    }
    case ModelId::kMar: {
      MultiFacetConfig cfg = HarnessFacetConfig();
      cfg.dim = dim;
      if (overrides.num_facets > 0) cfg.num_facets = overrides.num_facets;
      if (overrides.lambda_pull >= 0.0) cfg.lambda_pull = overrides.lambda_pull;
      if (overrides.lambda_facet >= 0.0)
        cfg.lambda_facet = overrides.lambda_facet;
      return std::make_unique<Mar>(cfg);
    }
    case ModelId::kMars: {
      MultiFacetConfig cfg = HarnessFacetConfig();
      cfg.dim = dim;
      if (overrides.num_facets > 0) cfg.num_facets = overrides.num_facets;
      if (overrides.lambda_pull >= 0.0) cfg.lambda_pull = overrides.lambda_pull;
      if (overrides.lambda_facet >= 0.0)
        cfg.lambda_facet = overrides.lambda_facet;
      return std::make_unique<Mars>(cfg);
    }
  }
  MARS_CHECK_MSG(false, "unknown model id");
  return nullptr;
}

ZooOverrides TunedOverrides(ModelId id, BenchmarkId dataset) {
  ZooOverrides ov;
  if (id != ModelId::kMar && id != ModelId::kMars) return ov;
  // Dev-split grid search over K ∈ [1,6] (Sec. V-A4): the sparser,
  // item-heavy corpora prefer fewer facet spaces.
  switch (dataset) {
    case BenchmarkId::kCiao:
      ov.num_facets = 2;
      break;
    case BenchmarkId::kDelicious:
    case BenchmarkId::kLastfm:
    case BenchmarkId::kBookX:
    case BenchmarkId::kMl1m:
    case BenchmarkId::kMl20m:
      ov.num_facets = 4;
      break;
  }
  return ov;
}

TrainOptions TunedTrainOptions(ModelId id, BenchmarkId dataset, bool fast) {
  TrainOptions opts = HarnessTrainOptions(id, fast);
  if (fast) return opts;
  // The multi-facet models keep improving past the shared 30-epoch budget
  // on the sparsest item-heavy corpora; early stopping trims the rest.
  if (id == ModelId::kMars || id == ModelId::kMar) {
    switch (dataset) {
      case BenchmarkId::kCiao:
      case BenchmarkId::kBookX:
        opts.epochs = 50;
        break;
      default:
        break;
    }
  }
  return opts;
}

TrainOptions HarnessTrainOptions(ModelId id, bool fast) {
  TrainOptions opts;
  opts.epochs = fast ? 6 : 30;
  opts.eval_every = fast ? 3 : 5;
  opts.patience = 2;
  opts.seed = 7;
  switch (id) {
    case ModelId::kBpr:
      opts.learning_rate = 0.05;
      break;
    case ModelId::kNmf:
      opts.epochs = fast ? 15 : 60;  // multiplicative sweeps
      break;
    case ModelId::kNeuMf:
      opts.learning_rate = 0.01;
      opts.epochs = fast ? 4 : 20;  // 1+4 pair updates per step
      break;
    case ModelId::kCml:
    case ModelId::kMetricF:
    case ModelId::kTransCf:
    case ModelId::kLrml:
    case ModelId::kSml:
      opts.learning_rate = 0.05;
      break;
    case ModelId::kMar:
      opts.learning_rate = 0.1;
      if (fast) opts.epochs = 10;  // multi-facet needs a few more sweeps
      break;
    case ModelId::kMars:
      opts.learning_rate = 0.2;  // Riemannian steps on unit vectors
      if (fast) opts.epochs = 12;
      break;
  }
  return opts;
}

}  // namespace mars
