// Principal component analysis via power iteration with deflation.
//
// Used by the Fig. 7 reproduction to project item facet embeddings to 2-D
// for visualization dumps. Deterministic (fixed internal seed) and
// dependency-free; adequate for the small covariance matrices (D ≤ 1024)
// this library produces.
#ifndef MARS_ANALYSIS_PCA_H_
#define MARS_ANALYSIS_PCA_H_

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace mars {

/// Result of a PCA projection.
struct PcaResult {
  /// Projected data (rows × components).
  Matrix projected;
  /// Principal directions (components × input dim).
  Matrix components;
  /// Eigenvalues (variance along each component), descending.
  std::vector<double> eigenvalues;
};

/// Projects `data` (rows = samples) onto its top `components` principal
/// directions. Data is mean-centered internally.
PcaResult ComputePca(const Matrix& data, size_t components,
                     size_t power_iterations = 100);

}  // namespace mars

#endif  // MARS_ANALYSIS_PCA_H_
