// Case-study analytics over learned multi-facet models (paper Sec. V-E).
//
// Powers the reproductions of Fig. 7 (are item categories better separated
// in facet spaces than in a single space?), Table V (which categories
// dominate each facet space?), and Table VI (how do individual users
// distribute their facet weights?).
#ifndef MARS_ANALYSIS_FACET_ANALYSIS_H_
#define MARS_ANALYSIS_FACET_ANALYSIS_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "core/mar.h"
#include "core/mars.h"
#include "data/dataset.h"

namespace mars {

/// Model-agnostic view over a multi-facet embedding model.
struct FacetView {
  size_t num_facets = 0;
  size_t dim = 0;
  std::function<std::vector<float>(UserId, size_t)> user_embedding;
  std::function<std::vector<float>(ItemId, size_t)> item_embedding;
  std::function<std::vector<float>(UserId)> facet_weights;
};

/// Adapters for the two core models.
FacetView MakeFacetView(const Mar& model);
FacetView MakeFacetView(const Mars& model);

/// A single-space view (K = 1) over any (user, item) embedding pair, used
/// to run the same analytics on CML for the Fig. 7 comparison.
FacetView MakeSingleSpaceView(const Matrix& user_embeddings,
                              const Matrix& item_embeddings);

/// Stacks all item embeddings of facet `k` into an M×D matrix (input to
/// PCA and separation statistics).
Matrix StackItemFacetEmbeddings(const FacetView& view, size_t num_items,
                                size_t k);

/// Category-separation statistics of one embedding space.
struct SeparationStats {
  /// Mean distance between items of the same category.
  double mean_intra = 0.0;
  /// Mean distance between items of different categories.
  double mean_inter = 0.0;
  /// inter / intra; > 1 means categories are separated.
  double separation_ratio = 0.0;
  /// Fraction of items whose nearest category centroid is their own.
  double centroid_purity = 0.0;
};

/// Computes separation statistics for `embeddings` (rows = items) under
/// ground-truth `categories`. Pairwise terms are subsampled to at most
/// `max_pairs` deterministic draws.
SeparationStats ComputeSeparation(const Matrix& embeddings,
                                  const std::vector<int>& categories,
                                  size_t max_pairs = 200000);

/// Share of interaction mass a category receives in facet `k`:
///   share(c | k) = Σ_{(u,v)∈I, cat(v)=c} θ_u^k / Σ_{(u,v)∈I} θ_u^k
/// (Table V: "top categories with proportions in each embedding space").
struct CategoryShare {
  int category = 0;
  std::string name;
  double share = 0.0;
};

/// Per-facet category shares, sorted descending by share.
std::vector<std::vector<CategoryShare>> FacetCategoryShares(
    const FacetView& view, const ImplicitDataset& dataset);

/// One user's facet profile (Table VI): facet weights plus the categories
/// of the items they interacted with, attributed to the facet where the
/// user-item cosine similarity is highest.
struct UserFacetProfile {
  UserId user = 0;
  std::vector<float> theta;
  /// Per facet: (category name, interaction count), sorted descending.
  std::vector<std::vector<std::pair<std::string, size_t>>> facet_categories;
};

/// Builds the profile of user `u`.
UserFacetProfile ProfileUser(const FacetView& view,
                             const ImplicitDataset& dataset, UserId u);

}  // namespace mars

#endif  // MARS_ANALYSIS_FACET_ANALYSIS_H_
