#include "analysis/facet_analysis.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/vec.h"

namespace mars {

FacetView MakeFacetView(const Mar& model) {
  FacetView view;
  view.num_facets = model.config().num_facets;
  view.dim = model.config().dim;
  view.user_embedding = [&model](UserId u, size_t k) {
    return model.UserFacetEmbedding(u, k);
  };
  view.item_embedding = [&model](ItemId v, size_t k) {
    return model.ItemFacetEmbedding(v, k);
  };
  view.facet_weights = [&model](UserId u) { return model.FacetWeights(u); };
  return view;
}

FacetView MakeFacetView(const Mars& model) {
  FacetView view;
  view.num_facets = model.config().num_facets;
  view.dim = model.config().dim;
  view.user_embedding = [&model](UserId u, size_t k) {
    return model.UserFacetEmbedding(u, k);
  };
  view.item_embedding = [&model](ItemId v, size_t k) {
    return model.ItemFacetEmbedding(v, k);
  };
  view.facet_weights = [&model](UserId u) { return model.FacetWeights(u); };
  return view;
}

FacetView MakeSingleSpaceView(const Matrix& user_embeddings,
                              const Matrix& item_embeddings) {
  MARS_CHECK(user_embeddings.cols() == item_embeddings.cols());
  FacetView view;
  view.num_facets = 1;
  view.dim = user_embeddings.cols();
  view.user_embedding = [&user_embeddings](UserId u, size_t) {
    const float* row = user_embeddings.Row(u);
    return std::vector<float>(row, row + user_embeddings.cols());
  };
  view.item_embedding = [&item_embeddings](ItemId v, size_t) {
    const float* row = item_embeddings.Row(v);
    return std::vector<float>(row, row + item_embeddings.cols());
  };
  view.facet_weights = [](UserId) { return std::vector<float>{1.0f}; };
  return view;
}

Matrix StackItemFacetEmbeddings(const FacetView& view, size_t num_items,
                                size_t k) {
  MARS_CHECK(k < view.num_facets);
  Matrix out(num_items, view.dim);
  for (ItemId v = 0; v < num_items; ++v) {
    const std::vector<float> e = view.item_embedding(v, k);
    Copy(e.data(), out.Row(v), view.dim);
  }
  return out;
}

SeparationStats ComputeSeparation(const Matrix& embeddings,
                                  const std::vector<int>& categories,
                                  size_t max_pairs) {
  MARS_CHECK(embeddings.rows() == categories.size());
  const size_t n = embeddings.rows();
  const size_t d = embeddings.cols();
  SeparationStats stats;
  if (n < 2) return stats;

  // Subsampled pairwise distances.
  Rng rng(0x5E9A12);  // deterministic
  double intra_sum = 0.0, inter_sum = 0.0;
  size_t intra_n = 0, inter_n = 0;
  const size_t total_pairs = n * (n - 1) / 2;
  const size_t samples = std::min(max_pairs, total_pairs * 2);
  for (size_t s = 0; s < samples; ++s) {
    const size_t i = static_cast<size_t>(rng.UniformInt(n));
    size_t j = static_cast<size_t>(rng.UniformInt(n));
    if (i == j) continue;
    const double dist = std::sqrt(
        SquaredDistance(embeddings.Row(i), embeddings.Row(j), d));
    if (categories[i] == categories[j]) {
      intra_sum += dist;
      ++intra_n;
    } else {
      inter_sum += dist;
      ++inter_n;
    }
  }
  if (intra_n > 0) stats.mean_intra = intra_sum / intra_n;
  if (inter_n > 0) stats.mean_inter = inter_sum / inter_n;
  if (stats.mean_intra > 1e-12) {
    stats.separation_ratio = stats.mean_inter / stats.mean_intra;
  }

  // Centroid purity.
  int num_cats = 0;
  for (int c : categories) num_cats = std::max(num_cats, c + 1);
  Matrix centroids(num_cats, d);
  std::vector<size_t> counts(num_cats, 0);
  for (size_t i = 0; i < n; ++i) {
    Axpy(1.0f, embeddings.Row(i), centroids.Row(categories[i]), d);
    ++counts[categories[i]];
  }
  for (int c = 0; c < num_cats; ++c) {
    if (counts[c] > 0) {
      Scale(1.0f / static_cast<float>(counts[c]), centroids.Row(c), d);
    }
  }
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    int best = -1;
    float best_d = 0.0f;
    for (int c = 0; c < num_cats; ++c) {
      if (counts[c] == 0) continue;
      const float dist = SquaredDistance(embeddings.Row(i), centroids.Row(c), d);
      if (best < 0 || dist < best_d) {
        best = c;
        best_d = dist;
      }
    }
    if (best == categories[i]) ++correct;
  }
  stats.centroid_purity = static_cast<double>(correct) / static_cast<double>(n);
  return stats;
}

std::vector<std::vector<CategoryShare>> FacetCategoryShares(
    const FacetView& view, const ImplicitDataset& dataset) {
  MARS_CHECK(dataset.has_categories());
  const size_t kf = view.num_facets;
  const int num_cats = dataset.num_categories();

  // mass[k][c] = Σ_{(u,v): cat(v)=c} θ_u^k
  std::vector<std::vector<double>> mass(
      kf, std::vector<double>(num_cats, 0.0));
  std::vector<double> total(kf, 0.0);
  for (const Interaction& x : dataset.interactions()) {
    const std::vector<float> theta = view.facet_weights(x.user);
    const int c = dataset.ItemCategory(x.item);
    for (size_t k = 0; k < kf; ++k) {
      mass[k][c] += theta[k];
      total[k] += theta[k];
    }
  }

  std::vector<std::vector<CategoryShare>> shares(kf);
  for (size_t k = 0; k < kf; ++k) {
    for (int c = 0; c < num_cats; ++c) {
      CategoryShare cs;
      cs.category = c;
      cs.name = dataset.CategoryName(c);
      cs.share = total[k] > 0.0 ? mass[k][c] / total[k] : 0.0;
      shares[k].push_back(cs);
    }
    std::sort(shares[k].begin(), shares[k].end(),
              [](const CategoryShare& a, const CategoryShare& b) {
                return a.share > b.share;
              });
  }
  return shares;
}

UserFacetProfile ProfileUser(const FacetView& view,
                             const ImplicitDataset& dataset, UserId u) {
  MARS_CHECK(dataset.has_categories());
  const size_t kf = view.num_facets;
  UserFacetProfile profile;
  profile.user = u;
  profile.theta = view.facet_weights(u);

  // Attribute each interacted item to the facet with the highest cosine
  // similarity between the user's and the item's facet embeddings.
  std::vector<std::vector<size_t>> cat_counts(
      kf, std::vector<size_t>(dataset.num_categories(), 0));
  std::vector<std::vector<float>> user_embs(kf);
  for (size_t k = 0; k < kf; ++k) user_embs[k] = view.user_embedding(u, k);

  for (ItemId v : dataset.ItemsOf(u)) {
    size_t best_k = 0;
    float best_s = -1e30f;
    for (size_t k = 0; k < kf; ++k) {
      const std::vector<float> item_emb = view.item_embedding(v, k);
      const float s = Cosine(user_embs[k].data(), item_emb.data(), view.dim);
      if (s > best_s) {
        best_s = s;
        best_k = k;
      }
    }
    ++cat_counts[best_k][dataset.ItemCategory(v)];
  }

  profile.facet_categories.resize(kf);
  for (size_t k = 0; k < kf; ++k) {
    std::vector<std::pair<std::string, size_t>> entries;
    for (int c = 0; c < dataset.num_categories(); ++c) {
      if (cat_counts[k][c] > 0) {
        entries.emplace_back(dataset.CategoryName(c), cat_counts[k][c]);
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    profile.facet_categories[k] = std::move(entries);
  }
  return profile;
}

}  // namespace mars
