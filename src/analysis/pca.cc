#include "analysis/pca.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/vec.h"

namespace mars {

PcaResult ComputePca(const Matrix& data, size_t components,
                     size_t power_iterations) {
  MARS_CHECK(components >= 1);
  const size_t n = data.rows();
  const size_t d = data.cols();
  MARS_CHECK(n >= 2 && d >= components);

  // Mean-center a working copy.
  Matrix centered(n, d);
  std::vector<double> mean(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const float* row = data.Row(r);
    for (size_t c = 0; c < d; ++c) mean[c] += row[c];
  }
  for (size_t c = 0; c < d; ++c) mean[c] /= static_cast<double>(n);
  for (size_t r = 0; r < n; ++r) {
    const float* src = data.Row(r);
    float* dst = centered.Row(r);
    for (size_t c = 0; c < d; ++c) {
      dst[c] = src[c] - static_cast<float>(mean[c]);
    }
  }

  // Covariance (d×d, scaled by 1/(n-1)).
  Matrix cov(d, d);
  Gram(centered, &cov);
  const float inv = 1.0f / static_cast<float>(n - 1);
  for (size_t i = 0; i < d; ++i) Scale(inv, cov.Row(i), d);

  PcaResult result;
  result.components = Matrix(components, d);
  result.eigenvalues.resize(components);

  Rng rng(0xFACADE);
  std::vector<float> v(d), av(d);
  for (size_t comp = 0; comp < components; ++comp) {
    for (float& x : v) x = static_cast<float>(rng.Normal());
    NormalizeInPlace(v.data(), d);
    double lambda = 0.0;
    for (size_t it = 0; it < power_iterations; ++it) {
      Gemv(cov, v.data(), av.data());
      lambda = Norm(av.data(), d);
      if (lambda < 1e-12) break;
      Copy(av.data(), v.data(), d);
      Scale(1.0f / static_cast<float>(lambda), v.data(), d);
    }
    result.eigenvalues[comp] = lambda;
    Copy(v.data(), result.components.Row(comp), d);
    // Deflate: cov -= λ v vᵀ.
    AddOuterProduct(-static_cast<float>(lambda), v.data(), v.data(), &cov);
  }

  result.projected = Matrix(n, components);
  for (size_t r = 0; r < n; ++r) {
    for (size_t comp = 0; comp < components; ++comp) {
      result.projected.At(r, comp) =
          Dot(centered.Row(r), result.components.Row(comp), d);
    }
  }
  return result;
}

}  // namespace mars
