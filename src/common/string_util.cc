#include "common/string_util.h"

#include <cstdio>
#include <cstdlib>

namespace mars {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::string FormatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatPercent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", fraction * 100.0);
  return buf;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::string GetEnvOr(const std::string& name, const std::string& def) {
  const char* v = std::getenv(name.c_str());
  return v == nullptr ? def : std::string(v);
}

bool EnvFlagSet(const std::string& name) {
  const std::string v = GetEnvOr(name, "");
  return v == "1" || v == "true" || v == "on" || v == "yes";
}

}  // namespace mars
