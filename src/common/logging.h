// Minimal leveled logging to stderr.
//
// Usage: MARS_LOG(INFO) << "trained epoch " << e;
// Levels: DEBUG < INFO < WARN < ERROR. The minimum emitted level defaults to
// INFO and can be changed programmatically or via the MARS_LOG_LEVEL
// environment variable (DEBUG/INFO/WARN/ERROR).
#ifndef MARS_COMMON_LOGGING_H_
#define MARS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mars {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Returns the current minimum emitted level.
LogLevel GetLogLevel();

/// Sets the minimum emitted level.
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace mars

#define MARS_LOG_DEBUG \
  ::mars::internal::LogMessage(::mars::LogLevel::kDebug, __FILE__, __LINE__)
#define MARS_LOG_INFO \
  ::mars::internal::LogMessage(::mars::LogLevel::kInfo, __FILE__, __LINE__)
#define MARS_LOG_WARN \
  ::mars::internal::LogMessage(::mars::LogLevel::kWarn, __FILE__, __LINE__)
#define MARS_LOG_ERROR \
  ::mars::internal::LogMessage(::mars::LogLevel::kError, __FILE__, __LINE__)

#define MARS_LOG(severity) MARS_LOG_##severity

#endif  // MARS_COMMON_LOGGING_H_
