#include "common/vec.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace mars {

float Dot(const float* a, const float* b, size_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  float acc = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float SquaredDistance(const float* a, const float* b, size_t n) {
  float acc0 = 0.0f, acc1 = 0.0f;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
  }
  float acc = acc0 + acc1;
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float Norm(const float* a, size_t n) { return std::sqrt(SquaredNorm(a, n)); }

float SquaredNorm(const float* a, size_t n) { return Dot(a, a, n); }

void Axpy(float alpha, const float* b, float* a, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a[i] += alpha * b[i];
    a[i + 1] += alpha * b[i + 1];
    a[i + 2] += alpha * b[i + 2];
    a[i + 3] += alpha * b[i + 3];
  }
  for (; i < n; ++i) a[i] += alpha * b[i];
}

void Scale(float alpha, float* a, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] *= alpha;
}

void Sub(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void Add(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void Copy(const float* a, float* out, size_t n) {
  std::memcpy(out, a, n * sizeof(float));
}

void Fill(float value, float* a, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] = value;
}

void Hadamard(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

float Cosine(const float* a, const float* b, size_t n) {
  // One fused traversal: dot and both squared norms share the loads.
  float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
  float p0 = 0.0f, p1 = 0.0f, p2 = 0.0f, p3 = 0.0f;
  float q0 = 0.0f, q1 = 0.0f, q2 = 0.0f, q3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float a0 = a[i], a1 = a[i + 1], a2 = a[i + 2], a3 = a[i + 3];
    const float b0 = b[i], b1 = b[i + 1], b2 = b[i + 2], b3 = b[i + 3];
    d0 += a0 * b0;
    d1 += a1 * b1;
    d2 += a2 * b2;
    d3 += a3 * b3;
    p0 += a0 * a0;
    p1 += a1 * a1;
    p2 += a2 * a2;
    p3 += a3 * a3;
    q0 += b0 * b0;
    q1 += b1 * b1;
    q2 += b2 * b2;
    q3 += b3 * b3;
  }
  float dot = (d0 + d1) + (d2 + d3);
  float na2 = (p0 + p1) + (p2 + p3);
  float nb2 = (q0 + q1) + (q2 + q3);
  for (; i < n; ++i) {
    dot += a[i] * b[i];
    na2 += a[i] * a[i];
    nb2 += b[i] * b[i];
  }
  const float na = std::sqrt(na2);
  const float nb = std::sqrt(nb2);
  if (na < 1e-12f || nb < 1e-12f) return 0.0f;
  return dot / (na * nb);
}

bool NormalizeInPlace(float* a, size_t n) {
  const float norm = Norm(a, n);
  if (norm < 1e-12f) return false;
  Scale(1.0f / norm, a, n);
  return true;
}

bool ProjectToUnitBall(float* a, size_t n) {
  const float norm = Norm(a, n);
  if (norm <= 1.0f) return false;
  Scale(1.0f / norm, a, n);
  return true;
}

void Softmax(const float* logits, float* out, size_t n) {
  MARS_CHECK(n > 0);
  float max_logit = logits[0];
  for (size_t i = 1; i < n; ++i) max_logit = std::max(max_logit, logits[i]);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::exp(static_cast<double>(logits[i] - max_logit));
    sum += out[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (size_t i = 0; i < n; ++i) out[i] *= inv;
}

double Softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

float Dot(const std::vector<float>& a, const std::vector<float>& b) {
  MARS_CHECK(a.size() == b.size());
  return Dot(a.data(), b.data(), a.size());
}

float SquaredDistance(const std::vector<float>& a,
                      const std::vector<float>& b) {
  MARS_CHECK(a.size() == b.size());
  return SquaredDistance(a.data(), b.data(), a.size());
}

float Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  MARS_CHECK(a.size() == b.size());
  return Cosine(a.data(), b.data(), a.size());
}

}  // namespace mars
