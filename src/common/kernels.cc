#include "common/kernels.h"

#include <cmath>

#include "common/vec.h"

namespace mars {

namespace {

// Row primitives for the batch loops: 8-wide accumulator arrays vectorize
// to two full SIMD chains under -O2/-O3, measurably ahead of the 4-scalar
// unroll in vec.cc when amortized over a block of candidate rows (the
// scalar kernels keep their layout for bit-stable single-call results).

inline float DotRow(const float* a, const float* b, size_t n) {
  float acc[8] = {0.0f};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) acc[j] += a[i + j] * b[i + j];
  }
  float s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
            ((acc[4] + acc[5]) + (acc[6] + acc[7]));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

inline float SquaredDistanceRow(const float* a, const float* b, size_t n) {
  float acc[8] = {0.0f};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const float dlt = a[i + j] - b[i + j];
      acc[j] += dlt * dlt;
    }
  }
  float s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
            ((acc[4] + acc[5]) + (acc[6] + acc[7]));
  for (; i < n; ++i) {
    const float dlt = a[i] - b[i];
    s += dlt * dlt;
  }
  return s;
}

/// Fused dot(a,b) and ||b||² in one traversal — the per-candidate piece of
/// CosineBatch (||a|| is hoisted by the caller).
inline void DotAndNormRow(const float* a, const float* b, size_t n,
                          float* dot, float* bnorm2) {
  float acc_d[8] = {0.0f};
  float acc_q[8] = {0.0f};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const float bj = b[i + j];
      acc_d[j] += a[i + j] * bj;
      acc_q[j] += bj * bj;
    }
  }
  float d = ((acc_d[0] + acc_d[1]) + (acc_d[2] + acc_d[3])) +
            ((acc_d[4] + acc_d[5]) + (acc_d[6] + acc_d[7]));
  float q = ((acc_q[0] + acc_q[1]) + (acc_q[2] + acc_q[3])) +
            ((acc_q[4] + acc_q[5]) + (acc_q[6] + acc_q[7]));
  for (; i < n; ++i) {
    d += a[i] * b[i];
    q += b[i] * b[i];
  }
  *dot = d;
  *bnorm2 = q;
}

}  // namespace

void DotBatch(const float* u, const float* rows, size_t count, size_t stride,
              size_t n, float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = DotRow(u, rows + r * stride, n);
  }
}

void SquaredDistanceBatch(const float* u, const float* rows, size_t count,
                          size_t stride, size_t n, float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = SquaredDistanceRow(u, rows + r * stride, n);
  }
}

void CosineBatch(const float* u, const float* rows, size_t count,
                 size_t stride, size_t n, float* out) {
  const float nu = Norm(u, n);
  if (nu < 1e-12f) {
    for (size_t r = 0; r < count; ++r) out[r] = 0.0f;
    return;
  }
  const float inv_nu = 1.0f / nu;
  for (size_t r = 0; r < count; ++r) {
    float dot, nr2;
    DotAndNormRow(u, rows + r * stride, n, &dot, &nr2);
    const float nr = std::sqrt(nr2);
    out[r] = nr < 1e-12f ? 0.0f : dot * inv_nu / nr;
  }
}

void DotGather(const float* u, const float* base, size_t stride,
               const uint32_t* ids, size_t count, size_t n, float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = DotRow(u, base + ids[r] * stride, n);
  }
}

void SquaredDistanceGather(const float* u, const float* base, size_t stride,
                           const uint32_t* ids, size_t count, size_t n,
                           float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = SquaredDistanceRow(u, base + ids[r] * stride, n);
  }
}

void NegatedSquaredDistanceGather(const float* u, const float* base,
                                  size_t stride, const uint32_t* ids,
                                  size_t count, size_t n, float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = -SquaredDistanceRow(u, base + ids[r] * stride, n);
  }
}

float WeightedFacetDot(const float* u, size_t u_stride, const float* v,
                       size_t v_stride, const float* w, size_t num_facets,
                       size_t n) {
  float score = 0.0f;
  for (size_t k = 0; k < num_facets; ++k) {
    score += w[k] * DotRow(u + k * u_stride, v + k * v_stride, n);
  }
  return score;
}

float WeightedFacetSquaredDistance(const float* u, size_t u_stride,
                                   const float* v, size_t v_stride,
                                   const float* w, size_t num_facets,
                                   size_t n) {
  float score = 0.0f;
  for (size_t k = 0; k < num_facets; ++k) {
    score += w[k] * SquaredDistanceRow(u + k * u_stride, v + k * v_stride, n);
  }
  return score;
}

void NegatedSquaredDistanceBatch(const float* u, const float* rows,
                                 size_t count, size_t stride, size_t n,
                                 float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = -SquaredDistanceRow(u, rows + r * stride, n);
  }
}

void WeightedFacetDotBatch(const float* u, size_t u_stride,
                           const float* blocks, size_t block_stride,
                           size_t row_stride, const float* w,
                           size_t num_facets, size_t count, size_t n,
                           float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = WeightedFacetDot(u, u_stride, blocks + r * block_stride,
                              row_stride, w, num_facets, n);
  }
}

void WeightedFacetSquaredDistanceBatch(const float* u, size_t u_stride,
                                       const float* blocks,
                                       size_t block_stride, size_t row_stride,
                                       const float* w, size_t num_facets,
                                       size_t count, size_t n, float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = WeightedFacetSquaredDistance(u, u_stride,
                                          blocks + r * block_stride,
                                          row_stride, w, num_facets, n);
  }
}

}  // namespace mars
