#include "common/kernels.h"

#include <cmath>

#include "common/kernels_detail.h"
#include "common/vec.h"

namespace mars {

namespace {

using kernels_detail::DotAndNormRowGeneric;
using kernels_detail::DotRowGeneric;
using kernels_detail::HasAvx2Fma;
using kernels_detail::SquaredDistanceRowGeneric;

// Each public kernel dispatches once per *call* (not per row) between the
// generic autovectorized loop and an AVX2+FMA twin whose row primitives
// inline into a target-annotated batch loop. Families share row
// primitives on both paths, so gather and batch forms stay bit-identical
// to each other whichever path the host takes — see kernels_detail.h for
// the measured wins (1.3-1.7x on this shape) and the rounding contract.

#if MARS_KERNELS_HAVE_AVX2

using kernels_detail::DotAndNormRowAvx2;
using kernels_detail::DotRowAvx2;
using kernels_detail::DotRowAvx2X4;
using kernels_detail::SquaredDistanceRowAvx2;
using kernels_detail::SquaredDistanceRowAvx2X4;

MARS_AVX2_FN void DotBatchAvx2(const float* u, const float* rows,
                               size_t count, size_t stride, size_t n,
                               float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = DotRowAvx2(u, rows + r * stride, n);
  }
}

MARS_AVX2_FN void SquaredDistanceBatchAvx2(const float* u, const float* rows,
                                           size_t count, size_t stride,
                                           size_t n, float* out,
                                           float sign) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = sign * SquaredDistanceRowAvx2(u, rows + r * stride, n);
  }
}

MARS_AVX2_FN void DotGatherAvx2(const float* u, const float* base,
                                size_t stride, const uint32_t* ids,
                                size_t count, size_t n, float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = DotRowAvx2(u, base + ids[r] * stride, n);
  }
}

MARS_AVX2_FN void SquaredDistanceGatherAvx2(const float* u, const float* base,
                                            size_t stride,
                                            const uint32_t* ids, size_t count,
                                            size_t n, float* out,
                                            float sign) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = sign * SquaredDistanceRowAvx2(u, base + ids[r] * stride, n);
  }
}

MARS_AVX2_FN void CosineBatchAvx2(const float* u, const float* rows,
                                  size_t count, size_t stride, size_t n,
                                  float inv_nu, float* out) {
  for (size_t r = 0; r < count; ++r) {
    float dot, nr2;
    DotAndNormRowAvx2(u, rows + r * stride, n, &dot, &nr2);
    const float nr = std::sqrt(nr2);
    out[r] = nr < 1e-12f ? 0.0f : dot * inv_nu / nr;
  }
}

MARS_AVX2_FN float WeightedFacetDotAvx2(const float* u, size_t u_stride,
                                        const float* v, size_t v_stride,
                                        const float* w, size_t num_facets,
                                        size_t n) {
  float score = 0.0f;
  for (size_t k = 0; k < num_facets; ++k) {
    score += w[k] * DotRowAvx2(u + k * u_stride, v + k * v_stride, n);
  }
  return score;
}

MARS_AVX2_FN float WeightedFacetSquaredDistanceAvx2(
    const float* u, size_t u_stride, const float* v, size_t v_stride,
    const float* w, size_t num_facets, size_t n) {
  float score = 0.0f;
  for (size_t k = 0; k < num_facets; ++k) {
    score +=
        w[k] * SquaredDistanceRowAvx2(u + k * u_stride, v + k * v_stride, n);
  }
  return score;
}

MARS_AVX2_FN void WeightedFacetDotBatchAvx2(const float* u, size_t u_stride,
                                            const float* blocks,
                                            size_t block_stride,
                                            size_t row_stride, const float* w,
                                            size_t num_facets, size_t count,
                                            size_t n, float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = WeightedFacetDotAvx2(u, u_stride, blocks + r * block_stride,
                                  row_stride, w, num_facets, n);
  }
}

MARS_AVX2_FN void WeightedFacetSquaredDistanceBatchAvx2(
    const float* u, size_t u_stride, const float* blocks, size_t block_stride,
    size_t row_stride, const float* w, size_t num_facets, size_t count,
    size_t n, float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = WeightedFacetSquaredDistanceAvx2(u, u_stride,
                                              blocks + r * block_stride,
                                              row_stride, w, num_facets, n);
  }
}

// Multi-user batch loops: candidate rows in the outer loop so each row is
// loaded once per user quad (DotRowAvx2X4 / SquaredDistanceRowAvx2X4 share
// the row's vector loads across four FMA chains); the B mod 4 remainder
// users run the single-user row primitive. Per user both shapes execute
// the identical op sequence, keeping every lane bit-identical to the
// single-user kernel.

MARS_AVX2_FN void DotBatchMultiAvx2(const float* const* us, size_t num_users,
                                    const float* rows, size_t count,
                                    size_t stride, size_t n,
                                    float* const* out) {
  const size_t quads = num_users & ~static_cast<size_t>(3);
  for (size_t r = 0; r < count; ++r) {
    const float* row = rows + r * stride;
    size_t b = 0;
    for (; b < quads; b += 4) {
      float s[4];
      DotRowAvx2X4(us + b, row, n, s);
      for (size_t j = 0; j < 4; ++j) out[b + j][r] = s[j];
    }
    for (; b < num_users; ++b) out[b][r] = DotRowAvx2(us[b], row, n);
  }
}

MARS_AVX2_FN void SquaredDistanceBatchMultiAvx2(
    const float* const* us, size_t num_users, const float* rows, size_t count,
    size_t stride, size_t n, float* const* out, float sign) {
  const size_t quads = num_users & ~static_cast<size_t>(3);
  for (size_t r = 0; r < count; ++r) {
    const float* row = rows + r * stride;
    size_t b = 0;
    for (; b < quads; b += 4) {
      float s[4];
      SquaredDistanceRowAvx2X4(us + b, row, n, s);
      for (size_t j = 0; j < 4; ++j) out[b + j][r] = sign * s[j];
    }
    for (; b < num_users; ++b) {
      out[b][r] = sign * SquaredDistanceRowAvx2(us[b], row, n);
    }
  }
}

MARS_AVX2_FN void WeightedFacetDotBatchMultiAvx2(
    const float* const* us, size_t u_stride, const float* const* ws,
    size_t num_users, const float* blocks, size_t block_stride,
    size_t row_stride, size_t num_facets, size_t count, size_t n,
    float* const* out) {
  const size_t quads = num_users & ~static_cast<size_t>(3);
  for (size_t r = 0; r < count; ++r) {
    const float* block = blocks + r * block_stride;
    size_t b = 0;
    for (; b < quads; b += 4) {
      float score[4] = {0.0f, 0.0f, 0.0f, 0.0f};
      for (size_t k = 0; k < num_facets; ++k) {
        const float* uf[4] = {us[b] + k * u_stride, us[b + 1] + k * u_stride,
                              us[b + 2] + k * u_stride,
                              us[b + 3] + k * u_stride};
        float d[4];
        DotRowAvx2X4(uf, block + k * row_stride, n, d);
        for (size_t j = 0; j < 4; ++j) score[j] += ws[b + j][k] * d[j];
      }
      for (size_t j = 0; j < 4; ++j) out[b + j][r] = score[j];
    }
    for (; b < num_users; ++b) {
      out[b][r] = WeightedFacetDotAvx2(us[b], u_stride, block, row_stride,
                                       ws[b], num_facets, n);
    }
  }
}

MARS_AVX2_FN void WeightedFacetSquaredDistanceBatchMultiAvx2(
    const float* const* us, size_t u_stride, const float* const* ws,
    size_t num_users, const float* blocks, size_t block_stride,
    size_t row_stride, size_t num_facets, size_t count, size_t n,
    float* const* out) {
  const size_t quads = num_users & ~static_cast<size_t>(3);
  for (size_t r = 0; r < count; ++r) {
    const float* block = blocks + r * block_stride;
    size_t b = 0;
    for (; b < quads; b += 4) {
      float score[4] = {0.0f, 0.0f, 0.0f, 0.0f};
      for (size_t k = 0; k < num_facets; ++k) {
        const float* uf[4] = {us[b] + k * u_stride, us[b + 1] + k * u_stride,
                              us[b + 2] + k * u_stride,
                              us[b + 3] + k * u_stride};
        float d[4];
        SquaredDistanceRowAvx2X4(uf, block + k * row_stride, n, d);
        for (size_t j = 0; j < 4; ++j) score[j] += ws[b + j][k] * d[j];
      }
      for (size_t j = 0; j < 4; ++j) out[b + j][r] = score[j];
    }
    for (; b < num_users; ++b) {
      out[b][r] = WeightedFacetSquaredDistanceAvx2(
          us[b], u_stride, block, row_stride, ws[b], num_facets, n);
    }
  }
}

MARS_AVX2_FN void NearestCentroidDotBatchAvx2(
    const float* rows, size_t count, size_t stride, const float* centroids,
    size_t num_centroids, size_t centroid_stride, size_t n, uint32_t* out) {
  for (size_t r = 0; r < count; ++r) {
    const float* row = rows + r * stride;
    float best = DotRowAvx2(row, centroids, n);
    uint32_t best_c = 0;
    for (size_t c = 1; c < num_centroids; ++c) {
      const float d = DotRowAvx2(row, centroids + c * centroid_stride, n);
      if (d > best) {
        best = d;
        best_c = static_cast<uint32_t>(c);
      }
    }
    out[r] = best_c;
  }
}

#endif  // MARS_KERNELS_HAVE_AVX2

}  // namespace

void DotBatch(const float* u, const float* rows, size_t count, size_t stride,
              size_t n, float* out) {
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    DotBatchAvx2(u, rows, count, stride, n, out);
    return;
  }
#endif
  for (size_t r = 0; r < count; ++r) {
    out[r] = DotRowGeneric(u, rows + r * stride, n);
  }
}

void SquaredDistanceBatch(const float* u, const float* rows, size_t count,
                          size_t stride, size_t n, float* out) {
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    SquaredDistanceBatchAvx2(u, rows, count, stride, n, out, 1.0f);
    return;
  }
#endif
  for (size_t r = 0; r < count; ++r) {
    out[r] = SquaredDistanceRowGeneric(u, rows + r * stride, n);
  }
}

void CosineBatch(const float* u, const float* rows, size_t count,
                 size_t stride, size_t n, float* out) {
  const float nu = Norm(u, n);
  if (nu < 1e-12f) {
    for (size_t r = 0; r < count; ++r) out[r] = 0.0f;
    return;
  }
  const float inv_nu = 1.0f / nu;
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    CosineBatchAvx2(u, rows, count, stride, n, inv_nu, out);
    return;
  }
#endif
  for (size_t r = 0; r < count; ++r) {
    float dot, nr2;
    DotAndNormRowGeneric(u, rows + r * stride, n, &dot, &nr2);
    const float nr = std::sqrt(nr2);
    out[r] = nr < 1e-12f ? 0.0f : dot * inv_nu / nr;
  }
}

void DotGather(const float* u, const float* base, size_t stride,
               const uint32_t* ids, size_t count, size_t n, float* out) {
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    DotGatherAvx2(u, base, stride, ids, count, n, out);
    return;
  }
#endif
  for (size_t r = 0; r < count; ++r) {
    out[r] = DotRowGeneric(u, base + ids[r] * stride, n);
  }
}

void SquaredDistanceGather(const float* u, const float* base, size_t stride,
                           const uint32_t* ids, size_t count, size_t n,
                           float* out) {
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    SquaredDistanceGatherAvx2(u, base, stride, ids, count, n, out, 1.0f);
    return;
  }
#endif
  for (size_t r = 0; r < count; ++r) {
    out[r] = SquaredDistanceRowGeneric(u, base + ids[r] * stride, n);
  }
}

void NegatedSquaredDistanceGather(const float* u, const float* base,
                                  size_t stride, const uint32_t* ids,
                                  size_t count, size_t n, float* out) {
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    SquaredDistanceGatherAvx2(u, base, stride, ids, count, n, out, -1.0f);
    return;
  }
#endif
  for (size_t r = 0; r < count; ++r) {
    out[r] = -SquaredDistanceRowGeneric(u, base + ids[r] * stride, n);
  }
}

float WeightedFacetDot(const float* u, size_t u_stride, const float* v,
                       size_t v_stride, const float* w, size_t num_facets,
                       size_t n) {
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    return WeightedFacetDotAvx2(u, u_stride, v, v_stride, w, num_facets, n);
  }
#endif
  float score = 0.0f;
  for (size_t k = 0; k < num_facets; ++k) {
    score += w[k] * DotRowGeneric(u + k * u_stride, v + k * v_stride, n);
  }
  return score;
}

float WeightedFacetSquaredDistance(const float* u, size_t u_stride,
                                   const float* v, size_t v_stride,
                                   const float* w, size_t num_facets,
                                   size_t n) {
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    return WeightedFacetSquaredDistanceAvx2(u, u_stride, v, v_stride, w,
                                            num_facets, n);
  }
#endif
  float score = 0.0f;
  for (size_t k = 0; k < num_facets; ++k) {
    score += w[k] * SquaredDistanceRowGeneric(u + k * u_stride,
                                              v + k * v_stride, n);
  }
  return score;
}

void NegatedSquaredDistanceBatch(const float* u, const float* rows,
                                 size_t count, size_t stride, size_t n,
                                 float* out) {
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    SquaredDistanceBatchAvx2(u, rows, count, stride, n, out, -1.0f);
    return;
  }
#endif
  for (size_t r = 0; r < count; ++r) {
    out[r] = -SquaredDistanceRowGeneric(u, rows + r * stride, n);
  }
}

void NearestCentroidDotBatch(const float* rows, size_t count, size_t stride,
                             const float* centroids, size_t num_centroids,
                             size_t centroid_stride, size_t n,
                             uint32_t* out) {
  if (count == 0 || num_centroids == 0) return;
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    NearestCentroidDotBatchAvx2(rows, count, stride, centroids, num_centroids,
                                centroid_stride, n, out);
    return;
  }
#endif
  for (size_t r = 0; r < count; ++r) {
    const float* row = rows + r * stride;
    float best = DotRowGeneric(row, centroids, n);
    uint32_t best_c = 0;
    for (size_t c = 1; c < num_centroids; ++c) {
      const float d = DotRowGeneric(row, centroids + c * centroid_stride, n);
      if (d > best) {
        best = d;
        best_c = static_cast<uint32_t>(c);
      }
    }
    out[r] = best_c;
  }
}

void WeightedFacetDotBatch(const float* u, size_t u_stride,
                           const float* blocks, size_t block_stride,
                           size_t row_stride, const float* w,
                           size_t num_facets, size_t count, size_t n,
                           float* out) {
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    WeightedFacetDotBatchAvx2(u, u_stride, blocks, block_stride, row_stride,
                              w, num_facets, count, n, out);
    return;
  }
#endif
  for (size_t r = 0; r < count; ++r) {
    const float* block = blocks + r * block_stride;
    float score = 0.0f;
    for (size_t k = 0; k < num_facets; ++k) {
      score += w[k] * DotRowGeneric(u + k * u_stride, block + k * row_stride,
                                    n);
    }
    out[r] = score;
  }
}

void DotBatchMulti(const float* const* us, size_t num_users,
                   const float* rows, size_t count, size_t stride, size_t n,
                   float* const* out) {
  if (num_users == 0 || count == 0) return;
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    DotBatchMultiAvx2(us, num_users, rows, count, stride, n, out);
    return;
  }
#endif
  // Generic path: the candidate row stays hot across the inner user loop;
  // per user this is exactly the single-user generic reduction.
  for (size_t r = 0; r < count; ++r) {
    const float* row = rows + r * stride;
    for (size_t b = 0; b < num_users; ++b) {
      out[b][r] = DotRowGeneric(us[b], row, n);
    }
  }
}

void NegatedSquaredDistanceBatchMulti(const float* const* us,
                                      size_t num_users, const float* rows,
                                      size_t count, size_t stride, size_t n,
                                      float* const* out) {
  if (num_users == 0 || count == 0) return;
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    SquaredDistanceBatchMultiAvx2(us, num_users, rows, count, stride, n, out,
                                  -1.0f);
    return;
  }
#endif
  for (size_t r = 0; r < count; ++r) {
    const float* row = rows + r * stride;
    for (size_t b = 0; b < num_users; ++b) {
      out[b][r] = -SquaredDistanceRowGeneric(us[b], row, n);
    }
  }
}

void WeightedFacetDotBatchMulti(const float* const* us, size_t u_stride,
                                const float* const* ws, size_t num_users,
                                const float* blocks, size_t block_stride,
                                size_t row_stride, size_t num_facets,
                                size_t count, size_t n, float* const* out) {
  if (num_users == 0 || count == 0) return;
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    WeightedFacetDotBatchMultiAvx2(us, u_stride, ws, num_users, blocks,
                                   block_stride, row_stride, num_facets,
                                   count, n, out);
    return;
  }
#endif
  for (size_t r = 0; r < count; ++r) {
    const float* block = blocks + r * block_stride;
    for (size_t b = 0; b < num_users; ++b) {
      float score = 0.0f;
      for (size_t k = 0; k < num_facets; ++k) {
        score += ws[b][k] * DotRowGeneric(us[b] + k * u_stride,
                                          block + k * row_stride, n);
      }
      out[b][r] = score;
    }
  }
}

void WeightedFacetSquaredDistanceBatchMulti(
    const float* const* us, size_t u_stride, const float* const* ws,
    size_t num_users, const float* blocks, size_t block_stride,
    size_t row_stride, size_t num_facets, size_t count, size_t n,
    float* const* out) {
  if (num_users == 0 || count == 0) return;
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    WeightedFacetSquaredDistanceBatchMultiAvx2(us, u_stride, ws, num_users,
                                               blocks, block_stride,
                                               row_stride, num_facets, count,
                                               n, out);
    return;
  }
#endif
  for (size_t r = 0; r < count; ++r) {
    const float* block = blocks + r * block_stride;
    for (size_t b = 0; b < num_users; ++b) {
      float score = 0.0f;
      for (size_t k = 0; k < num_facets; ++k) {
        score += ws[b][k] * SquaredDistanceRowGeneric(us[b] + k * u_stride,
                                                      block + k * row_stride,
                                                      n);
      }
      out[b][r] = score;
    }
  }
}

void WeightedFacetSquaredDistanceBatch(const float* u, size_t u_stride,
                                       const float* blocks,
                                       size_t block_stride, size_t row_stride,
                                       const float* w, size_t num_facets,
                                       size_t count, size_t n, float* out) {
#if MARS_KERNELS_HAVE_AVX2
  if (HasAvx2Fma()) {
    WeightedFacetSquaredDistanceBatchAvx2(u, u_stride, blocks, block_stride,
                                          row_stride, w, num_facets, count, n,
                                          out);
    return;
  }
#endif
  for (size_t r = 0; r < count; ++r) {
    const float* block = blocks + r * block_stride;
    float score = 0.0f;
    for (size_t k = 0; k < num_facets; ++k) {
      score += w[k] * SquaredDistanceRowGeneric(u + k * u_stride,
                                                block + k * row_stride, n);
    }
    out[r] = score;
  }
}

}  // namespace mars
