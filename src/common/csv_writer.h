// Streaming CSV writer for experiment result dumps (Fig. 7 scatter data,
// sweep curves, metric logs).
#ifndef MARS_COMMON_CSV_WRITER_H_
#define MARS_COMMON_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

namespace mars {

/// Writes rows of comma-separated values to a file.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Check ok() before use.
  explicit CsvWriter(const std::string& path);

  /// True when the underlying file opened successfully.
  bool ok() const { return out_.is_open(); }

  /// Writes one row; fields are written verbatim (caller quotes if needed).
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience: writes a row of doubles with 6 decimal digits.
  void WriteNumericRow(const std::vector<double>& values);

  /// Flushes buffered output.
  void Flush();

 private:
  std::ofstream out_;
};

}  // namespace mars

#endif  // MARS_COMMON_CSV_WRITER_H_
