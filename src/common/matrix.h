// Dense row-major float matrix.
//
// Used for facet projection matrices (D×D), embedding tables (N×D), NMF
// factors, and MLP weights. The class stores a flat contiguous buffer; row
// pointers are exposed so the hot training loops can work on raw floats.
#ifndef MARS_COMMON_MATRIX_H_
#define MARS_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace mars {

class Rng;

/// Dense row-major matrix of float.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows×cols matrix initialized to zero.
  Matrix(size_t rows, size_t cols);

  /// Creates a rows×cols matrix filled with `value`.
  Matrix(size_t rows, size_t cols, float value);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* Row(size_t r) {
    MARS_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    MARS_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  float& At(size_t r, size_t c) {
    MARS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    MARS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Fills with i.i.d. N(mean, stddev) draws.
  void FillNormal(Rng* rng, float mean, float stddev);

  /// Fills with i.i.d. Uniform(lo, hi) draws.
  void FillUniform(Rng* rng, float lo, float hi);

  /// Initializes as identity plus N(0, noise) perturbation (square only).
  /// Used to initialize facet projection matrices near the identity so that
  /// facet spaces start as mild rotations of the universal space.
  void FillIdentityPlusNoise(Rng* rng, float noise);

  /// Frobenius norm.
  float FrobeniusNorm() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = M^T x  (M is rows×cols, x has `rows` elems, out has `cols` elems).
/// This is the facet projection u^k = Φ_k^T u from Eq. 1 of the paper.
void GemvTransposed(const Matrix& m, const float* x, float* out);

/// out = M x  (M is rows×cols, x has `cols` elems, out has `rows` elems).
void Gemv(const Matrix& m, const float* x, float* out);

/// Rank-1 accumulate: M += alpha * x y^T (x has rows, y has cols elems).
void AddOuterProduct(float alpha, const float* x, const float* y, Matrix* m);

/// C = A^T A  (A is rows×cols; C must be cols×cols). Used by NMF and PCA.
void Gram(const Matrix& a, Matrix* c);

/// C = A B    (A rows×inner, B inner×cols, C rows×cols).
void Matmul(const Matrix& a, const Matrix& b, Matrix* c);

}  // namespace mars

#endif  // MARS_COMMON_MATRIX_H_
