// Owned-or-borrowed flat buffers: the mapped-index counterpart of the
// FacetStore BorrowConst idiom, for plain std::vector-shaped state.
//
// The ANN indexes (ann/ivf_index.h, ann/vp_tree_index.h) keep their state
// in flat contiguous arrays — exactly the shape a mapped index file
// exposes read-only. MaybeOwned<T> lets one member serve both lifecycles:
// a freshly built index owns a std::vector<T>; an index loaded with
// LoadCandidateIndexMapped borrows a const span of the mapping (whose
// lifetime the holder pins with a keepalive shared_ptr, same contract as
// MappedFacetStore). The read surface (data/size/operator[]/span) is
// identical either way, so probe code cannot tell the difference — the
// bit-identity property the mapped-index tests pin.
//
// Mutation is owned-only: mutable_vec()/mutable_data() assert on a
// borrowed buffer, and EnsureOwned() is the copy-on-write step — Rebuilt
// on a mapped index materializes exactly the arrays it must write and
// leaves the rest (e.g. the IVF centroids) borrowed from the mapping.
#ifndef MARS_COMMON_MAYBE_OWNED_H_
#define MARS_COMMON_MAYBE_OWNED_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"

namespace mars {

template <typename T>
class MaybeOwned {
 public:
  MaybeOwned() = default;

  /// Copying a borrowed buffer copies the pointer, not the payload — the
  /// holder must carry the keepalive along (CandidateIndex does).
  MaybeOwned(const MaybeOwned&) = default;
  MaybeOwned& operator=(const MaybeOwned&) = default;
  MaybeOwned(MaybeOwned&&) = default;
  MaybeOwned& operator=(MaybeOwned&&) = default;

  /// Points this buffer at caller-owned storage (drops any owned payload).
  void Borrow(const T* data, size_t size) {
    owned_.clear();
    owned_.shrink_to_fit();
    borrowed_data_ = data;
    borrowed_size_ = size;
    borrowed_ = true;
  }

  bool borrowed() const { return borrowed_; }

  // Read surface — identical for owned and borrowed buffers.
  const T* data() const { return borrowed_ ? borrowed_data_ : owned_.data(); }
  size_t size() const { return borrowed_ ? borrowed_size_ : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const { return data()[i]; }
  std::span<const T> span() const { return {data(), size()}; }

  // Write surface — owned buffers only (a mapped region is immutable).
  std::vector<T>& mutable_vec() {
    MARS_CHECK_MSG(!borrowed_, "mutating a borrowed (mapped) buffer");
    return owned_;
  }
  T* mutable_data() { return mutable_vec().data(); }

  /// Copy-on-write: a borrowed buffer becomes an owned copy; an owned
  /// buffer is untouched. After this, the write surface is usable.
  void EnsureOwned() {
    if (!borrowed_) return;
    owned_.assign(borrowed_data_, borrowed_data_ + borrowed_size_);
    borrowed_data_ = nullptr;
    borrowed_size_ = 0;
    borrowed_ = false;
  }

 private:
  std::vector<T> owned_;
  const T* borrowed_data_ = nullptr;
  size_t borrowed_size_ = 0;
  bool borrowed_ = false;
};

}  // namespace mars

#endif  // MARS_COMMON_MAYBE_OWNED_H_
