#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace mars {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  worker_ids_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
    worker_ids_.push_back(workers_.back().get_id());
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::IsWorkerThread() const {
  // worker_ids_ is immutable after construction, so no lock is needed.
  const std::thread::id self = std::this_thread::get_id();
  return std::find(worker_ids_.begin(), worker_ids_.end(), self) !=
         worker_ids_.end();
}

void ThreadPool::Submit(std::function<void()> task) {
  MARS_DCHECK(!IsWorkerThread());
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  // A task waiting on its own pool counts itself as in-flight and would
  // block forever; abort with a diagnostic instead of hanging.
  MARS_CHECK_MSG(!IsWorkerThread(),
                 "ThreadPool::Wait called from a pool task (re-entrant use)");
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::RunBatch(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  MARS_CHECK_MSG(!IsWorkerThread(),
                 "ThreadPool::RunBatch called from a pool task "
                 "(re-entrant use)");
  // Batch-scoped completion state, independent of the pool-global
  // in-flight count: concurrent batch owners only wait for their own
  // indices. Stack-allocated — the final wait keeps it alive past the
  // last task's notify.
  struct BatchState {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining;
  } batch;
  batch.remaining = n;
  for (size_t i = 0; i < n; ++i) {
    Submit([i, &fn, &batch] {
      fn(i);
      std::unique_lock<std::mutex> lock(batch.mu);
      if (--batch.remaining == 0) batch.done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(batch.mu);
  batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t num_chunks = std::min(n, workers_.size() * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  const size_t batches = (n + chunk - 1) / chunk;
  RunBatch(batches, [n, chunk, &fn](size_t b) {
    const size_t start = b * chunk;
    const size_t end = std::min(n, start + chunk);
    for (size_t i = start; i < end; ++i) fn(i);
  });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

size_t DefaultThreadCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

}  // namespace mars
