// Simple fixed-size thread pool used to parallelize evaluation
// (per-user ranking is embarrassingly parallel).
#ifndef MARS_COMMON_THREAD_POOL_H_
#define MARS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mars {

/// Fixed-size worker pool. Submit closures; Wait() blocks until all
/// submitted work has finished. Not re-entrant (do not Submit from a task).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits.
  /// Work is chunked to limit queue overhead.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Returns a reasonable default parallelism (hardware_concurrency, >= 1).
size_t DefaultThreadCount();

}  // namespace mars

#endif  // MARS_COMMON_THREAD_POOL_H_
