// Simple fixed-size thread pool used to parallelize evaluation
// (per-user ranking is embarrassingly parallel).
#ifndef MARS_COMMON_THREAD_POOL_H_
#define MARS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mars {

/// Fixed-size worker pool. Submit closures; Wait() blocks until all
/// submitted work has finished.
///
/// NOT re-entrant: a task must never call Submit/Wait/ParallelFor on the
/// pool that runs it. Wait() counts the calling task itself as in-flight,
/// so a nested Wait() deadlocks by construction; Wait() aborts loudly
/// (always, not just in debug) when called from a worker, and Submit
/// asserts in debug builds. Code that needs nested parallelism (e.g.
/// evaluation overlapped with training) must use two distinct pools.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called from a task on this pool
  /// (asserted in debug builds).
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed. Aborts if called
  /// from a task on this pool — that would wait for itself forever.
  void Wait();

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until *this
  /// batch* — not the whole queue — has finished. Unlike Submit+Wait,
  /// which waits on the pool-global in-flight count, each RunBatch call
  /// tracks its own completion, so several non-worker threads can fan out
  /// batches concurrently without waiting on one another's work (the
  /// concurrent top-k sweep path). Tasks are still serviced by the shared
  /// worker queue; the same re-entrancy rule applies (never from a worker).
  void RunBatch(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers, i.e. the
  /// caller is inside a task and must not Submit/Wait here.
  bool IsWorkerThread() const;

  /// Runs `fn(i)` for i in [0, n) across the pool and waits. Dispatch is
  /// chunked — one queued closure per contiguous index range, a few chunks
  /// per worker — so fine-grained loops (per-user eval ranking) don't pay
  /// one queue round-trip per index.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::vector<std::thread::id> worker_ids_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Returns a reasonable default parallelism (hardware_concurrency, >= 1).
size_t DefaultThreadCount();

}  // namespace mars

#endif  // MARS_COMMON_THREAD_POOL_H_
