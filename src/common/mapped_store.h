// Zero-copy, read-only FacetStore views over mmap'd snapshot files.
//
// A format-v3 snapshot (docs/FORMAT.md, core/persistence.h) writes its
// facet tensors with the *exact* in-memory FacetStore layout: rows padded
// to the 64-byte-aligned stride, each tensor starting on a 64-byte file
// offset. Because mmap returns page-aligned (≥ 4096-byte) addresses, a
// 64-byte file offset is a 64-byte memory address, so the payload region of
// a mapped v3 file *is* a valid FacetStore buffer — serving a persisted
// model becomes an mmap + pointer fix-up instead of a deserialize-and-copy.
//
// MappedFile owns the mapping (RAII over open + mmap(PROT_READ) + munmap);
// MappedFacetStore pins a MappedFile and exposes one tensor region of it
// through the ordinary FacetStore read surface (Row/EntityBlock/
// ConstShardView/ShardRange), validated for alignment, stride, and bounds
// at construction. Multiple stores (e.g. the user and item tensors of one
// snapshot) share the same MappedFile via shared_ptr.
//
// Lifetime contract: anything that captured a raw pointer into the store
// (a borrowed FacetStore, a serving model from LoadMarsMapped) must not
// outlive the MappedFile — holders keep the shared_ptr alive for exactly
// that reason. The mapping is immutable; writing through it faults.
#ifndef MARS_COMMON_MAPPED_STORE_H_
#define MARS_COMMON_MAPPED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/facet_store.h"

namespace mars {

/// Read-only memory-mapped file (RAII). Non-copyable, non-movable — hand
/// out shared_ptr<MappedFile> instead.
class MappedFile {
 public:
  /// Maps `path` read-only. Returns nullptr (with an error log) when the
  /// file cannot be opened, stat'd, or mapped. Empty files map to a valid
  /// object with size() == 0.
  static std::shared_ptr<MappedFile> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  MappedFile(const uint8_t* data, size_t size, std::string path)
      : data_(data), size_(size), path_(std::move(path)) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

/// One [entity][facet][dim] tensor inside a MappedFile, exposed through the
/// FacetStore read surface without copying a byte.
class MappedFacetStore {
 public:
  /// Wraps the `num_entities * num_facets * row_stride` floats starting at
  /// `byte_offset` of `file`. Returns nullptr (with an error log) when:
  ///   - `byte_offset` is not a FacetStore::kRowAlignBytes multiple (the
  ///     mapped base would not be cache-line aligned),
  ///   - `row_stride` is not the aligned stride for `dim`
  ///     (FacetStore::RowStrideFor — a foreign or corrupt layout),
  ///   - the region overruns the file (truncated payload).
  static std::unique_ptr<MappedFacetStore> Create(
      std::shared_ptr<MappedFile> file, size_t byte_offset,
      size_t num_entities, size_t num_facets, size_t dim, size_t row_stride);

  /// The borrowed store view; valid for the life of this object.
  const FacetStore& store() const { return store_; }
  /// The backing mapping (share it to extend the lifetime).
  const std::shared_ptr<MappedFile>& file() const { return file_; }

  // Convenience forwards mirroring the owned-store read surface.
  size_t num_entities() const { return store_.num_entities(); }
  size_t num_facets() const { return store_.num_facets(); }
  size_t dim() const { return store_.dim(); }
  size_t row_stride() const { return store_.row_stride(); }
  size_t entity_stride() const { return store_.entity_stride(); }
  const float* Row(size_t e, size_t k) const { return store_.Row(e, k); }
  const float* EntityBlock(size_t e) const { return store_.EntityBlock(e); }
  FacetStore::ConstShardView ConstShard(size_t shard,
                                        size_t num_shards) const {
    return store_.ConstShard(shard, num_shards);
  }

 private:
  MappedFacetStore(std::shared_ptr<MappedFile> file, FacetStore store)
      : file_(std::move(file)), store_(std::move(store)) {}

  std::shared_ptr<MappedFile> file_;
  FacetStore store_;  // borrowed view into file_
};

}  // namespace mars

#endif  // MARS_COMMON_MAPPED_STORE_H_
