#include "common/table_printer.h"

#include <cstdio>
#include <fstream>

namespace mars {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(const std::vector<std::string>& header) {
  header_ = header;
}

void TablePrinter::AddRow(const std::vector<std::string>& row) {
  rows_.push_back(row);
}

void TablePrinter::AddSeparator() {
  rows_.push_back({kSeparatorTag});
}

std::string TablePrinter::ToString() const {
  // Compute column widths across header and all rows.
  size_t ncols = header_.size();
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorTag) continue;
    ncols = std::max(ncols, row.size());
  }
  std::vector<size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorTag) continue;
    widen(row);
  }

  size_t total = 0;
  for (size_t w : width) total += w + 3;
  if (total > 0) total -= 1;

  std::string out;
  if (!title_.empty()) {
    out += "== " + title_ + " ==\n";
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : "";
      line += cell;
      if (i + 1 < ncols) {
        line.append(width[i] - cell.size(), ' ');
        line += " | ";
      }
    }
    out += line + "\n";
  };
  const std::string rule(total, '-');
  if (!header_.empty()) {
    render_row(header_);
    out += rule + "\n";
  }
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorTag) {
      out += rule + "\n";
    } else {
      render_row(row);
    }
  }
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

bool TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f.is_open()) return false;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) f << ",";
      f << row[i];
    }
    f << "\n";
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& row : rows_) {
    if (!row.empty() && row[0] == kSeparatorTag) continue;
    write_row(row);
  }
  return true;
}

}  // namespace mars
