#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace mars {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&sm);
  // xoshiro must not be seeded with all zeros; SplitMix64 of any seed cannot
  // produce four zero words, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  MARS_DCHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  MARS_CHECK(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Gamma(double shape) {
  MARS_CHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 1e-300 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

std::vector<double> Rng::Dirichlet(const std::vector<double>& alpha) {
  MARS_CHECK(!alpha.empty());
  std::vector<double> out(alpha.size());
  double sum = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    out[i] = Gamma(alpha[i]);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Degenerate draw (all gammas underflowed); fall back to uniform.
    for (double& x : out) x = 1.0 / static_cast<double>(out.size());
    return out;
  }
  for (double& x : out) x /= sum;
  return out;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace mars
