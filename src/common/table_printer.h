// Fixed-width console table printer.
//
// Every bench binary reproduces a paper table by filling one of these and
// printing it, so the console output mirrors the row/column structure the
// paper reports (model × metric grids with Imp columns, sweeps, etc.).
#ifndef MARS_COMMON_TABLE_PRINTER_H_
#define MARS_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace mars {

/// Builds and renders an aligned text table.
class TablePrinter {
 public:
  /// `title` is printed above the table; may be empty.
  explicit TablePrinter(std::string title = "");

  /// Sets the header row.
  void SetHeader(const std::vector<std::string>& header);

  /// Appends a data row. Rows may have fewer cells than the header.
  void AddRow(const std::vector<std::string>& row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table to a string.
  std::string ToString() const;

  /// Prints the table to stdout.
  void Print() const;

  /// Writes the table as CSV (no alignment padding) to `path`.
  /// Returns false if the file could not be opened.
  bool WriteCsv(const std::string& path) const;

 private:
  static constexpr const char* kSeparatorTag = "\x01SEP\x01";

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mars

#endif  // MARS_COMMON_TABLE_PRINTER_H_
