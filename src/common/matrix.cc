#include "common/matrix.h"

#include <cmath>

#include "common/rng.h"
#include "common/vec.h"

namespace mars {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Matrix::Matrix(size_t rows, size_t cols, float value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

void Matrix::Fill(float value) {
  for (float& x : data_) x = value;
}

void Matrix::FillNormal(Rng* rng, float mean, float stddev) {
  for (float& x : data_)
    x = static_cast<float>(rng->Normal(mean, stddev));
}

void Matrix::FillUniform(Rng* rng, float lo, float hi) {
  for (float& x : data_) x = static_cast<float>(rng->Uniform(lo, hi));
}

void Matrix::FillIdentityPlusNoise(Rng* rng, float noise) {
  MARS_CHECK(rows_ == cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      const float eye = (r == c) ? 1.0f : 0.0f;
      At(r, c) = eye + static_cast<float>(rng->Normal(0.0, noise));
    }
  }
}

float Matrix::FrobeniusNorm() const {
  return Norm(data_.data(), data_.size());
}

void GemvTransposed(const Matrix& m, const float* x, float* out) {
  const size_t rows = m.rows();
  const size_t cols = m.cols();
  Fill(0.0f, out, cols);
  for (size_t r = 0; r < rows; ++r) {
    const float xr = x[r];
    if (xr == 0.0f) continue;
    const float* row = m.Row(r);
    Axpy(xr, row, out, cols);
  }
}

void Gemv(const Matrix& m, const float* x, float* out) {
  const size_t rows = m.rows();
  const size_t cols = m.cols();
  for (size_t r = 0; r < rows; ++r) {
    out[r] = Dot(m.Row(r), x, cols);
  }
}

void AddOuterProduct(float alpha, const float* x, const float* y, Matrix* m) {
  const size_t rows = m->rows();
  const size_t cols = m->cols();
  for (size_t r = 0; r < rows; ++r) {
    const float ax = alpha * x[r];
    if (ax == 0.0f) continue;
    Axpy(ax, y, m->Row(r), cols);
  }
}

void Gram(const Matrix& a, Matrix* c) {
  const size_t cols = a.cols();
  MARS_CHECK(c->rows() == cols && c->cols() == cols);
  c->Fill(0.0f);
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* row = a.Row(r);
    for (size_t i = 0; i < cols; ++i) {
      const float xi = row[i];
      if (xi == 0.0f) continue;
      Axpy(xi, row, c->Row(i), cols);
    }
  }
}

void Matmul(const Matrix& a, const Matrix& b, Matrix* c) {
  MARS_CHECK(a.cols() == b.rows());
  MARS_CHECK(c->rows() == a.rows() && c->cols() == b.cols());
  c->Fill(0.0f);
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* crow = c->Row(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) continue;
      Axpy(aik, b.Row(k), crow, b.cols());
    }
  }
}

}  // namespace mars
