// Dense single-precision vector kernels.
//
// These are the hot-loop primitives every model in the library is built on:
// dot products, squared distances, AXPY updates, normalization, cosine
// similarity. All functions operate on raw float spans so embedding tables
// can be stored as flat contiguous arrays (cache-friendly, allocation-free
// in the training loop).
#ifndef MARS_COMMON_VEC_H_
#define MARS_COMMON_VEC_H_

#include <cstddef>
#include <vector>

namespace mars {

/// Dot product <a, b> over `n` elements.
float Dot(const float* a, const float* b, size_t n);

/// Squared Euclidean distance ||a - b||^2.
float SquaredDistance(const float* a, const float* b, size_t n);

/// Euclidean norm ||a||.
float Norm(const float* a, size_t n);

/// Squared norm ||a||^2.
float SquaredNorm(const float* a, size_t n);

/// a += alpha * b.
void Axpy(float alpha, const float* b, float* a, size_t n);

/// a *= alpha.
void Scale(float alpha, float* a, size_t n);

/// out = a - b.
void Sub(const float* a, const float* b, float* out, size_t n);

/// out = a + b.
void Add(const float* a, const float* b, float* out, size_t n);

/// out = a (copy).
void Copy(const float* a, float* out, size_t n);

/// Sets all elements to `value`.
void Fill(float value, float* a, size_t n);

/// Elementwise product out = a ⊙ b.
void Hadamard(const float* a, const float* b, float* out, size_t n);

/// Cosine similarity <a,b>/(||a||·||b||); returns 0 if either norm is ~0.
float Cosine(const float* a, const float* b, size_t n);

/// Rescales `a` to unit norm in place. No-op (returns false) if ||a|| ~ 0.
bool NormalizeInPlace(float* a, size_t n);

/// Projects `a` onto the unit ball: if ||a|| > 1, rescale to norm 1.
/// Returns true if a rescale happened. This is the CML-style constraint.
bool ProjectToUnitBall(float* a, size_t n);

/// Numerically-stable softmax of `logits` into `out` (sizes must match).
void Softmax(const float* logits, float* out, size_t n);

/// Stable log(1 + exp(x)).
double Softplus(double x);

/// Logistic sigmoid 1/(1+exp(-x)), numerically stable.
double Sigmoid(double x);

/// Convenience overloads on std::vector<float>.
float Dot(const std::vector<float>& a, const std::vector<float>& b);
float SquaredDistance(const std::vector<float>& a,
                      const std::vector<float>& b);
float Cosine(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace mars

#endif  // MARS_COMMON_VEC_H_
