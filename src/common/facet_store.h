// Contiguous multi-facet embedding storage.
//
// One buffer holds every facet embedding of every entity in
// [entity][facet][dim] order, so the training hot path — which always
// touches all K facet rows of the same entity (u, v⁺, v⁻) — reads one
// contiguous block per entity instead of K rows scattered across K separate
// Matrix allocations. Rows are padded to a 64-byte multiple (`row_stride()`
// floats) and the buffer itself is 64-byte aligned, so every facet row
// starts on a cache-line boundary; kernels (common/kernels.h) take the
// stride explicitly and ignore the zeroed padding.
#ifndef MARS_COMMON_FACET_STORE_H_
#define MARS_COMMON_FACET_STORE_H_

#include <cstddef>
#include <new>
#include <utility>
#include <vector>

#include "common/check.h"

namespace mars {

/// Minimal aligned allocator so std::vector storage lands on a cache-line
/// boundary (value semantics of the store stay trivial).
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  using value_type = T;

  /// Non-type template parameters defeat allocator_traits' automatic
  /// rebind; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const {
    return true;
  }
};

/// Contiguous [entity][facet][dim] store with cache-line-aligned rows.
///
/// Two storage modes share the same read surface:
///   - *owned* (the default): the store allocates and may be written —
///     training, snapshots, and copy-loads use this;
///   - *borrowed* (BorrowConst): the store is a read-only view over
///     external memory with exactly this layout — e.g. the payload region
///     of an mmap'd format-v3 snapshot (common/mapped_store.h). Borrowed
///     stores never own or free the bytes; the caller keeps the backing
///     mapping alive. Mutable accessors on a borrowed store are a
///     programming error and abort (MARS_CHECK — the external bytes are
///     never writable through this class). Copies of a borrowed store are
///     further borrowed views of the same memory.
class FacetStore {
 public:
  /// Rows are padded to this many bytes.
  static constexpr size_t kRowAlignBytes = 64;

  /// Row stride (in floats) an owned store uses for dimension `dim`: the
  /// smallest kRowAlignBytes multiple holding `dim` floats. Exposed so the
  /// persistence layer can write/validate the exact in-memory stride.
  static size_t RowStrideFor(size_t dim) {
    constexpr size_t kAlignFloats = kRowAlignBytes / sizeof(float);
    return (dim + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
  }

  /// Mutable view of the contiguous entity range [entity_begin, entity_end).
  ///
  /// Because entity blocks are whole multiples of the 64-byte row stride and
  /// the buffer base is 64-byte aligned, every shard's base pointer is
  /// 64-byte aligned and two disjoint shards never share a cache line —
  /// a worker may write its shard without false sharing against neighbors.
  /// Views are invalidated by reassigning the store.
  class ShardView {
   public:
    ShardView(FacetStore* store, size_t entity_begin, size_t entity_end)
        : store_(store), begin_(entity_begin), end_(entity_end) {
      MARS_DCHECK(store != nullptr);
      MARS_DCHECK(entity_begin <= entity_end);
      MARS_DCHECK(entity_end <= store->num_entities());
    }

    size_t entity_begin() const { return begin_; }
    size_t entity_end() const { return end_; }
    size_t num_entities() const { return end_ - begin_; }
    bool empty() const { return begin_ == end_; }
    const FacetStore& store() const { return *store_; }

    /// True when the view owns global entity id `e`.
    bool Contains(size_t e) const { return e >= begin_ && e < end_; }

    /// Facet row `k` of *global* entity id `e`; must be inside the shard.
    float* Row(size_t e, size_t k) const {
      MARS_DCHECK(Contains(e));
      return store_->Row(e, k);
    }
    /// Entity block of *global* entity id `e`; must be inside the shard.
    float* EntityBlock(size_t e) const {
      MARS_DCHECK(Contains(e));
      return store_->EntityBlock(e);
    }

    /// Base pointer of the shard (64-byte aligned; empty shards → nullptr).
    float* data() const {
      return empty() ? nullptr : store_->EntityBlock(begin_);
    }
    /// Total floats covered, padding included.
    size_t size_floats() const {
      return num_entities() * store_->entity_stride();
    }

    /// Bulk-copies the same entity range of `src` into this shard. Both
    /// stores must have identical shape (entities, facets, dim).
    void CopyFrom(const FacetStore& src) const;

   private:
    FacetStore* store_;
    size_t begin_;
    size_t end_;
  };

  /// Read-only view of the contiguous entity range [entity_begin,
  /// entity_end) — the const counterpart of ShardView, with the same
  /// alignment guarantees. This is the shard surface a borrowed
  /// (mmap-backed) store exposes: sweeps partition it exactly like an
  /// owned store, but nothing can write through it. Today's serving sweep
  /// goes through ScoreItemRange and only needs ShardRange, so the
  /// current consumers are MappedFacetStore::ConstShard and the
  /// owned/mapped parity tests; shard-level readers (e.g. a future
  /// row-partitioned rescorer over mapped snapshots) should take this
  /// view rather than grow a writable one.
  class ConstShardView {
   public:
    ConstShardView(const FacetStore* store, size_t entity_begin,
                   size_t entity_end)
        : store_(store), begin_(entity_begin), end_(entity_end) {
      MARS_DCHECK(store != nullptr);
      MARS_DCHECK(entity_begin <= entity_end);
      MARS_DCHECK(entity_end <= store->num_entities());
    }

    size_t entity_begin() const { return begin_; }
    size_t entity_end() const { return end_; }
    size_t num_entities() const { return end_ - begin_; }
    bool empty() const { return begin_ == end_; }
    const FacetStore& store() const { return *store_; }

    /// True when the view covers global entity id `e`.
    bool Contains(size_t e) const { return e >= begin_ && e < end_; }

    /// Facet row `k` of *global* entity id `e`; must be inside the shard.
    const float* Row(size_t e, size_t k) const {
      MARS_DCHECK(Contains(e));
      return store_->Row(e, k);
    }
    /// Entity block of *global* entity id `e`; must be inside the shard.
    const float* EntityBlock(size_t e) const {
      MARS_DCHECK(Contains(e));
      return store_->EntityBlock(e);
    }

    /// Base pointer of the shard (64-byte aligned; empty shards → nullptr).
    const float* data() const {
      return empty() ? nullptr : store_->EntityBlock(begin_);
    }
    /// Total floats covered, padding included.
    size_t size_floats() const {
      return num_entities() * store_->entity_stride();
    }

   private:
    const FacetStore* store_;
    size_t begin_;
    size_t end_;
  };

  FacetStore() = default;
  FacetStore(size_t num_entities, size_t num_facets, size_t dim);

  /// Borrowed read-only store over `base`, which must hold
  /// `num_entities * num_facets * row_stride` floats laid out exactly like
  /// an owned store ([entity][facet][dim] with `row_stride`-float rows).
  /// Requirements (checked): `base` is kRowAlignBytes-aligned, `row_stride`
  /// is a whole multiple of kRowAlignBytes and >= dim. The caller owns the
  /// lifetime of `base` (e.g. via MappedFacetStore).
  static FacetStore BorrowConst(const float* base, size_t num_entities,
                                size_t num_facets, size_t dim,
                                size_t row_stride);

  size_t num_entities() const { return num_entities_; }
  size_t num_facets() const { return num_facets_; }
  size_t dim() const { return dim_; }
  bool empty() const { return num_entities_ == 0; }

  /// True for a BorrowConst store (read-only, externally owned memory).
  bool borrowed() const { return borrowed_; }

  /// Floats between consecutive facet rows (>= dim, 16-float multiple).
  size_t row_stride() const { return row_stride_; }
  /// Floats between consecutive entity blocks (num_facets * row_stride).
  size_t entity_stride() const { return num_facets_ * row_stride_; }

  /// Facet row `k` of entity `e` (dim valid floats, padding after).
  /// Mutable accessors require an owned store (always checked: on a
  /// borrowed store they would not point into the external bytes at all).
  float* Row(size_t e, size_t k) {
    MARS_CHECK(!borrowed_);
    MARS_DCHECK(e < num_entities_ && k < num_facets_);
    return data_.data() + e * entity_stride() + k * row_stride_;
  }
  const float* Row(size_t e, size_t k) const {
    MARS_DCHECK(e < num_entities_ && k < num_facets_);
    return cdata() + e * entity_stride() + k * row_stride_;
  }

  /// All K facet rows of entity `e` as one contiguous (padded) block.
  float* EntityBlock(size_t e) {
    MARS_CHECK(!borrowed_);
    MARS_DCHECK(e < num_entities_);
    return data_.data() + e * entity_stride();
  }
  const float* EntityBlock(size_t e) const {
    MARS_DCHECK(e < num_entities_);
    return cdata() + e * entity_stride();
  }

  /// Copies entity `e` into a dense K×dim buffer (padding stripped).
  void CopyEntityTo(size_t e, float* out) const;

  /// Sets every element (padding included) to `value`.
  void Fill(float value);

  /// Balanced entity range of shard `shard` out of `num_shards`:
  /// the first (num_entities % num_shards) shards get one extra entity.
  /// Returns {begin, end}; ranges of consecutive shards tile
  /// [0, num_entities) exactly. `num_shards` may exceed num_entities
  /// (trailing shards come back empty).
  static std::pair<size_t, size_t> ShardRange(size_t num_entities,
                                              size_t shard, size_t num_shards);

  /// Inverse of ShardRange: the shard of `num_shards` whose range contains
  /// entity `e`. Used by the serving layer to map a dirtied row back to the
  /// shard-granular invalidation unit.
  static size_t ShardOf(size_t num_entities, size_t e, size_t num_shards);

  /// Mutable view of shard `shard` of `num_shards` (see ShardRange).
  ShardView Shard(size_t shard, size_t num_shards) {
    MARS_CHECK(!borrowed_);
    const auto [b, e] = ShardRange(num_entities_, shard, num_shards);
    return ShardView(this, b, e);
  }

  /// Read-only view of shard `shard` of `num_shards` (see ShardRange);
  /// works on owned and borrowed stores alike.
  ConstShardView ConstShard(size_t shard, size_t num_shards) const {
    const auto [b, e] = ShardRange(num_entities_, shard, num_shards);
    return ConstShardView(this, b, e);
  }

 private:
  /// Read-side base pointer: the allocation when owned, the external
  /// buffer when borrowed.
  const float* cdata() const {
    return borrowed_ ? borrowed_base_ : data_.data();
  }

  size_t num_entities_ = 0;
  size_t num_facets_ = 0;
  size_t dim_ = 0;
  size_t row_stride_ = 0;
  std::vector<float, AlignedAllocator<float, kRowAlignBytes>> data_;
  // BorrowConst mode: external read-only base, not owned.
  const float* borrowed_base_ = nullptr;
  bool borrowed_ = false;
};

}  // namespace mars

#endif  // MARS_COMMON_FACET_STORE_H_
