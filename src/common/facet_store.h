// Contiguous multi-facet embedding storage.
//
// One buffer holds every facet embedding of every entity in
// [entity][facet][dim] order, so the training hot path — which always
// touches all K facet rows of the same entity (u, v⁺, v⁻) — reads one
// contiguous block per entity instead of K rows scattered across K separate
// Matrix allocations. Rows are padded to a 64-byte multiple (`row_stride()`
// floats) and the buffer itself is 64-byte aligned, so every facet row
// starts on a cache-line boundary; kernels (common/kernels.h) take the
// stride explicitly and ignore the zeroed padding.
#ifndef MARS_COMMON_FACET_STORE_H_
#define MARS_COMMON_FACET_STORE_H_

#include <cstddef>
#include <new>
#include <vector>

#include "common/check.h"

namespace mars {

/// Minimal aligned allocator so std::vector storage lands on a cache-line
/// boundary (value semantics of the store stay trivial).
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  using value_type = T;

  /// Non-type template parameters defeat allocator_traits' automatic
  /// rebind; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const {
    return true;
  }
};

/// Contiguous [entity][facet][dim] store with cache-line-aligned rows.
class FacetStore {
 public:
  /// Rows are padded to this many bytes.
  static constexpr size_t kRowAlignBytes = 64;

  FacetStore() = default;
  FacetStore(size_t num_entities, size_t num_facets, size_t dim);

  size_t num_entities() const { return num_entities_; }
  size_t num_facets() const { return num_facets_; }
  size_t dim() const { return dim_; }
  bool empty() const { return data_.empty(); }

  /// Floats between consecutive facet rows (>= dim, 16-float multiple).
  size_t row_stride() const { return row_stride_; }
  /// Floats between consecutive entity blocks (num_facets * row_stride).
  size_t entity_stride() const { return num_facets_ * row_stride_; }

  /// Facet row `k` of entity `e` (dim valid floats, padding after).
  float* Row(size_t e, size_t k) {
    MARS_DCHECK(e < num_entities_ && k < num_facets_);
    return data_.data() + e * entity_stride() + k * row_stride_;
  }
  const float* Row(size_t e, size_t k) const {
    MARS_DCHECK(e < num_entities_ && k < num_facets_);
    return data_.data() + e * entity_stride() + k * row_stride_;
  }

  /// All K facet rows of entity `e` as one contiguous (padded) block.
  float* EntityBlock(size_t e) {
    MARS_DCHECK(e < num_entities_);
    return data_.data() + e * entity_stride();
  }
  const float* EntityBlock(size_t e) const {
    MARS_DCHECK(e < num_entities_);
    return data_.data() + e * entity_stride();
  }

  /// Copies entity `e` into a dense K×dim buffer (padding stripped).
  void CopyEntityTo(size_t e, float* out) const;

  /// Sets every element (padding included) to `value`.
  void Fill(float value);

 private:
  size_t num_entities_ = 0;
  size_t num_facets_ = 0;
  size_t dim_ = 0;
  size_t row_stride_ = 0;
  std::vector<float, AlignedAllocator<float, kRowAlignBytes>> data_;
};

}  // namespace mars

#endif  // MARS_COMMON_FACET_STORE_H_
