// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (data generation, samplers,
// model initialization, SGD shuffling) draw from mars::Rng seeded
// explicitly, so every experiment is reproducible bit-for-bit across runs.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded via SplitMix64,
// which is fast, has a 2^256-1 period, and passes BigCrush.
#ifndef MARS_COMMON_RNG_H_
#define MARS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mars {

/// Stateless SplitMix64 step; used for seeding and cheap hash-like mixing.
uint64_t SplitMix64(uint64_t* state);

/// Deterministic random number generator (xoshiro256**).
class Rng {
 public:
  /// Creates a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached spare value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Gamma(shape, 1) via Marsaglia-Tsang; `shape` > 0.
  double Gamma(double shape);

  /// Dirichlet sample with concentration `alpha` (size = alpha.size()).
  std::vector<double> Dirichlet(const std::vector<double>& alpha);

  /// Bernoulli draw with probability `p`.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `data`.
  template <typename T>
  void Shuffle(std::vector<T>* data) {
    if (data->size() < 2) return;
    for (size_t i = data->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*data)[i], (*data)[j]);
    }
  }

  /// Derives an independent child generator (for parallel streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace mars

#endif  // MARS_COMMON_RNG_H_
