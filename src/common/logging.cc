#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mars {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

LogLevel LevelFromEnv() {
  const char* env = std::getenv("MARS_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "WARN") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

struct EnvInit {
  EnvInit() { g_min_level.store(static_cast<int>(LevelFromEnv())); }
};
EnvInit g_env_init;

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < g_min_level.load()) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace mars
