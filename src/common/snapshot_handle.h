// Epoch-swapped snapshot publication: the RCU-style read path primitive.
//
// A SnapshotHandle<T> holds the *current* immutable snapshot of some state
// (a frozen model, a mapped store) behind one swappable shared_ptr slot.
// Readers call Acquire() to pin the snapshot for the duration of their
// operation — a ref-count bump under a micro-lock, nothing held afterwards
// — and publishers call Publish() to swap in the next epoch. In-flight
// readers keep serving from the epoch they pinned; the old snapshot is
// retired automatically when its last pinned reference drops. The lock
// covers only the pointer copy/swap (a few instructions), never the work
// readers do with the snapshot, so a publisher never blocks an in-flight
// sweep and a sweep never blocks the publisher beyond that copy.
//
// Implementation note: C++20's std::atomic<std::shared_ptr> would make
// the slot formally lock-free(ish), but libstdc++'s implementation guards
// its pointer field with a spin bit ThreadSanitizer cannot model, and
// this repo's CI runs the serving layer under TSAN with *no* suppressions
// (scripts/tsan.supp is scoped to model step functions). A plain mutex
// around the two-word copy is TSAN-clean, portable, and within noise of
// the atomic version for this access pattern: cache hits never touch the
// handle at all, so Acquire runs once per cache miss, not per query.
//
// This is the concurrency keystone of the serving layer: TopKServer pins
// one snapshot per miss-sweep, so ReplaceModel can publish a freshly
// trained epoch while any number of sweeps are mid-flight against the
// previous one. It is equally the generic form of the quiesce contract in
// docs/ARCHITECTURE.md — a snapshot handed to Publish must already be
// frozen (no concurrent writers); the handle adds safe *distribution* of
// frozen state, not mutual exclusion over live state.
//
// Epoch counter: every Publish bumps a monotonically increasing epoch,
// readable with epoch(). Publish swaps the pointer and increments the
// counter inside one critical section, so `epoch() == e` implies epoch
// e's snapshot is already acquirable. Consumers that cache state derived
// from a snapshot (the striped top-k cache) record the epoch they pinned
// and drop a computed result whose epoch is no longer current instead of
// caching stale data.
#ifndef MARS_COMMON_SNAPSHOT_HANDLE_H_
#define MARS_COMMON_SNAPSHOT_HANDLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace mars {

/// One swappable snapshot slot. T is the frozen state; the handle only
/// ever hands out `shared_ptr<const T>`.
template <typename T>
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  explicit SnapshotHandle(std::shared_ptr<const T> initial)
      : current_(std::move(initial)) {}

  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;

  /// Pins the current snapshot: the returned pointer stays valid (and the
  /// snapshot alive) until the caller drops it, regardless of how many
  /// epochs are published meanwhile. Safe from any thread, any time.
  /// When `epoch_out` is non-null it receives the pinned snapshot's epoch
  /// — read under the same lock, so the pair is always consistent even
  /// mid-Publish.
  std::shared_ptr<const T> Acquire(uint64_t* epoch_out = nullptr) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch_out != nullptr) {
      *epoch_out = epoch_.load(std::memory_order_relaxed);
    }
    return current_;
  }

  /// Publishes `next` as the new epoch and returns the snapshot it
  /// replaced (which may still be pinned by in-flight readers — dropping
  /// the returned pointer retires it once they finish). `next` must be
  /// frozen: the handle distributes immutable state, it does not lock
  /// writers out. Safe to race with Acquire; concurrent Publish calls
  /// serialize (last one wins).
  std::shared_ptr<const T> Publish(std::shared_ptr<const T> next) {
    std::lock_guard<std::mutex> lock(mu_);
    current_.swap(next);
    epoch_.fetch_add(1, std::memory_order_release);
    return next;  // holds the previous snapshot after the swap
  }

  /// Number of Publish calls so far. `epoch() == e` guarantees epoch e's
  /// snapshot is (or was) acquirable; a reader that pinned at epoch e can
  /// detect a concurrent swap by re-reading after its work and comparing.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const T> current_;
  std::atomic<uint64_t> epoch_{0};
};

/// Wraps a raw pointer the caller guarantees outlives every reader into
/// the shared_ptr shape SnapshotHandle hands out, without taking
/// ownership (no control-block allocation; the aliasing constructor on an
/// empty owner). This is the bridge for legacy call sites that still own
/// their model by value or unique_ptr.
template <typename T>
std::shared_ptr<const T> UnownedSnapshot(const T* ptr) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>{}, ptr);
}

}  // namespace mars

#endif  // MARS_COMMON_SNAPSHOT_HANDLE_H_
