// Lightweight invariant-checking macros.
//
// The library does not use exceptions across public APIs (per the project
// style conventions); violated invariants abort with a diagnostic instead.
// MARS_CHECK is always on; MARS_DCHECK compiles out in NDEBUG builds.
#ifndef MARS_COMMON_CHECK_H_
#define MARS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define MARS_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "MARS_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define MARS_CHECK_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "MARS_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define MARS_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define MARS_DCHECK(cond) MARS_CHECK(cond)
#endif

#endif  // MARS_COMMON_CHECK_H_
