#include "common/facet_store.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace mars {

FacetStore::FacetStore(size_t num_entities, size_t num_facets, size_t dim)
    : num_entities_(num_entities), num_facets_(num_facets), dim_(dim) {
  MARS_CHECK(num_facets >= 1);
  MARS_CHECK(dim >= 1);
  row_stride_ = RowStrideFor(dim);
  data_.assign(num_entities * num_facets * row_stride_, 0.0f);
}

FacetStore FacetStore::BorrowConst(const float* base, size_t num_entities,
                                   size_t num_facets, size_t dim,
                                   size_t row_stride) {
  MARS_CHECK(base != nullptr);
  MARS_CHECK(num_facets >= 1);
  MARS_CHECK(dim >= 1);
  MARS_CHECK(row_stride >= dim);
  MARS_CHECK(row_stride * sizeof(float) % kRowAlignBytes == 0);
  MARS_CHECK(reinterpret_cast<uintptr_t>(base) % kRowAlignBytes == 0);
  FacetStore store;
  store.num_entities_ = num_entities;
  store.num_facets_ = num_facets;
  store.dim_ = dim;
  store.row_stride_ = row_stride;
  store.borrowed_base_ = base;
  store.borrowed_ = true;
  return store;
}

void FacetStore::CopyEntityTo(size_t e, float* out) const {
  if (row_stride_ == dim_) {
    std::memcpy(out, EntityBlock(e), num_facets_ * dim_ * sizeof(float));
    return;
  }
  for (size_t k = 0; k < num_facets_; ++k) {
    std::memcpy(out + k * dim_, Row(e, k), dim_ * sizeof(float));
  }
}

void FacetStore::Fill(float value) {
  MARS_CHECK(!borrowed_);
  std::fill(data_.begin(), data_.end(), value);
}

std::pair<size_t, size_t> FacetStore::ShardRange(size_t num_entities,
                                                 size_t shard,
                                                 size_t num_shards) {
  MARS_CHECK(num_shards >= 1);
  MARS_CHECK(shard < num_shards);
  const size_t base = num_entities / num_shards;
  const size_t rem = num_entities % num_shards;
  const size_t begin = shard * base + std::min(shard, rem);
  const size_t end = begin + base + (shard < rem ? 1 : 0);
  return {begin, end};
}

size_t FacetStore::ShardOf(size_t num_entities, size_t e, size_t num_shards) {
  MARS_CHECK(num_shards >= 1);
  MARS_CHECK(e < num_entities);
  const size_t base = num_entities / num_shards;
  const size_t rem = num_entities % num_shards;
  // The first `rem` shards hold base+1 entities, the rest hold base.
  const size_t big_total = rem * (base + 1);
  if (e < big_total) return e / (base + 1);
  return rem + (e - big_total) / base;
}

void FacetStore::ShardView::CopyFrom(const FacetStore& src) const {
  MARS_CHECK(src.num_entities() == store_->num_entities() &&
             src.num_facets() == store_->num_facets() &&
             src.dim() == store_->dim());
  if (empty()) return;
  std::memcpy(data(), src.EntityBlock(begin_),
              size_floats() * sizeof(float));
}

}  // namespace mars
