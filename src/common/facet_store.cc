#include "common/facet_store.h"

#include <algorithm>
#include <cstring>

namespace mars {

FacetStore::FacetStore(size_t num_entities, size_t num_facets, size_t dim)
    : num_entities_(num_entities), num_facets_(num_facets), dim_(dim) {
  MARS_CHECK(num_facets >= 1);
  MARS_CHECK(dim >= 1);
  constexpr size_t kAlignFloats = kRowAlignBytes / sizeof(float);
  row_stride_ = (dim + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
  data_.assign(num_entities * num_facets * row_stride_, 0.0f);
}

void FacetStore::CopyEntityTo(size_t e, float* out) const {
  if (row_stride_ == dim_) {
    std::memcpy(out, EntityBlock(e), num_facets_ * dim_ * sizeof(float));
    return;
  }
  for (size_t k = 0; k < num_facets_; ++k) {
    std::memcpy(out + k * dim_, Row(e, k), dim_ * sizeof(float));
  }
}

void FacetStore::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace mars
