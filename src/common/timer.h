// Wall-clock timer for benchmarks and progress logging.
#ifndef MARS_COMMON_TIMER_H_
#define MARS_COMMON_TIMER_H_

#include <chrono>

namespace mars {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mars

#endif  // MARS_COMMON_TIMER_H_
