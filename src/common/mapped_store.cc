#include "common/mapped_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace mars {

std::shared_ptr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    MARS_LOG(ERROR) << "MappedFile: cannot open " << path << ": "
                    << std::strerror(errno);
    return nullptr;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    MARS_LOG(ERROR) << "MappedFile: cannot stat " << path << ": "
                    << std::strerror(errno);
    ::close(fd);
    return nullptr;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  const uint8_t* data = nullptr;
  if (size > 0) {
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping == MAP_FAILED) {
      MARS_LOG(ERROR) << "MappedFile: mmap of " << path << " failed: "
                      << std::strerror(errno);
      ::close(fd);
      return nullptr;
    }
    data = static_cast<const uint8_t*>(mapping);
  }
  // The mapping outlives the descriptor (POSIX keeps the pages referenced),
  // so close now instead of carrying the fd around.
  ::close(fd);
  return std::shared_ptr<MappedFile>(new MappedFile(data, size, path));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

std::unique_ptr<MappedFacetStore> MappedFacetStore::Create(
    std::shared_ptr<MappedFile> file, size_t byte_offset, size_t num_entities,
    size_t num_facets, size_t dim, size_t row_stride) {
  if (file == nullptr) {
    MARS_LOG(ERROR) << "MappedFacetStore: null file";
    return nullptr;
  }
  if (byte_offset % FacetStore::kRowAlignBytes != 0) {
    MARS_LOG(ERROR) << "MappedFacetStore: offset " << byte_offset << " in "
                    << file->path() << " is not "
                    << FacetStore::kRowAlignBytes << "-byte aligned";
    return nullptr;
  }
  if (num_facets == 0 || dim == 0 ||
      row_stride != FacetStore::RowStrideFor(dim)) {
    MARS_LOG(ERROR) << "MappedFacetStore: stride " << row_stride
                    << " does not match the aligned stride "
                    << FacetStore::RowStrideFor(dim) << " for dim " << dim
                    << " in " << file->path();
    return nullptr;
  }
  // Overflow-safe bounds check against the mapped size.
  const size_t max_floats = (file->size() - std::min(file->size(),
                                                     byte_offset)) /
                            sizeof(float);
  const size_t per_entity = num_facets * row_stride;
  if (per_entity != 0 && num_entities > max_floats / per_entity) {
    MARS_LOG(ERROR) << "MappedFacetStore: region [" << byte_offset << ", +"
                    << num_entities << "x" << per_entity << " floats) "
                    << "overruns " << file->path() << " (" << file->size()
                    << " bytes) — truncated payload?";
    return nullptr;
  }
  const float* base =
      reinterpret_cast<const float*>(file->data() + byte_offset);
  FacetStore store = FacetStore::BorrowConst(base, num_entities, num_facets,
                                             dim, row_stride);
  return std::unique_ptr<MappedFacetStore>(
      new MappedFacetStore(std::move(file), std::move(store)));
}

}  // namespace mars
