// Internal kernel row primitives: the autovectorized generic forms and
// their AVX2+FMA intrinsic twins, plus the runtime CPU check that picks
// between them. Shared between common/kernels.cc (which dispatches) and
// bench/microbench_kernels.cpp (which A/B-times both paths — the ROADMAP
// "SIMD-explicit kernels" item is measure-first, so the comparison has to
// stay runnable after adoption).
//
// Numerical contract: within one build, every batch/gather/facet kernel
// of a scoring family reduces rows with the *same* primitive, so
// ScoreItems (gather) and ScoreItemRange (batch) stay bit-identical —
// the equivalence the serving tests pin. The AVX2 forms use one fused
// 8-lane FMA chain per accumulator instead of the generic two 4-lane
// chains, so results differ from the generic path in final-bit rounding;
// that is fine *across* paths (a host either has AVX2 or does not) but
// means the two paths must never be mixed inside one family at runtime —
// which the single HasAvx2Fma() branch point guarantees.
//
// x86-only by construction; every other architecture compiles the
// generic forms alone and HasAvx2Fma() constant-folds to false.
#ifndef MARS_COMMON_KERNELS_DETAIL_H_
#define MARS_COMMON_KERNELS_DETAIL_H_

#include <cstddef>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MARS_KERNELS_HAVE_AVX2 1
#include <immintrin.h>
#else
#define MARS_KERNELS_HAVE_AVX2 0
#endif

namespace mars {
namespace kernels_detail {

// --- Generic forms: 8-wide accumulator arrays the compiler turns into
// two independent SIMD reduction chains at the build's baseline ISA. ----

inline float DotRowGeneric(const float* a, const float* b, size_t n) {
  float acc[8] = {0.0f};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) acc[j] += a[i + j] * b[i + j];
  }
  float s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
            ((acc[4] + acc[5]) + (acc[6] + acc[7]));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

inline float SquaredDistanceRowGeneric(const float* a, const float* b,
                                       size_t n) {
  float acc[8] = {0.0f};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const float dlt = a[i + j] - b[i + j];
      acc[j] += dlt * dlt;
    }
  }
  float s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
            ((acc[4] + acc[5]) + (acc[6] + acc[7]));
  for (; i < n; ++i) {
    const float dlt = a[i] - b[i];
    s += dlt * dlt;
  }
  return s;
}

/// Fused dot(a,b) and ||b||² in one traversal — the per-candidate piece
/// of CosineBatch (||a|| is hoisted by the caller).
inline void DotAndNormRowGeneric(const float* a, const float* b, size_t n,
                                 float* dot, float* bnorm2) {
  float acc_d[8] = {0.0f};
  float acc_q[8] = {0.0f};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const float bj = b[i + j];
      acc_d[j] += a[i + j] * bj;
      acc_q[j] += bj * bj;
    }
  }
  float d = ((acc_d[0] + acc_d[1]) + (acc_d[2] + acc_d[3])) +
            ((acc_d[4] + acc_d[5]) + (acc_d[6] + acc_d[7]));
  float q = ((acc_q[0] + acc_q[1]) + (acc_q[2] + acc_q[3])) +
            ((acc_q[4] + acc_q[5]) + (acc_q[6] + acc_q[7]));
  for (; i < n; ++i) {
    d += a[i] * b[i];
    q += b[i] * b[i];
  }
  *dot = d;
  *bnorm2 = q;
}

#if MARS_KERNELS_HAVE_AVX2

#define MARS_AVX2_FN __attribute__((target("avx2,fma")))

/// True when the running CPU supports the avx2+fma code paths. One check,
/// cached — all dispatch flows through here so a process never mixes the
/// two rounding behaviors within a kernel family.
inline bool HasAvx2Fma() {
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
}

MARS_AVX2_FN inline float Hsum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

MARS_AVX2_FN inline float DotRowAvx2(const float* a, const float* b,
                                     size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float s = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

MARS_AVX2_FN inline float SquaredDistanceRowAvx2(const float* a,
                                                 const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                                    _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
  }
  float s = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    const float dlt = a[i] - b[i];
    s += dlt * dlt;
  }
  return s;
}

// Multi-user AVX2 forms: four query rows against one shared candidate row,
// register-blocked — the row's vectors are loaded once per 16-float stride
// and fed to all four users' FMA chains (8 ymm accumulators + 2 row
// registers). Per user, the op sequence is *identical* to the single-user
// primitive (same two-accumulator FMA chains, same Hsum256, same scalar
// tail), so each lane of `out` is bit-identical to the corresponding solo
// call — the batch≡solo contract the serving coalescer pins.

MARS_AVX2_FN inline void DotRowAvx2X4(const float* const* a, const float* b,
                                      size_t n, float* out) {
  __m256 acc0[4] = {_mm256_setzero_ps(), _mm256_setzero_ps(),
                    _mm256_setzero_ps(), _mm256_setzero_ps()};
  __m256 acc1[4] = {_mm256_setzero_ps(), _mm256_setzero_ps(),
                    _mm256_setzero_ps(), _mm256_setzero_ps()};
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 b0 = _mm256_loadu_ps(b + i);
    const __m256 b1 = _mm256_loadu_ps(b + i + 8);
    for (size_t j = 0; j < 4; ++j) {
      acc0[j] = _mm256_fmadd_ps(_mm256_loadu_ps(a[j] + i), b0, acc0[j]);
      acc1[j] = _mm256_fmadd_ps(_mm256_loadu_ps(a[j] + i + 8), b1, acc1[j]);
    }
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 b0 = _mm256_loadu_ps(b + i);
    for (size_t j = 0; j < 4; ++j) {
      acc0[j] = _mm256_fmadd_ps(_mm256_loadu_ps(a[j] + i), b0, acc0[j]);
    }
  }
  for (size_t j = 0; j < 4; ++j) {
    float s = Hsum256(_mm256_add_ps(acc0[j], acc1[j]));
    for (size_t t = i; t < n; ++t) s += a[j][t] * b[t];
    out[j] = s;
  }
}

MARS_AVX2_FN inline void SquaredDistanceRowAvx2X4(const float* const* a,
                                                  const float* b, size_t n,
                                                  float* out) {
  __m256 acc0[4] = {_mm256_setzero_ps(), _mm256_setzero_ps(),
                    _mm256_setzero_ps(), _mm256_setzero_ps()};
  __m256 acc1[4] = {_mm256_setzero_ps(), _mm256_setzero_ps(),
                    _mm256_setzero_ps(), _mm256_setzero_ps()};
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 b0 = _mm256_loadu_ps(b + i);
    const __m256 b1 = _mm256_loadu_ps(b + i + 8);
    for (size_t j = 0; j < 4; ++j) {
      const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a[j] + i), b0);
      const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a[j] + i + 8), b1);
      acc0[j] = _mm256_fmadd_ps(d0, d0, acc0[j]);
      acc1[j] = _mm256_fmadd_ps(d1, d1, acc1[j]);
    }
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 b0 = _mm256_loadu_ps(b + i);
    for (size_t j = 0; j < 4; ++j) {
      const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a[j] + i), b0);
      acc0[j] = _mm256_fmadd_ps(d0, d0, acc0[j]);
    }
  }
  for (size_t j = 0; j < 4; ++j) {
    float s = Hsum256(_mm256_add_ps(acc0[j], acc1[j]));
    for (size_t t = i; t < n; ++t) {
      const float dlt = a[j][t] - b[t];
      s += dlt * dlt;
    }
    out[j] = s;
  }
}

MARS_AVX2_FN inline void DotAndNormRowAvx2(const float* a, const float* b,
                                           size_t n, float* dot,
                                           float* bnorm2) {
  __m256 acc_d = _mm256_setzero_ps();
  __m256 acc_q = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 av = _mm256_loadu_ps(a + i);
    const __m256 bv = _mm256_loadu_ps(b + i);
    acc_d = _mm256_fmadd_ps(av, bv, acc_d);
    acc_q = _mm256_fmadd_ps(bv, bv, acc_q);
  }
  float d = Hsum256(acc_d);
  float q = Hsum256(acc_q);
  for (; i < n; ++i) {
    d += a[i] * b[i];
    q += b[i] * b[i];
  }
  *dot = d;
  *bnorm2 = q;
}

#else  // !MARS_KERNELS_HAVE_AVX2

inline bool HasAvx2Fma() { return false; }

#endif  // MARS_KERNELS_HAVE_AVX2

}  // namespace kernels_detail
}  // namespace mars

#endif  // MARS_COMMON_KERNELS_DETAIL_H_
