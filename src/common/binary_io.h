// Little-endian binary stream helpers shared by the persistence layers
// (core/persistence.cc model snapshots, serve/top_k_sidecar.cc cache
// sidecars). The on-disk formats (docs/FORMAT.md) are defined as
// little-endian; these write the host representation directly, which is
// correct on every platform this library targets — if a big-endian port
// ever lands, the byte swap belongs here and nowhere else.
#ifndef MARS_COMMON_BINARY_IO_H_
#define MARS_COMMON_BINARY_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>

namespace mars {

inline void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void WriteFloats(std::ostream& out, const float* data, size_t n) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(n * sizeof(float)));
}

inline bool ReadU32(std::istream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

inline bool ReadU64(std::istream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

inline bool ReadFloats(std::istream& in, float* data, size_t n) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(n * sizeof(float)));
  return in.good();
}

}  // namespace mars

#endif  // MARS_COMMON_BINARY_IO_H_
