#include "common/csv_writer.h"

#include "common/string_util.h"

namespace mars {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ",";
    out_ << fields[i];
  }
  out_ << "\n";
}

void CsvWriter::WriteNumericRow(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(FormatFixed(v, 6));
  WriteRow(fields);
}

void CsvWriter::Flush() { out_.flush(); }

}  // namespace mars
