// Small string helpers shared across the library.
#ifndef MARS_COMMON_STRING_UTIL_H_
#define MARS_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace mars {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& text, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Removes leading/trailing whitespace.
std::string Trim(const std::string& text);

/// Formats a double with `digits` decimal places (e.g. "0.3311").
std::string FormatFixed(double value, int digits);

/// Formats a value as a signed percentage with two decimals ("+27.53%").
std::string FormatPercent(double fraction);

/// Case-sensitive prefix test.
bool StartsWith(const std::string& text, const std::string& prefix);

/// Reads environment variable `name`, returning `def` when unset.
std::string GetEnvOr(const std::string& name, const std::string& def);

/// True when environment variable `name` is set to a truthy value
/// ("1", "true", "on", "yes"); used for MARS_BENCH_FAST smoke runs.
bool EnvFlagSet(const std::string& name);

}  // namespace mars

#endif  // MARS_COMMON_STRING_UTIL_H_
