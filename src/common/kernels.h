// Batched dense kernels over blocks of embedding rows.
//
// These extend the scalar primitives in vec.h to the block shapes the
// serving and evaluation hot paths actually touch: one user row scored
// against many candidate rows, and one entity's K facet rows scored against
// another entity's K facet rows in a single pass. All kernels take an
// explicit `stride` (in floats) between consecutive rows so they work both
// on tightly packed Matrix rows (stride == n) and on the aligned, padded
// rows of FacetStore (stride >= n, see common/facet_store.h). Row
// accumulation dispatches once per call between a generic 8-wide
// accumulator form (autovectorized at the build's baseline ISA) and an
// explicit AVX2+FMA twin when the host supports it — measured 1.3-1.7x on
// the 1024-row serving shape (see kernels_detail.h for the rounding
// contract and bench/microbench_kernels.cpp for the comparison; measure
// before changing the shapes). Within one process, the gather and batch
// forms of a family always share a row primitive, so ScoreItems and
// ScoreItemRange rank bit-identically.
#ifndef MARS_COMMON_KERNELS_H_
#define MARS_COMMON_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace mars {

/// out[i] = Dot(u, rows + i*stride) for i in [0, count).
void DotBatch(const float* u, const float* rows, size_t count, size_t stride,
              size_t n, float* out);

/// out[i] = ||u - row_i||^2 for i in [0, count).
void SquaredDistanceBatch(const float* u, const float* rows, size_t count,
                          size_t stride, size_t n, float* out);

/// out[i] = Cosine(u, row_i) for i in [0, count); 0 when either norm ~ 0.
/// ||u|| is computed once, not per candidate.
void CosineBatch(const float* u, const float* rows, size_t count,
                 size_t stride, size_t n, float* out);

/// Gather variants: candidate i lives at `base + ids[i] * stride`. These are
/// the ScoreItems shapes — the evaluator hands models an arbitrary id list.
void DotGather(const float* u, const float* base, size_t stride,
               const uint32_t* ids, size_t count, size_t n, float* out);
void SquaredDistanceGather(const float* u, const float* base, size_t stride,
                           const uint32_t* ids, size_t count, size_t n,
                           float* out);

/// out[i] = -||u - row_{ids[i]}||² — the metric-model preference score
/// (CML/SML/MetricF all rank by negated distance; shared here so the
/// scoring convention lives in one place).
void NegatedSquaredDistanceGather(const float* u, const float* base,
                                  size_t stride, const uint32_t* ids,
                                  size_t count, size_t n, float* out);

/// Contiguous-block form of the above: out[i] = -||u - row_i||² for i in
/// [0, count) — the metric models' full-catalog serving sweep.
void NegatedSquaredDistanceBatch(const float* u, const float* rows,
                                 size_t count, size_t stride, size_t n,
                                 float* out);

/// Multi-user forms: `num_users` query rows swept against one contiguous
/// candidate block, each candidate row loaded once and applied to every
/// user (register-blocked over user quads in the AVX2 path). `us[b]`
/// points at user b's row; `out[b]` receives that user's `count` scores.
/// Contract: out[b][i] is bit-identical to the corresponding single-user
/// batch kernel — per user the reduction runs the same row primitive in
/// the same order, so a coalesced multi-user sweep ranks exactly like B
/// solo sweeps (the serve-layer batch≡solo guarantee rides on this).
void DotBatchMulti(const float* const* us, size_t num_users,
                   const float* rows, size_t count, size_t stride, size_t n,
                   float* const* out);
void NegatedSquaredDistanceBatchMulti(const float* const* us,
                                      size_t num_users, const float* rows,
                                      size_t count, size_t stride, size_t n,
                                      float* const* out);

/// out[i] = argmax_c Dot(rows + i*stride, centroids + c*centroid_stride)
/// for i in [0, count); ties resolve to the lowest centroid index. This is
/// the IVF coarse-assignment step of ann/ivf_index.h: with unit-norm
/// centroids, max dot over c equals max cosine (the row's own norm is
/// constant across centroids), so rows need no normalization.
void NearestCentroidDotBatch(const float* rows, size_t count, size_t stride,
                             const float* centroids, size_t num_centroids,
                             size_t centroid_stride, size_t n, uint32_t* out);

/// Σ_k w[k] · <u + k·u_stride, v + k·v_stride> over n dims — the fused
/// multi-facet cosine score of MARS (unit rows make dot == cosine). One
/// traversal of both entity blocks.
float WeightedFacetDot(const float* u, size_t u_stride, const float* v,
                       size_t v_stride, const float* w, size_t num_facets,
                       size_t n);

/// Σ_k w[k] · ||(u + k·u_stride) - (v + k·v_stride)||^2 — the fused
/// multi-facet metric score of MAR (negate for a preference score).
float WeightedFacetSquaredDistance(const float* u, size_t u_stride,
                                   const float* v, size_t v_stride,
                                   const float* w, size_t num_facets,
                                   size_t n);

/// Full-catalog forms of the fused facet scores: one user entity block
/// swept against `count` consecutive entity blocks starting at `blocks`
/// (blocks are `block_stride` floats apart, facet rows `row_stride` apart
/// within a block — FacetStore::entity_stride()/row_stride()). These are
/// the MARS/MAR serving sweeps over the contiguous item store.
void WeightedFacetDotBatch(const float* u, size_t u_stride,
                           const float* blocks, size_t block_stride,
                           size_t row_stride, const float* w,
                           size_t num_facets, size_t count, size_t n,
                           float* out);
void WeightedFacetSquaredDistanceBatch(const float* u, size_t u_stride,
                                       const float* blocks,
                                       size_t block_stride, size_t row_stride,
                                       const float* w, size_t num_facets,
                                       size_t count, size_t n, float* out);

/// Multi-user forms of the fused facet sweeps: `num_users` user entity
/// blocks (us[b], each with facet rows u_stride apart) against `count`
/// consecutive candidate blocks, with a *per-user* facet weight vector
/// ws[b] (MARS bakes each user's Θ·radii into it). Each candidate facet
/// row is loaded once per user quad. Same bit-identity contract as
/// DotBatchMulti: out[b] matches the single-user WeightedFacet*Batch call.
void WeightedFacetDotBatchMulti(const float* const* us, size_t u_stride,
                                const float* const* ws, size_t num_users,
                                const float* blocks, size_t block_stride,
                                size_t row_stride, size_t num_facets,
                                size_t count, size_t n, float* const* out);
void WeightedFacetSquaredDistanceBatchMulti(
    const float* const* us, size_t u_stride, const float* const* ws,
    size_t num_users, const float* blocks, size_t block_stride,
    size_t row_stride, size_t num_facets, size_t count, size_t n,
    float* const* out);

}  // namespace mars

#endif  // MARS_COMMON_KERNELS_H_
