// Double-buffer snapshot copies of training state.
//
// Overlapped evaluation (models/train_loop.h) ranks a frozen copy of the
// model while the next epoch trains on the live tables. The copy happens at
// an epoch boundary — the trainer pool is idle — so the same pool can blast
// the FacetStore over its shards: each worker memcpys one contiguous,
// cache-line-aligned ShardView, which is the fastest way to move an
// [entity][facet][dim] table on this layout.
#ifndef MARS_TRAIN_SNAPSHOT_H_
#define MARS_TRAIN_SNAPSHOT_H_

#include <memory>

#include "common/facet_store.h"

namespace mars {

class ThreadPool;

/// Copies `src` into `*dst`, reusing dst's buffer when shapes already match
/// (the double-buffer case: after the first snapshot, no allocation).
/// With a non-null idle `pool`, the entity range is split into one
/// ShardView per worker and copied in parallel; otherwise serial.
void SnapshotFacetStore(const FacetStore& src, FacetStore* dst,
                        ThreadPool* pool);

/// Whole-model double buffer for models whose state is cheap to copy by
/// value: first call copy-constructs `*snap` from `live`, later calls
/// copy-assign into the existing instance (reusing its buffers). Returns
/// the snapshot. Models with large FacetStores (Mars, Mar) copy field-wise
/// through SnapshotFacetStore instead.
template <typename Model>
Model* CopyModelSnapshot(const Model& live, std::unique_ptr<Model>* snap) {
  if (*snap == nullptr) {
    *snap = std::make_unique<Model>(live);
  } else {
    **snap = live;
  }
  return snap->get();
}

}  // namespace mars

#endif  // MARS_TRAIN_SNAPSHOT_H_
