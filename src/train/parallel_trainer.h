// Sharded Hogwild epoch driver.
//
// The spherical SGD updates of every model in this library touch only the
// sampled rows (u, v⁺, v⁻), which makes an epoch embarrassingly shardable:
// the trainer splits the epoch's steps across `num_threads` workers that
// update the shared parameter tables lock-free (Hogwild). Each worker owns
// a private deterministic RNG stream seeded `seed ^ SplitMix64(worker_id)`,
// so the *sampling* sequence of every worker is reproducible; with more
// than one worker the final floats still vary run-to-run because update
// interleaving races (tolerated — see ROADMAP "shard/ownership model").
//
// Determinism contract: with num_threads <= 1 the trainer runs every step
// inline on the calling thread against the model's own serial RNG, which
// reproduces the historical single-threaded training sequence bit-for-bit
// (regression-tested in tests/train/parallel_trainer_test.cc).
#ifndef MARS_TRAIN_PARALLEL_TRAINER_H_
#define MARS_TRAIN_PARALLEL_TRAINER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace mars {

struct TrainOptions;

/// One SGD step run by a trainer worker. `worker` is in [0, num_workers)
/// and stable for the lifetime of the trainer — models index per-worker
/// scratch with it. `rng` is the worker's private stream; a step must draw
/// randomness only from it.
using TrainStepFn = std::function<void(size_t worker, Rng& rng)>;

/// Fans an epoch's SGD steps out across Hogwild workers.
class ParallelTrainer {
 public:
  /// `serial_rng` is the model's own generator (already advanced by
  /// initialization); it is the single stream when num_threads <= 1 and is
  /// left untouched otherwise. Must outlive the trainer.
  ParallelTrainer(size_t num_threads, uint64_t seed, Rng* serial_rng);

  /// Convenience: reads num_threads and seed from `options`.
  ParallelTrainer(const TrainOptions& options, Rng* serial_rng);

  size_t num_workers() const { return num_workers_; }

  /// Worker pool; null when single-threaded. Idle between epochs, so
  /// models may borrow it for epoch-boundary work (e.g. snapshot copies).
  ThreadPool* pool() const { return pool_.get(); }

  /// Runs `steps` total steps of `step` for one epoch. Steps are split as
  /// evenly as possible across workers (first `steps % W` workers run one
  /// extra); blocks until every worker finished. Worker RNG streams
  /// persist across epochs.
  void RunEpoch(size_t steps, const TrainStepFn& step);

  /// The seed worker `w` derives its stream from.
  static uint64_t WorkerSeed(uint64_t seed, size_t worker);

 private:
  size_t num_workers_;
  Rng* serial_rng_;
  std::vector<Rng> worker_rngs_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace mars

#endif  // MARS_TRAIN_PARALLEL_TRAINER_H_
