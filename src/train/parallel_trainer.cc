#include "train/parallel_trainer.h"

#include <algorithm>

#include "common/check.h"
#include "models/recommender.h"

namespace mars {

ParallelTrainer::ParallelTrainer(size_t num_threads, uint64_t seed,
                                 Rng* serial_rng)
    : num_workers_(std::max<size_t>(1, num_threads)),
      serial_rng_(serial_rng) {
  MARS_CHECK(serial_rng_ != nullptr);
  if (num_workers_ == 1) return;
  worker_rngs_.reserve(num_workers_);
  for (size_t w = 0; w < num_workers_; ++w) {
    worker_rngs_.emplace_back(WorkerSeed(seed, w));
  }
  pool_ = std::make_unique<ThreadPool>(num_workers_);
}

ParallelTrainer::ParallelTrainer(const TrainOptions& options, Rng* serial_rng)
    : ParallelTrainer(options.num_threads, options.seed, serial_rng) {}

uint64_t ParallelTrainer::WorkerSeed(uint64_t seed, size_t worker) {
  // seed ^ hash(worker_id): SplitMix64 decorrelates consecutive worker ids,
  // so neighboring workers never start on overlapping xoshiro streams.
  uint64_t h = static_cast<uint64_t>(worker);
  return seed ^ SplitMix64(&h);
}

void ParallelTrainer::RunEpoch(size_t steps, const TrainStepFn& step) {
  if (num_workers_ == 1) {
    // Historical serial path: same thread, same RNG object, same sequence.
    for (size_t s = 0; s < steps; ++s) step(0, *serial_rng_);
    return;
  }
  const size_t base = steps / num_workers_;
  const size_t rem = steps % num_workers_;
  for (size_t w = 0; w < num_workers_; ++w) {
    const size_t my_steps = base + (w < rem ? 1 : 0);
    if (my_steps == 0) continue;
    Rng* rng = &worker_rngs_[w];
    pool_->Submit([w, my_steps, rng, &step] {
      for (size_t s = 0; s < my_steps; ++s) step(w, *rng);
    });
  }
  pool_->Wait();
}

}  // namespace mars
