#include "train/snapshot.h"

#include <cstring>

#include "common/thread_pool.h"

namespace mars {

void SnapshotFacetStore(const FacetStore& src, FacetStore* dst,
                        ThreadPool* pool) {
  if (src.empty()) {
    *dst = src;
    return;
  }
  if (dst->num_entities() != src.num_entities() ||
      dst->num_facets() != src.num_facets() || dst->dim() != src.dim()) {
    *dst = FacetStore(src.num_entities(), src.num_facets(), src.dim());
  }
  if (pool == nullptr || pool->num_threads() == 1) {
    dst->Shard(0, 1).CopyFrom(src);
    return;
  }
  const size_t num_shards = pool->num_threads();
  pool->ParallelFor(num_shards, [&](size_t s) {
    dst->Shard(s, num_shards).CopyFrom(src);
  });
}

}  // namespace mars
