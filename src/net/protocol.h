// The MARS wire protocol: length-prefixed, versioned, checksummed binary
// frames carrying the serve/request.h value types over TCP. The byte
// layout is normative in docs/PROTOCOL.md (the same role FORMAT.md plays
// for the snapshot files); this header is the single codec both sides
// use — NetServer decodes requests and encodes responses with exactly
// these functions, NetClient the reverse — so the two cannot drift.
//
// Framing. Every message is one frame:
//
//   [magic u32]["MRSN" = 4D 52 53 4E on the wire]
//   [version u8][type u8][reserved u16 = 0]
//   [payload_len u32][checksum u32 = CRC-32 of the payload bytes]
//   [payload_len bytes of payload]
//
// All integers little-endian, matching common/binary_io.h and the
// FORMAT.md files. The checksum covers the payload only — the header is
// validated structurally (magic, version, reserved, bounded length), the
// payload cryptographically-not-at-all but corruption-detectably.
//
// Error handling splits by what can still be trusted:
//
//  * Request-level rejections (bad user/k/flags) are *responses*: a
//    kTopKResponse frame whose status names the rejection, exactly the
//    in-process TopKResponse contract. The connection stays up.
//  * Frame-level violations where the header parsed but the frame is
//    semantically wrong (unknown type, malformed payload of a known
//    type) get a kError frame; stream framing is intact, so the
//    connection stays up.
//  * Stream-level violations (bad magic, nonzero reserved bits, wrong
//    version, oversized length, checksum mismatch) mean the byte stream
//    can no longer be trusted to re-synchronize: the peer sends one
//    kError frame naming the violation and closes.
#ifndef MARS_NET_PROTOCOL_H_
#define MARS_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "serve/request.h"

namespace mars {

/// Frame magic: the bytes "MRSN" read as a little-endian u32.
inline constexpr uint32_t kWireMagic = 0x4E53524Du;

/// Protocol version this build speaks (see docs/PROTOCOL.md for the
/// compatibility matrix). A peer announcing any other version is
/// rejected with WireStatus::kBadVersion.
inline constexpr uint8_t kWireVersion = 1;

/// Fixed frame header size preceding every payload.
inline constexpr size_t kFrameHeaderBytes = 16;

/// Default cap on a single frame's payload. A TopKResponse at the
/// serving depths this system runs (k ≤ a few hundred) is well under a
/// kilobyte; anything near the cap is an attack or a corrupted length.
inline constexpr size_t kDefaultMaxFramePayload = 1u << 20;

enum class FrameType : uint8_t {
  kTopKRequest = 1,
  kTopKResponse = 2,
  kError = 3,
};

/// Wire status vocabulary. Values 0–15 are reserved to mirror
/// serve/request.h TopKStatus verbatim (a response's status byte *is*
/// the server's TopKStatus); 16+ are wire-level conditions that never
/// occur in-process.
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidUser = 1,
  kInvalidK = 2,
  kInvalidFlags = 3,
  kBadFrame = 16,     // bad magic / nonzero reserved / malformed payload
  kBadVersion = 17,   // version byte not kWireVersion
  kBadType = 18,      // unknown frame type
  kOversized = 19,    // payload_len above the receiver's cap
  kBadChecksum = 20,  // CRC-32 mismatch over the payload
  kInternal = 21,     // receiver-side failure unrelated to the bytes
  kOverloaded = 22,   // receiver shed the connection under backpressure
};

inline WireStatus WireStatusOf(TopKStatus s) {
  return static_cast<WireStatus>(static_cast<uint8_t>(s));
}

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `data`.
uint32_t Crc32(const uint8_t* data, size_t n);

/// One decoded frame: type + raw payload, checksum already verified.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<uint8_t> payload;
};

/// A request as it crosses the wire: the client-assigned correlation id
/// plus the in-process request. Responses echo the id, so a pipelined
/// client can match answers without assuming ordering.
struct WireRequest {
  uint64_t request_id = 0;
  TopKRequest request;
};

/// A response as it crosses the wire. `status` is the full wire
/// vocabulary; for values ≤ 15 it equals response.status.
struct WireResponse {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  TopKResponse response;
};

// ---------------------------------------------------------------------
// Encoding. All encoders *append* a complete frame (header + payload)
// to `out`, so a pipelining sender builds one contiguous write buffer.

/// kTopKRequest payload: [request_id u64][user u32][k u32][flags u32].
void EncodeTopKRequest(uint64_t request_id, const TopKRequest& request,
                       std::vector<uint8_t>* out);

/// kTopKResponse payload:
///   [request_id u64][status u8][from_cache u8][reserved u16 = 0]
///   [epoch u64][count u32][count × item u32][count × score f32]
void EncodeTopKResponse(uint64_t request_id, const TopKResponse& response,
                        std::vector<uint8_t>* out);

/// kError payload: [request_id u64 (0 if unattributable)][code u32].
void EncodeError(uint64_t request_id, WireStatus code,
                 std::vector<uint8_t>* out);

/// Appends a frame of arbitrary type/payload — the test seam for
/// crafting hostile frames (wrong type, truncated payload) with a valid
/// header and checksum.
void AppendFrame(FrameType type, std::span<const uint8_t> payload,
                 std::vector<uint8_t>* out);

// ---------------------------------------------------------------------
// Payload decoding (frame already reassembled and checksum-verified).
// Each returns false — without touching errno or aborting — when the
// payload bytes are not a well-formed instance; remote bytes never
// MARS_CHECK.

bool DecodeTopKRequestPayload(std::span<const uint8_t> payload,
                              WireRequest* out);
bool DecodeTopKResponsePayload(std::span<const uint8_t> payload,
                               WireResponse* out);
bool DecodeErrorPayload(std::span<const uint8_t> payload,
                        uint64_t* request_id, WireStatus* code);

// ---------------------------------------------------------------------

/// Streaming frame reassembler: feed whatever byte ranges the transport
/// delivers (a syscall's worth at a time, split anywhere — mid-header,
/// mid-payload), pull complete verified frames. Once a stream-level
/// violation is seen the decoder latches kBad and stays there: the
/// stream cannot re-synchronize, the connection must close (file
/// comment).
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Buffers `n` more wire bytes.
  void Append(const uint8_t* data, size_t n);

  enum class Result {
    kFrame,     // *out holds the next frame
    kNeedMore,  // no complete frame buffered yet
    kBad,       // stream-level violation; error() names it; latched
  };
  Result Next(Frame* out);

  /// The latched violation after kBad (kOk before).
  WireStatus error() const { return error_; }

  /// Bytes buffered but not yet consumed (tests pin reassembly math).
  size_t buffered() const { return buf_.size() - consumed_; }

 private:
  Result Fail(WireStatus code) {
    error_ = code;
    return Result::kBad;
  }

  size_t max_payload_;
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;
  WireStatus error_ = WireStatus::kOk;
};

}  // namespace mars

#endif  // MARS_NET_PROTOCOL_H_
