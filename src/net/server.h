// NetServer: the asynchronous TCP front-end over TopKServer. One
// reactor thread (io_uring rings where the kernel has them, epoll
// otherwise — net/reactor.h) accepts connections, reassembles frames
// (net/connection.h), and answers with the same TopKResponse bytes the
// in-process API produces.
//
// The load-bearing design point is *natural batching*: every request
// decoded in one reactor wake-up — across all connections — is grouped
// into TopKServer::TopKBatch calls (chunks of max_wire_batch). While a
// sweep runs, newly-arriving requests accumulate in socket buffers; the
// next wake-up drains them all at once, so batch size self-scales with
// load exactly like the in-process miss coalescer. No artificial delay
// is ever added: an idle server answers a lone request at solo latency,
// a loaded one amortizes the catalog stream over every concurrent user
// (stats().wire_batches / the serve layer's batch_sweeps make the
// grouping observable — the acceptance test pins it).
//
// Threading: Start() spawns the reactor thread; Stop() (and the
// destructor) signal it through an eventfd and join. TopKServer's read
// front is fully concurrent, so in-process callers may keep using the
// wrapped server while the wire serves — both see the same epoch-swapped
// snapshots. stats() may be read from any thread.
#ifndef MARS_NET_SERVER_H_
#define MARS_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/connection.h"
#include "net/protocol.h"
#include "net/reactor.h"
#include "serve/top_k_server.h"

namespace mars {

struct NetServerOptions {
  /// Bind address. Loopback by default: the bench and tests drive the
  /// wire without touching the network config.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; port() reports the actual one.
  uint16_t port = 0;
  /// Reactor choice (kAuto probes io_uring, falls back to epoll).
  NetBackend backend = NetBackend::kAuto;
  /// Per-frame payload cap handed to each connection's decoder.
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Accepted connections beyond this are closed immediately.
  size_t max_connections = 1024;
  /// Requests decoded in one reactor wake-up are fed to TopKBatch in
  /// chunks of this size (the serve layer further splits sweeps by its
  /// own batch.max_batch).
  size_t max_wire_batch = 64;
  /// Backpressure: a connection whose queued-but-unsent response bytes
  /// exceed this cap is shed — one best-effort kError(kOverloaded) frame,
  /// then close (stats().backpressure_closes counts them). A reader that
  /// keeps up never comes near the cap; only a peer that pipelines
  /// requests while refusing to drain responses does. 0 = unbounded
  /// (the pre-backpressure behavior).
  size_t max_queued_response_bytes = 8u << 20;
  /// When nonzero, SO_SNDBUF for accepted sockets (set on the listener,
  /// inherited on accept). A test/bench seam: shrinking the kernel's
  /// buffer makes the userspace queue — and the cap above — observable
  /// with small traffic volumes.
  int sndbuf_bytes = 0;
  /// Serving options for the owning constructor (ignored by the
  /// non-owning one, which wraps an already-configured server).
  TopKServerOptions serve;
};

struct NetServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_dropped = 0;  // over max_connections
  /// Connections shed for exceeding max_queued_response_bytes.
  uint64_t backpressure_closes = 0;
  uint64_t frames_decoded = 0;
  uint64_t requests_served = 0;
  uint64_t protocol_errors = 0;
  /// TopKBatch calls made on behalf of the wire...
  uint64_t wire_batches = 0;
  /// ...and how many of them carried more than one request — the
  /// natural-batching signal.
  uint64_t wire_batches_multi = 0;
};

class NetServer {
 public:
  /// Non-owning: serves an existing TopKServer (options.serve ignored).
  NetServer(TopKServer* server, NetServerOptions options);

  /// Owning: builds the TopKServer from options.serve over `model`.
  NetServer(std::shared_ptr<const ItemScorer> model, size_t num_users,
            size_t num_items, NetServerOptions options);

  /// Stops and joins if still running.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and spawns the reactor thread. False when the
  /// bind/listen or reactor setup fails (port busy, kIoUring demanded
  /// without kernel support).
  bool Start();

  /// Signals the reactor thread and joins. Idempotent.
  void Stop();

  /// The bound port (valid after Start() returned true).
  uint16_t port() const { return port_; }

  /// Reactor backend actually running ("epoll" / "io_uring"; empty
  /// before Start).
  const std::string& backend_name() const { return backend_name_; }

  /// The wrapped serving layer (for maintenance calls — PublishEpoch,
  /// Prime — and its own stats()).
  TopKServer& top_k() { return *top_k_; }

  NetServerStats stats() const;

 private:
  void RunLoop();
  void AcceptReady();
  /// Serves every request decoded this wake-up: TopKBatch in
  /// max_wire_batch chunks, responses queued to their connections.
  void ServeDecoded(std::vector<std::pair<int, WireRequest>>* decoded);
  void DropConnection(int fd);

  std::unique_ptr<TopKServer> owned_;
  TopKServer* top_k_;
  NetServerOptions options_;

  std::unique_ptr<Reactor> reactor_;
  int listen_fd_ = -1;
  int stop_fd_ = -1;  // eventfd the reactor also waits on
  uint16_t port_ = 0;
  std::string backend_name_;
  std::thread loop_;
  bool running_ = false;

  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_dropped_{0};
  std::atomic<uint64_t> backpressure_closes_{0};
  std::atomic<uint64_t> frames_decoded_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> wire_batches_{0};
  std::atomic<uint64_t> wire_batches_multi_{0};
};

}  // namespace mars

#endif  // MARS_NET_SERVER_H_
