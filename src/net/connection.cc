#include "net/connection.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mars {

Connection::Connection(int fd, size_t max_frame_payload)
    : fd_(fd), decoder_(max_frame_payload) {}

Connection::~Connection() {
  if (fd_ >= 0) close(fd_);
}

bool Connection::ReadAndDecode(std::vector<WireRequest>* out) {
  if (read_done_) return false;
  uint8_t chunk[16 * 1024];
  // Per-wake-up read budget. Without it, a peer that keeps the pipe
  // full delivers full chunks forever and one connection monopolizes
  // the event loop — starving every other connection and deferring the
  // response/backpressure cycle for the duration of its backlog. Under
  // level-triggered readiness (epoll) or the reactor's lazy oneshot
  // re-arm (io_uring), leftover bytes simply fire the next wake-up.
  constexpr size_t kMaxBytesPerWake = 16 * sizeof(chunk);  // 256 KiB
  size_t consumed = 0;
  while (consumed < kMaxBytesPerWake) {
    const ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      decoder_.Append(chunk, static_cast<size_t>(n));
      consumed += static_cast<size_t>(n);
      if (static_cast<size_t>(n) < sizeof(chunk)) {
        // Short read: the socket is drained for now; decode what we
        // have. (A full chunk loops — more may be buffered.)
        break;
      }
      continue;
    }
    if (n == 0) {
      read_done_ = true;  // orderly peer close
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    read_done_ = true;  // fatal socket error
    break;
  }

  Frame frame;
  for (;;) {
    const FrameDecoder::Result r = decoder_.Next(&frame);
    if (r == FrameDecoder::Result::kNeedMore) break;
    if (r == FrameDecoder::Result::kBad) {
      // Stream-level violation: one error frame naming it, then close
      // once it flushes. No further bytes from this peer are trusted.
      ++protocol_errors_;
      EncodeError(0, decoder_.error(), &outbuf_);
      read_done_ = true;
      break;
    }
    ++frames_decoded_;
    HandleFrame(frame, out);
  }
  return !read_done_;
}

void Connection::HandleFrame(const Frame& frame,
                             std::vector<WireRequest>* out) {
  switch (frame.type) {
    case FrameType::kTopKRequest: {
      WireRequest req;
      if (!DecodeTopKRequestPayload(frame.payload, &req)) {
        // Framing held but the payload is not a request: recoverable.
        ++protocol_errors_;
        EncodeError(0, WireStatus::kBadFrame, &outbuf_);
        return;
      }
      out->push_back(req);
      return;
    }
    case FrameType::kTopKResponse:
    case FrameType::kError:
    default:
      // A client pushing responses at the server, or a type this
      // version doesn't know: answer kBadType, keep the connection
      // (the frame was well-delimited).
      ++protocol_errors_;
      EncodeError(0, WireStatus::kBadType, &outbuf_);
      return;
  }
}

void Connection::QueueResponse(uint64_t request_id,
                               const TopKResponse& response) {
  EncodeTopKResponse(request_id, response, &outbuf_);
}

void Connection::QueueError(uint64_t request_id, WireStatus code) {
  EncodeError(request_id, code, &outbuf_);
}

bool Connection::Flush() {
  while (write_pos_ < outbuf_.size()) {
    // MSG_NOSIGNAL: a peer that resets mid-flush must surface as EPIPE,
    // not a process-killing SIGPIPE (the backpressure shed provokes
    // exactly this race).
    const ssize_t n = send(fd_, outbuf_.data() + write_pos_,
                           outbuf_.size() - write_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      write_pos_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer vanished mid-write
  }
  // Fully drained: reclaim the buffer so a long-lived connection's
  // outbuf is bounded by its largest in-flight burst, not its history.
  outbuf_.clear();
  write_pos_ = 0;
  return true;
}

}  // namespace mars
