#include "net/reactor.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <unordered_map>

#if __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#if defined(__NR_io_uring_setup) && defined(__NR_io_uring_enter)
#define MARS_HAS_IO_URING 1
#endif
#endif

namespace mars {

namespace {

// ---------------------------------------------------------------------
// epoll backend: level-triggered, the interface's semantics verbatim.

class EpollReactor : public Reactor {
 public:
  EpollReactor() : epfd_(epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollReactor() override {
    if (epfd_ >= 0) close(epfd_);
  }

  bool ok() const { return epfd_ >= 0; }
  const char* name() const override { return "epoll"; }

  bool Add(int fd, bool read, bool write) override {
    epoll_event ev{};
    ev.events = Mask(read, write);
    ev.data.fd = fd;
    return epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  bool Modify(int fd, bool read, bool write) override {
    epoll_event ev{};
    ev.events = Mask(read, write);
    ev.data.fd = fd;
    return epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }

  void Remove(int fd) override {
    epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  int Wait(std::vector<ReactorEvent>* events, int timeout_ms) override {
    epoll_event raw[64];
    int n;
    do {
      n = epoll_wait(epfd_, raw, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return -1;
    for (int i = 0; i < n; ++i) {
      ReactorEvent ev;
      ev.fd = raw[i].data.fd;
      ev.readable = (raw[i].events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP)) != 0;
      ev.writable = (raw[i].events & EPOLLOUT) != 0;
      ev.error = (raw[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(ev);
    }
    return n;
  }

 private:
  static uint32_t Mask(bool read, bool write) {
    uint32_t m = EPOLLRDHUP;
    if (read) m |= EPOLLIN;
    if (write) m |= EPOLLOUT;
    return m;
  }

  int epfd_;
};

#ifdef MARS_HAS_IO_URING

// ---------------------------------------------------------------------
// io_uring backend: raw rings, no liburing (the container bakes in the
// uapi header only). Readiness is oneshot IORING_OP_POLL_ADD per
// registered fd, re-armed lazily at the top of every Wait; a Wait is
// therefore exactly one io_uring_enter that both submits the batch of
// re-arms and blocks for completions — the two rings' intended rhythm.
//
// Single-threaded by the Reactor contract, which collapses the ring
// discipline to: we are the only SQ producer (plain writes + release
// publish of the tail) and the only CQ consumer (acquire read of the
// tail, release publish of the head).

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

class IoUringReactor : public Reactor {
 public:
  IoUringReactor() {
    io_uring_params params{};
    ring_fd_ = SysIoUringSetup(kEntries, &params);
    if (ring_fd_ < 0) return;

    sq_size_ = params.sq_off.array + params.sq_entries * sizeof(uint32_t);
    cq_size_ =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    if (params.features & IORING_FEAT_SINGLE_MMAP) {
      sq_size_ = cq_size_ = sq_size_ > cq_size_ ? sq_size_ : cq_size_;
    }
    sq_ring_ = static_cast<uint8_t*>(
        mmap(nullptr, sq_size_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING));
    if (sq_ring_ == MAP_FAILED) {
      sq_ring_ = nullptr;
      return;
    }
    if (params.features & IORING_FEAT_SINGLE_MMAP) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ = static_cast<uint8_t*>(
          mmap(nullptr, cq_size_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING));
      if (cq_ring_ == MAP_FAILED) {
        cq_ring_ = nullptr;
        return;
      }
    }
    sqes_size_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        mmap(nullptr, sqes_size_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      return;
    }

    sq_head_ = RingU32(sq_ring_, params.sq_off.head);
    sq_tail_ = RingU32(sq_ring_, params.sq_off.tail);
    sq_mask_ = *RingU32(sq_ring_, params.sq_off.ring_mask);
    sq_entries_ = *RingU32(sq_ring_, params.sq_off.ring_entries);
    sq_array_ = RingU32(sq_ring_, params.sq_off.array);
    cq_head_ = RingU32(cq_ring_, params.cq_off.head);
    cq_tail_ = RingU32(cq_ring_, params.cq_off.tail);
    cq_mask_ = *RingU32(cq_ring_, params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq_ring_ + params.cq_off.cqes);
    ok_ = true;
  }

  ~IoUringReactor() override {
    if (sqes_ != nullptr) munmap(sqes_, sqes_size_);
    if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
      munmap(cq_ring_, cq_size_);
    }
    if (sq_ring_ != nullptr) munmap(sq_ring_, sq_size_);
    if (ring_fd_ >= 0) close(ring_fd_);
  }

  bool ok() const { return ok_; }
  const char* name() const override { return "io_uring"; }

  bool Add(int fd, bool read, bool write) override {
    fds_[fd] = Interest{read, write, /*armed=*/false};
    return true;
  }

  bool Modify(int fd, bool read, bool write) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return false;
    it->second.read = read;
    it->second.write = write;
    if (it->second.armed) {
      // The in-flight oneshot poll watches the old mask; cancel it and
      // let the next Wait re-arm with the new one. A poll that already
      // completed (cancel → -ENOENT) just delivers one event under the
      // old mask — spurious, harmless under level-triggered semantics.
      CancelPoll(fd);
      it->second.armed = false;
    }
    return true;
  }

  void Remove(int fd) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) return;
    if (it->second.armed) CancelPoll(fd);
    fds_.erase(it);
  }

  int Wait(std::vector<ReactorEvent>* events, int timeout_ms) override {
    // Arm every registered fd that has no poll in flight.
    for (auto& [fd, interest] : fds_) {
      if (interest.armed || (!interest.read && !interest.write)) continue;
      io_uring_sqe* sqe = GetSqe();
      if (sqe == nullptr) return -1;
      sqe->opcode = IORING_OP_POLL_ADD;
      sqe->fd = fd;
      uint16_t mask = POLLRDHUP;
      if (interest.read) mask |= POLLIN;
      if (interest.write) mask |= POLLOUT;
      sqe->poll_events = mask;
      sqe->user_data = static_cast<uint64_t>(fd);
      interest.armed = true;
    }
    // A bounded wait rides a timeout op in the same submission; its
    // completion (-ETIME) is what unblocks the enter.
    if (timeout_ms >= 0) {
      io_uring_sqe* sqe = GetSqe();
      if (sqe == nullptr) return -1;
      timeout_ts_.tv_sec = timeout_ms / 1000;
      timeout_ts_.tv_nsec = int64_t{timeout_ms % 1000} * 1000000;
      sqe->opcode = IORING_OP_TIMEOUT;
      sqe->fd = -1;
      sqe->addr = reinterpret_cast<uint64_t>(&timeout_ts_);
      sqe->len = 1;
      sqe->user_data = kTimeoutData;
    }

    int rc;
    do {
      rc = SysIoUringEnter(ring_fd_, to_submit_, /*min_complete=*/1,
                           IORING_ENTER_GETEVENTS);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return -1;
    to_submit_ = 0;

    int appended = 0;
    uint32_t head = __atomic_load_n(cq_head_, __ATOMIC_RELAXED);
    const uint32_t tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    for (; head != tail; ++head) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      if (cqe.user_data == kTimeoutData || cqe.user_data == kCancelData) {
        continue;  // timer fired / cancel op result — not fd events
      }
      const int fd = static_cast<int>(cqe.user_data);
      auto it = fds_.find(fd);
      if (it == fds_.end()) continue;  // stale completion after Remove
      it->second.armed = false;
      if (cqe.res == -ECANCELED) continue;  // Modify() rearm in progress
      ReactorEvent ev;
      ev.fd = fd;
      if (cqe.res < 0) {
        ev.error = true;
        ev.readable = true;  // let the read path observe the failure
      } else {
        const uint32_t mask = static_cast<uint32_t>(cqe.res);
        ev.readable = (mask & (POLLIN | POLLHUP | POLLRDHUP)) != 0;
        ev.writable = (mask & POLLOUT) != 0;
        ev.error = (mask & (POLLERR | POLLHUP)) != 0;
      }
      events->push_back(ev);
      ++appended;
    }
    __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    return appended;
  }

 private:
  static constexpr unsigned kEntries = 256;
  static constexpr uint64_t kTimeoutData = ~uint64_t{0};
  static constexpr uint64_t kCancelData = ~uint64_t{0} - 1;

  struct Interest {
    bool read = false;
    bool write = false;
    bool armed = false;
  };

  static uint32_t* RingU32(uint8_t* base, uint32_t off) {
    return reinterpret_cast<uint32_t*>(base + off);
  }

  /// Next free SQE (zeroed), flushing with a submit-only enter when the
  /// ring is full. nullptr only if that flush fails.
  io_uring_sqe* GetSqe() {
    uint32_t tail = *sq_tail_;  // sole producer: plain read is ours
    const uint32_t head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    if (tail - head >= sq_entries_) {
      int rc;
      do {
        rc = SysIoUringEnter(ring_fd_, to_submit_, 0, 0);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) return nullptr;
      to_submit_ = 0;
    }
    const uint32_t idx = tail & sq_mask_;
    io_uring_sqe* sqe = &sqes_[idx];
    memset(sqe, 0, sizeof(*sqe));
    sq_array_[idx] = idx;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    ++to_submit_;
    return sqe;
  }

  void CancelPoll(int fd) {
    io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) return;
    sqe->opcode = IORING_OP_ASYNC_CANCEL;
    sqe->fd = -1;
    sqe->addr = static_cast<uint64_t>(fd);  // user_data of the poll
    sqe->user_data = kCancelData;
  }

  bool ok_ = false;
  int ring_fd_ = -1;
  uint8_t* sq_ring_ = nullptr;
  uint8_t* cq_ring_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  size_t sq_size_ = 0;
  size_t cq_size_ = 0;
  size_t sqes_size_ = 0;
  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t* sq_array_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t sq_entries_ = 0;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned to_submit_ = 0;
  __kernel_timespec timeout_ts_{};
  std::unordered_map<int, Interest> fds_;
};

#endif  // MARS_HAS_IO_URING

}  // namespace

bool IoUringAvailable() {
#ifdef MARS_HAS_IO_URING
  static const bool available = [] {
    io_uring_params params{};
    const int fd = SysIoUringSetup(4, &params);
    if (fd < 0) return false;
    close(fd);
    return true;
  }();
  return available;
#else
  return false;
#endif
}

std::unique_ptr<Reactor> Reactor::Create(NetBackend backend) {
#ifdef MARS_HAS_IO_URING
  if (backend == NetBackend::kIoUring ||
      (backend == NetBackend::kAuto && IoUringAvailable())) {
    auto ring = std::make_unique<IoUringReactor>();
    if (ring->ok()) return ring;
    if (backend == NetBackend::kIoUring) return nullptr;
  }
#else
  if (backend == NetBackend::kIoUring) return nullptr;
#endif
  auto ep = std::make_unique<EpollReactor>();
  if (!ep->ok()) return nullptr;
  return ep;
}

}  // namespace mars
