// Readiness reactors for the TCP front-end: one interface, two
// backends.
//
//  * EpollReactor — level-triggered epoll. Always available; the
//    fallback and the CI-pinned path.
//  * IoUringReactor — io_uring submission/completion rings driven with
//    raw syscalls (io_uring_setup / io_uring_enter + mmap'd rings; the
//    toolchain here has <linux/io_uring.h> but no liburing). Readiness
//    is modeled as oneshot IORING_OP_POLL_ADD entries, re-armed per
//    Wait: the server loop's batched rhythm (arm every interest, one
//    enter syscall, drain every completion) is exactly the
//    submit/complete-in-batches discipline the rings are built for.
//    user_data carries the fd, so completions map back without a table.
//
// Both backends are level-triggered from the caller's point of view: a
// Wait returns an fd as readable for as long as unread bytes remain, so
// the connection state machine never needs the drain-to-EAGAIN
// discipline edge-triggering would force (it still drains — for
// batching, not correctness).
//
// Threading: a reactor belongs to the single thread that Waits on it.
// Add/Modify/Remove must come from that thread (the server loop owns
// both roles); nothing here is internally synchronized.
#ifndef MARS_NET_REACTOR_H_
#define MARS_NET_REACTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace mars {

/// Which reactor to run. kAuto probes the kernel once and picks
/// io_uring when a ring can actually be set up (not merely compiled
/// against), epoll otherwise.
enum class NetBackend : uint8_t { kAuto = 0, kEpoll = 1, kIoUring = 2 };

/// One readiness event. `error` covers hangup/error conditions; the
/// caller treats it like readability (the next read reports the close).
struct ReactorEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

class Reactor {
 public:
  virtual ~Reactor() = default;

  /// Backend name for stats/logs ("epoll" / "io_uring").
  virtual const char* name() const = 0;

  /// Registers `fd` with the given interest set. False on failure.
  virtual bool Add(int fd, bool read, bool write) = 0;

  /// Changes the interest set of a registered fd.
  virtual bool Modify(int fd, bool read, bool write) = 0;

  /// Unregisters `fd`. Safe to call just before closing it.
  virtual void Remove(int fd) = 0;

  /// Blocks up to `timeout_ms` (-1 = forever) and appends ready events.
  /// Returns the number appended, 0 on timeout, -1 on reactor failure.
  virtual int Wait(std::vector<ReactorEvent>* events, int timeout_ms) = 0;

  /// Builds the requested backend; nullptr when kIoUring was demanded
  /// on a kernel that cannot set a ring up.
  static std::unique_ptr<Reactor> Create(NetBackend backend);
};

/// True when this kernel accepts io_uring_setup (probed once, cached).
bool IoUringAvailable();

}  // namespace mars

#endif  // MARS_NET_REACTOR_H_
