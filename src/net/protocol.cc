#include "net/protocol.h"

#include <cstring>

namespace mars {

namespace {

/// Little-endian scalar append/read. The wire format is defined
/// little-endian (docs/PROTOCOL.md); like common/binary_io.h these copy
/// the host representation, which is correct on every platform this
/// library targets.
template <typename T>
void AppendScalar(T v, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &v, sizeof(T));
}

template <typename T>
T ReadScalar(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

/// Request payload: request_id + user + k + flags.
constexpr size_t kRequestPayloadBytes = 8 + 4 + 4 + 4;
/// Response payload before the item/score arrays.
constexpr size_t kResponseHeadBytes = 8 + 1 + 1 + 2 + 8 + 4;
/// Error payload: request_id + code.
constexpr size_t kErrorPayloadBytes = 8 + 4;

struct Crc32TableHolder {
  uint32_t v[256];
  Crc32TableHolder() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      v[i] = c;
    }
  }
};

const uint32_t* Crc32Table() {
  static const Crc32TableHolder holder;
  return holder.v;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendFrame(FrameType type, std::span<const uint8_t> payload,
                 std::vector<uint8_t>* out) {
  AppendScalar<uint32_t>(kWireMagic, out);
  AppendScalar<uint8_t>(kWireVersion, out);
  AppendScalar<uint8_t>(static_cast<uint8_t>(type), out);
  AppendScalar<uint16_t>(0, out);  // reserved
  AppendScalar<uint32_t>(static_cast<uint32_t>(payload.size()), out);
  AppendScalar<uint32_t>(Crc32(payload.data(), payload.size()), out);
  out->insert(out->end(), payload.begin(), payload.end());
}

void EncodeTopKRequest(uint64_t request_id, const TopKRequest& request,
                       std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  payload.reserve(kRequestPayloadBytes);
  AppendScalar<uint64_t>(request_id, &payload);
  AppendScalar<uint32_t>(request.user, &payload);
  AppendScalar<uint32_t>(request.k, &payload);
  AppendScalar<uint32_t>(request.flags, &payload);
  AppendFrame(FrameType::kTopKRequest, payload, out);
}

void EncodeTopKResponse(uint64_t request_id, const TopKResponse& response,
                        std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  const size_t count = response.items.size();
  payload.reserve(kResponseHeadBytes + count * 8);
  AppendScalar<uint64_t>(request_id, &payload);
  AppendScalar<uint8_t>(static_cast<uint8_t>(response.status), &payload);
  AppendScalar<uint8_t>(response.from_cache ? 1 : 0, &payload);
  AppendScalar<uint16_t>(0, &payload);  // reserved
  AppendScalar<uint64_t>(response.epoch, &payload);
  AppendScalar<uint32_t>(static_cast<uint32_t>(count), &payload);
  for (ItemId v : response.items) AppendScalar<uint32_t>(v, &payload);
  for (float s : response.scores) AppendScalar<float>(s, &payload);
  AppendFrame(FrameType::kTopKResponse, payload, out);
}

void EncodeError(uint64_t request_id, WireStatus code,
                 std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  payload.reserve(kErrorPayloadBytes);
  AppendScalar<uint64_t>(request_id, &payload);
  AppendScalar<uint32_t>(static_cast<uint32_t>(code), &payload);
  AppendFrame(FrameType::kError, payload, out);
}

bool DecodeTopKRequestPayload(std::span<const uint8_t> payload,
                              WireRequest* out) {
  if (payload.size() != kRequestPayloadBytes) return false;
  const uint8_t* p = payload.data();
  out->request_id = ReadScalar<uint64_t>(p);
  out->request.user = ReadScalar<uint32_t>(p + 8);
  out->request.k = ReadScalar<uint32_t>(p + 12);
  out->request.flags = ReadScalar<uint32_t>(p + 16);
  return true;
}

bool DecodeTopKResponsePayload(std::span<const uint8_t> payload,
                               WireResponse* out) {
  if (payload.size() < kResponseHeadBytes) return false;
  const uint8_t* p = payload.data();
  out->request_id = ReadScalar<uint64_t>(p);
  out->status = static_cast<WireStatus>(ReadScalar<uint8_t>(p + 8));
  out->response.status = static_cast<TopKStatus>(
      static_cast<uint8_t>(out->status) & 0x0Fu);
  out->response.from_cache = ReadScalar<uint8_t>(p + 9) != 0;
  if (ReadScalar<uint16_t>(p + 10) != 0) return false;  // reserved
  out->response.epoch = ReadScalar<uint64_t>(p + 12);
  const uint32_t count = ReadScalar<uint32_t>(p + 20);
  // Overflow-safe size check: count is bounded by the payload length
  // itself before the multiply.
  if (count > (payload.size() - kResponseHeadBytes) / 8) return false;
  if (payload.size() != kResponseHeadBytes + size_t{count} * 8) return false;
  out->response.items.resize(count);
  out->response.scores.resize(count);
  const uint8_t* items = p + kResponseHeadBytes;
  const uint8_t* scores = items + size_t{count} * 4;
  for (uint32_t i = 0; i < count; ++i) {
    out->response.items[i] = ReadScalar<uint32_t>(items + size_t{i} * 4);
    out->response.scores[i] = ReadScalar<float>(scores + size_t{i} * 4);
  }
  return true;
}

bool DecodeErrorPayload(std::span<const uint8_t> payload,
                        uint64_t* request_id, WireStatus* code) {
  if (payload.size() != kErrorPayloadBytes) return false;
  *request_id = ReadScalar<uint64_t>(payload.data());
  *code = static_cast<WireStatus>(ReadScalar<uint32_t>(payload.data() + 8));
  return true;
}

void FrameDecoder::Append(const uint8_t* data, size_t n) {
  // Compact before growing once the consumed prefix dominates — keeps
  // the buffer bounded by (one frame + one read) regardless of how long
  // the connection lives.
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Result FrameDecoder::Next(Frame* out) {
  if (error_ != WireStatus::kOk) return Result::kBad;
  const size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return Result::kNeedMore;
  const uint8_t* h = buf_.data() + consumed_;

  // Header checks in trust order: each failure means the stream has no
  // recoverable framing (file comment in protocol.h).
  if (ReadScalar<uint32_t>(h) != kWireMagic) {
    return Fail(WireStatus::kBadFrame);
  }
  if (ReadScalar<uint16_t>(h + 6) != 0) {  // reserved bits
    return Fail(WireStatus::kBadFrame);
  }
  if (ReadScalar<uint8_t>(h + 4) != kWireVersion) {
    return Fail(WireStatus::kBadVersion);
  }
  const uint32_t payload_len = ReadScalar<uint32_t>(h + 8);
  if (payload_len > max_payload_) {
    return Fail(WireStatus::kOversized);
  }
  if (avail < kFrameHeaderBytes + payload_len) return Result::kNeedMore;

  const uint8_t* payload = h + kFrameHeaderBytes;
  if (Crc32(payload, payload_len) != ReadScalar<uint32_t>(h + 12)) {
    return Fail(WireStatus::kBadChecksum);
  }

  // Unknown frame *types* are NOT stream errors: the header framed the
  // payload correctly, so the receiver can answer kBadType and keep the
  // connection. The decoder passes the type through untouched.
  out->type = static_cast<FrameType>(ReadScalar<uint8_t>(h + 5));
  out->payload.assign(payload, payload + payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  return Result::kFrame;
}

}  // namespace mars
