// Per-connection state machine for the TCP front-end: owns the socket,
// a FrameDecoder reassembling whatever byte boundaries the transport
// delivers, and an outbound buffer that absorbs short writes. The
// server loop drives it purely through readiness callbacks; nothing
// here blocks.
//
// Error policy follows protocol.h's trust split: request-level
// rejections never reach this layer (the server answers them as
// responses); frame-level violations with intact framing (unknown type,
// malformed payload) queue a kError frame and keep the connection;
// stream-level violations queue a kError naming the latched decoder
// error and schedule close-after-flush — the one error frame is a
// courtesy, the close is the contract.
#ifndef MARS_NET_CONNECTION_H_
#define MARS_NET_CONNECTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/protocol.h"

namespace mars {

class Connection {
 public:
  /// Takes ownership of `fd` (closed on destruction). The fd must
  /// already be non-blocking.
  Connection(int fd, size_t max_frame_payload);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }

  /// Drains the socket's readable bytes into the decoder and decodes
  /// every complete frame: well-formed requests append to `out`,
  /// violations queue error frames per the policy above. Returns false
  /// when the connection is finished with its read side for good (peer
  /// closed, fatal socket error, or a stream-level violation latched) —
  /// the caller should stop watching readability; the connection still
  /// lives until its outbound buffer drains.
  bool ReadAndDecode(std::vector<WireRequest>* out);

  /// Appends a response frame to the outbound buffer.
  void QueueResponse(uint64_t request_id, const TopKResponse& response);

  /// Appends a kError frame to the outbound buffer (the server's seam
  /// for connection-level conditions such as backpressure shedding).
  void QueueError(uint64_t request_id, WireStatus code);

  /// Writes buffered bytes until EAGAIN or empty. Returns false on a
  /// fatal socket error (connection should be dropped immediately).
  bool Flush();

  /// Outbound bytes still buffered (caller keeps write interest while
  /// nonzero).
  bool wants_write() const { return write_pos_ < outbuf_.size(); }

  /// Outbound bytes queued but not yet accepted by the socket — the
  /// quantity NetServerOptions::max_queued_response_bytes bounds.
  size_t queued_bytes() const { return outbuf_.size() - write_pos_; }

  /// True once the connection has nothing left to do: read side done
  /// and outbound buffer drained.
  bool finished() const { return read_done_ && !wants_write(); }

  /// Decoded-frame count (server stats).
  uint64_t frames_decoded() const { return frames_decoded_; }
  /// Protocol violations seen (both recoverable and fatal).
  uint64_t protocol_errors() const { return protocol_errors_; }

 private:
  /// Handles one reassembled frame. Returns false when the connection
  /// must stop reading (stream latched — unreachable here since the
  /// decoder latches first, but kept explicit).
  void HandleFrame(const Frame& frame, std::vector<WireRequest>* out);

  int fd_;
  FrameDecoder decoder_;
  std::vector<uint8_t> outbuf_;
  size_t write_pos_ = 0;
  bool read_done_ = false;
  uint64_t frames_decoded_ = 0;
  uint64_t protocol_errors_ = 0;
};

}  // namespace mars

#endif  // MARS_NET_CONNECTION_H_
