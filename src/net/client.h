// NetClient: a small blocking TCP client for the MARS wire protocol —
// the reference peer the tests and the wire bench drive. One socket,
// client-assigned correlation ids, and two calling shapes:
//
//  * TopK — one request, one blocking round-trip.
//  * TopKPipelined — B requests written as one contiguous burst, then B
//    responses collected. This is how the bench loads the server's
//    natural batching: frames that arrive while a sweep runs pile up in
//    the server's socket buffer and are served as one TopKBatch.
//
// SendRaw/RecvFrame expose the byte layer for the robustness tests
// (crafted hostile frames, split writes).
#ifndef MARS_NET_CLIENT_H_
#define MARS_NET_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace mars {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects with a receive timeout (so a wedged peer fails a test in
  /// seconds instead of hanging it). False on refusal/timeout.
  /// `rcvbuf_bytes` > 0 shrinks SO_RCVBUF before connecting — the
  /// slow-reader seam: a tiny receive window makes an undrained client
  /// push queued bytes back into the server's buffers quickly.
  bool Connect(const std::string& host, uint16_t port,
               int recv_timeout_ms = 5000, int rcvbuf_bytes = 0);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One blocking round-trip. False on transport failure (send/recv);
  /// protocol-level rejections come back as *out's status.
  bool TopK(const TopKRequest& request, WireResponse* out);

  /// Writes all requests as one burst, then reads one response per
  /// request. Responses are returned in request order (matched by
  /// correlation id). False on transport failure or an unmatchable
  /// response id.
  bool TopKPipelined(std::span<const TopKRequest> requests,
                     std::vector<WireResponse>* out);

  /// Sends arbitrary bytes (test seam for hostile/split frames).
  bool SendRaw(std::span<const uint8_t> bytes);

  /// Blocks for the next complete frame. False on close/timeout or a
  /// stream-level decode failure.
  bool RecvFrame(Frame* out);

 private:
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameDecoder decoder_;
};

}  // namespace mars

#endif  // MARS_NET_CLIENT_H_
