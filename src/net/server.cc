#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace mars {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

NetServer::NetServer(TopKServer* server, NetServerOptions options)
    : top_k_(server), options_(std::move(options)) {}

NetServer::NetServer(std::shared_ptr<const ItemScorer> model,
                     size_t num_users, size_t num_items,
                     NetServerOptions options)
    : owned_(std::make_unique<TopKServer>(std::move(model), num_users,
                                          num_items, options.serve)),
      top_k_(owned_.get()),
      options_(std::move(options)) {}

NetServer::~NetServer() {
  Stop();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (stop_fd_ >= 0) close(stop_fd_);
}

bool NetServer::Start() {
  if (running_) return false;

  reactor_ = Reactor::Create(options_.backend);
  if (reactor_ == nullptr) return false;
  backend_name_ = reactor_->name();

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (options_.sndbuf_bytes > 0) {
    // Accepted sockets inherit the listener's buffer sizing.
    setsockopt(listen_fd_, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
               sizeof(options_.sndbuf_bytes));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return false;
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      listen(listen_fd_, SOMAXCONN) != 0 || !SetNonBlocking(listen_fd_)) {
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return false;
  }
  port_ = ntohs(bound.sin_port);

  stop_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (stop_fd_ < 0) return false;

  if (!reactor_->Add(listen_fd_, /*read=*/true, /*write=*/false) ||
      !reactor_->Add(stop_fd_, /*read=*/true, /*write=*/false)) {
    return false;
  }

  running_ = true;
  loop_ = std::thread([this] { RunLoop(); });
  return true;
}

void NetServer::Stop() {
  if (!running_) return;
  const uint64_t one = 1;
  // The reactor thread exits on the eventfd's readability; retry is
  // unnecessary (an eventfd write of 1 cannot fail with EAGAIN unless
  // the counter is saturated, which a single stop cannot do).
  [[maybe_unused]] const ssize_t n = write(stop_fd_, &one, sizeof(one));
  loop_.join();
  running_ = false;
}

void NetServer::RunLoop() {
  std::vector<ReactorEvent> events;
  std::vector<std::pair<int, WireRequest>> decoded;
  for (;;) {
    events.clear();
    const int n = reactor_->Wait(&events, /*timeout_ms=*/-1);
    if (n < 0) return;  // reactor failure: nothing sane left to do

    decoded.clear();
    bool stop = false;
    for (const ReactorEvent& ev : events) {
      if (ev.fd == stop_fd_) {
        stop = true;
        continue;
      }
      if (ev.fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      auto it = connections_.find(ev.fd);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();

      if (ev.readable || ev.error) {
        // Collect this connection's requests into the shared wake-up
        // batch; frames and violations roll up into server stats as
        // deltas after the call.
        const uint64_t frames_before = conn->frames_decoded();
        const uint64_t errors_before = conn->protocol_errors();
        std::vector<WireRequest> requests;
        const bool still_reading = conn->ReadAndDecode(&requests);
        frames_decoded_.fetch_add(conn->frames_decoded() - frames_before,
                                  std::memory_order_relaxed);
        protocol_errors_.fetch_add(
            conn->protocol_errors() - errors_before,
            std::memory_order_relaxed);
        for (const WireRequest& r : requests) {
          decoded.emplace_back(ev.fd, r);
        }
        // Error frames queued during decode (frame-level violations
        // produce no request for ServeDecoded to answer) go out now;
        // leftover bytes arm write interest below.
        if (conn->wants_write() && !conn->Flush()) {
          DropConnection(ev.fd);
          continue;
        }
        if (!still_reading) {
          // Read side finished. Requests decoded in this very wake-up
          // (a client that sent-then-half-closed) still get served:
          // ServeDecoded queues their responses and the flush loop
          // drops the connection once drained. Only a connection with
          // nothing in flight dies here.
          if (!conn->wants_write() && requests.empty()) {
            DropConnection(ev.fd);
            continue;
          }
          reactor_->Modify(ev.fd, /*read=*/false, conn->wants_write());
        } else if (conn->wants_write()) {
          reactor_->Modify(ev.fd, /*read=*/true, /*write=*/true);
        }
      }
      if (ev.writable) {
        if (!conn->Flush()) {
          DropConnection(ev.fd);
          continue;
        }
        if (conn->finished()) {
          DropConnection(ev.fd);
          continue;
        }
        if (!conn->wants_write()) {
          reactor_->Modify(ev.fd, /*read=*/true, /*write=*/false);
        }
      }
    }

    // Everything decoded this wake-up — across all connections — is
    // served through TopKBatch together (the natural batch).
    if (!decoded.empty()) ServeDecoded(&decoded);

    if (stop) return;
  }
}

void NetServer::AcceptReady() {
  for (;;) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient accept failure
    }
    if (connections_.size() >= options_.max_connections) {
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!reactor_->Add(fd, /*read=*/true, /*write=*/false)) {
      close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_.emplace(
        fd, std::make_unique<Connection>(fd, options_.max_frame_payload));
  }
}

void NetServer::ServeDecoded(
    std::vector<std::pair<int, WireRequest>>* decoded) {
  std::vector<TopKRequest> batch;
  std::vector<size_t> positions;
  size_t at = 0;
  while (at < decoded->size()) {
    const size_t n =
        std::min(options_.max_wire_batch, decoded->size() - at);
    batch.clear();
    positions.clear();
    for (size_t i = 0; i < n; ++i) {
      batch.push_back((*decoded)[at + i].second.request);
      positions.push_back(at + i);
    }
    const std::vector<TopKResponse> responses =
        top_k_->TopKBatch(std::span<const TopKRequest>(batch));
    wire_batches_.fetch_add(1, std::memory_order_relaxed);
    if (n > 1) {
      wire_batches_multi_.fetch_add(1, std::memory_order_relaxed);
    }
    requests_served_.fetch_add(n, std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      const auto& [fd, wire] = (*decoded)[positions[i]];
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // dropped mid-batch
      Connection* conn = it->second.get();
      conn->QueueResponse(wire.request_id, responses[i]);
      // Backpressure: a peer that pipelines requests without draining
      // responses grows this queue without bound (the socket buffer is
      // full, Flush can't shrink it). Shed the connection: one
      // best-effort kError naming the overload, one flush attempt for
      // whatever the socket still accepts, then close. Responses already
      // queued for this fd die with it — the peer declared itself
      // uninterested in reading them.
      if (options_.max_queued_response_bytes > 0 &&
          conn->queued_bytes() > options_.max_queued_response_bytes) {
        conn->QueueError(0, WireStatus::kOverloaded);
        conn->Flush();
        backpressure_closes_.fetch_add(1, std::memory_order_relaxed);
        DropConnection(fd);
      }
    }
    at += n;
  }

  // Push what fits now; leave write interest armed for the rest.
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection* conn = it->second.get();
    if (!conn->wants_write()) {
      ++it;
      continue;
    }
    if (!conn->Flush()) {
      const int fd = it->first;
      ++it;
      DropConnection(fd);
      continue;
    }
    if (conn->finished()) {
      const int fd = it->first;
      ++it;
      DropConnection(fd);
      continue;
    }
    if (conn->wants_write()) {
      reactor_->Modify(it->first, /*read=*/true, /*write=*/true);
    }
    ++it;
  }
}

void NetServer::DropConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  reactor_->Remove(fd);
  connections_.erase(it);  // Connection dtor closes the fd
}

NetServerStats NetServer::stats() const {
  NetServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_dropped =
      connections_dropped_.load(std::memory_order_relaxed);
  s.backpressure_closes =
      backpressure_closes_.load(std::memory_order_relaxed);
  s.frames_decoded = frames_decoded_.load(std::memory_order_relaxed);
  s.requests_served = requests_served_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.wire_batches = wire_batches_.load(std::memory_order_relaxed);
  s.wire_batches_multi =
      wire_batches_multi_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mars
