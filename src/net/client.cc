#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <unordered_map>

namespace mars {

NetClient::~NetClient() { Close(); }

bool NetClient::Connect(const std::string& host, uint16_t port,
                        int recv_timeout_ms, int rcvbuf_bytes) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  if (rcvbuf_bytes > 0) {
    // Must precede connect(): the window is negotiated at SYN time.
    setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
               sizeof(rcvbuf_bytes));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Close();
    return false;
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  decoder_ = FrameDecoder();
  return true;
}

void NetClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

bool NetClient::SendRaw(std::span<const uint8_t> bytes) {
  if (fd_ < 0) return false;
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool NetClient::RecvFrame(Frame* out) {
  if (fd_ < 0) return false;
  for (;;) {
    switch (decoder_.Next(out)) {
      case FrameDecoder::Result::kFrame:
        return true;
      case FrameDecoder::Result::kBad:
        return false;
      case FrameDecoder::Result::kNeedMore:
        break;
    }
    uint8_t chunk[16 * 1024];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // timeout or transport failure
    }
    if (n == 0) return false;  // peer closed mid-frame
    decoder_.Append(chunk, static_cast<size_t>(n));
  }
}

bool NetClient::TopK(const TopKRequest& request, WireResponse* out) {
  std::vector<WireResponse> responses;
  if (!TopKPipelined(std::span<const TopKRequest>(&request, 1),
                     &responses)) {
    return false;
  }
  *out = std::move(responses[0]);
  return true;
}

bool NetClient::TopKPipelined(std::span<const TopKRequest> requests,
                              std::vector<WireResponse>* out) {
  out->clear();
  if (requests.empty()) return true;

  // One contiguous burst: every frame in a single buffer, one send
  // path. id → position lets arrival order differ from request order.
  std::vector<uint8_t> burst;
  std::unordered_map<uint64_t, size_t> position;
  position.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const uint64_t id = next_request_id_++;
    EncodeTopKRequest(id, requests[i], &burst);
    position.emplace(id, i);
  }
  if (!SendRaw(burst)) return false;

  out->resize(requests.size());
  Frame frame;
  for (size_t received = 0; received < requests.size(); ++received) {
    if (!RecvFrame(&frame)) return false;
    WireResponse response;
    if (frame.type == FrameType::kError) {
      // The server names the violation and (for stream-level codes)
      // closes; surface it as a response so callers see the code.
      uint64_t id = 0;
      WireStatus code = WireStatus::kInternal;
      if (!DecodeErrorPayload(frame.payload, &id, &code)) return false;
      response.request_id = id;
      response.status = code;
    } else if (frame.type == FrameType::kTopKResponse) {
      if (!DecodeTopKResponsePayload(frame.payload, &response)) {
        return false;
      }
    } else {
      return false;
    }
    const auto it = position.find(response.request_id);
    if (it == position.end()) return false;  // unmatchable id
    (*out)[it->second] = std::move(response);
    position.erase(it);
  }
  return true;
}

}  // namespace mars
