// Persisted top-k cache sidecar: warm serving starts for mapped snapshots.
//
// A freshly constructed TopKServer — e.g. one pointed at an mmap'd v3
// snapshot right after a restart or model swap (core/persistence.h
// LoadMarsMapped) — starts with an empty cache, so every hot user pays one
// cold full-catalog sweep before the >1000x cached path kicks in. The
// sidecar closes that gap: SaveTopKSidecar dumps the server's cached
// rankings next to the model snapshot, and WarmFromSidecar primes a new
// server with them, preserving the LRU order (per cache stripe — a
// striped server has no global recency order; configure cache.stripes=1
// when the exact global order matters), so the first query of a
// previously-hot user is a cache hit. Primed entries participate in
// incremental AbsorbWrites refreshes like swept ones, so a warmed cache
// also stays warm across mostly-clean training epochs.
//
// Pairing contract: a sidecar stores rankings, not parameters, so it is
// only meaningful next to the exact model snapshot it was generated
// with, served under the same TopKServerOptions (in particular the same
// exclude_interactions set). What the loader *verifies* is the cheap,
// mechanical part — k, user count, item count, per-entry bounds — which
// catches wrong-catalog and corrupt files; binding the sidecar to the
// right snapshot and options is the caller's job (ship the two files as
// a unit and regenerate the sidecar whenever either changes).
#ifndef MARS_SERVE_TOP_K_SIDECAR_H_
#define MARS_SERVE_TOP_K_SIDECAR_H_

#include <cstddef>
#include <string>

#include "serve/top_k_server.h"

namespace mars {

/// Writes every cached entry of `server` (most recently used first) to
/// `path`. Returns false on I/O error. An empty cache writes a valid,
/// empty sidecar.
bool SaveTopKSidecar(const TopKServer& server, const std::string& path);

/// Primes `server` from a sidecar previously written by SaveTopKSidecar.
/// The sidecar's k, user count, and item count must match the server's;
/// mismatches, bad magic, and truncated or corrupt entries load nothing
/// and return 0 with an error log. Returns the number of entries primed
/// (the server's LRU bound may retain fewer).
size_t WarmFromSidecar(TopKServer* server, const std::string& path);

}  // namespace mars

#endif  // MARS_SERVE_TOP_K_SIDECAR_H_
