// Top-k serving over a quiesced model: full-catalog sweep + bounded cache.
//
// TopKServer answers "top-k items for user u" by sweeping the *entire*
// catalog with the model's ScoreItemRange (the contiguous-block serving
// adapter every model overrides with its batch kernel — DotBatch for
// dot-product models, SquaredDistanceBatch for metric models, the fused
// WeightedFacetDot path for MARS/MAR), then keeps the ranked top-k per user
// in a bounded LRU cache so hot users are answered without touching the
// embedding tables at all.
//
// The sweep partitions [0, num_items) into the same balanced, cache-line-
// aligned contiguous ranges FacetStore::ShardRange hands to training
// shards; with a ThreadPool each worker scans one range sequentially in
// memory and keeps a local top-k, and the per-shard winners are merged.
//
// Invalidation is shard-granular: training steps mark dirtied rows in a
// WriteTracker (serve/write_tracker.h), and AbsorbWrites() — called at a
// quiesced epoch boundary, the same contract under which overlapped eval
// snapshots the model — drops every cached entry whose user row shard was
// touched, and *all* entries when any item shard was touched (a cached heap
// ranks the full catalog, so every item shard contributes to it).
//
// Threading contract: the model must be quiescent (no concurrent training
// writes) whenever TopK or AbsorbWrites runs — serve a snapshot, not the
// live tables (see ReplaceModel). The snapshot may equally be an immutable
// *mapped* model (core/persistence.h LoadMarsMapped): an mmap'd format-v3
// file whose score kernels read the mapping directly — quiescent by
// construction, swapped in through the same ReplaceModel contract, and
// typically warm-started from a persisted sidecar
// (serve/top_k_sidecar.h) instead of paying cold full-catalog sweeps.
// TopK itself is not re-entrant: one query at a time, though each query
// fans its sweep across the pool.
#ifndef MARS_SERVE_TOP_K_SERVER_H_
#define MARS_SERVE_TOP_K_SERVER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "eval/scorer.h"
#include "serve/write_tracker.h"

namespace mars {

class ThreadPool;

/// Serving knobs.
struct TopKServerOptions {
  /// Recommendations per query. Results are (score desc, item id asc);
  /// fewer than k come back when the catalog (minus exclusions) is smaller.
  size_t k = 10;
  /// Bounded cache: least-recently-queried users are evicted beyond this.
  size_t max_cached_users = 4096;
  /// Sweep partitions; 0 means one per pool thread (or 1 serial).
  size_t sweep_shards = 0;
  /// Pool for the parallel sweep (may be null → serial sweep). Models
  /// whose thread_safe() is false are swept serially regardless.
  ThreadPool* pool = nullptr;
  /// When set, items the user already interacted with are not recommended.
  const ImplicitDataset* exclude_interactions = nullptr;
};

/// One answered query.
struct TopKResult {
  std::vector<ItemId> items;  // ranked best-first
  std::vector<float> scores;  // parallel to items
  bool from_cache = false;
};

/// Serving-side counters (cumulative since construction).
struct TopKServerStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidated = 0;  // cached entries dropped by AbsorbWrites
  uint64_t evictions = 0;    // entries dropped by the LRU bound
  uint64_t primed = 0;       // entries inserted by Prime (sidecar warm-up)
  size_t cached_users = 0;
};

/// Full-catalog top-k server with shard-invalidated per-user cache.
class TopKServer {
 public:
  /// `model` scores the catalog [0, num_items) for users [0, num_users);
  /// it must outlive the server (swap snapshots with ReplaceModel).
  TopKServer(const ItemScorer* model, size_t num_users, size_t num_items,
             TopKServerOptions options = {});

  size_t num_users() const { return num_users_; }
  size_t num_items() const { return num_items_; }
  const TopKServerOptions& options() const { return options_; }

  /// Top-k for `u`: cache hit, or a full-catalog sweep that fills the cache.
  TopKResult TopK(UserId u);

  /// Consumes the tracker's dirty flags (and clears them): entries of users
  /// in dirtied user shards are invalidated, and any dirty item shard
  /// invalidates every entry. Call only at a quiesced epoch boundary,
  /// typically right after snapshotting the model for serving.
  void AbsorbWrites(WriteTracker* tracker);

  /// Points the server at a fresh quiesced snapshot of the same shape.
  /// Does not invalidate by itself — pair with AbsorbWrites, which knows
  /// what actually changed.
  void ReplaceModel(const ItemScorer* model);

  /// Drops every cached entry (e.g. after a model swap of unknown delta).
  void InvalidateAll();

  /// Inserts a precomputed ranking for `u` as if a sweep had produced it
  /// (the warm-start path of serve/top_k_sidecar.h). The list must be
  /// ranked best-first with parallel scores, at most min(k, num_items)
  /// long, with every id inside the catalog; an existing entry for `u` is
  /// replaced. Counts as neither hit nor miss; the LRU bound still
  /// applies. Returns false (no insert) on out-of-range user or item,
  /// mismatched lengths, or an over-long list.
  bool Prime(UserId u, std::vector<ItemId> items, std::vector<float> scores);

  /// Visits every cached entry, most recently used first. Quiesced-side
  /// only, like AbsorbWrites (used to persist the cache as a sidecar).
  void ForEachCached(
      const std::function<void(UserId, const std::vector<ItemId>&,
                               const std::vector<float>&)>& fn) const;

  TopKServerStats stats() const;

 private:
  struct CacheEntry {
    std::vector<ItemId> items;  // ranked best-first
    std::vector<float> scores;
    std::list<UserId>::iterator lru_pos;
  };

  /// Full-catalog sweep for `u`; fills `items`/`scores` ranked best-first.
  void Sweep(UserId u, std::vector<ItemId>* items,
             std::vector<float>* scores);

  void EvictIfOverCap();

  const ItemScorer* model_;
  size_t num_users_;
  size_t num_items_;
  TopKServerOptions options_;

  // The cache is bounded, so AbsorbWrites invalidates *eagerly*: it scans
  // the (≤ max_cached_users) entries once and erases the stale ones, which
  // keeps lookups a plain hash find with no staleness check.
  std::unordered_map<UserId, CacheEntry> cache_;
  std::list<UserId> lru_;  // front = most recently used

  // Reused per-query sweep scratch (one slot per sweep shard).
  struct ShardScratch {
    std::vector<float> scores;                         // range-sized buffer
    std::vector<std::pair<float, ItemId>> candidates;  // local top-k
  };
  std::vector<ShardScratch> sweep_scratch_;

  TopKServerStats stats_;
};

}  // namespace mars

#endif  // MARS_SERVE_TOP_K_SERVER_H_
