// Concurrent top-k serving over epoch-swapped model snapshots.
//
// TopKServer answers "top-k items for user u" by sweeping the *entire*
// catalog with the model's ScoreItemRange (the contiguous-block serving
// adapter every model overrides with its batch kernel — DotBatch for
// dot-product models, SquaredDistanceBatch for metric models, the fused
// WeightedFacetDot path for MARS/MAR), then keeps the ranked top-k per user
// in a bounded, mutex-striped LRU cache so hot users are answered without
// touching the embedding tables at all.
//
// With ann.enable set (and a model that declares an index geometry — see
// eval/scorer.h), the miss path goes sub-linear: probe a CandidateIndex
// (ann/candidate_index.h) for an overfetched candidate block, then
// re-rank the block with the model's *exact* ScoreItems. Because every
// returned score still comes from the model's own gather kernel, an
// ANN-served ranking can only differ from the exact sweep in which items
// it considered (recall), never in any considered item's score; models
// with no geometry — and any epoch where the published model stops
// matching the index's shape — fall back to the exact sweep
// (stats().exact_fallbacks counts them, stats().ann_probes the probed
// misses). The index rides the same epoch-swap machinery as the model:
// it lives in its own SnapshotHandle, AbsorbWrites re-inserts only dirty
// item shards (CandidateIndex::Rebuilt — IVF keeps its centroids,
// reassigns dirty rows), and ReplaceModel rebuilds from scratch (unknown
// delta). A probe against a one-epoch-stale index costs recall only: the
// re-rank always scores with the pinned model snapshot. Cached entries
// produced by ANN misses are approximate in the same candidate-coverage
// sense, and incremental refresh preserves that: survivors keep their
// exact scores and dirty shards are re-scored exactly, so refresh never
// *lowers* an entry's recall.
//
// The server is split into two roles with different concurrency rights:
//
//  * Read front — TopK(). Any number of frontend threads may call it
//    concurrently. Each query pins the current model snapshot through a
//    SnapshotHandle (common/snapshot_handle.h) for its whole duration, so
//    a query always ranks exactly one published epoch even while the
//    maintenance side swaps in the next. The cache is sharded into
//    mutex-striped segments keyed by user shard; queries for users in
//    different stripes never contend, and a cache miss runs its sweep
//    entirely outside any stripe lock (fanned over the pool through
//    ThreadPool::RunBatch, whose batch-scoped completion lets concurrent
//    misses share the pool without waiting on each other's work).
//    Concurrent misses for the same user may sweep redundantly (last
//    insert wins) — wasted work, never wrong answers.
//
//  * Maintenance path — ReplaceModel / AbsorbWrites / PublishEpoch /
//    Prime / InvalidateAll / ForEachCached. Single-caller, run at a
//    quiesced epoch boundary (trainer pool idle) exactly like the
//    overlapped-eval snapshot; it may race freely with the read front but
//    not with itself. Publish order matters: swap the model first, then
//    absorb the tracker flags (PublishEpoch does both in order) — the
//    epoch bump is what stops in-flight queries from caching results of
//    the superseded snapshot after the absorb scan has passed.
//
// Invalidation is shard-granular and *incremental*: training steps mark
// dirtied rows in a WriteTracker (serve/write_tracker.h), and
// AbsorbWrites
//  - drops entries whose *user* shard was dirtied (the user row moved, so
//    every score of that user is stale),
//  - refreshes surviving entries in place when item shards dirtied:
//    cached entries lying in dirty shards are discarded (stale scores),
//    only the dirty shards are re-scored against the current snapshot,
//    and the k best of (surviving old entries + re-scored dirty
//    candidates) become the new ranking. The merge is exact whenever the
//    new k-th rank is no worse than the old one — clean entries below
//    the old cutoff still cannot reach the new cutoff. When the cutoff
//    *drops* (dirty shards held top items whose scores fell), the merge
//    alone cannot prove exactness and the entry is dropped instead
//    (counted in stats().refresh_drops) — its next query re-sweeps
//    lazily, the same bounded-stall policy as the all-dirty case, so an
//    absorb never holds a stripe lock longer than the cheap refreshes.
//    Mostly-clean epochs therefore keep the cache warm at a fraction of
//    the cold-sweep cost (bench/bench_serve.cpp measures the ratio;
//    scripts/check_bench.py gates it),
//  - falls back to dropping everything when every item shard is dirty (a
//    full re-sweep per entry costs the same as the cold miss it would
//    save — let the next query pay it lazily).
//
// The snapshot may equally be an immutable *mapped* model
// (core/persistence.h LoadMarsMapped): an mmap'd format-v3 file whose
// score kernels read the mapping directly — quiescent by construction,
// published through the same ReplaceModel contract, and typically
// warm-started from a persisted sidecar (serve/top_k_sidecar.h) instead
// of paying cold full-catalog sweeps.
#ifndef MARS_SERVE_TOP_K_SERVER_H_
#define MARS_SERVE_TOP_K_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ann/candidate_index.h"
#include "common/snapshot_handle.h"
#include "data/dataset.h"
#include "eval/scorer.h"
#include "serve/request.h"
#include "serve/write_tracker.h"

namespace mars {

class ThreadPool;

/// Cache knobs (TopKServerOptions::cache).
struct CacheOptions {
  /// Bounded cache: least-recently-queried users are evicted beyond this.
  /// The bound is distributed across the cache stripes (each stripe runs
  /// its own LRU over its share), so it holds globally by summation.
  size_t max_users = 4096;
  /// Mutex stripes of the cache, keyed by user shard — contiguous user-id
  /// ranges, matching the tracker's shard geometry. 0 means auto (16,
  /// clamped to the cache bound and user count); 1 gives a single global
  /// LRU — the exact pre-concurrency eviction semantics. Each stripe runs
  /// its own LRU over a 1/N share of max_users, so a hot set clustered in
  /// one id range competes for that stripe's share only; raise max_users
  /// (or lower stripes) if hot users are known to be id-contiguous rather
  /// than spread.
  size_t stripes = 0;
  /// Item-shard granularity of incremental refresh — must match the
  /// WriteTracker handed to AbsorbWrites (both sides clamp to the
  /// catalog size the same way).
  size_t item_shards = WriteTracker::kDefaultShards;
};

/// ANN serving knobs (TopKServerOptions::ann).
struct AnnOptions {
  /// Serve misses through an ANN candidate index when the model declares
  /// an index geometry (probe → exact re-rank; see the file comment).
  /// Models with IndexGeometry::kNone silently keep the exact sweep.
  bool enable = false;
  /// Index build/probe knobs (used when enable is set and no prebuilt
  /// index is injected).
  AnnIndexOptions index;
  /// Optional prebuilt index to serve from (implies enable); must cover
  /// exactly this server's catalog. The bench injects nprobe-swept clones
  /// this way; most callers leave it null and let the server build.
  std::shared_ptr<const CandidateIndex> prebuilt;
};

/// Miss-batching knobs (TopKServerOptions::batch).
struct BatchOptions {
  /// Miss coalescing: concurrent TopK misses that land while another miss
  /// is sweeping queue up and are served together as one multi-user
  /// batched sweep (ScoreItemRangeMulti / ProbeBatch — each item row is
  /// streamed once per batch instead of once per user). Every batched
  /// response is bit-identical to its solo sweep against the same pinned
  /// snapshot, and each user caches under its own pinned-epoch rule, so
  /// this changes throughput, never answers. An uncontended miss pays one
  /// uncontended mutex hop and sweeps alone — no added latency. Turn off
  /// to restore fully independent concurrent sweeps (e.g. many idle cores,
  /// no pool, compute-bound models). Pool worker threads always bypass the
  /// coalescer: a worker waiting on another miss's sweep could deadlock
  /// the pool that sweep fans over.
  bool coalesce_misses = true;
  /// Users per coalesced batch, at most (bounds the per-chunk score
  /// buffers; excess queued misses form the next batch).
  size_t max_batch = 16;
  /// Optional gathering window: a batch leader waits up to this long for
  /// more misses to queue before sweeping. 0 (default) adds no latency —
  /// batches then form only from misses that queued behind an in-flight
  /// sweep, which is where the win is under real concurrency.
  size_t window_us = 0;
};

/// Serving knobs. The cache/ann/batch sprawl lives in nested groups so
/// front-ends (net/server.h embeds the whole struct in NetServerOptions)
/// can carry, default, and document each concern as a unit; every group
/// is a plain aggregate, so field-for-field designated initialization
/// keeps working at every level.
struct TopKServerOptions {
  /// Recommendations per query. Results are (score desc, item id asc);
  /// fewer than k come back when the catalog (minus exclusions) is smaller.
  size_t k = 10;
  /// Sweep fan-out chunks; 0 means one per pool thread (or 1 serial).
  size_t sweep_shards = 0;
  /// Pool for the parallel sweep (may be null → serial sweep). Models
  /// whose thread_safe() is false are swept serially regardless, and the
  /// server serializes their sweeps across frontend threads too.
  ThreadPool* pool = nullptr;
  /// When set, items the user already interacted with are not recommended.
  const ImplicitDataset* exclude_interactions = nullptr;
  CacheOptions cache;
  AnnOptions ann;
  BatchOptions batch;
};

/// Serving-side counters (cumulative since construction).
struct TopKServerStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidated = 0;  // cached entries dropped by AbsorbWrites
  uint64_t refreshed = 0;    // entries incrementally refreshed in place
  uint64_t refresh_drops = 0;  // refresh candidates dropped instead (the
                               // k-th-rank cutoff dropped; see file doc —
                               // also counted in `invalidated`)
  uint64_t evictions = 0;    // entries dropped by the LRU bound
  uint64_t primed = 0;       // entries inserted by Prime (sidecar warm-up)
  uint64_t ann_probes = 0;   // misses served via the ANN probe/re-rank path
  uint64_t exact_fallbacks = 0;  // misses served by the exact full sweep
                                 // (ann_probes + exact_fallbacks == misses)
  uint64_t ann_refresh_probes = 0;  // entry refreshes whose dirty-shard
                                    // candidates came from an ANN probe
                                    // instead of full shard re-scores. A
                                    // maintenance-side counter: not an
                                    // ann_probe, so the miss identity
                                    // above stays exact. refreshed +
                                    // refresh_drops - ann_refresh_probes
                                    // = exact-path refresh attempts.
  // Batching efficacy (the miss coalescer + TopKBatch; a "batch" here is
  // a multi-user sweep of >= 2 users — solo misses don't count):
  uint64_t coalesced_misses = 0;  // misses served by a multi-user sweep
                                  // (duplicate concurrent misses for one
                                  // user each count — they were misses)
  uint64_t batch_sweeps = 0;      // multi-user sweeps executed
  uint64_t max_batch_size = 0;    // largest batch swept so far
  double mean_batch_size = 0.0;   // coalesced_misses / batch_sweeps
  size_t cached_users = 0;
};

/// Full-catalog top-k server: concurrent read front over a striped cache,
/// epoch-swapped snapshots, incremental shard-granular invalidation.
class TopKServer {
 public:
  /// `model` scores the catalog [0, num_items) for users [0, num_users);
  /// the server shares ownership, so the snapshot stays alive for as long
  /// as any in-flight query has it pinned.
  TopKServer(std::shared_ptr<const ItemScorer> model, size_t num_users,
             size_t num_items, TopKServerOptions options = {});

  /// Legacy non-owning form: `model` must outlive the server and every
  /// in-flight query (callers that own the model by value or unique_ptr).
  TopKServer(const ItemScorer* model, size_t num_users, size_t num_items,
             TopKServerOptions options = {});

  size_t num_users() const { return num_users_; }
  size_t num_items() const { return num_items_; }
  size_t num_item_shards() const { return item_shards_; }
  size_t num_cache_stripes() const { return stripes_.size(); }
  const TopKServerOptions& options() const { return options_; }
  /// Number of model epochs published so far (ReplaceModel calls).
  uint64_t epoch() const { return model_.epoch(); }

  /// Top-k for one request (serve/request.h — the surface the wire codec
  /// and in-process callers share): cache hit, or a full-catalog sweep of
  /// the pinned snapshot that fills the cache. Safe to call concurrently
  /// from any number of threads, including while the maintenance path
  /// publishes. With batch.coalesce_misses set (the default), a miss that
  /// arrives while another miss is sweeping joins the next multi-user
  /// batched sweep — same answer, one streaming pass over the catalog for
  /// the whole batch. Concurrent misses for the same user then share one
  /// sweep instead of sweeping redundantly (each still counts as its own
  /// miss, so hits + misses stays the query count).
  ///
  /// A malformed request (user outside the catalog, k above options().k,
  /// unknown flag bits) is *reported* — empty response with the matching
  /// TopKStatus — never asserted on: requests may come off a wire.
  /// request.k below the configured depth serves the exact prefix of the
  /// configured-depth ranking; kTopKFlagBypassCache skips the cache read
  /// (fresh sweep, still cached afterwards).
  TopKResponse TopK(const TopKRequest& request);

  /// Thin compat overload: the pre-request-API in-process form. Keeps the
  /// original assert-on-bad-id contract (MARS_CHECK) — in-process callers
  /// derive ids from the catalog shape, so a violation is a caller bug.
  TopKResponse TopK(UserId u);

  /// Positional batch form of TopK — the request-batching entry a wire
  /// front-end submits coalesced reads through. Hits (and malformed
  /// requests, which cost no sweep) resolve per position exactly as
  /// TopK(request) would; all missing users are swept together against
  /// one pinned snapshot via the multi-user kernels, each response
  /// bit-identical to a solo TopK against that snapshot and each user
  /// cached under its own pinned-epoch rule. Duplicate users in one call
  /// are served by a single sweep (counted as one miss). Concurrency
  /// rights are TopK's: any number of threads, racing maintenance freely.
  std::vector<TopKResponse> TopKBatch(std::span<const TopKRequest> requests);

  /// Thin compat overload over bare user ids (asserts like TopK(UserId)).
  std::vector<TopKResponse> TopKBatch(std::span<const UserId> users);

  // --- Maintenance path: single caller, quiesced epoch boundary. ----------

  /// Publishes a fresh quiesced snapshot of the same shape as the new
  /// serving epoch. In-flight queries keep the snapshot they pinned; new
  /// queries see this one. Does not invalidate by itself — pair with
  /// AbsorbWrites (after, not before), which knows what actually changed,
  /// or call InvalidateAll for a swap of unknown delta.
  void ReplaceModel(std::shared_ptr<const ItemScorer> model);
  /// Non-owning overload (see the legacy constructor's lifetime note).
  void ReplaceModel(const ItemScorer* model);

  /// Consumes the tracker's dirty flags (and clears them): entries of
  /// users in dirtied user shards are dropped; surviving entries are
  /// incrementally refreshed against the *current* snapshot when item
  /// shards dirtied (see file comment — call ReplaceModel first). The
  /// tracker's shard counts must match the server's (same defaults, same
  /// clamping). When ANN serving is on, dirty item shards are first
  /// re-inserted into the candidate index (an epoch-swapped Rebuilt — see
  /// the file comment) so post-absorb misses probe fresh lists, and the
  /// surviving entries then refresh *through* that rebuilt index: one
  /// probe supplies the dirty-shard candidates instead of re-scoring
  /// whole shards (stats().ann_refresh_probes; see RefreshEntry). Each
  /// stripe is refreshed under its own lock, so hits for
  /// that stripe's users stall for its refresh (≤ 1/4 of a cold sweep
  /// per entry on a mostly-clean epoch) while every other stripe keeps
  /// serving.
  void AbsorbWrites(WriteTracker* tracker);

  /// The epoch-boundary hook: ReplaceModel followed by AbsorbWrites, in
  /// the order the concurrency contract requires. `tracker` may be null
  /// when no write tracking is wired (then this is just ReplaceModel).
  void PublishEpoch(std::shared_ptr<const ItemScorer> model,
                    WriteTracker* tracker);

  /// Drops every cached entry (e.g. after a model swap of unknown delta).
  void InvalidateAll();

  /// Inserts a precomputed ranking for `u` as if a sweep had produced it
  /// (the warm-start path of serve/top_k_sidecar.h). The list must be
  /// ranked best-first with parallel scores, at most min(k, num_items)
  /// long, with every id inside the catalog; an existing entry for `u` is
  /// replaced. Counts as neither hit nor miss; the stripe's LRU bound
  /// still applies. A primed entry refreshes like a swept one — provided
  /// it really was the current snapshot's top-k, which is the sidecar
  /// pairing contract. Returns false (no insert) on out-of-range user or
  /// item, mismatched lengths, or an over-long list.
  bool Prime(UserId u, std::vector<ItemId> items, std::vector<float> scores);

  /// Visits every cached entry, most recently used first *within each
  /// stripe* (stripes are visited in user-shard order; there is no global
  /// recency order across stripes — configure cache.stripes = 1 when one
  /// is required). Maintenance-side only, like AbsorbWrites (used to
  /// persist the cache as a sidecar). The callback runs under the
  /// stripe's lock: it must not call back into this server (TopK, stats,
  /// Prime, … would self-deadlock on the non-recursive stripe mutex).
  void ForEachCached(
      const std::function<void(UserId, const std::vector<ItemId>&,
                               const std::vector<float>&)>& fn) const;

  /// The currently published candidate index — null when ANN serving is
  /// off, the model declares no geometry, or no index exists yet. The
  /// persistence hook: save it next to the model snapshot + sidecar
  /// (ann/index_io.h SaveCandidateIndex) so a restart can inject the
  /// mapped file back through AnnOptions::prebuilt instead of re-running
  /// the build. The returned snapshot is pinned like any in-flight
  /// probe's; call at a quiesced boundary so it pairs with the model
  /// being saved.
  std::shared_ptr<const CandidateIndex> AnnIndexSnapshot() const {
    return ann_index_.Acquire();
  }

  TopKServerStats stats() const;

 private:
  struct CacheEntry {
    std::vector<ItemId> items;  // ranked best-first
    std::vector<float> scores;
    uint64_t epoch = 0;  // epoch the entry was computed/refreshed against
    std::list<UserId>::iterator lru_pos;
  };

  /// One cache segment: its own lock, map, LRU, capacity share, counters.
  /// Counters live here (not in one global struct) so the hot path never
  /// touches a cross-stripe cache line; stats() sums them.
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<UserId, CacheEntry> map;
    std::list<UserId> lru;  // front = most recently used
    size_t capacity = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidated = 0;
    uint64_t refreshed = 0;
    uint64_t refresh_drops = 0;
    uint64_t evictions = 0;
    uint64_t primed = 0;
  };

  /// Buffers reused across RefreshEntry calls within one AbsorbWrites
  /// pass — refreshes run under a stripe lock, so per-entry allocation
  /// churn there directly lengthens read-front stalls.
  struct RefreshScratch {
    std::vector<float> scores;
    std::vector<std::pair<float, ItemId>> candidates;
    std::vector<ItemId> merged_items;
    std::vector<float> merged_scores;
    // ANN refresh path (see RefreshEntry): probe query, probed ids, and
    // the dirty-shard subset that actually gets re-scored.
    std::vector<float> query;
    std::vector<ItemId> probe_ids;
    std::vector<ItemId> dirty_cands;
  };

  /// One miss waiting in the coalescer: filled in and flagged done by the
  /// batch leader that claims it, under batch_mu_.
  struct PendingMiss {
    UserId user = 0;
    TopKResponse result;
    bool done = false;
  };

  size_t StripeOf(UserId u) const;

  /// Request validation shared by TopK(request) and TopKBatch(requests):
  /// returns false (and stamps the rejecting status into `out`) for an
  /// out-of-range user, k above the configured depth, or unknown flags.
  bool ValidateRequest(const TopKRequest& request, TopKResponse* out) const;

  /// Serves one well-formed user query: cache hit unless `bypass_cache`,
  /// else the (possibly coalesced) miss path. The core behind both TopK
  /// forms.
  TopKResponse ServeOne(UserId u, bool bypass_cache);

  /// Truncates a configured-depth response to a smaller requested k (a
  /// prefix of a top-K ranking is the top-k ranking). k = 0 keeps the
  /// configured depth.
  static void TruncateToK(uint32_t k, TopKResponse* out);

  /// The hit fast path shared by TopK and TopKBatch: on a hit, bumps the
  /// stripe's counters, touches the LRU, copies the entry into `out` and
  /// returns true.
  bool TryCacheHit(UserId u, TopKResponse* out);

  /// Miss-path core shared by TopK, the coalescer and TopKBatch: pins one
  /// (snapshot, epoch) for the whole batch, sweeps every user against it
  /// (solo kernels for one user; the multi-user batched sweep for >= 2),
  /// stamps per-result epochs, and attributes stats. `users` must be
  /// deduplicated and non-empty; returns the pinned epoch.
  /// `extra_requests` is the number of duplicate miss *queries* beyond
  /// the deduped users this sweep also serves (the coalescer counts each
  /// caller as a miss of its own, so the per-path counters must too —
  /// `ann_probes + exact_fallbacks == misses` stays exact).
  uint64_t SweepMisses(std::span<const UserId> users,
                       std::vector<TopKResponse>* results,
                       size_t extra_requests = 0);

  /// Caches a finished miss for `u` under the pinned-epoch rule (and
  /// counts the miss) — the tail of the classic TopK miss path, shared
  /// verbatim by the batched paths so every batch member inserts exactly
  /// as its solo sweep would.
  void InsertMissEntry(UserId u, const TopKResponse& result,
                       uint64_t pinned_epoch);

  /// The coalesced miss path (see BatchOptions::coalesce_misses): queue
  /// behind an in-flight sweep, else become the leader, claim up to
  /// batch.max_batch queued misses and sweep them as one batch.
  TopKResponse CoalescedMiss(UserId u);

  /// Full-catalog sweep of `model` for `u` into a ranked top-k. Runs
  /// outside every stripe lock; fans out over the pool when the model
  /// allows it and the calling thread is not itself a pool worker.
  void Sweep(const ItemScorer& model, UserId u, std::vector<ItemId>* items,
             std::vector<float>* scores);

  /// ANN miss path: probe `index` for an overfetched candidate block
  /// (k·overfetch, widened by the user's exclusion count so filtering
  /// cannot shorten the answer), re-rank it with the model's exact
  /// ScoreItems, and apply the usual exclusion + (score desc, id asc)
  /// ranking. Runs outside every stripe lock, like Sweep.
  void AnnSweep(const ItemScorer& model, const CandidateIndex& index,
                UserId u, std::vector<ItemId>* items,
                std::vector<float>* scores);

  /// Multi-user exact sweep (batch size >= 2): one RunBatch job per item
  /// chunk scores *all* batched users per block through
  /// ScoreItemRangeMulti, then runs the per-user bounded selection while
  /// the block's score rows are cache-hot; per-(user, chunk) pools merge
  /// exactly as Sweep's per-chunk pools do, so each user's ranking is
  /// bit-identical to a solo Sweep of the same snapshot.
  void BatchSweep(const ItemScorer& model, std::span<const UserId> users,
                  std::vector<TopKResponse>* results);

  /// Multi-user ANN path: per-user queries written into one packed
  /// buffer, one ProbeBatch (the IVF shares a single centroid-matrix scan
  /// across the batch), then the usual per-user exact re-rank — each
  /// user's answer is bit-identical to a solo AnnSweep.
  void AnnBatchSweep(const ItemScorer& model, const CandidateIndex& index,
                     std::span<const UserId> users,
                     std::vector<TopKResponse>* results);

  /// Maintenance-side index refresh against `snapshot`: incremental
  /// (CandidateIndex::Rebuilt over `dirty_items`) when a compatible index
  /// exists and a dirty list is given; otherwise a from-scratch factory
  /// build (which publishes null — exact fallback — for kNone models).
  void RefreshAnnIndex(const std::shared_ptr<const ItemScorer>& snapshot,
                       const std::vector<size_t>* dirty_items);

  /// Incremental refresh: re-scores the `dirty` item shards (sorted ids)
  /// and merges with the entry's surviving rows. With `ann` non-null (the
  /// just-rebuilt, snapshot-compatible candidate index) the dirty-shard
  /// candidates come from one index probe filtered to the dirty shards —
  /// probe cost instead of full shard re-scores — and only those few
  /// candidates are exact-scored; the acceptance threshold, merge, and
  /// exactness cutoff are the exact path's, so under an exhaustive probe
  /// (VP-tree, or IVF at full nprobe) the refreshed entry and the drop
  /// decision are bit-identical to `ann == nullptr`. An approximate probe
  /// degrades candidate coverage only — the same recall axis as
  /// ANN-served misses, never a mis-scored item. Returns false when the
  /// merge cannot prove exactness (the k-th-rank cutoff dropped) — the
  /// caller drops the entry and its next query re-sweeps lazily, keeping
  /// the per-entry stripe-lock hold bounded.
  bool RefreshEntry(const ItemScorer& model, UserId u,
                    const std::vector<size_t>& dirty,
                    const CandidateIndex* ann, RefreshScratch* scratch,
                    CacheEntry* entry);

  void EvictIfOverCap(Stripe* stripe);

  SnapshotHandle<ItemScorer> model_;
  size_t num_users_;
  size_t num_items_;
  size_t item_shards_;
  TopKServerOptions options_;

  /// ANN serving state: the index epoch-swaps exactly like the model. A
  /// null slot (kNone model, or ann disabled) keeps misses on the exact
  /// sweep. ann_enabled_ is fixed at construction; the per-miss
  /// geometry/dim re-check handles model swaps that invalidate the index.
  bool ann_enabled_ = false;
  SnapshotHandle<CandidateIndex> ann_index_;
  std::atomic<uint64_t> ann_probes_{0};
  std::atomic<uint64_t> exact_fallbacks_{0};
  std::atomic<uint64_t> ann_refresh_probes_{0};

  std::vector<Stripe> stripes_;

  /// Miss coalescer (reader-side): misses queue here while a batch leader
  /// sweeps; the leader claims up to batch.max_batch of them on its
  /// way out. batch_mu_ only ever guards queue/flag manipulation — sweeps
  /// run outside it, so the hot uncontended miss pays one mutex hop.
  std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::deque<PendingMiss*> batch_queue_;
  bool batch_leader_active_ = false;

  /// Batching efficacy counters (multi-user sweeps only; see stats()).
  std::atomic<uint64_t> batch_sweeps_{0};
  std::atomic<uint64_t> coalesced_misses_{0};
  std::atomic<uint64_t> max_batch_{0};

  /// Serializes sweeps of models whose thread_safe() is false (shared
  /// internal scoring scratch): concurrent queries would race it even on
  /// the serial sweep path.
  std::mutex serial_model_mu_;
};

}  // namespace mars

#endif  // MARS_SERVE_TOP_K_SERVER_H_
