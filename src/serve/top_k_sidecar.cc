#include "serve/top_k_sidecar.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "common/logging.h"

namespace mars {
namespace {

constexpr uint32_t kSidecarMagic = 0x4B53524D;  // "MRSK"
constexpr uint32_t kSidecarVersion = 1;

// Layout (little-endian):
//   magic u32, version u32, k u64, num_users u64, num_items u64,
//   num_entries u64, then per entry: user u32, count u32, count floats
//   (scores), count u32s (items). Entries are ordered most recently used
//   first, matching ForEachCached.

}  // namespace

bool SaveTopKSidecar(const TopKServer& server, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    MARS_LOG(ERROR) << "SaveTopKSidecar: cannot open " << path;
    return false;
  }
  // Collect in one ForEachCached traversal, then write the header with
  // the count actually collected: reading the count and the entries in
  // separate passes could disagree when frontend queries race the save
  // (the server's read front is allowed to run during maintenance), and
  // a mismatched count makes the loader reject the whole sidecar.
  struct Entry {
    UserId user;
    std::vector<ItemId> items;
    std::vector<float> scores;
  };
  std::vector<Entry> entries;
  server.ForEachCached([&entries](UserId u, const std::vector<ItemId>& items,
                                  const std::vector<float>& scores) {
    entries.push_back({u, items, scores});
  });
  WriteU32(out, kSidecarMagic);
  WriteU32(out, kSidecarVersion);
  WriteU64(out, server.options().k);
  WriteU64(out, server.num_users());
  WriteU64(out, server.num_items());
  WriteU64(out, entries.size());
  for (const Entry& e : entries) {
    WriteU32(out, e.user);
    WriteU32(out, static_cast<uint32_t>(e.items.size()));
    WriteFloats(out, e.scores.data(), e.scores.size());
    // Entries are tiny (<= k ids), so per-element writes through the
    // shared helper beat a raw byte dump that would bypass it.
    for (const ItemId v : e.items) WriteU32(out, v);
  }
  return out.good();
}

size_t WarmFromSidecar(TopKServer* server, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    MARS_LOG(ERROR) << "WarmFromSidecar: cannot open " << path;
    return 0;
  }
  uint32_t magic = 0, version = 0;
  if (!ReadU32(in, &magic) || magic != kSidecarMagic) {
    MARS_LOG(ERROR) << "WarmFromSidecar: bad magic in " << path;
    return 0;
  }
  if (!ReadU32(in, &version) || version != kSidecarVersion) {
    MARS_LOG(ERROR) << "WarmFromSidecar: unsupported sidecar version";
    return 0;
  }
  uint64_t k = 0, n_users = 0, n_items = 0, n_entries = 0;
  if (!ReadU64(in, &k) || !ReadU64(in, &n_users) || !ReadU64(in, &n_items) ||
      !ReadU64(in, &n_entries)) {
    MARS_LOG(ERROR) << "WarmFromSidecar: truncated header in " << path;
    return 0;
  }
  if (k != server->options().k || n_users != server->num_users() ||
      n_items != server->num_items()) {
    MARS_LOG(ERROR) << "WarmFromSidecar: sidecar shape (k=" << k << ", "
                    << n_users << " users, " << n_items << " items) does "
                    << "not match the server (k=" << server->options().k
                    << ", " << server->num_users() << " users, "
                    << server->num_items() << " items)";
    return 0;
  }
  if (n_entries > n_users) {
    MARS_LOG(ERROR) << "WarmFromSidecar: implausible entry count in "
                    << path;
    return 0;
  }

  // Parse every entry before touching the server: a corrupt sidecar loads
  // nothing instead of half a cache.
  struct Entry {
    UserId user;
    std::vector<ItemId> items;
    std::vector<float> scores;
  };
  const uint64_t max_count = std::min<uint64_t>(k, n_items);
  std::vector<Entry> entries;
  entries.reserve(n_entries);
  for (uint64_t i = 0; i < n_entries; ++i) {
    uint32_t user = 0, count = 0;
    if (!ReadU32(in, &user) || !ReadU32(in, &count) || user >= n_users ||
        count > max_count) {
      MARS_LOG(ERROR) << "WarmFromSidecar: corrupt entry " << i << " in "
                      << path;
      return 0;
    }
    Entry e;
    e.user = user;
    e.scores.resize(count);
    e.items.resize(count);
    if (!ReadFloats(in, e.scores.data(), count)) {
      MARS_LOG(ERROR) << "WarmFromSidecar: truncated entry " << i << " in "
                      << path;
      return 0;
    }
    for (ItemId& v : e.items) {
      if (!ReadU32(in, &v)) {
        MARS_LOG(ERROR) << "WarmFromSidecar: truncated entry " << i
                        << " in " << path;
        return 0;
      }
      if (v >= n_items) {
        MARS_LOG(ERROR) << "WarmFromSidecar: out-of-catalog item in entry "
                        << i << " of " << path;
        return 0;
      }
    }
    entries.push_back(std::move(e));
  }

  // The file stores most-recent-first; prime in reverse so the hottest
  // user ends up at the front of the LRU again.
  size_t primed = 0;
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (server->Prime(it->user, std::move(it->items),
                      std::move(it->scores))) {
      ++primed;
    }
  }
  return primed;
}

}  // namespace mars
