#include "serve/top_k_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/facet_store.h"
#include "common/thread_pool.h"

namespace mars {

namespace {

/// Items per scoring block of the multi-user batched sweep: the B score
/// rows of one block (B · 2048 · 4 bytes) stay cache-resident while the
/// per-user selection consumes them, and the block's item rows are
/// streamed from memory exactly once for the whole batch. Blocking is
/// invisible in the results — selection is exact per block and the merge
/// is the same bounded-pool merge the solo sweep uses.
constexpr size_t kBatchBlockItems = 2048;

/// Ranking order of the served lists: score descending, item id ascending
/// on ties — the same deterministic order the equivalence tests pin.
inline bool RanksBetter(const std::pair<float, ItemId>& a,
                        const std::pair<float, ItemId>& b) {
  return a.first > b.first || (a.first == b.first && a.second < b.second);
}

/// Shrinks `buf` to its k best entries by RanksBetter (unsorted).
inline void CompactTopK(std::vector<std::pair<float, ItemId>>* buf,
                        size_t k) {
  if (k == 0) {
    buf->clear();
    return;
  }
  if (buf->size() <= k) return;
  std::nth_element(buf->begin(), buf->begin() + (k - 1), buf->end(),
                   RanksBetter);
  buf->resize(k);
}

/// Streaming top-k selection over score ranges: threshold + bounded
/// append + rare nth_element compaction, one comparison per item in the
/// steady state. The state object exists so a blocked sweep (BatchSweep
/// feeds one block's scores at a time) carries the threshold *across*
/// blocks — resetting it per block re-warms the candidate buffer every
/// 2k items, which measurably dominates the batched sweep's non-scoring
/// cost at large catalogs. The threshold is always a sound rejector
/// (anything not beating the current k-th best can never make the
/// top-k), so feeding one range or many yields the same selection.
class RangeTopKSelector {
 public:
  RangeTopKSelector(UserId u, size_t k, const ImplicitDataset* exclude)
      : u_(u), k_(k), exclude_(exclude) {
    buf_.reserve(BufCap());
  }

  void Consume(const float* scores, ItemId begin, ItemId end) {
    if (k_ == 0) return;
    for (ItemId v = begin; v < end; ++v) {
      if (exclude_ != nullptr && exclude_->HasInteraction(u_, v)) continue;
      const std::pair<float, ItemId> cand{scores[v - begin], v};
      if (has_threshold_ && !RanksBetter(cand, threshold_)) continue;
      buf_.push_back(cand);
      if (buf_.size() >= BufCap()) {
        CompactTopK(&buf_, k_);
        threshold_ = buf_[k_ - 1];
        has_threshold_ = true;
      }
    }
  }

  /// Appends the k best consumed entries (unsorted) to `out`.
  void Finish(std::vector<std::pair<float, ItemId>>* out) {
    CompactTopK(&buf_, k_);
    out->insert(out->end(), buf_.begin(), buf_.end());
    buf_.clear();
    has_threshold_ = false;
  }

 private:
  size_t BufCap() const { return 4 * k_; }

  UserId u_;
  size_t k_;
  const ImplicitDataset* exclude_;
  std::vector<std::pair<float, ItemId>> buf_;
  std::pair<float, ItemId> threshold_{};
  bool has_threshold_ = false;
};

/// Appends the top-k (unsorted) of items [begin, end) to `out`, given
/// their scores in `scores[0 .. end-begin)`. One-shot wrapper over
/// RangeTopKSelector for the solo sweep's single-range calls.
void SelectRangeTopK(const float* scores, ItemId begin, ItemId end,
                     UserId u, size_t k, const ImplicitDataset* exclude,
                     std::vector<std::pair<float, ItemId>>* out) {
  if (k == 0) return;
  RangeTopKSelector selector(u, k, exclude);
  selector.Consume(scores, begin, end);
  selector.Finish(out);
}

/// Sorts a candidate pool's k best into the final ranked (items, scores).
void RankCandidates(std::vector<std::pair<float, ItemId>>* pool, size_t k,
                    std::vector<ItemId>* items, std::vector<float>* scores) {
  CompactTopK(pool, k);
  std::sort(pool->begin(), pool->end(), RanksBetter);
  items->resize(pool->size());
  scores->resize(pool->size());
  for (size_t i = 0; i < pool->size(); ++i) {
    (*items)[i] = (*pool)[i].second;
    (*scores)[i] = (*pool)[i].first;
  }
}

size_t ResolveStripeCount(const TopKServerOptions& options,
                          size_t num_users) {
  size_t stripes = options.cache.stripes > 0 ? options.cache.stripes : 16;
  if (options.cache.max_users > 0) {
    stripes = std::min(stripes, options.cache.max_users);
  }
  stripes = std::min(stripes, std::max<size_t>(1, num_users));
  return std::max<size_t>(1, stripes);
}

}  // namespace

TopKServer::TopKServer(std::shared_ptr<const ItemScorer> model,
                       size_t num_users, size_t num_items,
                       TopKServerOptions options)
    : model_(std::move(model)),
      num_users_(num_users),
      num_items_(num_items),
      item_shards_(WriteTracker::ClampedShardCount(
          num_items, options.cache.item_shards)),
      options_(options),
      stripes_(ResolveStripeCount(options, num_users)) {
  MARS_CHECK(model_.Acquire() != nullptr);
  MARS_CHECK(num_items >= 1);
  MARS_CHECK(options.cache.item_shards >= 1);
  // Distribute the cache bound exactly: stripe i takes an extra slot
  // until the remainder is used up, so the capacities sum to the bound.
  const size_t n = stripes_.size();
  for (size_t i = 0; i < n; ++i) {
    stripes_[i].capacity =
        options_.cache.max_users / n + (i < options_.cache.max_users % n);
  }
  if (options_.ann.prebuilt != nullptr) {
    MARS_CHECK_MSG(options_.ann.prebuilt->num_items() == num_items_,
                   "injected ANN index must cover the server's catalog");
    ann_enabled_ = true;
    ann_index_.Publish(options_.ann.prebuilt);
  } else if (options_.ann.enable) {
    ann_enabled_ = true;
    RefreshAnnIndex(model_.Acquire(), nullptr);
  }
}

TopKServer::TopKServer(const ItemScorer* model, size_t num_users,
                       size_t num_items, TopKServerOptions options)
    : TopKServer(UnownedSnapshot(model), num_users, num_items, options) {}

size_t TopKServer::StripeOf(UserId u) const {
  return FacetStore::ShardOf(num_users_, u, stripes_.size());
}

bool TopKServer::TryCacheHit(UserId u, TopKResponse* out) {
  Stripe& stripe = stripes_[StripeOf(u)];
  std::unique_lock<std::mutex> lock(stripe.mu);
  const auto it = stripe.map.find(u);
  if (it == stripe.map.end()) return false;
  ++stripe.hits;
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_pos);
  out->items = it->second.items;
  out->scores = it->second.scores;
  out->from_cache = true;
  out->epoch = it->second.epoch;
  return true;
}

bool TopKServer::ValidateRequest(const TopKRequest& request,
                                 TopKResponse* out) const {
  if (request.user >= num_users_) {
    out->status = TopKStatus::kInvalidUser;
  } else if (request.k > options_.k) {
    // The cache holds rankings at the configured depth; a deeper list
    // cannot be served as a prefix of it (see serve/request.h).
    out->status = TopKStatus::kInvalidK;
  } else if ((request.flags & ~kTopKFlagsMask) != 0) {
    out->status = TopKStatus::kInvalidFlags;
  } else {
    return true;
  }
  return false;
}

void TopKServer::TruncateToK(uint32_t k, TopKResponse* out) {
  if (k == 0 || out->items.size() <= k) return;
  out->items.resize(k);
  out->scores.resize(k);
}

TopKResponse TopKServer::ServeOne(UserId u, bool bypass_cache) {
  TopKResponse result;
  if (!bypass_cache && TryCacheHit(u, &result)) return result;
  // Pool workers bypass the coalescer: a worker parked behind another
  // miss's batch could be a worker that batch's RunBatch fan-out needs.
  if (options_.batch.coalesce_misses &&
      !(options_.pool != nullptr && options_.pool->IsWorkerThread())) {
    return CoalescedMiss(u);
  }
  std::vector<TopKResponse> results(1);
  const uint64_t pinned_epoch = SweepMisses({&u, 1}, &results);
  InsertMissEntry(u, results[0], pinned_epoch);
  return std::move(results[0]);
}

TopKResponse TopKServer::TopK(const TopKRequest& request) {
  TopKResponse result;
  if (!ValidateRequest(request, &result)) return result;
  result = ServeOne(request.user,
                    (request.flags & kTopKFlagBypassCache) != 0);
  TruncateToK(request.k, &result);
  return result;
}

TopKResponse TopKServer::TopK(UserId u) {
  MARS_CHECK(u < num_users_);
  return ServeOne(u, /*bypass_cache=*/false);
}

uint64_t TopKServer::SweepMisses(std::span<const UserId> users,
                                 std::vector<TopKResponse>* results,
                                 size_t extra_requests) {
  // Pin the current epoch once for the whole batch and sweep it outside
  // every lock — the maintenance side may publish the next epoch
  // mid-sweep without blocking us, and other stripes keep serving hits
  // meanwhile. Snapshot and epoch come from one Acquire, so each
  // result's label is always the epoch actually ranked.
  uint64_t pinned_epoch = 0;
  const std::shared_ptr<const ItemScorer> snapshot =
      model_.Acquire(&pinned_epoch);
  results->resize(users.size());
  // Probe the ANN index when one is live and still shaped like the pinned
  // model (a swap to a kNone or different-dim model quietly falls back to
  // the exact sweep). The index may be one epoch stale relative to the
  // snapshot — recall cost only; the re-rank scores with the snapshot.
  const std::shared_ptr<const CandidateIndex> index =
      ann_enabled_ ? ann_index_.Acquire() : nullptr;
  const bool ann_ok = index != nullptr &&
                      snapshot->index_geometry() != IndexGeometry::kNone &&
                      snapshot->index_dim() == index->dim();
  if (users.size() == 1) {
    // A batch of one takes the classic solo path — same kernels, same
    // scratch reuse, zero batching overhead.
    TopKResponse& r = (*results)[0];
    if (ann_ok) {
      AnnSweep(*snapshot, *index, users[0], &r.items, &r.scores);
    } else {
      Sweep(*snapshot, users[0], &r.items, &r.scores);
    }
  } else {
    if (ann_ok) {
      AnnBatchSweep(*snapshot, *index, users, results);
    } else {
      BatchSweep(*snapshot, users, results);
    }
    batch_sweeps_.fetch_add(1, std::memory_order_relaxed);
    coalesced_misses_.fetch_add(users.size() + extra_requests,
                                std::memory_order_relaxed);
    uint64_t seen = max_batch_.load(std::memory_order_relaxed);
    while (seen < users.size() &&
           !max_batch_.compare_exchange_weak(seen, users.size(),
                                             std::memory_order_relaxed)) {
    }
  }
  if (ann_ok) {
    ann_probes_.fetch_add(users.size() + extra_requests,
                          std::memory_order_relaxed);
  } else {
    exact_fallbacks_.fetch_add(users.size() + extra_requests,
                               std::memory_order_relaxed);
  }
  for (TopKResponse& r : *results) {
    r.epoch = pinned_epoch;
    r.from_cache = false;
  }
  return pinned_epoch;
}

void TopKServer::InsertMissEntry(UserId u, const TopKResponse& result,
                                 uint64_t pinned_epoch) {
  Stripe& stripe = stripes_[StripeOf(u)];
  std::unique_lock<std::mutex> lock(stripe.mu);
  ++stripe.misses;
  // Cache only when this is still the current epoch (checked under the
  // stripe lock — see the publish-order note in the file comment): if a
  // swap landed mid-sweep, either AbsorbWrites will still scan this
  // stripe after our insert (and repair the entry from the tracker
  // flags), or the epoch moved before we got here and we must not
  // publish a ranking of a superseded snapshot into the cache.
  if (stripe.capacity > 0 && model_.epoch() == pinned_epoch) {
    auto [it, inserted] = stripe.map.try_emplace(u);
    if (!inserted) {
      // A concurrent miss for the same user beat us here; replace its
      // payload (identical unless epochs differ) and reuse its LRU slot.
      stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru_pos);
    } else {
      stripe.lru.push_front(u);
      it->second.lru_pos = stripe.lru.begin();
    }
    it->second.items = result.items;
    it->second.scores = result.scores;
    it->second.epoch = pinned_epoch;
    EvictIfOverCap(&stripe);
  } else if (stripe.capacity > 0) {
    // The epoch moved mid-sweep, so this ranking must not be cached —
    // but the caller has already been *served* it at pinned_epoch. An
    // older entry for the same user may still be cached during the
    // publisher's swap-to-absorb window (AbsorbWrites hasn't reached
    // this stripe yet); serving it next would make this caller observe
    // the epoch going backwards. Drop it: per-user observed epochs stay
    // monotone, at the price of one lazy re-miss.
    const auto it = stripe.map.find(u);
    if (it != stripe.map.end() && it->second.epoch < pinned_epoch) {
      ++stripe.invalidated;
      stripe.lru.erase(it->second.lru_pos);
      stripe.map.erase(it);
    }
  }
}

TopKResponse TopKServer::CoalescedMiss(UserId u) {
  PendingMiss self;
  self.user = u;
  std::unique_lock<std::mutex> lock(batch_mu_);
  batch_queue_.push_back(&self);
  if (batch_leader_active_ && options_.batch.window_us > 0) {
    // A leader may be inside its gathering window — let it see us.
    batch_cv_.notify_all();
  }
  while (!self.done && batch_leader_active_) batch_cv_.wait(lock);
  if (self.done) return std::move(self.result);

  // No leader running: this miss leads the next batch. Claim ourselves
  // plus up to max_coalesced_batch - 1 queued misses, FIFO; anything
  // beyond the cap stays queued for the next leader.
  batch_leader_active_ = true;
  const size_t cap = std::max<size_t>(1, options_.batch.max_batch);
  batch_queue_.erase(
      std::find(batch_queue_.begin(), batch_queue_.end(), &self));
  if (options_.batch.window_us > 0 && batch_queue_.size() + 1 < cap) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(options_.batch.window_us);
    batch_cv_.wait_until(lock, deadline,
                         [&] { return batch_queue_.size() + 1 >= cap; });
  }
  std::vector<PendingMiss*> batch;
  batch.reserve(std::min(cap, batch_queue_.size() + 1));
  batch.push_back(&self);
  while (!batch_queue_.empty() && batch.size() < cap) {
    batch.push_back(batch_queue_.front());
    batch_queue_.pop_front();
  }
  lock.unlock();

  // Dedupe: concurrent misses for one user share a single sweep slot
  // (solo TopK would sweep them redundantly — wasted work, same answer).
  std::vector<UserId> users;
  std::vector<size_t> slot(batch.size());
  users.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    size_t s = 0;
    while (s < users.size() && users[s] != batch[i]->user) ++s;
    if (s == users.size()) users.push_back(batch[i]->user);
    slot[i] = s;
  }
  std::vector<TopKResponse> results;
  const uint64_t pinned_epoch =
      SweepMisses(users, &results, batch.size() - users.size());
  for (size_t s = 0; s < users.size(); ++s) {
    InsertMissEntry(users[s], results[s], pinned_epoch);
  }
  // Members beyond the first per user shared the sweep, but each was a
  // missed query of its own: count them so hits + misses stays the
  // query count (InsertMissEntry counted the first occurrences).
  std::vector<bool> seen(users.size(), false);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!seen[slot[i]]) {
      seen[slot[i]] = true;
      continue;
    }
    Stripe& stripe = stripes_[StripeOf(batch[i]->user)];
    std::unique_lock<std::mutex> stripe_lock(stripe.mu);
    ++stripe.misses;
  }

  lock.lock();
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i]->result = results[slot[i]];
    batch[i]->done = true;
  }
  batch_leader_active_ = false;
  lock.unlock();
  // Wake the claimed members (their results are in) and whichever queued
  // miss becomes the next leader.
  batch_cv_.notify_all();
  return std::move(self.result);
}

std::vector<TopKResponse> TopKServer::TopKBatch(
    std::span<const TopKRequest> requests) {
  std::vector<TopKResponse> out(requests.size());
  if (requests.empty()) return out;
  // Per-position resolution exactly as TopK(request) would: malformed
  // requests are stamped and cost no sweep, hits come off the cache
  // (unless bypassed), and the remaining users are deduped
  // (first-occurrence order) and swept as one batch.
  std::vector<UserId> miss_users;
  std::vector<size_t> miss_slot(requests.size(), static_cast<size_t>(-1));
  for (size_t i = 0; i < requests.size(); ++i) {
    const TopKRequest& request = requests[i];
    if (!ValidateRequest(request, &out[i])) continue;
    const UserId u = request.user;
    size_t s = 0;
    while (s < miss_users.size() && miss_users[s] != u) ++s;
    if (s < miss_users.size()) {
      miss_slot[i] = s;
      continue;
    }
    if ((request.flags & kTopKFlagBypassCache) == 0 &&
        TryCacheHit(u, &out[i])) {
      TruncateToK(request.k, &out[i]);
      continue;
    }
    miss_slot[i] = miss_users.size();
    miss_users.push_back(u);
  }
  if (miss_users.empty()) return out;
  // Sweep in groups of batch.max_batch — the same cap the coalescer
  // honors, bounding the per-chunk score buffers for arbitrarily large
  // requests. Each group pins its own epoch, like consecutive TopK calls.
  const size_t cap = std::max<size_t>(1, options_.batch.max_batch);
  std::vector<TopKResponse> results(miss_users.size());
  for (size_t base = 0; base < miss_users.size(); base += cap) {
    const size_t n = std::min(cap, miss_users.size() - base);
    std::vector<TopKResponse> group;
    const uint64_t pinned_epoch =
        SweepMisses({miss_users.data() + base, n}, &group);
    for (size_t s = 0; s < n; ++s) {
      InsertMissEntry(miss_users[base + s], group[s], pinned_epoch);
      results[base + s] = std::move(group[s]);
    }
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    if (miss_slot[i] != static_cast<size_t>(-1)) {
      out[i] = results[miss_slot[i]];
      TruncateToK(requests[i].k, &out[i]);
    }
  }
  return out;
}

std::vector<TopKResponse> TopKServer::TopKBatch(
    std::span<const UserId> users) {
  std::vector<TopKRequest> requests(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    MARS_CHECK(users[i] < num_users_);
    requests[i].user = users[i];
  }
  return TopKBatch(std::span<const TopKRequest>(requests));
}

void TopKServer::Sweep(const ItemScorer& model, UserId u,
                       std::vector<ItemId>* items,
                       std::vector<float>* scores) {
  const size_t k = std::min(options_.k, num_items_);
  const ImplicitDataset* exclude = options_.exclude_interactions;

  const bool parallel_ok = options_.pool != nullptr && model.thread_safe() &&
                           !options_.pool->IsWorkerThread();
  const size_t chunks = std::min(
      num_items_,
      std::max<size_t>(1, !parallel_ok ? 1
                          : options_.sweep_shards > 0
                              ? options_.sweep_shards
                              : options_.pool->num_threads()));

  // Each chunk scans one contiguous ShardRange — the item blocks inside
  // it are sequential in memory — and keeps a bounded local top-k.
  std::vector<std::vector<std::pair<float, ItemId>>> per_chunk(chunks);
  const auto scan_chunk = [&, k](size_t c) {
    const auto [begin, end] = FacetStore::ShardRange(num_items_, c, chunks);
    if (begin == end) return;
    // Per-thread score buffer: misses on one thread (or successive chunks
    // on one pool worker) reuse the allocation instead of paying a
    // catalog-sized malloc per sweep.
    static thread_local std::vector<float> chunk_scores;
    chunk_scores.resize(end - begin);
    model.ScoreItemRange(u, begin, end, chunk_scores.data());
    SelectRangeTopK(chunk_scores.data(), begin, end, u, k, exclude,
                    &per_chunk[c]);
  };

  if (chunks > 1) {
    options_.pool->RunBatch(chunks, scan_chunk);
  } else if (!model.thread_safe()) {
    // A model with shared internal scoring scratch cannot even be swept
    // serially from two frontend threads at once.
    std::unique_lock<std::mutex> lock(serial_model_mu_);
    scan_chunk(0);
  } else {
    scan_chunk(0);
  }

  // Merge the per-chunk winners (≤ k each) into the final ranking.
  std::vector<std::pair<float, ItemId>> merged;
  merged.reserve(chunks * k);
  for (const auto& chunk : per_chunk) {
    merged.insert(merged.end(), chunk.begin(), chunk.end());
  }
  RankCandidates(&merged, k, items, scores);
}

void TopKServer::AnnSweep(const ItemScorer& model, const CandidateIndex& index,
                          UserId u, std::vector<ItemId>* items,
                          std::vector<float>* scores) {
  const size_t k = std::min(options_.k, num_items_);
  if (k == 0) {
    items->clear();
    scores->clear();
    return;
  }
  const ImplicitDataset* exclude = options_.exclude_interactions;
  // Per-thread buffers, same rationale as Sweep's chunk scratch.
  static thread_local std::vector<float> query;
  static thread_local std::vector<ItemId> cands;
  static thread_local std::vector<float> cand_scores;
  query.resize(index.dim());
  cands.clear();
  // Overfetch: k·overfetch candidates absorb near-boundary ranking churn;
  // widening by the user's interaction count guarantees exclusion
  // filtering alone can never shorten the answer below k (for the exact
  // VP-tree this keeps the served top-k exactly the brute-force one).
  const size_t excluded = exclude != nullptr ? exclude->UserDegree(u) : 0;
  const size_t overfetch = std::max<size_t>(1, options_.ann.index.overfetch);
  const size_t want = std::max(k * overfetch, k + excluded);
  {
    // Same guard as Sweep: shared-scratch models are probed and re-ranked
    // under the serial-model lock.
    std::unique_lock<std::mutex> model_lock(serial_model_mu_,
                                            std::defer_lock);
    if (!model.thread_safe()) model_lock.lock();
    model.WriteIndexQuery(u, query.data());
    index.Probe(query.data(), want, &cands);
    cand_scores.resize(cands.size());
    model.ScoreItems(u, cands, cand_scores.data());
  }
  static thread_local std::vector<std::pair<float, ItemId>> selected;
  selected.clear();
  selected.reserve(cands.size());
  for (size_t i = 0; i < cands.size(); ++i) {
    if (exclude != nullptr && exclude->HasInteraction(u, cands[i])) continue;
    selected.emplace_back(cand_scores[i], cands[i]);
  }
  RankCandidates(&selected, k, items, scores);
}

void TopKServer::BatchSweep(const ItemScorer& model,
                            std::span<const UserId> users,
                            std::vector<TopKResponse>* results) {
  const size_t B = users.size();
  const size_t k = std::min(options_.k, num_items_);
  const ImplicitDataset* exclude = options_.exclude_interactions;

  const bool parallel_ok = options_.pool != nullptr && model.thread_safe() &&
                           !options_.pool->IsWorkerThread();
  const size_t chunks = std::min(
      num_items_,
      std::max<size_t>(1, !parallel_ok ? 1
                          : options_.sweep_shards > 0
                              ? options_.sweep_shards
                              : options_.pool->num_threads()));

  // chunks x B candidate pools, chunk-major: each chunk task owns a
  // contiguous run and never touches another task's pools.
  std::vector<std::vector<std::pair<float, ItemId>>> per_chunk(chunks * B);
  const auto scan_chunk = [&, k, B](size_t c) {
    const auto [begin, end] = FacetStore::ShardRange(num_items_, c, chunks);
    if (begin == end) return;
    // The chunk is scanned in kBatchBlockItems blocks: every item row in a
    // block is read once and scored for all B users (ScoreItemRangeMulti),
    // and the B score rows stay cache-resident while the per-user
    // selection consumes them. An item's score does not depend on the
    // range it was scored in, and the union of per-block top-ks contains
    // the chunk top-k, so blocking never changes the served ranking.
    static thread_local std::vector<float> block_scores;
    std::vector<float*> outs(B);
    // One selector per user for the whole chunk: the rejection threshold
    // tightens once over the first blocks and then survives block
    // boundaries, keeping selection at one comparison per item exactly
    // like the solo sweep's single-range call.
    std::vector<RangeTopKSelector> selectors;
    selectors.reserve(B);
    for (size_t b = 0; b < B; ++b) {
      selectors.emplace_back(users[b], k, exclude);
    }
    for (ItemId bb = begin; bb < end;
         bb += static_cast<ItemId>(kBatchBlockItems)) {
      const ItemId be =
          std::min<ItemId>(end, bb + static_cast<ItemId>(kBatchBlockItems));
      block_scores.resize(B * (be - bb));
      for (size_t b = 0; b < B; ++b) {
        outs[b] = block_scores.data() + b * (be - bb);
      }
      model.ScoreItemRangeMulti(users, bb, be, outs.data());
      for (size_t b = 0; b < B; ++b) {
        selectors[b].Consume(outs[b], bb, be);
      }
    }
    // Each pool carries <= k entries out of the chunk, bounding the merge.
    for (size_t b = 0; b < B; ++b) {
      selectors[b].Finish(&per_chunk[c * B + b]);
    }
  };

  if (chunks > 1) {
    options_.pool->RunBatch(chunks, scan_chunk);
  } else if (!model.thread_safe()) {
    // Same guard as Sweep: shared-scratch models are swept serially.
    std::unique_lock<std::mutex> lock(serial_model_mu_);
    scan_chunk(0);
  } else {
    scan_chunk(0);
  }

  std::vector<std::pair<float, ItemId>> merged;
  for (size_t b = 0; b < B; ++b) {
    merged.clear();
    merged.reserve(chunks * k);
    for (size_t c = 0; c < chunks; ++c) {
      const auto& pool = per_chunk[c * B + b];
      merged.insert(merged.end(), pool.begin(), pool.end());
    }
    RankCandidates(&merged, k, &(*results)[b].items, &(*results)[b].scores);
  }
}

void TopKServer::AnnBatchSweep(const ItemScorer& model,
                               const CandidateIndex& index,
                               std::span<const UserId> users,
                               std::vector<TopKResponse>* results) {
  const size_t B = users.size();
  const size_t k = std::min(options_.k, num_items_);
  if (k == 0) {
    for (TopKResponse& r : *results) {
      r.items.clear();
      r.scores.clear();
    }
    return;
  }
  const ImplicitDataset* exclude = options_.exclude_interactions;
  const size_t overfetch = std::max<size_t>(1, options_.ann.index.overfetch);
  std::vector<size_t> wants(B);
  std::vector<float> queries(B * index.dim());
  std::vector<std::vector<ItemId>> cands(B);
  std::vector<std::vector<float>> cand_scores(B);
  {
    // Same guard as AnnSweep: shared-scratch models are probed and
    // re-ranked under the serial-model lock.
    std::unique_lock<std::mutex> model_lock(serial_model_mu_,
                                            std::defer_lock);
    if (!model.thread_safe()) model_lock.lock();
    for (size_t b = 0; b < B; ++b) {
      const size_t excluded =
          exclude != nullptr ? exclude->UserDegree(users[b]) : 0;
      wants[b] = std::max(k * overfetch, k + excluded);
      model.WriteIndexQuery(users[b], queries.data() + b * index.dim());
    }
    // One shared probe: the IVF scores all B queries against the centroid
    // matrix in a single multi-query pass; per query the candidate set is
    // bit-identical to a solo Probe (the ProbeBatch contract), so the
    // re-ranked answers match B solo AnnSweeps of this snapshot.
    index.ProbeBatch(queries.data(), B, wants.data(), &cands);
    for (size_t b = 0; b < B; ++b) {
      cand_scores[b].resize(cands[b].size());
      model.ScoreItems(users[b], cands[b], cand_scores[b].data());
    }
  }
  std::vector<std::pair<float, ItemId>> selected;
  for (size_t b = 0; b < B; ++b) {
    selected.clear();
    selected.reserve(cands[b].size());
    for (size_t i = 0; i < cands[b].size(); ++i) {
      if (exclude != nullptr &&
          exclude->HasInteraction(users[b], cands[b][i])) {
        continue;
      }
      selected.emplace_back(cand_scores[b][i], cands[b][i]);
    }
    RankCandidates(&selected, k, &(*results)[b].items, &(*results)[b].scores);
  }
}

void TopKServer::RefreshAnnIndex(
    const std::shared_ptr<const ItemScorer>& snapshot,
    const std::vector<size_t>* dirty_items) {
  if (!ann_enabled_) return;
  const std::shared_ptr<const CandidateIndex> current = ann_index_.Acquire();
  if (dirty_items != nullptr && current != nullptr &&
      snapshot->index_geometry() != IndexGeometry::kNone &&
      snapshot->index_dim() == current->dim()) {
    ann_index_.Publish(current->Rebuilt(*snapshot, *dirty_items, item_shards_,
                                        options_.pool));
    return;
  }
  // From-scratch build: no index yet, an unknown delta, or the model
  // changed shape. Publishing null (kNone model) routes misses to the
  // exact sweep.
  ann_index_.Publish(BuildCandidateIndex(*snapshot, num_items_,
                                         options_.ann.index, options_.pool));
}

void TopKServer::AbsorbWrites(WriteTracker* tracker) {
  MARS_CHECK(tracker != nullptr);
  MARS_CHECK(tracker->num_users() == num_users_);
  MARS_CHECK(tracker->num_items() == num_items_);
  MARS_CHECK_MSG(tracker->num_item_shards() == item_shards_,
                 "WriteTracker item-shard count must match the server's "
                 "(TopKServerOptions::item_shards)");

  std::vector<size_t> dirty_items;
  for (size_t s = 0; s < item_shards_; ++s) {
    if (tracker->ItemShardDirty(s)) dirty_items.push_back(s);
  }
  // Refreshing every shard costs what the cold sweep it replaces would;
  // drop instead and let the next query pay one miss lazily.
  const bool all_items_dirty = dirty_items.size() == item_shards_;

  uint64_t current_epoch = 0;
  const std::shared_ptr<const ItemScorer> snapshot =
      model_.Acquire(&current_epoch);
  // Re-insert dirty item shards into the ANN index *before* the cache
  // scan, so every miss racing the scan (and every post-absorb miss)
  // probes lists consistent with the snapshot. All-dirty epochs rebuild
  // from scratch — same policy as the cache's drop-everything case: with
  // everything moved, fresh centroids beat reassignment onto stale ones.
  if (!dirty_items.empty()) {
    RefreshAnnIndex(snapshot, all_items_dirty ? nullptr : &dirty_items);
  }
  // Pin the just-rebuilt index for the refresh scan below: a compatible
  // one turns each entry refresh from "re-score every dirty shard" into
  // one probe + a handful of exact scores (RefreshEntry's ANN path). The
  // usual per-miss compatibility re-check applies — a kNone model or a
  // shape change keeps the refresh on the exact path.
  std::shared_ptr<const CandidateIndex> refresh_index;
  if (ann_enabled_ && !dirty_items.empty() && !all_items_dirty) {
    refresh_index = ann_index_.Acquire();
    if (refresh_index != nullptr &&
        (snapshot->index_geometry() == IndexGeometry::kNone ||
         snapshot->index_dim() != refresh_index->dim() ||
         refresh_index->num_items() != num_items_)) {
      refresh_index = nullptr;
    }
  }
  RefreshScratch scratch;
  for (Stripe& stripe : stripes_) {
    std::unique_lock<std::mutex> lock(stripe.mu);
    for (auto it = stripe.map.begin(); it != stripe.map.end();) {
      CacheEntry& entry = it->second;
      const bool user_dirty =
          tracker->UserShardDirty(tracker->UserShardOf(it->first));
      bool drop = user_dirty || all_items_dirty;
      if (!drop && !dirty_items.empty()) {
        if (RefreshEntry(*snapshot, it->first, dirty_items,
                         refresh_index.get(), &scratch, &entry)) {
          entry.epoch = current_epoch;
          ++stripe.refreshed;
        } else {
          // The k-th-rank cutoff dropped: exactness is unprovable by the
          // cheap merge. Drop and let the next query pay one lazy miss —
          // same bounded-stall policy as the all-dirty case above.
          drop = true;
          ++stripe.refresh_drops;
        }
      }
      if (drop) {
        ++stripe.invalidated;
        stripe.lru.erase(entry.lru_pos);
        it = stripe.map.erase(it);
      } else {
        ++it;
      }
    }
  }
  tracker->Clear();
}

bool TopKServer::RefreshEntry(const ItemScorer& model, UserId u,
                              const std::vector<size_t>& dirty,
                              const CandidateIndex* ann,
                              RefreshScratch* scratch, CacheEntry* entry) {
  const size_t k = std::min(options_.k, num_items_);
  if (k == 0) return true;  // nothing cached at k == 0; trivially exact
  const ImplicitDataset* exclude = options_.exclude_interactions;

  // Old k-th rank — the exactness cutoff. An entry shorter than k listed
  // the whole eligible catalog, so its merge is exhaustive and exact.
  const bool old_full = entry->items.size() >= k;
  const std::pair<float, ItemId> old_kth =
      old_full ? std::pair<float, ItemId>{entry->scores.back(),
                                          entry->items.back()}
               : std::pair<float, ItemId>{};

  // Survivors: cached rows outside every dirty shard (their scores are
  // byte-identical across the swap by the tracker contract). `dirty` is
  // sorted, so membership is a binary search.
  std::vector<std::pair<float, ItemId>>& candidates = scratch->candidates;
  candidates.clear();
  for (size_t i = 0; i < entry->items.size(); ++i) {
    const size_t s =
        FacetStore::ShardOf(num_items_, entry->items[i], item_shards_);
    if (!std::binary_search(dirty.begin(), dirty.end(), s)) {
      candidates.emplace_back(entry->scores[i], entry->items[i]);
    }
  }

  // Re-score the dirty shards against the current snapshot, accepting
  // into one shared buffer. The acceptance threshold starts at the *old*
  // k-th rank: a dirty item strictly worse than it can only enter the
  // new top-k if the cutoff drops — and a dropped cutoff fails the
  // exactness check below and re-sweeps anyway, so rejecting early loses
  // nothing. This keeps the refresh at ~one comparison per dirty item
  // (the old per-shard top-k selection dominated refresh cost at mid
  // catalog sizes). The threshold only tightens when accepts pile up.
  std::pair<float, ItemId> threshold = old_kth;
  bool has_threshold = old_full;
  {
    // Same guard as Sweep: a model with shared internal scoring scratch
    // must not be scored here while a frontend miss sweeps it.
    std::unique_lock<std::mutex> model_lock(serial_model_mu_,
                                            std::defer_lock);
    if (!model.thread_safe()) model_lock.lock();
    if (ann != nullptr) {
      // ANN candidate path: one probe of the rebuilt index supplies the
      // dirty-shard candidates, and only those few are exact-scored. The
      // want mirrors the miss path's (k·overfetch, widened by the user's
      // exclusion count), which is what makes an exhaustive probe
      // sufficient: any dirty item that can enter the new top-k ranks in
      // the global top-(k + excluded) under the new snapshot, so it is in
      // the probe set; every clean item above the old cutoff is already a
      // survivor. The acceptance threshold and exactness cutoff below are
      // shared with the exact path, so the refreshed entry — and the drop
      // decision — match it bit for bit (an approximate probe costs
      // candidate coverage only, the usual ANN recall axis).
      ann_refresh_probes_.fetch_add(1, std::memory_order_relaxed);
      const size_t overfetch =
          std::max<size_t>(1, options_.ann.index.overfetch);
      const size_t excluded =
          exclude != nullptr ? exclude->UserDegree(u) : 0;
      const size_t want = std::max(k * overfetch, k + excluded);
      scratch->query.resize(ann->dim());
      model.WriteIndexQuery(u, scratch->query.data());
      scratch->probe_ids.clear();
      ann->Probe(scratch->query.data(), want, &scratch->probe_ids);
      std::vector<ItemId>& dirty_cands = scratch->dirty_cands;
      dirty_cands.clear();
      for (const ItemId v : scratch->probe_ids) {
        const size_t s = FacetStore::ShardOf(num_items_, v, item_shards_);
        if (!std::binary_search(dirty.begin(), dirty.end(), s)) continue;
        if (exclude != nullptr && exclude->HasInteraction(u, v)) continue;
        dirty_cands.push_back(v);
      }
      if (!dirty_cands.empty()) {
        scratch->scores.resize(dirty_cands.size());
        model.ScoreItems(u, dirty_cands, scratch->scores.data());
        for (size_t i = 0; i < dirty_cands.size(); ++i) {
          const std::pair<float, ItemId> cand{scratch->scores[i],
                                              dirty_cands[i]};
          // Strictly-worse rejection, as below: the old k-th member must
          // survive its shard being dirtied.
          if (has_threshold && RanksBetter(threshold, cand)) continue;
          candidates.push_back(cand);
        }
      }
    } else {
      const size_t buf_cap = candidates.size() + 4 * k;
      for (const size_t s : dirty) {
        const auto [begin, end] =
            FacetStore::ShardRange(num_items_, s, item_shards_);
        if (begin >= end) continue;
        scratch->scores.resize(end - begin);
        model.ScoreItemRange(u, begin, end, scratch->scores.data());
        for (ItemId v = begin; v < end; ++v) {
          if (exclude != nullptr && exclude->HasInteraction(u, v)) continue;
          const std::pair<float, ItemId> cand{scratch->scores[v - begin], v};
          // Reject only what is *strictly* worse than the threshold — the
          // old k-th member itself must survive its shard being dirtied.
          if (has_threshold && RanksBetter(threshold, cand)) continue;
          candidates.push_back(cand);
          if (candidates.size() >= buf_cap) {
            CompactTopK(&candidates, k);
            threshold = candidates[k - 1];
            has_threshold = true;
          }
        }
      }
    }
  }

  std::vector<ItemId>& merged_items = scratch->merged_items;
  std::vector<float>& merged_scores = scratch->merged_scores;
  RankCandidates(&candidates, k, &merged_items, &merged_scores);

  // Exactness: with the new cutoff no worse than the old one, a clean
  // item that was below the old cutoff (and therefore not cached) still
  // cannot reach the new top-k. Otherwise the cutoff dropped and an
  // uncached clean item might now qualify — only a full sweep could
  // tell, and that is the caller's cue to drop the entry instead.
  const bool exact =
      !old_full ||
      (merged_items.size() == k &&
       !RanksBetter(old_kth, {merged_scores.back(), merged_items.back()}));
  if (!exact) return false;
  // Swap, not move: the entry's old buffers go back into the scratch for
  // the next refresh.
  entry->items.swap(merged_items);
  entry->scores.swap(merged_scores);
  return true;
}

void TopKServer::ReplaceModel(std::shared_ptr<const ItemScorer> model) {
  MARS_CHECK(model != nullptr);
  model_.Publish(std::move(model));
  // Swap of unknown delta: rebuild the index from scratch against the new
  // snapshot (PublishEpoch takes the cheaper tracker-guided path instead).
  RefreshAnnIndex(model_.Acquire(), nullptr);
}

void TopKServer::ReplaceModel(const ItemScorer* model) {
  MARS_CHECK(model != nullptr);
  ReplaceModel(UnownedSnapshot(model));
}

void TopKServer::PublishEpoch(std::shared_ptr<const ItemScorer> model,
                              WriteTracker* tracker) {
  if (tracker == nullptr) {
    ReplaceModel(std::move(model));
    return;
  }
  MARS_CHECK(model != nullptr);
  // Publish without the full index rebuild of ReplaceModel: the tracker
  // knows what changed, so AbsorbWrites re-inserts exactly the dirty item
  // shards (and clean-item epochs keep the index as is — the rows it
  // indexed are byte-identical in the new snapshot).
  model_.Publish(std::move(model));
  AbsorbWrites(tracker);
}

void TopKServer::InvalidateAll() {
  for (Stripe& stripe : stripes_) {
    std::unique_lock<std::mutex> lock(stripe.mu);
    stripe.invalidated += stripe.map.size();
    stripe.map.clear();
    stripe.lru.clear();
  }
}

bool TopKServer::Prime(UserId u, std::vector<ItemId> items,
                       std::vector<float> scores) {
  const size_t cap = std::min(options_.k, num_items_);
  if (u >= num_users_ || items.size() != scores.size() ||
      items.size() > cap || options_.cache.max_users == 0) {
    return false;
  }
  for (const ItemId v : items) {
    if (v >= num_items_) return false;
  }
  Stripe& stripe = stripes_[StripeOf(u)];
  std::unique_lock<std::mutex> lock(stripe.mu);
  const auto it = stripe.map.find(u);
  if (it != stripe.map.end()) {
    stripe.lru.erase(it->second.lru_pos);
    stripe.map.erase(it);
  }
  CacheEntry entry;
  entry.items = std::move(items);
  entry.scores = std::move(scores);
  entry.epoch = model_.epoch();
  stripe.lru.push_front(u);
  entry.lru_pos = stripe.lru.begin();
  stripe.map.emplace(u, std::move(entry));
  ++stripe.primed;
  EvictIfOverCap(&stripe);
  return true;
}

void TopKServer::ForEachCached(
    const std::function<void(UserId, const std::vector<ItemId>&,
                             const std::vector<float>&)>& fn) const {
  for (const Stripe& stripe : stripes_) {
    std::unique_lock<std::mutex> lock(stripe.mu);
    for (const UserId u : stripe.lru) {
      const auto it = stripe.map.find(u);
      MARS_DCHECK(it != stripe.map.end());
      fn(u, it->second.items, it->second.scores);
    }
  }
}

void TopKServer::EvictIfOverCap(Stripe* stripe) {
  while (stripe->map.size() > stripe->capacity) {
    const UserId victim = stripe->lru.back();
    stripe->lru.pop_back();
    stripe->map.erase(victim);
    ++stripe->evictions;
  }
}

TopKServerStats TopKServer::stats() const {
  TopKServerStats s;
  for (const Stripe& stripe : stripes_) {
    std::unique_lock<std::mutex> lock(stripe.mu);
    s.hits += stripe.hits;
    s.misses += stripe.misses;
    s.invalidated += stripe.invalidated;
    s.refreshed += stripe.refreshed;
    s.refresh_drops += stripe.refresh_drops;
    s.evictions += stripe.evictions;
    s.primed += stripe.primed;
    s.cached_users += stripe.map.size();
  }
  s.ann_probes = ann_probes_.load(std::memory_order_relaxed);
  s.exact_fallbacks = exact_fallbacks_.load(std::memory_order_relaxed);
  s.ann_refresh_probes = ann_refresh_probes_.load(std::memory_order_relaxed);
  s.coalesced_misses = coalesced_misses_.load(std::memory_order_relaxed);
  s.batch_sweeps = batch_sweeps_.load(std::memory_order_relaxed);
  s.max_batch_size = max_batch_.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batch_sweeps > 0
          ? static_cast<double>(s.coalesced_misses) / s.batch_sweeps
          : 0.0;
  return s;
}

}  // namespace mars
