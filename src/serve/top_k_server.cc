#include "serve/top_k_server.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/facet_store.h"
#include "common/thread_pool.h"

namespace mars {

namespace {

/// Ranking order of the served lists: score descending, item id ascending
/// on ties — the same deterministic order the equivalence tests pin.
inline bool RanksBetter(const std::pair<float, ItemId>& a,
                        const std::pair<float, ItemId>& b) {
  return a.first > b.first || (a.first == b.first && a.second < b.second);
}

/// Pushes (score, v) into `heap`, a worst-on-top heap bounded at `k`.
inline void PushTopK(std::vector<std::pair<float, ItemId>>* heap, size_t k,
                     float score, ItemId v) {
  if (k == 0) return;
  const std::pair<float, ItemId> cand{score, v};
  if (heap->size() < k) {
    heap->push_back(cand);
    std::push_heap(heap->begin(), heap->end(), RanksBetter);
    return;
  }
  if (!RanksBetter(cand, heap->front())) return;
  std::pop_heap(heap->begin(), heap->end(), RanksBetter);
  heap->back() = cand;
  std::push_heap(heap->begin(), heap->end(), RanksBetter);
}

}  // namespace

TopKServer::TopKServer(const ItemScorer* model, size_t num_users,
                       size_t num_items, TopKServerOptions options)
    : model_(model),
      num_users_(num_users),
      num_items_(num_items),
      options_(options) {
  MARS_CHECK(model != nullptr);
  MARS_CHECK(num_items >= 1);
}

TopKResult TopKServer::TopK(UserId u) {
  MARS_CHECK(u < num_users_);
  const auto it = cache_.find(u);
  if (it != cache_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    TopKResult result;
    result.items = it->second.items;
    result.scores = it->second.scores;
    result.from_cache = true;
    return result;
  }

  ++stats_.misses;
  TopKResult result;
  Sweep(u, &result.items, &result.scores);
  if (options_.max_cached_users > 0) {
    CacheEntry entry;
    entry.items = result.items;
    entry.scores = result.scores;
    lru_.push_front(u);
    entry.lru_pos = lru_.begin();
    cache_.emplace(u, std::move(entry));
    EvictIfOverCap();
  }
  return result;
}

void TopKServer::Sweep(UserId u, std::vector<ItemId>* items,
                       std::vector<float>* scores) {
  const size_t pool_threads =
      options_.pool != nullptr ? options_.pool->num_threads() : 1;
  const size_t shards = std::max<size_t>(
      1, options_.sweep_shards > 0 ? options_.sweep_shards : pool_threads);
  const size_t k = std::min(options_.k, num_items_);
  const ImplicitDataset* exclude = options_.exclude_interactions;
  sweep_scratch_.resize(shards);

  // Each worker scans one contiguous ShardRange — the item blocks inside it
  // are sequential in memory — and keeps a bounded local top-k.
  const auto scan_shard = [&, k](size_t s) {
    const auto [begin, end] = FacetStore::ShardRange(num_items_, s, shards);
    ShardScratch& scratch = sweep_scratch_[s];
    scratch.candidates.clear();
    if (begin == end) return;
    scratch.scores.resize(end - begin);
    model_->ScoreItemRange(u, begin, end, scratch.scores.data());
    for (ItemId v = begin; v < end; ++v) {
      if (exclude != nullptr && exclude->HasInteraction(u, v)) continue;
      PushTopK(&scratch.candidates, k, scratch.scores[v - begin], v);
    }
  };

  // Serial fallback for models whose scoring reuses internal scratch
  // (thread_safe() == false) — same guard the evaluator applies.
  if (options_.pool != nullptr && shards > 1 && model_->thread_safe()) {
    for (size_t s = 0; s < shards; ++s) {
      options_.pool->Submit([&scan_shard, s] { scan_shard(s); });
    }
    options_.pool->Wait();
  } else {
    for (size_t s = 0; s < shards; ++s) scan_shard(s);
  }

  // Merge the per-shard winners (≤ k each) into the final ranking.
  std::vector<std::pair<float, ItemId>> merged;
  merged.reserve(shards * k);
  for (const ShardScratch& scratch : sweep_scratch_) {
    merged.insert(merged.end(), scratch.candidates.begin(),
                  scratch.candidates.end());
  }
  std::sort(merged.begin(), merged.end(), RanksBetter);
  const size_t n = std::min(k, merged.size());
  items->resize(n);
  scores->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*items)[i] = merged[i].second;
    (*scores)[i] = merged[i].first;
  }
}

void TopKServer::AbsorbWrites(WriteTracker* tracker) {
  MARS_CHECK(tracker != nullptr);
  MARS_CHECK(tracker->num_users() == num_users_);
  MARS_CHECK(tracker->num_items() == num_items_);

  // Any dirty item shard invalidates every entry: a cached heap ranks the
  // full catalog, so all item shards contribute to it.
  bool items_dirty = false;
  for (size_t s = 0; s < tracker->num_item_shards() && !items_dirty; ++s) {
    items_dirty = tracker->ItemShardDirty(s);
  }

  for (auto it = cache_.begin(); it != cache_.end();) {
    const bool stale =
        items_dirty ||
        tracker->UserShardDirty(tracker->UserShardOf(it->first));
    if (stale) {
      ++stats_.invalidated;
      lru_.erase(it->second.lru_pos);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  tracker->Clear();
}

void TopKServer::ReplaceModel(const ItemScorer* model) {
  MARS_CHECK(model != nullptr);
  model_ = model;
}

void TopKServer::InvalidateAll() {
  stats_.invalidated += cache_.size();
  cache_.clear();
  lru_.clear();
}

bool TopKServer::Prime(UserId u, std::vector<ItemId> items,
                       std::vector<float> scores) {
  const size_t cap = std::min(options_.k, num_items_);
  if (u >= num_users_ || items.size() != scores.size() ||
      items.size() > cap || options_.max_cached_users == 0) {
    return false;
  }
  for (const ItemId v : items) {
    if (v >= num_items_) return false;
  }
  const auto it = cache_.find(u);
  if (it != cache_.end()) {
    lru_.erase(it->second.lru_pos);
    cache_.erase(it);
  }
  CacheEntry entry;
  entry.items = std::move(items);
  entry.scores = std::move(scores);
  lru_.push_front(u);
  entry.lru_pos = lru_.begin();
  cache_.emplace(u, std::move(entry));
  ++stats_.primed;
  EvictIfOverCap();
  return true;
}

void TopKServer::ForEachCached(
    const std::function<void(UserId, const std::vector<ItemId>&,
                             const std::vector<float>&)>& fn) const {
  for (const UserId u : lru_) {
    const auto it = cache_.find(u);
    MARS_DCHECK(it != cache_.end());
    fn(u, it->second.items, it->second.scores);
  }
}

void TopKServer::EvictIfOverCap() {
  while (cache_.size() > options_.max_cached_users) {
    const UserId victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    ++stats_.evictions;
  }
}

TopKServerStats TopKServer::stats() const {
  TopKServerStats s = stats_;
  s.cached_users = cache_.size();
  return s;
}

}  // namespace mars
