// Shard-granularity dirty tracking of training writes, for serving caches.
//
// Hogwild workers update embedding rows lock-free, so the serving layer can
// never know *exactly* which floats changed — but it does not need to: the
// top-k cache (serve/top_k_server.h) invalidates at the granularity of the
// same balanced entity shards the FacetStore is swept in. Each training
// step marks the shards of the rows it touched with one relaxed atomic
// store per row; models whose steps also write *global* tables (LRML
// memory/keys, TransCF neighborhood means, MAR's shared projections, MARS
// radii) mark the whole catalog instead, since every score depends on them.
//
// Concurrency contract (mirrors the snapshot contract of overlapped eval):
// Mark* calls may race freely with each other; the read/clear side
// (dirty queries, Clear, TopKServer::AbsorbWrites) must run quiesced, at an
// epoch boundary with the trainer pool idle.
#ifndef MARS_SERVE_WRITE_TRACKER_H_
#define MARS_SERVE_WRITE_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "data/interaction.h"

namespace mars {

/// Per-epoch dirty-shard accumulator shared by trainer and server.
class WriteTracker {
 public:
  /// Default shard count; matches the sweep granularity well enough that
  /// one dirty row invalidates ~1/64th of the cached user population.
  static constexpr size_t kDefaultShards = 64;

  /// Tracks `num_users` user rows and `num_items` item rows in
  /// `num_shards` balanced shards each (clamped to the entity counts so
  /// every shard is non-empty).
  WriteTracker(size_t num_users, size_t num_items,
               size_t num_shards = kDefaultShards);

  /// The shard count a tracker over `num_entities` rows actually uses for
  /// a requested `num_shards` — shared with TopKServer so the server's
  /// per-item-shard candidate lists line up with the tracker's flags.
  static size_t ClampedShardCount(size_t num_entities, size_t num_shards);

  size_t num_users() const { return num_users_; }
  size_t num_items() const { return num_items_; }
  size_t num_user_shards() const { return user_dirty_.size(); }
  size_t num_item_shards() const { return item_dirty_.size(); }

  /// Shard owning user/item row `e` — the inverse of
  /// FacetStore::ShardRange over the same entity count and shard count.
  size_t UserShardOf(UserId u) const;
  size_t ItemShardOf(ItemId v) const;

  // --- Marking side: callable concurrently from Hogwild workers. ----------

  void MarkUser(UserId u) {
    user_dirty_[UserShardOf(u)].store(1, std::memory_order_relaxed);
  }
  void MarkItem(ItemId v) {
    item_dirty_[ItemShardOf(v)].store(1, std::memory_order_relaxed);
  }
  /// Global-table writes: every user / item score is affected.
  void MarkAllUsers() { all_users_.store(1, std::memory_order_relaxed); }
  void MarkAllItems() { all_items_.store(1, std::memory_order_relaxed); }

  // --- Reading side: quiesced only (no concurrent Mark*). -----------------

  bool UserShardDirty(size_t shard) const;
  bool ItemShardDirty(size_t shard) const;
  bool AnyDirty() const;
  /// Resets every flag; the next epoch accumulates from scratch.
  void Clear();

 private:
  size_t num_users_;
  size_t num_items_;
  std::vector<std::atomic<uint8_t>> user_dirty_;
  std::vector<std::atomic<uint8_t>> item_dirty_;
  std::atomic<uint8_t> all_users_{0};
  std::atomic<uint8_t> all_items_{0};
};

}  // namespace mars

#endif  // MARS_SERVE_WRITE_TRACKER_H_
