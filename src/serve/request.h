// The one serving request/response surface, shared by every entry into
// the top-k server: in-process callers (TopKServer::TopK / TopKBatch),
// the wire codec (net/protocol.h encodes exactly these value types into
// frames and back), and the bench/test harnesses. Keeping the vocabulary
// types here — not in top_k_server.h — lets the codec and the client
// speak the request language without pulling in the server, its cache,
// or the ANN tier.
//
// Contract split between the two call forms:
//
//  * The TopKRequest form *reports*: a malformed request (out-of-range
//    user, k above the server's configured depth, unknown flag bits)
//    comes back as a TopKResponse whose status names the rejection and
//    whose item list is empty. This is the only acceptable behavior for
//    requests that crossed a wire — remote bytes must never abort the
//    process.
//  * The thin UserId compat overloads *assert*: they keep the original
//    in-process contract (MARS_CHECK on an out-of-range user), because
//    their callers pass ids they derived from the catalog shape and a
//    violation is a caller bug, not input.
#ifndef MARS_SERVE_REQUEST_H_
#define MARS_SERVE_REQUEST_H_

#include <cstdint>
#include <vector>

#include "data/interaction.h"

namespace mars {

/// Request flag bits (TopKRequest::flags). Unknown bits are rejected with
/// TopKStatus::kInvalidFlags rather than ignored, so a newer client's
/// flags can never be silently dropped by an older server.
enum TopKRequestFlags : uint32_t {
  kTopKFlagNone = 0,
  /// Skip the cache read: the answer comes from a fresh sweep of the
  /// current snapshot (it still populates the cache under the usual
  /// pinned-epoch rule). The forced-freshness escape hatch for callers
  /// that must observe the latest published epoch.
  kTopKFlagBypassCache = 1u << 0,
};

/// Every defined flag bit; anything outside is kInvalidFlags.
inline constexpr uint32_t kTopKFlagsMask = kTopKFlagBypassCache;

/// One top-k query.
struct TopKRequest {
  UserId user = 0;
  /// Ranking depth: 0 means "the server's configured k". A smaller k is
  /// served as the exact prefix of the configured-depth ranking (a prefix
  /// of a top-K list is the top-k list); a larger k cannot be served from
  /// a cache built at the configured depth and is rejected with
  /// kInvalidK.
  uint32_t k = 0;
  /// Bitwise-or of TopKRequestFlags.
  uint32_t flags = 0;
};

/// Why a response carries no ranking (or does): the status vocabulary is
/// shared verbatim by the wire protocol (docs/PROTOCOL.md error codes
/// 0-15 are exactly these values).
enum class TopKStatus : uint8_t {
  kOk = 0,
  kInvalidUser = 1,   // user id outside [0, num_users)
  kInvalidK = 2,      // k above the server's configured ranking depth
  kInvalidFlags = 3,  // unknown flag bits set
};

/// One answered query. status != kOk ⇒ items/scores are empty and epoch
/// is 0 (the request never reached a snapshot).
struct TopKResponse {
  std::vector<ItemId> items;  // ranked best-first
  std::vector<float> scores;  // parallel to items
  uint64_t epoch = 0;  // model epoch the ranking was computed/refreshed at
  TopKStatus status = TopKStatus::kOk;
  bool from_cache = false;
};

/// Pre-redesign name of the response type, kept so long-lived callers
/// (and diffs against older branches) keep reading naturally.
using TopKResult = TopKResponse;

}  // namespace mars

#endif  // MARS_SERVE_REQUEST_H_
