#include "serve/write_tracker.h"

#include <algorithm>

#include "common/check.h"
#include "common/facet_store.h"

namespace mars {

size_t WriteTracker::ClampedShardCount(size_t num_entities,
                                       size_t num_shards) {
  return std::max<size_t>(1, std::min(num_shards, std::max<size_t>(
                                                      1, num_entities)));
}

WriteTracker::WriteTracker(size_t num_users, size_t num_items,
                           size_t num_shards)
    : num_users_(num_users),
      num_items_(num_items),
      user_dirty_(ClampedShardCount(num_users, num_shards)),
      item_dirty_(ClampedShardCount(num_items, num_shards)) {
  MARS_CHECK(num_shards >= 1);
}

size_t WriteTracker::UserShardOf(UserId u) const {
  return FacetStore::ShardOf(num_users_, u, user_dirty_.size());
}

size_t WriteTracker::ItemShardOf(ItemId v) const {
  return FacetStore::ShardOf(num_items_, v, item_dirty_.size());
}

bool WriteTracker::UserShardDirty(size_t shard) const {
  MARS_DCHECK(shard < user_dirty_.size());
  return all_users_.load(std::memory_order_relaxed) != 0 ||
         user_dirty_[shard].load(std::memory_order_relaxed) != 0;
}

bool WriteTracker::ItemShardDirty(size_t shard) const {
  MARS_DCHECK(shard < item_dirty_.size());
  return all_items_.load(std::memory_order_relaxed) != 0 ||
         item_dirty_[shard].load(std::memory_order_relaxed) != 0;
}

bool WriteTracker::AnyDirty() const {
  if (all_users_.load(std::memory_order_relaxed) != 0 ||
      all_items_.load(std::memory_order_relaxed) != 0) {
    return true;
  }
  for (const auto& f : user_dirty_) {
    if (f.load(std::memory_order_relaxed) != 0) return true;
  }
  for (const auto& f : item_dirty_) {
    if (f.load(std::memory_order_relaxed) != 0) return true;
  }
  return false;
}

void WriteTracker::Clear() {
  for (auto& f : user_dirty_) f.store(0, std::memory_order_relaxed);
  for (auto& f : item_dirty_) f.store(0, std::memory_order_relaxed);
  all_users_.store(0, std::memory_order_relaxed);
  all_items_.store(0, std::memory_order_relaxed);
}

}  // namespace mars
