#include "models/mlp.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/vec.h"

namespace mars {

DenseLayer::DenseLayer(size_t in_dim, size_t out_dim, Activation activation,
                       Rng* rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      activation_(activation),
      w_(out_dim, in_dim),
      b_(out_dim, 0.0f),
      pre_(out_dim, 0.0f),
      out_(out_dim, 0.0f),
      delta_(out_dim, 0.0f) {
  // Xavier/Glorot uniform.
  const float bound = std::sqrt(6.0f / static_cast<float>(in_dim + out_dim));
  w_.FillUniform(rng, -bound, bound);
}

const float* DenseLayer::Forward(const float* x) {
  for (size_t o = 0; o < out_dim_; ++o) {
    pre_[o] = Dot(w_.Row(o), x, in_dim_) + b_[o];
    out_[o] = (activation_ == Activation::kRelu && pre_[o] < 0.0f)
                  ? 0.0f
                  : pre_[o];
  }
  return out_.data();
}

void DenseLayer::Backward(const float* x, const float* grad_out, float lr,
                          float l2, float* grad_in) {
  // delta = dL/d(pre) = grad_out ⊙ act'(pre)
  for (size_t o = 0; o < out_dim_; ++o) {
    const float mask =
        (activation_ == Activation::kRelu && pre_[o] <= 0.0f) ? 0.0f : 1.0f;
    delta_[o] = grad_out[o] * mask;
  }
  if (grad_in != nullptr) {
    Fill(0.0f, grad_in, in_dim_);
    for (size_t o = 0; o < out_dim_; ++o) {
      if (delta_[o] == 0.0f) continue;
      Axpy(delta_[o], w_.Row(o), grad_in, in_dim_);
    }
  }
  // SGD update: W -= lr (delta xᵀ + l2 W); b -= lr delta.
  for (size_t o = 0; o < out_dim_; ++o) {
    float* wrow = w_.Row(o);
    const float d = delta_[o];
    if (d != 0.0f || l2 != 0.0f) {
      for (size_t i = 0; i < in_dim_; ++i) {
        wrow[i] -= lr * (d * x[i] + l2 * wrow[i]);
      }
      b_[o] -= lr * d;
    }
  }
}

Mlp::Mlp(const std::vector<size_t>& dims, Activation final_activation,
         Rng* rng) {
  MARS_CHECK(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = (i + 2 == dims.size());
    layers_.emplace_back(dims[i], dims[i + 1],
                         last ? final_activation : Activation::kRelu, rng);
  }
  inputs_.resize(layers_.size());
  grads_.resize(layers_.size());
  for (size_t i = 0; i < layers_.size(); ++i) {
    inputs_[i].assign(layers_[i].in_dim(), 0.0f);
    grads_[i].assign(layers_[i].in_dim(), 0.0f);
  }
}

const float* Mlp::Forward(const float* x) {
  const float* cur = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    Copy(cur, inputs_[i].data(), layers_[i].in_dim());
    cur = layers_[i].Forward(cur);
  }
  return cur;
}

void Mlp::Backward(const float* /*x*/, const float* grad_out, float lr,
                   float l2, float* grad_in) {
  const float* cur_grad = grad_out;
  for (size_t i = layers_.size(); i-- > 0;) {
    float* sink = (i == 0) ? grad_in : grads_[i].data();
    layers_[i].Backward(inputs_[i].data(), cur_grad, lr, l2, sink);
    cur_grad = sink;
    if (i == 0) break;
  }
}

}  // namespace mars
