// Collaborative Translational Metric Learning (TransCF) [33].
//
// Instead of measuring d(u, v) directly, the user is translated by a
// relation vector constructed from neighborhood information:
//
//   α_u = mean of embeddings of items u interacted with
//   β_v = mean of embeddings of users who interacted with v
//   r_uv = α_u ⊙ β_v
//   score(u, v) = -||u + r_uv - v||²
//
// trained with the triplet hinge plus two regularizers from the original
// paper: a distance regularizer pulling the translated user exactly onto
// the positive item, and a neighborhood regularizer pulling entities
// toward their neighborhood means.
//
// Simplification (documented): neighborhood means are treated as constants
// within an epoch and refreshed at epoch boundaries, rather than
// backpropagating into every neighbor embedding; at the scale of this
// reproduction the refreshed means track the embeddings closely.
#ifndef MARS_MODELS_TRANSCF_H_
#define MARS_MODELS_TRANSCF_H_

#include "common/matrix.h"
#include "models/recommender.h"

namespace mars {

/// Model-specific hyperparameters.
struct TransCfConfig {
  size_t dim = 32;
  double margin = 0.5;
  /// Weight of the distance regularizer ||u + r_uv − v||² on positives.
  double lambda_dist = 0.01;
  /// Weight of the neighborhood regularizer.
  double lambda_nbr = 0.01;
};

/// TransCF recommender.
class TransCf : public Recommender {
 public:
  explicit TransCf(TransCfConfig config);

  void Fit(const ImplicitDataset& train, const TrainOptions& options) override;
  float Score(UserId u, ItemId v) const override;
  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      float* out) const override;
  std::string name() const override { return "TransCF"; }

 private:
  void RefreshNeighborhoodMeans(const ImplicitDataset& train);

  TransCfConfig config_;
  Matrix user_;
  Matrix item_;
  Matrix user_nbr_;  // α_u, N×D
  Matrix item_nbr_;  // β_v, M×D
};

}  // namespace mars

#endif  // MARS_MODELS_TRANSCF_H_
