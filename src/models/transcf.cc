#include "models/transcf.h"

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/vec.h"
#include "models/embedding.h"
#include "models/train_loop.h"
#include "sampling/triplet_sampler.h"
#include "serve/write_tracker.h"
#include "train/parallel_trainer.h"
#include "train/snapshot.h"

namespace mars {

TransCf::TransCf(TransCfConfig config) : config_(config) {}

void TransCf::RefreshNeighborhoodMeans(const ImplicitDataset& train) {
  const size_t d = config_.dim;
  user_nbr_.Fill(0.0f);
  for (UserId u = 0; u < train.num_users(); ++u) {
    const auto items = train.ItemsOf(u);
    if (items.empty()) continue;
    float* row = user_nbr_.Row(u);
    for (ItemId v : items) Axpy(1.0f, item_.Row(v), row, d);
    Scale(1.0f / static_cast<float>(items.size()), row, d);
  }
  item_nbr_.Fill(0.0f);
  for (ItemId v = 0; v < train.num_items(); ++v) {
    const auto users = train.UsersOf(v);
    if (users.empty()) continue;
    float* row = item_nbr_.Row(v);
    for (UserId u : users) Axpy(1.0f, user_.Row(u), row, d);
    Scale(1.0f / static_cast<float>(users.size()), row, d);
  }
}

void TransCf::Fit(const ImplicitDataset& train, const TrainOptions& options) {
  const size_t d = config_.dim;
  Rng rng(options.seed);
  user_ = Matrix(train.num_users(), d);
  item_ = Matrix(train.num_items(), d);
  InitEmbeddingInBall(&user_, &rng);
  InitEmbeddingInBall(&item_, &rng);
  user_nbr_ = Matrix(train.num_users(), d);
  item_nbr_ = Matrix(train.num_items(), d);

  const TripletSampler sampler(train, TripletUserMode::kUniformInteraction);
  const size_t steps = ResolveStepsPerEpoch(options, train);
  const float margin = static_cast<float>(config_.margin);
  const float l_dist = static_cast<float>(config_.lambda_dist);
  const float l_nbr = static_cast<float>(config_.lambda_nbr);

  // Neighborhood means are refreshed serially at each epoch start (a global
  // sweep); the per-step Hogwild updates then read them as constants.
  ParallelTrainer trainer(options, &rng);
  struct Scratch {
    std::vector<float> rp, rq, ep, eq;
  };
  std::vector<Scratch> scratch(trainer.num_workers());
  for (Scratch& sc : scratch) {
    sc.rp.resize(d);
    sc.rq.resize(d);
    sc.ep.resize(d);
    sc.eq.resize(d);
  }
  WriteTracker* const tracker = options.write_tracker;
  float lr = 0.0f;  // per-epoch, set before steps fan out

  const auto step = [&](size_t worker, Rng& wrng) {
    Scratch& sc = scratch[worker];
    std::vector<float>& rp = sc.rp;
    std::vector<float>& rq = sc.rq;
    std::vector<float>& ep = sc.ep;
    std::vector<float>& eq = sc.eq;

    Triplet t;
    if (!sampler.Sample(&wrng, &t)) return;
    float* u = user_.Row(t.user);
    float* vp = item_.Row(t.positive);
    float* vq = item_.Row(t.negative);
    if (tracker != nullptr) {
      tracker->MarkUser(t.user);
      tracker->MarkItem(t.positive);
      tracker->MarkItem(t.negative);
    }
    const float* au = user_nbr_.Row(t.user);

    // Relation vectors r_uv = α_u ⊙ β_v and residuals e = u + r - v.
    Hadamard(au, item_nbr_.Row(t.positive), rp.data(), d);
    Hadamard(au, item_nbr_.Row(t.negative), rq.data(), d);
    for (size_t i = 0; i < d; ++i) {
      ep[i] = u[i] + rp[i] - vp[i];
      eq[i] = u[i] + rq[i] - vq[i];
    }
    const float dp = SquaredNorm(ep.data(), d);
    const float dq = SquaredNorm(eq.data(), d);

    const bool hinge_active = (margin + dp - dq > 0.0f);
    // Hinge gradient + distance regularizer (both act through ep/eq).
    const float wp = (hinge_active ? 1.0f : 0.0f) + l_dist;
    const float wq = hinge_active ? -1.0f : 0.0f;
    for (size_t i = 0; i < d; ++i) {
      const float gp = 2.0f * wp * ep[i];
      const float gq = 2.0f * wq * eq[i];
      u[i] -= lr * (gp + gq);
      vp[i] -= lr * (-gp);
      vq[i] -= lr * (-gq);
    }
    // Neighborhood regularizer: pull entities toward their means.
    for (size_t i = 0; i < d; ++i) {
      u[i] -= lr * l_nbr * 2.0f * (u[i] - au[i]);
      vp[i] -= lr * l_nbr * 2.0f * (vp[i] - item_nbr_.Row(t.positive)[i]);
    }
    ProjectToUnitBall(u, d);
    ProjectToUnitBall(vp, d);
    ProjectToUnitBall(vq, d);
  };

  // Snapshot for overlapped eval. Scoring reads the neighborhood means, so
  // they are refreshed on the snapshot copy — the live means stay as the
  // trainer left them for the epoch.
  std::unique_ptr<TransCf> snap;
  const auto snapshot = [&]() -> const ItemScorer* {
    TransCf* frozen = CopyModelSnapshot(*this, &snap);
    frozen->RefreshNeighborhoodMeans(train);
    return frozen;
  };

  RunTrainingLoop(
      options, *this, name(),
      [&](size_t, double lr_d) {
        RefreshNeighborhoodMeans(train);
        // The refreshed means enter every pair's score: the whole catalog
        // (and every user) is effectively rewritten each epoch.
        if (tracker != nullptr) {
          tracker->MarkAllUsers();
          tracker->MarkAllItems();
        }
        lr = static_cast<float>(lr_d);
        trainer.RunEpoch(steps, step);
      },
      snapshot);
  // Means must reflect the final embeddings for scoring.
  RefreshNeighborhoodMeans(train);
}

void TransCf::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                             float* out) const {
  // r_uv = α_u ⊙ β_v depends on the candidate, so there is no single-kernel
  // form — but the user side (e_u, α_u) hoists, and the item tables are
  // scanned sequentially over the contiguous range.
  const size_t d = config_.dim;
  const float* au = user_nbr_.Row(u);
  const float* eu = user_.Row(u);
  for (ItemId v = begin; v < end; ++v) {
    const float* bv = item_nbr_.Row(v);
    const float* ev = item_.Row(v);
    float acc = 0.0f;
    for (size_t i = 0; i < d; ++i) {
      const float e = eu[i] + au[i] * bv[i] - ev[i];
      acc += e * e;
    }
    out[v - begin] = -acc;
  }
}

float TransCf::Score(UserId u, ItemId v) const {
  const size_t d = config_.dim;
  const float* au = user_nbr_.Row(u);
  const float* bv = item_nbr_.Row(v);
  const float* eu = user_.Row(u);
  const float* ev = item_.Row(v);
  float acc = 0.0f;
  for (size_t i = 0; i < d; ++i) {
    const float e = eu[i] + au[i] * bv[i] - ev[i];
    acc += e * e;
  }
  return -acc;
}

}  // namespace mars
