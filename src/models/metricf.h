// Metric Factorization [55].
//
// Pointwise metric learning — "only with the pulling operation in contrast
// to CML" as the MARS paper describes: the model *regresses* user-item
// distances onto pointwise targets instead of ranking triplets. Positive
// pairs are pulled toward distance 0 and sampled negatives are pulled
// toward (not hinged beyond) a target distance m:
//
//   L = Σ_{(u,v)∈I} d(u,v)² + λ_neg Σ_{(u,v)∉I} (d(u,v) − m)²
//   s.t. ||u|| ≤ 1, ||v|| ≤ 1
//
// Note the negative term is a two-sided regression, exactly as in the
// original formulation: negatives that drift beyond m are pulled *back*,
// which is what distinguishes MetricF from hinge-based pushing and what
// limits it relative to CML-style models.
#ifndef MARS_MODELS_METRICF_H_
#define MARS_MODELS_METRICF_H_

#include "common/matrix.h"
#include "models/recommender.h"

namespace mars {

/// Model-specific hyperparameters.
struct MetricFConfig {
  size_t dim = 32;
  /// Target distance for negative pairs.
  double margin = 1.5;
  /// Weight of the negative regression term relative to the pull.
  double negative_weight = 1.0;
  /// Negatives sampled per positive each step.
  size_t negatives_per_positive = 1;
};

/// MetricF recommender.
class MetricF : public Recommender {
 public:
  explicit MetricF(MetricFConfig config);

  void Fit(const ImplicitDataset& train, const TrainOptions& options) override;
  float Score(UserId u, ItemId v) const override;
  void ScoreItems(UserId u, std::span<const ItemId> items,
                  float* out) const override;
  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      float* out) const override;
  void ScoreItemRangeMulti(std::span<const UserId> users, ItemId begin,
                           ItemId end, float* const* out) const override;
  std::string name() const override { return "MetricF"; }

  // ANN capability: L2 geometry (Score == -distance², same as CML).
  IndexGeometry index_geometry() const override { return IndexGeometry::kL2; }
  size_t index_dim() const override { return config_.dim; }
  void CopyIndexVectors(ItemId begin, ItemId end, float* out) const override;
  void WriteIndexQuery(UserId u, float* out) const override;

 private:
  MetricFConfig config_;
  Matrix user_;
  Matrix item_;
};

}  // namespace mars

#endif  // MARS_MODELS_METRICF_H_
