#include "models/embedding.h"

#include <cmath>

#include "common/rng.h"
#include "common/vec.h"

namespace mars {

void InitEmbedding(Matrix* table, Rng* rng) {
  const float scale =
      1.0f / std::sqrt(static_cast<float>(table->cols() > 0 ? table->cols() : 1));
  table->FillNormal(rng, 0.0f, scale);
}

void InitEmbeddingInBall(Matrix* table, Rng* rng) {
  InitEmbedding(table, rng);
  ProjectAllRowsToBall(table);
}

void InitEmbeddingOnSphere(Matrix* table, Rng* rng) {
  InitEmbedding(table, rng);
  for (size_t r = 0; r < table->rows(); ++r) {
    if (!NormalizeInPlace(table->Row(r), table->cols())) {
      table->Row(r)[0] = 1.0f;
    }
  }
}

void ProjectAllRowsToBall(Matrix* table) {
  for (size_t r = 0; r < table->rows(); ++r) {
    ProjectToUnitBall(table->Row(r), table->cols());
  }
}

}  // namespace mars
