#include "models/embedding.h"

#include <cmath>

#include "common/rng.h"
#include "common/vec.h"

namespace mars {

void InitEmbedding(Matrix* table, Rng* rng) {
  const float scale =
      1.0f / std::sqrt(static_cast<float>(table->cols() > 0 ? table->cols() : 1));
  table->FillNormal(rng, 0.0f, scale);
}

void InitEmbeddingInBall(Matrix* table, Rng* rng) {
  InitEmbedding(table, rng);
  ProjectAllRowsToBall(table);
}

void InitEmbeddingOnSphere(Matrix* table, Rng* rng) {
  InitEmbedding(table, rng);
  for (size_t r = 0; r < table->rows(); ++r) {
    if (!NormalizeInPlace(table->Row(r), table->cols())) {
      table->Row(r)[0] = 1.0f;
    }
  }
}

void ProjectAllRowsToBall(Matrix* table) {
  for (size_t r = 0; r < table->rows(); ++r) {
    ProjectToUnitBall(table->Row(r), table->cols());
  }
}

void InitFacetStoreInBall(FacetStore* store, Rng* rng) {
  const size_t d = store->dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(d > 0 ? d : 1));
  for (size_t e = 0; e < store->num_entities(); ++e) {
    for (size_t k = 0; k < store->num_facets(); ++k) {
      float* row = store->Row(e, k);
      for (size_t i = 0; i < d; ++i) {
        row[i] = static_cast<float>(rng->Normal(0.0, scale));
      }
      ProjectToUnitBall(row, d);
    }
  }
}

}  // namespace mars
