#include "models/bpr.h"

#include <memory>
#include <vector>

#include "common/kernels.h"
#include "common/rng.h"
#include "common/vec.h"
#include "models/embedding.h"
#include "models/train_loop.h"
#include "sampling/triplet_sampler.h"
#include "serve/write_tracker.h"
#include "train/parallel_trainer.h"
#include "train/snapshot.h"

namespace mars {

Bpr::Bpr(BprConfig config) : config_(config) {}

void Bpr::Fit(const ImplicitDataset& train, const TrainOptions& options) {
  const size_t d = config_.dim;
  Rng rng(options.seed);
  user_ = Matrix(train.num_users(), d);
  item_ = Matrix(train.num_items(), d);
  InitEmbedding(&user_, &rng);
  InitEmbedding(&item_, &rng);
  item_bias_.assign(train.num_items(), 0.0f);

  const TripletSampler sampler(train, TripletUserMode::kUniformInteraction);
  const size_t steps = ResolveStepsPerEpoch(options, train);
  const float l2 = static_cast<float>(config_.l2_reg);

  // Each step writes only the triplet's rows — Hogwild workers share the
  // factor tables directly.
  ParallelTrainer trainer(options, &rng);
  WriteTracker* const tracker = options.write_tracker;
  float lr = 0.0f;  // per-epoch, set before steps fan out

  const auto step = [&](size_t, Rng& wrng) {
    Triplet t;
    if (!sampler.Sample(&wrng, &t)) return;
    if (tracker != nullptr) {
      tracker->MarkUser(t.user);
      tracker->MarkItem(t.positive);
      tracker->MarkItem(t.negative);
    }
    float* pu = user_.Row(t.user);
    float* qp = item_.Row(t.positive);
    float* qq = item_.Row(t.negative);
    float x = Dot(pu, qp, d) - Dot(pu, qq, d);
    if (config_.use_item_bias) {
      x += item_bias_[t.positive] - item_bias_[t.negative];
    }
    const float g = static_cast<float>(Sigmoid(-x));  // dL/dx with sign
    // Gradient ascent on log σ(x): p += lr (g (qp - qq) - λ p), etc.
    for (size_t i = 0; i < d; ++i) {
      const float pu_i = pu[i];
      pu[i] += lr * (g * (qp[i] - qq[i]) - l2 * pu_i);
      qp[i] += lr * (g * pu_i - l2 * qp[i]);
      qq[i] += lr * (-g * pu_i - l2 * qq[i]);
    }
    if (config_.use_item_bias) {
      item_bias_[t.positive] += lr * (g - l2 * item_bias_[t.positive]);
      item_bias_[t.negative] += lr * (-g - l2 * item_bias_[t.negative]);
    }
  };

  std::unique_ptr<Bpr> snap;
  const auto snapshot = [&]() -> const ItemScorer* {
    return CopyModelSnapshot(*this, &snap);
  };

  RunTrainingLoop(
      options, *this, name(),
      [&](size_t, double lr_d) {
        lr = static_cast<float>(lr_d);
        trainer.RunEpoch(steps, step);
      },
      snapshot);
}

float Bpr::Score(UserId u, ItemId v) const {
  float s = Dot(user_.Row(u), item_.Row(v), config_.dim);
  if (config_.use_item_bias) s += item_bias_[v];
  return s;
}

void Bpr::ScoreItems(UserId u, std::span<const ItemId> items,
                     float* out) const {
  DotGather(user_.Row(u), item_.data(), item_.cols(), items.data(),
            items.size(), config_.dim, out);
  if (config_.use_item_bias) {
    for (size_t i = 0; i < items.size(); ++i) out[i] += item_bias_[items[i]];
  }
}

void Bpr::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                         float* out) const {
  if (begin >= end) return;
  DotBatch(user_.Row(u), item_.Row(begin), end - begin, item_.cols(),
           config_.dim, out);
  if (config_.use_item_bias) {
    for (ItemId v = begin; v < end; ++v) out[v - begin] += item_bias_[v];
  }
}

void Bpr::ScoreItemRangeMulti(std::span<const UserId> users, ItemId begin,
                              ItemId end, float* const* out) const {
  if (begin >= end || users.empty()) return;
  std::vector<const float*> urows(users.size());
  for (size_t b = 0; b < users.size(); ++b) urows[b] = user_.Row(users[b]);
  DotBatchMulti(urows.data(), users.size(), item_.Row(begin), end - begin,
                item_.cols(), config_.dim, out);
  if (config_.use_item_bias) {
    for (size_t b = 0; b < users.size(); ++b) {
      for (ItemId v = begin; v < end; ++v) out[b][v - begin] += item_bias_[v];
    }
  }
}

void Bpr::CopyIndexVectors(ItemId begin, ItemId end, float* out) const {
  const size_t d = config_.dim;
  for (ItemId v = begin; v < end; ++v) {
    Copy(item_.Row(v), out, d);
    if (config_.use_item_bias) out[d] = item_bias_[v];
    out += index_dim();
  }
}

void Bpr::WriteIndexQuery(UserId u, float* out) const {
  Copy(user_.Row(u), out, config_.dim);
  if (config_.use_item_bias) out[config_.dim] = 1.0f;
}

}  // namespace mars
