// Embedding table: a Matrix with recommender-specific initializers.
#ifndef MARS_MODELS_EMBEDDING_H_
#define MARS_MODELS_EMBEDDING_H_

#include <cstddef>

#include "common/facet_store.h"
#include "common/matrix.h"

namespace mars {

class Rng;

/// Fills an embedding table (rows = entities, cols = dimension) with
/// N(0, 1/sqrt(cols)) draws — the standard scale for metric-learning
/// embeddings so initial distances are O(1).
void InitEmbedding(Matrix* table, Rng* rng);

/// InitEmbedding followed by projecting every row into the unit ball.
void InitEmbeddingInBall(Matrix* table, Rng* rng);

/// InitEmbedding followed by normalizing every row onto the unit sphere.
void InitEmbeddingOnSphere(Matrix* table, Rng* rng);

/// Projects every row of `table` onto the unit ball (post-update sweep).
void ProjectAllRowsToBall(Matrix* table);

/// FacetStore variant: every facet row of every entity is drawn from
/// N(0, 1/sqrt(dim)) then projected into the unit ball.
void InitFacetStoreInBall(FacetStore* store, Rng* rng);

}  // namespace mars

#endif  // MARS_MODELS_EMBEDDING_H_
