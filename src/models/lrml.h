// Latent Relational Metric Learning (LRML) [40].
//
// A memory-based attention module induces a latent relation vector for
// each user-item pair:
//
//   p   = u ⊙ v                         (joint key)
//   a_s = softmax_s(p · k_s)            (attention over S memory slots)
//   r   = Σ_s a_s m_s                   (induced relation)
//   score(u, v) = -||u + r - v||²
//
// trained with the pairwise hinge on sampled triplets; user/item
// embeddings and memory slots are constrained to the unit ball.
#ifndef MARS_MODELS_LRML_H_
#define MARS_MODELS_LRML_H_

#include "common/matrix.h"
#include "models/recommender.h"

namespace mars {

/// Model-specific hyperparameters.
struct LrmlConfig {
  size_t dim = 32;
  size_t memory_slots = 16;
  double margin = 0.5;
};

/// LRML recommender.
class Lrml : public Recommender {
 public:
  explicit Lrml(LrmlConfig config);

  void Fit(const ImplicitDataset& train, const TrainOptions& options) override;
  float Score(UserId u, ItemId v) const override;
  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      float* out) const override;
  std::string name() const override { return "LRML"; }

 private:
  /// Computes attention and relation for (u, v); buffers sized by caller.
  void Relation(const float* u, const float* v, float* attention,
                float* relation) const;

  /// Accumulates gradients for one (u, v) pair whose residual gradient is
  /// `grad_e` = dL/de with e = u + r - v, updating u, v, keys and memory.
  void BackwardPair(float* u, float* v, const float* grad_e, float lr);

  LrmlConfig config_;
  Matrix user_;
  Matrix item_;
  Matrix keys_;    // S×D
  Matrix memory_;  // S×D
};

}  // namespace mars

#endif  // MARS_MODELS_LRML_H_
