#include "models/nmf.h"

#include <algorithm>

#include "common/rng.h"
#include "common/vec.h"

namespace mars {
namespace {

constexpr float kEps = 1e-9f;

/// One round of multiplicative updates; `numer_*` are scratch matrices.
void MultiplicativeRound(const ImplicitDataset& x, Matrix* w, Matrix* h,
                         Matrix* xh, Matrix* xtw, Matrix* gram) {
  const size_t f = w->cols();

  // --- Update W: W ← W ⊙ (X H) / (W HᵀH + ε) ------------------------------
  // X H: for each user, sum of H rows over interacted items.
  xh->Fill(0.0f);
  for (UserId u = 0; u < x.num_users(); ++u) {
    float* row = xh->Row(u);
    for (ItemId v : x.ItemsOf(u)) {
      Axpy(1.0f, h->Row(v), row, f);
    }
  }
  Gram(*h, gram);  // HᵀH, F×F
  for (UserId u = 0; u < x.num_users(); ++u) {
    float* wrow = w->Row(u);
    const float* num = xh->Row(u);
    for (size_t j = 0; j < f; ++j) {
      // (W HᵀH)[u][j] = Σ_k W[u][k] gram[k][j]
      float denom = kEps;
      for (size_t k = 0; k < f; ++k) denom += wrow[k] * gram->At(k, j);
      wrow[j] *= num[j] / denom;
    }
  }

  // --- Update H: H ← H ⊙ (Xᵀ W) / (W ᵀW-gram step) -------------------------
  xtw->Fill(0.0f);
  for (ItemId v = 0; v < x.num_items(); ++v) {
    float* row = xtw->Row(v);
    for (UserId u : x.UsersOf(v)) {
      Axpy(1.0f, w->Row(u), row, f);
    }
  }
  Gram(*w, gram);  // WᵀW
  for (ItemId v = 0; v < x.num_items(); ++v) {
    float* hrow = h->Row(v);
    const float* num = xtw->Row(v);
    for (size_t j = 0; j < f; ++j) {
      float denom = kEps;
      for (size_t k = 0; k < f; ++k) denom += hrow[k] * gram->At(k, j);
      hrow[j] *= num[j] / denom;
    }
  }
}

void RunNmf(const ImplicitDataset& train, size_t factors, size_t iterations,
            uint64_t seed, Matrix* w, Matrix* h) {
  Rng rng(seed);
  *w = Matrix(train.num_users(), factors);
  *h = Matrix(train.num_items(), factors);
  w->FillUniform(&rng, 0.01f, 1.0f);
  h->FillUniform(&rng, 0.01f, 1.0f);

  Matrix xh(train.num_users(), factors);
  Matrix xtw(train.num_items(), factors);
  Matrix gram(factors, factors);
  for (size_t it = 0; it < iterations; ++it) {
    MultiplicativeRound(train, w, h, &xh, &xtw, &gram);
  }
}

}  // namespace

Nmf::Nmf(NmfConfig config) : config_(config) {}

void Nmf::Fit(const ImplicitDataset& train, const TrainOptions& options) {
  const size_t iterations =
      options.epochs > 0 ? options.epochs : config_.iterations;
  RunNmf(train, config_.factors, iterations, options.seed, &w_, &h_);
}

float Nmf::Score(UserId u, ItemId v) const {
  return Dot(w_.Row(u), h_.Row(v), w_.cols());
}

Matrix NmfUserFactors(const ImplicitDataset& train, size_t factors,
                      size_t iterations, uint64_t seed) {
  Matrix w, h;
  RunNmf(train, factors, iterations, seed, &w, &h);
  return w;
}

}  // namespace mars
