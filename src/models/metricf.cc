#include "models/metricf.h"

#include <cmath>
#include <memory>

#include "common/kernels.h"
#include "common/rng.h"
#include "common/vec.h"
#include "models/embedding.h"
#include "models/train_loop.h"
#include "sampling/negative_sampler.h"
#include "serve/write_tracker.h"
#include "train/parallel_trainer.h"
#include "train/snapshot.h"

namespace mars {

MetricF::MetricF(MetricFConfig config) : config_(config) {}

void MetricF::Fit(const ImplicitDataset& train, const TrainOptions& options) {
  const size_t d = config_.dim;
  Rng rng(options.seed);
  user_ = Matrix(train.num_users(), d);
  item_ = Matrix(train.num_items(), d);
  InitEmbeddingInBall(&user_, &rng);
  InitEmbeddingInBall(&item_, &rng);

  const NegativeSampler negatives(train);
  const size_t steps = ResolveStepsPerEpoch(options, train);
  const float margin = static_cast<float>(config_.margin);
  const float neg_w = static_cast<float>(config_.negative_weight);
  const auto& log = train.interactions();

  ParallelTrainer trainer(options, &rng);
  WriteTracker* const tracker = options.write_tracker;
  float lr = 0.0f;  // per-epoch, set before steps fan out

  const auto step = [&](size_t, Rng& wrng) {
    const Interaction& x = log[wrng.UniformInt(log.size())];
    float* u = user_.Row(x.user);
    float* vp = item_.Row(x.item);
    if (tracker != nullptr) {
      tracker->MarkUser(x.user);
      tracker->MarkItem(x.item);
    }
    // Pull: d/du d² = 2(u - vp).
    for (size_t i = 0; i < d; ++i) {
      const float diff = u[i] - vp[i];
      u[i] -= lr * 2.0f * diff;
      vp[i] += lr * 2.0f * diff;
    }
    ProjectToUnitBall(u, d);
    ProjectToUnitBall(vp, d);

    for (size_t k = 0; k < config_.negatives_per_positive; ++k) {
      ItemId neg;
      if (!negatives.Sample(x.user, &wrng, &neg)) break;
      float* vq = item_.Row(neg);
      if (tracker != nullptr) tracker->MarkItem(neg);
      const float dist = std::sqrt(SquaredDistance(u, vq, d));
      if (dist < 1e-9f) continue;
      // Two-sided regression L = w (dist - m)²:
      // dL/du = 2w(dist - m)(u - vq)/dist — pushes when dist < m and
      // pulls back when dist > m, as in the original MetricF.
      const float coef = 2.0f * neg_w * (dist - margin) / dist;
      for (size_t i = 0; i < d; ++i) {
        const float diff = u[i] - vq[i];
        u[i] -= lr * coef * diff;
        vq[i] += lr * coef * diff;
      }
      ProjectToUnitBall(u, d);
      ProjectToUnitBall(vq, d);
    }
  };

  std::unique_ptr<MetricF> snap;
  const auto snapshot = [&]() -> const ItemScorer* {
    return CopyModelSnapshot(*this, &snap);
  };

  RunTrainingLoop(
      options, *this, name(),
      [&](size_t, double lr_d) {
        lr = static_cast<float>(lr_d);
        trainer.RunEpoch(steps, step);
      },
      snapshot);
}

float MetricF::Score(UserId u, ItemId v) const {
  return -SquaredDistance(user_.Row(u), item_.Row(v), config_.dim);
}

void MetricF::ScoreItems(UserId u, std::span<const ItemId> items,
                         float* out) const {
  NegatedSquaredDistanceGather(user_.Row(u), item_.data(), item_.cols(),
                               items.data(), items.size(), config_.dim,
                               out);
}

void MetricF::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                             float* out) const {
  if (begin >= end) return;
  NegatedSquaredDistanceBatch(user_.Row(u), item_.Row(begin), end - begin,
                              item_.cols(), config_.dim, out);
}

void MetricF::ScoreItemRangeMulti(std::span<const UserId> users, ItemId begin,
                             ItemId end, float* const* out) const {
  if (begin >= end || users.empty()) return;
  std::vector<const float*> urows(users.size());
  for (size_t b = 0; b < users.size(); ++b) urows[b] = user_.Row(users[b]);
  NegatedSquaredDistanceBatchMulti(urows.data(), users.size(),
                                   item_.Row(begin), end - begin,
                                   item_.cols(), config_.dim, out);
}

void MetricF::CopyIndexVectors(ItemId begin, ItemId end, float* out) const {
  for (ItemId v = begin; v < end; ++v, out += config_.dim) {
    Copy(item_.Row(v), out, config_.dim);
  }
}

void MetricF::WriteIndexQuery(UserId u, float* out) const {
  Copy(user_.Row(u), out, config_.dim);
}

}  // namespace mars
