// Minimal dense layers with manual backprop (per-sample SGD).
//
// NeuMF's tower is the only deep component in the library; a hand-rolled
// layer with exact gradients keeps the build dependency-free. Layers
// process one sample at a time, which matches the SGD training loops used
// throughout.
#ifndef MARS_MODELS_MLP_H_
#define MARS_MODELS_MLP_H_

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace mars {

class Rng;

/// Supported activations.
enum class Activation {
  kIdentity,
  kRelu,
};

/// Fully-connected layer y = act(W x + b) with cached forward state.
class DenseLayer {
 public:
  /// Xavier-initialized layer (in → out).
  DenseLayer(size_t in_dim, size_t out_dim, Activation activation, Rng* rng);

  /// Computes the layer output for `x` (size in_dim), caching pre-
  /// activations for the following Backward call. Returns the output
  /// buffer (owned by the layer, size out_dim).
  const float* Forward(const float* x);

  /// Given dL/dy (size out_dim) and the `x` passed to the last Forward,
  /// accumulates dL/dx into `grad_in` (size in_dim; may be null) and
  /// applies an SGD update with learning rate `lr` and L2 `l2`.
  void Backward(const float* x, const float* grad_out, float lr, float l2,
                float* grad_in);

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  const Matrix& weights() const { return w_; }

 private:
  size_t in_dim_;
  size_t out_dim_;
  Activation activation_;
  Matrix w_;                    // out×in
  std::vector<float> b_;        // out
  std::vector<float> pre_;      // cached pre-activations
  std::vector<float> out_;      // cached activations
  std::vector<float> delta_;    // scratch: dL/d(pre)
};

/// A stack of DenseLayers applied in sequence.
class Mlp {
 public:
  /// Builds layers sized dims[0] → dims[1] → ... → dims.back(); all hidden
  /// layers use ReLU and the final layer uses `final_activation`.
  Mlp(const std::vector<size_t>& dims, Activation final_activation, Rng* rng);

  /// Forward through all layers; returns pointer to the final output.
  const float* Forward(const float* x);

  /// Backprop from dL/d(output); accumulates dL/d(input) into `grad_in`
  /// (may be null) and updates all layers.
  void Backward(const float* x, const float* grad_out, float lr, float l2,
                float* grad_in);

  size_t out_dim() const { return layers_.back().out_dim(); }
  size_t in_dim() const { return layers_.front().in_dim(); }
  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<DenseLayer> layers_;
  std::vector<std::vector<float>> inputs_;  // cached per-layer inputs
  std::vector<std::vector<float>> grads_;   // scratch per-layer grad buffers
};

}  // namespace mars

#endif  // MARS_MODELS_MLP_H_
