#include "models/cml.h"

#include <algorithm>
#include <memory>

#include "common/kernels.h"
#include "common/rng.h"
#include "common/vec.h"
#include "models/embedding.h"
#include "models/train_loop.h"
#include "sampling/negative_sampler.h"
#include "sampling/triplet_sampler.h"
#include "serve/write_tracker.h"
#include "train/parallel_trainer.h"
#include "train/snapshot.h"

namespace mars {

Cml::Cml(CmlConfig config) : config_(config) {}

void Cml::Fit(const ImplicitDataset& train, const TrainOptions& options) {
  const size_t d = config_.dim;
  Rng rng(options.seed);
  user_ = Matrix(train.num_users(), d);
  item_ = Matrix(train.num_items(), d);
  InitEmbeddingInBall(&user_, &rng);
  InitEmbeddingInBall(&item_, &rng);

  const TripletSampler sampler(train, TripletUserMode::kUniformInteraction);
  const NegativeSampler negatives(train);
  const size_t steps = ResolveStepsPerEpoch(options, train);
  const float margin = static_cast<float>(config_.margin);
  const size_t candidates = std::max<size_t>(1, config_.negative_candidates);

  ParallelTrainer trainer(options, &rng);
  WriteTracker* const tracker = options.write_tracker;
  float lr = 0.0f;  // per-epoch, set before steps fan out

  const auto step = [&](size_t, Rng& wrng) {
    Triplet t;
    if (!sampler.Sample(&wrng, &t)) return;
    float* u = user_.Row(t.user);
    float* vp = item_.Row(t.positive);
    // WARP-style: of `candidates` sampled negatives, train on the one
    // currently closest to the user (the hardest violator).
    ItemId hardest = t.negative;
    float hardest_d = SquaredDistance(u, item_.Row(t.negative), d);
    for (size_t c = 1; c < candidates; ++c) {
      ItemId cand;
      if (!negatives.Sample(t.user, &wrng, &cand)) break;
      const float cand_d = SquaredDistance(u, item_.Row(cand), d);
      if (cand_d < hardest_d) {
        hardest = cand;
        hardest_d = cand_d;
      }
    }
    float* vq = item_.Row(hardest);
    if (tracker != nullptr) {
      tracker->MarkUser(t.user);
      tracker->MarkItem(t.positive);
      tracker->MarkItem(hardest);
    }
    const float dp = SquaredDistance(u, vp, d);
    const float dq = hardest_d;
    if (margin + dp - dq <= 0.0f) return;  // hinge inactive
    // d/du   = 2(u - vp) - 2(u - vq) = 2(vq - vp)
    // d/dvp  = -2(u - vp),  d/dvq = 2(u - vq)
    for (size_t i = 0; i < d; ++i) {
      const float ui = u[i];
      u[i] -= lr * 2.0f * (vq[i] - vp[i]);
      vp[i] -= lr * -2.0f * (ui - vp[i]);
      vq[i] -= lr * 2.0f * (ui - vq[i]);
    }
    ProjectToUnitBall(u, d);
    ProjectToUnitBall(vp, d);
    ProjectToUnitBall(vq, d);
  };

  std::unique_ptr<Cml> snap;
  const auto snapshot = [&]() -> const ItemScorer* {
    return CopyModelSnapshot(*this, &snap);
  };

  RunTrainingLoop(
      options, *this, name(),
      [&](size_t, double lr_d) {
        lr = static_cast<float>(lr_d);
        trainer.RunEpoch(steps, step);
      },
      snapshot);
}

float Cml::Score(UserId u, ItemId v) const {
  return -SquaredDistance(user_.Row(u), item_.Row(v), config_.dim);
}

void Cml::ScoreItems(UserId u, std::span<const ItemId> items,
                     float* out) const {
  NegatedSquaredDistanceGather(user_.Row(u), item_.data(), item_.cols(),
                               items.data(), items.size(), config_.dim,
                               out);
}

void Cml::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                         float* out) const {
  if (begin >= end) return;
  NegatedSquaredDistanceBatch(user_.Row(u), item_.Row(begin), end - begin,
                              item_.cols(), config_.dim, out);
}

void Cml::ScoreItemRangeMulti(std::span<const UserId> users, ItemId begin,
                              ItemId end, float* const* out) const {
  if (begin >= end || users.empty()) return;
  std::vector<const float*> urows(users.size());
  for (size_t b = 0; b < users.size(); ++b) urows[b] = user_.Row(users[b]);
  NegatedSquaredDistanceBatchMulti(urows.data(), users.size(),
                                   item_.Row(begin), end - begin,
                                   item_.cols(), config_.dim, out);
}

void Cml::CopyIndexVectors(ItemId begin, ItemId end, float* out) const {
  for (ItemId v = begin; v < end; ++v, out += config_.dim) {
    Copy(item_.Row(v), out, config_.dim);
  }
}

void Cml::WriteIndexQuery(UserId u, float* out) const {
  Copy(user_.Row(u), out, config_.dim);
}

}  // namespace mars
