// Symmetric Metric Learning with adaptive margins (SML) [26].
//
// Extends the user-centric triplet with an item-centric one, both with
// *learnable* margins:
//
//   L =   [d(u,v_p)² + m_u    − d(u,v_q)²  ]_+
//     + λ [d(u,v_p)² + m_{v_p} − d(v_p,v_q)²]_+
//     − γ (mean(m_user) + mean(m_item))
//   s.t.  0 ≤ m ≤ l,  ||u|| ≤ 1, ||v|| ≤ 1
//
// The margin regularizer (−γ) pushes margins up while the hinges push them
// down where triplets are hard, yielding the "dynamic margin" behaviour.
#ifndef MARS_MODELS_SML_H_
#define MARS_MODELS_SML_H_

#include <vector>

#include "common/matrix.h"
#include "models/recommender.h"

namespace mars {

/// Model-specific hyperparameters.
struct SmlConfig {
  size_t dim = 32;
  /// Upper bound l on learnable margins.
  double margin_cap = 1.0;
  /// Initial margin value.
  double margin_init = 0.5;
  /// Weight λ of the item-centric hinge.
  double item_weight = 0.5;
  /// Margin regularizer strength γ; must be large enough to keep learnable
  /// margins from collapsing to zero (the hinge pushes them down whenever
  /// it is active).
  double margin_reg = 0.1;
  /// Negatives sampled per step; the hardest is used (as in CML).
  size_t negative_candidates = 5;
};

/// SML recommender.
class Sml : public Recommender {
 public:
  explicit Sml(SmlConfig config);

  void Fit(const ImplicitDataset& train, const TrainOptions& options) override;
  float Score(UserId u, ItemId v) const override;
  void ScoreItems(UserId u, std::span<const ItemId> items,
                  float* out) const override;
  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      float* out) const override;
  void ScoreItemRangeMulti(std::span<const UserId> users, ItemId begin,
                           ItemId end, float* const* out) const override;
  std::string name() const override { return "SML"; }

  // ANN capability: L2 geometry (Score == -distance², same as CML).
  IndexGeometry index_geometry() const override { return IndexGeometry::kL2; }
  size_t index_dim() const override { return config_.dim; }
  void CopyIndexVectors(ItemId begin, ItemId end, float* out) const override;
  void WriteIndexQuery(UserId u, float* out) const override;

  /// Learned per-user margins (for the ablation study and tests).
  const std::vector<float>& user_margins() const { return user_margin_; }
  const std::vector<float>& item_margins() const { return item_margin_; }

 private:
  SmlConfig config_;
  Matrix user_;
  Matrix item_;
  std::vector<float> user_margin_;
  std::vector<float> item_margin_;
};

}  // namespace mars

#endif  // MARS_MODELS_SML_H_
