// Bayesian Personalized Ranking with matrix-factorization scoring [35].
//
//   score(u, v) = p_u · q_v + b_v
//   L = -log σ(score(u,v_p) - score(u,v_q)) + λ(||p_u||² + ||q_v||² + b²)
//
// Trained by SGD over uniformly sampled (u, v_p, v_q) triplets — the
// classic pairwise MF baseline in the paper's Table II.
#ifndef MARS_MODELS_BPR_H_
#define MARS_MODELS_BPR_H_

#include <vector>

#include "common/matrix.h"
#include "models/recommender.h"

namespace mars {

/// Model-specific hyperparameters.
struct BprConfig {
  size_t dim = 32;
  double l2_reg = 1e-4;
  bool use_item_bias = true;
};

/// BPR-MF recommender.
class Bpr : public Recommender {
 public:
  explicit Bpr(BprConfig config);

  void Fit(const ImplicitDataset& train, const TrainOptions& options) override;
  float Score(UserId u, ItemId v) const override;
  void ScoreItems(UserId u, std::span<const ItemId> items,
                  float* out) const override;
  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      float* out) const override;
  void ScoreItemRangeMulti(std::span<const UserId> users, ItemId begin,
                           ItemId end, float* const* out) const override;
  std::string name() const override { return "BPR"; }

  // ANN capability: dot geometry, with the item bias folded in as one
  // appended vector component against a constant-1 query component, so
  // dot(query, item_vec) == Score exactly (eval/scorer.h contract).
  IndexGeometry index_geometry() const override { return IndexGeometry::kDot; }
  size_t index_dim() const override {
    return config_.dim + (config_.use_item_bias ? 1 : 0);
  }
  void CopyIndexVectors(ItemId begin, ItemId end, float* out) const override;
  void WriteIndexQuery(UserId u, float* out) const override;

  const Matrix& user_factors() const { return user_; }
  const Matrix& item_factors() const { return item_; }

 private:
  BprConfig config_;
  Matrix user_;   // N×D
  Matrix item_;   // M×D
  std::vector<float> item_bias_;
};

}  // namespace mars

#endif  // MARS_MODELS_BPR_H_
