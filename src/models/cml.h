// Collaborative Metric Learning [15].
//
//   score(u, v) = -||u - v||²
//   L = Σ [m + ||u - v_p||² - ||u - v_q||²]_+      (triplet hinge)
//   s.t. ||u|| ≤ 1, ||v|| ≤ 1                       (unit-ball projection)
//
// Faithful to the original, each step samples `negative_candidates`
// negatives and trains on the hardest one (the WARP-style approximation of
// CML's rank-weighted loss); candidates = 1 degenerates to the plain
// uniform-negative hinge.
//
// The canonical single-space metric-learning recommender the paper builds
// on; also the CML column of the ablation Table IV.
#ifndef MARS_MODELS_CML_H_
#define MARS_MODELS_CML_H_

#include "common/matrix.h"
#include "models/recommender.h"

namespace mars {

/// Model-specific hyperparameters.
struct CmlConfig {
  size_t dim = 32;
  double margin = 0.5;
  /// Negatives sampled per step; the one closest to the user (hardest) is
  /// used in the hinge, approximating CML's WARP rank weighting. 1 (the
  /// default) is the plain uniform-negative hinge, which performs best on
  /// the synthetic benchmarks; raise it for hard-negative mining.
  size_t negative_candidates = 1;
};

/// CML recommender.
class Cml : public Recommender {
 public:
  explicit Cml(CmlConfig config);

  void Fit(const ImplicitDataset& train, const TrainOptions& options) override;
  float Score(UserId u, ItemId v) const override;
  void ScoreItems(UserId u, std::span<const ItemId> items,
                  float* out) const override;
  void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                      float* out) const override;
  void ScoreItemRangeMulti(std::span<const UserId> users, ItemId begin,
                           ItemId end, float* const* out) const override;
  std::string name() const override { return "CML"; }

  // ANN capability: L2 geometry — Score is exactly -||u - v||², strictly
  // decreasing in distance, so a metric index (VP-tree) is exact here.
  IndexGeometry index_geometry() const override { return IndexGeometry::kL2; }
  size_t index_dim() const override { return config_.dim; }
  void CopyIndexVectors(ItemId begin, ItemId end, float* out) const override;
  void WriteIndexQuery(UserId u, float* out) const override;

  const Matrix& user_embeddings() const { return user_; }
  const Matrix& item_embeddings() const { return item_; }

 private:
  CmlConfig config_;
  Matrix user_;
  Matrix item_;
};

}  // namespace mars

#endif  // MARS_MODELS_CML_H_
