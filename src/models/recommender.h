// Base interface shared by every recommendation model in the library.
//
// A Recommender is fit once on a training ImplicitDataset and afterwards
// scores arbitrary (user, item) pairs; the evaluator ranks those scores.
// Training options (epochs, learning rate, early stopping) are uniform
// across models so experiment harnesses can sweep them generically; each
// model additionally has its own config struct (dimensions, margins,
// regularizer weights) passed to its constructor.
#ifndef MARS_MODELS_RECOMMENDER_H_
#define MARS_MODELS_RECOMMENDER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "data/dataset.h"
#include "eval/evaluator.h"
#include "eval/scorer.h"
#include "opt/schedule.h"

namespace mars {

class ThreadPool;
class WriteTracker;

/// Uniform training knobs.
struct TrainOptions {
  /// Maximum number of epochs.
  size_t epochs = 30;
  /// SGD steps per epoch; 0 means one step per training interaction.
  size_t steps_per_epoch = 0;
  /// Base learning rate.
  double learning_rate = 0.05;
  /// Learning-rate decay shape.
  LrDecay decay = LrDecay::kLinear;
  /// Seed for initialization and sampling.
  uint64_t seed = 7;
  /// Hogwild training workers (train/parallel_trainer.h). 1 reproduces the
  /// historical single-threaded training sequence bit-for-bit; more workers
  /// shard each epoch's steps across a pool and overlap dev evaluation with
  /// the next epoch (models score a double-buffered snapshot).
  size_t num_threads = 1;

  /// Optional dev-set evaluator; when set, training early-stops on HR@10.
  const Evaluator* dev_evaluator = nullptr;
  /// Thread pool for dev evaluation (may be null).
  ThreadPool* eval_pool = nullptr;
  /// Evaluate the dev set every this many epochs.
  size_t eval_every = 5;
  /// Early-stopping patience (consecutive non-improving dev evals).
  size_t patience = 2;

  /// Optional dirty-shard reporting for the serving cache
  /// (serve/write_tracker.h): when set, every training step marks the
  /// shards of the rows it wrote (relaxed atomic stores, safe from Hogwild
  /// workers), and models whose steps write global tables mark the whole
  /// catalog. TopKServer::AbsorbWrites consumes the flags at a quiesced
  /// epoch boundary.
  WriteTracker* write_tracker = nullptr;

  /// Optional epoch-boundary hook, invoked after each epoch's steps while
  /// the trainer pool is quiesced — the one moment model tables may be
  /// read or copied (the snapshot/quiesce contract). The serving
  /// integration publishes from here: take an owned frozen copy (e.g.
  /// Mars::ServingSnapshot) and hand it with the write tracker to
  /// TopKServer::PublishEpoch, which swaps the serving epoch without
  /// blocking in-flight queries. Keep the callback bounded: the next
  /// epoch does not start until it returns.
  std::function<void(size_t epoch)> epoch_callback = nullptr;

  /// Log per-epoch progress.
  bool verbose = false;
};

/// Abstract recommender.
class Recommender : public ItemScorer {
 public:
  ~Recommender() override = default;

  /// Trains the model on `train`. May be called once per instance.
  virtual void Fit(const ImplicitDataset& train,
                   const TrainOptions& options) = 0;

  /// Human-readable model name ("CML", "MARS", ...).
  virtual std::string name() const = 0;
};

}  // namespace mars

#endif  // MARS_MODELS_RECOMMENDER_H_
