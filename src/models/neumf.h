// Neural Matrix Factorization (NeuMF) [13].
//
// Dual-tower neural collaborative filtering:
//   GMF tower:  g = p_u ⊙ q_v                       (element-wise product)
//   MLP tower:  m = MLP([p'_u ; q'_v])              (separate embeddings)
//   score:      ŷ = σ(h · [g ; m])
// trained with binary cross-entropy and `negatives_per_positive` sampled
// negatives per observed interaction, exactly as in the original paper.
#ifndef MARS_MODELS_NEUMF_H_
#define MARS_MODELS_NEUMF_H_

#include <memory>
#include <vector>

#include "common/matrix.h"
#include "models/mlp.h"
#include "models/recommender.h"

namespace mars {

/// Model-specific hyperparameters.
struct NeuMfConfig {
  size_t gmf_dim = 16;
  size_t mlp_dim = 16;  // per-entity embedding feeding the MLP tower
  /// Hidden layer widths of the MLP tower (input is 2*mlp_dim).
  std::vector<size_t> hidden = {32, 16};
  size_t negatives_per_positive = 4;
  double l2_reg = 1e-5;
};

/// NeuMF recommender.
class NeuMf : public Recommender {
 public:
  explicit NeuMf(NeuMfConfig config);

  void Fit(const ImplicitDataset& train, const TrainOptions& options) override;
  float Score(UserId u, ItemId v) const override;
  std::string name() const override { return "NeuMF"; }
  /// Scoring reuses the tower's cached activations; evaluate serially.
  bool thread_safe() const override { return false; }

 private:
  /// Forward pass; fills the scratch buffers and returns the logit.
  float ForwardLogit(UserId u, ItemId v) const;

  NeuMfConfig config_;
  Matrix gmf_user_, gmf_item_;  // N×Dg, M×Dg
  Matrix mlp_user_, mlp_item_;  // N×Dm, M×Dm
  std::unique_ptr<Mlp> tower_;
  std::vector<float> out_weight_;  // Dg + hidden.back()
  float out_bias_ = 0.0f;

  // Scratch (mutable so Score() can reuse the forward machinery).
  mutable std::vector<float> concat_;   // 2*Dm
  mutable std::vector<float> gmf_out_;  // Dg
};

}  // namespace mars

#endif  // MARS_MODELS_NEUMF_H_
