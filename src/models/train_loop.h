// Shared epoch driver: runs epochs, schedules the learning rate, evaluates
// the dev set, and early-stops. Every model's Fit() delegates here so the
// training protocol is identical across the comparison.
#ifndef MARS_MODELS_TRAIN_LOOP_H_
#define MARS_MODELS_TRAIN_LOOP_H_

#include <functional>

#include "data/dataset.h"
#include "models/recommender.h"

namespace mars {

/// Callback invoked once per epoch with (epoch index, learning rate).
using EpochFn = std::function<void(size_t epoch, double lr)>;

/// Runs up to `options.epochs` epochs of `run_epoch`, early-stopping on the
/// dev evaluator's HR@10 when one is configured. `scorer` is the model
/// being trained (used for dev evaluation). Returns the number of epochs
/// actually run.
size_t RunTrainingLoop(const TrainOptions& options, const ItemScorer& scorer,
                       const std::string& model_name, const EpochFn& run_epoch);

/// Resolves steps-per-epoch: `options.steps_per_epoch` or, when zero, the
/// number of training interactions.
size_t ResolveStepsPerEpoch(const TrainOptions& options,
                            const ImplicitDataset& train);

}  // namespace mars

#endif  // MARS_MODELS_TRAIN_LOOP_H_
