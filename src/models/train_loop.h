// Shared epoch driver: runs epochs, schedules the learning rate, evaluates
// the dev set, and early-stops. Every model's Fit() delegates here so the
// training protocol is identical across the comparison.
//
// Two evaluation modes:
//  * Synchronous (num_threads <= 1, or no snapshot function): the classic
//    protocol — training stops while the dev set is ranked. This path is
//    bit-identical to the pre-parallel trainer.
//  * Overlapped (num_threads > 1 and a snapshot function): after an eval
//    epoch the loop snapshots the model (double-buffered copy) and ranks
//    the snapshot on a dedicated thread (plus options.eval_pool) while the
//    next epoch trains. The eval is joined after that epoch, before the
//    early-stop decision, so a stop triggers at most one epoch later than
//    the synchronous protocol but eval wall-clock is hidden entirely.
//
// Both protocols invoke options.epoch_callback right after each epoch's
// steps, with the trainer pool quiesced — the hook the serving layer uses
// to publish a fresh epoch (snapshot + TopKServer::PublishEpoch) without
// stopping either training or in-flight queries.
#ifndef MARS_MODELS_TRAIN_LOOP_H_
#define MARS_MODELS_TRAIN_LOOP_H_

#include <functional>

#include "data/dataset.h"
#include "models/recommender.h"

namespace mars {

/// Callback invoked once per epoch with (epoch index, learning rate).
using EpochFn = std::function<void(size_t epoch, double lr)>;

/// Returns a frozen scorer reflecting the model's current weights; called
/// only between epochs (workers quiesced). The returned pointer must stay
/// valid until the next call or the end of training — models back it with
/// a reusable snapshot instance (double buffer) rather than a fresh copy.
using SnapshotFn = std::function<const ItemScorer*()>;

/// Runs up to `options.epochs` epochs of `run_epoch`, early-stopping on the
/// dev evaluator's HR@10 when one is configured. `scorer` is the model
/// being trained (used for dev evaluation). When `snapshot` is provided and
/// options.num_threads > 1, dev evaluation overlaps the next epoch (see
/// file comment). Returns the number of epochs actually run.
size_t RunTrainingLoop(const TrainOptions& options, const ItemScorer& scorer,
                       const std::string& model_name, const EpochFn& run_epoch,
                       const SnapshotFn& snapshot = nullptr);

/// Resolves steps-per-epoch: `options.steps_per_epoch` or, when zero, the
/// number of training interactions.
size_t ResolveStepsPerEpoch(const TrainOptions& options,
                            const ImplicitDataset& train);

}  // namespace mars

#endif  // MARS_MODELS_TRAIN_LOOP_H_
