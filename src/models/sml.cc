#include "models/sml.h"

#include <algorithm>
#include <memory>

#include "common/kernels.h"
#include "common/rng.h"
#include "common/vec.h"
#include "models/embedding.h"
#include "models/train_loop.h"
#include "sampling/negative_sampler.h"
#include "sampling/triplet_sampler.h"
#include "serve/write_tracker.h"
#include "train/parallel_trainer.h"
#include "train/snapshot.h"

namespace mars {

Sml::Sml(SmlConfig config) : config_(config) {}

void Sml::Fit(const ImplicitDataset& train, const TrainOptions& options) {
  const size_t d = config_.dim;
  Rng rng(options.seed);
  user_ = Matrix(train.num_users(), d);
  item_ = Matrix(train.num_items(), d);
  InitEmbeddingInBall(&user_, &rng);
  InitEmbeddingInBall(&item_, &rng);
  user_margin_.assign(train.num_users(),
                      static_cast<float>(config_.margin_init));
  item_margin_.assign(train.num_items(),
                      static_cast<float>(config_.margin_init));

  const TripletSampler sampler(train, TripletUserMode::kUniformInteraction);
  const NegativeSampler negatives(train);
  const size_t steps = ResolveStepsPerEpoch(options, train);
  const float cap = static_cast<float>(config_.margin_cap);
  const float lam = static_cast<float>(config_.item_weight);
  const float gamma = static_cast<float>(config_.margin_reg);
  const size_t candidates = std::max<size_t>(1, config_.negative_candidates);

  ParallelTrainer trainer(options, &rng);
  WriteTracker* const tracker = options.write_tracker;
  float lr = 0.0f;  // per-epoch, set before steps fan out

  const auto step = [&](size_t, Rng& wrng) {
    Triplet t;
    if (!sampler.Sample(&wrng, &t)) return;
    float* u = user_.Row(t.user);
    float* vp = item_.Row(t.positive);
    // Hardest of `candidates` sampled negatives.
    ItemId hardest = t.negative;
    float hardest_d = SquaredDistance(u, item_.Row(t.negative), d);
    for (size_t c = 1; c < candidates; ++c) {
      ItemId cand;
      if (!negatives.Sample(t.user, &wrng, &cand)) break;
      const float cand_d = SquaredDistance(u, item_.Row(cand), d);
      if (cand_d < hardest_d) {
        hardest = cand;
        hardest_d = cand_d;
      }
    }
    float* vq = item_.Row(hardest);
    if (tracker != nullptr) {
      tracker->MarkUser(t.user);
      tracker->MarkItem(t.positive);
      tracker->MarkItem(hardest);
    }

    const float dp = SquaredDistance(u, vp, d);
    const float dq = SquaredDistance(u, vq, d);
    const float dpq = SquaredDistance(vp, vq, d);

    const bool user_hinge = dp + user_margin_[t.user] - dq > 0.0f;
    const bool item_hinge = dp + item_margin_[t.positive] - dpq > 0.0f;

    // Embedding gradients (all computed against pre-update values).
    // User hinge:  du = 2(vq - vp);  dvp = -2(u - vp); dvq = 2(u - vq).
    // Item hinge:  dvp gets 2(vp - u) + ... careful below; dvq from -dpq.
    for (size_t i = 0; i < d; ++i) {
      float du = 0.0f, dvp_g = 0.0f, dvq_g = 0.0f;
      if (user_hinge) {
        du += 2.0f * (vq[i] - vp[i]);
        dvp_g += -2.0f * (u[i] - vp[i]);
        dvq_g += 2.0f * (u[i] - vq[i]);
      }
      if (item_hinge) {
        // d/dvp [d(u,vp)² - d(vp,vq)²] = 2(vp - u) - 2(vp - vq)
        //                              = 2(vq - u)
        du += lam * -2.0f * (vp[i] - u[i]);
        dvp_g += lam * 2.0f * (vq[i] - u[i]);
        dvq_g += lam * 2.0f * (vp[i] - vq[i]);
      }
      u[i] -= lr * du;
      vp[i] -= lr * dvp_g;
      vq[i] -= lr * dvq_g;
    }
    // Margin updates: hinge pushes margin down, regularizer pushes up.
    const float mu_grad = (user_hinge ? 1.0f : 0.0f) - gamma;
    const float mi_grad = lam * (item_hinge ? 1.0f : 0.0f) - gamma;
    user_margin_[t.user] = std::clamp(
        user_margin_[t.user] - lr * mu_grad, 0.0f, cap);
    item_margin_[t.positive] = std::clamp(
        item_margin_[t.positive] - lr * mi_grad, 0.0f, cap);

    ProjectToUnitBall(u, d);
    ProjectToUnitBall(vp, d);
    ProjectToUnitBall(vq, d);
  };

  std::unique_ptr<Sml> snap;
  const auto snapshot = [&]() -> const ItemScorer* {
    return CopyModelSnapshot(*this, &snap);
  };

  RunTrainingLoop(
      options, *this, name(),
      [&](size_t, double lr_d) {
        lr = static_cast<float>(lr_d);
        trainer.RunEpoch(steps, step);
      },
      snapshot);
}

float Sml::Score(UserId u, ItemId v) const {
  return -SquaredDistance(user_.Row(u), item_.Row(v), config_.dim);
}

void Sml::ScoreItems(UserId u, std::span<const ItemId> items,
                     float* out) const {
  NegatedSquaredDistanceGather(user_.Row(u), item_.data(), item_.cols(),
                               items.data(), items.size(), config_.dim,
                               out);
}

void Sml::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                         float* out) const {
  if (begin >= end) return;
  NegatedSquaredDistanceBatch(user_.Row(u), item_.Row(begin), end - begin,
                              item_.cols(), config_.dim, out);
}

void Sml::ScoreItemRangeMulti(std::span<const UserId> users, ItemId begin,
                              ItemId end, float* const* out) const {
  if (begin >= end || users.empty()) return;
  std::vector<const float*> urows(users.size());
  for (size_t b = 0; b < users.size(); ++b) urows[b] = user_.Row(users[b]);
  NegatedSquaredDistanceBatchMulti(urows.data(), users.size(),
                                   item_.Row(begin), end - begin,
                                   item_.cols(), config_.dim, out);
}

void Sml::CopyIndexVectors(ItemId begin, ItemId end, float* out) const {
  for (ItemId v = begin; v < end; ++v, out += config_.dim) {
    Copy(item_.Row(v), out, config_.dim);
  }
}

void Sml::WriteIndexQuery(UserId u, float* out) const {
  Copy(user_.Row(u), out, config_.dim);
}

}  // namespace mars
