// Non-negative matrix factorization [25] with Lee-Seung multiplicative
// updates on the binary implicit matrix.
//
//   X ≈ W Hᵀ,  W ∈ R^{N×F}_{≥0},  H ∈ R^{M×F}_{≥0}
//   H ← H ⊙ (XᵀW) / (H WᵀW + ε)
//   W ← W ⊙ (X H) / (W HᵀH + ε)
//
// Besides serving as a Table II baseline, NMF with F = K factors
// initializes the per-user facet weights Θ_u of MAR/MARS (the paper sets
// NMF's latent factor count to the number of metric spaces for exactly
// this purpose).
#ifndef MARS_MODELS_NMF_H_
#define MARS_MODELS_NMF_H_

#include "common/matrix.h"
#include "models/recommender.h"

namespace mars {

/// Model-specific hyperparameters.
struct NmfConfig {
  size_t factors = 32;
  /// Multiplicative update sweeps (TrainOptions.epochs overrides when set).
  size_t iterations = 50;
};

/// NMF recommender.
class Nmf : public Recommender {
 public:
  explicit Nmf(NmfConfig config);

  void Fit(const ImplicitDataset& train, const TrainOptions& options) override;
  float Score(UserId u, ItemId v) const override;
  std::string name() const override { return "NMF"; }

  /// User factor matrix W (N×F); rows are non-negative. Used by MAR/MARS
  /// to seed facet weights.
  const Matrix& user_factors() const { return w_; }
  const Matrix& item_factors() const { return h_; }

 private:
  NmfConfig config_;
  Matrix w_;  // N×F
  Matrix h_;  // M×F
};

/// Runs standalone NMF on `train` and returns the user factor matrix W
/// (N×factors), for facet-weight initialization without constructing a
/// full recommender.
Matrix NmfUserFactors(const ImplicitDataset& train, size_t factors,
                      size_t iterations, uint64_t seed);

}  // namespace mars

#endif  // MARS_MODELS_NMF_H_
