#include "models/neumf.h"

#include <cmath>

#include "common/rng.h"
#include "common/vec.h"
#include "models/embedding.h"
#include "models/train_loop.h"
#include "sampling/negative_sampler.h"

namespace mars {

NeuMf::NeuMf(NeuMfConfig config) : config_(config) {}

float NeuMf::ForwardLogit(UserId u, ItemId v) const {
  const size_t dg = config_.gmf_dim;
  const size_t dm = config_.mlp_dim;
  Hadamard(gmf_user_.Row(u), gmf_item_.Row(v), gmf_out_.data(), dg);
  Copy(mlp_user_.Row(u), concat_.data(), dm);
  Copy(mlp_item_.Row(v), concat_.data() + dm, dm);
  const float* mlp_out = tower_->Forward(concat_.data());
  float logit = out_bias_;
  logit += Dot(out_weight_.data(), gmf_out_.data(), dg);
  logit += Dot(out_weight_.data() + dg, mlp_out, tower_->out_dim());
  return logit;
}

void NeuMf::Fit(const ImplicitDataset& train, const TrainOptions& options) {
  Rng rng(options.seed);
  const size_t dg = config_.gmf_dim;
  const size_t dm = config_.mlp_dim;

  gmf_user_ = Matrix(train.num_users(), dg);
  gmf_item_ = Matrix(train.num_items(), dg);
  mlp_user_ = Matrix(train.num_users(), dm);
  mlp_item_ = Matrix(train.num_items(), dm);
  InitEmbedding(&gmf_user_, &rng);
  InitEmbedding(&gmf_item_, &rng);
  InitEmbedding(&mlp_user_, &rng);
  InitEmbedding(&mlp_item_, &rng);

  std::vector<size_t> dims;
  dims.push_back(2 * dm);
  for (size_t h : config_.hidden) dims.push_back(h);
  tower_ = std::make_unique<Mlp>(dims, Activation::kIdentity, &rng);

  const size_t out_dim = dg + tower_->out_dim();
  out_weight_.resize(out_dim);
  for (float& w : out_weight_) {
    w = static_cast<float>(rng.Normal(0.0, 1.0 / std::sqrt(out_dim)));
  }
  out_bias_ = 0.0f;
  concat_.assign(2 * dm, 0.0f);
  gmf_out_.assign(dg, 0.0f);

  const NegativeSampler negatives(train);
  const size_t steps = ResolveStepsPerEpoch(options, train);
  const float l2 = static_cast<float>(config_.l2_reg);
  const auto& log = train.interactions();

  std::vector<float> grad_mlp_out(tower_->out_dim());
  std::vector<float> grad_concat(2 * dm);

  // One SGD step on a single labeled pair.
  auto step_pair = [&](UserId u, ItemId v, float label, float lr) {
    const float logit = ForwardLogit(u, v);
    const float pred = static_cast<float>(Sigmoid(logit));
    const float dlogit = pred - label;  // BCE gradient

    // Output layer splits into GMF and MLP halves.
    const float* mlp_out = tower_->Forward(concat_.data());
    // grad wrt out_weight and the two tower outputs.
    for (size_t i = 0; i < dg; ++i) {
      const float w = out_weight_[i];
      out_weight_[i] -= lr * (dlogit * gmf_out_[i] + l2 * w);
      gmf_out_[i] = dlogit * w;  // reuse as grad buffer
    }
    for (size_t i = 0; i < tower_->out_dim(); ++i) {
      const float w = out_weight_[dg + i];
      out_weight_[dg + i] -= lr * (dlogit * mlp_out[i] + l2 * w);
      grad_mlp_out[i] = dlogit * w;
    }
    out_bias_ -= lr * dlogit;

    // GMF tower backprop: g_i = p_i q_i.
    float* pu = gmf_user_.Row(u);
    float* qv = gmf_item_.Row(v);
    for (size_t i = 0; i < dg; ++i) {
      const float gp = gmf_out_[i] * qv[i];
      const float gq = gmf_out_[i] * pu[i];
      pu[i] -= lr * (gp + l2 * pu[i]);
      qv[i] -= lr * (gq + l2 * qv[i]);
    }

    // MLP tower backprop into the concatenated embeddings.
    tower_->Backward(concat_.data(), grad_mlp_out.data(), lr, l2,
                     grad_concat.data());
    float* mu = mlp_user_.Row(u);
    float* mv = mlp_item_.Row(v);
    for (size_t i = 0; i < dm; ++i) {
      mu[i] -= lr * (grad_concat[i] + l2 * mu[i]);
      mv[i] -= lr * (grad_concat[dm + i] + l2 * mv[i]);
    }
  };

  RunTrainingLoop(options, *this, name(), [&](size_t, double lr_d) {
    const float lr = static_cast<float>(lr_d);
    for (size_t s = 0; s < steps; ++s) {
      const Interaction& x = log[rng.UniformInt(log.size())];
      step_pair(x.user, x.item, 1.0f, lr);
      for (size_t k = 0; k < config_.negatives_per_positive; ++k) {
        ItemId vq;
        if (!negatives.Sample(x.user, &rng, &vq)) break;
        step_pair(x.user, vq, 0.0f, lr);
      }
    }
  });
}

float NeuMf::Score(UserId u, ItemId v) const { return ForwardLogit(u, v); }

}  // namespace mars
