#include "models/lrml.h"

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/vec.h"
#include "models/embedding.h"
#include "models/train_loop.h"
#include "sampling/triplet_sampler.h"
#include "serve/write_tracker.h"
#include "train/parallel_trainer.h"
#include "train/snapshot.h"

namespace mars {

Lrml::Lrml(LrmlConfig config) : config_(config) {}

void Lrml::Relation(const float* u, const float* v, float* attention,
                    float* relation) const {
  const size_t d = config_.dim;
  const size_t s_n = config_.memory_slots;
  std::vector<float> p(d);
  Hadamard(u, v, p.data(), d);
  std::vector<float> logits(s_n);
  for (size_t s = 0; s < s_n; ++s) {
    logits[s] = Dot(keys_.Row(s), p.data(), d);
  }
  Softmax(logits.data(), attention, s_n);
  Fill(0.0f, relation, d);
  for (size_t s = 0; s < s_n; ++s) {
    Axpy(attention[s], memory_.Row(s), relation, d);
  }
}

void Lrml::BackwardPair(float* u, float* v, const float* grad_e, float lr) {
  const size_t d = config_.dim;
  const size_t s_n = config_.memory_slots;

  std::vector<float> a(s_n), r(d), p(d);
  Relation(u, v, a.data(), r.data());
  Hadamard(u, v, p.data(), d);

  // dL/da_s = m_s · grad_e ; softmax Jacobian ; dL/dp = Σ dt_s k_s.
  std::vector<float> q(s_n), dt(s_n), dp(d, 0.0f);
  float mean_q = 0.0f;
  for (size_t s = 0; s < s_n; ++s) {
    q[s] = Dot(memory_.Row(s), grad_e, d);
    mean_q += a[s] * q[s];
  }
  for (size_t s = 0; s < s_n; ++s) dt[s] = a[s] * (q[s] - mean_q);
  for (size_t s = 0; s < s_n; ++s) {
    if (dt[s] == 0.0f) continue;
    Axpy(dt[s], keys_.Row(s), dp.data(), d);
  }

  // Parameter updates (compute all grads against current values first).
  for (size_t s = 0; s < s_n; ++s) {
    float* key = keys_.Row(s);
    float* mem = memory_.Row(s);
    for (size_t i = 0; i < d; ++i) {
      key[i] -= lr * dt[s] * p[i];
      mem[i] -= lr * a[s] * grad_e[i];
    }
    ProjectToUnitBall(mem, d);
  }
  for (size_t i = 0; i < d; ++i) {
    const float du = grad_e[i] + dp[i] * v[i];
    const float dv = -grad_e[i] + dp[i] * u[i];
    u[i] -= lr * du;
    v[i] -= lr * dv;
  }
  ProjectToUnitBall(u, d);
  ProjectToUnitBall(v, d);
}

void Lrml::Fit(const ImplicitDataset& train, const TrainOptions& options) {
  const size_t d = config_.dim;
  const size_t s_n = config_.memory_slots;
  Rng rng(options.seed);
  user_ = Matrix(train.num_users(), d);
  item_ = Matrix(train.num_items(), d);
  keys_ = Matrix(s_n, d);
  memory_ = Matrix(s_n, d);
  InitEmbeddingInBall(&user_, &rng);
  InitEmbeddingInBall(&item_, &rng);
  InitEmbedding(&keys_, &rng);
  InitEmbeddingInBall(&memory_, &rng);

  const TripletSampler sampler(train, TripletUserMode::kUniformInteraction);
  const size_t steps = ResolveStepsPerEpoch(options, train);
  const float margin = static_cast<float>(config_.margin);

  // Hogwild workers race on the global key/memory matrices, which every
  // step reads and writes — dense per-step contention, unlike the rare
  // row collisions of the embedding tables. Training still proceeds as
  // approximate SGD, but multi-thread quality for LRML is unvalidated;
  // prefer num_threads=1 here (see ROADMAP "shard/ownership model").
  ParallelTrainer trainer(options, &rng);
  struct Scratch {
    std::vector<float> a, rp, rq, ep, eq, grad_e;
  };
  std::vector<Scratch> scratch(trainer.num_workers());
  for (Scratch& sc : scratch) {
    sc.a.resize(s_n);
    sc.rp.resize(d);
    sc.rq.resize(d);
    sc.ep.resize(d);
    sc.eq.resize(d);
    sc.grad_e.resize(d);
  }
  WriteTracker* const tracker = options.write_tracker;
  float lr = 0.0f;  // per-epoch, set before steps fan out

  const auto step = [&](size_t worker, Rng& wrng) {
    Scratch& sc = scratch[worker];
    std::vector<float>& a = sc.a;
    std::vector<float>& rp = sc.rp;
    std::vector<float>& rq = sc.rq;
    std::vector<float>& ep = sc.ep;
    std::vector<float>& eq = sc.eq;
    std::vector<float>& grad_e = sc.grad_e;

    Triplet t;
    if (!sampler.Sample(&wrng, &t)) return;
    float* u = user_.Row(t.user);
    float* vp = item_.Row(t.positive);
    float* vq = item_.Row(t.negative);
    if (tracker != nullptr) {
      // BackwardPair also writes the global key/memory matrices, which
      // enter the relation of *every* pair — the whole catalog is dirty.
      tracker->MarkAllUsers();
      tracker->MarkAllItems();
    }

    Relation(u, vp, a.data(), rp.data());
    for (size_t i = 0; i < d; ++i) ep[i] = u[i] + rp[i] - vp[i];
    Relation(u, vq, a.data(), rq.data());
    for (size_t i = 0; i < d; ++i) eq[i] = u[i] + rq[i] - vq[i];

    const float dp2 = SquaredNorm(ep.data(), d);
    const float dq2 = SquaredNorm(eq.data(), d);
    if (margin + dp2 - dq2 <= 0.0f) return;

    // Positive pair term: +||e_p||² → grad_e = 2 e_p.
    for (size_t i = 0; i < d; ++i) grad_e[i] = 2.0f * ep[i];
    BackwardPair(u, vp, grad_e.data(), lr);
    // Negative pair term: -||e_q||² → grad_e = -2 e_q.
    for (size_t i = 0; i < d; ++i) grad_e[i] = -2.0f * eq[i];
    BackwardPair(u, vq, grad_e.data(), lr);
  };

  std::unique_ptr<Lrml> snap;
  const auto snapshot = [&]() -> const ItemScorer* {
    return CopyModelSnapshot(*this, &snap);
  };

  RunTrainingLoop(
      options, *this, name(),
      [&](size_t, double lr_d) {
        lr = static_cast<float>(lr_d);
        trainer.RunEpoch(steps, step);
      },
      snapshot);
}

void Lrml::ScoreItemRange(UserId u, ItemId begin, ItemId end,
                          float* out) const {
  // Attention is per pair, so the sweep hoists only the user row and the
  // scratch buffers out of the item loop (Score reallocates them per call).
  const size_t d = config_.dim;
  std::vector<float> a(config_.memory_slots), r(d);
  const float* eu = user_.Row(u);
  for (ItemId v = begin; v < end; ++v) {
    const float* ev = item_.Row(v);
    Relation(eu, ev, a.data(), r.data());
    float acc = 0.0f;
    for (size_t i = 0; i < d; ++i) {
      const float e = eu[i] + r[i] - ev[i];
      acc += e * e;
    }
    out[v - begin] = -acc;
  }
}

float Lrml::Score(UserId u, ItemId v) const {
  const size_t d = config_.dim;
  std::vector<float> a(config_.memory_slots), r(d);
  Relation(user_.Row(u), item_.Row(v), a.data(), r.data());
  const float* eu = user_.Row(u);
  const float* ev = item_.Row(v);
  float acc = 0.0f;
  for (size_t i = 0; i < d; ++i) {
    const float e = eu[i] + r[i] - ev[i];
    acc += e * e;
  }
  return -acc;
}

}  // namespace mars
