#include "models/train_loop.h"

#include "common/logging.h"
#include "eval/early_stopping.h"
#include "opt/schedule.h"

namespace mars {

size_t RunTrainingLoop(const TrainOptions& options, const ItemScorer& scorer,
                       const std::string& model_name,
                       const EpochFn& run_epoch) {
  const LrSchedule schedule(options.learning_rate, options.decay,
                            options.epochs);
  EarlyStopper stopper(options.patience);
  size_t epochs_run = 0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    run_epoch(epoch, schedule.At(epoch));
    ++epochs_run;
    const bool last_epoch = (epoch + 1 == options.epochs);
    if (options.dev_evaluator != nullptr && options.eval_every > 0 &&
        ((epoch + 1) % options.eval_every == 0) && !last_epoch) {
      const RankingMetrics dev =
          options.dev_evaluator->Evaluate(scorer, options.eval_pool);
      if (options.verbose) {
        MARS_LOG(INFO) << model_name << " epoch " << (epoch + 1)
                       << " dev HR@10=" << dev.hr10;
      }
      if (stopper.ShouldStop(dev.hr10)) {
        if (options.verbose) {
          MARS_LOG(INFO) << model_name << " early stop at epoch "
                         << (epoch + 1);
        }
        break;
      }
    }
  }
  return epochs_run;
}

size_t ResolveStepsPerEpoch(const TrainOptions& options,
                            const ImplicitDataset& train) {
  return options.steps_per_epoch > 0 ? options.steps_per_epoch
                                     : train.num_interactions();
}

}  // namespace mars
