#include "models/train_loop.h"

#include <thread>

#include "common/check.h"
#include "common/logging.h"
#include "eval/early_stopping.h"
#include "eval/evaluator.h"
#include "opt/schedule.h"

namespace mars {

namespace {

/// Classic protocol: train, stop, evaluate, decide. Kept byte-for-byte
/// equivalent to the pre-parallel trainer — the num_threads=1 regression
/// tests pin this path.
size_t RunSynchronous(const TrainOptions& options, const ItemScorer& scorer,
                      const std::string& model_name,
                      const EpochFn& run_epoch) {
  const LrSchedule schedule(options.learning_rate, options.decay,
                            options.epochs);
  EarlyStopper stopper(options.patience);
  size_t epochs_run = 0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    run_epoch(epoch, schedule.At(epoch));
    ++epochs_run;
    // Quiesced boundary: the epoch's steps are done and no worker is
    // running, so the callback may read/copy the model tables (the
    // serving layer publishes its next epoch from here).
    if (options.epoch_callback) options.epoch_callback(epoch);
    const bool last_epoch = (epoch + 1 == options.epochs);
    if (options.dev_evaluator != nullptr && options.eval_every > 0 &&
        ((epoch + 1) % options.eval_every == 0) && !last_epoch) {
      const RankingMetrics dev =
          options.dev_evaluator->Evaluate(scorer, options.eval_pool);
      if (options.verbose) {
        MARS_LOG(INFO) << model_name << " epoch " << (epoch + 1)
                       << " dev HR@10=" << dev.hr10;
      }
      if (stopper.ShouldStop(dev.hr10)) {
        if (options.verbose) {
          MARS_LOG(INFO) << model_name << " early stop at epoch "
                         << (epoch + 1);
        }
        break;
      }
    }
  }
  return epochs_run;
}

/// Overlapped protocol: dev evaluation of a frozen snapshot runs on its own
/// thread while the next epoch trains; the pending eval is joined right
/// after that epoch, before the early-stop decision. options.eval_pool (a
/// pool distinct from the trainer's — ThreadPool is not re-entrant) further
/// parallelizes the ranking inside the eval thread.
size_t RunOverlapped(const TrainOptions& options,
                     const std::string& model_name, const EpochFn& run_epoch,
                     const SnapshotFn& snapshot) {
  const LrSchedule schedule(options.learning_rate, options.decay,
                            options.epochs);
  EarlyStopper stopper(options.patience);
  size_t epochs_run = 0;
  std::thread eval_thread;
  RankingMetrics pending_metrics;
  size_t pending_epoch = 0;
  bool has_pending = false;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    run_epoch(epoch, schedule.At(epoch));
    ++epochs_run;
    // Same quiesced-boundary hook as the synchronous path: the trainer
    // pool is idle here (RunEpoch joined its workers); only the previous
    // eval may still be running, and it reads its own frozen snapshot.
    if (options.epoch_callback) options.epoch_callback(epoch);
    if (has_pending) {
      eval_thread.join();
      has_pending = false;
      if (options.verbose) {
        MARS_LOG(INFO) << model_name << " epoch " << pending_epoch
                       << " dev HR@10=" << pending_metrics.hr10
                       << " (overlapped)";
      }
      if (stopper.ShouldStop(pending_metrics.hr10)) {
        if (options.verbose) {
          MARS_LOG(INFO) << model_name << " early stop at epoch "
                         << (epoch + 1);
        }
        break;
      }
    }
    const bool last_epoch = (epoch + 1 == options.epochs);
    if (options.eval_every > 0 && ((epoch + 1) % options.eval_every == 0) &&
        !last_epoch) {
      const ItemScorer* frozen = snapshot();
      pending_epoch = epoch + 1;
      has_pending = true;
      eval_thread = std::thread([&options, &pending_metrics, frozen] {
        pending_metrics =
            options.dev_evaluator->Evaluate(*frozen, options.eval_pool);
      });
    }
  }
  // Invariant: evals launch only when another epoch follows (!last_epoch),
  // and that epoch's iteration joins them — nothing can still be pending.
  MARS_CHECK(!has_pending);
  return epochs_run;
}

}  // namespace

size_t RunTrainingLoop(const TrainOptions& options, const ItemScorer& scorer,
                       const std::string& model_name, const EpochFn& run_epoch,
                       const SnapshotFn& snapshot) {
  const bool overlap = snapshot != nullptr && options.num_threads > 1 &&
                       options.dev_evaluator != nullptr &&
                       options.eval_every > 0;
  if (overlap) {
    return RunOverlapped(options, model_name, run_epoch, snapshot);
  }
  return RunSynchronous(options, scorer, model_name, run_epoch);
}

size_t ResolveStepsPerEpoch(const TrainOptions& options,
                            const ImplicitDataset& train) {
  return options.steps_per_epoch > 0 ? options.steps_per_epoch
                                     : train.num_interactions();
}

}  // namespace mars
