#include "eval/metrics.h"

#include <cmath>

#include "common/check.h"

namespace mars {

double RankingMetrics::Get(const std::string& name) const {
  if (name == "HR@10") return hr10;
  if (name == "HR@20") return hr20;
  if (name == "nDCG@10") return ndcg10;
  if (name == "nDCG@20") return ndcg20;
  MARS_CHECK_MSG(false, "unknown metric name");
  return 0.0;
}

double HitAt(size_t rank, size_t cutoff) {
  return rank < cutoff ? 1.0 : 0.0;
}

double NdcgAt(size_t rank, size_t cutoff) {
  if (rank >= cutoff) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
}

}  // namespace mars
