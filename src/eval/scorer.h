// Minimal scoring interface the evaluator ranks against.
//
// Every recommender implements this; keeping it separate from the model
// base class lets the evaluation substrate stay independent of the model
// library (and lets tests plug in synthetic oracles).
#ifndef MARS_EVAL_SCORER_H_
#define MARS_EVAL_SCORER_H_

#include <span>

#include "data/interaction.h"

namespace mars {

/// Scores user-item pairs; higher means "more recommended".
class ItemScorer {
 public:
  virtual ~ItemScorer() = default;

  /// Preference score of user `u` for item `v`.
  virtual float Score(UserId u, ItemId v) const = 0;

  /// Batch scoring; the default loops over Score. Models override this when
  /// per-user work (projections, attention) can be hoisted out of the loop.
  virtual void ScoreItems(UserId u, std::span<const ItemId> items,
                          float* out) const {
    for (size_t i = 0; i < items.size(); ++i) out[i] = Score(u, items[i]);
  }

  /// Serving adapter: scores the contiguous catalog slice [begin, end) into
  /// out[0 .. end-begin). The top-k server (serve/top_k_server.h) partitions
  /// the catalog into contiguous shard ranges and calls this per shard;
  /// models override it with the contiguous-block kernels of
  /// common/kernels.h so a full-catalog sweep streams sequentially through
  /// the item table. The default loops over Score.
  virtual void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                              float* out) const {
    for (ItemId v = begin; v < end; ++v) out[v - begin] = Score(u, v);
  }

  /// Whether Score/ScoreItems may be called concurrently from multiple
  /// threads. Models that reuse internal scratch buffers return false and
  /// are evaluated serially.
  virtual bool thread_safe() const { return true; }
};

}  // namespace mars

#endif  // MARS_EVAL_SCORER_H_
