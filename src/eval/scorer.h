// Minimal scoring interface the evaluator ranks against.
//
// Every recommender implements this; keeping it separate from the model
// base class lets the evaluation substrate stay independent of the model
// library (and lets tests plug in synthetic oracles).
#ifndef MARS_EVAL_SCORER_H_
#define MARS_EVAL_SCORER_H_

#include <span>

#include "data/interaction.h"

namespace mars {

/// Scores user-item pairs; higher means "more recommended".
class ItemScorer {
 public:
  virtual ~ItemScorer() = default;

  /// Preference score of user `u` for item `v`.
  virtual float Score(UserId u, ItemId v) const = 0;

  /// Batch scoring; the default loops over Score. Models override this when
  /// per-user work (projections, attention) can be hoisted out of the loop.
  virtual void ScoreItems(UserId u, std::span<const ItemId> items,
                          float* out) const {
    for (size_t i = 0; i < items.size(); ++i) out[i] = Score(u, items[i]);
  }

  /// Whether Score/ScoreItems may be called concurrently from multiple
  /// threads. Models that reuse internal scratch buffers return false and
  /// are evaluated serially.
  virtual bool thread_safe() const { return true; }
};

}  // namespace mars

#endif  // MARS_EVAL_SCORER_H_
