// Minimal scoring interface the evaluator ranks against.
//
// Every recommender implements this; keeping it separate from the model
// base class lets the evaluation substrate stay independent of the model
// library (and lets tests plug in synthetic oracles).
#ifndef MARS_EVAL_SCORER_H_
#define MARS_EVAL_SCORER_H_

#include <cstddef>
#include <span>

#include "data/interaction.h"

namespace mars {

/// Dense-vector geometry of a model's item scores, advertised to the ANN
/// candidate tier (ann/candidate_index.h). A model that opts in exposes one
/// index vector per item and one query vector per user such that ranking by
/// the declared geometry reproduces the ranking of Score():
///
///   kDot — dot(query(u), item(v)) equals Score(u, v) up to floating-point
///          reassociation, so descending dot order is the score order.
///          Models fold affine terms into extra dimensions (e.g. BPR's item
///          bias rides as one appended component against a constant-1 query
///          component; MARS concatenates its K facet rows against
///          theta-and-radius-scaled user facets).
///   kL2  — Score(u, v) is strictly decreasing in ||query(u) - item(v)||
///          (the metric models score exactly -distance²), so ascending
///          distance order is the score order.
///   kNone — no such vectorization exists (per-candidate projections,
///          neural towers, …); the serving layer falls back to the exact
///          full-catalog sweep.
enum class IndexGeometry { kNone, kDot, kL2 };

/// Scores user-item pairs; higher means "more recommended".
class ItemScorer {
 public:
  virtual ~ItemScorer() = default;

  /// Preference score of user `u` for item `v`.
  virtual float Score(UserId u, ItemId v) const = 0;

  /// Batch scoring; the default loops over Score. Models override this when
  /// per-user work (projections, attention) can be hoisted out of the loop.
  virtual void ScoreItems(UserId u, std::span<const ItemId> items,
                          float* out) const {
    for (size_t i = 0; i < items.size(); ++i) out[i] = Score(u, items[i]);
  }

  /// Serving adapter: scores the contiguous catalog slice [begin, end) into
  /// out[0 .. end-begin). The top-k server (serve/top_k_server.h) partitions
  /// the catalog into contiguous shard ranges and calls this per shard;
  /// models override it with the contiguous-block kernels of
  /// common/kernels.h so a full-catalog sweep streams sequentially through
  /// the item table. The default loops over Score.
  virtual void ScoreItemRange(UserId u, ItemId begin, ItemId end,
                              float* out) const {
    for (ItemId v = begin; v < end; ++v) out[v - begin] = Score(u, v);
  }

  /// Multi-user serving adapter: scores the slice [begin, end) for every
  /// user in `users` — out[b][0 .. end-begin) receives users[b]'s scores.
  /// The top-k server's miss coalescer batches concurrent cache misses
  /// through this so each item row is streamed from memory once per batch
  /// instead of once per user. Contract: out[b] must be bit-identical to
  /// ScoreItemRange(users[b], begin, end) — models override with the
  /// multi-user block kernels of common/kernels.h, which pin exactly that;
  /// the default is the literal per-user loop.
  virtual void ScoreItemRangeMulti(std::span<const UserId> users, ItemId begin,
                                   ItemId end, float* const* out) const {
    for (size_t b = 0; b < users.size(); ++b) {
      ScoreItemRange(users[b], begin, end, out[b]);
    }
  }

  /// Whether Score/ScoreItems may be called concurrently from multiple
  /// threads. Models that reuse internal scratch buffers return false and
  /// are evaluated serially.
  virtual bool thread_safe() const { return true; }

  // --- ANN index capability (see IndexGeometry above). ---------------------
  // The contract couples the three overrides: a model returning kDot/kL2
  // must also implement index_dim(), CopyIndexVectors() and
  // WriteIndexQuery() consistently, and the vectors must describe the
  // *current* weights — the serving layer snapshots the model before
  // building, exactly like its score sweeps.

  /// Geometry under which this model's scores are indexable; kNone (the
  /// default) keeps the model on the exact-sweep path.
  virtual IndexGeometry index_geometry() const { return IndexGeometry::kNone; }

  /// Dimensionality of the index/query vectors (0 iff kNone).
  virtual size_t index_dim() const { return 0; }

  /// Writes the index vectors of items [begin, end) tightly packed into
  /// `out` (index_dim() floats per item, no padding).
  virtual void CopyIndexVectors(ItemId begin, ItemId end, float* out) const {
    (void)begin;
    (void)end;
    (void)out;
  }

  /// Writes user `u`'s query vector (index_dim() floats) into `out`.
  virtual void WriteIndexQuery(UserId u, float* out) const {
    (void)u;
    (void)out;
  }
};

}  // namespace mars

#endif  // MARS_EVAL_SCORER_H_
