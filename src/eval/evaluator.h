// Leave-one-out ranking evaluator (paper Sec. V-A2).
//
// For every evaluated user the held-out item is ranked against a fixed set
// of `num_negatives` (default 100) items the user never interacted with —
// the standard sampled-candidate protocol of [13], [33], [40]. Candidate
// sets are sampled once at construction with a fixed seed so that *all*
// models rank against identical candidates, making cross-model comparisons
// noise-free.
//
// Tie handling: candidates scoring strictly higher than the held-out item
// always outrank it; exact ties are counted as half a position (rounded
// down), which is deterministic and model-agnostic.
//
// The scorer's parameters need not live in model-owned tables: during
// overlapped training it is a quiesced double-buffered snapshot, and in
// serving it may be an immutable mmap'd format-v3 snapshot
// (core/persistence.h LoadMarsMapped) — the evaluator only ever reads
// through the const ItemScorer surface, so all three back ends rank
// identically.
#ifndef MARS_EVAL_EVALUATOR_H_
#define MARS_EVAL_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "eval/scorer.h"

namespace mars {

class ThreadPool;

/// Protocol knobs.
struct EvalProtocol {
  /// Number of sampled non-interacted candidate items per user.
  size_t num_negatives = 100;
  /// Seed of the candidate sampler.
  uint64_t seed = 99;
};

/// Pre-sampled leave-one-out evaluator.
class Evaluator {
 public:
  /// `train` supplies the positive sets used to exclude candidates;
  /// `heldout` maps each user to their held-out item (kNoItem = skipped);
  /// `also_exclude` lists additional per-user items to exclude from the
  /// candidates (e.g. the dev item when building the test evaluator).
  Evaluator(const ImplicitDataset& train,
            const std::vector<int64_t>& heldout, EvalProtocol protocol,
            const std::vector<const std::vector<int64_t>*>& also_exclude = {});

  /// Ranks every evaluated user's held-out item and aggregates metrics.
  /// When `pool` is non-null users are ranked in parallel.
  RankingMetrics Evaluate(const ItemScorer& scorer,
                          ThreadPool* pool = nullptr) const;

  /// Like Evaluate, but aggregates per user group: `group_of_user[u]` maps
  /// each user to a group id in [0, num_groups); users mapped to a
  /// negative id are skipped. Used by the controlled difficult-user study
  /// (paper Sec. VI future work): group users by interaction count and
  /// compare models per group.
  std::vector<RankingMetrics> EvaluateGrouped(
      const ItemScorer& scorer, const std::vector<int>& group_of_user,
      size_t num_groups, ThreadPool* pool = nullptr) const;

  /// Number of users with a held-out item.
  size_t NumEvalUsers() const { return eval_users_.size(); }

  /// 0-based rank of user `u`'s held-out item under `scorer` (for tests and
  /// case studies). Requires the user to have a held-out item.
  size_t RankOf(const ItemScorer& scorer, UserId u) const;

 private:
  struct UserCase {
    UserId user;
    ItemId target;
    size_t candidate_offset;  // into candidates_
  };

  size_t RankCase(const ItemScorer& scorer, const UserCase& c) const;

  size_t num_negatives_;
  std::vector<UserCase> eval_users_;
  std::vector<ItemId> candidates_;  // flattened, num_negatives_ per case
  std::vector<int64_t> case_of_user_;  // -1 when not evaluated
};

}  // namespace mars

#endif  // MARS_EVAL_EVALUATOR_H_
