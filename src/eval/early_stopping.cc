#include "eval/early_stopping.h"

#include <limits>

namespace mars {

EarlyStopper::EarlyStopper(size_t patience, double min_delta)
    : patience_(patience),
      min_delta_(min_delta),
      best_(-std::numeric_limits<double>::infinity()) {}

bool EarlyStopper::ShouldStop(double metric) {
  if (metric > best_ + min_delta_) {
    best_ = metric;
    bad_rounds_ = 0;
    return false;
  }
  ++bad_rounds_;
  return bad_rounds_ >= patience_;
}

}  // namespace mars
