// Development-set early stopping used by every training loop.
//
// Training stops once the monitored metric has failed to improve for
// `patience` consecutive evaluations; the caller keeps the parameters from
// the moment training stopped (no snapshot rollback), which matches common
// practice for shallow embedding models where the dev curve is smooth.
#ifndef MARS_EVAL_EARLY_STOPPING_H_
#define MARS_EVAL_EARLY_STOPPING_H_

#include <cstddef>

namespace mars {

/// Tracks a maximize-me metric and reports when to stop.
class EarlyStopper {
 public:
  /// `patience` = number of consecutive non-improving observations
  /// tolerated; `min_delta` = minimum improvement that resets patience.
  explicit EarlyStopper(size_t patience = 3, double min_delta = 1e-5);

  /// Records an observation; returns true when training should stop.
  bool ShouldStop(double metric);

  double best() const { return best_; }
  size_t bad_rounds() const { return bad_rounds_; }

 private:
  size_t patience_;
  double min_delta_;
  double best_;
  size_t bad_rounds_ = 0;
};

}  // namespace mars

#endif  // MARS_EVAL_EARLY_STOPPING_H_
