// Ranking metrics: hit ratio and normalized discounted cumulative gain.
//
// The evaluation protocol has exactly one relevant item per user (the
// leave-one-out test item), so HR@N is "is it in the top N" and nDCG@N is
// 1/log2(rank+2) (0-based rank), with ideal DCG = 1.
#ifndef MARS_EVAL_METRICS_H_
#define MARS_EVAL_METRICS_H_

#include <cstddef>
#include <string>

namespace mars {

/// Aggregated leave-one-out ranking quality.
struct RankingMetrics {
  double hr10 = 0.0;
  double hr20 = 0.0;
  double ndcg10 = 0.0;
  double ndcg20 = 0.0;
  size_t users_evaluated = 0;

  /// Looks a metric up by name ("HR@10", "HR@20", "nDCG@10", "nDCG@20");
  /// aborts on unknown names.
  double Get(const std::string& name) const;
};

/// Hit indicator for a 0-based rank under cutoff N.
double HitAt(size_t rank, size_t cutoff);

/// nDCG contribution of a single relevant item at 0-based `rank` under
/// cutoff N: 1/log2(rank+2) when rank < N, else 0.
double NdcgAt(size_t rank, size_t cutoff);

}  // namespace mars

#endif  // MARS_EVAL_METRICS_H_
