#include "eval/evaluator.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace mars {

Evaluator::Evaluator(
    const ImplicitDataset& train, const std::vector<int64_t>& heldout,
    EvalProtocol protocol,
    const std::vector<const std::vector<int64_t>*>& also_exclude)
    : num_negatives_(protocol.num_negatives) {
  MARS_CHECK(heldout.size() == train.num_users());
  MARS_CHECK(num_negatives_ > 0);
  const size_t n_items = train.num_items();
  MARS_CHECK(n_items > num_negatives_);

  Rng rng(protocol.seed);
  case_of_user_.assign(train.num_users(), -1);

  for (UserId u = 0; u < train.num_users(); ++u) {
    if (heldout[u] < 0) continue;
    const ItemId target = static_cast<ItemId>(heldout[u]);

    auto excluded = [&](ItemId v) {
      if (v == target) return true;
      if (train.HasInteraction(u, v)) return true;
      for (const auto* extra : also_exclude) {
        if (extra != nullptr && (*extra)[u] >= 0 &&
            static_cast<ItemId>((*extra)[u]) == v)
          return true;
      }
      return false;
    };

    UserCase c;
    c.user = u;
    c.target = target;
    c.candidate_offset = candidates_.size();
    size_t drawn = 0;
    size_t attempts = 0;
    const size_t max_attempts = num_negatives_ * 64 + 1024;
    while (drawn < num_negatives_ && attempts < max_attempts) {
      ++attempts;
      const ItemId v = static_cast<ItemId>(rng.UniformInt(n_items));
      if (excluded(v)) continue;
      candidates_.push_back(v);
      ++drawn;
    }
    // Candidates may repeat (sampling with replacement), matching the
    // standard protocol; a failure to fill the quota can only happen on
    // degenerate toy data, in which case the user is skipped.
    if (drawn < num_negatives_) {
      candidates_.resize(c.candidate_offset);
      continue;
    }
    case_of_user_[u] = static_cast<int64_t>(eval_users_.size());
    eval_users_.push_back(c);
  }
}

size_t Evaluator::RankCase(const ItemScorer& scorer,
                           const UserCase& c) const {
  // Score target + candidates in one batch call. RankCase runs inside
  // ParallelFor and once per eval user, so the scratch is thread_local to
  // keep the ranking loop allocation-free after warm-up.
  thread_local std::vector<ItemId> items;
  thread_local std::vector<float> scores;
  items.resize(num_negatives_ + 1);
  scores.resize(num_negatives_ + 1);
  items[0] = c.target;
  std::copy(candidates_.begin() + c.candidate_offset,
            candidates_.begin() + c.candidate_offset + num_negatives_,
            items.begin() + 1);
  scorer.ScoreItems(c.user, items, scores.data());

  const float target_score = scores[0];
  size_t higher = 0;
  size_t ties = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > target_score) {
      ++higher;
    } else if (scores[i] == target_score) {
      ++ties;
    }
  }
  return higher + ties / 2;
}

RankingMetrics Evaluator::Evaluate(const ItemScorer& scorer,
                                   ThreadPool* pool) const {
  RankingMetrics m;
  if (eval_users_.empty()) return m;

  std::vector<size_t> ranks(eval_users_.size());
  if (pool != nullptr && !scorer.thread_safe()) pool = nullptr;
  if (pool != nullptr) {
    pool->ParallelFor(eval_users_.size(), [&](size_t i) {
      ranks[i] = RankCase(scorer, eval_users_[i]);
    });
  } else {
    for (size_t i = 0; i < eval_users_.size(); ++i) {
      ranks[i] = RankCase(scorer, eval_users_[i]);
    }
  }

  for (size_t rank : ranks) {
    m.hr10 += HitAt(rank, 10);
    m.hr20 += HitAt(rank, 20);
    m.ndcg10 += NdcgAt(rank, 10);
    m.ndcg20 += NdcgAt(rank, 20);
  }
  const double n = static_cast<double>(eval_users_.size());
  m.hr10 /= n;
  m.hr20 /= n;
  m.ndcg10 /= n;
  m.ndcg20 /= n;
  m.users_evaluated = eval_users_.size();
  return m;
}

std::vector<RankingMetrics> Evaluator::EvaluateGrouped(
    const ItemScorer& scorer, const std::vector<int>& group_of_user,
    size_t num_groups, ThreadPool* pool) const {
  MARS_CHECK(group_of_user.size() == case_of_user_.size());
  std::vector<RankingMetrics> groups(num_groups);
  if (eval_users_.empty()) return groups;

  std::vector<size_t> ranks(eval_users_.size());
  if (pool != nullptr && !scorer.thread_safe()) pool = nullptr;
  if (pool != nullptr) {
    pool->ParallelFor(eval_users_.size(), [&](size_t i) {
      ranks[i] = RankCase(scorer, eval_users_[i]);
    });
  } else {
    for (size_t i = 0; i < eval_users_.size(); ++i) {
      ranks[i] = RankCase(scorer, eval_users_[i]);
    }
  }

  for (size_t i = 0; i < eval_users_.size(); ++i) {
    const int g = group_of_user[eval_users_[i].user];
    if (g < 0) continue;
    MARS_CHECK(static_cast<size_t>(g) < num_groups);
    RankingMetrics& m = groups[g];
    m.hr10 += HitAt(ranks[i], 10);
    m.hr20 += HitAt(ranks[i], 20);
    m.ndcg10 += NdcgAt(ranks[i], 10);
    m.ndcg20 += NdcgAt(ranks[i], 20);
    ++m.users_evaluated;
  }
  for (RankingMetrics& m : groups) {
    if (m.users_evaluated == 0) continue;
    const double n = static_cast<double>(m.users_evaluated);
    m.hr10 /= n;
    m.hr20 /= n;
    m.ndcg10 /= n;
    m.ndcg20 /= n;
  }
  return groups;
}

size_t Evaluator::RankOf(const ItemScorer& scorer, UserId u) const {
  MARS_CHECK(u < case_of_user_.size());
  MARS_CHECK_MSG(case_of_user_[u] >= 0, "user has no held-out item");
  return RankCase(scorer,
                  eval_users_[static_cast<size_t>(case_of_user_[u])]);
}

}  // namespace mars
