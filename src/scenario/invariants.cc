#include "scenario/invariants.h"

#include <algorithm>
#include <cmath>

namespace mars {

SnapshotOracle::SnapshotOracle(size_t num_users, size_t num_items, size_t k)
    : num_users_(num_users), num_items_(num_items), k_(k) {}

void SnapshotOracle::Register(uint32_t incarnation, uint64_t epoch,
                              std::shared_ptr<const ItemScorer> snapshot) {
  TopKServerOptions opts;
  opts.k = k_;
  // Exact sweeps only: the reference must be the ground-truth ranking
  // the live server's (full-probe) ANN path is pinned against. The
  // cache doubles as the per-user memo table.
  opts.cache.max_users = num_users_;
  auto ref = std::make_unique<TopKServer>(std::move(snapshot), num_users_,
                                          num_items_, opts);
  std::unique_lock<std::mutex> lock(mu_);
  refs_[{incarnation, epoch}] = std::move(ref);
}

bool SnapshotOracle::Check(uint32_t incarnation, UserId u, uint64_t epoch,
                           uint32_t k, std::span<const ItemId> items,
                           std::span<const float> scores) {
  if (u >= num_users_) return false;
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = refs_.find({incarnation, epoch});
  if (it == refs_.end()) return false;  // response names an unpublished epoch
  const TopKResponse ref = it->second->TopK(u);
  const size_t depth = (k == 0) ? ref.items.size()
                                : std::min<size_t>(k, ref.items.size());
  if (items.size() != depth || scores.size() != depth) return false;
  for (size_t i = 0; i < depth; ++i) {
    // Bitwise score equality: the serving path and the reference sweep
    // run the same kernels over the same snapshot.
    if (items[i] != ref.items[i] || scores[i] != ref.scores[i]) {
      return false;
    }
  }
  return true;
}

TopKStatus ExpectedStatus(const ScenarioEvent& ev,
                          const ScenarioSpec& spec) {
  if (ev.user >= spec.num_users) return TopKStatus::kInvalidUser;
  if (ev.k > spec.k) return TopKStatus::kInvalidK;
  if ((ev.flags & ~kTopKFlagsMask) != 0) return TopKStatus::kInvalidFlags;
  return TopKStatus::kOk;
}

double PercentileMs(std::vector<double>* samples, double pct) {
  if (samples == nullptr || samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const size_t idx = std::min(
      samples->size() - 1,
      static_cast<size_t>(samples->size() * pct / 100.0));
  return (*samples)[idx];
}

}  // namespace mars
