// Deterministic traffic scenarios: seeded, replayable event traces that
// drive the whole serving stack — live trainer, TopKServer, NetServer —
// wire-to-wire while invariant checkers validate every response online
// (scenario_runner.h). This header is the pure half: the scenario
// vocabulary (spec, event, report), spec validation, trace generation,
// and the event-log digest.
//
// Determinism contract: GenerateTrace is a pure function of the spec —
// per-actor RNG streams are SplitMix64-derived from the seed, event
// times come from a virtual clock advanced by RNG draws, and nothing
// reads the wall clock or any global generator. Same spec ⇒ the same
// trace bytes ⇒ the same DigestTrace value, which is what makes a
// failing run replayable: re-run the scenario name + seed and the exact
// traffic replays (docs/SCENARIOS.md walks the workflow).
//
// The shipped catalog (ScenarioNames):
//   zipf_hot_users     — Zipf-skewed user popularity (spec.zipf_s),
//                        invalid/hostile traffic mixed in, live publishes.
//   flash_crowd        — uniform first half, then every actor collapses
//                        onto one user-shard's id range mid-run.
//   publish_storm      — tiny training epochs publish every few ms while
//                        the frontends race them.
//   restart_mid_traffic— all actors pause at the trace midpoint, the
//                        server is killed and rebuilt from a SaveMarsV3
//                        snapshot + top-k sidecar (LoadMarsMapped +
//                        Prime), actors reconnect and resume.
//   slow_reader        — actor 0 pipelines its whole trace without ever
//                        reading responses, exercising the NetServer
//                        backpressure cap; the other actors prove
//                        isolation.
#ifndef MARS_SCENARIO_SCENARIO_H_
#define MARS_SCENARIO_SCENARIO_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/reactor.h"

namespace mars {

/// What one traffic event asks an actor to do.
enum class ScenarioEventKind : uint8_t {
  /// A well-formed TopKRequest (expected status kOk).
  kQuery = 0,
  /// A request-level rejection: exactly one of {user, k, flags} is out
  /// of range (`hostile` selects which); the server must answer with the
  /// matching status and keep the connection.
  kInvalidRequest = 1,
  /// A frame-level violation (unknown frame type with intact framing):
  /// the server must answer kError(kBadType) and keep the connection.
  kHostileFrame = 2,
  /// A stream-level violation (garbage that cannot be a frame header):
  /// the server must answer kError(kBadFrame) and close; the actor then
  /// reconnects cleanly.
  kStreamAbuse = 3,
};

/// One entry of the generated event log. Every field is covered by
/// DigestTrace, so two traces are byte-comparable through one u64.
struct ScenarioEvent {
  /// Virtual-clock timestamp (µs since scenario start). The virtual
  /// clock shapes the trace (flash-crowd compression, per-actor jitter)
  /// and is digested; replay is compressed — actors issue their events
  /// in order without sleeping, so wall time never enters the log.
  uint64_t vtime_us = 0;
  uint32_t actor = 0;
  ScenarioEventKind kind = ScenarioEventKind::kQuery;
  /// Sub-kind for kInvalidRequest (0 = bad user, 1 = bad k, 2 = bad
  /// flags); unused otherwise.
  uint8_t hostile = 0;
  uint32_t user = 0;
  uint32_t k = 0;
  uint32_t flags = 0;
};

/// Full description of one scenario run. Everything the trace and the
/// serving stack need is in here — no hidden knobs.
struct ScenarioSpec {
  /// One of ScenarioNames().
  std::string scenario;
  /// Master seed; per-actor streams are SplitMix64-derived from it.
  uint64_t seed = 1;

  // Catalog / traffic shape.
  size_t num_users = 48;
  size_t num_items = 192;
  size_t num_actors = 3;
  /// Trace length per actor — the scenario's duration. Zero is rejected.
  size_t events_per_actor = 150;
  /// Serving depth (TopKServerOptions::k); valid request k ∈ [0, k].
  size_t k = 10;
  /// Zipf skew for zipf_hot_users (rank-frequency exponent s > 0).
  double zipf_s = 1.2;
  /// Fraction of request-level-invalid traffic, in [0, 1].
  double invalid_fraction = 0.06;
  /// Fraction of frame/stream-abusive traffic, in [0, 1].
  double hostile_fraction = 0.0;

  // Live training (0 epochs = static serving).
  size_t train_epochs = 3;
  /// 0 = full dataset pass per epoch; small values make publishes rapid
  /// (publish_storm).
  size_t steps_per_epoch = 400;

  // Invariant (d): bounded p99 over well-formed round trips. Must be
  // > 0; only *enforced* when the host has more than one CPU (on one
  // core client, server, and trainer time-slice a single core and the
  // percentile measures the scheduler).
  double p99_bound_ms = 250.0;

  // Wire knobs.
  NetBackend backend = NetBackend::kAuto;
  /// 0 = NetServerOptions default; slow_reader shrinks it so the
  /// backpressure cap trips with test-sized traffic.
  size_t max_queued_response_bytes = 0;
  /// 0 = kernel default send buffer (see NetServerOptions::sndbuf_bytes).
  int sndbuf_bytes = 0;
};

/// Outcome of one ScenarioRunner::Run. `error` is set (and nothing ran)
/// when the spec failed validation or the stack could not start.
struct ScenarioReport {
  bool ran = false;
  std::string error;

  uint64_t trace_digest = 0;
  size_t events = 0;
  /// Wire round trips that produced a response frame.
  size_t responses = 0;
  size_t published_epochs = 0;

  // Invariant counters — all must be zero for a passing run.
  size_t membership_violations = 0;  // (a) response ∉ any published snapshot
  size_t epoch_regressions = 0;      // (b) per-user epoch went backwards
  size_t status_violations = 0;      // (c) wrong status / wrong close behavior
  size_t unexpected_closes = 0;      // (c) close without a stream violation

  // Invariant (d): latency. p99 is always measured; enforced only when
  // the run saw host_cpus > 1.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool p99_enforced = false;
  bool p99_ok = true;

  // Scenario-specific evidence.
  size_t reconnects = 0;          // clean reconnects (restart / stream abuse)
  size_t stream_closes = 0;       // expected closes after kStreamAbuse
  uint64_t backpressure_closes = 0;  // NetServerStats, summed across restarts

  /// Sum of everything a passing run must keep at zero.
  size_t violations() const {
    return membership_violations + epoch_regressions + status_violations +
           unexpected_closes + ((p99_enforced && !p99_ok) ? 1 : 0);
  }
};

/// The shipped scenario catalog, in canonical order.
std::vector<std::string> ScenarioNames();

/// A ready-to-run spec for a named scenario: the catalog defaults above
/// plus the per-scenario knobs (storm epoch cadence, slow-reader caps,
/// flash-crowd shape). Unknown names return a spec that fails validation.
ScenarioSpec CanonicalScenarioSpec(const std::string& name, uint64_t seed);

/// Empty string when the spec is runnable; otherwise a one-line reason
/// (unknown scenario, zero duration, p99 bound <= 0, ...). Never aborts.
std::string ValidateScenarioSpec(const ScenarioSpec& spec);

/// The deterministic event log: every actor's events in actor order,
/// each actor's slice in virtual-time order. Returns an empty vector and
/// sets *error when the spec fails validation.
std::vector<ScenarioEvent> GenerateTrace(const ScenarioSpec& spec,
                                         std::string* error);

/// FNV-1a (64-bit) over the packed little-endian bytes of every event —
/// the replayability fingerprint: equal digests ⇔ byte-identical logs.
uint64_t DigestTrace(std::span<const ScenarioEvent> trace);

}  // namespace mars

#endif  // MARS_SCENARIO_SCENARIO_H_
