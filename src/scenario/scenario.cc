#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "serve/request.h"

namespace mars {

namespace {

constexpr const char* kNames[] = {
    "zipf_hot_users", "flash_crowd", "publish_storm", "restart_mid_traffic",
    "slow_reader",
};

bool KnownScenario(const std::string& name) {
  for (const char* n : kNames) {
    if (name == n) return true;
  }
  return false;
}

/// Packs one little-endian integer into the FNV stream.
uint64_t FnvMix(uint64_t h, uint64_t v, size_t bytes) {
  for (size_t i = 0; i < bytes; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 1099511628211ull;
  }
  return h;
}

/// Inverse-CDF Zipf sampler over ranks: P(rank r) ∝ (r+1)^-s. The
/// cumulative table is built once per trace; ranks map to user ids
/// through a seed-derived permutation so "hot" is not "low id".
struct ZipfSampler {
  std::vector<double> cum;
  void Build(size_t n, double s) {
    cum.resize(n);
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
      total += std::pow(static_cast<double>(r + 1), -s);
      cum[r] = total;
    }
  }
  size_t Sample(Rng* rng) const {
    const double x = rng->Uniform() * cum.back();
    return static_cast<size_t>(
        std::lower_bound(cum.begin(), cum.end(), x) - cum.begin());
  }
};

}  // namespace

std::vector<std::string> ScenarioNames() {
  return std::vector<std::string>(std::begin(kNames), std::end(kNames));
}

ScenarioSpec CanonicalScenarioSpec(const std::string& name, uint64_t seed) {
  ScenarioSpec spec;
  spec.scenario = name;
  spec.seed = seed;
  if (name == "zipf_hot_users") {
    spec.hostile_fraction = 0.04;
  } else if (name == "flash_crowd") {
    spec.hostile_fraction = 0.02;
  } else if (name == "publish_storm") {
    // Tiny epochs: the trainer publishes every few milliseconds while
    // the frontends race the swaps.
    spec.train_epochs = 10;
    spec.steps_per_epoch = 48;
    spec.events_per_actor = 180;
  } else if (name == "restart_mid_traffic") {
    // Hostile traffic off: every reconnect in this scenario should be
    // attributable to the restart boundary alone.
    spec.train_epochs = 2;
    spec.steps_per_epoch = 300;
    spec.events_per_actor = 120;
  } else if (name == "slow_reader") {
    // Static serving; the point is the wire. Shrink the kernel and
    // userspace buffers so the backpressure cap trips with a
    // test-sized burst (actor 0 pipelines ~events_per_actor requests
    // per round without reading).
    spec.train_epochs = 0;
    spec.events_per_actor = 160;
    spec.max_queued_response_bytes = 32u << 10;
    spec.sndbuf_bytes = 4096;
  }
  return spec;
}

std::string ValidateScenarioSpec(const ScenarioSpec& spec) {
  if (!KnownScenario(spec.scenario)) {
    return "unknown scenario '" + spec.scenario + "' (known: " +
           [&] {
             std::string all;
             for (const char* n : kNames) {
               if (!all.empty()) all += ", ";
               all += n;
             }
             return all;
           }() +
           ")";
  }
  if (spec.events_per_actor == 0) {
    return "events_per_actor must be > 0 (a zero-duration scenario "
           "exercises nothing)";
  }
  if (spec.num_actors == 0) return "num_actors must be > 0";
  if (spec.num_users == 0) return "num_users must be > 0";
  if (spec.num_items == 0) return "num_items must be > 0";
  if (spec.k == 0) return "k (serving depth) must be > 0";
  if (spec.p99_bound_ms <= 0.0) {
    return "p99_bound_ms must be > 0 (the bounded-latency invariant "
           "needs a bound)";
  }
  if (spec.zipf_s <= 0.0) return "zipf_s must be > 0";
  if (spec.invalid_fraction < 0.0 || spec.invalid_fraction > 1.0 ||
      spec.hostile_fraction < 0.0 || spec.hostile_fraction > 1.0 ||
      spec.invalid_fraction + spec.hostile_fraction > 1.0) {
    return "invalid_fraction/hostile_fraction must lie in [0, 1] and sum "
           "to at most 1";
  }
  if (spec.scenario == "restart_mid_traffic" && spec.events_per_actor < 2) {
    return "restart_mid_traffic needs events_per_actor >= 2 (traffic on "
           "both sides of the restart)";
  }
  if (spec.scenario == "slow_reader" && spec.num_actors < 2) {
    return "slow_reader needs num_actors >= 2 (one slow reader plus "
           "normal actors proving isolation)";
  }
  return "";
}

std::vector<ScenarioEvent> GenerateTrace(const ScenarioSpec& spec,
                                         std::string* error) {
  const std::string err = ValidateScenarioSpec(spec);
  if (!err.empty()) {
    if (error != nullptr) *error = err;
    return {};
  }
  if (error != nullptr) error->clear();

  // Seed derivation: one SplitMix64 stream yields the trace-level seed
  // (shared structure: the popularity permutation) and one seed per
  // actor. Actor streams are then fully independent — an actor's events
  // never depend on another actor's draws.
  uint64_t state = spec.seed;
  const uint64_t trace_seed = SplitMix64(&state);
  std::vector<uint64_t> actor_seed(spec.num_actors);
  for (uint64_t& s : actor_seed) s = SplitMix64(&state);

  const bool zipf = spec.scenario == "zipf_hot_users";
  const bool crowd = spec.scenario == "flash_crowd";
  std::vector<uint32_t> rank_to_user(spec.num_users);
  std::iota(rank_to_user.begin(), rank_to_user.end(), 0u);
  ZipfSampler zipf_sampler;
  if (zipf) {
    Rng trng(trace_seed);
    trng.Shuffle(&rank_to_user);
    zipf_sampler.Build(spec.num_users, spec.zipf_s);
  }
  // Flash crowd: the second half collapses onto one user-shard's worth
  // of contiguous ids (the cache stripes are keyed by contiguous user
  // ranges, so this is maximal stripe + coalescer contention).
  const size_t crowd_span = std::max<size_t>(1, spec.num_users / 16);

  std::vector<ScenarioEvent> trace;
  trace.reserve(spec.num_actors * spec.events_per_actor);
  for (uint32_t a = 0; a < spec.num_actors; ++a) {
    Rng rng(actor_seed[a]);
    uint64_t vt = rng.UniformInt(200);  // per-actor phase jitter
    for (size_t i = 0; i < spec.events_per_actor; ++i) {
      const bool crowd_phase = crowd && i >= spec.events_per_actor / 2;
      // Virtual inter-arrival: bursty-tight during the crowd, relaxed
      // otherwise. Digested, never slept on (scenario.h).
      vt += crowd_phase ? 20 + rng.UniformInt(100)
                        : 200 + rng.UniformInt(1000);

      ScenarioEvent ev;
      ev.vtime_us = vt;
      ev.actor = a;

      const auto pick_user = [&]() -> uint32_t {
        if (zipf) {
          return rank_to_user[zipf_sampler.Sample(&rng)];
        }
        if (crowd_phase) {
          return static_cast<uint32_t>(rng.UniformInt(crowd_span));
        }
        return static_cast<uint32_t>(rng.UniformInt(spec.num_users));
      };

      const double r = rng.Uniform();
      if (r < spec.invalid_fraction) {
        // Exactly one dimension out of range, so the expected status is
        // unambiguous regardless of the server's validation order.
        ev.kind = ScenarioEventKind::kInvalidRequest;
        ev.hostile = static_cast<uint8_t>(rng.UniformInt(3));
        if (ev.hostile == 0) {
          ev.user = static_cast<uint32_t>(spec.num_users + rng.UniformInt(7));
          ev.k = static_cast<uint32_t>(rng.UniformInt(spec.k + 1));
        } else if (ev.hostile == 1) {
          ev.user = pick_user();
          ev.k = static_cast<uint32_t>(spec.k + 1 + rng.UniformInt(4));
        } else {
          ev.user = pick_user();
          ev.k = static_cast<uint32_t>(rng.UniformInt(spec.k + 1));
          ev.flags = 1u << (1 + rng.UniformInt(3));  // any undefined bit
        }
      } else if (r < spec.invalid_fraction + spec.hostile_fraction) {
        ev.kind = rng.Bernoulli(0.5) ? ScenarioEventKind::kHostileFrame
                                     : ScenarioEventKind::kStreamAbuse;
      } else {
        ev.kind = ScenarioEventKind::kQuery;
        ev.user = pick_user();
        ev.k = rng.Bernoulli(0.3)
                   ? static_cast<uint32_t>(1 + rng.UniformInt(spec.k))
                   : 0u;
        ev.flags = rng.Bernoulli(1.0 / 16.0) ? kTopKFlagBypassCache : 0u;
      }
      trace.push_back(ev);
    }
  }
  return trace;
}

uint64_t DigestTrace(std::span<const ScenarioEvent> trace) {
  uint64_t h = 14695981039346656037ull;
  for (const ScenarioEvent& ev : trace) {
    h = FnvMix(h, ev.vtime_us, 8);
    h = FnvMix(h, ev.actor, 4);
    h = FnvMix(h, static_cast<uint64_t>(ev.kind), 1);
    h = FnvMix(h, ev.hostile, 1);
    h = FnvMix(h, ev.user, 4);
    h = FnvMix(h, ev.k, 4);
    h = FnvMix(h, ev.flags, 4);
  }
  return h;
}

}  // namespace mars
