// The scenario harness's online invariant checkers (docs/SCENARIOS.md):
//
//  (a) snapshot membership — every kOk response must be bit-identical to
//      the exact ranking of the snapshot published as the epoch the
//      response is labeled with (SnapshotOracle). This is the PR 5/7
//      oracle generalized: the response's epoch names which snapshot, so
//      membership is an exact lookup, not a search over generations.
//  (b) epoch monotonicity per user — tracked per actor in the runner
//      (a plain per-user floor array; no shared state).
//  (c) status soundness — ExpectedStatus gives the one status a
//      request-level event must come back with; frame/stream-level
//      expectations are encoded in the runner per docs/PROTOCOL.md.
//  (d) bounded p99 — PercentileMs over the merged round-trip samples.
#ifndef MARS_SCENARIO_INVARIANTS_H_
#define MARS_SCENARIO_INVARIANTS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "scenario/scenario.h"
#include "serve/request.h"
#include "serve/top_k_server.h"

namespace mars {

/// Registers every published snapshot (keyed by server incarnation +
/// epoch) and checks responses against the exact cold-sweep ranking of
/// the snapshot they claim. Reference rankings are computed by a
/// per-snapshot TopKServer with the ANN tier off — the same kernels the
/// live server sweeps with, so equality is bitwise — and memoized by its
/// cache. Thread-safe: actors check concurrently while the trainer
/// registers.
///
/// Registration order contract: Register(incarnation, epoch, snapshot)
/// must happen *before* the snapshot is published to the live server
/// (exactly the quickstart step-7 callback order); then no response can
/// ever name an unknown epoch, and an unknown epoch is itself a
/// membership violation.
class SnapshotOracle {
 public:
  SnapshotOracle(size_t num_users, size_t num_items, size_t k);

  void Register(uint32_t incarnation, uint64_t epoch,
                std::shared_ptr<const ItemScorer> snapshot);

  /// True when (items, scores) is exactly the registered snapshot's
  /// ranking for `u`, truncated to the request's depth (k = 0 means the
  /// configured depth).
  bool Check(uint32_t incarnation, UserId u, uint64_t epoch, uint32_t k,
             std::span<const ItemId> items, std::span<const float> scores);

 private:
  const size_t num_users_;
  const size_t num_items_;
  const size_t k_;
  std::mutex mu_;
  std::map<std::pair<uint32_t, uint64_t>, std::unique_ptr<TopKServer>>
      refs_;
};

/// The status a request-level event must come back with (invariant (c)).
/// Only meaningful for kQuery / kInvalidRequest events.
TopKStatus ExpectedStatus(const ScenarioEvent& ev, const ScenarioSpec& spec);

/// The `pct`-th percentile (0-100) of `samples` in milliseconds; sorts
/// in place. 0 for an empty sample set.
double PercentileMs(std::vector<double>* samples, double pct);

}  // namespace mars

#endif  // MARS_SCENARIO_INVARIANTS_H_
