#include "scenario/scenario_runner.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "ann/index_io.h"
#include "core/mars.h"
#include "core/persistence.h"
#include "data/synthetic.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "scenario/invariants.h"
#include "serve/top_k_server.h"
#include "serve/top_k_sidecar.h"
#include "serve/write_tracker.h"

namespace mars {

namespace {

/// Everything the actor threads share. Counters are atomics (actors
/// race); the barrier state is mutex-guarded; the spec and oracle
/// outlive every thread.
struct Shared {
  const ScenarioSpec* spec = nullptr;
  SnapshotOracle* oracle = nullptr;

  std::atomic<uint16_t> port{0};
  std::atomic<uint32_t> incarnation{0};

  // restart_mid_traffic coordination: actors park at restart_index and
  // wait for the rebuilt server; `arrivals` also counts actors that
  // exited early, so the main thread can never wait on a dead actor.
  bool restart_scenario = false;
  size_t restart_index = 0;
  std::mutex mu;
  std::condition_variable cv;
  size_t arrivals = 0;
  bool restart_done = false;

  std::atomic<size_t> responses{0};
  std::atomic<size_t> membership_violations{0};
  std::atomic<size_t> epoch_regressions{0};
  std::atomic<size_t> status_violations{0};
  std::atomic<size_t> unexpected_closes{0};
  std::atomic<size_t> reconnects{0};
  std::atomic<size_t> stream_closes{0};

  std::mutex lat_mu;
  std::vector<double> rtt_ms;
};

bool ConnectRetry(NetClient* client, Shared* sh, int rcvbuf_bytes = 0) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const uint16_t port = sh->port.load(std::memory_order_acquire);
    if (port != 0 &&
        client->Connect("127.0.0.1", port, /*recv_timeout_ms=*/5000,
                        rcvbuf_bytes)) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

/// A normal actor: replays its trace slice event by event, checking
/// every response online (invariants (a)-(c)) and sampling round-trip
/// latency for (d).
void RunActor(Shared* sh, std::span<const ScenarioEvent> events) {
  const ScenarioSpec& spec = *sh->spec;
  NetClient client;
  bool connected = ConnectRetry(&client, sh);
  if (!connected) sh->unexpected_closes.fetch_add(1, std::memory_order_relaxed);

  std::vector<uint64_t> floor(spec.num_users, 0);  // invariant (b) state
  uint32_t inc = sh->incarnation.load(std::memory_order_acquire);
  std::vector<double> rtts;
  rtts.reserve(events.size());
  bool arrived = false;

  const auto reconnect = [&](bool count_unexpected) {
    client.Close();
    if (count_unexpected) {
      sh->unexpected_closes.fetch_add(1, std::memory_order_relaxed);
    }
    connected = ConnectRetry(&client, sh);
  };

  for (size_t i = 0; connected && i < events.size(); ++i) {
    if (sh->restart_scenario && i == sh->restart_index) {
      // Barrier: everyone parks, the main thread kills and rebuilds the
      // serving side, then actors reconnect to the new port. The old
      // connection died with the old server — the reconnect is *clean*
      // (never counted as an unexpected close), and the per-user epoch
      // floors reset with the new incarnation.
      {
        std::unique_lock<std::mutex> lk(sh->mu);
        arrived = true;
        ++sh->arrivals;
        sh->cv.notify_all();
        sh->cv.wait(lk, [&] { return sh->restart_done; });
      }
      client.Close();
      connected = ConnectRetry(&client, sh);
      if (!connected) {
        sh->unexpected_closes.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      sh->reconnects.fetch_add(1, std::memory_order_relaxed);
      inc = sh->incarnation.load(std::memory_order_acquire);
      std::fill(floor.begin(), floor.end(), 0);
    }

    const ScenarioEvent& ev = events[i];
    switch (ev.kind) {
      case ScenarioEventKind::kQuery:
      case ScenarioEventKind::kInvalidRequest: {
        TopKRequest req;
        req.user = ev.user;
        req.k = ev.k;
        req.flags = ev.flags;
        WireResponse resp;
        const auto t0 = std::chrono::steady_clock::now();
        if (!client.TopK(req, &resp)) {
          // Invariant (c): request-level traffic never costs the
          // connection. Recover so the rest of the trace still runs.
          reconnect(/*count_unexpected=*/true);
          continue;
        }
        rtts.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count());
        sh->responses.fetch_add(1, std::memory_order_relaxed);

        const TopKStatus expected = ExpectedStatus(ev, spec);
        if (resp.status != WireStatusOf(expected)) {
          sh->status_violations.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (expected == TopKStatus::kOk) {
          const TopKResponse& r = resp.response;
          if (!sh->oracle->Check(inc, ev.user, r.epoch, ev.k, r.items,
                                 r.scores)) {
            sh->membership_violations.fetch_add(1,
                                                std::memory_order_relaxed);
          }
          if (r.epoch < floor[ev.user]) {
            sh->epoch_regressions.fetch_add(1, std::memory_order_relaxed);
          } else {
            floor[ev.user] = r.epoch;
          }
        } else if (!resp.response.items.empty() ||
                   resp.response.epoch != 0) {
          // Rejections carry no ranking and no epoch (serve/request.h).
          sh->status_violations.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case ScenarioEventKind::kHostileFrame: {
        // Intact framing, unknown type: kError(kBadType), connection
        // lives (the next event runs on the same socket and proves it).
        std::vector<uint8_t> wire;
        const uint8_t payload[4] = {0xDE, 0xAD, 0xBE, 0xEF};
        AppendFrame(static_cast<FrameType>(0x2A), payload, &wire);
        if (!client.SendRaw(wire)) {
          reconnect(/*count_unexpected=*/true);
          continue;
        }
        Frame f;
        uint64_t rid = 0;
        WireStatus code = WireStatus::kOk;
        if (!client.RecvFrame(&f) || f.type != FrameType::kError ||
            !DecodeErrorPayload(f.payload, &rid, &code) ||
            code != WireStatus::kBadType) {
          sh->status_violations.fetch_add(1, std::memory_order_relaxed);
          reconnect(/*count_unexpected=*/false);
        }
        break;
      }
      case ScenarioEventKind::kStreamAbuse: {
        // Garbage header: one kError(kBadFrame) courtesy frame, then the
        // server MUST close (docs/PROTOCOL.md). Both halves are checked.
        const std::vector<uint8_t> junk(kFrameHeaderBytes, 0xEE);
        if (!client.SendRaw(junk)) {
          reconnect(/*count_unexpected=*/true);
          continue;
        }
        Frame f;
        uint64_t rid = 0;
        WireStatus code = WireStatus::kOk;
        const bool got_error =
            client.RecvFrame(&f) && f.type == FrameType::kError &&
            DecodeErrorPayload(f.payload, &rid, &code) &&
            code == WireStatus::kBadFrame;
        if (!got_error) {
          sh->status_violations.fetch_add(1, std::memory_order_relaxed);
        } else {
          Frame after;
          if (client.RecvFrame(&after)) {
            // The stream can't re-synchronize; staying open is unsound.
            sh->status_violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
        sh->stream_closes.fetch_add(1, std::memory_order_relaxed);
        client.Close();
        connected = ConnectRetry(&client, sh);
        if (connected) {
          sh->reconnects.fetch_add(1, std::memory_order_relaxed);
        } else {
          sh->unexpected_closes.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
    }
  }
  client.Close();
  {
    // Early exits still "arrive" so the restart barrier can't deadlock
    // on a dead actor.
    std::unique_lock<std::mutex> lk(sh->mu);
    if (!arrived) {
      arrived = true;
      ++sh->arrivals;
      sh->cv.notify_all();
    }
  }
  std::unique_lock<std::mutex> lk(sh->lat_mu);
  sh->rtt_ms.insert(sh->rtt_ms.end(), rtts.begin(), rtts.end());
}

/// The slow reader: encodes its whole trace slice as one pipelined
/// burst and sends it over and over without ever reading a response.
/// The server's queued responses cross max_queued_response_bytes and it
/// sheds the connection (one kError(kOverloaded), close) — observed by
/// the runner through stats().backpressure_closes. Deadline- rather
/// than round-bounded: the kernel's auto-tuned socket buffers can
/// absorb megabytes, so a fixed round count can run out before the
/// server's first serve-and-shed cycle lands; sending until the RST
/// guarantees the shed is observable by the time this actor exits,
/// while the deadline keeps a backpressure regression from hanging the
/// run.
void RunSlowReader(Shared* sh, std::span<const ScenarioEvent> events) {
  const ScenarioSpec& spec = *sh->spec;
  NetClient client;
  if (!ConnectRetry(&client, sh, /*rcvbuf_bytes=*/4096)) return;
  std::vector<uint8_t> burst;
  uint64_t rid = 1;
  for (const ScenarioEvent& ev : events) {
    TopKRequest req;
    req.user = static_cast<UserId>(ev.user % spec.num_users);
    EncodeTopKRequest(rid++, req, &burst);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    if (!client.SendRaw(burst)) break;  // RST after the shed: done
  }
  client.Close();
}

}  // namespace

ScenarioRunner::ScenarioRunner(ScenarioSpec spec) : spec_(std::move(spec)) {}

ScenarioReport ScenarioRunner::Run() {
  ScenarioReport rep;
  std::string err;
  const std::vector<ScenarioEvent> trace = GenerateTrace(spec_, &err);
  if (!err.empty()) {
    rep.error = err;
    return rep;
  }
  rep.trace_digest = DigestTrace(trace);
  rep.events = trace.size();

  // Catalog + model. The dataset seed is decoupled from the traffic
  // stream so the same traffic can replay over the same catalog even if
  // trace generation evolves.
  SyntheticConfig dcfg;
  dcfg.num_users = spec_.num_users;
  dcfg.num_items = spec_.num_items;
  dcfg.target_interactions = spec_.num_users * 12;
  dcfg.num_facets = 2;
  dcfg.seed = spec_.seed ^ 0x5CEA5EEDull;
  const std::shared_ptr<ImplicitDataset> dataset =
      GenerateSyntheticDataset(dcfg);

  MultiFacetConfig mcfg;
  mcfg.dim = 8;
  mcfg.num_facets = 2;
  MarsOptions mopts;
  // Learned radii are a global-table writer: every epoch marks the whole
  // catalog dirty, so each publish exercises the worst-case absorb (full
  // cache drop + from-scratch ANN rebuild).
  mopts.learn_radius = true;
  Mars model(mcfg, mopts);

  // One quiesced warmup epoch so epoch 0 serves initialized weights.
  TrainOptions warm;
  warm.epochs = 1;
  warm.seed = spec_.seed ^ 0xF17u;
  warm.verbose = false;
  model.Fit(*dataset, warm);

  SnapshotOracle oracle(spec_.num_users, spec_.num_items, spec_.k);
  Shared sh;
  sh.spec = &spec_;
  sh.oracle = &oracle;
  sh.restart_scenario = spec_.scenario == "restart_mid_traffic";
  sh.restart_index = spec_.events_per_actor / 2;

  TopKServerOptions sopts;
  sopts.k = spec_.k;
  sopts.cache.max_users = spec_.num_users;
  // The ANN tier at full probe: the probe-then-rerank machinery (and its
  // per-publish rebuilds) runs on every miss while answers stay exact —
  // which is what lets the membership oracle demand bit-identity.
  sopts.ann.enable = true;
  sopts.ann.index.nprobe = 1u << 20;

  WriteTracker tracker(spec_.num_users, spec_.num_items);
  std::shared_ptr<const Mars> epoch0 = model.ServingSnapshot();
  oracle.Register(0, 0, epoch0);
  auto topk = std::make_unique<TopKServer>(epoch0, spec_.num_users,
                                           spec_.num_items, sopts);

  NetServerOptions nopts;
  nopts.backend = spec_.backend;
  if (spec_.max_queued_response_bytes > 0) {
    nopts.max_queued_response_bytes = spec_.max_queued_response_bytes;
  }
  nopts.sndbuf_bytes = spec_.sndbuf_bytes;
  auto net = std::make_unique<NetServer>(topk.get(), nopts);
  if (!net->Start()) {
    rep.error = "NetServer failed to start (requested backend unavailable?)";
    return rep;
  }
  sh.port.store(net->port(), std::memory_order_release);

  // The live trainer: Hogwild workers + per-epoch publish, the same
  // epoch_callback wiring as quickstart step 7. Registration precedes
  // PublishEpoch, so no response can name an unknown epoch.
  size_t published = 0;
  std::thread trainer;
  if (spec_.train_epochs > 0) {
    TrainOptions topts;
    topts.epochs = spec_.train_epochs;
    topts.steps_per_epoch = spec_.steps_per_epoch;
    topts.learning_rate = 0.1;
    topts.seed = spec_.seed ^ 0x7EA1u;
    topts.num_threads = 2;
    topts.verbose = false;
    topts.write_tracker = &tracker;
    TopKServer* live = topk.get();  // stable: restart joins the trainer first
    topts.epoch_callback = [&oracle, &published, &tracker, &model,
                            live](size_t) {
      std::shared_ptr<const Mars> snap = model.ServingSnapshot();
      ++published;
      oracle.Register(0, published, snap);
      live->PublishEpoch(snap, &tracker);
    };
    trainer = std::thread(
        [&model, dataset, topts] { model.Fit(*dataset, topts); });
  }

  const bool slow = spec_.scenario == "slow_reader";
  std::vector<std::thread> actors;
  actors.reserve(spec_.num_actors);
  for (uint32_t a = 0; a < spec_.num_actors; ++a) {
    const std::span<const ScenarioEvent> slice(
        trace.data() + a * spec_.events_per_actor, spec_.events_per_actor);
    if (slow && a == 0) {
      actors.emplace_back(RunSlowReader, &sh, slice);
    } else {
      actors.emplace_back(RunActor, &sh, slice);
    }
  }

  if (sh.restart_scenario) {
    // Wait for every actor at the midpoint barrier (or exited), quiesce
    // training, then cross a real persistence boundary: v3 snapshot +
    // sidecar out, server down, mmap + prime back up on a fresh port.
    {
      std::unique_lock<std::mutex> lk(sh.mu);
      sh.cv.wait(lk, [&] { return sh.arrivals >= spec_.num_actors; });
    }
    if (trainer.joinable()) trainer.join();

    char mpath[96], spath[96], ipath[96];
    std::snprintf(mpath, sizeof(mpath), "scenario_restart_%d_%llu.v3",
                  static_cast<int>(getpid()),
                  static_cast<unsigned long long>(spec_.seed));
    std::snprintf(spath, sizeof(spath), "scenario_restart_%d_%llu.sidecar",
                  static_cast<int>(getpid()),
                  static_cast<unsigned long long>(spec_.seed));
    std::snprintf(ipath, sizeof(ipath), "scenario_restart_%d_%llu.annidx",
                  static_cast<int>(getpid()),
                  static_cast<unsigned long long>(spec_.seed));
    // Re-warm against the final (quiesced) weights so the sidecar pairs
    // exactly with the file being saved.
    topk->InvalidateAll();
    const size_t warm_users = std::min<size_t>(spec_.num_users, 16);
    for (UserId u = 0; u < warm_users; ++u) topk->TopK(u);
    // The restart unit is snapshot + index + sidecar: the server's live
    // candidate index was (re)built against the final published snapshot,
    // so persisting it here lets the rebuilt server skip k-means and
    // still answer bit-identically (the loader re-verifies the pairing
    // against the mapped model).
    const std::shared_ptr<const CandidateIndex> live_index =
        topk->AnnIndexSnapshot();
    const bool persisted = SaveMarsV3(model, mpath) &&
                           SaveTopKSidecar(*topk, spath) &&
                           live_index != nullptr &&
                           SaveCandidateIndex(*live_index, ipath);

    rep.backpressure_closes += net->stats().backpressure_closes;
    net->Stop();
    net.reset();
    topk.reset();

    std::shared_ptr<const Mars> mapped =
        persisted ? std::shared_ptr<const Mars>(LoadMarsMapped(mpath))
                  : nullptr;
    std::shared_ptr<const CandidateIndex> mapped_index =
        mapped != nullptr
            ? LoadCandidateIndexMapped(ipath, *mapped, spec_.num_items)
            : nullptr;
    if (mapped == nullptr || mapped_index == nullptr) {
      rep.error = "restart_mid_traffic: persist or mmap-load failed";
      sh.port.store(0, std::memory_order_release);  // actors give up fast
    } else {
      const uint32_t inc =
          sh.incarnation.load(std::memory_order_relaxed) + 1;
      oracle.Register(inc, 0, mapped);
      // Zero-rebuild restart: the mapped index plugs in as the prebuilt
      // index (same bytes, same nprobe → the full-probe exactness that
      // the membership oracle relies on carries across the boundary).
      TopKServerOptions ropts = sopts;
      ropts.ann.prebuilt = mapped_index;
      topk = std::make_unique<TopKServer>(mapped, spec_.num_users,
                                          spec_.num_items, ropts);
      WarmFromSidecar(topk.get(), spath);
      net = std::make_unique<NetServer>(topk.get(), nopts);
      if (net->Start()) {
        sh.incarnation.store(inc, std::memory_order_release);
        sh.port.store(net->port(), std::memory_order_release);
      } else {
        rep.error = "restart_mid_traffic: NetServer restart failed";
        sh.port.store(0, std::memory_order_release);
      }
    }
    std::remove(mpath);
    std::remove(spath);
    std::remove(ipath);
    {
      std::unique_lock<std::mutex> lk(sh.mu);
      sh.restart_done = true;
    }
    sh.cv.notify_all();
  }

  for (std::thread& t : actors) t.join();
  if (trainer.joinable()) trainer.join();
  if (net != nullptr) {
    rep.backpressure_closes += net->stats().backpressure_closes;
    net->Stop();
  }

  rep.published_epochs = published;
  rep.responses = sh.responses.load(std::memory_order_relaxed);
  rep.membership_violations =
      sh.membership_violations.load(std::memory_order_relaxed);
  rep.epoch_regressions =
      sh.epoch_regressions.load(std::memory_order_relaxed);
  rep.status_violations =
      sh.status_violations.load(std::memory_order_relaxed);
  rep.unexpected_closes =
      sh.unexpected_closes.load(std::memory_order_relaxed);
  rep.reconnects = sh.reconnects.load(std::memory_order_relaxed);
  rep.stream_closes = sh.stream_closes.load(std::memory_order_relaxed);

  rep.p50_ms = PercentileMs(&sh.rtt_ms, 50);
  rep.p99_ms = PercentileMs(&sh.rtt_ms, 99);
  // Invariant (d) is host_cpus-guarded: on one core the client, server,
  // reactor, and trainer time-slice a single CPU and the percentile
  // measures the scheduler, not the code. Always measured, enforced > 1.
  rep.p99_enforced = std::thread::hardware_concurrency() > 1;
  rep.p99_ok = !rep.p99_enforced || rep.p99_ms <= spec_.p99_bound_ms;

  rep.ran = rep.error.empty();
  return rep;
}

}  // namespace mars
