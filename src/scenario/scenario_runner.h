// ScenarioRunner: replays one generated trace (scenario.h) against the
// full live stack and reports invariant violations.
//
// The stack under test is everything the repo ships, wired together the
// way production would run it:
//
//   ParallelTrainer ──epoch_callback──▶ TopKServer ◀── NetServer ◀── TCP
//        (Mars Fit, Hogwild)    PublishEpoch   (ANN full-probe,   (io_uring
//                                              coalescing, LRU)    /epoll)
//
// One actor thread per spec.num_actors drives a NetClient over loopback
// through its slice of the trace; a trainer thread keeps publishing
// epochs via TrainOptions::epoch_callback; the invariant checkers
// (invariants.h) validate every response as it arrives. The
// restart_mid_traffic scenario additionally tears the whole serving side
// down at the trace midpoint — SaveMarsV3 + top-k sidecar, kill the
// NetServer, LoadMarsMapped + WarmFromSidecar, new NetServer on a fresh
// port — while the actors wait at a barrier and then reconnect.
//
// Run() never aborts on a malformed spec or a failed stack start: the
// report carries the error. Determinism: the *trace* (and its digest)
// is a pure function of the spec; the interleaving of responses is real
// concurrency — that is the point — but every response is checked
// against invariants that hold under any legal interleaving.
#ifndef MARS_SCENARIO_SCENARIO_RUNNER_H_
#define MARS_SCENARIO_SCENARIO_RUNNER_H_

#include "scenario/scenario.h"

namespace mars {

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec);

  /// Generates the trace, builds the stack, replays, and reports. Safe
  /// to call once per runner instance.
  ScenarioReport Run();

 private:
  ScenarioSpec spec_;
};

}  // namespace mars

#endif  // MARS_SCENARIO_SCENARIO_RUNNER_H_
