// Uniform negative item sampling with rejection against the positive set.
//
// Draws items the user has *not* interacted with (the (u, v_q) ∉ I pairs of
// Eq. 5/8). Membership is checked with the dataset's sorted adjacency, so a
// draw costs O(log deg(u)) expected. A bounded retry count guards against
// pathological users who interacted with nearly the whole catalogue.
#ifndef MARS_SAMPLING_NEGATIVE_SAMPLER_H_
#define MARS_SAMPLING_NEGATIVE_SAMPLER_H_

#include "data/dataset.h"

namespace mars {

class Rng;

/// Samples uniform negatives for a given user.
class NegativeSampler {
 public:
  explicit NegativeSampler(const ImplicitDataset& dataset);

  /// Draws one item v with (u, v) ∉ I. Falls back to a linear scan if
  /// rejection fails repeatedly; returns false only when the user has
  /// interacted with every item.
  bool Sample(UserId u, Rng* rng, ItemId* out) const;

 private:
  const ImplicitDataset& dataset_;
};

}  // namespace mars

#endif  // MARS_SAMPLING_NEGATIVE_SAMPLER_H_
