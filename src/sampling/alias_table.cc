#include "sampling/alias_table.h"

#include "common/check.h"
#include "common/rng.h"

namespace mars {

AliasTable::AliasTable(const std::vector<double>& weights) {
  MARS_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    MARS_CHECK_MSG(w >= 0.0, "alias weights must be non-negative");
    total += w;
  }
  MARS_CHECK_MSG(total > 0.0, "alias weights must have positive sum");

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; buckets with scaled < 1 are "small".
  std::vector<double> scaled(n);
  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    if (scaled[i] < 1.0) {
      small.push_back(i);
    } else {
      large.push_back(i);
    }
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Numerical leftovers: both queues drain to probability 1 buckets.
  for (size_t s : small) prob_[s] = 1.0;
  for (size_t l : large) prob_[l] = 1.0;
}

size_t AliasTable::Sample(Rng* rng) const {
  const size_t bucket = static_cast<size_t>(rng->UniformInt(prob_.size()));
  return rng->Uniform() < prob_[bucket] ? bucket : alias_[bucket];
}

double AliasTable::Probability(size_t i) const {
  MARS_CHECK(i < normalized_.size());
  return normalized_[i];
}

}  // namespace mars
