#include "sampling/triplet_sampler.h"

#include "common/check.h"
#include "common/rng.h"

namespace mars {

TripletSampler::TripletSampler(const ImplicitDataset& dataset,
                               TripletUserMode mode, double beta)
    : dataset_(dataset), mode_(mode), negative_sampler_(dataset) {
  MARS_CHECK(dataset.num_interactions() > 0);
  if (mode_ == TripletUserMode::kFrequencyBiased) {
    user_sampler_ = std::make_unique<UserSampler>(dataset, beta);
  }
}

bool TripletSampler::Sample(Rng* rng, Triplet* out) const {
  UserId u = 0;
  ItemId vp = 0;
  if (mode_ == TripletUserMode::kFrequencyBiased) {
    u = user_sampler_->Sample(rng);
    const auto items = dataset_.ItemsOf(u);
    MARS_DCHECK(!items.empty());
    vp = items[rng->UniformInt(items.size())];
  } else {
    const auto& log = dataset_.interactions();
    const Interaction& x = log[rng->UniformInt(log.size())];
    u = x.user;
    vp = x.item;
  }
  ItemId vq = 0;
  if (!negative_sampler_.Sample(u, rng, &vq)) return false;
  out->user = u;
  out->positive = vp;
  out->negative = vq;
  return true;
}

}  // namespace mars
