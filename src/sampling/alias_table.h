// Walker alias method for O(1) sampling from a fixed discrete distribution.
//
// The paper's explorative sampling (Eq. 10) draws users with probability
// proportional to freq(u)^β every SGD step; the alias table makes that draw
// constant-time after O(n) preprocessing.
#ifndef MARS_SAMPLING_ALIAS_TABLE_H_
#define MARS_SAMPLING_ALIAS_TABLE_H_

#include <cstddef>
#include <vector>

namespace mars {

class Rng;

/// Immutable alias table built from unnormalized non-negative weights.
class AliasTable {
 public:
  /// Builds the table. `weights` must be non-empty with a positive sum;
  /// individual entries may be zero (they are never sampled).
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index with probability weights[i] / sum(weights).
  size_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

  /// Normalized probability of index `i` (for testing / introspection).
  double Probability(size_t i) const;

 private:
  std::vector<double> prob_;    // threshold within each bucket
  std::vector<size_t> alias_;   // fallback index per bucket
  std::vector<double> normalized_;
};

}  // namespace mars

#endif  // MARS_SAMPLING_ALIAS_TABLE_H_
