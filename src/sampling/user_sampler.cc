#include "sampling/user_sampler.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace mars {

UserSampler::UserSampler(const ImplicitDataset& dataset, double beta)
    : beta_(beta) {
  MARS_CHECK(beta >= 0.0);
  std::vector<double> weights(dataset.num_users(), 0.0);
  bool any = false;
  for (UserId u = 0; u < dataset.num_users(); ++u) {
    const size_t freq = dataset.UserDegree(u);
    if (freq == 0) continue;
    weights[u] = std::pow(static_cast<double>(freq), beta);
    any = true;
  }
  MARS_CHECK_MSG(any, "dataset has no training interactions");
  table_ = std::make_unique<AliasTable>(weights);
}

UserId UserSampler::Sample(Rng* rng) const {
  return static_cast<UserId>(table_->Sample(rng));
}

double UserSampler::Probability(UserId u) const {
  return table_->Probability(u);
}

}  // namespace mars
