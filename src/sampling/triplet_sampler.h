// (user, positive item, negative item) triplet stream.
//
// All pairwise-loss models (BPR, CML, TransCF, LRML, SML, MAR, MARS) train
// from this stream. Two user-selection modes are supported:
//  * kUniformInteraction — classic: pick a training interaction uniformly,
//    which implicitly weights users by activity (used by the baselines);
//  * kFrequencyBiased — the paper's explorative sampling (Eq. 10): pick the
//    user ∝ freq^β, then a uniform positive from their history.
#ifndef MARS_SAMPLING_TRIPLET_SAMPLER_H_
#define MARS_SAMPLING_TRIPLET_SAMPLER_H_

#include <memory>

#include "data/dataset.h"
#include "sampling/negative_sampler.h"
#include "sampling/user_sampler.h"

namespace mars {

class Rng;

/// One training triplet (u, v_p, v_q): X[u][v_p]=1, X[u][v_q]=0.
struct Triplet {
  UserId user = 0;
  ItemId positive = 0;
  ItemId negative = 0;
};

/// How the user (and thus the positive) of a triplet is chosen.
enum class TripletUserMode {
  kUniformInteraction,
  kFrequencyBiased,
};

/// Draws training triplets from a dataset.
class TripletSampler {
 public:
  /// `beta` only matters in kFrequencyBiased mode.
  TripletSampler(const ImplicitDataset& dataset, TripletUserMode mode,
                 double beta = 0.8);

  /// Draws one triplet. Returns false when no valid triplet exists for the
  /// drawn user (degenerate datasets only).
  bool Sample(Rng* rng, Triplet* out) const;

  TripletUserMode mode() const { return mode_; }

 private:
  const ImplicitDataset& dataset_;
  TripletUserMode mode_;
  std::unique_ptr<UserSampler> user_sampler_;  // only in biased mode
  NegativeSampler negative_sampler_;
};

}  // namespace mars

#endif  // MARS_SAMPLING_TRIPLET_SAMPLER_H_
