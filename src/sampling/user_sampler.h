// Frequency-biased user sampling (paper Eq. 10).
//
//   Pr(u) = freq(u)^β / Σ_u' freq(u')^β
//
// β = 0.8 by default per the paper; β = 0 degenerates to uniform sampling
// over users that have at least one training interaction (used by the
// sampling ablation).
#ifndef MARS_SAMPLING_USER_SAMPLER_H_
#define MARS_SAMPLING_USER_SAMPLER_H_

#include <memory>

#include "data/dataset.h"
#include "sampling/alias_table.h"

namespace mars {

class Rng;

/// Samples users according to Eq. 10 of the paper.
class UserSampler {
 public:
  /// Builds the sampler over `dataset`'s user activity. Users with zero
  /// training interactions are never sampled.
  UserSampler(const ImplicitDataset& dataset, double beta);

  /// Draws a user id.
  UserId Sample(Rng* rng) const;

  /// Normalized sampling probability of `u` (testing/introspection).
  double Probability(UserId u) const;

  double beta() const { return beta_; }

 private:
  double beta_;
  std::unique_ptr<AliasTable> table_;
};

}  // namespace mars

#endif  // MARS_SAMPLING_USER_SAMPLER_H_
