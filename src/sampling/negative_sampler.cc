#include "sampling/negative_sampler.h"

#include "common/check.h"
#include "common/rng.h"

namespace mars {

NegativeSampler::NegativeSampler(const ImplicitDataset& dataset)
    : dataset_(dataset) {
  MARS_CHECK(dataset.num_items() > 0);
}

bool NegativeSampler::Sample(UserId u, Rng* rng, ItemId* out) const {
  const size_t n_items = dataset_.num_items();
  const size_t degree = dataset_.UserDegree(u);
  if (degree >= n_items) return false;

  // Rejection sampling: expected retries = n / (n - deg).
  constexpr int kMaxRejects = 64;
  for (int attempt = 0; attempt < kMaxRejects; ++attempt) {
    const ItemId v = static_cast<ItemId>(rng->UniformInt(n_items));
    if (!dataset_.HasInteraction(u, v)) {
      *out = v;
      return true;
    }
  }
  // Dense user: pick a uniform rank among the non-interacted items and walk
  // the sorted positive list to locate it exactly.
  const auto items = dataset_.ItemsOf(u);
  size_t rank = static_cast<size_t>(rng->UniformInt(n_items - degree));
  ItemId candidate = 0;
  size_t pos = 0;
  while (true) {
    // Skip over positives equal to the current candidate.
    while (pos < items.size() && items[pos] == candidate) {
      ++candidate;
      ++pos;
    }
    if (rank == 0) break;
    --rank;
    ++candidate;
  }
  *out = candidate;
  return true;
}

}  // namespace mars
