// Persisted candidate indexes: zero-rebuild restarts for the retrieval
// tier.
//
// A built CandidateIndex is a handful of flat contiguous arrays (the IVF
// centroids + CSR inverted lists, the VP-tree vector table + node
// arrays), so persisting it follows the format-v3 playbook
// (docs/FORMAT.md): SaveCandidateIndex writes the arrays at their
// in-memory stride into a self-describing index file — fixed header
// (magic "MRSI", version, kind, geometry, build parameters), a region
// table placing every array at a 64-byte-aligned file offset with a
// CRC-32 over its bytes — and LoadCandidateIndexMapped mmaps it back as
// an immutable borrowed-buffer index (common/maybe_owned.h) that pins
// the mapping with a keepalive shared_ptr, the MappedFacetStore /
// LoadMarsMapped lifetime contract. Probes on a mapped index are
// bit-identical to the freshly built one (same bytes, same code), and
// Rebuilt() copies-on-write only what a dirty absorb must mutate, so a
// restart serves ANN traffic without re-running k-means.
//
// Pairing contract, like the top-k sidecar: an index file stores
// geometry, not provenance — it is only meaningful next to the exact
// model snapshot it was built from. The loader verifies the mechanical
// part (kind vs the model's declared geometry, dim, item count, layout,
// checksums, CSR/permutation invariants); shipping the index next to the
// right snapshot is the caller's job — treat snapshot + index + sidecar
// as one restart unit and regenerate all three together.
#ifndef MARS_ANN_INDEX_IO_H_
#define MARS_ANN_INDEX_IO_H_

#include <memory>
#include <string>

#include "ann/candidate_index.h"

namespace mars {

/// Writes `index` to `path` (see docs/FORMAT.md for the byte layout).
/// Supports the two concrete kinds (SphericalIvfIndex, VpTreeIndex);
/// returns false with an error log on I/O failure or an unknown kind.
bool SaveCandidateIndex(const CandidateIndex& index, const std::string& path);

/// Maps the index at `path` and returns it as an immutable, probe-ready
/// CandidateIndex borrowing the mapping (zero copy; the mapping is kept
/// alive for the life of the returned index and anything derived from
/// it). `model` and `num_items` are the serving pair the index must
/// match: wrong kind for the model's geometry, wrong dim, or wrong item
/// count rejects, as do bad magic/version, implausible or inconsistent
/// headers, truncation, and checksum mismatches — always with a clean
/// nullptr + error log, never a crash or allocation blow-up. The result
/// plugs directly into TopKServerOptions::ann.prebuilt.
std::shared_ptr<const CandidateIndex> LoadCandidateIndexMapped(
    const std::string& path, const ItemScorer& model, size_t num_items);

}  // namespace mars

#endif  // MARS_ANN_INDEX_IO_H_
