#include "ann/candidate_index.h"

#include "ann/ivf_index.h"
#include "ann/vp_tree_index.h"

namespace mars {

std::unique_ptr<CandidateIndex> BuildCandidateIndex(
    const ItemScorer& model, size_t num_items, const AnnIndexOptions& options,
    ThreadPool* pool) {
  if (num_items == 0 || model.index_dim() == 0) return nullptr;
  switch (model.index_geometry()) {
    case IndexGeometry::kDot:
      return SphericalIvfIndex::Build(model, num_items, options, pool);
    case IndexGeometry::kL2:
      return VpTreeIndex::Build(model, num_items, options, pool);
    case IndexGeometry::kNone:
      break;
  }
  return nullptr;
}

}  // namespace mars
