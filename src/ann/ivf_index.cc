#include "ann/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/facet_store.h"
#include "common/kernels.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/vec.h"

namespace mars {

namespace {

/// RunBatch is not re-entrant; a build triggered from a pool task (e.g. an
/// epoch callback running on a worker) falls back to the serial path.
bool CanFanOut(ThreadPool* pool) {
  return pool != nullptr && !pool->IsWorkerThread();
}

/// Reads items [begin, end) through the model's index-vector surface and
/// assigns each to its max-dot centroid. The copy buffer is per-thread:
/// chunks re-use it across RunBatch tasks instead of paying a
/// chunk-sized allocation each.
void AssignRange(const ItemScorer& model, ItemId begin, ItemId end,
                 const float* centroids, size_t num_centroids, size_t dim,
                 uint32_t* assign) {
  if (begin >= end) return;
  static thread_local std::vector<float> rows;
  rows.resize((end - begin) * dim);
  model.CopyIndexVectors(begin, end, rows.data());
  NearestCentroidDotBatch(rows.data(), end - begin, dim, centroids,
                          num_centroids, dim, dim, assign + begin);
}

/// Full-catalog assignment, fanned over balanced contiguous chunks.
void AssignAll(const ItemScorer& model, size_t num_items,
               const float* centroids, size_t num_centroids, size_t dim,
               ThreadPool* pool, uint32_t* assign) {
  const size_t chunks =
      CanFanOut(pool)
          ? std::max<size_t>(1, std::min(num_items, 4 * pool->num_threads()))
          : 1;
  const auto assign_chunk = [&](size_t c) {
    const auto [begin, end] = FacetStore::ShardRange(num_items, c, chunks);
    AssignRange(model, begin, end, centroids, num_centroids, dim, assign);
  };
  if (chunks > 1) {
    pool->RunBatch(chunks, assign_chunk);
  } else {
    assign_chunk(0);
  }
}

/// Unit-normalizes a centroid row; degenerate rows become e_0 so every
/// centroid stays a valid unit vector.
void NormalizeCentroid(float* row, size_t dim) {
  if (!NormalizeInPlace(row, dim)) {
    Fill(0.0f, row, dim);
    row[0] = 1.0f;
  }
}

}  // namespace

std::unique_ptr<SphericalIvfIndex> SphericalIvfIndex::Build(
    const ItemScorer& model, size_t num_items, const AnnIndexOptions& options,
    ThreadPool* pool) {
  MARS_CHECK(num_items >= 1);
  MARS_CHECK_MSG(model.index_geometry() == IndexGeometry::kDot,
                 "SphericalIvfIndex requires a dot-geometry model");
  const size_t dim = model.index_dim();
  MARS_CHECK(dim >= 1);

  auto index = std::unique_ptr<SphericalIvfIndex>(new SphericalIvfIndex());
  index->num_items_ = num_items;
  index->dim_ = dim;

  // Auto centroid count ~ 4·sqrt(N) (the FAISS-recommended IVF range):
  // finer lists cost a slightly longer centroid scan but waste far fewer
  // re-ranked candidates per probed list, which is what the recall-vs-
  // speedup gate actually trades. Measured on the bench workload at 50k
  // items, 4·sqrt(N) with nprobe = ncent/32 holds recall@10 ≈ 0.97 while
  // re-ranking ~3% of the catalog; sqrt(N) centroids need >1/4 of the
  // catalog for the same recall.
  size_t ncent =
      options.num_centroids > 0
          ? options.num_centroids
          : std::max<size_t>(
                8, 4 * static_cast<size_t>(std::lround(
                           std::sqrt(static_cast<double>(num_items)))));
  ncent = std::min(ncent, num_items);
  ncent = std::max<size_t>(1, ncent);
  index->num_centroids_ = ncent;
  index->nprobe_ = options.nprobe > 0
                       ? std::min(options.nprobe, ncent)
                       : std::min(ncent, std::max<size_t>(2, ncent / 32));

  // K-means trains on a deterministic strided sample (assignment of the
  // *full* catalog to the final centroids happens below regardless).
  const size_t sample_count =
      std::min(num_items, std::max(options.kmeans_sample, ncent));
  std::vector<float> sample(sample_count * dim);
  std::vector<ItemId> sample_ids(sample_count);
  for (size_t i = 0; i < sample_count; ++i) {
    sample_ids[i] = static_cast<ItemId>(i * num_items / sample_count);
    model.CopyIndexVectors(sample_ids[i], sample_ids[i] + 1,
                           sample.data() + i * dim);
  }

  // Init: ncent distinct sample rows, seeded shuffle.
  std::vector<size_t> perm(sample_count);
  std::iota(perm.begin(), perm.end(), size_t{0});
  Rng rng(options.seed);
  rng.Shuffle(&perm);
  auto& centroids = index->centroids_.mutable_vec();
  centroids.resize(ncent * dim);
  for (size_t c = 0; c < ncent; ++c) {
    Copy(sample.data() + perm[c] * dim, centroids.data() + c * dim, dim);
    NormalizeCentroid(centroids.data() + c * dim, dim);
  }

  // Lloyd iterations with the spherical mean-direction update.
  std::vector<uint32_t> sample_assign(sample_count);
  std::vector<float> sums(ncent * dim);
  std::vector<uint32_t> counts(ncent);
  for (size_t iter = 0; iter < options.kmeans_iters; ++iter) {
    NearestCentroidDotBatch(sample.data(), sample_count, dim,
                            centroids.data(), ncent, dim, dim,
                            sample_assign.data());
    std::fill(sums.begin(), sums.end(), 0.0f);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t i = 0; i < sample_count; ++i) {
      Axpy(1.0f, sample.data() + i * dim,
           sums.data() + sample_assign[i] * dim, dim);
      ++counts[sample_assign[i]];
    }
    for (size_t c = 0; c < ncent; ++c) {
      float* row = centroids.data() + c * dim;
      if (counts[c] == 0) {
        // Empty cluster: reseed deterministically from the sample so the
        // centroid count never silently shrinks.
        const size_t r = (iter * 2654435761u + c) % sample_count;
        Copy(sample.data() + r * dim, row, dim);
      } else {
        Copy(sums.data() + c * dim, row, dim);
      }
      NormalizeCentroid(row, dim);
    }
  }

  index->assign_.mutable_vec().resize(num_items);
  AssignAll(model, num_items, centroids.data(), ncent, dim, pool,
            index->assign_.mutable_data());
  index->RebuildLists();
  return index;
}

std::unique_ptr<SphericalIvfIndex> SphericalIvfIndex::Borrow(
    size_t num_items, size_t dim, size_t num_centroids, size_t nprobe,
    const float* centroids, const uint32_t* assign, const uint32_t* offsets,
    const ItemId* list_ids, std::shared_ptr<const void> keepalive) {
  MARS_CHECK(num_items >= 1 && dim >= 1);
  MARS_CHECK(num_centroids >= 1 && num_centroids <= num_items);
  auto index = std::unique_ptr<SphericalIvfIndex>(new SphericalIvfIndex());
  index->num_items_ = num_items;
  index->dim_ = dim;
  index->num_centroids_ = num_centroids;
  index->nprobe_ = std::min(std::max<size_t>(1, nprobe), num_centroids);
  index->centroids_.Borrow(centroids, num_centroids * dim);
  index->assign_.Borrow(assign, num_items);
  index->offsets_.Borrow(offsets, num_centroids + 1);
  index->list_ids_.Borrow(list_ids, num_items);
  index->storage_keepalive_ = std::move(keepalive);
  return index;
}

void SphericalIvfIndex::RebuildLists() {
  auto& offsets = offsets_.mutable_vec();
  auto& list_ids = list_ids_.mutable_vec();
  const uint32_t* assign = assign_.data();
  offsets.assign(num_centroids_ + 1, 0);
  for (size_t v = 0; v < num_items_; ++v) ++offsets[assign[v] + 1];
  for (size_t c = 0; c < num_centroids_; ++c) offsets[c + 1] += offsets[c];
  list_ids.resize(num_items_);
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t v = 0; v < num_items_; ++v) {
    list_ids[cursor[assign[v]]++] = static_cast<ItemId>(v);
  }
}

void SphericalIvfIndex::Probe(const float* query, size_t want,
                              std::vector<ItemId>* out) const {
  if (want >= num_items_) {
    const size_t base = out->size();
    out->resize(base + num_items_);
    for (size_t v = 0; v < num_items_; ++v) {
      (*out)[base + v] = static_cast<ItemId>(v);
    }
    return;
  }
  static thread_local std::vector<float> cdots;
  cdots.resize(num_centroids_);
  DotBatch(query, centroids_.data(), num_centroids_, dim_, dim_,
           cdots.data());
  AppendBestLists(cdots.data(), want, out);
}

void SphericalIvfIndex::AppendBestLists(const float* cdots, size_t want,
                                        std::vector<ItemId>* out) const {
  static thread_local std::vector<uint32_t> order;
  order.resize(num_centroids_);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return cdots[a] > cdots[b] || (cdots[a] == cdots[b] && a < b);
  });
  // nprobe lists minimum; keep extending into next-best lists until the
  // requested candidate count is met (lists are disjoint, so appended ids
  // stay unique).
  size_t appended = 0;
  for (size_t i = 0; i < num_centroids_; ++i) {
    if (i >= nprobe_ && appended >= want) break;
    const auto list = List(order[i]);
    out->insert(out->end(), list.begin(), list.end());
    appended += list.size();
  }
}

void SphericalIvfIndex::ProbeBatch(const float* queries, size_t num_queries,
                                   const size_t* want,
                                   std::vector<std::vector<ItemId>>* out) const {
  if (num_queries == 0) return;
  // One multi-query pass over the centroid matrix scores every query's
  // centroid dots (each centroid row is loaded once per query quad); the
  // per-query list walk is then identical to Probe, so each query's
  // candidate set is bit-identical to its solo probe.
  static thread_local std::vector<float> all_dots;
  all_dots.resize(num_queries * num_centroids_);
  std::vector<const float*> qs(num_queries);
  std::vector<float*> dots(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    qs[q] = queries + q * dim_;
    dots[q] = all_dots.data() + q * num_centroids_;
  }
  DotBatchMulti(qs.data(), num_queries, centroids_.data(), num_centroids_,
                dim_, dim_, dots.data());
  for (size_t q = 0; q < num_queries; ++q) {
    if (want[q] >= num_items_) {
      auto& dst = (*out)[q];
      const size_t base = dst.size();
      dst.resize(base + num_items_);
      for (size_t v = 0; v < num_items_; ++v) {
        dst[base + v] = static_cast<ItemId>(v);
      }
      continue;
    }
    AppendBestLists(dots[q], want[q], &(*out)[q]);
  }
}

std::unique_ptr<CandidateIndex> SphericalIvfIndex::Rebuilt(
    const ItemScorer& model, const std::vector<size_t>& dirty_shards,
    size_t num_shards, ThreadPool* pool) const {
  MARS_CHECK_MSG(model.index_geometry() == IndexGeometry::kDot &&
                     model.index_dim() == dim_,
                 "Rebuilt model must keep the index geometry");
  auto next = std::unique_ptr<SphericalIvfIndex>(new SphericalIvfIndex(*this));
  if (dirty_shards.empty()) return next;
  // Centroids are reused: only dirty rows are re-read and re-assigned, so
  // an epoch that dirtied 1/64th of the catalog pays ~1/64th of the full
  // assignment (the k-means cost is never repaid). On a mapped index this
  // is the copy-on-write step: assign_ is materialized (the lists below
  // are regenerated outright), centroids_ stays borrowed from the mapping
  // — the keepalive copied with *this keeps it valid.
  next->assign_.EnsureOwned();
  if (next->offsets_.borrowed()) next->offsets_ = {};
  if (next->list_ids_.borrowed()) next->list_ids_ = {};
  const auto reassign_shard = [&](size_t i) {
    const auto [begin, end] =
        FacetStore::ShardRange(num_items_, dirty_shards[i], num_shards);
    AssignRange(model, begin, end, next->centroids_.data(), num_centroids_,
                dim_, next->assign_.mutable_data());
  };
  if (CanFanOut(pool) && dirty_shards.size() > 1) {
    pool->RunBatch(dirty_shards.size(), reassign_shard);
  } else {
    for (size_t i = 0; i < dirty_shards.size(); ++i) reassign_shard(i);
  }
  next->RebuildLists();
  return next;
}

std::unique_ptr<SphericalIvfIndex> SphericalIvfIndex::CloneWithNprobe(
    size_t nprobe) const {
  auto next = std::unique_ptr<SphericalIvfIndex>(new SphericalIvfIndex(*this));
  next->nprobe_ = std::min(std::max<size_t>(1, nprobe), num_centroids_);
  return next;
}

}  // namespace mars
