#include "ann/vp_tree_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/facet_store.h"
#include "common/kernels.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/vec.h"

namespace mars {

namespace {

/// Absolute slack on the triangle-inequality prune: the boundary radii
/// and query distances pass through sqrt, so a subtree sitting *exactly*
/// on the pruning boundary could be rejected by a last-ulp rounding
/// difference. The slack only ever widens the visit, so exactness is
/// preserved and the cost is a few extra node visits on exact-tie
/// geometries.
constexpr float kPruneSlack = 1e-5f;

bool CanFanOut(ThreadPool* pool) {
  return pool != nullptr && !pool->IsWorkerThread();
}

/// Heap order: "nearer-ranked" ascending by (distance², id). The search
/// keeps a max-heap under this order, so the front is the current worst
/// member — the id tiebreak matches the serving rank order (score
/// descending, id ascending) under score == -distance².
inline bool RanksNearer(const std::pair<float, ItemId>& a,
                        const std::pair<float, ItemId>& b) {
  return a.first < b.first || (a.first == b.first && a.second < b.second);
}

inline void OfferCandidate(std::pair<float, ItemId> cand, size_t want,
                           std::vector<std::pair<float, ItemId>>* heap) {
  if (heap->size() < want) {
    heap->push_back(cand);
    std::push_heap(heap->begin(), heap->end(), RanksNearer);
    return;
  }
  if (!RanksNearer(cand, heap->front())) return;
  std::pop_heap(heap->begin(), heap->end(), RanksNearer);
  heap->back() = cand;
  std::push_heap(heap->begin(), heap->end(), RanksNearer);
}

}  // namespace

std::unique_ptr<VpTreeIndex> VpTreeIndex::Build(const ItemScorer& model,
                                                size_t num_items,
                                                const AnnIndexOptions& options,
                                                ThreadPool* pool) {
  MARS_CHECK(num_items >= 1);
  MARS_CHECK_MSG(model.index_geometry() == IndexGeometry::kL2,
                 "VpTreeIndex requires an L2-geometry model");
  const size_t dim = model.index_dim();
  MARS_CHECK(dim >= 1);

  auto index = std::unique_ptr<VpTreeIndex>(new VpTreeIndex());
  index->num_items_ = num_items;
  index->dim_ = dim;
  index->leaf_size_ = std::max<size_t>(1, options.leaf_size);
  index->parallel_depth_ = options.vp_parallel_depth;
  index->seed_ = options.seed;

  index->vectors_.mutable_vec().resize(num_items * dim);
  float* vec_data = index->vectors_.mutable_data();
  const size_t chunks =
      CanFanOut(pool)
          ? std::max<size_t>(1, std::min(num_items, 4 * pool->num_threads()))
          : 1;
  const auto copy_chunk = [&](size_t c) {
    const auto [begin, end] = FacetStore::ShardRange(num_items, c, chunks);
    if (begin >= end) return;
    model.CopyIndexVectors(begin, end, vec_data + begin * dim);
  };
  if (chunks > 1) {
    pool->RunBatch(chunks, copy_chunk);
  } else {
    copy_chunk(0);
  }

  auto& ids = index->ids_.mutable_vec();
  ids.resize(num_items);
  std::iota(ids.begin(), ids.end(), ItemId{0});
  index->radii_.mutable_vec().assign(num_items, 0.0f);
  index->BuildTree(pool);
  return index;
}

std::unique_ptr<VpTreeIndex> VpTreeIndex::Borrow(
    size_t num_items, size_t dim, size_t leaf_size, size_t parallel_depth,
    uint64_t seed, const float* vectors, const ItemId* ids, const float* radii,
    std::shared_ptr<const void> keepalive) {
  MARS_CHECK(num_items >= 1 && dim >= 1 && leaf_size >= 1);
  auto index = std::unique_ptr<VpTreeIndex>(new VpTreeIndex());
  index->num_items_ = num_items;
  index->dim_ = dim;
  index->leaf_size_ = leaf_size;
  index->parallel_depth_ = parallel_depth;
  index->seed_ = seed;
  index->vectors_.Borrow(vectors, num_items * dim);
  index->ids_.Borrow(ids, num_items);
  index->radii_.Borrow(radii, num_items);
  index->storage_keepalive_ = std::move(keepalive);
  return index;
}

std::pair<std::pair<size_t, size_t>, std::pair<size_t, size_t>>
VpTreeIndex::PartitionNode(size_t begin, size_t end) {
  ItemId* ids = ids_.mutable_data();
  float* radii = radii_.mutable_data();
  const size_t n = end - begin;
  // Vantage pick: seeded hash of the range — deterministic, and
  // independent of which thread partitions the node.
  uint64_t h = seed_ ^ (begin * 0x9E3779B97F4A7C15ULL + end);
  const size_t pick = SplitMix64(&h) % n;
  std::swap(ids[begin], ids[begin + pick]);
  const float* vp = vectors_.data() + ids[begin] * dim_;

  const size_t cn = n - 1;
  // Thread-local scratch: recursion uses the buffers strictly before
  // recursing, so reuse across levels (and across RunBatch tasks on one
  // worker) is safe.
  static thread_local std::vector<float> d2;
  static thread_local std::vector<std::pair<float, ItemId>> children;
  d2.resize(cn);
  children.resize(cn);
  SquaredDistanceGather(vp, vectors_.data(), dim_, &ids[begin + 1], cn, dim_,
                        d2.data());
  for (size_t i = 0; i < cn; ++i) children[i] = {d2[i], ids[begin + 1 + i]};

  // Median split by (distance², id); the id tiebreak keeps the partition
  // deterministic when many children are equidistant.
  const size_t near_count = (cn + 1) / 2;
  std::nth_element(children.begin(), children.begin() + (near_count - 1),
                   children.end(), RanksNearer);
  radii[begin] = std::sqrt(children[near_count - 1].first);
  for (size_t i = 0; i < cn; ++i) ids[begin + 1 + i] = children[i].second;

  return {{begin + 1, begin + 1 + near_count}, {begin + 1 + near_count, end}};
}

void VpTreeIndex::BuildSubtree(size_t begin, size_t end) {
  if (end - begin <= leaf_size_) return;
  const auto [near, far] = PartitionNode(begin, end);
  BuildSubtree(near.first, near.second);
  BuildSubtree(far.first, far.second);
}

void VpTreeIndex::BuildTree(ThreadPool* pool) {
  const bool fan = CanFanOut(pool) && parallel_depth_ > 0 &&
                   num_items_ > 4 * leaf_size_;
  if (!fan) {
    BuildSubtree(0, num_items_);
    return;
  }
  // Partition the top `parallel_depth_` levels serially; the surviving
  // frontier subtrees own disjoint ranges and build independently.
  std::vector<std::pair<size_t, size_t>> frontier{{0, num_items_}};
  std::vector<std::pair<size_t, size_t>> next;
  for (size_t depth = 0; depth < parallel_depth_; ++depth) {
    next.clear();
    for (const auto [begin, end] : frontier) {
      if (end - begin <= leaf_size_) continue;
      const auto [near, far] = PartitionNode(begin, end);
      next.push_back(near);
      next.push_back(far);
    }
    if (next.empty()) return;
    frontier.swap(next);
  }
  pool->RunBatch(frontier.size(), [&](size_t i) {
    BuildSubtree(frontier[i].first, frontier[i].second);
  });
}

void VpTreeIndex::Probe(const float* query, size_t want,
                        std::vector<ItemId>* out) const {
  if (want == 0) return;
  if (want >= num_items_) {
    const size_t base = out->size();
    out->resize(base + num_items_);
    for (size_t v = 0; v < num_items_; ++v) {
      (*out)[base + v] = static_cast<ItemId>(v);
    }
    return;
  }
  static thread_local std::vector<std::pair<float, ItemId>> heap;
  heap.clear();
  SearchNode(0, num_items_, query, want, &heap);
  out->reserve(out->size() + heap.size());
  for (const auto& [d2, id] : heap) out->push_back(id);
}

void VpTreeIndex::SearchNode(
    size_t begin, size_t end, const float* query, size_t want,
    std::vector<std::pair<float, ItemId>>* heap) const {
  const size_t n = end - begin;
  if (n == 0) return;
  if (n <= leaf_size_) {
    static thread_local std::vector<float> leaf_d2;
    leaf_d2.resize(n);
    SquaredDistanceGather(query, vectors_.data(), dim_, &ids_[begin], n, dim_,
                          leaf_d2.data());
    for (size_t i = 0; i < n; ++i) {
      OfferCandidate({leaf_d2[i], ids_[begin + i]}, want, heap);
    }
    return;
  }

  const float d2v =
      SquaredDistance(query, vectors_.data() + ids_[begin] * dim_, dim_);
  OfferCandidate({d2v, ids_[begin]}, want, heap);
  const float d = std::sqrt(d2v);
  const float r = radii_[begin];
  const size_t near_count = (n - 1 + 1) / 2;
  const size_t mid = begin + 1 + near_count;

  // Visit the side the query falls in first — it tightens tau before the
  // other side's prune test runs. tau is re-read after the first visit.
  const auto tau = [&]() {
    return heap->size() < want ? std::numeric_limits<float>::infinity()
                               : std::sqrt(heap->front().first);
  };
  if (d <= r) {
    SearchNode(begin + 1, mid, query, want, heap);
    // Far points have d(x, vp) >= r, so d(q, x) >= r - d; skip only when
    // that floor beats the current worst kept distance.
    if (d + tau() >= r - kPruneSlack) SearchNode(mid, end, query, want, heap);
  } else {
    SearchNode(mid, end, query, want, heap);
    // Near points have d(x, vp) <= r, so d(q, x) >= d - r.
    if (d - tau() <= r + kPruneSlack) {
      SearchNode(begin + 1, mid, query, want, heap);
    }
  }
}

std::unique_ptr<CandidateIndex> VpTreeIndex::Rebuilt(
    const ItemScorer& model, const std::vector<size_t>& dirty_shards,
    size_t num_shards, ThreadPool* pool) const {
  MARS_CHECK_MSG(model.index_geometry() == IndexGeometry::kL2 &&
                     model.index_dim() == dim_,
                 "Rebuilt model must keep the index geometry");
  auto next = std::unique_ptr<VpTreeIndex>(new VpTreeIndex(*this));
  if (dirty_shards.empty()) return next;
  // Dirty rows land straight in the vector table (tight rows addressed by
  // id); clean rows are byte-identical by the tracker contract, so the
  // deterministic re-partition below equals a fresh Build over the
  // updated model. On a mapped index this is the copy-on-write step: all
  // three arrays are materialized (the whole tree re-partitions).
  next->vectors_.EnsureOwned();
  next->ids_.EnsureOwned();
  next->radii_.EnsureOwned();
  float* vec_data = next->vectors_.mutable_data();
  const auto refresh_shard = [&](size_t i) {
    const auto [begin, end] =
        FacetStore::ShardRange(num_items_, dirty_shards[i], num_shards);
    if (begin >= end) return;
    model.CopyIndexVectors(begin, end, vec_data + begin * dim_);
  };
  if (CanFanOut(pool) && dirty_shards.size() > 1) {
    pool->RunBatch(dirty_shards.size(), refresh_shard);
  } else {
    for (size_t i = 0; i < dirty_shards.size(); ++i) refresh_shard(i);
  }
  auto& next_ids = next->ids_.mutable_vec();
  std::iota(next_ids.begin(), next_ids.end(), ItemId{0});
  auto& next_radii = next->radii_.mutable_vec();
  std::fill(next_radii.begin(), next_radii.end(), 0.0f);
  next->BuildTree(pool);
  return next;
}

}  // namespace mars
