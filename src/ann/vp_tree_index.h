// Vantage-point tree candidate index for L2-metric models.
//
// CML/SML/MetricF score by -||u - v||², so their top-k is exactly a
// k-nearest-neighbour query in a plain metric space — no approximation
// needed: the VP-tree prunes subtrees with the triangle inequality
// (|d(q, vp) - r| > tau rules a whole ball in or out) and returns the
// *exact* k nearest. Recall is 1.0 by construction; what varies with the
// data is only how much of the tree pruning skips.
//
// Layout: one in-place tree over an id permutation. ids_[begin] is the
// node's vantage point, radii_[begin] its median boundary distance, and
// the children occupy the two contiguous sub-ranges that a
// nth_element-partition of [begin+1, end) leaves behind — near half
// first. Subtrees therefore own disjoint ranges of ids_/radii_, which is
// what makes the parallel build race-free and bit-identical to the
// serial one: the top levels are partitioned serially, then each
// frontier subtree is one ThreadPool::RunBatch task. Partitioning orders
// by (distance, id), and the vantage pick is a seeded hash of the range,
// so builds are deterministic in (vectors, options).
//
// Rebuilt() re-reads dirty rows straight into the vector table (rows are
// tight at index_dim, addressed by item id) and re-partitions the whole
// tree deterministically — clean rows are byte-identical under the
// WriteTracker contract, so rebuilding after dirty shards equals a fresh
// build over the updated model, the pinning property the tests assert.
#ifndef MARS_ANN_VP_TREE_INDEX_H_
#define MARS_ANN_VP_TREE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "ann/candidate_index.h"
#include "common/maybe_owned.h"

namespace mars {

class VpTreeIndex : public CandidateIndex {
 public:
  /// Builds over `model`'s items [0, num_items); requires L2 geometry and
  /// num_items >= 1. `pool` parallelizes the vector copy and the subtree
  /// builds (may be null).
  static std::unique_ptr<VpTreeIndex> Build(const ItemScorer& model,
                                            size_t num_items,
                                            const AnnIndexOptions& options,
                                            ThreadPool* pool);

  /// Wraps caller-owned flat arrays (a mapped index file) without copying
  /// a byte: `vectors` is the num_items x dim tight table addressed by
  /// id, `ids`/`radii` the in-place tree (the node array). The build
  /// parameters must be the ones the persisted tree was built with —
  /// `leaf_size` shapes the node ranges the search walks, and `seed`
  /// keeps a later Rebuilt() deterministic. `keepalive` pins the backing
  /// storage; probes over the borrowed arrays are bit-identical to the
  /// freshly built index holding the same bytes.
  static std::unique_ptr<VpTreeIndex> Borrow(
      size_t num_items, size_t dim, size_t leaf_size, size_t parallel_depth,
      uint64_t seed, const float* vectors, const ItemId* ids,
      const float* radii, std::shared_ptr<const void> keepalive);

  const char* kind() const override { return "vp_tree"; }
  /// Appends the exact min(want, num_items) nearest items to the query
  /// (by (distance, id) — the id tiebreak matches the serving rank order).
  void Probe(const float* query, size_t want,
             std::vector<ItemId>* out) const override;
  std::unique_ptr<CandidateIndex> Rebuilt(
      const ItemScorer& model, const std::vector<size_t>& dirty_shards,
      size_t num_shards, ThreadPool* pool) const override;

  /// Test surface: the id permutation and per-node boundary radii.
  std::span<const ItemId> ids() const { return ids_.span(); }
  std::span<const float> radii() const { return radii_.span(); }
  // Flat-state spans and build parameters for persistence
  // (ann/index_io.cc) and tests.
  std::span<const float> vectors() const { return vectors_.span(); }
  size_t leaf_size() const { return leaf_size_; }
  size_t parallel_depth() const { return parallel_depth_; }
  uint64_t seed() const { return seed_; }

 private:
  VpTreeIndex() = default;

  /// One partition step of the node at [begin, end) (which must exceed
  /// leaf_size_): picks the vantage, splits the children by median
  /// distance, stores the boundary radius. Returns {near, far} ranges.
  std::pair<std::pair<size_t, size_t>, std::pair<size_t, size_t>>
  PartitionNode(size_t begin, size_t end);

  /// Recursive serial build of the subtree at [begin, end).
  void BuildSubtree(size_t begin, size_t end);

  /// Full build: serial top levels, then one pool task per frontier
  /// subtree.
  void BuildTree(ThreadPool* pool);

  void SearchNode(size_t begin, size_t end, const float* query, size_t want,
                  std::vector<std::pair<float, ItemId>>* heap) const;

  size_t leaf_size_ = 32;
  size_t parallel_depth_ = 3;
  uint64_t seed_ = 0;
  // Owned when built, borrowed from the mapping when loaded
  // (common/maybe_owned.h); Rebuilt() materializes all three (dirty rows
  // land in the vector table and the whole tree re-partitions).
  MaybeOwned<float> vectors_;  // num_items x dim, tight, indexed by id
  MaybeOwned<ItemId> ids_;     // tree permutation
  MaybeOwned<float> radii_;    // parallel to ids_; valid at node slots
};

}  // namespace mars

#endif  // MARS_ANN_VP_TREE_INDEX_H_
