#include "ann/index_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <span>
#include <utility>
#include <vector>

#include "ann/ivf_index.h"
#include "ann/vp_tree_index.h"
#include "common/binary_io.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/mapped_store.h"
#include "net/protocol.h"

namespace mars {

namespace {

// "MRSI" on disk (LE u32), the retrieval-tier sibling of the "MARS"
// snapshot and "MRSK" sidecar magics.
constexpr uint32_t kIndexMagic = 0x4953524Du;
constexpr uint32_t kIndexVersion = 1;
constexpr uint32_t kKindSphericalIvf = 1;
constexpr uint32_t kKindVpTree = 2;
// Fixed header: 72 bytes of fields + a 4-slot region table (24 bytes
// each), zero-padded to 192 — a 64-byte multiple, so the first region
// starts cache-line aligned in the file and (mmap being page-aligned)
// in memory, mirroring the v3 tensor guarantee.
constexpr size_t kMaxRegions = 4;
constexpr uint64_t kIndexHeaderBytes = 192;
constexpr uint64_t kRegionAlign = 64;

static_assert(sizeof(ItemId) == sizeof(uint32_t),
              "index regions store ItemId as u32");

uint64_t AlignUp(uint64_t v) {
  return (v + (kRegionAlign - 1)) & ~(kRegionAlign - 1);
}

/// Everything the fixed header encodes, plus the derived region layout.
/// The layout is *computed* from the geometry fields — the loader
/// recomputes it and requires the stored table to match exactly, so a
/// crafted table cannot point regions anywhere the geometry doesn't.
struct IndexLayout {
  uint32_t kind = 0;
  uint64_t num_items = 0;
  uint64_t dim = 0;
  // kind-specific build parameters:
  //   spherical_ivf: {num_centroids, nprobe, 0}
  //   vp_tree:       {leaf_size, parallel_depth, seed}
  uint64_t params[3] = {0, 0, 0};
  size_t num_regions = 0;
  uint64_t region_offset[kMaxRegions] = {0, 0, 0, 0};
  uint64_t region_bytes[kMaxRegions] = {0, 0, 0, 0};
  uint64_t file_bytes = 0;
};

/// Region payload sizes per kind, in declaration order:
///   spherical_ivf: centroids f32 | assign u32 | offsets u32 | lists u32
///   vp_tree:       vectors f32   | ids u32    | radii f32
/// Fills offsets (64B-aligned tiling after the header) and file_bytes.
/// Geometry must already be plausibility-bounded: with num_items ≤ 2³¹
/// and dim ≤ 65536 no product here can overflow u64.
void ComputeRegions(IndexLayout* l) {
  if (l->kind == kKindSphericalIvf) {
    const uint64_t ncent = l->params[0];
    l->num_regions = 4;
    l->region_bytes[0] = ncent * l->dim * sizeof(float);
    l->region_bytes[1] = l->num_items * sizeof(uint32_t);
    l->region_bytes[2] = (ncent + 1) * sizeof(uint32_t);
    l->region_bytes[3] = l->num_items * sizeof(uint32_t);
  } else {
    l->num_regions = 3;
    l->region_bytes[0] = l->num_items * l->dim * sizeof(float);
    l->region_bytes[1] = l->num_items * sizeof(uint32_t);
    l->region_bytes[2] = l->num_items * sizeof(float);
  }
  uint64_t at = kIndexHeaderBytes;
  for (size_t r = 0; r < l->num_regions; ++r) {
    l->region_offset[r] = at;
    at = AlignUp(at + l->region_bytes[r]);
  }
  // file_bytes is the aligned end: the last region's padding is written
  // (zeros) so the file size is layout-determined to the byte.
  l->file_bytes = at;
}

/// Bounds every header-derived extent before any size computation is
/// trusted (the v3 ShapePlausible discipline): 1 ≤ items ≤ 2³¹,
/// 1 ≤ dim ≤ 65536, and the kind-specific parameters in sane ranges.
bool LayoutPlausible(const IndexLayout& l, const char* who) {
  constexpr uint64_t kMaxItems = 1ull << 31;
  if (l.num_items == 0 || l.num_items > kMaxItems || l.dim == 0 ||
      l.dim > 65536) {
    MARS_LOG(ERROR) << who << ": implausible geometry";
    return false;
  }
  if (l.kind == kKindSphericalIvf) {
    const uint64_t ncent = l.params[0], nprobe = l.params[1];
    if (ncent == 0 || ncent > l.num_items || nprobe == 0 || nprobe > ncent) {
      MARS_LOG(ERROR) << who << ": implausible IVF parameters";
      return false;
    }
  } else if (l.kind == kKindVpTree) {
    const uint64_t leaf = l.params[0], depth = l.params[1];
    if (leaf == 0 || leaf > kMaxItems || depth > 64) {
      MARS_LOG(ERROR) << who << ": implausible VP-tree parameters";
      return false;
    }
  } else {
    MARS_LOG(ERROR) << who << ": unknown index kind " << l.kind;
    return false;
  }
  return true;
}

bool WriteIndexFile(const std::string& path, IndexLayout l,
                    const std::span<const uint8_t>* regions) {
  ComputeRegions(&l);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    MARS_LOG(ERROR) << "SaveCandidateIndex: cannot open " << path;
    return false;
  }
  WriteU32(out, kIndexMagic);
  WriteU32(out, kIndexVersion);
  WriteU32(out, l.kind);
  WriteU32(out, 0u);  // reserved
  WriteU64(out, l.num_items);
  WriteU64(out, l.dim);
  for (const uint64_t p : l.params) WriteU64(out, p);
  WriteU64(out, l.file_bytes);
  WriteU32(out, static_cast<uint32_t>(l.num_regions));
  WriteU32(out, 0u);  // reserved
  for (size_t r = 0; r < kMaxRegions; ++r) {
    const bool live = r < l.num_regions;
    MARS_CHECK(!live || regions[r].size() == l.region_bytes[r]);
    WriteU64(out, live ? l.region_offset[r] : 0);
    WriteU64(out, live ? l.region_bytes[r] : 0);
    WriteU32(out, live ? Crc32(regions[r].data(), regions[r].size()) : 0u);
    WriteU32(out, 0u);  // reserved
  }
  const std::vector<char> zeros(kRegionAlign, 0);
  const auto pad_to = [&](uint64_t offset) {
    uint64_t at = static_cast<uint64_t>(out.tellp());
    MARS_CHECK(at <= offset);
    while (at < offset) {
      const uint64_t n = std::min<uint64_t>(offset - at, zeros.size());
      out.write(zeros.data(), static_cast<std::streamsize>(n));
      at += n;
    }
  };
  pad_to(kIndexHeaderBytes);
  for (size_t r = 0; r < l.num_regions; ++r) {
    pad_to(l.region_offset[r]);
    out.write(reinterpret_cast<const char*>(regions[r].data()),
              static_cast<std::streamsize>(regions[r].size()));
  }
  pad_to(l.file_bytes);
  out.flush();
  if (!out) {
    MARS_LOG(ERROR) << "SaveCandidateIndex: write failed for " << path;
    return false;
  }
  return true;
}

template <typename T>
std::span<const uint8_t> Bytes(std::span<const T> s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size_bytes()};
}

/// CSR sanity for a loaded IVF: offsets tile [0, num_items]
/// non-decreasingly and every assignment/list id is in range — the
/// bounds Probe/Rebuilt index with, so a corrupt (checksum-colliding)
/// file can never read out of the mapping or the model.
bool IvfPayloadValid(const IndexLayout& l, const uint32_t* assign,
                     const uint32_t* offsets, const ItemId* list_ids) {
  const uint64_t ncent = l.params[0];
  if (offsets[0] != 0 || offsets[ncent] != l.num_items) return false;
  for (uint64_t c = 0; c < ncent; ++c) {
    if (offsets[c + 1] < offsets[c]) return false;
  }
  for (uint64_t v = 0; v < l.num_items; ++v) {
    if (assign[v] >= ncent) return false;
    if (list_ids[v] >= l.num_items) return false;
  }
  return true;
}

/// A loaded VP-tree's id array must be a permutation of [0, num_items):
/// the search gathers vectors by id, so an out-of-range id would read
/// outside the mapped vector table.
bool VpPayloadValid(const IndexLayout& l, const ItemId* ids) {
  std::vector<bool> seen(l.num_items, false);
  for (uint64_t i = 0; i < l.num_items; ++i) {
    if (ids[i] >= l.num_items || seen[ids[i]]) return false;
    seen[ids[i]] = true;
  }
  return true;
}

}  // namespace

bool SaveCandidateIndex(const CandidateIndex& index, const std::string& path) {
  if (const auto* ivf = dynamic_cast<const SphericalIvfIndex*>(&index)) {
    IndexLayout l;
    l.kind = kKindSphericalIvf;
    l.num_items = ivf->num_items();
    l.dim = ivf->dim();
    l.params[0] = ivf->num_centroids();
    l.params[1] = ivf->nprobe();
    const std::span<const uint8_t> regions[kMaxRegions] = {
        Bytes(ivf->centroids()), Bytes(ivf->assignments()),
        Bytes(ivf->offsets()), Bytes(ivf->list_ids())};
    return WriteIndexFile(path, l, regions);
  }
  if (const auto* vp = dynamic_cast<const VpTreeIndex*>(&index)) {
    IndexLayout l;
    l.kind = kKindVpTree;
    l.num_items = vp->num_items();
    l.dim = vp->dim();
    l.params[0] = vp->leaf_size();
    l.params[1] = vp->parallel_depth();
    l.params[2] = vp->seed();
    const std::span<const uint8_t> regions[kMaxRegions] = {
        Bytes(vp->vectors()), Bytes(vp->ids()), Bytes(vp->radii()), {}};
    return WriteIndexFile(path, l, regions);
  }
  MARS_LOG(ERROR) << "SaveCandidateIndex: unsupported index kind '"
                  << index.kind() << "'";
  return false;
}

std::shared_ptr<const CandidateIndex> LoadCandidateIndexMapped(
    const std::string& path, const ItemScorer& model, size_t num_items) {
  const char* who = "LoadCandidateIndexMapped";
  std::shared_ptr<MappedFile> file = MappedFile::Open(path);
  if (file == nullptr) return nullptr;
  const uint8_t* base = file->data();
  if (file->size() < kIndexHeaderBytes) {
    MARS_LOG(ERROR) << who << ": " << path << " is truncated ("
                    << file->size() << " bytes, header needs "
                    << kIndexHeaderBytes << ")";
    return nullptr;
  }
  const auto read_u32 = [&](size_t offset) {
    uint32_t v;
    std::memcpy(&v, base + offset, sizeof(v));
    return v;
  };
  const auto read_u64 = [&](size_t offset) {
    uint64_t v;
    std::memcpy(&v, base + offset, sizeof(v));
    return v;
  };
  if (read_u32(0) != kIndexMagic) {
    MARS_LOG(ERROR) << who << ": bad magic in " << path;
    return nullptr;
  }
  if (read_u32(4) != kIndexVersion) {
    MARS_LOG(ERROR) << who << ": " << path << " is index format v"
                    << read_u32(4) << ", expected v" << kIndexVersion;
    return nullptr;
  }
  IndexLayout l;
  l.kind = read_u32(8);
  l.num_items = read_u64(16);
  l.dim = read_u64(24);
  for (size_t p = 0; p < 3; ++p) l.params[p] = read_u64(32 + p * 8);
  const uint64_t file_bytes = read_u64(56);
  const uint32_t num_regions = read_u32(64);

  // Plausibility bounds come BEFORE any size math (the v3 discipline):
  // nothing below multiplies unchecked header fields.
  if (!LayoutPlausible(l, who)) return nullptr;

  // The index must pair with the serving model: right geometry kind,
  // same vector dim, same catalog.
  const uint32_t want_kind = model.index_geometry() == IndexGeometry::kDot
                                 ? kKindSphericalIvf
                                 : model.index_geometry() == IndexGeometry::kL2
                                       ? kKindVpTree
                                       : 0;
  if (l.kind != want_kind) {
    MARS_LOG(ERROR) << who << ": " << path
                    << " holds the wrong index kind for the model's "
                    << "geometry";
    return nullptr;
  }
  if (l.dim != model.index_dim() || l.num_items != num_items) {
    MARS_LOG(ERROR) << who << ": " << path << " was built for dim=" << l.dim
                    << " items=" << l.num_items << ", model wants dim="
                    << model.index_dim() << " items=" << num_items;
    return nullptr;
  }

  // The stored region table and file size must equal the layout the
  // geometry implies — checked against the REAL file size before a
  // single region byte is touched, so truncated or size-lying files
  // reject cleanly.
  ComputeRegions(&l);
  if (num_regions != l.num_regions || file_bytes != l.file_bytes ||
      file->size() != l.file_bytes) {
    MARS_LOG(ERROR) << who << ": " << path << " region layout does not "
                    << "match its geometry (truncated or corrupt)";
    return nullptr;
  }
  uint32_t stored_crc[kMaxRegions];
  for (size_t r = 0; r < l.num_regions; ++r) {
    const size_t entry = 72 + r * 24;
    if (read_u64(entry) != l.region_offset[r] ||
        read_u64(entry + 8) != l.region_bytes[r]) {
      MARS_LOG(ERROR) << who << ": " << path << " region " << r
                      << " offsets are inconsistent with its geometry";
      return nullptr;
    }
    stored_crc[r] = read_u32(entry + 16);
  }
  for (size_t r = 0; r < l.num_regions; ++r) {
    if (Crc32(base + l.region_offset[r], l.region_bytes[r]) !=
        stored_crc[r]) {
      MARS_LOG(ERROR) << who << ": " << path << " region " << r
                      << " checksum mismatch";
      return nullptr;
    }
  }

  if (l.kind == kKindSphericalIvf) {
    const auto* centroids =
        reinterpret_cast<const float*>(base + l.region_offset[0]);
    const auto* assign =
        reinterpret_cast<const uint32_t*>(base + l.region_offset[1]);
    const auto* offsets =
        reinterpret_cast<const uint32_t*>(base + l.region_offset[2]);
    const auto* list_ids =
        reinterpret_cast<const ItemId*>(base + l.region_offset[3]);
    if (!IvfPayloadValid(l, assign, offsets, list_ids)) {
      MARS_LOG(ERROR) << who << ": " << path << " holds corrupt IVF lists";
      return nullptr;
    }
    return SphericalIvfIndex::Borrow(l.num_items, l.dim, l.params[0],
                                     l.params[1], centroids, assign, offsets,
                                     list_ids, std::move(file));
  }
  const auto* vectors =
      reinterpret_cast<const float*>(base + l.region_offset[0]);
  const auto* ids =
      reinterpret_cast<const ItemId*>(base + l.region_offset[1]);
  const auto* radii =
      reinterpret_cast<const float*>(base + l.region_offset[2]);
  if (!VpPayloadValid(l, ids)) {
    MARS_LOG(ERROR) << who << ": " << path
                    << " holds a corrupt VP-tree permutation";
    return nullptr;
  }
  return VpTreeIndex::Borrow(l.num_items, l.dim, l.params[0], l.params[1],
                             l.params[2], vectors, ids, radii,
                             std::move(file));
}

}  // namespace mars
