// Sub-linear candidate retrieval over a frozen model snapshot.
//
// A CandidateIndex turns the serving miss path from "score the whole
// catalog" into "probe the index for a candidate block, then re-rank the
// block with the model's exact scores". The index is *only* a candidate
// generator: every score the server returns still comes from the model's
// own ScoreItems, so an ANN-served response differs from the exact sweep
// at most in *which* items it considered, never in how any considered
// item is scored. Recall — the fraction of the true top-k the candidate
// block covers — is the single quality axis, and the bench
// (bench/bench_serve.cpp) measures it against the brute-force oracle at
// every committed nprobe (scripts/check_bench.py gates it).
//
// Two implementations cover the two geometries of eval/scorer.h:
//
//  * SphericalIvfIndex (ann/ivf_index.h) — dot/cosine models (BPR, MARS
//    via concatenated facets): spherical k-means coarse centroids with
//    nprobe-configurable inverted lists. Approximate: probing more lists
//    trades latency for recall.
//  * VpTreeIndex (ann/vp_tree_index.h) — L2-metric models (CML, SML,
//    MetricF): a vantage-point tree with triangle-inequality pruning.
//    Exact k-NN — recall 1.0 by construction; the speedup comes from
//    pruning, so it degrades gracefully on high-dimensional or
//    unclustered embeddings instead of losing recall.
//
// Concurrency contract: a built index is immutable — Probe is
// const-threadsafe and may run from any number of frontend threads.
// Updates go through Rebuilt(), which returns a *new* index and leaves
// the receiver untouched, so the serving layer publishes indexes through
// the same epoch-swap (SnapshotHandle) as model snapshots: in-flight
// probes keep the index they started with. Build/Rebuilt run quiesced at
// an epoch boundary (the AbsorbWrites contract) and fan work over the
// pool with ThreadPool::RunBatch.
#ifndef MARS_ANN_CANDIDATE_INDEX_H_
#define MARS_ANN_CANDIDATE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/interaction.h"
#include "eval/scorer.h"

namespace mars {

class ThreadPool;

/// Build-time knobs; every field has a scale-aware auto default so the
/// serving layer can pass a default-constructed value.
struct AnnIndexOptions {
  /// IVF coarse centroids; 0 = auto (~4·sqrt(num_items) — the FAISS
  /// operating range; at least 8, clamped to the catalog).
  size_t num_centroids = 0;
  /// IVF lists probed per query; 0 = auto (num_centroids / 32, at least
  /// 2 — tuned with the auto centroid count against the bench's
  /// recall@10 >= 0.95 gate). Raise toward num_centroids to trade
  /// latency for recall; at num_centroids the candidate block is the
  /// whole catalog and the served ranking is exact.
  size_t nprobe = 0;
  /// Lloyd iterations of the spherical k-means.
  size_t kmeans_iters = 8;
  /// Training-sample bound for k-means (the full catalog is still
  /// assigned to the final centroids).
  size_t kmeans_sample = 16384;
  /// Seed for centroid init and vantage-point picks; builds are
  /// deterministic in (vectors, options).
  uint64_t seed = 0x5eedu;
  /// VP-tree: subtrees at or below this size are scanned linearly.
  size_t leaf_size = 32;
  /// VP-tree: depth down to which subtree builds are fanned out as pool
  /// tasks (2^depth tasks; subtree ranges are disjoint, so the parallel
  /// build is race-free and bit-identical to the serial one).
  size_t vp_parallel_depth = 3;
  /// Serving overfetch: the miss path asks the index for
  /// max(k * overfetch, k + excluded) candidates, so exclusions and
  /// near-boundary items don't eat the returned k.
  size_t overfetch = 4;
};

/// Immutable candidate generator over one model snapshot's item vectors.
class CandidateIndex {
 public:
  virtual ~CandidateIndex() = default;

  size_t num_items() const { return num_items_; }
  size_t dim() const { return dim_; }
  virtual const char* kind() const = 0;

  /// Appends at least min(want, num_items) candidate item ids to `out`
  /// (which is not cleared), best-effort nearest the query first in
  /// aggregate — order within the block is unspecified; the caller
  /// re-ranks with exact model scores. Ids are unique per call.
  virtual void Probe(const float* query, size_t want,
                     std::vector<ItemId>* out) const = 0;

  /// Batched probe for the serving coalescer: `queries` holds
  /// `num_queries` query vectors of dim() floats, tightly packed;
  /// appends each query's candidates to (*out)[q] (not cleared; `out`
  /// must hold at least num_queries vectors), exactly as
  /// Probe(queries + q·dim(), want[q], &(*out)[q]) would — per query the
  /// candidate set is bit-identical to the solo probe, the contract the
  /// batched miss path relies on. The default is that loop;
  /// implementations override it to share cross-query work (the IVF
  /// ranks centroids for all queries off one pass over the centroid
  /// matrix).
  virtual void ProbeBatch(const float* queries, size_t num_queries,
                          const size_t* want,
                          std::vector<std::vector<ItemId>>* out) const {
    for (size_t q = 0; q < num_queries; ++q) {
      Probe(queries + q * dim_, want[q], &(*out)[q]);
    }
  }

  /// Returns a fresh index over `model`'s current item vectors, reusing
  /// everything the dirty shards don't invalidate (IVF keeps its
  /// centroids and re-assigns only dirty rows; the VP-tree re-reads dirty
  /// rows and re-partitions deterministically). `dirty_shards` are sorted
  /// shard ids under FacetStore::ShardRange(num_items, ·, num_shards) —
  /// the WriteTracker geometry. The receiver is left untouched (in-flight
  /// probes keep it). Quiesced-side only.
  virtual std::unique_ptr<CandidateIndex> Rebuilt(
      const ItemScorer& model, const std::vector<size_t>& dirty_shards,
      size_t num_shards, ThreadPool* pool) const = 0;

  /// True when any of the index's flat arrays is borrowed from a mapped
  /// file rather than owned (ann/index_io.h LoadCandidateIndexMapped).
  /// Borrowed state is pinned by an internal keepalive shared_ptr, which
  /// copies through Rebuilt()/clones, so views never dangle.
  virtual bool mapped() const { return storage_keepalive_ != nullptr; }

 protected:
  CandidateIndex() = default;
  CandidateIndex(const CandidateIndex&) = default;
  CandidateIndex& operator=(const CandidateIndex&) = default;

  size_t num_items_ = 0;
  size_t dim_ = 0;
  /// Pins the backing storage of borrowed buffers (the MappedFile of a
  /// loaded index file). Null for fully owned indexes. Default-copied so
  /// every derived index (Rebuilt, CloneWithNprobe) keeps the mapping
  /// alive for as long as any borrowed span survives.
  std::shared_ptr<const void> storage_keepalive_;
};

/// Builds the index matching `model`'s declared geometry: IVF for kDot,
/// VP-tree for kL2, nullptr for kNone (or an empty catalog) — the caller
/// keeps the exact-sweep path. `pool` may be null (serial build).
std::unique_ptr<CandidateIndex> BuildCandidateIndex(
    const ItemScorer& model, size_t num_items, const AnnIndexOptions& options,
    ThreadPool* pool);

}  // namespace mars

#endif  // MARS_ANN_CANDIDATE_INDEX_H_
