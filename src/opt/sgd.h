// Euclidean SGD helpers with optional norm constraints.
//
// Metric-learning baselines (CML, MetricF, TransCF, LRML, SML, MAR) take
// plain SGD steps followed by a projection onto the unit ball (the relaxed
// constraint ||x|| <= 1 of Eq. 11); MARS replaces this with the strict
// spherical optimizer in sphere.h.
#ifndef MARS_OPT_SGD_H_
#define MARS_OPT_SGD_H_

#include <cstddef>

namespace mars {

/// x -= lr * grad.
void SgdStep(float* x, const float* grad, float lr, size_t n);

/// x -= lr * (grad + l2 * x): SGD with weight decay.
void SgdStepL2(float* x, const float* grad, float lr, float l2, size_t n);

/// SGD step followed by projection onto the unit ball (CML constraint).
void SgdStepBallProjected(float* x, const float* grad, float lr, size_t n);

/// Clips gradient to max norm `max_norm` in place (guards hinge losses from
/// occasional huge triplet gradients). Returns the pre-clip norm.
float ClipGradient(float* grad, size_t n, float max_norm);

}  // namespace mars

#endif  // MARS_OPT_SGD_H_
