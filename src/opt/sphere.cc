#include "opt/sphere.h"

#include <cmath>

#include "common/vec.h"

namespace mars {

void TangentProject(const float* x, float* grad, size_t n) {
  const float radial = Dot(x, grad, n);
  Axpy(-radial, x, grad, n);
}

bool Retract(float* x, const float* z, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] += z[i];
  if (!NormalizeInPlace(x, n)) {
    // Degenerate: x + z vanished; undo the additive part.
    for (size_t i = 0; i < n; ++i) x[i] -= z[i];
    return false;
  }
  return true;
}

float CalibrationFactor(const float* x, const float* grad, size_t n) {
  const float gnorm = Norm(grad, n);
  if (gnorm < 1e-12f) return 1.0f;
  return 1.0f + Dot(x, grad, n) / gnorm;
}

void RiemannianSgdStep(float* x, const float* grad, float lr, size_t n,
                       float* scratch, bool calibrated) {
  const float factor = calibrated ? CalibrationFactor(x, grad, n) : 1.0f;
  // scratch = (I - xxᵀ) grad
  Copy(grad, scratch, n);
  TangentProject(x, scratch, n);
  Scale(-lr * factor, scratch, n);
  Retract(x, scratch, n);
}

}  // namespace mars
