#include "opt/sphere.h"

#include <cmath>

#include "common/vec.h"

namespace mars {

void TangentProject(const float* x, float* grad, size_t n) {
  const float radial = Dot(x, grad, n);
  Axpy(-radial, x, grad, n);
}

bool Retract(float* x, const float* z, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] += z[i];
  if (!NormalizeInPlace(x, n)) {
    // Degenerate: x + z vanished; undo the additive part.
    for (size_t i = 0; i < n; ++i) x[i] -= z[i];
    return false;
  }
  return true;
}

float CalibrationFactor(const float* x, const float* grad, size_t n) {
  const float gnorm = Norm(grad, n);
  if (gnorm < 1e-12f) return 1.0f;
  return 1.0f + Dot(x, grad, n) / gnorm;
}

void RiemannianSgdStep(float* x, const float* grad, float lr, size_t n,
                       float* scratch, bool calibrated) {
  const float factor = calibrated ? CalibrationFactor(x, grad, n) : 1.0f;
  // scratch = (I - xxᵀ) grad
  Copy(grad, scratch, n);
  TangentProject(x, scratch, n);
  Scale(-lr * factor, scratch, n);
  Retract(x, scratch, n);
}

bool FusedRiemannianSgdStep(float* x, const float* grad, float lr, size_t n,
                            bool calibrated) {
  // The tangent step never needs to be materialized: with
  //   radial = x·∇f,  f = 1 + radial/||∇f||  (calibration),
  // the retraction argument is x + z = cx·x + cg·∇f where cg = -η·f and
  // cx = 1 - cg·radial. Two dot products replace the composed path's
  // projection/copy/scale traversals, and the scalar 4-wide reductions
  // vectorize better than a hand-fused dual-accumulator loop (measured in
  // bench/microbench_kernels.cpp — don't "optimize" this back).
  const float radial = Dot(x, grad, n);
  const float gnorm = std::sqrt(Dot(grad, grad, n));
  const float factor =
      (calibrated && gnorm >= 1e-12f) ? 1.0f + radial / gnorm : 1.0f;
  const float cg = -lr * factor;
  const float cx = 1.0f - cg * radial;

  // Norm of the retraction argument (read-only, so a degenerate step can
  // bail out without clobbering x).
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float y0 = cx * x[i] + cg * grad[i];
    const float y1 = cx * x[i + 1] + cg * grad[i + 1];
    const float y2 = cx * x[i + 2] + cg * grad[i + 2];
    const float y3 = cx * x[i + 3] + cg * grad[i + 3];
    acc0 += y0 * y0;
    acc1 += y1 * y1;
    acc2 += y2 * y2;
    acc3 += y3 * y3;
  }
  float norm2 = (acc0 + acc1) + (acc2 + acc3);
  for (; i < n; ++i) {
    const float y = cx * x[i] + cg * grad[i];
    norm2 += y * y;
  }
  const float norm = std::sqrt(norm2);
  if (norm < 1e-12f) return false;

  // Write the retracted point.
  const float inv = 1.0f / norm;
  const float ax = cx * inv;
  const float ag = cg * inv;
  for (i = 0; i < n; ++i) x[i] = ax * x[i] + ag * grad[i];
  return true;
}

}  // namespace mars
