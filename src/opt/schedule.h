// Learning-rate schedules for the training loops.
#ifndef MARS_OPT_SCHEDULE_H_
#define MARS_OPT_SCHEDULE_H_

#include <cstddef>

namespace mars {

/// Supported decay shapes.
enum class LrDecay {
  kConstant,
  kLinear,       // lr0 * (1 - t/T), floored at lr0 * min_factor
  kExponential,  // lr0 * gamma^epoch
};

/// Stateless learning-rate schedule.
class LrSchedule {
 public:
  /// `total_epochs` is only used by the linear decay; `gamma` only by the
  /// exponential decay.
  LrSchedule(double base_lr, LrDecay decay, size_t total_epochs,
             double gamma = 0.95, double min_factor = 0.1);

  /// Learning rate to use during `epoch` (0-based).
  double At(size_t epoch) const;

  double base_lr() const { return base_lr_; }

 private:
  double base_lr_;
  LrDecay decay_;
  size_t total_epochs_;
  double gamma_;
  double min_factor_;
};

}  // namespace mars

#endif  // MARS_OPT_SCHEDULE_H_
