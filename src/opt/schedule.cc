#include "opt/schedule.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mars {

LrSchedule::LrSchedule(double base_lr, LrDecay decay, size_t total_epochs,
                       double gamma, double min_factor)
    : base_lr_(base_lr),
      decay_(decay),
      total_epochs_(std::max<size_t>(1, total_epochs)),
      gamma_(gamma),
      min_factor_(min_factor) {
  MARS_CHECK(base_lr > 0.0);
  MARS_CHECK(gamma > 0.0 && gamma <= 1.0);
  MARS_CHECK(min_factor >= 0.0 && min_factor <= 1.0);
}

double LrSchedule::At(size_t epoch) const {
  switch (decay_) {
    case LrDecay::kConstant:
      return base_lr_;
    case LrDecay::kLinear: {
      const double t = static_cast<double>(epoch) /
                       static_cast<double>(total_epochs_);
      return base_lr_ * std::max(min_factor_, 1.0 - t);
    }
    case LrDecay::kExponential:
      return std::max(base_lr_ * min_factor_,
                      base_lr_ * std::pow(gamma_, static_cast<double>(epoch)));
  }
  return base_lr_;
}

}  // namespace mars
