#include "opt/sgd.h"

#include "common/vec.h"

namespace mars {

void SgdStep(float* x, const float* grad, float lr, size_t n) {
  Axpy(-lr, grad, x, n);
}

void SgdStepL2(float* x, const float* grad, float lr, float l2, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    x[i] -= lr * (grad[i] + l2 * x[i]);
  }
}

void SgdStepBallProjected(float* x, const float* grad, float lr, size_t n) {
  Axpy(-lr, grad, x, n);
  ProjectToUnitBall(x, n);
}

float ClipGradient(float* grad, size_t n, float max_norm) {
  const float norm = Norm(grad, n);
  if (norm > max_norm && norm > 0.0f) {
    Scale(max_norm / norm, grad, n);
  }
  return norm;
}

}  // namespace mars
