// Unit-sphere geometry and the paper's calibrated Riemannian SGD (Sec. IV-B).
//
// The unit hypersphere S^{D-1} = {x : ||x|| = 1} is a Riemannian manifold;
// gradient steps must stay on it. Building blocks:
//
//  * tangent projection:  P_x(g) = (I - x xᵀ) g          (Eq. 20 context)
//  * retraction:          R_x(z) = (x + z) / ||x + z||   ([37])
//  * calibration factor:  1 + xᵀ∇f / ||∇f||              (Eq. 21, from [30])
//
// The calibrated step (Eq. 21) is
//    x ← R_x( -η · (1 + xᵀ∇f/||∇f||) · (I - xxᵀ) ∇f ),
// which scales the update by the angular disagreement between the parameter
// and its Euclidean gradient: parameters pointing away from their target
// direction move further.
//
// Two forms are provided: the composed building blocks below (reference
// semantics, used by tests and ablations) and FusedRiemannianSgdStep, the
// single-pass production kernel. The fused form is written for the
// contiguous FacetStore layout ([entity][facet][dim], common/facet_store.h):
// MARS applies it to the K facet rows of an entity back-to-back, streaming
// one cache-resident block per entity with no scratch allocation.
#ifndef MARS_OPT_SPHERE_H_
#define MARS_OPT_SPHERE_H_

#include <cstddef>

namespace mars {

/// Projects `grad` onto the tangent space of the sphere at `x` in place:
/// grad ← grad - (x·grad) x. `x` must be (approximately) unit norm.
void TangentProject(const float* x, float* grad, size_t n);

/// Retraction: x ← (x + z)/||x + z||. If ||x + z|| ~ 0 the point is left
/// unchanged (returns false).
bool Retract(float* x, const float* z, size_t n);

/// The calibration multiplier 1 + x·g/||g|| of Eq. 21; returns 1 when
/// ||g|| ~ 0. Result lies in [0, 2] for unit-norm x.
float CalibrationFactor(const float* x, const float* grad, size_t n);

/// One calibrated Riemannian SGD step (Eq. 21) on unit vector `x` with
/// Euclidean gradient `grad` and learning rate `lr`. `scratch` must hold
/// `n` floats. When `calibrated` is false this reduces to plain Riemannian
/// SGD (Eq. 20 with retraction instead of the exponential map), which is
/// the ablation baseline.
void RiemannianSgdStep(float* x, const float* grad, float lr, size_t n,
                       float* scratch, bool calibrated = true);

/// Fused single-pass form of RiemannianSgdStep: tangent projection,
/// calibration, and retraction in three traversals of `x`/`grad` with no
/// scratch buffer and no intermediate stores. Algebraically
///
///   x + z = (1 + η·f·(x·∇f)) x − η·f·∇f,   f = calibration factor,
///
/// so the tangent vector never needs to be materialized; the new norm is
/// accumulated while the combination is formed. Matches the composed
/// TangentProject + CalibrationFactor + Retract path to float rounding
/// (~1e-6 relative). This is the training hot-path kernel: MARS calls it
/// 3K times per sampled triplet, on rows that sit contiguously in a
/// FacetStore entity block. Returns false (leaving `x` unchanged) only in
/// the degenerate case where x + z vanishes.
bool FusedRiemannianSgdStep(float* x, const float* grad, float lr, size_t n,
                            bool calibrated = true);

}  // namespace mars

#endif  // MARS_OPT_SPHERE_H_
