// VpTreeIndex unit tests. The tree is an *exact* k-NN structure, so the
// bar is equality with brute force, not recall: every probe must return
// precisely the want nearest items under the pinned (distance², id)
// order. Build determinism (serial == parallel) and the Rebuilt pinning
// contract (dirty-shard rebuild == fresh build over the updated model)
// are byte-level checks on the tree layout itself.
#include "ann/vp_tree_index.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ann/candidate_index.h"
#include "common/facet_store.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/vec.h"
#include "eval/scorer.h"

namespace mars {
namespace {

/// Minimal L2-geometry oracle: Score == -||u - v||², the metric-model
/// contract. PerturbItems rewrites a contiguous id range (a dirty shard).
class L2Scorer : public ItemScorer {
 public:
  L2Scorer(size_t users, size_t items, size_t dim, uint64_t seed)
      : dim_(dim), user_(users * dim), item_(items * dim) {
    Rng rng(seed);
    for (auto& x : user_) x = static_cast<float>(rng.Normal());
    for (auto& x : item_) x = static_cast<float>(rng.Normal());
  }

  float Score(UserId u, ItemId v) const override {
    return -SquaredDistance(user_.data() + u * dim_, item_.data() + v * dim_,
                            dim_);
  }
  IndexGeometry index_geometry() const override { return IndexGeometry::kL2; }
  size_t index_dim() const override { return dim_; }
  void CopyIndexVectors(ItemId begin, ItemId end, float* out) const override {
    Copy(item_.data() + begin * dim_, out, (end - begin) * dim_);
  }
  void WriteIndexQuery(UserId u, float* out) const override {
    Copy(user_.data() + u * dim_, out, dim_);
  }

  void DuplicateItem(ItemId src, ItemId dst) {
    Copy(item_.data() + src * dim_, item_.data() + dst * dim_, dim_);
  }
  void PerturbItems(ItemId begin, ItemId end, uint64_t seed) {
    Rng rng(seed);
    for (size_t i = begin * dim_; i < end * dim_; ++i) {
      item_[i] = static_cast<float>(rng.Normal());
    }
  }
  const float* ItemRow(ItemId v) const { return item_.data() + v * dim_; }
  const float* UserRow(UserId u) const { return user_.data() + u * dim_; }

 private:
  size_t dim_;
  std::vector<float> user_, item_;
};

/// The want nearest item ids under (distance², id) ascending — the order
/// the VP-tree search pins.
std::vector<ItemId> BruteForceKnn(const L2Scorer& model, size_t num_items,
                                  size_t dim, const float* query,
                                  size_t want) {
  std::vector<std::pair<float, ItemId>> ranked(num_items);
  for (ItemId v = 0; v < num_items; ++v) {
    ranked[v] = {SquaredDistance(query, model.ItemRow(v), dim), v};
  }
  std::sort(ranked.begin(), ranked.end());
  ranked.resize(std::min(want, ranked.size()));
  std::vector<ItemId> ids;
  for (const auto& [d2, v] : ranked) ids.push_back(v);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ExpectSameTree(const VpTreeIndex& a, const VpTreeIndex& b) {
  ASSERT_EQ(a.ids().size(), b.ids().size());
  EXPECT_TRUE(std::equal(a.ids().begin(), a.ids().end(), b.ids().begin()));
  ASSERT_EQ(a.radii().size(), b.radii().size());
  EXPECT_TRUE(
      std::equal(a.radii().begin(), a.radii().end(), b.radii().begin()));
}

TEST(VpTreeIndexTest, ProbeReturnsExactNearestNeighbours) {
  const size_t kItems = 400, kDim = 8, kUsers = 12;
  L2Scorer model(kUsers, kItems, kDim, 1);
  // Exact duplicates exercise the (distance², id) tiebreak in both the
  // partition and the search heap.
  model.DuplicateItem(10, 11);
  model.DuplicateItem(10, 12);
  const auto idx =
      VpTreeIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  ASSERT_NE(idx, nullptr);
  EXPECT_STREQ(idx->kind(), "vp_tree");

  for (UserId u = 0; u < kUsers; ++u) {
    for (const size_t want : {1ul, 5ul, 33ul, 150ul}) {
      std::vector<ItemId> got;
      idx->Probe(model.UserRow(u), want, &got);
      ASSERT_EQ(got.size(), want) << "user " << u << " want " << want;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got,
                BruteForceKnn(model, kItems, kDim, model.UserRow(u), want))
          << "user " << u << " want " << want;
    }
  }
}

TEST(VpTreeIndexTest, ProbeEdgeWants) {
  const size_t kItems = 90, kDim = 4;
  L2Scorer model(2, kItems, kDim, 2);
  const auto idx =
      VpTreeIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);

  std::vector<ItemId> out = {42};
  idx->Probe(model.UserRow(0), 0, &out);
  EXPECT_EQ(out.size(), 1u);  // want == 0 appends nothing

  idx->Probe(model.UserRow(0), kItems + 10, &out);  // whole catalog
  ASSERT_EQ(out.size(), 1 + kItems);
  EXPECT_EQ(out[0], 42u);
}

TEST(VpTreeIndexTest, DefaultProbeBatchMatchesSequentialProbes) {
  // The VP-tree keeps CandidateIndex's per-query default ProbeBatch loop;
  // the batched serving path leans on it being exactly the Probe loop —
  // per query, bit-identical candidates, appended without clearing.
  const size_t kItems = 300, kDim = 8, kQueries = 4;
  L2Scorer model(kQueries, kItems, kDim, 9);
  const auto idx =
      VpTreeIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);

  std::vector<float> queries(kQueries * kDim);
  for (size_t q = 0; q < kQueries; ++q) {
    Copy(model.UserRow(static_cast<UserId>(q)), queries.data() + q * kDim,
         kDim);
  }
  const std::vector<size_t> want = {1, 20, kItems, 7};

  std::vector<std::vector<ItemId>> batch(kQueries);
  batch[1] = {42};  // appended, not cleared
  idx->ProbeBatch(queries.data(), kQueries, want.data(), &batch);
  for (size_t q = 0; q < kQueries; ++q) {
    std::vector<ItemId> solo;
    if (q == 1) solo = {42};
    idx->Probe(queries.data() + q * kDim, want[q], &solo);
    EXPECT_EQ(batch[q], solo) << "query " << q;
  }
}

TEST(VpTreeIndexTest, BuildIsDeterministicAndParallelMatchesSerial) {
  const size_t kItems = 700, kDim = 8;
  L2Scorer model(4, kItems, kDim, 3);
  const auto a = VpTreeIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  const auto b = VpTreeIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  ExpectSameTree(*a, *b);

  // Parallel frontier build: disjoint subtree ranges, bit-identical to
  // the serial partition.
  ThreadPool pool(3);
  const auto c = VpTreeIndex::Build(model, kItems, AnnIndexOptions{}, &pool);
  ExpectSameTree(*a, *c);
}

TEST(VpTreeIndexTest, RebuiltDirtyShardsEqualsFreshBuild) {
  const size_t kItems = 560, kDim = 8, kShards = 8;
  L2Scorer model(4, kItems, kDim, 4);
  const auto idx =
      VpTreeIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  const std::vector<ItemId> before_ids(idx->ids().begin(), idx->ids().end());
  const std::vector<float> before_radii(idx->radii().begin(),
                                        idx->radii().end());

  const std::vector<size_t> dirty = {2, 5};
  for (const size_t s : dirty) {
    const auto [begin, end] = FacetStore::ShardRange(kItems, s, kShards);
    model.PerturbItems(begin, end, 200 + s);
  }

  // Clean rows are byte-identical under the tracker contract and the
  // partition is deterministic, so a dirty-shard rebuild must equal a
  // fresh build over the updated model — the pinning the issue requires.
  const auto rebuilt = idx->Rebuilt(model, dirty, kShards, nullptr);
  const auto fresh =
      VpTreeIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  ASSERT_NE(rebuilt, nullptr);
  ExpectSameTree(static_cast<const VpTreeIndex&>(*rebuilt), *fresh);
  // The perturbation really re-split the tree.
  EXPECT_FALSE(std::equal(fresh->ids().begin(), fresh->ids().end(),
                          before_ids.begin(), before_ids.end()));

  // The receiver is untouched (in-flight probes keep it), and a
  // pool-parallel rebuild matches the serial one.
  EXPECT_TRUE(std::equal(idx->ids().begin(), idx->ids().end(),
                         before_ids.begin(), before_ids.end()));
  EXPECT_TRUE(std::equal(idx->radii().begin(), idx->radii().end(),
                         before_radii.begin(), before_radii.end()));
  ThreadPool pool(3);
  const auto parallel = idx->Rebuilt(model, dirty, kShards, &pool);
  ExpectSameTree(static_cast<const VpTreeIndex&>(*parallel), *fresh);
}

TEST(VpTreeIndexTest, RebuiltStillAnswersExactly) {
  const size_t kItems = 320, kDim = 6, kShards = 8;
  L2Scorer model(6, kItems, kDim, 5);
  const auto idx =
      VpTreeIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  model.PerturbItems(0, kItems / kShards, 300);
  const auto rebuilt = idx->Rebuilt(model, {0}, kShards, nullptr);
  for (UserId u = 0; u < 6; ++u) {
    std::vector<ItemId> got;
    rebuilt->Probe(model.UserRow(u), 9, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForceKnn(model, kItems, kDim, model.UserRow(u), 9))
        << "user " << u;
  }
}

TEST(VpTreeIndexTest, FactoryBuildsVpTreeForL2Geometry) {
  const size_t kItems = 64, kDim = 4;
  L2Scorer model(2, kItems, kDim, 6);
  const auto idx =
      BuildCandidateIndex(model, kItems, AnnIndexOptions{}, nullptr);
  ASSERT_NE(idx, nullptr);
  EXPECT_STREQ(idx->kind(), "vp_tree");
}

TEST(VpTreeIndexTest, TinyCatalogsAndLeafOnlyTreesStayExact) {
  // Catalogs at or below the leaf size never partition; the search is a
  // straight scan and must still honour the (distance², id) order.
  for (const size_t items : {1ul, 2ul, 31ul, 33ul}) {
    L2Scorer model(3, items, 5, 7 + items);
    const auto idx =
        VpTreeIndex::Build(model, items, AnnIndexOptions{}, nullptr);
    for (UserId u = 0; u < 3; ++u) {
      const size_t want = std::min<size_t>(4, items);
      std::vector<ItemId> got;
      idx->Probe(model.UserRow(u), want, &got);
      ASSERT_EQ(got.size(), want) << "items " << items;
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, BruteForceKnn(model, items, 5, model.UserRow(u), want))
          << "items " << items << " user " << u;
    }
  }
}

}  // namespace
}  // namespace mars
