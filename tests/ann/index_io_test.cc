// Persisted candidate-index coverage (ann/index_io.h): mapped probes are
// bit-identical to the freshly built index for both kinds, Rebuilt() on a
// mapped index copies-on-write (IVF centroids stay borrowed from the
// mapping) and matches the owned rebuild, the mapping outlives the unlink
// and the load call, and every malformed file — truncation, bad
// magic/version, wrong kind/dim/count for the paired model, tampered
// region tables, checksum mismatches, implausible header-implied sizes,
// semantically corrupt payloads with *fixed-up* checksums — rejects with
// a clean nullptr, never a crash or an allocation blow-up.
#include "ann/index_io.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ann/ivf_index.h"
#include "ann/vp_tree_index.h"
#include "common/facet_store.h"
#include "common/rng.h"
#include "common/vec.h"
#include "eval/scorer.h"
#include "net/protocol.h"
#include "serve/top_k_server.h"

namespace mars {
namespace {

/// Minimal dot-geometry oracle (the ivf_index_test shape): dense tables,
/// Score == dot, PerturbItems rewrites a contiguous id range.
class DotScorer : public ItemScorer {
 public:
  DotScorer(size_t users, size_t items, size_t dim, uint64_t seed)
      : dim_(dim), user_(users * dim), item_(items * dim) {
    Rng rng(seed);
    for (auto& x : user_) x = static_cast<float>(rng.Normal());
    for (auto& x : item_) x = static_cast<float>(rng.Normal());
  }

  float Score(UserId u, ItemId v) const override {
    return Dot(user_.data() + u * dim_, item_.data() + v * dim_, dim_);
  }
  IndexGeometry index_geometry() const override { return IndexGeometry::kDot; }
  size_t index_dim() const override { return dim_; }
  void CopyIndexVectors(ItemId begin, ItemId end, float* out) const override {
    Copy(item_.data() + begin * dim_, out, (end - begin) * dim_);
  }
  void WriteIndexQuery(UserId u, float* out) const override {
    Copy(user_.data() + u * dim_, out, dim_);
  }

  void PerturbItems(ItemId begin, ItemId end, uint64_t seed) {
    Rng rng(seed);
    for (size_t i = begin * dim_; i < end * dim_; ++i) {
      item_[i] = static_cast<float>(rng.Normal());
    }
  }

 private:
  size_t dim_;
  std::vector<float> user_, item_;
};

/// L2 twin of DotScorer for the VP-tree kind.
class L2Scorer : public ItemScorer {
 public:
  L2Scorer(size_t users, size_t items, size_t dim, uint64_t seed)
      : dim_(dim), user_(users * dim), item_(items * dim) {
    Rng rng(seed);
    for (auto& x : user_) x = static_cast<float>(rng.Normal());
    for (auto& x : item_) x = static_cast<float>(rng.Normal());
  }

  float Score(UserId u, ItemId v) const override {
    return -SquaredDistance(user_.data() + u * dim_, item_.data() + v * dim_,
                            dim_);
  }
  IndexGeometry index_geometry() const override { return IndexGeometry::kL2; }
  size_t index_dim() const override { return dim_; }
  void CopyIndexVectors(ItemId begin, ItemId end, float* out) const override {
    Copy(item_.data() + begin * dim_, out, (end - begin) * dim_);
  }
  void WriteIndexQuery(UserId u, float* out) const override {
    Copy(user_.data() + u * dim_, out, dim_);
  }

  void PerturbItems(ItemId begin, ItemId end, uint64_t seed) {
    Rng rng(seed);
    for (size_t i = begin * dim_; i < end * dim_; ++i) {
      item_[i] = static_cast<float>(rng.Normal());
    }
  }

 private:
  size_t dim_;
  std::vector<float> user_, item_;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
void PokeAt(std::string* bytes, size_t offset, T v) {
  ASSERT_LE(offset + sizeof(T), bytes->size());
  std::memcpy(bytes->data() + offset, &v, sizeof(T));
}

template <typename T>
T PeekAt(const std::string& bytes, size_t offset) {
  T v;
  std::memcpy(&v, bytes.data() + offset, sizeof(T));
  return v;
}

// Fixed-header byte offsets (pinned in docs/FORMAT.md): the fuzz tests
// poke these directly, so a silent layout change fails here first.
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffNumItems = 16;
constexpr size_t kOffParams = 32;
constexpr size_t kOffRegionTable = 72;
constexpr size_t kRegionEntryBytes = 24;
constexpr size_t kHeaderBytes = 192;

/// Probes both indexes over the same queries/wants and demands the exact
/// same candidate blocks (same ids, same order).
void ExpectProbesBitIdentical(const ItemScorer& model,
                              const CandidateIndex& a,
                              const CandidateIndex& b) {
  std::vector<float> query(a.dim());
  for (UserId u = 0; u < 10; ++u) {
    for (const size_t want : {size_t{3}, size_t{20}, size_t{64},
                              a.num_items() + 5}) {
      model.WriteIndexQuery(u, query.data());
      std::vector<ItemId> got_a, got_b;
      a.Probe(query.data(), want, &got_a);
      b.Probe(query.data(), want, &got_b);
      EXPECT_EQ(got_a, got_b) << "user " << u << " want " << want;
    }
  }
}

struct IndexIoFixture : public ::testing::Test {
  void SetUp() override {
    path_ = ::testing::TempDir() + "/mars_index_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".annidx";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

constexpr size_t kItems = 300, kDim = 16, kShards = 8;

TEST_F(IndexIoFixture, IvfMappedProbesBitIdenticalToBuilt) {
  DotScorer model(12, kItems, kDim, 1);
  const auto built =
      SphericalIvfIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  ASSERT_NE(built, nullptr);
  ASSERT_TRUE(SaveCandidateIndex(*built, path_));
  const auto mapped = LoadCandidateIndexMapped(path_, model, kItems);
  ASSERT_NE(mapped, nullptr);
  EXPECT_TRUE(mapped->mapped());
  EXPECT_FALSE(built->mapped());
  EXPECT_STREQ(mapped->kind(), "spherical_ivf");

  const auto& mivf = static_cast<const SphericalIvfIndex&>(*mapped);
  EXPECT_EQ(mivf.num_centroids(), built->num_centroids());
  EXPECT_EQ(mivf.nprobe(), built->nprobe());
  // The flat state round-trips bit for bit — probes over it then cannot
  // diverge, but check both layers anyway.
  EXPECT_TRUE(std::equal(mivf.centroids().begin(), mivf.centroids().end(),
                         built->centroids().begin()));
  EXPECT_TRUE(std::equal(mivf.assignments().begin(), mivf.assignments().end(),
                         built->assignments().begin()));
  EXPECT_TRUE(std::equal(mivf.offsets().begin(), mivf.offsets().end(),
                         built->offsets().begin()));
  EXPECT_TRUE(std::equal(mivf.list_ids().begin(), mivf.list_ids().end(),
                         built->list_ids().begin()));
  ExpectProbesBitIdentical(model, *built, *mapped);
}

TEST_F(IndexIoFixture, VpTreeMappedProbesBitIdenticalToBuilt) {
  L2Scorer model(12, kItems, kDim, 2);
  const auto built =
      VpTreeIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  ASSERT_NE(built, nullptr);
  ASSERT_TRUE(SaveCandidateIndex(*built, path_));
  const auto mapped = LoadCandidateIndexMapped(path_, model, kItems);
  ASSERT_NE(mapped, nullptr);
  EXPECT_TRUE(mapped->mapped());
  EXPECT_STREQ(mapped->kind(), "vp_tree");

  const auto& mvp = static_cast<const VpTreeIndex&>(*mapped);
  // The build parameters must survive: leaf_size shapes the node ranges
  // the search walks, the seed keeps a later Rebuilt deterministic.
  EXPECT_EQ(mvp.leaf_size(), built->leaf_size());
  EXPECT_EQ(mvp.parallel_depth(), built->parallel_depth());
  EXPECT_EQ(mvp.seed(), built->seed());
  EXPECT_TRUE(std::equal(mvp.ids().begin(), mvp.ids().end(),
                         built->ids().begin()));
  EXPECT_TRUE(std::equal(mvp.radii().begin(), mvp.radii().end(),
                         built->radii().begin()));
  ExpectProbesBitIdentical(model, *built, *mapped);
}

TEST_F(IndexIoFixture, MappedIndexOutlivesUnlinkAndLoadCall) {
  DotScorer model(12, kItems, kDim, 3);
  const auto built =
      SphericalIvfIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  ASSERT_TRUE(SaveCandidateIndex(*built, path_));
  const auto mapped = LoadCandidateIndexMapped(path_, model, kItems);
  ASSERT_NE(mapped, nullptr);
  // The consume-and-remove restart pattern: the mapping pins the pages.
  std::remove(path_.c_str());
  ExpectProbesBitIdentical(model, *built, *mapped);
}

TEST_F(IndexIoFixture, IvfRebuiltOnMappedCopiesOnWrite) {
  DotScorer model(12, kItems, kDim, 4);
  const auto built =
      SphericalIvfIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  ASSERT_TRUE(SaveCandidateIndex(*built, path_));
  const auto mapped = LoadCandidateIndexMapped(path_, model, kItems);
  ASSERT_NE(mapped, nullptr);
  const auto& mivf = static_cast<const SphericalIvfIndex&>(*mapped);

  const std::vector<size_t> dirty = {1, 5};
  for (const size_t s : dirty) {
    const auto [begin, end] = FacetStore::ShardRange(kItems, s, kShards);
    model.PerturbItems(begin, end, 40 + s);
  }
  const auto from_mapped = mapped->Rebuilt(model, dirty, kShards, nullptr);
  const auto from_built = built->Rebuilt(model, dirty, kShards, nullptr);
  ASSERT_NE(from_mapped, nullptr);
  const auto& rivf = static_cast<const SphericalIvfIndex&>(*from_mapped);
  const auto& oivf = static_cast<const SphericalIvfIndex&>(*from_built);

  // Copy-on-write: only what the absorb must mutate is materialized —
  // the centroids are still the mapped bytes (same address), and the
  // keepalive carried over so the view cannot dangle.
  EXPECT_EQ(rivf.centroids().data(), mivf.centroids().data());
  EXPECT_NE(rivf.assignments().data(), mivf.assignments().data());
  EXPECT_TRUE(from_mapped->mapped());

  // ... and the result equals the rebuild of the owned index bit for bit.
  EXPECT_TRUE(std::equal(rivf.assignments().begin(), rivf.assignments().end(),
                         oivf.assignments().begin()));
  EXPECT_TRUE(std::equal(rivf.offsets().begin(), rivf.offsets().end(),
                         oivf.offsets().begin()));
  EXPECT_TRUE(std::equal(rivf.list_ids().begin(), rivf.list_ids().end(),
                         oivf.list_ids().begin()));
  ExpectProbesBitIdentical(model, *from_built, *from_mapped);

  // The mapped receiver is untouched (in-flight probes keep it) and the
  // mapping can be unlinked under the CoW child.
  EXPECT_TRUE(std::equal(mivf.centroids().begin(), mivf.centroids().end(),
                         built->centroids().begin()));
  std::remove(path_.c_str());
  std::vector<float> query(kDim);
  model.WriteIndexQuery(0, query.data());
  std::vector<ItemId> out;
  from_mapped->Probe(query.data(), 10, &out);
  EXPECT_GE(out.size(), 10u);  // IVF appends whole lists until covered
}

TEST_F(IndexIoFixture, VpTreeRebuiltOnMappedMatchesOwnedRebuild) {
  L2Scorer model(12, kItems, kDim, 5);
  const auto built =
      VpTreeIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  ASSERT_TRUE(SaveCandidateIndex(*built, path_));
  const auto mapped = LoadCandidateIndexMapped(path_, model, kItems);
  ASSERT_NE(mapped, nullptr);

  const std::vector<size_t> dirty = {2, 6};
  for (const size_t s : dirty) {
    const auto [begin, end] = FacetStore::ShardRange(kItems, s, kShards);
    model.PerturbItems(begin, end, 50 + s);
  }
  const auto from_mapped = mapped->Rebuilt(model, dirty, kShards, nullptr);
  const auto from_built = built->Rebuilt(model, dirty, kShards, nullptr);
  ASSERT_NE(from_mapped, nullptr);
  const auto& rvp = static_cast<const VpTreeIndex&>(*from_mapped);
  const auto& ovp = static_cast<const VpTreeIndex&>(*from_built);
  EXPECT_TRUE(std::equal(rvp.ids().begin(), rvp.ids().end(),
                         ovp.ids().begin()));
  EXPECT_TRUE(std::equal(rvp.radii().begin(), rvp.radii().end(),
                         ovp.radii().begin()));
  ExpectProbesBitIdentical(model, *from_built, *from_mapped);
}

TEST_F(IndexIoFixture, MappedIndexServesThroughTopKServer) {
  // The AnnOptions::prebuilt plug: a server on the mapped index answers
  // bit-identically to one on the freshly built index, across misses,
  // hits, and an incremental AbsorbWrites (the CoW Rebuilt inside the
  // serving layer — the borrowed-view path ASAN must cover).
  auto model = std::make_shared<DotScorer>(24, kItems, kDim, 6);
  auto built = SphericalIvfIndex::Build(*model, kItems, AnnIndexOptions{},
                                        nullptr);
  ASSERT_TRUE(SaveCandidateIndex(*built, path_));
  const auto mapped = LoadCandidateIndexMapped(path_, *model, kItems);
  ASSERT_NE(mapped, nullptr);

  TopKServerOptions opts;
  opts.k = 7;
  opts.cache.item_shards = kShards;
  opts.ann.prebuilt = std::move(built);
  TopKServerOptions mopts = opts;
  mopts.ann.prebuilt = mapped;
  TopKServer owned_server(model, 24, kItems, opts);
  TopKServer mapped_server(model, 24, kItems, mopts);
  for (UserId u = 0; u < 12; ++u) {
    const TopKResponse a = owned_server.TopK(u);
    const TopKResponse b = mapped_server.TopK(u);
    EXPECT_EQ(a.items, b.items) << "user " << u;
    EXPECT_EQ(a.scores, b.scores) << "user " << u;
  }

  model->PerturbItems(0, kItems / kShards, 60);
  WriteTracker ta(24, kItems, kShards), tb(24, kItems, kShards);
  ta.MarkItem(0);
  tb.MarkItem(0);
  owned_server.AbsorbWrites(&ta);
  mapped_server.AbsorbWrites(&tb);
  for (UserId u = 0; u < 12; ++u) {
    const TopKResponse a = owned_server.TopK(u);
    const TopKResponse b = mapped_server.TopK(u);
    EXPECT_EQ(a.from_cache, b.from_cache) << "user " << u;
    EXPECT_EQ(a.items, b.items) << "user " << u;
    EXPECT_EQ(a.scores, b.scores) << "user " << u;
  }
}

// --- Rejection suite: every malformed file rejects with nullptr. ----------

struct IndexIoRejectFixture : public IndexIoFixture {
  void SetUp() override {
    IndexIoFixture::SetUp();
    model_ = std::make_unique<DotScorer>(12, kItems, kDim, 7);
    const auto built =
        SphericalIvfIndex::Build(*model_, kItems, AnnIndexOptions{}, nullptr);
    ASSERT_TRUE(SaveCandidateIndex(*built, path_));
    bytes_ = ReadFileBytes(path_);
    ASSERT_GE(bytes_.size(), kHeaderBytes);
  }

  /// Writes the (tampered) bytes back and expects a clean rejection.
  void ExpectRejected() {
    WriteFileBytes(path_, bytes_);
    EXPECT_EQ(LoadCandidateIndexMapped(path_, *model_, kItems), nullptr);
  }

  /// Recomputes region r's checksum over the tampered payload, so the
  /// loader's *semantic* validation — not the CRC — must catch it.
  void FixupCrc(size_t r) {
    const auto offset =
        PeekAt<uint64_t>(bytes_, kOffRegionTable + r * kRegionEntryBytes);
    const auto size =
        PeekAt<uint64_t>(bytes_, kOffRegionTable + r * kRegionEntryBytes + 8);
    PokeAt(&bytes_, kOffRegionTable + r * kRegionEntryBytes + 16,
           Crc32(reinterpret_cast<const uint8_t*>(bytes_.data()) + offset,
                 size));
  }

  std::unique_ptr<DotScorer> model_;
  std::string bytes_;
};

TEST_F(IndexIoRejectFixture, LoadRejectsMissingFile) {
  EXPECT_EQ(LoadCandidateIndexMapped("/no/such/index.annidx", *model_, kItems),
            nullptr);
}

TEST_F(IndexIoRejectFixture, LoadRejectsGarbage) {
  bytes_ = "this is not a candidate index";
  ExpectRejected();
}

TEST_F(IndexIoRejectFixture, LoadRejectsTruncatedHeader) {
  bytes_.resize(kHeaderBytes / 2);
  ExpectRejected();
}

TEST_F(IndexIoRejectFixture, LoadRejectsBadMagic) {
  PokeAt(&bytes_, kOffMagic, uint32_t{0x4953524Eu});
  ExpectRejected();
}

TEST_F(IndexIoRejectFixture, LoadRejectsFutureVersion) {
  PokeAt(&bytes_, kOffVersion, uint32_t{2});
  ExpectRejected();
}

TEST_F(IndexIoRejectFixture, LoadRejectsWrongKindForModelGeometry) {
  // A valid IVF file offered to an L2 model: the pairing check must
  // reject before any region is interpreted.
  const L2Scorer l2(12, kItems, kDim, 8);
  EXPECT_EQ(LoadCandidateIndexMapped(path_, l2, kItems), nullptr);
}

TEST_F(IndexIoRejectFixture, LoadRejectsDimMismatch) {
  const DotScorer narrow(12, kItems, kDim / 2, 9);
  EXPECT_EQ(LoadCandidateIndexMapped(path_, narrow, kItems), nullptr);
}

TEST_F(IndexIoRejectFixture, LoadRejectsItemCountMismatch) {
  EXPECT_EQ(LoadCandidateIndexMapped(path_, *model_, kItems + 1), nullptr);
}

TEST_F(IndexIoRejectFixture, LoadRejectsTruncatedPayload) {
  bytes_.resize(bytes_.size() / 2);
  ExpectRejected();
}

TEST_F(IndexIoRejectFixture, LoadRejectsTrailingBytes) {
  bytes_.append(64, '\0');
  ExpectRejected();
}

TEST_F(IndexIoRejectFixture, LoadRejectsImplausibleHeaderShape) {
  // A header-implied size in the terabytes must reject on the bounds
  // check alone — before any size math, table walk, or allocation, so
  // this can never end in bad_alloc or a wild mmap read.
  PokeAt(&bytes_, kOffNumItems, uint64_t{1} << 40);
  ExpectRejected();
}

TEST_F(IndexIoRejectFixture, LoadRejectsImplausibleIvfParams) {
  // nprobe above num_centroids fails plausibility.
  const auto ncent = PeekAt<uint64_t>(bytes_, kOffParams);
  PokeAt(&bytes_, kOffParams + 8, ncent + 1);
  ExpectRejected();
}

TEST_F(IndexIoRejectFixture, LoadRejectsTamperedRegionTable) {
  // Point region 1 somewhere else: the stored table must equal the
  // layout the geometry implies, so a crafted table cannot alias
  // regions on top of each other.
  const auto offset =
      PeekAt<uint64_t>(bytes_, kOffRegionTable + kRegionEntryBytes);
  PokeAt(&bytes_, kOffRegionTable + kRegionEntryBytes, offset + 64);
  ExpectRejected();
}

TEST_F(IndexIoRejectFixture, LoadRejectsChecksumMismatch) {
  // One flipped payload byte, header untouched: only the CRC can see it.
  const auto offset = PeekAt<uint64_t>(bytes_, kOffRegionTable);
  bytes_[offset] = static_cast<char>(bytes_[offset] ^ 0x40);
  ExpectRejected();
}

TEST_F(IndexIoRejectFixture, LoadRejectsCorruptCsrWithFixedUpChecksum) {
  // offsets[0] = 1 with a recomputed CRC: the checksum passes, so the
  // CSR invariant check is the last line of defense against an index
  // whose probes would read outside the mapping.
  const auto offsets_at =
      PeekAt<uint64_t>(bytes_, kOffRegionTable + 2 * kRegionEntryBytes);
  PokeAt(&bytes_, offsets_at, uint32_t{1});
  FixupCrc(2);
  ExpectRejected();
}

TEST_F(IndexIoRejectFixture, LoadRejectsOutOfRangeListIdWithFixedUpChecksum) {
  const auto lists_at =
      PeekAt<uint64_t>(bytes_, kOffRegionTable + 3 * kRegionEntryBytes);
  PokeAt(&bytes_, lists_at, uint32_t{kItems});  // one past the catalog
  FixupCrc(3);
  ExpectRejected();
}

TEST_F(IndexIoRejectFixture, LoadRejectsCorruptVpPermutationWithFixedCrc) {
  // VP-tree variant: duplicate an id in the permutation (checksum fixed
  // up) — the search gathers vectors by id, so the permutation check is
  // what keeps a colliding file memory-safe.
  const L2Scorer l2(12, kItems, kDim, 10);
  const auto built =
      VpTreeIndex::Build(l2, kItems, AnnIndexOptions{}, nullptr);
  ASSERT_TRUE(SaveCandidateIndex(*built, path_));
  bytes_ = ReadFileBytes(path_);
  const auto ids_at =
      PeekAt<uint64_t>(bytes_, kOffRegionTable + kRegionEntryBytes);
  const auto first = PeekAt<uint32_t>(bytes_, ids_at);
  PokeAt(&bytes_, ids_at + 4, first);  // ids[1] = ids[0]
  FixupCrc(1);
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCandidateIndexMapped(path_, l2, kItems), nullptr);
}

}  // namespace
}  // namespace mars
