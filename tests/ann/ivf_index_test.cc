// SphericalIvfIndex unit tests: list/assignment invariants, probe
// coverage, build determinism (serial == parallel), and the incremental
// Rebuilt pinning contract (reassigning only the dirty shards gives
// bit-identically the same index as reassigning everything, because the
// centroids are reused).
#include "ann/ivf_index.h"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ann/candidate_index.h"
#include "common/facet_store.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/vec.h"
#include "eval/scorer.h"

namespace mars {
namespace {

/// Minimal dot-geometry oracle: dense user/item tables, Score == dot.
/// PerturbItems rewrites a contiguous id range, the shape of a dirty
/// WriteTracker shard.
class DotScorer : public ItemScorer {
 public:
  DotScorer(size_t users, size_t items, size_t dim, uint64_t seed)
      : dim_(dim), user_(users * dim), item_(items * dim) {
    Rng rng(seed);
    for (auto& x : user_) x = static_cast<float>(rng.Normal());
    for (auto& x : item_) x = static_cast<float>(rng.Normal());
  }

  float Score(UserId u, ItemId v) const override {
    return Dot(user_.data() + u * dim_, item_.data() + v * dim_, dim_);
  }
  IndexGeometry index_geometry() const override { return IndexGeometry::kDot; }
  size_t index_dim() const override { return dim_; }
  void CopyIndexVectors(ItemId begin, ItemId end, float* out) const override {
    Copy(item_.data() + begin * dim_, out, (end - begin) * dim_);
  }
  void WriteIndexQuery(UserId u, float* out) const override {
    Copy(user_.data() + u * dim_, out, dim_);
  }

  void PerturbItems(ItemId begin, ItemId end, uint64_t seed) {
    Rng rng(seed);
    for (size_t i = begin * dim_; i < end * dim_; ++i) {
      item_[i] = static_cast<float>(rng.Normal());
    }
  }

 private:
  size_t dim_;
  std::vector<float> user_, item_;
};

void ExpectSameIndex(const SphericalIvfIndex& a, const SphericalIvfIndex& b) {
  ASSERT_EQ(a.num_items(), b.num_items());
  ASSERT_EQ(a.num_centroids(), b.num_centroids());
  EXPECT_EQ(a.nprobe(), b.nprobe());
  const auto aa = a.assignments();
  const auto ab = b.assignments();
  ASSERT_EQ(aa.size(), ab.size());
  EXPECT_TRUE(std::equal(aa.begin(), aa.end(), ab.begin()));
  for (size_t c = 0; c < a.num_centroids(); ++c) {
    const auto la = a.List(c);
    const auto lb = b.List(c);
    ASSERT_EQ(la.size(), lb.size()) << "list " << c;
    EXPECT_TRUE(std::equal(la.begin(), la.end(), lb.begin())) << "list " << c;
  }
}

TEST(SphericalIvfIndexTest, ListsPartitionCatalogAscending) {
  const size_t kItems = 500, kDim = 8;
  DotScorer model(10, kItems, kDim, 1);
  const auto idx =
      SphericalIvfIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  ASSERT_NE(idx, nullptr);
  EXPECT_STREQ(idx->kind(), "spherical_ivf");
  EXPECT_EQ(idx->num_items(), kItems);
  EXPECT_EQ(idx->dim(), kDim);
  // Auto centroid count ~ sqrt(N), auto nprobe in [2, ncent].
  EXPECT_GE(idx->num_centroids(), 8u);
  EXPECT_LE(idx->num_centroids(), kItems);
  EXPECT_GE(idx->nprobe(), 1u);
  EXPECT_LE(idx->nprobe(), idx->num_centroids());

  std::vector<int> seen(kItems, 0);
  size_t total = 0;
  for (size_t c = 0; c < idx->num_centroids(); ++c) {
    const auto list = idx->List(c);
    total += list.size();
    for (size_t i = 0; i < list.size(); ++i) {
      ASSERT_LT(list[i], kItems);
      ++seen[list[i]];
      EXPECT_EQ(idx->assignments()[list[i]], c);
      if (i > 0) EXPECT_LT(list[i - 1], list[i]);  // ascending within list
    }
  }
  EXPECT_EQ(total, kItems);
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int n) { return n == 1; }));
}

TEST(SphericalIvfIndexTest, ProbeMeetsWantWithUniqueIds) {
  const size_t kItems = 400, kDim = 8;
  DotScorer model(10, kItems, kDim, 2);
  const auto idx =
      SphericalIvfIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  std::vector<float> query(kDim);
  model.WriteIndexQuery(3, query.data());

  // want beyond the default nprobe lists' population: the probe must keep
  // extending into next-best lists instead of returning short.
  for (const size_t want : {1ul, 25ul, kItems / 2, kItems - 1}) {
    std::vector<ItemId> out;
    idx->Probe(query.data(), want, &out);
    EXPECT_GE(out.size(), want) << "want " << want;
    std::vector<ItemId> sorted = out;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << "duplicate candidate at want " << want;
    EXPECT_LT(sorted.back(), kItems);
  }

  // want >= catalog: the whole catalog, appended without clearing.
  std::vector<ItemId> out = {7};
  idx->Probe(query.data(), kItems, &out);
  ASSERT_EQ(out.size(), kItems + 1);
  EXPECT_EQ(out[0], 7u);
}

TEST(SphericalIvfIndexTest, FullProbeCloneCoversCatalogBelowWant) {
  const size_t kItems = 300, kDim = 6;
  DotScorer model(4, kItems, kDim, 3);
  const auto idx =
      SphericalIvfIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  const auto full = idx->CloneWithNprobe(1u << 20);  // clamped to ncent
  EXPECT_EQ(full->nprobe(), full->num_centroids());
  std::vector<float> query(kDim);
  model.WriteIndexQuery(0, query.data());
  std::vector<ItemId> out;
  full->Probe(query.data(), /*want=*/5, &out);  // nprobe floor, not want
  EXPECT_EQ(out.size(), kItems);
}

TEST(SphericalIvfIndexTest, BuildIsDeterministicAndParallelMatchesSerial) {
  const size_t kItems = 600, kDim = 10;
  DotScorer model(10, kItems, kDim, 4);
  const auto a =
      SphericalIvfIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  const auto b =
      SphericalIvfIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  ExpectSameIndex(*a, *b);

  ThreadPool pool(3);
  const auto c =
      SphericalIvfIndex::Build(model, kItems, AnnIndexOptions{}, &pool);
  ExpectSameIndex(*a, *c);
}

TEST(SphericalIvfIndexTest, RebuiltDirtyShardsEqualsRebuiltAll) {
  const size_t kItems = 480, kDim = 8, kShards = 8;
  DotScorer model(10, kItems, kDim, 5);
  const auto idx =
      SphericalIvfIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);
  const std::vector<uint32_t> before(idx->assignments().begin(),
                                     idx->assignments().end());

  // Dirty exactly shards {1, 3}: rewrite their item ranges.
  const std::vector<size_t> dirty = {1, 3};
  for (const size_t s : dirty) {
    const auto [begin, end] = FacetStore::ShardRange(kItems, s, kShards);
    model.PerturbItems(begin, end, 100 + s);
  }

  std::vector<size_t> all_shards(kShards);
  for (size_t s = 0; s < kShards; ++s) all_shards[s] = s;
  const auto incremental = idx->Rebuilt(model, dirty, kShards, nullptr);
  const auto full = idx->Rebuilt(model, all_shards, kShards, nullptr);
  ASSERT_NE(incremental, nullptr);
  ASSERT_NE(full, nullptr);
  // Centroids are reused, clean rows are byte-identical, so reassigning
  // only the dirty shards pins the same index as reassigning everything.
  ExpectSameIndex(static_cast<const SphericalIvfIndex&>(*incremental),
                  static_cast<const SphericalIvfIndex&>(*full));
  // The dirty rows really moved the assignment (otherwise the pin above
  // is vacuous).
  const auto inc_assign =
      static_cast<const SphericalIvfIndex&>(*incremental).assignments();
  EXPECT_FALSE(std::equal(inc_assign.begin(), inc_assign.end(),
                          before.begin(), before.end()));
  // The receiver is untouched: in-flight probes keep the old epoch.
  const auto idx_assign = idx->assignments();
  EXPECT_TRUE(std::equal(idx_assign.begin(), idx_assign.end(),
                         before.begin(), before.end()));

  // Parallel reassignment of the dirty shards matches the serial one.
  ThreadPool pool(3);
  const auto parallel = idx->Rebuilt(model, dirty, kShards, &pool);
  ExpectSameIndex(static_cast<const SphericalIvfIndex&>(*incremental),
                  static_cast<const SphericalIvfIndex&>(*parallel));
}

TEST(SphericalIvfIndexTest, ProbeBatchMatchesSequentialProbes) {
  // The shared-centroid-scan override: per query, the batched candidate
  // set must be bit-identical to a solo Probe — including the mixed
  // want-widths the serving coalescer produces (exclusion-widened
  // overfetch per user) and the want >= catalog full-append path.
  const size_t kItems = 400, kDim = 8, kQueries = 5;
  DotScorer model(kQueries, kItems, kDim, 8);
  const auto idx =
      SphericalIvfIndex::Build(model, kItems, AnnIndexOptions{}, nullptr);

  std::vector<float> queries(kQueries * kDim);
  for (size_t q = 0; q < kQueries; ++q) {
    model.WriteIndexQuery(static_cast<UserId>(q), queries.data() + q * kDim);
  }
  const std::vector<size_t> want = {1, 25, kItems / 2, kItems, 10};

  std::vector<std::vector<ItemId>> batch(kQueries);
  batch[2] = {7};  // appended, not cleared — same contract as Probe
  idx->ProbeBatch(queries.data(), kQueries, want.data(), &batch);
  for (size_t q = 0; q < kQueries; ++q) {
    std::vector<ItemId> solo;
    if (q == 2) solo = {7};
    idx->Probe(queries.data() + q * kDim, want[q], &solo);
    EXPECT_EQ(batch[q], solo) << "query " << q;
  }

  // Degenerate batch sizes: empty is a no-op, one query equals one Probe.
  std::vector<std::vector<ItemId>> none;
  idx->ProbeBatch(queries.data(), 0, want.data(), &none);
  std::vector<std::vector<ItemId>> one(1);
  idx->ProbeBatch(queries.data(), 1, want.data(), &one);
  std::vector<ItemId> solo0;
  idx->Probe(queries.data(), want[0], &solo0);
  EXPECT_EQ(one[0], solo0);
}

TEST(SphericalIvfIndexTest, FactoryBuildsIvfForDotGeometry) {
  const size_t kItems = 120, kDim = 4;
  DotScorer model(4, kItems, kDim, 6);
  const auto idx = BuildCandidateIndex(model, kItems, AnnIndexOptions{},
                                       nullptr);
  ASSERT_NE(idx, nullptr);
  EXPECT_STREQ(idx->kind(), "spherical_ivf");

  // kNone models (the ItemScorer default) get no index: the serving layer
  // keeps its exact sweep.
  class PlainScorer : public ItemScorer {
   public:
    float Score(UserId u, ItemId v) const override {
      return static_cast<float>(u + v);
    }
  };
  PlainScorer plain;
  EXPECT_EQ(BuildCandidateIndex(plain, kItems, AnnIndexOptions{}, nullptr),
            nullptr);
}

TEST(SphericalIvfIndexTest, ExplicitOptionsAreClampedToCatalog) {
  const size_t kItems = 40, kDim = 4;
  DotScorer model(4, kItems, kDim, 7);
  AnnIndexOptions options;
  options.num_centroids = 1000;  // > catalog
  options.nprobe = 1000;
  const auto idx = SphericalIvfIndex::Build(model, kItems, options, nullptr);
  EXPECT_EQ(idx->num_centroids(), kItems);
  EXPECT_EQ(idx->nprobe(), idx->num_centroids());
}

}  // namespace
}  // namespace mars
