#include "core/facet_init.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/vec.h"
#include "data/synthetic.h"
#include "models/nmf.h"

namespace mars {
namespace {

std::shared_ptr<ImplicitDataset> SmallDataset() {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 50;
  cfg.target_interactions = 700;
  cfg.num_facets = 3;
  cfg.num_categories = 6;
  cfg.seed = 41;
  return GenerateSyntheticDataset(cfg);
}

TEST(FacetInitTest, UniformInitIsAllZeros) {
  const Matrix logits = InitThetaLogitsUniform(10, 4);
  EXPECT_EQ(logits.rows(), 10u);
  EXPECT_EQ(logits.cols(), 4u);
  for (size_t i = 0; i < logits.size(); ++i) {
    EXPECT_FLOAT_EQ(logits.data()[i], 0.0f);
  }
}

TEST(FacetInitTest, NmfInitShape) {
  const auto ds = SmallDataset();
  const Matrix logits = InitThetaLogitsFromNmf(*ds, 4, 10, 7);
  EXPECT_EQ(logits.rows(), ds->num_users());
  EXPECT_EQ(logits.cols(), 4u);
}

TEST(FacetInitTest, SoftmaxOfLogitsMatchesBlendedNmfMixture) {
  const auto ds = SmallDataset();
  const size_t kf = 3;
  const double blend = 0.4;
  const Matrix logits = InitThetaLogitsFromNmf(*ds, kf, 10, 7, blend);
  // The helper seeds NMF with the seed passed in; recompute with that seed.
  const Matrix w_same = NmfUserFactors(*ds, kf, 10, 7);
  std::vector<float> theta(kf);
  for (UserId u = 0; u < ds->num_users(); u += 11) {
    Softmax(logits.Row(u), theta.data(), kf);
    float total = 0.0f;
    for (size_t k = 0; k < kf; ++k) total += w_same.At(u, k);
    if (total <= 1e-6f) continue;
    for (size_t k = 0; k < kf; ++k) {
      const float expected = static_cast<float>(
          (1.0 - blend) * (w_same.At(u, k) / total) + blend / kf);
      EXPECT_NEAR(theta[k], expected, 0.01f)
          << "user " << u << " facet " << k;
    }
  }
}

TEST(FacetInitTest, BlendKeepsEveryFacetAlive) {
  const auto ds = SmallDataset();
  const size_t kf = 4;
  const Matrix logits = InitThetaLogitsFromNmf(*ds, kf, 10, 7, 0.5);
  std::vector<float> theta(kf);
  for (UserId u = 0; u < ds->num_users(); ++u) {
    Softmax(logits.Row(u), theta.data(), kf);
    for (size_t k = 0; k < kf; ++k) {
      // Uniform share is 0.25; with blend 0.5 no facet can start below
      // 0.125 (minus epsilon slack).
      EXPECT_GT(theta[k], 0.1f) << "user " << u << " facet " << k;
    }
  }
}

TEST(FacetInitTest, LogitsAreFinite) {
  const auto ds = SmallDataset();
  const Matrix logits = InitThetaLogitsFromNmf(*ds, 4, 5, 13);
  for (size_t i = 0; i < logits.size(); ++i) {
    EXPECT_TRUE(std::isfinite(logits.data()[i]));
  }
}

}  // namespace
}  // namespace mars
