#include "core/mars.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/vec.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace mars {
namespace {

constexpr double kChanceHr10 = 10.0 / 101.0;

class MarsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig cfg;
    cfg.num_users = 150;
    cfg.num_items = 120;
    cfg.target_interactions = 2500;
    cfg.num_facets = 3;
    cfg.num_categories = 9;
    cfg.affinity_sharpness = 10.0;
    cfg.seed = 71;
    full_ = GenerateSyntheticDataset(cfg);
    split_ = MakeLeaveOneOutSplit(*full_, 5);
    evaluator_ = std::make_unique<Evaluator>(*split_.train, split_.test_item,
                                             EvalProtocol{});
  }

  MultiFacetConfig SmallConfig() const {
    MultiFacetConfig cfg;
    cfg.dim = 16;
    cfg.num_facets = 3;
    cfg.theta_nmf_iterations = 8;
    return cfg;
  }

  TrainOptions FastOptions() const {
    TrainOptions opts;
    opts.epochs = 10;
    opts.learning_rate = 0.1;
    opts.seed = 3;
    return opts;
  }

  std::shared_ptr<ImplicitDataset> full_;
  LeaveOneOutSplit split_;
  std::unique_ptr<Evaluator> evaluator_;
};

TEST_F(MarsFixture, BeatsChance) {
  Mars model(SmallConfig());
  model.Fit(*split_.train, FastOptions());
  EXPECT_GT(evaluator_->Evaluate(model).hr10, kChanceHr10 * 1.5);
}

TEST_F(MarsFixture, AllFacetEmbeddingsAreUnitNorm) {
  // The strict spherical constraint of Eq. 17/19: ||u^k|| = 1 exactly
  // (up to float rounding) after training — the paper's core claim about
  // avoiding "lazy" norm behaviors.
  Mars model(SmallConfig());
  model.Fit(*split_.train, FastOptions());
  for (UserId u = 0; u < full_->num_users(); u += 13) {
    for (size_t k = 0; k < 3; ++k) {
      const auto e = model.UserFacetEmbedding(u, k);
      EXPECT_NEAR(Norm(e.data(), e.size()), 1.0f, 1e-3f);
    }
  }
  for (ItemId v = 0; v < full_->num_items(); v += 13) {
    for (size_t k = 0; k < 3; ++k) {
      const auto e = model.ItemFacetEmbedding(v, k);
      EXPECT_NEAR(Norm(e.data(), e.size()), 1.0f, 1e-3f);
    }
  }
}

TEST_F(MarsFixture, ScoresAreBoundedByOne) {
  // Weighted cosine similarities: |g| ≤ Σθ = 1.
  Mars model(SmallConfig());
  model.Fit(*split_.train, FastOptions());
  for (UserId u = 0; u < 20; ++u) {
    for (ItemId v = 0; v < 20; ++v) {
      const float s = model.Score(u, v);
      EXPECT_GE(s, -1.0f - 1e-4f);
      EXPECT_LE(s, 1.0f + 1e-4f);
    }
  }
}

TEST_F(MarsFixture, UncalibratedVariantTrains) {
  MarsOptions mopts;
  mopts.calibrated = false;
  Mars model(SmallConfig(), mopts);
  model.Fit(*split_.train, FastOptions());
  EXPECT_GT(evaluator_->Evaluate(model).hr10, kChanceHr10 * 1.5);
}

TEST_F(MarsFixture, AsPrintedFacetSignTrains) {
  MarsOptions mopts;
  mopts.facet_sign = FacetLossSign::kAsPrinted;
  Mars model(SmallConfig(), mopts);
  model.Fit(*split_.train, FastOptions());
  // Still learns (the facet term is small), just with inverted separation.
  EXPECT_GT(evaluator_->Evaluate(model).hr10, kChanceHr10);
}

TEST_F(MarsFixture, CorrectedFacetSignSeparatesFacetsMore) {
  // Measure mean |cos| between facet embeddings of the same item: the
  // corrected sign should yield less facet collinearity than as-printed.
  auto mean_facet_cos = [&](FacetLossSign sign) {
    MarsOptions mopts;
    mopts.facet_sign = sign;
    MultiFacetConfig cfg = SmallConfig();
    cfg.lambda_facet = 0.1;  // emphasize the term for the test
    Mars model(cfg, mopts);
    model.Fit(*split_.train, FastOptions());
    double total = 0.0;
    size_t n = 0;
    for (ItemId v = 0; v < full_->num_items(); v += 5) {
      for (size_t i = 0; i < 3; ++i) {
        for (size_t j = i + 1; j < 3; ++j) {
          const auto a = model.ItemFacetEmbedding(v, i);
          const auto b = model.ItemFacetEmbedding(v, j);
          total += Dot(a.data(), b.data(), a.size());
          ++n;
        }
      }
    }
    return total / static_cast<double>(n);
  };
  const double separated = mean_facet_cos(FacetLossSign::kSeparate);
  const double printed = mean_facet_cos(FacetLossSign::kAsPrinted);
  EXPECT_LT(separated, printed);
}

TEST_F(MarsFixture, FacetWeightsAreDistribution) {
  Mars model(SmallConfig());
  model.Fit(*split_.train, FastOptions());
  for (UserId u = 0; u < 20; ++u) {
    const auto theta = model.FacetWeights(u);
    float sum = 0.0f;
    for (float t : theta) {
      EXPECT_GE(t, 0.0f);
      sum += t;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST_F(MarsFixture, ScoreItemsMatchesScore) {
  Mars model(SmallConfig());
  model.Fit(*split_.train, FastOptions());
  std::vector<ItemId> items = {1, 2, 30, 77};
  std::vector<float> batch(items.size());
  model.ScoreItems(5, items, batch.data());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_NEAR(batch[i], model.Score(5, items[i]), 1e-5f);
  }
}

TEST_F(MarsFixture, MarginsInUnitInterval) {
  Mars model(SmallConfig());
  model.Fit(*split_.train, FastOptions());
  for (UserId u = 0; u < full_->num_users(); ++u) {
    EXPECT_GE(model.MarginOf(u), 0.0f);
    EXPECT_LE(model.MarginOf(u), 1.0f);
  }
}

TEST_F(MarsFixture, DeterministicTraining) {
  Mars a(SmallConfig());
  Mars b(SmallConfig());
  TrainOptions opts = FastOptions();
  opts.epochs = 3;
  a.Fit(*split_.train, opts);
  b.Fit(*split_.train, opts);
  for (UserId u = 0; u < 5; ++u) {
    for (ItemId v = 0; v < 5; ++v) {
      EXPECT_FLOAT_EQ(a.Score(u, v), b.Score(u, v));
    }
  }
}

TEST_F(MarsFixture, UniformSamplingAblationTrains) {
  MultiFacetConfig cfg = SmallConfig();
  cfg.biased_sampling = false;
  Mars model(cfg);
  model.Fit(*split_.train, FastOptions());
  EXPECT_GT(evaluator_->Evaluate(model).hr10, kChanceHr10 * 1.3);
}

TEST_F(MarsFixture, SingleFacetSphericalTrains) {
  MultiFacetConfig cfg = SmallConfig();
  cfg.num_facets = 1;
  cfg.lambda_facet = 0.0;
  Mars model(cfg);
  model.Fit(*split_.train, FastOptions());
  EXPECT_GT(evaluator_->Evaluate(model).hr10, kChanceHr10 * 1.3);
}

TEST_F(MarsFixture, LearnableRadiiStayPositiveAndFinite) {
  MarsOptions mopts;
  mopts.learn_radius = true;
  Mars model(SmallConfig(), mopts);
  model.Fit(*split_.train, FastOptions());
  const auto& radii = model.FacetRadii();
  ASSERT_EQ(radii.size(), 3u);
  for (float r : radii) {
    EXPECT_GE(r, 0.1f);
    EXPECT_LE(r, 10.0f);
    EXPECT_TRUE(std::isfinite(r));
  }
  EXPECT_GT(evaluator_->Evaluate(model).hr10, kChanceHr10 * 1.3);
}

TEST_F(MarsFixture, RadiiDefaultToOneWhenDisabled) {
  Mars model(SmallConfig());
  model.Fit(*split_.train, FastOptions());
  for (float r : model.FacetRadii()) {
    EXPECT_FLOAT_EQ(r, 1.0f);
  }
}

TEST_F(MarsFixture, LearnedRadiiChangeFromInit) {
  MarsOptions mopts;
  mopts.learn_radius = true;
  Mars model(SmallConfig(), mopts);
  model.Fit(*split_.train, FastOptions());
  bool any_moved = false;
  for (float r : model.FacetRadii()) {
    if (std::abs(r - 1.0f) > 1e-4f) any_moved = true;
  }
  EXPECT_TRUE(any_moved);
}

}  // namespace
}  // namespace mars
