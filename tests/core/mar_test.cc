#include "core/mar.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/vec.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace mars {
namespace {

constexpr double kChanceHr10 = 10.0 / 101.0;

class MarFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig cfg;
    cfg.num_users = 150;
    cfg.num_items = 120;
    cfg.target_interactions = 2500;
    cfg.num_facets = 3;
    cfg.num_categories = 9;
    cfg.affinity_sharpness = 10.0;
    cfg.seed = 71;
    full_ = GenerateSyntheticDataset(cfg);
    split_ = MakeLeaveOneOutSplit(*full_, 5);
    evaluator_ = std::make_unique<Evaluator>(*split_.train, split_.test_item,
                                             EvalProtocol{});
  }

  MultiFacetConfig SmallConfig() const {
    MultiFacetConfig cfg;
    cfg.dim = 16;
    cfg.num_facets = 3;
    cfg.theta_nmf_iterations = 8;
    return cfg;
  }

  TrainOptions FastOptions() const {
    TrainOptions opts;
    opts.epochs = 10;
    opts.learning_rate = 0.05;
    opts.seed = 3;
    return opts;
  }

  std::shared_ptr<ImplicitDataset> full_;
  LeaveOneOutSplit split_;
  std::unique_ptr<Evaluator> evaluator_;
};

TEST_F(MarFixture, BeatsChanceProjected) {
  Mar model(SmallConfig(), FacetParam::kProjected);
  model.Fit(*split_.train, FastOptions());
  EXPECT_GT(evaluator_->Evaluate(model).hr10, kChanceHr10 * 1.5);
}

TEST_F(MarFixture, BeatsChanceFreeMode) {
  Mar model(SmallConfig(), FacetParam::kFree);
  model.Fit(*split_.train, FastOptions());
  EXPECT_GT(evaluator_->Evaluate(model).hr10, kChanceHr10 * 1.5);
}

TEST_F(MarFixture, FacetWeightsAreDistribution) {
  Mar model(SmallConfig());
  model.Fit(*split_.train, FastOptions());
  for (UserId u = 0; u < 20; ++u) {
    const auto theta = model.FacetWeights(u);
    ASSERT_EQ(theta.size(), 3u);
    float sum = 0.0f;
    for (float t : theta) {
      EXPECT_GE(t, 0.0f);
      sum += t;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST_F(MarFixture, FacetEmbeddingsRespectBallConstraint) {
  Mar model(SmallConfig());
  model.Fit(*split_.train, FastOptions());
  for (UserId u = 0; u < 30; u += 3) {
    for (size_t k = 0; k < 3; ++k) {
      const auto e = model.UserFacetEmbedding(u, k);
      EXPECT_LE(Norm(e.data(), e.size()), 1.0f + 1e-4f);
    }
  }
  for (ItemId v = 0; v < 30; v += 3) {
    for (size_t k = 0; k < 3; ++k) {
      const auto e = model.ItemFacetEmbedding(v, k);
      EXPECT_LE(Norm(e.data(), e.size()), 1.0f + 1e-4f);
    }
  }
}

TEST_F(MarFixture, AdaptiveMarginsInRange) {
  Mar model(SmallConfig());
  model.Fit(*split_.train, FastOptions());
  for (UserId u = 0; u < full_->num_users(); ++u) {
    EXPECT_GE(model.MarginOf(u), 0.0f);
    EXPECT_LE(model.MarginOf(u), 1.0f);
  }
}

TEST_F(MarFixture, FixedMarginModeUsesConfiguredValue) {
  MultiFacetConfig cfg = SmallConfig();
  cfg.adaptive_margin = false;
  cfg.fixed_margin = 0.37;
  Mar model(cfg);
  model.Fit(*split_.train, FastOptions());
  for (UserId u = 0; u < 10; ++u) {
    EXPECT_FLOAT_EQ(model.MarginOf(u), 0.37f);
  }
}

TEST_F(MarFixture, ScoreItemsMatchesScore) {
  Mar model(SmallConfig());
  model.Fit(*split_.train, FastOptions());
  std::vector<ItemId> items = {0, 5, 17, 42, 99};
  std::vector<float> batch(items.size());
  model.ScoreItems(3, items, batch.data());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_NEAR(batch[i], model.Score(3, items[i]), 1e-5f);
  }
}

TEST_F(MarFixture, ScoresAreNegatedWeightedDistances) {
  Mar model(SmallConfig());
  model.Fit(*split_.train, FastOptions());
  const UserId u = 7;
  const ItemId v = 13;
  const auto theta = model.FacetWeights(u);
  float expected = 0.0f;
  for (size_t k = 0; k < 3; ++k) {
    const auto ue = model.UserFacetEmbedding(u, k);
    const auto ve = model.ItemFacetEmbedding(v, k);
    expected -= theta[k] * SquaredDistance(ue, ve);
  }
  EXPECT_NEAR(model.Score(u, v), expected, 1e-4f);
}

TEST_F(MarFixture, SingleFacetDegeneratesToMetricLearning) {
  MultiFacetConfig cfg = SmallConfig();
  cfg.num_facets = 1;
  cfg.lambda_facet = 0.0;
  Mar model(cfg);
  model.Fit(*split_.train, FastOptions());
  EXPECT_GT(evaluator_->Evaluate(model).hr10, kChanceHr10 * 1.3);
}

TEST_F(MarFixture, MultiFacetBeatsSingleFacet) {
  // The core claim of the paper (Table IV): K > 1 helps on multi-facet
  // data. Compare K=3 vs K=1 on identical training budgets.
  MultiFacetConfig single = SmallConfig();
  single.num_facets = 1;
  Mar mar1(single);
  mar1.Fit(*split_.train, FastOptions());
  const double hr1 = evaluator_->Evaluate(mar1).hr10;

  Mar mar3(SmallConfig());
  mar3.Fit(*split_.train, FastOptions());
  const double hr3 = evaluator_->Evaluate(mar3).hr10;
  EXPECT_GT(hr3, hr1 * 0.95);  // must not be worse beyond noise
}

TEST_F(MarFixture, UniformThetaInitAlsoWorks) {
  MultiFacetConfig cfg = SmallConfig();
  cfg.theta_init_nmf = false;
  Mar model(cfg);
  model.Fit(*split_.train, FastOptions());
  EXPECT_GT(evaluator_->Evaluate(model).hr10, kChanceHr10 * 1.3);
}

TEST_F(MarFixture, DeterministicTraining) {
  Mar a(SmallConfig());
  Mar b(SmallConfig());
  TrainOptions opts = FastOptions();
  opts.epochs = 3;
  a.Fit(*split_.train, opts);
  b.Fit(*split_.train, opts);
  for (UserId u = 0; u < 5; ++u) {
    for (ItemId v = 0; v < 5; ++v) {
      EXPECT_FLOAT_EQ(a.Score(u, v), b.Score(u, v));
    }
  }
}

}  // namespace
}  // namespace mars
