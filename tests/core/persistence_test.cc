#include "core/persistence.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"

namespace mars {
namespace {

struct PersistenceFixture : public ::testing::Test {
  void SetUp() override {
    SyntheticConfig cfg;
    cfg.num_users = 80;
    cfg.num_items = 120;
    cfg.target_interactions = 1200;
    cfg.seed = 91;
    full_ = GenerateSyntheticDataset(cfg);
    split_ = MakeLeaveOneOutSplit(*full_, 3);

    MultiFacetConfig mcfg;
    mcfg.dim = 12;
    mcfg.num_facets = 3;
    mcfg.theta_nmf_iterations = 5;
    model_ = std::make_unique<Mars>(mcfg);
    TrainOptions opts;
    opts.epochs = 4;
    opts.learning_rate = 0.2;
    model_->Fit(*split_.train, opts);
    path_ = ::testing::TempDir() + "/mars_model.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::shared_ptr<ImplicitDataset> full_;
  LeaveOneOutSplit split_;
  std::unique_ptr<Mars> model_;
  std::string path_;
};

TEST_F(PersistenceFixture, RoundTripPreservesScores) {
  ASSERT_TRUE(SaveMars(*model_, path_));
  const auto loaded = LoadMars(path_);
  ASSERT_NE(loaded, nullptr);
  for (UserId u = 0; u < 20; ++u) {
    for (ItemId v = 0; v < 20; ++v) {
      EXPECT_FLOAT_EQ(loaded->Score(u, v), model_->Score(u, v));
    }
  }
}

TEST_F(PersistenceFixture, RoundTripPreservesMetadata) {
  ASSERT_TRUE(SaveMars(*model_, path_));
  const auto loaded = LoadMars(path_);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->config().num_facets, 3u);
  EXPECT_EQ(loaded->config().dim, 12u);
  for (UserId u = 0; u < 10; ++u) {
    EXPECT_FLOAT_EQ(loaded->MarginOf(u), model_->MarginOf(u));
    const auto a = loaded->FacetWeights(u);
    const auto b = model_->FacetWeights(u);
    for (size_t k = 0; k < a.size(); ++k) EXPECT_FLOAT_EQ(a[k], b[k]);
  }
  const auto ea = loaded->UserFacetEmbedding(3, 1);
  const auto eb = model_->UserFacetEmbedding(3, 1);
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_FLOAT_EQ(ea[i], eb[i]);
}

TEST_F(PersistenceFixture, UnfitModelRefusesToSave) {
  MultiFacetConfig cfg;
  cfg.dim = 8;
  Mars unfit(cfg);
  EXPECT_FALSE(SaveMars(unfit, path_));
}

TEST_F(PersistenceFixture, LoadRejectsMissingFile) {
  EXPECT_EQ(LoadMars("/no/such/model.bin"), nullptr);
}

TEST_F(PersistenceFixture, LoadRejectsGarbage) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "this is not a MARS model";
  }
  EXPECT_EQ(LoadMars(path_), nullptr);
}

TEST_F(PersistenceFixture, LoadRejectsTruncatedPayload) {
  ASSERT_TRUE(SaveMars(*model_, path_));
  // Truncate to half.
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_EQ(LoadMars(path_), nullptr);
}

TEST_F(PersistenceFixture, OldFormatV1StillLoads) {
  // Reconstruct a v1 file (facet-major tensors, the std::vector<Matrix>
  // era) from the v2 bytes and check the versioned load path transposes it
  // into the FacetStore bit-exactly.
  ASSERT_TRUE(SaveMars(*model_, path_));
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  auto u32 = [&](size_t off) {
    uint32_t v;
    std::memcpy(&v, bytes.data() + off, 4);
    return v;
  };
  auto u64 = [&](size_t off) {
    uint64_t v;
    std::memcpy(&v, bytes.data() + off, 8);
    return v;
  };
  ASSERT_EQ(u32(4), 2u) << "save should emit version 2";
  const size_t kf = u64(8), d = u64(16);
  const size_t n_users = u64(24), n_items = u64(32);
  const size_t header = 4 + 4 + 8 * 4 + 4 + 4;
  std::string v1 = bytes;
  const uint32_t version1 = 1;
  std::memcpy(v1.data() + 4, &version1, 4);
  // Transpose [entity][facet][dim] → [facet][entity][dim] per tensor.
  auto transpose = [&](size_t off, size_t entities) {
    for (size_t e = 0; e < entities; ++e) {
      for (size_t k = 0; k < kf; ++k) {
        std::memcpy(v1.data() + off + (k * entities + e) * d * 4,
                    bytes.data() + off + (e * kf + k) * d * 4, d * 4);
      }
    }
  };
  transpose(header, n_users);
  transpose(header + n_users * kf * d * 4, n_items);
  const std::string v1_path = ::testing::TempDir() + "/mars_model_v1.bin";
  {
    std::ofstream out(v1_path, std::ios::binary);
    out.write(v1.data(), static_cast<std::streamsize>(v1.size()));
  }
  const auto loaded = LoadMars(v1_path);
  std::remove(v1_path.c_str());
  ASSERT_NE(loaded, nullptr);
  for (UserId u = 0; u < 20; ++u) {
    for (ItemId v = 0; v < 20; ++v) {
      EXPECT_FLOAT_EQ(loaded->Score(u, v), model_->Score(u, v));
    }
  }
  const auto ea = loaded->UserFacetEmbedding(3, 1);
  const auto eb = model_->UserFacetEmbedding(3, 1);
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_FLOAT_EQ(ea[i], eb[i]);
}

TEST_F(PersistenceFixture, RoundTripUnpaddedDim) {
  // dim 16 is a cache-line multiple, so the store has no row padding and
  // save/load take the dense bulk-I/O path instead of the per-row one.
  MultiFacetConfig cfg;
  cfg.dim = 16;
  cfg.num_facets = 2;
  cfg.theta_nmf_iterations = 3;
  Mars dense_model(cfg);
  TrainOptions opts;
  opts.epochs = 2;
  opts.learning_rate = 0.2;
  dense_model.Fit(*split_.train, opts);
  ASSERT_TRUE(SaveMars(dense_model, path_));
  const auto loaded = LoadMars(path_);
  ASSERT_NE(loaded, nullptr);
  for (UserId u = 0; u < 10; ++u) {
    for (ItemId v = 0; v < 10; ++v) {
      EXPECT_FLOAT_EQ(loaded->Score(u, v), dense_model.Score(u, v));
    }
  }
}

TEST_F(PersistenceFixture, LoadRejectsOverflowingEntityCounts) {
  // A crafted header with an absurd n_users must be rejected before any
  // tensor allocation or per-row read happens.
  ASSERT_TRUE(SaveMars(*model_, path_));
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  const uint64_t huge = ~0ull;
  std::memcpy(bytes.data() + 24, &huge, 8);  // n_users field
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(LoadMars(path_), nullptr);
}

TEST_F(PersistenceFixture, RadiiSurviveRoundTrip) {
  MultiFacetConfig cfg;
  cfg.dim = 12;
  cfg.num_facets = 2;
  cfg.theta_nmf_iterations = 3;
  MarsOptions mopts;
  mopts.learn_radius = true;
  Mars radius_model(cfg, mopts);
  TrainOptions opts;
  opts.epochs = 4;
  opts.learning_rate = 0.2;
  radius_model.Fit(*split_.train, opts);
  ASSERT_TRUE(SaveMars(radius_model, path_));
  const auto loaded = LoadMars(path_);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->FacetRadii().size(), 2u);
  EXPECT_FLOAT_EQ(loaded->FacetRadii()[0], radius_model.FacetRadii()[0]);
  EXPECT_FLOAT_EQ(loaded->FacetRadii()[1], radius_model.FacetRadii()[1]);
  EXPECT_TRUE(loaded->mars_options().learn_radius);
}

}  // namespace
}  // namespace mars
