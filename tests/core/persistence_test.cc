#include "core/persistence.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"

namespace mars {
namespace {

struct PersistenceFixture : public ::testing::Test {
  void SetUp() override {
    SyntheticConfig cfg;
    cfg.num_users = 80;
    cfg.num_items = 120;
    cfg.target_interactions = 1200;
    cfg.seed = 91;
    full_ = GenerateSyntheticDataset(cfg);
    split_ = MakeLeaveOneOutSplit(*full_, 3);

    MultiFacetConfig mcfg;
    mcfg.dim = 12;
    mcfg.num_facets = 3;
    mcfg.theta_nmf_iterations = 5;
    model_ = std::make_unique<Mars>(mcfg);
    TrainOptions opts;
    opts.epochs = 4;
    opts.learning_rate = 0.2;
    model_->Fit(*split_.train, opts);
    // Unique per test: ctest runs tests of one binary as parallel
    // processes, and a shared path would race.
    path_ = ::testing::TempDir() + "/mars_model_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::shared_ptr<ImplicitDataset> full_;
  LeaveOneOutSplit split_;
  std::unique_ptr<Mars> model_;
  std::string path_;
};

TEST_F(PersistenceFixture, RoundTripPreservesScores) {
  ASSERT_TRUE(SaveMars(*model_, path_));
  const auto loaded = LoadMars(path_);
  ASSERT_NE(loaded, nullptr);
  for (UserId u = 0; u < 20; ++u) {
    for (ItemId v = 0; v < 20; ++v) {
      EXPECT_FLOAT_EQ(loaded->Score(u, v), model_->Score(u, v));
    }
  }
}

TEST_F(PersistenceFixture, RoundTripPreservesMetadata) {
  ASSERT_TRUE(SaveMars(*model_, path_));
  const auto loaded = LoadMars(path_);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->config().num_facets, 3u);
  EXPECT_EQ(loaded->config().dim, 12u);
  for (UserId u = 0; u < 10; ++u) {
    EXPECT_FLOAT_EQ(loaded->MarginOf(u), model_->MarginOf(u));
    const auto a = loaded->FacetWeights(u);
    const auto b = model_->FacetWeights(u);
    for (size_t k = 0; k < a.size(); ++k) EXPECT_FLOAT_EQ(a[k], b[k]);
  }
  const auto ea = loaded->UserFacetEmbedding(3, 1);
  const auto eb = model_->UserFacetEmbedding(3, 1);
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_FLOAT_EQ(ea[i], eb[i]);
}

TEST_F(PersistenceFixture, UnfitModelRefusesToSave) {
  MultiFacetConfig cfg;
  cfg.dim = 8;
  Mars unfit(cfg);
  EXPECT_FALSE(SaveMars(unfit, path_));
}

TEST_F(PersistenceFixture, LoadRejectsMissingFile) {
  EXPECT_EQ(LoadMars("/no/such/model.bin"), nullptr);
}

TEST_F(PersistenceFixture, LoadRejectsGarbage) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "this is not a MARS model";
  }
  EXPECT_EQ(LoadMars(path_), nullptr);
}

TEST_F(PersistenceFixture, LoadRejectsTruncatedPayload) {
  ASSERT_TRUE(SaveMars(*model_, path_));
  // Truncate to half.
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_EQ(LoadMars(path_), nullptr);
}

TEST_F(PersistenceFixture, OldFormatV1StillLoads) {
  // Reconstruct a v1 file (facet-major tensors, the std::vector<Matrix>
  // era) from the v2 bytes and check the versioned load path transposes it
  // into the FacetStore bit-exactly.
  ASSERT_TRUE(SaveMars(*model_, path_));
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  auto u32 = [&](size_t off) {
    uint32_t v;
    std::memcpy(&v, bytes.data() + off, 4);
    return v;
  };
  auto u64 = [&](size_t off) {
    uint64_t v;
    std::memcpy(&v, bytes.data() + off, 8);
    return v;
  };
  ASSERT_EQ(u32(4), 2u) << "save should emit version 2";
  const size_t kf = u64(8), d = u64(16);
  const size_t n_users = u64(24), n_items = u64(32);
  const size_t header = 4 + 4 + 8 * 4 + 4 + 4;
  std::string v1 = bytes;
  const uint32_t version1 = 1;
  std::memcpy(v1.data() + 4, &version1, 4);
  // Transpose [entity][facet][dim] → [facet][entity][dim] per tensor.
  auto transpose = [&](size_t off, size_t entities) {
    for (size_t e = 0; e < entities; ++e) {
      for (size_t k = 0; k < kf; ++k) {
        std::memcpy(v1.data() + off + (k * entities + e) * d * 4,
                    bytes.data() + off + (e * kf + k) * d * 4, d * 4);
      }
    }
  };
  transpose(header, n_users);
  transpose(header + n_users * kf * d * 4, n_items);
  const std::string v1_path = ::testing::TempDir() + "/mars_model_v1.bin";
  {
    std::ofstream out(v1_path, std::ios::binary);
    out.write(v1.data(), static_cast<std::streamsize>(v1.size()));
  }
  const auto loaded = LoadMars(v1_path);
  std::remove(v1_path.c_str());
  ASSERT_NE(loaded, nullptr);
  for (UserId u = 0; u < 20; ++u) {
    for (ItemId v = 0; v < 20; ++v) {
      EXPECT_FLOAT_EQ(loaded->Score(u, v), model_->Score(u, v));
    }
  }
  const auto ea = loaded->UserFacetEmbedding(3, 1);
  const auto eb = model_->UserFacetEmbedding(3, 1);
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_FLOAT_EQ(ea[i], eb[i]);
}

TEST_F(PersistenceFixture, RoundTripUnpaddedDim) {
  // dim 16 is a cache-line multiple, so the store has no row padding and
  // save/load take the dense bulk-I/O path instead of the per-row one.
  MultiFacetConfig cfg;
  cfg.dim = 16;
  cfg.num_facets = 2;
  cfg.theta_nmf_iterations = 3;
  Mars dense_model(cfg);
  TrainOptions opts;
  opts.epochs = 2;
  opts.learning_rate = 0.2;
  dense_model.Fit(*split_.train, opts);
  ASSERT_TRUE(SaveMars(dense_model, path_));
  const auto loaded = LoadMars(path_);
  ASSERT_NE(loaded, nullptr);
  for (UserId u = 0; u < 10; ++u) {
    for (ItemId v = 0; v < 10; ++v) {
      EXPECT_FLOAT_EQ(loaded->Score(u, v), dense_model.Score(u, v));
    }
  }
}

TEST_F(PersistenceFixture, LoadRejectsOverflowingEntityCounts) {
  // A crafted header with an absurd n_users must be rejected before any
  // tensor allocation or per-row read happens.
  ASSERT_TRUE(SaveMars(*model_, path_));
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  const uint64_t huge = ~0ull;
  std::memcpy(bytes.data() + 24, &huge, 8);  // n_users field
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(LoadMars(path_), nullptr);
}

// --- Format v3: aligned-stride snapshots + zero-copy mmap loading --------

/// Reads a whole file into a string (v3 byte-surgery helper).
std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(PersistenceFixture, V3HeaderLayoutIsPinned) {
  // The v3 header is an on-disk contract (docs/FORMAT.md): magic at 0,
  // version 3 at 4, shape at 8..40, flags at 40..48, stride and the three
  // region offsets at 48..80, payload at the 128-byte boundary.
  ASSERT_TRUE(SaveMarsV3(*model_, path_));
  const std::string bytes = Slurp(path_);
  ASSERT_GE(bytes.size(), 128u);
  auto u32 = [&](size_t off) {
    uint32_t v;
    std::memcpy(&v, bytes.data() + off, 4);
    return v;
  };
  auto u64 = [&](size_t off) {
    uint64_t v;
    std::memcpy(&v, bytes.data() + off, 8);
    return v;
  };
  EXPECT_EQ(u32(0), 0x4D415253u);  // "MARS"
  EXPECT_EQ(u32(4), 3u);
  EXPECT_EQ(u64(8), 3u);    // num_facets
  EXPECT_EQ(u64(16), 12u);  // dim
  EXPECT_EQ(u64(24), 80u);  // users
  EXPECT_EQ(u64(32), 120u);  // items
  const uint64_t stride = u64(48);
  EXPECT_EQ(stride, FacetStore::RowStrideFor(12));
  EXPECT_EQ(u64(56), 128u);  // user tensor at the padded header boundary
  EXPECT_EQ(u64(56) % 64, 0u);
  EXPECT_EQ(u64(64), 128u + 80u * 3u * stride * 4u);
  EXPECT_EQ(u64(64) % 64, 0u);
  EXPECT_EQ(u64(72), u64(64) + 120u * 3u * stride * 4u);
}

TEST_F(PersistenceFixture, V3CopyLoadRoundTrips) {
  ASSERT_TRUE(SaveMarsV3(*model_, path_));
  const auto loaded = LoadMars(path_);
  ASSERT_NE(loaded, nullptr);
  EXPECT_FALSE(loaded->mapped());
  for (UserId u = 0; u < 20; ++u) {
    for (ItemId v = 0; v < 20; ++v) {
      EXPECT_EQ(loaded->Score(u, v), model_->Score(u, v));
    }
  }
  for (UserId u = 0; u < 10; ++u) {
    EXPECT_FLOAT_EQ(loaded->MarginOf(u), model_->MarginOf(u));
  }
}

TEST_F(PersistenceFixture, V3MappedServesBitIdenticalScores) {
  ASSERT_TRUE(SaveMarsV3(*model_, path_));
  const auto mapped = LoadMarsMapped(path_);
  ASSERT_NE(mapped, nullptr);
  EXPECT_TRUE(mapped->mapped());
  EXPECT_FALSE(model_->mapped());
  // The mapping holds the exact bytes of the owned tensors, and the score
  // kernels are shared, so every score is bit-identical — EXPECT_EQ, not
  // NEAR.
  for (UserId u = 0; u < 20; ++u) {
    for (ItemId v = 0; v < 20; ++v) {
      EXPECT_EQ(mapped->Score(u, v), model_->Score(u, v));
    }
  }
  // The serving adapter the TopKServer sweeps with, across the catalog.
  const size_t n_items = 120;
  std::vector<float> owned_scores(n_items), mapped_scores(n_items);
  for (UserId u : {0u, 7u, 79u}) {
    model_->ScoreItemRange(u, 0, n_items, owned_scores.data());
    mapped->ScoreItemRange(u, 0, n_items, mapped_scores.data());
    for (size_t v = 0; v < n_items; ++v) {
      EXPECT_EQ(mapped_scores[v], owned_scores[v]) << "u=" << u << " v=" << v;
    }
  }
  // Metadata tails are materialized, not mapped, but must match too.
  for (UserId u = 0; u < 10; ++u) {
    EXPECT_EQ(mapped->MarginOf(u), model_->MarginOf(u));
    const auto a = mapped->FacetWeights(u);
    const auto b = model_->FacetWeights(u);
    for (size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST_F(PersistenceFixture, V3MappedOutlivesTheLoadCall) {
  // The model must keep the mapping alive itself (keepalive member) — use
  // after the unique_ptr is the only reference.
  ASSERT_TRUE(SaveMarsV3(*model_, path_));
  auto mapped = LoadMarsMapped(path_);
  ASSERT_NE(mapped, nullptr);
  const float expected = model_->Score(3, 5);
  std::remove(path_.c_str());  // mapping survives unlink
  EXPECT_EQ(mapped->Score(3, 5), expected);
}

TEST_F(PersistenceFixture, MappedLoadRejectsV2Files) {
  ASSERT_TRUE(SaveMars(*model_, path_));  // v2
  EXPECT_EQ(LoadMarsMapped(path_), nullptr);
  // ... but the copy loader takes it, per the compatibility matrix.
  EXPECT_NE(LoadMars(path_), nullptr);
}

TEST_F(PersistenceFixture, V3LoadersRejectTruncatedPayload) {
  ASSERT_TRUE(SaveMarsV3(*model_, path_));
  const std::string bytes = Slurp(path_);
  // Cut inside the item tensor: header parses, payload doesn't.
  Spit(path_, bytes.substr(0, bytes.size() / 2));
  EXPECT_EQ(LoadMars(path_), nullptr);
  EXPECT_EQ(LoadMarsMapped(path_), nullptr);
  // Cut inside the header.
  Spit(path_, bytes.substr(0, 60));
  EXPECT_EQ(LoadMars(path_), nullptr);
  EXPECT_EQ(LoadMarsMapped(path_), nullptr);
  // Cut inside the tail (mapped loader materializes it with bounds checks).
  Spit(path_, bytes.substr(0, bytes.size() - 16));
  EXPECT_EQ(LoadMars(path_), nullptr);
  EXPECT_EQ(LoadMarsMapped(path_), nullptr);
}

TEST_F(PersistenceFixture, V3LoadersRejectWrongStride) {
  ASSERT_TRUE(SaveMarsV3(*model_, path_));
  std::string bytes = Slurp(path_);
  uint64_t stride;
  std::memcpy(&stride, bytes.data() + 48, 8);
  const uint64_t wrong = stride + 16;  // aligned, but not the stride for d
  std::memcpy(bytes.data() + 48, &wrong, 8);
  Spit(path_, bytes);
  EXPECT_EQ(LoadMars(path_), nullptr);
  EXPECT_EQ(LoadMarsMapped(path_), nullptr);
}

TEST_F(PersistenceFixture, V3LoadersRejectMisalignedOffsets) {
  ASSERT_TRUE(SaveMarsV3(*model_, path_));
  std::string bytes = Slurp(path_);
  // Shift all three region offsets by 4: self-consistent spacing, but the
  // tensors no longer start on the padded 64-byte boundaries.
  for (const size_t field : {56u, 64u, 72u}) {
    uint64_t v;
    std::memcpy(&v, bytes.data() + field, 8);
    v += 4;
    std::memcpy(bytes.data() + field, &v, 8);
  }
  Spit(path_, bytes);
  EXPECT_EQ(LoadMars(path_), nullptr);
  EXPECT_EQ(LoadMarsMapped(path_), nullptr);
}

TEST_F(PersistenceFixture, LoadersRejectHugeShapeOnTinyFile) {
  // A crafted header whose shape passes the plausibility bounds but
  // implies hundreds of GB must be rejected against the actual file size
  // — cleanly, before any allocation is sized to header fields.
  for (const bool v3 : {false, true}) {
    ASSERT_TRUE(v3 ? SaveMarsV3(*model_, path_) : SaveMars(*model_, path_));
    std::string bytes = Slurp(path_);
    const uint64_t huge_users = 1ull << 30;  // plausible (< 2^31), enormous
    std::memcpy(bytes.data() + 24, &huge_users, 8);
    Spit(path_, bytes);
    EXPECT_EQ(LoadMars(path_), nullptr) << "v3=" << v3;
    if (v3) EXPECT_EQ(LoadMarsMapped(path_), nullptr);
  }
}

TEST_F(PersistenceFixture, V3LoadersRejectImplausibleShape) {
  ASSERT_TRUE(SaveMarsV3(*model_, path_));
  std::string bytes = Slurp(path_);
  const uint64_t huge = ~0ull;
  std::memcpy(bytes.data() + 24, &huge, 8);  // n_users
  Spit(path_, bytes);
  EXPECT_EQ(LoadMars(path_), nullptr);
  EXPECT_EQ(LoadMarsMapped(path_), nullptr);
}

TEST_F(PersistenceFixture, V3RoundTripsPaddedAndUnpaddedDims) {
  // dim 16 → stride 16 (no padding); dim 12 → stride 16 (padded rows).
  // Both must mmap-serve identically to their owned originals.
  for (const size_t dim : {12u, 16u}) {
    MultiFacetConfig cfg;
    cfg.dim = dim;
    cfg.num_facets = 2;
    cfg.theta_nmf_iterations = 3;
    Mars m(cfg);
    TrainOptions opts;
    opts.epochs = 2;
    opts.learning_rate = 0.2;
    m.Fit(*split_.train, opts);
    ASSERT_TRUE(SaveMarsV3(m, path_));
    const auto mapped = LoadMarsMapped(path_);
    ASSERT_NE(mapped, nullptr) << "dim=" << dim;
    for (UserId u = 0; u < 10; ++u) {
      for (ItemId v = 0; v < 10; ++v) {
        EXPECT_EQ(mapped->Score(u, v), m.Score(u, v)) << "dim=" << dim;
      }
    }
  }
}

TEST_F(PersistenceFixture, V3RadiiSurviveMappedLoad) {
  MultiFacetConfig cfg;
  cfg.dim = 12;
  cfg.num_facets = 2;
  cfg.theta_nmf_iterations = 3;
  MarsOptions mopts;
  mopts.learn_radius = true;
  Mars radius_model(cfg, mopts);
  TrainOptions opts;
  opts.epochs = 4;
  opts.learning_rate = 0.2;
  radius_model.Fit(*split_.train, opts);
  ASSERT_TRUE(SaveMarsV3(radius_model, path_));
  const auto mapped = LoadMarsMapped(path_);
  ASSERT_NE(mapped, nullptr);
  ASSERT_EQ(mapped->FacetRadii().size(), 2u);
  EXPECT_EQ(mapped->FacetRadii()[0], radius_model.FacetRadii()[0]);
  EXPECT_EQ(mapped->FacetRadii()[1], radius_model.FacetRadii()[1]);
  EXPECT_TRUE(mapped->mars_options().learn_radius);
}

TEST_F(PersistenceFixture, MappedModelRefusesToTrain) {
  ASSERT_TRUE(SaveMarsV3(*model_, path_));
  const auto mapped = LoadMarsMapped(path_);
  ASSERT_NE(mapped, nullptr);
  TrainOptions opts;
  opts.epochs = 1;
  EXPECT_DEATH(mapped->Fit(*split_.train, opts), "mapped");
}

TEST_F(PersistenceFixture, RadiiSurviveRoundTrip) {
  MultiFacetConfig cfg;
  cfg.dim = 12;
  cfg.num_facets = 2;
  cfg.theta_nmf_iterations = 3;
  MarsOptions mopts;
  mopts.learn_radius = true;
  Mars radius_model(cfg, mopts);
  TrainOptions opts;
  opts.epochs = 4;
  opts.learning_rate = 0.2;
  radius_model.Fit(*split_.train, opts);
  ASSERT_TRUE(SaveMars(radius_model, path_));
  const auto loaded = LoadMars(path_);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->FacetRadii().size(), 2u);
  EXPECT_FLOAT_EQ(loaded->FacetRadii()[0], radius_model.FacetRadii()[0]);
  EXPECT_FLOAT_EQ(loaded->FacetRadii()[1], radius_model.FacetRadii()[1]);
  EXPECT_TRUE(loaded->mars_options().learn_radius);
}

}  // namespace
}  // namespace mars
