#include "core/persistence.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/split.h"
#include "data/synthetic.h"

namespace mars {
namespace {

struct PersistenceFixture : public ::testing::Test {
  void SetUp() override {
    SyntheticConfig cfg;
    cfg.num_users = 80;
    cfg.num_items = 120;
    cfg.target_interactions = 1200;
    cfg.seed = 91;
    full_ = GenerateSyntheticDataset(cfg);
    split_ = MakeLeaveOneOutSplit(*full_, 3);

    MultiFacetConfig mcfg;
    mcfg.dim = 12;
    mcfg.num_facets = 3;
    mcfg.theta_nmf_iterations = 5;
    model_ = std::make_unique<Mars>(mcfg);
    TrainOptions opts;
    opts.epochs = 4;
    opts.learning_rate = 0.2;
    model_->Fit(*split_.train, opts);
    path_ = ::testing::TempDir() + "/mars_model.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::shared_ptr<ImplicitDataset> full_;
  LeaveOneOutSplit split_;
  std::unique_ptr<Mars> model_;
  std::string path_;
};

TEST_F(PersistenceFixture, RoundTripPreservesScores) {
  ASSERT_TRUE(SaveMars(*model_, path_));
  const auto loaded = LoadMars(path_);
  ASSERT_NE(loaded, nullptr);
  for (UserId u = 0; u < 20; ++u) {
    for (ItemId v = 0; v < 20; ++v) {
      EXPECT_FLOAT_EQ(loaded->Score(u, v), model_->Score(u, v));
    }
  }
}

TEST_F(PersistenceFixture, RoundTripPreservesMetadata) {
  ASSERT_TRUE(SaveMars(*model_, path_));
  const auto loaded = LoadMars(path_);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->config().num_facets, 3u);
  EXPECT_EQ(loaded->config().dim, 12u);
  for (UserId u = 0; u < 10; ++u) {
    EXPECT_FLOAT_EQ(loaded->MarginOf(u), model_->MarginOf(u));
    const auto a = loaded->FacetWeights(u);
    const auto b = model_->FacetWeights(u);
    for (size_t k = 0; k < a.size(); ++k) EXPECT_FLOAT_EQ(a[k], b[k]);
  }
  const auto ea = loaded->UserFacetEmbedding(3, 1);
  const auto eb = model_->UserFacetEmbedding(3, 1);
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_FLOAT_EQ(ea[i], eb[i]);
}

TEST_F(PersistenceFixture, UnfitModelRefusesToSave) {
  MultiFacetConfig cfg;
  cfg.dim = 8;
  Mars unfit(cfg);
  EXPECT_FALSE(SaveMars(unfit, path_));
}

TEST_F(PersistenceFixture, LoadRejectsMissingFile) {
  EXPECT_EQ(LoadMars("/no/such/model.bin"), nullptr);
}

TEST_F(PersistenceFixture, LoadRejectsGarbage) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "this is not a MARS model";
  }
  EXPECT_EQ(LoadMars(path_), nullptr);
}

TEST_F(PersistenceFixture, LoadRejectsTruncatedPayload) {
  ASSERT_TRUE(SaveMars(*model_, path_));
  // Truncate to half.
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_EQ(LoadMars(path_), nullptr);
}

TEST_F(PersistenceFixture, RadiiSurviveRoundTrip) {
  MultiFacetConfig cfg;
  cfg.dim = 12;
  cfg.num_facets = 2;
  cfg.theta_nmf_iterations = 3;
  MarsOptions mopts;
  mopts.learn_radius = true;
  Mars radius_model(cfg, mopts);
  TrainOptions opts;
  opts.epochs = 4;
  opts.learning_rate = 0.2;
  radius_model.Fit(*split_.train, opts);
  ASSERT_TRUE(SaveMars(radius_model, path_));
  const auto loaded = LoadMars(path_);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->FacetRadii().size(), 2u);
  EXPECT_FLOAT_EQ(loaded->FacetRadii()[0], radius_model.FacetRadii()[0]);
  EXPECT_FLOAT_EQ(loaded->FacetRadii()[1], radius_model.FacetRadii()[1]);
  EXPECT_TRUE(loaded->mars_options().learn_radius);
}

}  // namespace
}  // namespace mars
