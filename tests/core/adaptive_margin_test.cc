#include "core/adaptive_margin.h"

#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace mars {
namespace {

TEST(AdaptiveMarginTest, HandComputedExample) {
  // 4 users. User 0 interacts with item 0; item 0 is shared with user 1.
  // Two-hop neighbors of user 0 = {0, 1} → γ = 1 - 2/4 = 0.5.
  std::vector<Interaction> log = {
      {0, 0, 0},
      {1, 0, 0},
      {1, 1, 1},
      {2, 1, 0},
      {2, 2, 1},
  };
  ImplicitDataset ds(4, 3, log);
  const auto gamma = ComputeAdaptiveMargins(ds);
  EXPECT_FLOAT_EQ(gamma[0], 1.0f - 2.0f / 4.0f);
  // User 1: items {0,1} → users {0,1,2} → γ = 1 - 3/4.
  EXPECT_FLOAT_EQ(gamma[1], 0.25f);
  // User 2: items {1,2} → users {1,2} → γ = 0.5.
  EXPECT_FLOAT_EQ(gamma[2], 0.5f);
  // User 3: no interactions → γ = 1.
  EXPECT_FLOAT_EQ(gamma[3], 1.0f);
}

TEST(AdaptiveMarginTest, AlwaysInUnitInterval) {
  SyntheticConfig cfg;
  cfg.num_users = 100;
  cfg.num_items = 80;
  cfg.target_interactions = 1500;
  cfg.seed = 17;
  const auto ds = GenerateSyntheticDataset(cfg);
  const auto gamma = ComputeAdaptiveMargins(*ds);
  for (float g : gamma) {
    EXPECT_GE(g, 0.0f);
    EXPECT_LE(g, 1.0f);
  }
}

TEST(AdaptiveMarginTest, MoreTwoHopNeighborsMeansSmallerMargin) {
  // User 0 shares one popular item with everyone; user 1 shares a niche
  // item with nobody else.
  std::vector<Interaction> log;
  log.push_back({0, 0, 0});
  log.push_back({1, 1, 0});
  for (UserId u = 2; u < 10; ++u) log.push_back({u, 0, 0});
  ImplicitDataset ds(10, 2, log);
  const auto gamma = ComputeAdaptiveMargins(ds);
  EXPECT_LT(gamma[0], gamma[1]);
}

TEST(AdaptiveMarginTest, SingleUserVariantMatchesBatch) {
  SyntheticConfig cfg;
  cfg.num_users = 50;
  cfg.num_items = 40;
  cfg.target_interactions = 600;
  cfg.seed = 23;
  const auto ds = GenerateSyntheticDataset(cfg);
  const auto batch = ComputeAdaptiveMargins(*ds);
  for (UserId u = 0; u < 50; u += 7) {
    EXPECT_FLOAT_EQ(ComputeAdaptiveMargin(*ds, u), batch[u]);
  }
}

TEST(AdaptiveMarginTest, SelfIsCountedAsTwoHopNeighbor) {
  // A user whose items are shared with nobody still reaches themselves.
  std::vector<Interaction> log = {{0, 0, 0}};
  ImplicitDataset ds(2, 1, log);
  const auto gamma = ComputeAdaptiveMargins(ds);
  EXPECT_FLOAT_EQ(gamma[0], 0.5f);  // {self} of 2 users
}

}  // namespace
}  // namespace mars
