#include "opt/sgd.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/vec.h"

namespace mars {
namespace {

TEST(SgdTest, StepMovesAgainstGradient) {
  std::vector<float> x = {1.0f, 2.0f};
  const std::vector<float> g = {0.5f, -1.0f};
  SgdStep(x.data(), g.data(), 0.1f, 2);
  EXPECT_FLOAT_EQ(x[0], 0.95f);
  EXPECT_FLOAT_EQ(x[1], 2.1f);
}

TEST(SgdTest, L2StepDecaysWeights) {
  std::vector<float> x = {1.0f};
  const std::vector<float> g = {0.0f};
  SgdStepL2(x.data(), g.data(), 0.1f, 0.5f, 1);
  EXPECT_FLOAT_EQ(x[0], 1.0f - 0.1f * 0.5f);
}

TEST(SgdTest, BallProjectedStepStaysInBall) {
  std::vector<float> x = {0.9f, 0.0f};
  const std::vector<float> g = {-10.0f, 0.0f};  // pushes far outside
  SgdStepBallProjected(x.data(), g.data(), 1.0f, 2);
  EXPECT_LE(Norm(x.data(), 2), 1.0f + 1e-6f);
}

TEST(SgdTest, BallProjectedStepInsideBallUntouched) {
  std::vector<float> x = {0.1f, 0.1f};
  const std::vector<float> g = {0.01f, 0.0f};
  SgdStepBallProjected(x.data(), g.data(), 0.1f, 2);
  EXPECT_FLOAT_EQ(x[0], 0.099f);
  EXPECT_FLOAT_EQ(x[1], 0.1f);
}

TEST(SgdTest, ClipGradientShrinksLargeGradients) {
  std::vector<float> g = {3.0f, 4.0f};  // norm 5
  const float pre = ClipGradient(g.data(), 2, 1.0f);
  EXPECT_FLOAT_EQ(pre, 5.0f);
  EXPECT_NEAR(Norm(g.data(), 2), 1.0f, 1e-6f);
  EXPECT_NEAR(g[0] / g[1], 0.75f, 1e-6f);  // direction preserved
}

TEST(SgdTest, ClipGradientLeavesSmallGradients) {
  std::vector<float> g = {0.3f, 0.4f};
  ClipGradient(g.data(), 2, 1.0f);
  EXPECT_FLOAT_EQ(g[0], 0.3f);
  EXPECT_FLOAT_EQ(g[1], 0.4f);
}

TEST(SgdTest, GradientDescentConvergesOnQuadratic) {
  // minimize ||x - c||²
  const std::vector<float> c = {3.0f, -2.0f};
  std::vector<float> x = {0.0f, 0.0f}, g(2);
  for (int i = 0; i < 200; ++i) {
    for (int j = 0; j < 2; ++j) g[j] = 2.0f * (x[j] - c[j]);
    SgdStep(x.data(), g.data(), 0.1f, 2);
  }
  EXPECT_NEAR(x[0], 3.0f, 1e-3f);
  EXPECT_NEAR(x[1], -2.0f, 1e-3f);
}

}  // namespace
}  // namespace mars
