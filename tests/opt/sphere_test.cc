#include "opt/sphere.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/vec.h"

namespace mars {
namespace {

std::vector<float> RandomUnit(Rng* rng, size_t n) {
  std::vector<float> x(n);
  for (auto& v : x) v = static_cast<float>(rng->Normal());
  NormalizeInPlace(x.data(), n);
  return x;
}

TEST(SphereTest, TangentProjectionIsOrthogonal) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    auto x = RandomUnit(&rng, 8);
    std::vector<float> g(8);
    for (auto& v : g) v = static_cast<float>(rng.Normal());
    TangentProject(x.data(), g.data(), 8);
    EXPECT_NEAR(Dot(x.data(), g.data(), 8), 0.0f, 1e-5f);
  }
}

TEST(SphereTest, TangentProjectionIsIdempotent) {
  Rng rng(2);
  auto x = RandomUnit(&rng, 16);
  std::vector<float> g(16);
  for (auto& v : g) v = static_cast<float>(rng.Normal());
  TangentProject(x.data(), g.data(), 16);
  std::vector<float> g2 = g;
  TangentProject(x.data(), g2.data(), 16);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(g[i], g2[i], 1e-5f);
  }
}

TEST(SphereTest, RetractionKeepsUnitNorm) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    auto x = RandomUnit(&rng, 8);
    std::vector<float> z(8);
    for (auto& v : z) v = static_cast<float>(rng.Normal(0.0, 0.3));
    ASSERT_TRUE(Retract(x.data(), z.data(), 8));
    EXPECT_NEAR(Norm(x.data(), 8), 1.0f, 1e-5f);
  }
}

TEST(SphereTest, RetractionWithZeroStepIsIdentity) {
  Rng rng(4);
  auto x = RandomUnit(&rng, 8);
  const auto before = x;
  std::vector<float> z(8, 0.0f);
  ASSERT_TRUE(Retract(x.data(), z.data(), 8));
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], before[i], 1e-6f);
}

TEST(SphereTest, DegenerateRetractionRejected) {
  std::vector<float> x = {1.0f, 0.0f};
  std::vector<float> z = {-1.0f, 0.0f};  // x + z = 0
  EXPECT_FALSE(Retract(x.data(), z.data(), 2));
  // x restored.
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[1], 0.0f);
}

TEST(SphereTest, CalibrationFactorRange) {
  // For unit x, factor = 1 + cos(angle(x, g)) ∈ [0, 2].
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    auto x = RandomUnit(&rng, 8);
    std::vector<float> g(8);
    for (auto& v : g) v = static_cast<float>(rng.Normal());
    const float f = CalibrationFactor(x.data(), g.data(), 8);
    EXPECT_GE(f, -1e-5f);
    EXPECT_LE(f, 2.0f + 1e-5f);
  }
}

TEST(SphereTest, CalibrationFactorExtremes) {
  std::vector<float> x = {1.0f, 0.0f};
  std::vector<float> aligned = {2.0f, 0.0f};
  std::vector<float> opposed = {-3.0f, 0.0f};
  std::vector<float> orthogonal = {0.0f, 5.0f};
  EXPECT_NEAR(CalibrationFactor(x.data(), aligned.data(), 2), 2.0f, 1e-6f);
  EXPECT_NEAR(CalibrationFactor(x.data(), opposed.data(), 2), 0.0f, 1e-6f);
  EXPECT_NEAR(CalibrationFactor(x.data(), orthogonal.data(), 2), 1.0f, 1e-6f);
}

TEST(SphereTest, CalibrationFactorZeroGradient) {
  std::vector<float> x = {1.0f, 0.0f};
  std::vector<float> zero = {0.0f, 0.0f};
  EXPECT_FLOAT_EQ(CalibrationFactor(x.data(), zero.data(), 2), 1.0f);
}

TEST(SphereTest, RsgdStepStaysOnSphere) {
  Rng rng(6);
  auto x = RandomUnit(&rng, 16);
  std::vector<float> scratch(16);
  for (int step = 0; step < 100; ++step) {
    std::vector<float> g(16);
    for (auto& v : g) v = static_cast<float>(rng.Normal());
    RiemannianSgdStep(x.data(), g.data(), 0.1f, 16, scratch.data(), true);
    ASSERT_NEAR(Norm(x.data(), 16), 1.0f, 1e-4f) << "step " << step;
  }
}

// Maximizing <x, target> on the sphere: gradient of the loss -<x,t> is -t.
class RsgdConvergence : public ::testing::TestWithParam<bool> {};

TEST_P(RsgdConvergence, ConvergesToTargetDirection) {
  // Note the calibrated variant anneals: the factor 1 + x·∇f/||∇f||
  // approaches 0 as x aligns with the target, so its tail convergence is
  // polynomial rather than exponential — hence the longer budget and the
  // slightly looser threshold.
  const bool calibrated = GetParam();
  Rng rng(7);
  auto x = RandomUnit(&rng, 8);
  auto target = RandomUnit(&rng, 8);
  std::vector<float> g(8), scratch(8);
  const int steps = calibrated ? 4000 : 500;
  for (int step = 0; step < steps; ++step) {
    for (size_t i = 0; i < 8; ++i) g[i] = -target[i];  // ∇(-<x,t>)
    RiemannianSgdStep(x.data(), g.data(), 0.05f, 8, scratch.data(),
                      calibrated);
  }
  EXPECT_GT(Dot(x.data(), target.data(), 8), calibrated ? 0.95f : 0.99f);
}

INSTANTIATE_TEST_SUITE_P(Both, RsgdConvergence, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Calibrated" : "Plain";
                         });

TEST(SphereTest, CalibratedConvergesFasterFromAntipode) {
  // Start nearly opposite to the target: the calibration factor is small
  // near the antipode but grows as the iterate turns toward the target,
  // matching the paper's Fig. 4 intuition. Both must converge; we check
  // the calibrated path is not slower in the tail.
  std::vector<float> target = {1.0f, 0.0f, 0.0f, 0.0f};
  auto run = [&](bool calibrated) {
    std::vector<float> x = {-0.95f, 0.3122f, 0.0f, 0.0f};
    NormalizeInPlace(x.data(), 4);
    std::vector<float> g(4), scratch(4);
    int steps = 0;
    while (Dot(x.data(), target.data(), 4) < 0.99f && steps < 10000) {
      for (size_t i = 0; i < 4; ++i) g[i] = -target[i];
      RiemannianSgdStep(x.data(), g.data(), 0.05f, 4, scratch.data(),
                        calibrated);
      ++steps;
    }
    return steps;
  };
  const int plain = run(false);
  const int calib = run(true);
  EXPECT_LT(plain, 10000);
  EXPECT_LT(calib, 10000);
}

class FusedStepEquivalence : public ::testing::TestWithParam<bool> {};

TEST_P(FusedStepEquivalence, MatchesComposedPath) {
  // The fused kernel must reproduce the composed TangentProject +
  // CalibrationFactor + Retract step to float rounding across dims that
  // exercise both the unrolled body and the scalar tail.
  const bool calibrated = GetParam();
  Rng rng(42);
  for (size_t n : {2u, 7u, 8u, 16u, 33u, 128u}) {
    for (int trial = 0; trial < 20; ++trial) {
      auto x_ref = RandomUnit(&rng, n);
      auto x_fused = x_ref;
      std::vector<float> g(n), scratch(n);
      for (auto& v : g) v = static_cast<float>(rng.Normal());
      RiemannianSgdStep(x_ref.data(), g.data(), 0.05f, n, scratch.data(),
                        calibrated);
      ASSERT_TRUE(
          FusedRiemannianSgdStep(x_fused.data(), g.data(), 0.05f, n,
                                 calibrated));
      for (size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x_fused[i], x_ref[i], 1e-5f)
            << "n=" << n << " trial=" << trial << " i=" << i;
      }
    }
  }
}

TEST_P(FusedStepEquivalence, MatchesComposedPathOverTrajectory) {
  // Rounding must not diverge over many consecutive steps either.
  const bool calibrated = GetParam();
  Rng rng(43);
  auto x_ref = RandomUnit(&rng, 24);
  auto x_fused = x_ref;
  std::vector<float> g(24), scratch(24);
  for (int step = 0; step < 200; ++step) {
    for (auto& v : g) v = static_cast<float>(rng.Normal());
    RiemannianSgdStep(x_ref.data(), g.data(), 0.05f, 24, scratch.data(),
                      calibrated);
    FusedRiemannianSgdStep(x_fused.data(), g.data(), 0.05f, 24, calibrated);
  }
  for (size_t i = 0; i < 24; ++i) {
    EXPECT_NEAR(x_fused[i], x_ref[i], 1e-4f);
  }
  EXPECT_NEAR(Norm(x_fused.data(), 24), 1.0f, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Both, FusedStepEquivalence, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Calibrated" : "Plain";
                         });

TEST(SphereTest, FusedStepStaysOnSphere) {
  Rng rng(44);
  auto x = RandomUnit(&rng, 16);
  for (int step = 0; step < 100; ++step) {
    std::vector<float> g(16);
    for (auto& v : g) v = static_cast<float>(rng.Normal());
    FusedRiemannianSgdStep(x.data(), g.data(), 0.1f, 16, true);
    ASSERT_NEAR(Norm(x.data(), 16), 1.0f, 1e-4f) << "step " << step;
  }
}

TEST(SphereTest, FusedStepRadialGradientIsNoop) {
  // A purely radial gradient is annihilated by the tangent projection; the
  // fused step must reduce to a renormalization, like the composed path.
  std::vector<float> x = {1.0f, 0.0f};
  std::vector<float> g = {20.0f, 0.0f};
  EXPECT_TRUE(FusedRiemannianSgdStep(x.data(), g.data(), 0.05f, 2, false));
  EXPECT_NEAR(x[0], 1.0f, 1e-6f);
  EXPECT_NEAR(x[1], 0.0f, 1e-6f);
}

TEST(SphereTest, FusedStepRenormalizesLikeRetract) {
  // Zero gradient on a non-unit point: Retract(x, 0) renormalizes; the
  // fused kernel must do the same.
  std::vector<float> x = {2.0f, 0.0f};
  std::vector<float> g = {0.0f, 0.0f};
  EXPECT_TRUE(FusedRiemannianSgdStep(x.data(), g.data(), 0.1f, 2, true));
  EXPECT_NEAR(x[0], 1.0f, 1e-6f);
  EXPECT_NEAR(x[1], 0.0f, 1e-6f);
}

TEST(SphereTest, FusedStepDegenerateRejected) {
  // x = 0 and g = 0 leaves nothing to retract onto the sphere: the kernel
  // must refuse and leave x untouched (mirrors Retract's degenerate case).
  std::vector<float> x = {0.0f, 0.0f};
  std::vector<float> g = {0.0f, 0.0f};
  EXPECT_FALSE(FusedRiemannianSgdStep(x.data(), g.data(), 0.1f, 2, true));
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[1], 0.0f);
}

TEST(SphereTest, ZeroGradientIsNoop) {
  Rng rng(8);
  auto x = RandomUnit(&rng, 8);
  const auto before = x;
  std::vector<float> g(8, 0.0f), scratch(8);
  RiemannianSgdStep(x.data(), g.data(), 0.5f, 8, scratch.data(), true);
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], before[i], 1e-6f);
}

}  // namespace
}  // namespace mars
