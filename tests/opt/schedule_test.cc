#include "opt/schedule.h"

#include <gtest/gtest.h>

namespace mars {
namespace {

TEST(ScheduleTest, ConstantIsConstant) {
  LrSchedule sched(0.05, LrDecay::kConstant, 100);
  EXPECT_DOUBLE_EQ(sched.At(0), 0.05);
  EXPECT_DOUBLE_EQ(sched.At(50), 0.05);
  EXPECT_DOUBLE_EQ(sched.At(99), 0.05);
}

TEST(ScheduleTest, LinearDecays) {
  LrSchedule sched(1.0, LrDecay::kLinear, 10);
  EXPECT_DOUBLE_EQ(sched.At(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.At(5), 0.5);
  // Floored at min_factor (default 0.1).
  EXPECT_DOUBLE_EQ(sched.At(10), 0.1);
  EXPECT_DOUBLE_EQ(sched.At(1000), 0.1);
}

TEST(ScheduleTest, LinearIsMonotoneNonIncreasing) {
  LrSchedule sched(0.5, LrDecay::kLinear, 30);
  for (size_t e = 1; e < 60; ++e) {
    EXPECT_LE(sched.At(e), sched.At(e - 1));
  }
}

TEST(ScheduleTest, ExponentialDecays) {
  LrSchedule sched(1.0, LrDecay::kExponential, 100, 0.5);
  EXPECT_DOUBLE_EQ(sched.At(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.At(1), 0.5);
  EXPECT_DOUBLE_EQ(sched.At(2), 0.25);
  // Floored at base * min_factor.
  EXPECT_DOUBLE_EQ(sched.At(50), 0.1);
}

TEST(ScheduleTest, BaseLrAccessor) {
  LrSchedule sched(0.01, LrDecay::kConstant, 10);
  EXPECT_DOUBLE_EQ(sched.base_lr(), 0.01);
}

}  // namespace
}  // namespace mars
