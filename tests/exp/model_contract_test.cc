// Contract tests every model in the zoo must satisfy: trains without
// crashing, produces finite deterministic scores, batch scoring matches
// pointwise scoring, beats random ranking, and parallel evaluation agrees
// with serial evaluation (respecting the thread_safe() declaration).
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "exp/model_zoo.h"

namespace mars {
namespace {

constexpr double kChanceHr10 = 10.0 / 101.0;

class ModelContract : public ::testing::TestWithParam<ModelId> {
 protected:
  static void SetUpTestSuite() {
    SyntheticConfig cfg;
    cfg.num_users = 120;
    cfg.num_items = 150;
    cfg.target_interactions = 2200;
    cfg.num_facets = 3;
    cfg.num_categories = 9;
    cfg.seed = 55;
    full_ = GenerateSyntheticDataset(cfg);
    split_ = new LeaveOneOutSplit(MakeLeaveOneOutSplit(*full_, 5));
    evaluator_ = new Evaluator(*split_->train, split_->test_item,
                               EvalProtocol{});
  }
  static void TearDownTestSuite() {
    delete evaluator_;
    evaluator_ = nullptr;
    delete split_;
    split_ = nullptr;
    full_.reset();
  }

  static std::shared_ptr<ImplicitDataset> full_;
  static LeaveOneOutSplit* split_;
  static Evaluator* evaluator_;
};

std::shared_ptr<ImplicitDataset> ModelContract::full_;
LeaveOneOutSplit* ModelContract::split_ = nullptr;
Evaluator* ModelContract::evaluator_ = nullptr;

TEST_P(ModelContract, TrainsAndProducesFiniteScores) {
  ZooOverrides ov;
  ov.dim = 16;
  auto model = MakeModel(GetParam(), ov);
  model->Fit(*split_->train, HarnessTrainOptions(GetParam(), /*fast=*/true));
  for (UserId u = 0; u < 10; ++u) {
    for (ItemId v = 0; v < 10; ++v) {
      EXPECT_TRUE(std::isfinite(model->Score(u, v)))
          << ModelName(GetParam()) << " (" << u << "," << v << ")";
    }
  }
}

TEST_P(ModelContract, BatchScoringMatchesPointwise) {
  ZooOverrides ov;
  ov.dim = 16;
  auto model = MakeModel(GetParam(), ov);
  model->Fit(*split_->train, HarnessTrainOptions(GetParam(), true));
  const std::vector<ItemId> items = {0, 3, 7, 31, 64, 149};
  std::vector<float> batch(items.size());
  model->ScoreItems(4, items, batch.data());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_NEAR(batch[i], model->Score(4, items[i]), 1e-5f)
        << ModelName(GetParam());
  }
}

TEST_P(ModelContract, DeterministicAcrossRefits) {
  ZooOverrides ov;
  ov.dim = 16;
  TrainOptions opts = HarnessTrainOptions(GetParam(), true);
  opts.epochs = 2;
  auto a = MakeModel(GetParam(), ov);
  auto b = MakeModel(GetParam(), ov);
  a->Fit(*split_->train, opts);
  b->Fit(*split_->train, opts);
  for (UserId u = 0; u < 5; ++u) {
    for (ItemId v = 0; v < 5; ++v) {
      EXPECT_FLOAT_EQ(a->Score(u, v), b->Score(u, v))
          << ModelName(GetParam());
    }
  }
}

TEST_P(ModelContract, BeatsRandomRanking) {
  ZooOverrides ov;
  ov.dim = 16;
  auto model = MakeModel(GetParam(), ov);
  // Full (non-fast) budget so even the slow learners converge.
  TrainOptions opts = HarnessTrainOptions(GetParam(), false);
  opts.epochs = std::min<size_t>(opts.epochs, 15);
  model->Fit(*split_->train, opts);
  EXPECT_GT(evaluator_->Evaluate(*model).hr10, kChanceHr10 * 1.2)
      << ModelName(GetParam());
}

TEST_P(ModelContract, ParallelEvaluationMatchesSerial) {
  ZooOverrides ov;
  ov.dim = 16;
  auto model = MakeModel(GetParam(), ov);
  model->Fit(*split_->train, HarnessTrainOptions(GetParam(), true));
  ThreadPool pool(3);
  const RankingMetrics serial = evaluator_->Evaluate(*model);
  const RankingMetrics parallel = evaluator_->Evaluate(*model, &pool);
  EXPECT_DOUBLE_EQ(serial.hr10, parallel.hr10) << ModelName(GetParam());
  EXPECT_DOUBLE_EQ(serial.ndcg20, parallel.ndcg20) << ModelName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ModelContract, ::testing::ValuesIn(AllModels()),
    [](const ::testing::TestParamInfo<ModelId>& info) {
      return ModelName(info.param);
    });

TEST(TunedSettingsTest, OverridesRespectDatasets) {
  // Ciao is tuned to K=2 for the multi-facet models; baselines untouched.
  EXPECT_EQ(TunedOverrides(ModelId::kMars, BenchmarkId::kCiao).num_facets,
            2u);
  EXPECT_EQ(TunedOverrides(ModelId::kMars, BenchmarkId::kMl1m).num_facets,
            4u);
  EXPECT_EQ(TunedOverrides(ModelId::kCml, BenchmarkId::kCiao).num_facets, 0u);
}

TEST(TunedSettingsTest, TunedEpochsExtendOnSparseSets) {
  EXPECT_GT(
      TunedTrainOptions(ModelId::kMars, BenchmarkId::kCiao, false).epochs,
      TunedTrainOptions(ModelId::kMars, BenchmarkId::kMl1m, false).epochs);
  // Fast mode stays fast regardless of dataset.
  EXPECT_LE(TunedTrainOptions(ModelId::kMars, BenchmarkId::kCiao, true).epochs,
            12u);
}

}  // namespace
}  // namespace mars
