#include "exp/experiment.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace mars {
namespace {

std::shared_ptr<ImplicitDataset> TinyDataset() {
  SyntheticConfig cfg;
  cfg.num_users = 100;
  // Must exceed the evaluator's 100 sampled negatives per user.
  cfg.num_items = 160;
  cfg.target_interactions = 1500;
  cfg.num_facets = 2;
  cfg.num_categories = 6;
  cfg.seed = 99;
  return GenerateSyntheticDataset(cfg);
}

TEST(ModelZooTest, TenModelsInOrder) {
  const auto& models = AllModels();
  ASSERT_EQ(models.size(), 10u);
  EXPECT_EQ(ModelName(models.front()), "BPR");
  EXPECT_EQ(ModelName(models.back()), "MARS");
}

TEST(ModelZooTest, MakeModelProducesDistinctNames) {
  for (ModelId id : AllModels()) {
    const auto model = MakeModel(id);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), ModelName(id));
  }
}

TEST(ModelZooTest, OverridesAreApplied) {
  ZooOverrides ov;
  ov.dim = 8;
  ov.num_facets = 2;
  ov.lambda_pull = 0.5;
  ov.lambda_facet = 0.0;
  const auto model = MakeModel(ModelId::kMars, ov);
  auto* mars_model = dynamic_cast<Mars*>(model.get());
  ASSERT_NE(mars_model, nullptr);
  EXPECT_EQ(mars_model->config().dim, 8u);
  EXPECT_EQ(mars_model->config().num_facets, 2u);
  EXPECT_DOUBLE_EQ(mars_model->config().lambda_pull, 0.5);
  EXPECT_DOUBLE_EQ(mars_model->config().lambda_facet, 0.0);
}

TEST(ModelZooTest, FastOptionsShrinkEpochs) {
  for (ModelId id : AllModels()) {
    EXPECT_LT(HarnessTrainOptions(id, true).epochs,
              HarnessTrainOptions(id, false).epochs);
  }
}

TEST(ExperimentTest, DataPreparationIsConsistent) {
  ExperimentData data(TinyDataset(), 7);
  EXPECT_GT(data.train().num_interactions(), 0u);
  EXPECT_EQ(data.dev_evaluator().NumEvalUsers(),
            data.test_evaluator().NumEvalUsers());
  EXPECT_LT(data.train().num_interactions(), data.full().num_interactions());
}

TEST(ExperimentTest, RunZooExperimentEndToEnd) {
  ExperimentData data(TinyDataset(), 7);
  const ExperimentResult result =
      RunZooExperiment(ModelId::kCml, &data, "Tiny", {}, /*fast=*/true);
  EXPECT_EQ(result.model, "CML");
  EXPECT_EQ(result.dataset, "Tiny");
  EXPECT_GT(result.test.users_evaluated, 0u);
  EXPECT_GT(result.test.hr10, 10.0 / 101.0);  // beats chance
  EXPECT_GT(result.train_seconds, 0.0);
}

TEST(ExperimentTest, MarsRunsThroughHarness) {
  ExperimentData data(TinyDataset(), 7);
  ZooOverrides ov;
  ov.dim = 16;
  ov.num_facets = 2;
  const ExperimentResult result =
      RunZooExperiment(ModelId::kMars, &data, "Tiny", ov, /*fast=*/true);
  EXPECT_GT(result.test.hr10, 10.0 / 101.0);
}

}  // namespace
}  // namespace mars
