#include "train/parallel_trainer.h"

#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "common/kernels.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/vec.h"
#include "core/mars.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/bpr.h"
#include "models/embedding.h"
#include "models/train_loop.h"
#include "opt/schedule.h"
#include "sampling/triplet_sampler.h"
#include "train/snapshot.h"

namespace mars {
namespace {

std::shared_ptr<ImplicitDataset> SmallDataset(uint64_t seed = 21) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 130;
  cfg.target_interactions = 800;
  cfg.seed = seed;
  return GenerateSyntheticDataset(cfg);
}

TEST(ParallelTrainerTest, WorkerSeedMatchesContract) {
  const uint64_t seed = 12345;
  for (size_t w = 0; w < 8; ++w) {
    uint64_t h = static_cast<uint64_t>(w);
    EXPECT_EQ(ParallelTrainer::WorkerSeed(seed, w), seed ^ SplitMix64(&h));
  }
  // Distinct workers must get distinct stream seeds.
  EXPECT_NE(ParallelTrainer::WorkerSeed(seed, 0),
            ParallelTrainer::WorkerSeed(seed, 1));
}

TEST(ParallelTrainerTest, SingleThreadedRunsInlineOnSerialRng) {
  Rng rng(7);
  Rng reference(7);
  ParallelTrainer trainer(/*num_threads=*/1, /*seed=*/7, &rng);
  EXPECT_EQ(trainer.num_workers(), 1u);
  EXPECT_EQ(trainer.pool(), nullptr);

  std::vector<uint64_t> drawn;
  trainer.RunEpoch(5, [&](size_t worker, Rng& r) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(&r, &rng);  // the model's own generator, same object
    drawn.push_back(r.Next());
  });
  ASSERT_EQ(drawn.size(), 5u);
  for (uint64_t v : drawn) EXPECT_EQ(v, reference.Next());
}

TEST(ParallelTrainerTest, RunEpochCoversAllStepsAcrossWorkers) {
  Rng rng(3);
  ParallelTrainer trainer(/*num_threads=*/4, /*seed=*/3, &rng);
  EXPECT_EQ(trainer.num_workers(), 4u);
  ASSERT_NE(trainer.pool(), nullptr);

  std::atomic<size_t> total{0};
  std::vector<std::atomic<size_t>> per_worker(4);
  // 1003 steps split 251/251/251/250 (non-divisible on purpose).
  trainer.RunEpoch(1003, [&](size_t worker, Rng&) {
    total.fetch_add(1);
    per_worker[worker].fetch_add(1);
  });
  EXPECT_EQ(total.load(), 1003u);
  EXPECT_EQ(per_worker[0].load(), 251u);
  EXPECT_EQ(per_worker[1].load(), 251u);
  EXPECT_EQ(per_worker[2].load(), 251u);
  EXPECT_EQ(per_worker[3].load(), 250u);
}

TEST(ParallelTrainerTest, WorkerStreamsDeterministicAcrossTrainers) {
  auto collect = [](size_t steps) {
    Rng rng(11);
    ParallelTrainer trainer(/*num_threads=*/3, /*seed=*/11, &rng);
    std::vector<std::vector<uint64_t>> draws(3);
    std::mutex mu;
    // Two epochs: streams must persist across RunEpoch calls.
    for (int epoch = 0; epoch < 2; ++epoch) {
      trainer.RunEpoch(steps, [&](size_t w, Rng& r) {
        const uint64_t v = r.Next();
        std::lock_guard<std::mutex> lock(mu);
        draws[w].push_back(v);
      });
    }
    return draws;
  };
  const auto a = collect(30);
  const auto b = collect(30);
  for (size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(a[w], b[w]) << "worker " << w;
    // Per-worker draws are ordered within the worker (one thread per
    // worker), so cross-trainer equality means the streams are identical.
  }
  EXPECT_NE(a[0], a[1]);
  EXPECT_NE(a[1], a[2]);
}

// The load-bearing regression test: Bpr::Fit with num_threads=1 must
// reproduce the pre-refactor single-threaded training loop bit-for-bit.
// The reference below replicates that loop (same init order, same sampler,
// same update arithmetic) outside the ParallelTrainer machinery.
TEST(ParallelTrainerTest, BprSingleThreadMatchesSerialReferenceBitForBit) {
  const auto full = SmallDataset();
  const ImplicitDataset& train = *full;

  BprConfig config;
  config.dim = 16;
  TrainOptions options;
  options.epochs = 3;
  options.learning_rate = 0.1;
  options.seed = 99;
  options.num_threads = 1;

  // --- Reference: the historical inline epoch loop ----------------------
  const size_t d = config.dim;
  Rng rng(options.seed);
  Matrix ref_user(train.num_users(), d);
  Matrix ref_item(train.num_items(), d);
  InitEmbedding(&ref_user, &rng);
  InitEmbedding(&ref_item, &rng);
  std::vector<float> ref_bias(train.num_items(), 0.0f);
  const TripletSampler sampler(train, TripletUserMode::kUniformInteraction);
  const size_t steps = ResolveStepsPerEpoch(options, train);
  const float l2 = static_cast<float>(config.l2_reg);
  const LrSchedule schedule(options.learning_rate, options.decay,
                            options.epochs);
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    const float lr = static_cast<float>(schedule.At(epoch));
    Triplet t;
    for (size_t s = 0; s < steps; ++s) {
      if (!sampler.Sample(&rng, &t)) continue;
      float* pu = ref_user.Row(t.user);
      float* qp = ref_item.Row(t.positive);
      float* qq = ref_item.Row(t.negative);
      float x = Dot(pu, qp, d) - Dot(pu, qq, d);
      x += ref_bias[t.positive] - ref_bias[t.negative];
      const float g = static_cast<float>(Sigmoid(-x));
      for (size_t i = 0; i < d; ++i) {
        const float pu_i = pu[i];
        pu[i] += lr * (g * (qp[i] - qq[i]) - l2 * pu_i);
        qp[i] += lr * (g * pu_i - l2 * qp[i]);
        qq[i] += lr * (-g * pu_i - l2 * qq[i]);
      }
      ref_bias[t.positive] += lr * (g - l2 * ref_bias[t.positive]);
      ref_bias[t.negative] += lr * (-g - l2 * ref_bias[t.negative]);
    }
  }

  // --- Model under test --------------------------------------------------
  Bpr model(config);
  model.Fit(train, options);

  for (UserId u = 0; u < train.num_users(); ++u) {
    for (size_t i = 0; i < d; ++i) {
      ASSERT_EQ(model.user_factors().Row(u)[i], ref_user.Row(u)[i])
          << "user " << u << " dim " << i;
    }
  }
  for (ItemId v = 0; v < train.num_items(); ++v) {
    for (size_t i = 0; i < d; ++i) {
      ASSERT_EQ(model.item_factors().Row(v)[i], ref_item.Row(v)[i])
          << "item " << v << " dim " << i;
    }
  }
  // Score includes the item bias — bit-equality covers it too.
  for (ItemId v = 0; v < train.num_items(); ++v) {
    ASSERT_EQ(model.Score(0, v), Dot(model.user_factors().Row(0),
                                     ref_item.Row(v), d) +
                                     ref_bias[v]);
  }
}

TEST(ParallelTrainerTest, MarsSingleThreadIsDeterministic) {
  const auto full = SmallDataset(5);
  MultiFacetConfig cfg;
  cfg.dim = 8;
  cfg.num_facets = 2;
  cfg.theta_init_nmf = false;
  TrainOptions options;
  options.epochs = 2;
  options.seed = 17;
  options.num_threads = 1;

  Mars a(cfg), b(cfg);
  a.Fit(*full, options);
  b.Fit(*full, options);
  for (UserId u = 0; u < full->num_users(); ++u) {
    for (size_t k = 0; k < cfg.num_facets; ++k) {
      EXPECT_EQ(a.UserFacetEmbedding(u, k), b.UserFacetEmbedding(u, k));
    }
  }
  for (ItemId v = 0; v < full->num_items(); ++v) {
    EXPECT_EQ(a.Score(0, v), b.Score(0, v));
  }
}

TEST(ParallelTrainerTest, MarsParallelTrainingProducesValidModel) {
  const auto full = SmallDataset(9);
  const LeaveOneOutSplit split = MakeLeaveOneOutSplit(*full, 2);

  MultiFacetConfig cfg;
  cfg.dim = 8;
  cfg.num_facets = 2;
  cfg.theta_init_nmf = false;
  TrainOptions options;
  options.epochs = 4;
  options.seed = 23;
  options.num_threads = 4;

  Mars model(cfg);
  model.Fit(*split.train, options);

  // Each individual FusedRiemannianSgdStep retracts onto the sphere, but
  // Hogwild workers may interleave element-wise writes to the same row, so
  // a final row can be an element mix of two unit vectors: ||row||² is
  // bounded in (0, 2] per torn write, not exactly 1. Assert finiteness and
  // that bound rather than exact unit norm (which would be flaky on real
  // multi-core hardware).
  for (UserId u = 0; u < split.train->num_users(); ++u) {
    for (size_t k = 0; k < cfg.num_facets; ++k) {
      const auto e = model.UserFacetEmbedding(u, k);
      float n2 = 0.0f;
      for (float x : e) {
        ASSERT_TRUE(std::isfinite(x));
        n2 += x * x;
      }
      ASSERT_GT(n2, 0.01f) << "user " << u << " facet " << k;
      ASSERT_LT(n2, 4.0f) << "user " << u << " facet " << k;
    }
  }
  for (ItemId v = 0; v < split.train->num_items(); ++v) {
    ASSERT_TRUE(std::isfinite(model.Score(0, v)));
  }
}

TEST(ParallelTrainerTest, MarsOverlappedEvalTrainsAndStops) {
  const auto full = SmallDataset(13);
  const LeaveOneOutSplit split = MakeLeaveOneOutSplit(*full, 2);
  const Evaluator dev(*split.train, split.dev_item, EvalProtocol{});

  MultiFacetConfig cfg;
  cfg.dim = 8;
  cfg.num_facets = 2;
  cfg.theta_init_nmf = false;
  TrainOptions options;
  options.epochs = 12;
  options.seed = 29;
  options.num_threads = 2;
  options.eval_every = 1;
  options.patience = 1;
  options.dev_evaluator = &dev;
  ThreadPool eval_pool(2);
  options.eval_pool = &eval_pool;

  Mars model(cfg);
  model.Fit(*split.train, options);  // must not deadlock or crash

  const RankingMetrics m = dev.Evaluate(model, &eval_pool);
  EXPECT_GT(m.users_evaluated, 0u);
  EXPECT_TRUE(std::isfinite(m.hr10));
}

TEST(SnapshotFacetStoreTest, CopiesAndReusesBuffer) {
  FacetStore src(37, 3, 9);
  Rng rng(1);
  for (size_t e = 0; e < 37; ++e) {
    for (size_t k = 0; k < 3; ++k) {
      float* row = src.Row(e, k);
      for (size_t i = 0; i < 9; ++i) {
        row[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
      }
    }
  }

  ThreadPool pool(4);
  FacetStore dst;
  SnapshotFacetStore(src, &dst, &pool);
  ASSERT_EQ(dst.num_entities(), 37u);
  for (size_t e = 0; e < 37; ++e) {
    for (size_t k = 0; k < 3; ++k) {
      for (size_t i = 0; i < 9; ++i) {
        ASSERT_EQ(dst.Row(e, k)[i], src.Row(e, k)[i]);
      }
    }
  }

  // Double-buffer path: mutate src, snapshot again into the same dst.
  const float* buffer_before = dst.Row(0, 0);
  src.Row(5, 1)[3] = 42.0f;
  SnapshotFacetStore(src, &dst, &pool);
  EXPECT_EQ(dst.Row(0, 0), buffer_before);  // no reallocation
  EXPECT_EQ(dst.Row(5, 1)[3], 42.0f);

  // Serial path (null pool) must agree.
  FacetStore serial;
  SnapshotFacetStore(src, &serial, nullptr);
  for (size_t e = 0; e < 37; ++e) {
    for (size_t k = 0; k < 3; ++k) {
      for (size_t i = 0; i < 9; ++i) {
        ASSERT_EQ(serial.Row(e, k)[i], src.Row(e, k)[i]);
      }
    }
  }
}

}  // namespace
}  // namespace mars
