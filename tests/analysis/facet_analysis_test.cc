#include "analysis/facet_analysis.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/vec.h"
#include "data/split.h"
#include "data/synthetic.h"

namespace mars {
namespace {

TEST(FacetAnalysisTest, SeparationDetectsClusteredCategories) {
  // Two tight, well-separated clusters.
  Rng rng(1);
  Matrix emb(200, 4);
  std::vector<int> cats(200);
  for (size_t i = 0; i < 200; ++i) {
    const int c = i % 2;
    cats[i] = c;
    for (size_t j = 0; j < 4; ++j) {
      const float center = c == 0 ? -5.0f : 5.0f;
      emb.At(i, j) = center + static_cast<float>(rng.Normal(0.0, 0.1));
    }
  }
  const SeparationStats stats = ComputeSeparation(emb, cats);
  EXPECT_GT(stats.separation_ratio, 5.0);
  EXPECT_GT(stats.centroid_purity, 0.99);
  EXPECT_GT(stats.mean_inter, stats.mean_intra);
}

TEST(FacetAnalysisTest, SeparationNearOneForRandomEmbeddings) {
  Rng rng(2);
  Matrix emb(300, 8);
  emb.FillNormal(&rng, 0.0f, 1.0f);
  std::vector<int> cats(300);
  for (size_t i = 0; i < 300; ++i) cats[i] = static_cast<int>(i % 3);
  const SeparationStats stats = ComputeSeparation(emb, cats);
  EXPECT_NEAR(stats.separation_ratio, 1.0, 0.05);
  EXPECT_LT(stats.centroid_purity, 0.6);
}

class AnalysisFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig cfg;
    cfg.num_users = 100;
    cfg.num_items = 90;
    cfg.target_interactions = 1500;
    cfg.num_facets = 3;
    cfg.num_categories = 6;
    cfg.seed = 43;
    full_ = GenerateSyntheticDataset(cfg);
    split_ = MakeLeaveOneOutSplit(*full_, 5);

    MultiFacetConfig mcfg;
    mcfg.dim = 12;
    mcfg.num_facets = 3;
    mcfg.theta_nmf_iterations = 5;
    model_ = std::make_unique<Mars>(mcfg);
    TrainOptions opts;
    opts.epochs = 5;
    opts.learning_rate = 0.1;
    model_->Fit(*split_.train, opts);
  }

  std::shared_ptr<ImplicitDataset> full_;
  LeaveOneOutSplit split_;
  std::unique_ptr<Mars> model_;
};

TEST_F(AnalysisFixture, FacetViewAdapters) {
  const FacetView view = MakeFacetView(*model_);
  EXPECT_EQ(view.num_facets, 3u);
  EXPECT_EQ(view.dim, 12u);
  const auto e = view.item_embedding(0, 1);
  EXPECT_EQ(e.size(), 12u);
  const auto theta = view.facet_weights(0);
  EXPECT_EQ(theta.size(), 3u);
}

TEST_F(AnalysisFixture, StackItemFacetEmbeddingsShape) {
  const FacetView view = MakeFacetView(*model_);
  const Matrix m = StackItemFacetEmbeddings(view, full_->num_items(), 2);
  EXPECT_EQ(m.rows(), full_->num_items());
  EXPECT_EQ(m.cols(), 12u);
  // MARS facet embeddings are unit rows.
  for (size_t r = 0; r < m.rows(); r += 7) {
    EXPECT_NEAR(Norm(m.Row(r), m.cols()), 1.0f, 1e-3f);
  }
}

TEST_F(AnalysisFixture, CategorySharesAreDistributions) {
  const FacetView view = MakeFacetView(*model_);
  const auto shares = FacetCategoryShares(view, *split_.train);
  ASSERT_EQ(shares.size(), 3u);
  for (const auto& facet_shares : shares) {
    double total = 0.0;
    for (const auto& cs : facet_shares) {
      EXPECT_GE(cs.share, 0.0);
      total += cs.share;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Sorted descending.
    for (size_t i = 1; i < facet_shares.size(); ++i) {
      EXPECT_GE(facet_shares[i - 1].share, facet_shares[i].share);
    }
  }
}

TEST_F(AnalysisFixture, ProfileCountsMatchUserDegree) {
  const FacetView view = MakeFacetView(*model_);
  const UserId u = 3;
  const UserFacetProfile profile = ProfileUser(view, *split_.train, u);
  size_t total = 0;
  for (const auto& per_facet : profile.facet_categories) {
    for (const auto& [name, count] : per_facet) total += count;
  }
  EXPECT_EQ(total, split_.train->UserDegree(u));
  EXPECT_EQ(profile.theta.size(), 3u);
}

TEST_F(AnalysisFixture, SingleSpaceViewWorks) {
  Rng rng(9);
  Matrix users(10, 6), items(20, 6);
  users.FillNormal(&rng, 0.0f, 1.0f);
  items.FillNormal(&rng, 0.0f, 1.0f);
  const FacetView view = MakeSingleSpaceView(users, items);
  EXPECT_EQ(view.num_facets, 1u);
  EXPECT_EQ(view.dim, 6u);
  const auto e = view.user_embedding(4, 0);
  EXPECT_FLOAT_EQ(e[0], users.At(4, 0));
  EXPECT_EQ(view.facet_weights(0).size(), 1u);
}

}  // namespace
}  // namespace mars
